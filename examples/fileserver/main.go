// Fileserver: a concurrent TCP file server on the decomposed
// architecture, serving several client hosts at once over the shared
// 10 Mb/s Ethernet.
//
// Each accepted connection is handled by its own thread in the server
// process — each with its own migrated session, so every transfer's send
// path runs in the server *application's* address space with no
// operating-system involvement. The clients' transfers contend for the
// shared wire, so aggregate goodput approaches the Ethernet's capacity
// while per-client rates divide it.
//
// Run: go run ./examples/fileserver [-clients 3] [-kb 512]
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/psd"
)

const filePort = 2049

func main() {
	clients := flag.Int("clients", 3, "number of client hosts")
	kb := flag.Int("kb", 512, "file size per client in KB")
	flag.Parse()
	size := *kb * 1024

	n := psd.New(17)
	serverHost := n.Host("fileserver", "10.0.0.1", psd.Decomposed())

	srv := serverHost.NewApp("fsd")
	n.Spawn("fsd", func(t *psd.Thread) {
		ls, err := srv.Socket(t, psd.SockStream)
		check(err)
		check(srv.SetSockOpt(t, ls, psd.SoSndBuf, 64*1024))
		check(srv.Bind(t, ls, psd.SockAddr{Port: filePort}))
		check(srv.Listen(t, ls, 8))
		for i := 0; i < *clients; i++ {
			fd, peer, err := srv.Accept(t, ls)
			check(err)
			// One thread per connection; its session already migrated
			// into this address space at accept.
			connFD := fd
			n.Spawn(fmt.Sprintf("fsd-conn%d", i), func(ct *psd.Thread) {
				chunk := make([]byte, 8192)
				for sent := 0; sent < size; {
					m := len(chunk)
					if sent+m > size {
						m = size - sent
					}
					nw, err := srv.Send(ct, connFD, chunk[:m], 0)
					check(err)
					sent += nw
				}
				check(srv.Close(ct, connFD))
				fmt.Printf("fsd: served %d KB to %v\n", size/1024, peer.Addr)
			})
		}
		check(srv.Close(t, ls))
	})

	for i := 0; i < *clients; i++ {
		i := i
		host := n.Host(fmt.Sprintf("client%d", i), fmt.Sprintf("10.0.0.%d", 10+i), psd.Decomposed())
		app := host.NewApp("fetch")
		n.Spawn(fmt.Sprintf("fetch%d", i), func(t *psd.Thread) {
			t.Sleep(time.Duration(i+1) * time.Millisecond)
			fd, err := app.Socket(t, psd.SockStream)
			check(err)
			check(app.SetSockOpt(t, fd, psd.SoRcvBuf, 64*1024))
			check(app.Connect(t, fd, serverHost.Addr(filePort)))
			start := t.Now()
			got := 0
			buf := make([]byte, 8192)
			for {
				nr, err := app.Recv(t, fd, buf, 0)
				check(err)
				if nr == 0 {
					break
				}
				got += nr
			}
			elapsed := t.Now().Sub(start)
			fmt.Printf("client%d: %d KB in %v (%.0f KB/s)\n",
				i, got/1024, elapsed.Round(time.Millisecond),
				float64(got)/1024/elapsed.Seconds())
			check(app.Close(t, fd))
		})
	}

	check(n.Run())
	fmt.Printf("\naggregate virtual time: %v\n", n.Now())
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
