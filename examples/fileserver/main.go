// Fileserver: a concurrent TCP file server on the decomposed
// architecture, serving several client hosts at once over the shared
// 10 Mb/s Ethernet.
//
// Each accepted connection is handled by its own thread in the server
// process — each with its own migrated session, so every transfer's send
// path runs in the server *application's* address space with no
// operating-system involvement. The file lives in one buffer and every
// connection serves it with SendChain over aliasing chains, so the
// server never copies a payload byte: the protocol transmits straight
// out of the file cache, and the socket-layer copy counter proves it.
//
// Run: go run ./examples/fileserver [-clients 3] [-kb 512]
package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"repro/psd"
)

const filePort = 2049

func main() {
	clients := flag.Int("clients", 3, "number of client hosts")
	kb := flag.Int("kb", 512, "file size per client in KB")
	flag.Parse()
	copied, aliased := run(*clients, *kb*1024)
	fmt.Printf("\nfsd socket layer: %d bytes copied, %d bytes sent by reference\n", copied, aliased)
}

// run serves the file to every client and returns the server host's
// socket-layer copy accounting: bytes physically copied vs bytes moved
// by reference. The smoke test asserts copied == 0.
func run(clients, size int) (copied, aliased int64) {
	n := psd.NewConfig(psd.Config{Seed: 17, Metrics: true})
	serverHost := n.Host("fileserver", "10.0.0.1", psd.Decomposed())

	// The served file: one buffer, shared by every connection. Chains
	// built with ChainOf alias it — nothing below ever copies it, and
	// copy-on-write would isolate the file even if a client scribbled.
	file := make([]byte, size)
	for i := range file {
		file[i] = byte(i)
	}

	srv := serverHost.NewApp("fsd")
	ch, ok := psd.ChainOps(srv)
	if !ok {
		panic("fileserver: architecture lacks the chain interface")
	}
	n.Spawn("fsd", func(t *psd.Thread) {
		ls, err := srv.Socket(t, psd.SockStream)
		check(err)
		check(srv.SetSockOpt(t, ls, psd.SoSndBuf, 64*1024))
		check(srv.Bind(t, ls, psd.SockAddr{Port: filePort}))
		check(srv.Listen(t, ls, 8))
		for i := 0; i < clients; i++ {
			fd, peer, err := srv.Accept(t, ls)
			check(err)
			// One thread per connection; its session already migrated
			// into this address space at accept.
			connFD := fd
			n.Spawn(fmt.Sprintf("fsd-conn%d", i), func(ct *psd.Thread) {
				for sent := 0; sent < size; {
					m := 8192
					if sent+m > size {
						m = size - sent
					}
					// Send straight out of the file buffer, by reference.
					nw, err := ch.SendChain(ct, connFD, psd.ChainOf(file[sent:sent+m]), 0)
					check(err)
					sent += nw
				}
				check(srv.Close(ct, connFD))
				fmt.Printf("fsd: served %d KB to %v\n", size/1024, peer.Addr)
			})
		}
		check(srv.Close(t, ls))
	})

	for i := 0; i < clients; i++ {
		i := i
		host := n.Host(fmt.Sprintf("client%d", i), fmt.Sprintf("10.0.0.%d", 10+i), psd.Decomposed())
		app := host.NewApp("fetch")
		n.Spawn(fmt.Sprintf("fetch%d", i), func(t *psd.Thread) {
			t.Sleep(time.Duration(i+1) * time.Millisecond)
			fd, err := app.Socket(t, psd.SockStream)
			check(err)
			check(app.SetSockOpt(t, fd, psd.SoRcvBuf, 64*1024))
			check(app.Connect(t, fd, serverHost.Addr(filePort)))
			start := t.Now()
			got := 0
			buf := make([]byte, 8192)
			for {
				nr, err := app.Recv(t, fd, buf, 0)
				check(err)
				if nr == 0 {
					break
				}
				got += nr
			}
			elapsed := t.Now().Sub(start)
			fmt.Printf("client%d: %d KB in %v (%.0f KB/s)\n",
				i, got/1024, elapsed.Round(time.Millisecond),
				float64(got)/1024/elapsed.Seconds())
			check(app.Close(t, fd))
		})
	}

	check(n.Run())
	fmt.Printf("\naggregate virtual time: %v\n", n.Now())
	return hostSum(n, "host.fileserver.", ".sock_copied_bytes"),
		hostSum(n, "host.fileserver.", ".sock_aliased_bytes")
}

// hostSum totals one socket-layer counter over every stack on a host.
func hostSum(n *psd.Network, prefix, suffix string) int64 {
	var total int64
	for _, it := range n.MetricsSnapshot().Items {
		if strings.HasPrefix(it.Name, prefix) && strings.HasSuffix(it.Name, suffix) {
			total += it.Value
		}
	}
	return total
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
