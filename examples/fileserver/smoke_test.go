package main

import "testing"

// TestSmoke runs the example end to end in-process with a small
// workload and asserts the zero-copy claim: the server moves every
// payload byte by reference, copying none at the socket layer.
func TestSmoke(t *testing.T) {
	const clients, size = 2, 64 * 1024
	copied, aliased := run(clients, size)
	if copied != 0 {
		t.Fatalf("server copied %d bytes at the socket layer; SendChain must alias", copied)
	}
	if aliased < clients*size {
		t.Fatalf("server aliased %d bytes, want at least %d", aliased, clients*size)
	}
}
