package main

import (
	"os"
	"testing"
)

// TestSmoke runs the example end to end in-process with a small
// workload. main calls flag.Parse, so os.Args is swapped to hide the
// test harness's own flags.
func TestSmoke(t *testing.T) {
	old := os.Args
	defer func() { os.Args = old }()
	os.Args = []string{"fileserver", "-clients", "2", "-kb", "64"}
	main()
}
