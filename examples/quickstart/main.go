// Quickstart: a UDP echo client and server on the decomposed protocol
// architecture.
//
// Two hosts are attached to a simulated 10 Mb/s Ethernet. The server
// binds UDP port 7 — at which instant the OS server migrates the (null)
// session into the application's protocol library, per Table 1 of the
// paper — and echoes datagrams. The client measures round trips. All the
// send/receive work happens in the applications' address spaces; the OS
// servers are only involved in naming and setup.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"repro/psd"
)

func main() {
	n := psd.New(1)
	server := n.Host("server", "10.0.0.1", psd.Decomposed())
	client := n.Host("client", "10.0.0.2", psd.Decomposed())

	srv := server.NewApp("echod")
	n.Spawn("echod", func(t *psd.Thread) {
		fd, err := srv.Socket(t, psd.SockDgram)
		check(err)
		check(srv.Bind(t, fd, psd.SockAddr{Port: 7}))
		buf := make([]byte, 2048)
		for {
			nr, from, err := srv.RecvFrom(t, fd, buf, 0)
			check(err)
			if string(buf[:nr]) == "quit" {
				return
			}
			_, err = srv.SendTo(t, fd, buf[:nr], 0, from)
			check(err)
		}
	})

	cli := client.NewApp("pinger")
	n.Spawn("pinger", func(t *psd.Thread) {
		t.Sleep(time.Millisecond) // let the server bind
		fd, err := cli.Socket(t, psd.SockDgram)
		check(err)
		dst := server.Addr(7)
		buf := make([]byte, 2048)
		for i := 0; i < 5; i++ {
			msg := fmt.Sprintf("ping %d", i)
			start := t.Now()
			_, err := cli.SendTo(t, fd, []byte(msg), 0, dst)
			check(err)
			nr, _, err := cli.RecvFrom(t, fd, buf, 0)
			check(err)
			fmt.Printf("%-8s -> %-8s rtt %v\n", msg, buf[:nr], t.Now().Sub(start))
		}
		_, err = cli.SendTo(t, fd, []byte("quit"), 0, dst)
		check(err)
		check(cli.Close(t, fd))
	})

	check(n.Run())
	sessions, migrations, returns, _ := server.ServerStats()
	fmt.Printf("\nserver-host OS server: %d live sessions, %d migrations, %d returns\n",
		sessions, migrations, returns)
	fmt.Printf("virtual time elapsed: %v\n", n.Now())
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
