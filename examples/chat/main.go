// Chat: a select-driven TCP chat room, exercising the cooperative
// select machinery of the decomposed architecture (paper §3.2).
//
// The chat server multiplexes a listening socket and all client
// connections through select. In the decomposed architecture the
// listener is managed by the OS server while the accepted connections
// live in the application's protocol library — exactly the mixed case
// the paper's cooperative interface exists for: the library checks its
// own sockets, asks the server about the listener via proxy_status, and
// blocks until either side reports a change.
//
// Run: go run ./examples/chat
package main

import (
	"fmt"
	"time"

	"repro/psd"
)

const chatPort = 6667

func main() {
	n := psd.New(7)
	hub := n.Host("hub", "10.0.0.1", psd.Decomposed())
	userA := n.Host("alice-box", "10.0.0.2", psd.Decomposed())
	userB := n.Host("bob-box", "10.0.0.3", psd.Decomposed())

	runServer(n, hub)
	runClient(n, userA, hub, "alice", []string{"hello room", "anyone here?"})
	runClient(n, userB, hub, "bob", []string{"hi alice"})

	check(n.Run())
	fmt.Printf("\nvirtual time elapsed: %v\n", n.Now())
}

func runServer(n *psd.Network, host *psd.Host) {
	app := host.NewApp("chatd")
	n.Spawn("chatd", func(t *psd.Thread) {
		ls, err := app.Socket(t, psd.SockStream)
		check(err)
		check(app.Bind(t, ls, psd.SockAddr{Port: chatPort}))
		check(app.Listen(t, ls, 8))

		conns := map[int]string{} // fd -> display name
		buf := make([]byte, 1024)
		nextID := 0
		deadline := 5 * time.Second

		for {
			read := psd.NewFDSet(ls)
			for fd := range conns {
				read[fd] = true
			}
			ready, _, err := app.Select(t, read, nil, deadline)
			check(err)
			if len(ready) == 0 {
				fmt.Println("chatd: idle, shutting down")
				for fd := range conns {
					app.Close(t, fd)
				}
				app.Close(t, ls)
				return
			}
			for fd := range ready {
				if fd == ls {
					cfd, peer, err := app.Accept(t, ls)
					check(err)
					nextID++
					conns[cfd] = fmt.Sprintf("user%d@%v", nextID, peer.Addr)
					fmt.Printf("chatd: %s joined\n", conns[cfd])
					continue
				}
				nr, err := app.Recv(t, fd, buf, 0)
				if err != nil || nr == 0 {
					fmt.Printf("chatd: %s left\n", conns[fd])
					app.Close(t, fd)
					delete(conns, fd)
					continue
				}
				line := fmt.Sprintf("[%s] %s", conns[fd], buf[:nr])
				fmt.Printf("chatd: broadcast %q\n", line)
				for other := range conns {
					if other != fd {
						app.Send(t, other, []byte(line), 0)
					}
				}
			}
		}
	})
}

func runClient(n *psd.Network, host, hub *psd.Host, name string, lines []string) {
	app := host.NewApp(name)
	n.Spawn(name, func(t *psd.Thread) {
		t.Sleep(10 * time.Millisecond)
		fd, err := app.Socket(t, psd.SockStream)
		check(err)
		check(app.Connect(t, fd, hub.Addr(chatPort)))
		buf := make([]byte, 1024)
		for _, line := range lines {
			t.Sleep(50 * time.Millisecond)
			_, err := app.Send(t, fd, []byte(line), 0)
			check(err)
			// Poll for any broadcasts without blocking forever.
			for {
				r, _, err := app.Select(t, psd.NewFDSet(fd), nil, 20*time.Millisecond)
				check(err)
				if len(r) == 0 {
					break
				}
				nr, err := app.Recv(t, fd, buf, 0)
				if err != nil || nr == 0 {
					return
				}
				fmt.Printf("%s sees: %s\n", name, buf[:nr])
			}
		}
		t.Sleep(200 * time.Millisecond)
		check(app.Close(t, fd))
	})
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
