package main

import "testing"

// TestSmoke runs the example end to end in-process: it passes when the
// simulation completes without panic or deadlock.
func TestSmoke(t *testing.T) { main() }
