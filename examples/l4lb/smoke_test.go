package main

import "testing"

// TestSmoke runs the balancer end to end with a small workload and
// asserts the splice claim: every connection's payload crosses the
// balancer host without a single socket-layer copy, and the round-robin
// spread actually lands connections on every backend.
func TestSmoke(t *testing.T) {
	const backends, conns, resp = 2, 6, 16 * 1024
	served, copied, spliced := run(backends, conns, resp)
	if copied != 0 {
		t.Fatalf("balancer copied %d bytes at the socket layer; splice must copy none", copied)
	}
	var total int64
	for b, n := range served {
		if n == 0 {
			t.Errorf("backend%d served no connections; round-robin must reach every backend", b)
		}
		total += n
	}
	if total != conns {
		t.Fatalf("served %d connections in total, want %d", total, conns)
	}
	// The stack counts each spliced byte once, both directions included.
	wantSpliced := int64(conns) * int64(reqBytes+resp)
	if spliced < wantSpliced {
		t.Fatalf("spliced %d bytes, want at least %d", spliced, wantSpliced)
	}
}
