// L4lb: a user-level layer-4 load balancer on the decomposed
// architecture, built on the cross-socket splice path.
//
// The balancer accepts client connections on a front port and forwards
// each one to a backend picked round-robin. Both directions of every
// connection move through Splice: the sessions are returned to the
// operating-system server and the payload flows server-side by
// reference, so the balancer process never maps — let alone copies — a
// forwarded byte. The socket-layer copy counter proves it.
//
// This is the application-level companion to the in-kernel VIP data
// plane (internal/dataplane): same job, done one layer up, with the
// proxied-copies contrast the paper's decomposition argument predicts.
//
// Run: go run ./examples/l4lb [-backends 2] [-conns 8] [-kb 32]
package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"repro/psd"
)

const (
	frontPort = 8080
	backPort  = 9000
)

func main() {
	backends := flag.Int("backends", 2, "number of backend hosts")
	conns := flag.Int("conns", 8, "client connections to balance")
	kb := flag.Int("kb", 32, "response size per connection in KB")
	flag.Parse()
	served, copied, spliced := run(*backends, *conns, *kb*1024)
	for b, n := range served {
		fmt.Printf("backend%d: served %d connections\n", b, n)
	}
	fmt.Printf("\nlb socket layer: %d bytes copied, %d bytes spliced\n", copied, spliced)
}

// reqBytes is the fixed request size; the response size is the
// workload's payload knob.
const reqBytes = 64

// run balances conns connections across the backends and returns the
// per-backend connection counts plus the balancer host's socket-layer
// accounting: payload bytes physically copied (the smoke test asserts
// zero) and bytes moved through the splice path.
func run(backends, conns, respBytes int) (served []int64, copied, spliced int64) {
	n := psd.NewConfig(psd.Config{Seed: 23, Metrics: true})
	lbHost := n.Host("lb", "10.0.0.1", psd.Decomposed())

	// Backends. Round-robin assignment is deterministic, so each backend
	// knows exactly how many connections it will serve and can exit its
	// accept loop cleanly.
	for b := 0; b < backends; b++ {
		b := b
		expect := conns / backends
		if b < conns%backends {
			expect++
		}
		host := n.Host(fmt.Sprintf("backend%d", b), fmt.Sprintf("10.0.1.%d", 10+b), psd.Decomposed())
		app := host.NewApp("srv")
		n.Spawn(fmt.Sprintf("backend%d", b), func(t *psd.Thread) {
			ls, err := app.Socket(t, psd.SockStream)
			check(err)
			check(app.Bind(t, ls, psd.SockAddr{Port: backPort}))
			check(app.Listen(t, ls, 8))
			for c := 0; c < expect; c++ {
				fd, _, err := app.Accept(t, ls)
				check(err)
				cfd := fd
				n.Spawn(fmt.Sprintf("backend%d-conn%d", b, c), func(ct *psd.Thread) {
					buf := make([]byte, reqBytes)
					for got := 0; got < reqBytes; {
						nr, err := app.Recv(ct, cfd, buf[got:], 0)
						check(err)
						if nr == 0 {
							panic("backend: request truncated")
						}
						got += nr
					}
					// The response carries the backend's identity in every
					// byte, so the client can verify both payload integrity
					// and which backend the balancer picked.
					resp := make([]byte, respBytes)
					for i := range resp {
						resp[i] = byte(b + i)
					}
					for sent := 0; sent < respBytes; {
						nw, err := app.Send(ct, cfd, resp[sent:], 0)
						check(err)
						sent += nw
					}
					check(app.Close(ct, cfd))
				})
			}
			check(app.Close(t, ls))
		})
	}

	// The balancer: accept, pick round-robin, splice both directions.
	lb := lbHost.NewApp("l4lb")
	ch, ok := psd.ChainOps(lb)
	if !ok {
		panic("l4lb: architecture lacks the chain interface")
	}
	backendAddr := func(b int) psd.SockAddr {
		return psd.Addr(fmt.Sprintf("10.0.1.%d", 10+b), backPort)
	}
	n.Spawn("l4lb", func(t *psd.Thread) {
		ls, err := lb.Socket(t, psd.SockStream)
		check(err)
		check(lb.Bind(t, ls, psd.SockAddr{Port: frontPort}))
		check(lb.Listen(t, ls, 16))
		for c := 0; c < conns; c++ {
			cfd, _, err := lb.Accept(t, ls)
			check(err)
			pick := c % backends
			fd := cfd
			n.Spawn(fmt.Sprintf("l4lb-conn%d", c), func(ct *psd.Thread) {
				bfd, err := lb.Socket(ct, psd.SockStream)
				check(err)
				check(lb.Connect(ct, bfd, backendAddr(pick)))
				// Request up, response back; neither direction's payload
				// ever enters this address space.
				if _, err := ch.Splice(ct, bfd, fd, reqBytes); err != nil {
					panic(err)
				}
				if _, err := ch.Splice(ct, fd, bfd, respBytes); err != nil {
					panic(err)
				}
				check(lb.Close(ct, bfd))
				check(lb.Close(ct, fd))
			})
		}
		check(lb.Close(t, ls))
	})

	// One client host issuing connections back to back; it validates the
	// response pattern and tallies which backend served each connection.
	served = make([]int64, backends)
	clientHost := n.Host("client", "10.0.2.1", psd.Decomposed())
	cli := clientHost.NewApp("cli")
	n.Spawn("client", func(t *psd.Thread) {
		t.Sleep(time.Millisecond)
		req := make([]byte, reqBytes)
		for i := range req {
			req[i] = byte(i)
		}
		for c := 0; c < conns; c++ {
			fd, err := cli.Socket(t, psd.SockStream)
			check(err)
			check(cli.Connect(t, fd, lbHost.Addr(frontPort)))
			for sent := 0; sent < reqBytes; {
				nw, err := cli.Send(t, fd, req[sent:], 0)
				check(err)
				sent += nw
			}
			resp := make([]byte, 0, respBytes)
			buf := make([]byte, 8192)
			for len(resp) < respBytes {
				nr, err := cli.Recv(t, fd, buf, 0)
				check(err)
				if nr == 0 {
					panic(fmt.Sprintf("client: response truncated at %d bytes", len(resp)))
				}
				resp = append(resp, buf[:nr]...)
			}
			b := int(resp[0])
			if b < 0 || b >= backends {
				panic(fmt.Sprintf("client: response names backend %d of %d", b, backends))
			}
			for i, v := range resp {
				if v != byte(b+i) {
					panic(fmt.Sprintf("client: conn %d byte %d corrupted through the balancer", c, i))
				}
			}
			served[b]++
			check(cli.Close(t, fd))
		}
	})

	check(n.Run())
	fmt.Printf("aggregate virtual time: %v\n", n.Now())
	return served, hostSum(n, "host.lb.", ".sock_copied_bytes"),
		hostSum(n, "host.lb.", ".splice_bytes")
}

// hostSum totals one socket-layer counter over every stack on a host.
func hostSum(n *psd.Network, prefix, suffix string) int64 {
	var total int64
	for _, it := range n.MetricsSnapshot().Items {
		if strings.HasPrefix(it.Name, prefix) && strings.HasSuffix(it.Name, suffix) {
			total += it.Value
		}
	}
	return total
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
