// Filetransfer: a bulk TCP transfer (an ftp-like workload, one of the
// applications the paper's introduction motivates) run back-to-back on
// all three protocol architectures, showing the paper's performance
// story: the decomposed library architecture is comparable to an
// in-kernel implementation and much faster than a server-based one.
//
// The transfer uses the chain interface end to end — SendChain on the
// sender, RecvPeek/RecvRelease on the receiver — so the copies/byte
// column shows the architectural contrast directly: the library stack
// runs in the application's address space and moves every byte by
// reference, while the in-kernel and server stacks sit behind a
// protection boundary and must copy.
//
// Run: go run ./examples/filetransfer [-mb 8]
package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"repro/psd"
)

func main() {
	mb := flag.Int("mb", 8, "transfer size in MB")
	flag.Parse()
	total := *mb << 20

	type result struct {
		name string
		kbps float64
	}
	var results []result
	for _, arch := range []struct {
		name string
		a    psd.Arch
	}{
		{"decomposed (library)", psd.Decomposed()},
		{"in-kernel", psd.InKernel()},
		{"server-based", psd.ServerBased()},
	} {
		kbps, copiesPerByte := transfer(arch.a, total)
		results = append(results, result{arch.name, kbps})
		fmt.Printf("%-22s %8.0f KB/s   %.1f copies/byte\n", arch.name, kbps, copiesPerByte)
	}
	fmt.Printf("\nlibrary/kernel ratio: %.2f   library/server ratio: %.2f\n",
		results[0].kbps/results[1].kbps, results[0].kbps/results[2].kbps)
}

// transfer moves total bytes over one TCP connection using the chain
// interface on both ends and returns throughput plus the socket-layer
// copy cost per payload byte across both hosts.
func transfer(arch psd.Arch, total int) (kbps, copiesPerByte float64) {
	n := psd.NewConfig(psd.Config{Seed: 42, Metrics: true})
	src := n.Host("src", "10.0.0.1", arch)
	dst := n.Host("dst", "10.0.0.2", arch)

	var start, end time.Duration

	receiver := dst.NewApp("recv")
	rch, ok := psd.ChainOps(receiver)
	if !ok {
		panic("filetransfer: architecture lacks the chain interface")
	}
	n.Spawn("recv", func(t *psd.Thread) {
		ls, err := receiver.Socket(t, psd.SockStream)
		check(err)
		check(receiver.SetSockOpt(t, ls, psd.SoRcvBuf, 64*1024))
		check(receiver.Bind(t, ls, psd.SockAddr{Port: 2021}))
		check(receiver.Listen(t, ls, 1))
		fd, _, err := receiver.Accept(t, ls)
		check(err)
		got := 0
		for got < total {
			// Peek an aliased view of the receive queue, then release it:
			// the receiver never asks for the bytes as flat memory.
			v, err := rch.RecvPeek(t, fd, 0, nil)
			check(err)
			nr := v.Chain.Len()
			v.Chain.Release()
			if nr == 0 {
				break
			}
			check(rch.RecvRelease(t, fd, nr))
			got += nr
		}
		end = t.Now().Duration()
		check(receiver.Close(t, fd))
		check(receiver.Close(t, ls))
	})

	sender := src.NewApp("send")
	sch, ok := psd.ChainOps(sender)
	if !ok {
		panic("filetransfer: architecture lacks the chain interface")
	}
	n.Spawn("send", func(t *psd.Thread) {
		t.Sleep(time.Millisecond)
		fd, err := sender.Socket(t, psd.SockStream)
		check(err)
		check(sender.SetSockOpt(t, fd, psd.SoSndBuf, 64*1024))
		check(sender.Connect(t, fd, dst.Addr(2021)))
		start = t.Now().Duration()
		chunk := make([]byte, 8192)
		for sent := 0; sent < total; {
			nw, err := sch.SendChain(t, fd, psd.ChainOf(chunk), 0)
			check(err)
			sent += nw
		}
		check(sender.Close(t, fd))
	})

	check(n.Run())
	var copied int64
	for _, it := range n.MetricsSnapshot().Items {
		if strings.HasPrefix(it.Name, "host.") && strings.HasSuffix(it.Name, ".sock_copied_bytes") {
			copied += it.Value
		}
	}
	return float64(total) / 1024 / (end - start).Seconds(), float64(copied) / float64(total)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
