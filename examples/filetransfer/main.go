// Filetransfer: a bulk TCP transfer (an ftp-like workload, one of the
// applications the paper's introduction motivates) run back-to-back on
// all three protocol architectures, showing the paper's performance
// story: the decomposed library architecture is comparable to an
// in-kernel implementation and much faster than a server-based one.
//
// Run: go run ./examples/filetransfer [-mb 8]
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/psd"
)

func main() {
	mb := flag.Int("mb", 8, "transfer size in MB")
	flag.Parse()
	total := *mb << 20

	type result struct {
		name string
		kbps float64
	}
	var results []result
	for _, arch := range []struct {
		name string
		a    psd.Arch
	}{
		{"decomposed (library)", psd.Decomposed()},
		{"in-kernel", psd.InKernel()},
		{"server-based", psd.ServerBased()},
	} {
		kbps := transfer(arch.a, total)
		results = append(results, result{arch.name, kbps})
		fmt.Printf("%-22s %8.0f KB/s\n", arch.name, kbps)
	}
	fmt.Printf("\nlibrary/kernel ratio: %.2f   library/server ratio: %.2f\n",
		results[0].kbps/results[1].kbps, results[0].kbps/results[2].kbps)
}

func transfer(arch psd.Arch, total int) float64 {
	n := psd.New(42)
	src := n.Host("src", "10.0.0.1", arch)
	dst := n.Host("dst", "10.0.0.2", arch)

	var start, end time.Duration

	receiver := dst.NewApp("recv")
	n.Spawn("recv", func(t *psd.Thread) {
		ls, err := receiver.Socket(t, psd.SockStream)
		check(err)
		check(receiver.SetSockOpt(t, ls, psd.SoRcvBuf, 64*1024))
		check(receiver.Bind(t, ls, psd.SockAddr{Port: 2021}))
		check(receiver.Listen(t, ls, 1))
		fd, _, err := receiver.Accept(t, ls)
		check(err)
		got := 0
		buf := make([]byte, 8192)
		for got < total {
			nr, err := receiver.Recv(t, fd, buf, 0)
			check(err)
			if nr == 0 {
				break
			}
			got += nr
		}
		end = t.Now().Duration()
		check(receiver.Close(t, fd))
		check(receiver.Close(t, ls))
	})

	sender := src.NewApp("send")
	n.Spawn("send", func(t *psd.Thread) {
		t.Sleep(time.Millisecond)
		fd, err := sender.Socket(t, psd.SockStream)
		check(err)
		check(sender.SetSockOpt(t, fd, psd.SoSndBuf, 64*1024))
		check(sender.Connect(t, fd, dst.Addr(2021)))
		start = t.Now().Duration()
		chunk := make([]byte, 8192)
		for sent := 0; sent < total; {
			nw, err := sender.Send(t, fd, chunk, 0)
			check(err)
			sent += nw
		}
		check(sender.Close(t, fd))
	})

	check(n.Run())
	return float64(total) / 1024 / (end - start).Seconds()
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
