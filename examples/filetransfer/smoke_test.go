package main

import (
	"testing"

	"repro/psd"
)

// TestSmoke runs the transfer on every architecture with a small
// payload and asserts the copy contrast the example exists to show:
// the decomposed library moves every byte by reference while the
// kernel and server architectures must copy across their protection
// boundaries.
func TestSmoke(t *testing.T) {
	const total = 1 << 20
	for _, tc := range []struct {
		name   string
		arch   psd.Arch
		copies float64
	}{
		{"decomposed", psd.Decomposed(), 0},
		{"in-kernel", psd.InKernel(), 2},
		{"server-based", psd.ServerBased(), 2},
	} {
		kbps, copiesPerByte := transfer(tc.arch, total)
		if kbps <= 0 {
			t.Fatalf("%s: throughput %v KB/s", tc.name, kbps)
		}
		if copiesPerByte != tc.copies {
			t.Fatalf("%s: %.2f copies/byte, want %.0f", tc.name, copiesPerByte, tc.copies)
		}
	}
}
