// Migration: makes the paper's session-migration machinery visible.
//
// The program walks one TCP session through its whole life in the
// decomposed architecture, printing the OS server's counters at each
// step:
//
//  1. socket/connect — the OS server runs the handshake, then the
//     established session migrates into the client's protocol library;
//  2. data transfer — no operating-system involvement;
//  3. fork — the session is returned to the OS server first (two address
//     spaces must never co-manage protocol state), and both processes
//     then reach it through the server;
//  4. close — the server runs the FIN handshake and the 2MSL wait, and
//     finally releases the port.
//
// Run: go run ./examples/migration
package main

import (
	"fmt"
	"time"

	"repro/psd"
)

func main() {
	n := psd.New(3)
	a := n.Host("appbox", "10.0.0.1", psd.Decomposed())
	b := n.Host("peer", "10.0.0.2", psd.Decomposed())

	show := func(step string) {
		s, m, r, _ := a.ServerStats()
		fmt.Printf("%-34s sessions=%d migrations=%d returns=%d\n", step, s, m, r)
	}

	peer := b.NewApp("sink")
	n.Spawn("sink", func(t *psd.Thread) {
		ls, err := peer.Socket(t, psd.SockStream)
		check(err)
		check(peer.Bind(t, ls, psd.SockAddr{Port: 9000}))
		check(peer.Listen(t, ls, 1))
		fd, _, err := peer.Accept(t, ls)
		check(err)
		buf := make([]byte, 4096)
		for {
			nr, err := peer.Recv(t, fd, buf, 0)
			check(err)
			if nr == 0 {
				break
			}
		}
		check(peer.Close(t, fd))
		check(peer.Close(t, ls))
	})

	app := a.NewApp("worker")
	n.Spawn("worker", func(t *psd.Thread) {
		t.Sleep(time.Millisecond)
		show("start")

		fd, err := app.Socket(t, psd.SockStream)
		check(err)
		show("after socket (server-managed)")

		check(app.Connect(t, fd, b.Addr(9000)))
		show("after connect (migrated to app)")

		_, err = app.Send(t, fd, make([]byte, 32*1024), 0)
		check(err)
		show("after 32 KB sent (no OS on path)")

		child, err := app.Fork(t, "worker-child")
		check(err)
		show("after fork (returned to server)")

		// Both processes can still use the shared session, through the
		// server.
		_, err = app.Send(t, fd, []byte("from parent"), 0)
		check(err)
		_, err = child.Send(t, fd, []byte("from child"), 0)
		check(err)
		show("after post-fork sends")

		check(child.Close(t, fd))
		check(app.Close(t, fd))
		show("after close (server runs FIN)")
		child.ExitProcess(t)
	})

	check(n.Run())
	// Drain TIME_WAIT: 2MSL is 60 virtual seconds.
	check(n.RunFor(90 * time.Second))
	s, _, _, _ := a.ServerStats()
	fmt.Printf("%-34s sessions=%d\n", "after 2MSL drain", s)
	fmt.Printf("\nvirtual time elapsed: %v\n", n.Now())
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
