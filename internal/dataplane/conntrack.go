package dataplane

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/sim"
	"repro/internal/wire"
)

// tuple is one direction's 5-tuple as seen on the wire.
type tuple struct {
	Src, Dst         wire.IPAddr
	SrcPort, DstPort uint16
	Proto            uint8
}

func (t tuple) String() string {
	return fmt.Sprintf("%s %v:%d->%v:%d", wire.ProtoName(t.Proto), t.Src, t.SrcPort, t.Dst, t.DstPort)
}

// less is a total order on tuples, used wherever flows must be walked
// in a deterministic order (GC, snapshots, psdstat output).
func (t tuple) less(u tuple) bool {
	if t.Proto != u.Proto {
		return t.Proto < u.Proto
	}
	for i := 0; i < 4; i++ {
		if t.Src[i] != u.Src[i] {
			return t.Src[i] < u.Src[i]
		}
	}
	if t.SrcPort != u.SrcPort {
		return t.SrcPort < u.SrcPort
	}
	for i := 0; i < 4; i++ {
		if t.Dst[i] != u.Dst[i] {
			return t.Dst[i] < u.Dst[i]
		}
	}
	return t.DstPort < u.DstPort
}

// State is a tracked flow's lifecycle state: the netfilter-style TCP
// machine, with StateNew doubling as the single UDP state.
type State uint8

const (
	StateNew State = iota // UDP, or TCP before any flag classified it
	StateSynSent
	StateSynRecv
	StateEstablished
	StateFinWait
	StateLastAck
	StateTimeWait
	StateClosed

	numStates
)

var stateNames = [numStates]string{
	"new", "syn_sent", "syn_recv", "established",
	"fin_wait", "last_ack", "time_wait", "closed",
}

func (s State) String() string {
	if s < numStates {
		return stateNames[s]
	}
	return "state(?)"
}

// xlate is the rewrite applied to one direction of a tracked flow.
type xlate struct {
	srcIP, dstIP     wire.IPAddr
	srcPort, dstPort uint16
	dstMAC           wire.MAC
	hairpin          bool // forward back out the wire instead of up the stack
	rewrite          bool // false: direction passes untouched
}

// flow is one tracked connection. orig is the initiating direction's
// wire tuple before translation; reply is the responding direction's
// wire tuple before translation (both are conntrack keys).
type flow struct {
	id          uint64
	orig, reply tuple
	fwd, rev    xlate // rewrites for orig-direction and reply-direction frames

	state    State
	created  sim.Time
	lastSeen sim.Time
	finSeen  [2]bool

	// clientAck is the latest cumulative ACK seen from the initiator —
	// its rcv_nxt, which is the sequence number a synthesized RST toward
	// it must carry. clientEndSeq is the highest seq+len it has sent.
	clientAck    uint32
	clientEndSeq uint32
	sawReply     bool // reply-direction traffic seen (flow not embryonic)

	clientMAC wire.MAC // initiator's MAC, captured from its first frame

	backend int  // backend pool index a VIP flow is pinned to; -1 otherwise
	vip     *VIP // owning VIP for backend accounting; nil otherwise
	snat    uint16
}

// ctEntry resolves a wire tuple to its flow and direction.
type ctEntry struct {
	f   *flow
	dir uint8 // 0: orig direction, 1: reply direction
}

// updateTCP advances the flow state machine for a segment with the given
// flags arriving from direction dir.
func (p *Plane) updateTCP(f *flow, dir uint8, flags uint8) {
	next := f.state
	switch {
	case flags&wire.TCPRst != 0:
		next = StateClosed
	case flags&wire.TCPSyn != 0 && flags&wire.TCPAck != 0 && dir == 1:
		if f.state == StateSynSent {
			next = StateSynRecv
		}
	case flags&wire.TCPSyn != 0 && dir == 0:
		if f.state == StateNew || f.state == StateSynSent {
			next = StateSynSent
		}
	case flags&wire.TCPFin != 0:
		f.finSeen[dir] = true
		if f.finSeen[0] && f.finSeen[1] {
			next = StateLastAck
		} else {
			next = StateFinWait
		}
	case flags&wire.TCPAck != 0:
		switch f.state {
		case StateSynRecv:
			if dir == 0 {
				next = StateEstablished
			}
		case StateLastAck:
			next = StateTimeWait
		}
	}
	p.setState(f, next)
}

// setState moves a flow between states, keeping the per-state gauges.
func (p *Plane) setState(f *flow, s State) {
	if f.state == s {
		return
	}
	p.stateCount[f.state]--
	p.stateCount[s]++
	f.state = s
}

// idleLimit returns the idle timeout for a flow's current state.
func (p *Plane) idleLimit(f *flow) time.Duration {
	if f.orig.Proto == wire.ProtoUDP {
		return p.cfg.UDPIdle
	}
	switch f.state {
	case StateEstablished:
		return p.cfg.EstablishedIdle
	case StateClosed:
		return p.cfg.ClosedLinger
	default:
		return p.cfg.TransientIdle
	}
}

// insertFlow registers a flow under both of its wire tuples, evicting
// the stalest entry first when the table is full.
func (p *Plane) insertFlow(f *flow) {
	if p.flowCount >= p.cfg.MaxFlows {
		p.evictOne()
	}
	p.ct[f.orig] = ctEntry{f: f, dir: 0}
	p.ct[f.reply] = ctEntry{f: f, dir: 1}
	p.flowCount++
	p.stateCount[f.state]++
	p.Stats.CTCreated.Inc()
	if f.vip != nil && f.backend >= 0 {
		b := f.vip.backends[f.backend]
		b.Conns.Inc()
		b.liveFlows++
	}
}

// removeFlow drops a flow from the table, releasing its SNAT port and
// backend accounting.
func (p *Plane) removeFlow(f *flow) {
	delete(p.ct, f.orig)
	delete(p.ct, f.reply)
	p.flowCount--
	p.stateCount[f.state]--
	if f.snat != 0 {
		p.snat.free(f.snat)
		f.snat = 0
	}
	if f.vip != nil && f.backend >= 0 {
		f.vip.backends[f.backend].liveFlows--
	}
}

// evictOne removes the least recently seen flow (ties break toward the
// oldest flow ID) — a deterministic table-full policy.
func (p *Plane) evictOne() {
	var victim *flow
	for _, e := range p.ct {
		if e.dir != 0 {
			continue
		}
		f := e.f
		if victim == nil || f.lastSeen < victim.lastSeen ||
			(f.lastSeen == victim.lastSeen && f.id < victim.id) {
			victim = f
		}
	}
	if victim != nil {
		p.removeFlow(victim)
		p.Stats.CTEvicted.Inc()
	}
}

// gc removes every flow idle past its state's limit. Expiry candidates
// are ordered by flow ID so the removal order (and every counter it
// touches) is independent of map iteration order.
func (p *Plane) gc() {
	now := p.cfg.Sim.Now()
	var expired []*flow
	for _, e := range p.ct {
		if e.dir != 0 {
			continue
		}
		if now.Sub(e.f.lastSeen) >= p.idleLimit(e.f) {
			expired = append(expired, e.f)
		}
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i].id < expired[j].id })
	for _, f := range expired {
		p.removeFlow(f)
		p.Stats.CTExpired.Inc()
	}
}

// sortedFlows returns every tracked flow ordered by its original tuple.
func (p *Plane) sortedFlows() []*flow {
	out := make([]*flow, 0, p.flowCount)
	for _, e := range p.ct {
		if e.dir == 0 {
			out = append(out, e.f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].orig.less(out[j].orig) })
	return out
}

// portAlloc hands out SNAT ports deterministically: a round-robin scan
// from the last allocation, so a given allocation/free history always
// yields the same ports.
type portAlloc struct {
	base  uint16
	inUse []bool
	used  int
	next  int
}

func newPortAlloc(base uint16, count int) *portAlloc {
	return &portAlloc{base: base, inUse: make([]bool, count)}
}

func (a *portAlloc) alloc() (uint16, bool) {
	if a.used == len(a.inUse) {
		return 0, false
	}
	for i := 0; i < len(a.inUse); i++ {
		slot := (a.next + i) % len(a.inUse)
		if !a.inUse[slot] {
			a.inUse[slot] = true
			a.used++
			a.next = (slot + 1) % len(a.inUse)
			return a.base + uint16(slot), true
		}
	}
	return 0, false
}

func (a *portAlloc) free(p uint16) {
	slot := int(p - a.base)
	if slot >= 0 && slot < len(a.inUse) && a.inUse[slot] {
		a.inUse[slot] = false
		a.used--
	}
}

func (a *portAlloc) inUseCount() int { return a.used }
