package dataplane

import (
	"encoding/binary"
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/sim"
	"repro/internal/wire"
)

var (
	lbIP      = wire.IP(10, 0, 0, 1)
	lbMAC     = wire.MAC{2, 0, 0, 0, 0, 0x01}
	vipIP     = wire.IP(10, 0, 0, 100)
	clientIP  = wire.IP(10, 0, 0, 50)
	clientMAC = wire.MAC{2, 0, 0, 0, 0, 0x50}
	be1IP     = wire.IP(10, 0, 0, 11)
	be1MAC    = wire.MAC{2, 0, 0, 0, 0, 0x11}
	be2IP     = wire.IP(10, 0, 0, 12)
	be2MAC    = wire.MAC{2, 0, 0, 0, 0, 0x12}
)

const (
	vipPort = uint16(80)
	bePort  = uint16(8080)
	clPort  = uint16(4000)
)

type harness struct {
	s    *sim.Sim
	p    *Plane
	sent [][]byte
}

func newHarness(t *testing.T, mut func(*Config)) *harness {
	t.Helper()
	h := &harness{s: sim.New(1)}
	cfg := Config{
		Sim:      h.s,
		Name:     "lb",
		LocalIP:  lbIP,
		LocalMAC: lbMAC,
		Transmit: func(f []byte) error { h.sent = append(h.sent, f); return nil },
	}
	if mut != nil {
		mut(&cfg)
	}
	h.p = New(cfg)
	return h
}

func (h *harness) vip(t *testing.T) *VIP {
	t.Helper()
	v, err := h.p.InstallVIP(vipIP, vipPort, []Backend{
		{Name: "be1", IP: be1IP, Port: bePort, MAC: be1MAC},
		{Name: "be2", IP: be2IP, Port: bePort, MAC: be2MAC},
	})
	if err != nil {
		t.Fatalf("InstallVIP: %v", err)
	}
	return v
}

// takeSent pops all captured transmissions.
func (h *harness) takeSent() [][]byte {
	out := h.sent
	h.sent = nil
	return out
}

// tcpFrame builds a checksummed Ethernet/IPv4/TCP frame.
func tcpFrame(srcMAC, dstMAC wire.MAC, src, dst wire.IPAddr, sport, dport uint16, flags uint8, seq, ack uint32, payload []byte) []byte {
	frame := make([]byte, tpAt+wire.TCPHeaderLen+len(payload))
	eh := wire.EthHeader{Dst: dstMAC, Src: srcMAC, Type: wire.EtherTypeIPv4}
	eh.Marshal(frame)
	th := wire.TCPHeader{SrcPort: sport, DstPort: dport, Seq: seq, Ack: ack, Flags: flags, Window: 65535}
	tb := frame[tpAt:]
	th.Marshal(tb[:wire.TCPHeaderLen])
	copy(tb[wire.TCPHeaderLen:], payload)
	ck := wire.TCPChecksum(src, dst, tb[:wire.TCPHeaderLen], payload)
	binary.BigEndian.PutUint16(tb[wire.TCPChecksumOffset:], ck)
	ih := wire.IPv4Header{
		TotalLen: uint16(wire.IPv4HeaderLen + wire.TCPHeaderLen + len(payload)),
		TTL:      wire.DefaultTTL, Proto: wire.ProtoTCP, Src: src, Dst: dst,
	}
	ih.Marshal(frame[ipAt:tpAt])
	return frame
}

// udpFrame builds a checksummed Ethernet/IPv4/UDP frame.
func udpFrame(srcMAC, dstMAC wire.MAC, src, dst wire.IPAddr, sport, dport uint16, payload []byte, checksummed bool) []byte {
	frame := make([]byte, tpAt+wire.UDPHeaderLen+len(payload))
	eh := wire.EthHeader{Dst: dstMAC, Src: srcMAC, Type: wire.EtherTypeIPv4}
	eh.Marshal(frame)
	tb := frame[tpAt:]
	uh := wire.UDPHeader{SrcPort: sport, DstPort: dport, Length: uint16(wire.UDPHeaderLen + len(payload))}
	uh.Marshal(tb[:wire.UDPHeaderLen])
	copy(tb[wire.UDPHeaderLen:], payload)
	if checksummed {
		ck := wire.UDPChecksum(src, dst, tb[:wire.UDPHeaderLen], payload)
		binary.BigEndian.PutUint16(tb[wire.UDPChecksumOffset:], ck)
	}
	ih := wire.IPv4Header{
		TotalLen: uint16(wire.IPv4HeaderLen + wire.UDPHeaderLen + len(payload)),
		TTL:      wire.DefaultTTL, Proto: wire.ProtoUDP, Src: src, Dst: dst,
	}
	ih.Marshal(frame[ipAt:tpAt])
	return frame
}

// checkFrame validates a rewritten frame end to end: IP header checksum,
// transport checksum against the rewritten addresses, and the expected
// 5-tuple and Ethernet addressing.
func checkFrame(t *testing.T, frame []byte, wantDstMAC wire.MAC, src, dst wire.IPAddr, sport, dport uint16) {
	t.Helper()
	checkFrameTTL(t, frame, wire.DefaultTTL-1, wantDstMAC, src, dst, sport, dport)
}

// checkFrameTTL is checkFrame with an explicit expected TTL (forwarded
// frames are decremented; locally synthesized ones are not).
func checkFrameTTL(t *testing.T, frame []byte, wantTTL uint8, wantDstMAC wire.MAC, src, dst wire.IPAddr, sport, dport uint16) {
	t.Helper()
	ip := frame[ipAt:]
	var c wire.Checksummer
	c.Add(ip[:wire.IPv4HeaderLen])
	if c.Sum() != 0 {
		t.Fatalf("IP checksum invalid after rewrite")
	}
	var gotSrc, gotDst wire.IPAddr
	copy(gotSrc[:], ip[12:16])
	copy(gotDst[:], ip[16:20])
	if gotSrc != src || gotDst != dst {
		t.Fatalf("addresses = %v->%v, want %v->%v", gotSrc, gotDst, src, dst)
	}
	totalLen := int(binary.BigEndian.Uint16(ip[2:4]))
	seg := ip[wire.IPv4HeaderLen:totalLen]
	switch ip[9] {
	case wire.ProtoTCP:
		if !wire.VerifyTCPChecksum(src, dst, seg) {
			t.Fatalf("TCP checksum invalid after rewrite")
		}
	case wire.ProtoUDP:
		if !wire.VerifyUDPChecksum(src, dst, seg) {
			t.Fatalf("UDP checksum invalid after rewrite")
		}
	}
	tp := ip[wire.IPv4HeaderLen:]
	if got := binary.BigEndian.Uint16(tp[0:2]); got != sport {
		t.Fatalf("sport = %d, want %d", got, sport)
	}
	if got := binary.BigEndian.Uint16(tp[2:4]); got != dport {
		t.Fatalf("dport = %d, want %d", got, dport)
	}
	var gotMAC wire.MAC
	copy(gotMAC[:], frame[0:6])
	if gotMAC != wantDstMAC {
		t.Fatalf("eth dst = %v, want %v", gotMAC, wantDstMAC)
	}
	if ip[8] != wantTTL {
		t.Fatalf("TTL = %d, want %d", ip[8], wantTTL)
	}
}

// TestVIPFullNAT drives one TCP connection through the load balancer:
// SYN in (DNAT+SNAT hairpin), SYN|ACK back (un-NAT hairpin), data, and
// teardown, checking checksums and conntrack state at each step.
func TestVIPFullNAT(t *testing.T) {
	h := newHarness(t, nil)
	v := h.vip(t)

	syn := tcpFrame(clientMAC, lbMAC, clientIP, vipIP, clPort, vipPort, wire.TCPSyn, 1000, 0, nil)
	nf, verdict := h.p.Ingress(syn)
	if verdict != filter.VerdictAbsorb || nf != nil {
		t.Fatalf("SYN: verdict %v, frame %v", verdict, nf != nil)
	}
	sent := h.takeSent()
	if len(sent) != 1 {
		t.Fatalf("SYN: %d frames sent, want 1", len(sent))
	}
	if h.p.FlowCount() != 1 || h.p.SNATInUse() != 1 {
		t.Fatalf("flows=%d snat=%d after SYN", h.p.FlowCount(), h.p.SNATInUse())
	}
	f := h.p.sortedFlows()[0]
	if f.state != StateSynSent {
		t.Fatalf("state = %v, want syn_sent", f.state)
	}
	be := v.backends[f.backend]
	checkFrame(t, sent[0], be.MAC, lbIP, be.IP, f.snat, bePort)
	if be.Conns.Value() != 1 || be.liveFlows != 1 {
		t.Fatalf("backend accounting: conns=%d live=%d", be.Conns.Value(), be.liveFlows)
	}

	// Backend answers; the reply is un-NATted back to the client as
	// VIP:80 -> client.
	synack := tcpFrame(be.MAC, lbMAC, be.IP, lbIP, bePort, f.snat, wire.TCPSyn|wire.TCPAck, 7000, 1001, nil)
	nf, verdict = h.p.Ingress(synack)
	if verdict != filter.VerdictAbsorb || nf != nil {
		t.Fatalf("SYN|ACK: verdict %v", verdict)
	}
	sent = h.takeSent()
	if len(sent) != 1 {
		t.Fatalf("SYN|ACK: %d frames sent", len(sent))
	}
	checkFrame(t, sent[0], clientMAC, vipIP, clientIP, vipPort, clPort)
	if f.state != StateSynRecv || !f.sawReply {
		t.Fatalf("state = %v sawReply=%v", f.state, f.sawReply)
	}

	// Client completes the handshake and sends data.
	ack := tcpFrame(clientMAC, lbMAC, clientIP, vipIP, clPort, vipPort, wire.TCPAck, 1001, 7001, []byte("hello"))
	if _, verdict = h.p.Ingress(ack); verdict != filter.VerdictAbsorb {
		t.Fatalf("data: verdict %v", verdict)
	}
	sent = h.takeSent()
	checkFrame(t, sent[0], be.MAC, lbIP, be.IP, f.snat, bePort)
	if f.state != StateEstablished {
		t.Fatalf("state = %v, want established", f.state)
	}
	if f.clientAck != 7001 || f.clientEndSeq != 1006 {
		t.Fatalf("clientAck=%d clientEndSeq=%d", f.clientAck, f.clientEndSeq)
	}

	// Orderly close from both sides.
	h.p.Ingress(tcpFrame(clientMAC, lbMAC, clientIP, vipIP, clPort, vipPort, wire.TCPFin|wire.TCPAck, 1006, 7001, nil))
	if f.state != StateFinWait {
		t.Fatalf("after client FIN: %v", f.state)
	}
	h.p.Ingress(tcpFrame(be.MAC, lbMAC, be.IP, lbIP, bePort, f.snat, wire.TCPFin|wire.TCPAck, 7001, 1007, nil))
	if f.state != StateLastAck {
		t.Fatalf("after backend FIN: %v", f.state)
	}
	h.p.Ingress(tcpFrame(clientMAC, lbMAC, clientIP, vipIP, clPort, vipPort, wire.TCPAck, 1007, 7002, nil))
	if f.state != StateTimeWait {
		t.Fatalf("after last ACK: %v", f.state)
	}
	h.takeSent()

	// GC reclaims the flow (and its SNAT port) once it sits idle.
	if err := h.s.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if h.p.FlowCount() != 0 || h.p.SNATInUse() != 0 {
		t.Fatalf("flows=%d snat=%d after GC", h.p.FlowCount(), h.p.SNATInUse())
	}
	if h.p.Stats.CTExpired.Value() != 1 {
		t.Fatalf("expired = %d", h.p.Stats.CTExpired.Value())
	}
}

// TestVIPMidStreamSegmentDropped: a non-SYN TCP segment with no flow
// entry must not reach a backend.
func TestVIPMidStreamSegmentDropped(t *testing.T) {
	h := newHarness(t, nil)
	h.vip(t)
	seg := tcpFrame(clientMAC, lbMAC, clientIP, vipIP, clPort, vipPort, wire.TCPAck, 5, 5, []byte("x"))
	if _, verdict := h.p.Ingress(seg); verdict != filter.VerdictDrop {
		t.Fatalf("verdict %v, want drop", verdict)
	}
	if h.p.Stats.CTInvalid.Value() != 1 {
		t.Fatal("ct invalid not counted")
	}
}

// TestVIPUDP: UDP flows through the VIP keep valid checksums, and the
// zero ("no checksum") marker survives rewriting untouched.
func TestVIPUDP(t *testing.T) {
	h := newHarness(t, nil)
	v := h.vip(t)

	d := udpFrame(clientMAC, lbMAC, clientIP, vipIP, clPort, vipPort, []byte("ping"), true)
	if _, verdict := h.p.Ingress(d); verdict != filter.VerdictAbsorb {
		t.Fatalf("verdict %v", verdict)
	}
	f := h.p.sortedFlows()[0]
	be := v.backends[f.backend]
	sent := h.takeSent()
	checkFrame(t, sent[0], be.MAC, lbIP, be.IP, f.snat, bePort)

	// Same flow, checksum disabled: the zero field must stay zero.
	d0 := udpFrame(clientMAC, lbMAC, clientIP, vipIP, clPort, vipPort, []byte("pong"), false)
	h.p.Ingress(d0)
	sent = h.takeSent()
	out := sent[0]
	if got := binary.BigEndian.Uint16(out[tpAt+wire.UDPChecksumOffset:]); got != 0 {
		t.Fatalf("zero UDP checksum rewritten to %#x", got)
	}
}

// TestKillBackendRehomesEmbryonic: an un-answered connection whose
// backend dies is re-pointed at a survivor, and the client's SYN
// retransmission reaches the new backend. Nothing leaks.
func TestKillBackendRehomesEmbryonic(t *testing.T) {
	h := newHarness(t, nil)
	v := h.vip(t)

	syn := tcpFrame(clientMAC, lbMAC, clientIP, vipIP, clPort, vipPort, wire.TCPSyn, 1000, 0, nil)
	h.p.Ingress(syn)
	f := h.p.sortedFlows()[0]
	dead := f.backend
	h.takeSent()

	v.KillBackend(dead)
	if h.p.Stats.LBRehomed.Value() != 1 {
		t.Fatalf("rehomed = %d", h.p.Stats.LBRehomed.Value())
	}
	if f.backend == dead {
		t.Fatal("flow still pinned to dead backend")
	}
	if h.p.FlowCount() != 1 || h.p.SNATInUse() != 1 {
		t.Fatalf("flows=%d snat=%d", h.p.FlowCount(), h.p.SNATInUse())
	}
	live := v.backends[f.backend]
	if v.backends[dead].liveFlows != 0 || live.liveFlows != 1 {
		t.Fatalf("liveFlows: dead=%d live=%d", v.backends[dead].liveFlows, live.liveFlows)
	}

	// The retransmitted SYN follows the re-homed translation.
	h.p.Ingress(syn)
	sent := h.takeSent()
	if len(sent) != 1 {
		t.Fatalf("%d frames after retransmit", len(sent))
	}
	checkFrame(t, sent[0], live.MAC, lbIP, live.IP, f.snat, bePort)

	// And the new backend's answer completes the handshake.
	synack := tcpFrame(live.MAC, lbMAC, live.IP, lbIP, bePort, f.snat, wire.TCPSyn|wire.TCPAck, 9000, 1001, nil)
	if _, verdict := h.p.Ingress(synack); verdict != filter.VerdictAbsorb {
		t.Fatalf("rehomed SYN|ACK: %v", verdict)
	}
	if f.state != StateSynRecv {
		t.Fatalf("state = %v", f.state)
	}
}

// TestKillBackendResetsEstablished: established flows on a dead backend
// are terminated with a well-formed RST toward the client, and every
// session and SNAT port is released.
func TestKillBackendResetsEstablished(t *testing.T) {
	h := newHarness(t, nil)
	v := h.vip(t)

	h.p.Ingress(tcpFrame(clientMAC, lbMAC, clientIP, vipIP, clPort, vipPort, wire.TCPSyn, 1000, 0, nil))
	f := h.p.sortedFlows()[0]
	be := v.backends[f.backend]
	h.p.Ingress(tcpFrame(be.MAC, lbMAC, be.IP, lbIP, bePort, f.snat, wire.TCPSyn|wire.TCPAck, 7000, 1001, nil))
	h.p.Ingress(tcpFrame(clientMAC, lbMAC, clientIP, vipIP, clPort, vipPort, wire.TCPAck, 1001, 7001, nil))
	if f.state != StateEstablished {
		t.Fatalf("state = %v", f.state)
	}
	snat := f.snat // removeFlow zeroes it when the kill releases the port
	h.takeSent()

	v.KillBackend(f.backend)
	if h.p.Stats.LBResets.Value() != 1 {
		t.Fatalf("resets = %d", h.p.Stats.LBResets.Value())
	}
	if h.p.FlowCount() != 0 || h.p.SNATInUse() != 0 {
		t.Fatalf("leak: flows=%d snat=%d", h.p.FlowCount(), h.p.SNATInUse())
	}
	sent := h.takeSent()
	if len(sent) != 2 {
		t.Fatalf("%d frames sent on kill, want 2 (client + backend RST)", len(sent))
	}
	rst := sent[0]
	checkFrameTTL(t, rst, wire.DefaultTTL, clientMAC, vipIP, clientIP, vipPort, clPort)
	tp := rst[tpAt:]
	if tp[13] != wire.TCPRst|wire.TCPAck {
		t.Fatalf("flags = %s", wire.FlagString(tp[13]))
	}
	// The RST must carry the client's rcv_nxt so its TCP accepts it.
	if got := binary.BigEndian.Uint32(tp[4:8]); got != 7001 {
		t.Fatalf("RST seq = %d, want 7001", got)
	}
	// The mirror reset tears down the dead backend's half of the session.
	brst := sent[1]
	checkFrameTTL(t, brst, wire.DefaultTTL, be.MAC, lbIP, be.IP, snat, bePort)
	btp := brst[tpAt:]
	if btp[13] != wire.TCPRst {
		t.Fatalf("backend RST flags = %s", wire.FlagString(btp[13]))
	}
	if got := binary.BigEndian.Uint32(btp[4:8]); got != 1001 {
		t.Fatalf("backend RST seq = %d, want 1001 (client seq space)", got)
	}
}

// TestAddBackendPinsExistingFlows: growing the pool must not move a
// conntrack-pinned flow even if the hash now prefers the new member.
func TestAddBackendPinsExistingFlows(t *testing.T) {
	h := newHarness(t, nil)
	v := h.vip(t)

	h.p.Ingress(tcpFrame(clientMAC, lbMAC, clientIP, vipIP, clPort, vipPort, wire.TCPSyn, 1000, 0, nil))
	f := h.p.sortedFlows()[0]
	pinned := f.backend
	h.takeSent()

	v.AddBackend(Backend{Name: "be3", IP: wire.IP(10, 0, 0, 13), Port: bePort, MAC: wire.MAC{2, 0, 0, 0, 0, 0x13}})
	h.p.Ingress(tcpFrame(clientMAC, lbMAC, clientIP, vipIP, clPort, vipPort, wire.TCPSyn, 1000, 0, nil))
	if f.backend != pinned {
		t.Fatal("pool growth moved a pinned flow")
	}
	sent := h.takeSent()
	checkFrame(t, sent[0], v.backends[pinned].MAC, lbIP, v.backends[pinned].IP, f.snat, bePort)
}

// TestVIPNoBackends: with every backend dead, new connections are
// refused, not crashed into.
func TestVIPNoBackends(t *testing.T) {
	h := newHarness(t, nil)
	v := h.vip(t)
	v.KillBackend(0)
	v.KillBackend(1)
	syn := tcpFrame(clientMAC, lbMAC, clientIP, vipIP, clPort, vipPort, wire.TCPSyn, 1, 0, nil)
	if _, verdict := h.p.Ingress(syn); verdict != filter.VerdictDrop {
		t.Fatalf("verdict %v, want drop", verdict)
	}
	if h.p.Stats.LBRefused.Value() != 1 {
		t.Fatal("refusal not counted")
	}
}

// TestARPProxy: the plane answers ARP requests for VIP addresses with
// the host's MAC and absorbs the request.
func TestARPProxy(t *testing.T) {
	h := newHarness(t, nil)
	h.vip(t)

	req := wire.ARPPacket{Op: wire.ARPRequest, SenderMAC: clientMAC, SenderIP: clientIP, TargetIP: vipIP}
	frame := make([]byte, wire.EthHeaderLen+wire.ARPLen)
	eh := wire.EthHeader{Dst: wire.BroadcastMAC, Src: clientMAC, Type: wire.EtherTypeARP}
	eh.Marshal(frame)
	copy(frame[wire.EthHeaderLen:], req.Marshal())

	if _, verdict := h.p.Ingress(frame); verdict != filter.VerdictAbsorb {
		t.Fatalf("verdict %v", verdict)
	}
	sent := h.takeSent()
	if len(sent) != 1 {
		t.Fatalf("%d frames sent", len(sent))
	}
	reply, err := wire.UnmarshalARP(sent[0][wire.EthHeaderLen:])
	if err != nil {
		t.Fatal(err)
	}
	if reply.Op != wire.ARPReply || reply.SenderIP != vipIP || reply.SenderMAC != lbMAC || reply.TargetMAC != clientMAC {
		t.Fatalf("bad ARP reply: %+v", reply)
	}

	// ARP for an unowned address passes through untouched.
	req.TargetIP = wire.IP(10, 0, 0, 99)
	copy(frame[wire.EthHeaderLen:], req.Marshal())
	if _, verdict := h.p.Ingress(frame); verdict != filter.VerdictPass {
		t.Fatalf("unowned ARP: verdict %v", verdict)
	}
}

// TestRedirect: a DNAT-to-local rule rewrites inbound connections to
// the host's own stack, and Egress un-NATs the replies in place.
func TestRedirect(t *testing.T) {
	h := newHarness(t, nil)
	rdIP := wire.IP(10, 0, 0, 200)
	if err := h.p.InstallRedirect(rdIP, 80, 8080); err != nil {
		t.Fatal(err)
	}

	syn := tcpFrame(clientMAC, lbMAC, clientIP, rdIP, clPort, 80, wire.TCPSyn, 500, 0, nil)
	nf, verdict := h.p.Ingress(syn)
	if verdict != filter.VerdictPass || nf == nil {
		t.Fatalf("verdict %v, frame %v", verdict, nf != nil)
	}
	// The rewritten frame heads for the local stack, client identity kept.
	checkFrame(t, nf, lbMAC, clientIP, lbIP, clPort, 8080)

	// The stack's reply is un-NATted on egress so the client sees the
	// address it connected to.
	reply := tcpFrame(lbMAC, clientMAC, lbIP, clientIP, 8080, clPort, wire.TCPSyn|wire.TCPAck, 300, 501, nil)
	nf, verdict = h.p.Egress(reply)
	if verdict != filter.VerdictPass || nf == nil {
		t.Fatalf("egress: verdict %v, frame %v", verdict, nf != nil)
	}
	checkFrame(t, nf, clientMAC, rdIP, clientIP, 80, clPort)
	f := h.p.sortedFlows()[0]
	if f.state != StateSynRecv || !f.sawReply {
		t.Fatalf("state %v sawReply %v", f.state, f.sawReply)
	}
}

// TestChainVerdicts: the plane's rule chain drops or passes ahead of
// the stateful stages.
func TestChainVerdicts(t *testing.T) {
	h := newHarness(t, nil)
	h.vip(t)
	// Drop anything from the client's address.
	prog := filter.Compile(filter.MatchSpec{RemoteIP: clientIP})
	if _, err := h.p.Chain.Append(prog, filter.VerdictDrop); err != nil {
		t.Fatal(err)
	}
	syn := tcpFrame(clientMAC, lbMAC, clientIP, vipIP, clPort, vipPort, wire.TCPSyn, 1, 0, nil)
	if _, verdict := h.p.Ingress(syn); verdict != filter.VerdictDrop {
		t.Fatalf("verdict %v, want drop", verdict)
	}
	if h.p.FlowCount() != 0 {
		t.Fatal("dropped frame created a flow")
	}
}

// TestIngressCostScalesWithChain: cost is linear in installed rule
// instructions and independent of the frame.
func TestIngressCostScalesWithChain(t *testing.T) {
	h := newHarness(t, nil)
	base := h.p.IngressCost(nil)
	if base != DefaultPerPacket {
		t.Fatalf("empty-chain cost = %v", base)
	}
	prog := filter.Compile(filter.MatchSpec{RemoteIP: clientIP})
	if _, err := h.p.Chain.Append(prog, filter.VerdictDrop); err != nil {
		t.Fatal(err)
	}
	want := DefaultPerPacket + time.Duration(h.p.Chain.Instructions())*DefaultPerInstr
	if got := h.p.IngressCost(nil); got != want {
		t.Fatalf("cost = %v, want %v", got, want)
	}
}

// TestTTLExpiry: a frame arriving with TTL 1 is dropped, not forwarded
// with TTL 0.
func TestTTLExpiry(t *testing.T) {
	h := newHarness(t, nil)
	h.vip(t)
	syn := tcpFrame(clientMAC, lbMAC, clientIP, vipIP, clPort, vipPort, wire.TCPSyn, 1, 0, nil)
	syn[ipAt+8] = 1 // corrupt TTL; checksum no longer matters for the drop path
	if _, verdict := h.p.Ingress(syn); verdict != filter.VerdictDrop {
		t.Fatalf("verdict %v, want drop", verdict)
	}
}

// TestSNATExhaustion: when the port pool is empty new connections are
// refused and counted.
func TestSNATExhaustion(t *testing.T) {
	h := newHarness(t, func(c *Config) { c.SNATCount = 2 })
	h.vip(t)
	for i := 0; i < 3; i++ {
		syn := tcpFrame(clientMAC, lbMAC, clientIP, vipIP, clPort+uint16(i), vipPort, wire.TCPSyn, 1, 0, nil)
		h.p.Ingress(syn)
	}
	if h.p.SNATInUse() != 2 || h.p.Stats.SNATFailed.Value() != 1 {
		t.Fatalf("snat=%d failed=%d", h.p.SNATInUse(), h.p.Stats.SNATFailed.Value())
	}
}
