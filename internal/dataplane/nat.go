package dataplane

import (
	"encoding/binary"

	"repro/internal/wire"
)

// Fixed offsets within the frames the plane rewrites (Ethernet II, IPv4
// with IHL=5 — parseFrame rejects anything else).
const (
	ipAt = wire.EthHeaderLen
	tpAt = wire.EthHeaderLen + wire.IPv4HeaderLen
)

// parsed is the plane's minimal view of a TCP/UDP frame.
type parsed struct {
	proto  uint8
	t      tuple
	flags  uint8 // TCP flags (0 for UDP)
	seq    uint32
	ack    uint32
	payLen int // transport payload length
	srcMAC wire.MAC
}

// parseFrame extracts the 5-tuple of an unfragmented IPv4 TCP/UDP frame.
// ok is false for everything else — those frames are not the plane's
// business and pass through untouched.
func parseFrame(frame []byte) (p parsed, ok bool) {
	if len(frame) < tpAt+wire.UDPHeaderLen {
		return p, false
	}
	if binary.BigEndian.Uint16(frame[12:14]) != wire.EtherTypeIPv4 {
		return p, false
	}
	ip := frame[ipAt:]
	if ip[0] != 0x45 {
		return p, false
	}
	if fo := binary.BigEndian.Uint16(ip[6:8]); fo&(wire.IPFlagMF|wire.IPOffMask) != 0 {
		return p, false // fragments take the slow path whole
	}
	p.proto = ip[9]
	totalLen := int(binary.BigEndian.Uint16(ip[2:4]))
	if totalLen > len(frame)-ipAt {
		return p, false
	}
	copy(p.t.Src[:], ip[12:16])
	copy(p.t.Dst[:], ip[16:20])
	tp := ip[wire.IPv4HeaderLen:]
	switch p.proto {
	case wire.ProtoTCP:
		if len(tp) < wire.TCPHeaderLen {
			return p, false
		}
		p.t.SrcPort = binary.BigEndian.Uint16(tp[0:2])
		p.t.DstPort = binary.BigEndian.Uint16(tp[2:4])
		p.seq = binary.BigEndian.Uint32(tp[4:8])
		p.ack = binary.BigEndian.Uint32(tp[8:12])
		p.flags = tp[13]
		hl := int(tp[12]>>4) * 4
		if hl < wire.TCPHeaderLen || hl > totalLen-wire.IPv4HeaderLen {
			return p, false
		}
		p.payLen = totalLen - wire.IPv4HeaderLen - hl
	case wire.ProtoUDP:
		p.t.SrcPort = binary.BigEndian.Uint16(tp[0:2])
		p.t.DstPort = binary.BigEndian.Uint16(tp[2:4])
		p.payLen = totalLen - wire.IPv4HeaderLen - wire.UDPHeaderLen
	default:
		return p, false
	}
	p.t.Proto = p.proto
	copy(p.srcMAC[:], frame[6:12])
	return p, true
}

// applyXlate rewrites frame in place per x: Ethernet addresses, IP
// addresses, transport ports, and a TTL decrement, with every checksum
// updated incrementally (RFC 1624) — the payload is never re-summed.
// Returns false when the TTL expired (caller drops).
func (p *Plane) applyXlate(frame []byte, x *xlate) bool {
	ip := frame[ipAt:]

	// TTL decrement, like any forwarding middlebox.
	if ip[8] <= 1 {
		return false
	}
	var oldTTL [2]byte
	oldTTL[0], oldTTL[1] = ip[8], ip[9]
	ip[8]--

	var oldAddrs [8]byte
	copy(oldAddrs[:], ip[12:20])
	copy(ip[12:16], x.srcIP[:])
	copy(ip[16:20], x.dstIP[:])

	ipck := binary.BigEndian.Uint16(ip[10:12])
	ipck = wire.ChecksumFixup(ipck, oldTTL[:], ip[8:10])
	ipck = wire.ChecksumFixup(ipck, oldAddrs[:], ip[12:20])
	binary.BigEndian.PutUint16(ip[10:12], ipck)

	tp := ip[wire.IPv4HeaderLen:]
	var oldPorts [4]byte
	copy(oldPorts[:], tp[0:4])
	binary.BigEndian.PutUint16(tp[0:2], x.srcPort)
	binary.BigEndian.PutUint16(tp[2:4], x.dstPort)

	var ckOff int
	switch ip[9] {
	case wire.ProtoTCP:
		ckOff = wire.TCPChecksumOffset
	case wire.ProtoUDP:
		ckOff = wire.UDPChecksumOffset
	}
	ck := binary.BigEndian.Uint16(tp[ckOff : ckOff+2])
	if !(ip[9] == wire.ProtoUDP && ck == 0) { // UDP zero means "no checksum"
		// The transport checksum covers the pseudo-header, so the address
		// rewrite feeds it too; TTL does not.
		ck = wire.ChecksumFixup(ck, oldAddrs[:], ip[12:20])
		ck = wire.ChecksumFixup(ck, oldPorts[:], tp[0:4])
		if ip[9] == wire.ProtoUDP && ck == 0 {
			ck = 0xffff // RFC 768: computed zero is transmitted as all-ones
		}
		binary.BigEndian.PutUint16(tp[ckOff:ckOff+2], ck)
	}

	copy(frame[0:6], x.dstMAC[:])
	copy(frame[6:12], p.cfg.LocalMAC[:])
	return true
}

// buildRST assembles a checksummed RST segment from scratch.
func (p *Plane) buildRST(dstMAC wire.MAC, src, dst wire.IPAddr, sport, dport uint16, seq, ack uint32, flags uint8) []byte {
	frame := make([]byte, tpAt+wire.TCPHeaderLen)
	eh := wire.EthHeader{Dst: dstMAC, Src: p.cfg.LocalMAC, Type: wire.EtherTypeIPv4}
	eh.Marshal(frame)

	th := wire.TCPHeader{SrcPort: sport, DstPort: dport, Seq: seq, Ack: ack, Flags: flags}
	tb := frame[tpAt:]
	th.Marshal(tb)
	ck := wire.TCPChecksum(src, dst, tb)
	binary.BigEndian.PutUint16(tb[wire.TCPChecksumOffset:], ck)

	ih := wire.IPv4Header{
		TotalLen: uint16(wire.IPv4HeaderLen + wire.TCPHeaderLen),
		TTL:      wire.DefaultTTL,
		Proto:    wire.ProtoTCP,
		Src:      src,
		Dst:      dst,
	}
	ih.Marshal(frame[ipAt:tpAt])
	return frame
}

// synthRST builds a well-formed RST segment toward a flow's initiator —
// the load balancer's way of terminating an established connection whose
// backend died. The sequence number is the initiator's rcv_nxt (its
// latest cumulative ACK), so its TCP accepts the reset immediately.
func (p *Plane) synthRST(f *flow) []byte {
	return p.buildRST(f.clientMAC,
		f.orig.Dst, f.orig.Src, // from the VIP identity, to the client
		f.orig.DstPort, f.orig.SrcPort,
		f.clientAck, f.clientEndSeq, wire.TCPRst|wire.TCPAck)
}

// synthRSTBackend is the mirror reset toward the flow's backend, sent
// from the SNAT identity the backend has been talking to. NAT preserves
// the client's sequence space, so the backend's rcv_nxt is the highest
// client seq forwarded (clientEndSeq).
func (p *Plane) synthRSTBackend(f *flow) []byte {
	return p.buildRST(f.fwd.dstMAC,
		f.fwd.srcIP, f.fwd.dstIP,
		f.fwd.srcPort, f.fwd.dstPort,
		f.clientEndSeq, 0, wire.TCPRst)
}
