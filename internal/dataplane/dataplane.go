// Package dataplane grows the kernel packet filter into a programmable
// data plane: the stateful extension layer eBPF/netfilter occupy in a
// modern kernel, hosted here by the kern.Host hook the paper's filter
// VM already sits behind, and deterministic on the virtual clock.
//
// Three services compose:
//
//   - Connection tracking: 5-tuple flow entries with a TCP-state-aware
//     lifecycle, idle garbage collection on the virtual clock, a
//     deterministic table-full eviction policy, and per-state gauges.
//   - NAT: DNAT redirect rules and the load balancer's full NAT, with
//     every rewrite's IP and transport checksums updated incrementally
//     (RFC 1624) via the fused wire checksummer — payload is never
//     re-summed.
//   - L4 load balancing: one simulated VIP spreads client connections
//     across a backend pool by Maglev-style consistent hashing.
//     Conntrack pins established flows across pool resizes; when a
//     backend dies, embryonic flows re-home to a surviving backend
//     (the client's SYN retransmit completes the handshake there) and
//     established flows are reset cleanly, releasing every session and
//     SNAT port.
//
// A rule Chain (filter VM programs with verdicts) runs ahead of the
// stateful stages, netfilter-style; its traversal cost is linear in the
// chain's instruction count, which is what the chain-length benchmarks
// measure.
package dataplane

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"repro/internal/filter"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Defaults for Config's zero values.
const (
	DefaultPerInstr        = 25 * time.Nanosecond // per chain VM instruction
	DefaultPerPacket       = 1 * time.Microsecond // fixed hook cost per frame
	DefaultMaxFlows        = 65536
	DefaultEstablishedIdle = 5 * time.Minute
	DefaultTransientIdle   = 30 * time.Second
	DefaultUDPIdle         = time.Minute
	DefaultClosedLinger    = 5 * time.Second
	DefaultGCInterval      = time.Second
	DefaultSNATBase        = 61000
	DefaultSNATCount       = 4096
)

// Config assembles a plane on one host.
type Config struct {
	Sim  *sim.Sim
	Name string // host name, for diagnostics

	// LocalIP/LocalMAC identify the hosting machine: the SNAT side of
	// load-balanced flows and the source of synthesized frames.
	LocalIP  wire.IPAddr
	LocalMAC wire.MAC

	// Transmit is the raw egress path for frames the plane originates or
	// hairpins (kern.Host.RawTransmit): it bypasses the egress hook so
	// forwarded traffic is not re-processed.
	Transmit func(frame []byte) error

	PerInstr  time.Duration // chain traversal cost per VM instruction
	PerPacket time.Duration // fixed per-frame hook cost

	MaxFlows        int
	EstablishedIdle time.Duration
	TransientIdle   time.Duration
	UDPIdle         time.Duration
	ClosedLinger    time.Duration
	GCInterval      time.Duration

	SNATBase  uint16
	SNATCount int
	TableSize int // Maglev lookup-table size (prime)
}

// Stats counts plane activity; BindMetrics registers every counter.
type Stats struct {
	RxFrames   metrics.Counter // frames the ingress hook examined
	Rewrites   metrics.Counter // frames NAT-rewritten (either direction)
	Hairpins   metrics.Counter // rewritten frames forwarded back out the wire
	Drops      metrics.Counter // frames the plane dropped
	ARPReplies metrics.Counter // proxy-ARP answers for owned VIPs

	CTCreated metrics.Counter // flows admitted to the table
	CTExpired metrics.Counter // flows collected by idle GC
	CTEvicted metrics.Counter // flows evicted by the table-full policy
	CTInvalid metrics.Counter // mid-stream segments with no flow entry

	LBConns    metrics.Counter // connections admitted through a VIP
	LBRefused  metrics.Counter // VIP connections with no live backend
	LBRehomed  metrics.Counter // embryonic flows re-pointed after a backend died
	LBResets   metrics.Counter // established flows reset after a backend died
	SNATFailed metrics.Counter // connections refused for port-pool exhaustion
}

// Backend is one pool member behind a VIP.
type Backend struct {
	Name string // hash key for the Maglev permutation; unique in the pool
	IP   wire.IPAddr
	Port uint16
	MAC  wire.MAC // static neighbor entry: the plane never ARPs

	Alive     bool
	Conns     metrics.Counter // connections ever pinned here
	liveFlows int             // currently pinned flows (gauge)
}

// VIP is one virtual service: an owned IP:port spread across a backend
// pool. Backends keep their install index for the life of the VIP, so
// metrics names and flow pins stay stable as the pool changes.
type VIP struct {
	IP       wire.IPAddr
	Port     uint16
	backends []*Backend
	table    []int // Maglev slot -> backend index; nil when pool is empty
	plane    *Plane
}

// vipKey identifies an owned (IP, port) service.
type vipKey struct {
	ip   wire.IPAddr
	port uint16
}

func sortVIPKeys(keys []vipKey) {
	sort.Slice(keys, func(i, j int) bool {
		for b := 0; b < 4; b++ {
			if keys[i].ip[b] != keys[j].ip[b] {
				return keys[i].ip[b] < keys[j].ip[b]
			}
		}
		return keys[i].port < keys[j].port
	})
}

func sortFlowsByID(fs []*flow) {
	sort.Slice(fs, func(i, j int) bool { return fs[i].id < fs[j].id })
}

// redirect is a DNAT-to-local rule: connections to an owned (IP, port)
// are rewritten to the host's own address and delivered up its stack;
// replies are un-NATted on the egress hook.
type redirect struct {
	localPort uint16
}

// Plane is the host's programmable data plane. It implements
// filter.Hook; install with kern.Host.SetHook.
type Plane struct {
	cfg   Config
	Chain *filter.Chain

	ct         map[tuple]ctEntry
	flowCount  int
	stateCount [numStates]int64
	nextFlowID uint64

	vips      map[vipKey]*VIP
	redirects map[vipKey]redirect
	arpOwned  map[wire.IPAddr]int // VIP addresses we proxy-ARP for (refcounted)

	snat  *portAlloc
	scope *metrics.Scope // bound registry scope, for late-added backends

	Stats Stats
}

// New builds a plane and starts its conntrack GC daemon.
func New(cfg Config) *Plane {
	if cfg.PerInstr <= 0 {
		cfg.PerInstr = DefaultPerInstr
	}
	if cfg.PerPacket <= 0 {
		cfg.PerPacket = DefaultPerPacket
	}
	if cfg.MaxFlows <= 0 {
		cfg.MaxFlows = DefaultMaxFlows
	}
	if cfg.EstablishedIdle <= 0 {
		cfg.EstablishedIdle = DefaultEstablishedIdle
	}
	if cfg.TransientIdle <= 0 {
		cfg.TransientIdle = DefaultTransientIdle
	}
	if cfg.UDPIdle <= 0 {
		cfg.UDPIdle = DefaultUDPIdle
	}
	if cfg.ClosedLinger <= 0 {
		cfg.ClosedLinger = DefaultClosedLinger
	}
	if cfg.GCInterval <= 0 {
		cfg.GCInterval = DefaultGCInterval
	}
	if cfg.SNATBase == 0 {
		cfg.SNATBase = DefaultSNATBase
	}
	if cfg.SNATCount <= 0 {
		cfg.SNATCount = DefaultSNATCount
	}
	if cfg.TableSize <= 0 {
		cfg.TableSize = DefaultTableSize
	}
	p := &Plane{
		cfg:       cfg,
		Chain:     filter.NewChain(),
		ct:        make(map[tuple]ctEntry),
		vips:      make(map[vipKey]*VIP),
		redirects: make(map[vipKey]redirect),
		arpOwned:  make(map[wire.IPAddr]int),
		snat:      newPortAlloc(cfg.SNATBase, cfg.SNATCount),
	}
	cfg.Sim.Every(cfg.GCInterval, p.gc)
	return p
}

// BindMetrics registers the plane's counters and gauges under a scope
// (typically "host.<name>.kern.dataplane").
func (p *Plane) BindMetrics(sc *metrics.Scope) {
	if sc == nil {
		return
	}
	p.scope = sc
	sc.Counter("rx_frames", &p.Stats.RxFrames)
	sc.Counter("rewrites", &p.Stats.Rewrites)
	sc.Counter("hairpins", &p.Stats.Hairpins)
	sc.Counter("drops", &p.Stats.Drops)
	sc.Counter("arp_replies", &p.Stats.ARPReplies)
	sc.GaugeFunc("chain_rules", func() int64 { return int64(p.Chain.Len()) })

	ct := sc.Sub("ct")
	ct.Counter("created", &p.Stats.CTCreated)
	ct.Counter("expired", &p.Stats.CTExpired)
	ct.Counter("evicted", &p.Stats.CTEvicted)
	ct.Counter("invalid", &p.Stats.CTInvalid)
	ct.GaugeFunc("flows", func() int64 { return int64(p.flowCount) })
	states := ct.Sub("state")
	for s := StateNew; s < numStates; s++ {
		s := s
		states.GaugeFunc(stateNames[s], func() int64 { return p.stateCount[s] })
	}

	lb := sc.Sub("lb")
	lb.Counter("conns", &p.Stats.LBConns)
	lb.Counter("refused", &p.Stats.LBRefused)
	lb.Counter("rehomed", &p.Stats.LBRehomed)
	lb.Counter("resets", &p.Stats.LBResets)
	lb.Counter("snat_failed", &p.Stats.SNATFailed)
	lb.GaugeFunc("snat_in_use", func() int64 { return int64(p.snat.inUseCount()) })

	for _, v := range p.sortedVIPs() {
		for i, b := range v.backends {
			p.bindBackend(v, i, b)
		}
	}
}

// bindBackend registers one backend's distribution instruments.
func (p *Plane) bindBackend(v *VIP, idx int, b *Backend) {
	if p.scope == nil {
		return
	}
	bs := p.scope.Sub("backend").Sub(fmt.Sprintf("%d", idx))
	bs.Counter("conns", &b.Conns)
	bs.GaugeFunc("flows", func() int64 { return int64(b.liveFlows) })
}

// --- Service installation ----------------------------------------------

// InstallVIP creates a virtual service at (ip, port) over the given
// backend pool. The plane answers ARP for the VIP address and full-NATs
// admitted connections (DNAT to the chosen backend, SNAT to the host's
// own address) so backends see ordinary unicast traffic.
func (p *Plane) InstallVIP(ip wire.IPAddr, port uint16, backends []Backend) (*VIP, error) {
	key := vipKey{ip: ip, port: port}
	if _, dup := p.vips[key]; dup {
		return nil, fmt.Errorf("dataplane: VIP %v:%d already installed", ip, port)
	}
	if _, dup := p.redirects[key]; dup {
		return nil, fmt.Errorf("dataplane: %v:%d already redirected", ip, port)
	}
	v := &VIP{IP: ip, Port: port, plane: p}
	for i := range backends {
		b := backends[i]
		b.Alive = true
		v.backends = append(v.backends, &b)
		p.bindBackend(v, i, v.backends[i])
	}
	v.rebuild()
	p.vips[key] = v
	p.arpOwned[ip]++
	return v, nil
}

// InstallRedirect creates a DNAT rule: connections to (ip, port) are
// rewritten to the host's own (LocalIP, localPort) and delivered up its
// stack; replies are un-NATted on the way out. The plane answers ARP
// for ip.
func (p *Plane) InstallRedirect(ip wire.IPAddr, port, localPort uint16) error {
	key := vipKey{ip: ip, port: port}
	if _, dup := p.vips[key]; dup {
		return fmt.Errorf("dataplane: %v:%d already a VIP", ip, port)
	}
	if _, dup := p.redirects[key]; dup {
		return fmt.Errorf("dataplane: %v:%d already redirected", ip, port)
	}
	p.redirects[key] = redirect{localPort: localPort}
	p.arpOwned[ip]++
	return nil
}

// sortedVIPs returns the installed VIPs in (ip, port) order.
func (p *Plane) sortedVIPs() []*VIP {
	keys := make([]vipKey, 0, len(p.vips))
	for k := range p.vips {
		keys = append(keys, k)
	}
	sortVIPKeys(keys)
	out := make([]*VIP, len(keys))
	for i, k := range keys {
		out[i] = p.vips[k]
	}
	return out
}

// rebuild recomputes the VIP's Maglev table from its live backends.
func (v *VIP) rebuild() {
	keys := make([]string, 0, len(v.backends))
	idx := make([]int, 0, len(v.backends))
	for i, b := range v.backends {
		if b.Alive {
			keys = append(keys, b.Name)
			idx = append(idx, i)
		}
	}
	slots := maglevTable(keys, v.plane.cfg.TableSize)
	if slots == nil {
		v.table = nil
		return
	}
	v.table = make([]int, len(slots))
	for s, k := range slots {
		v.table[s] = idx[k]
	}
}

// pick selects the backend for a new connection, or -1 when the pool
// has no live member.
func (v *VIP) pick(t tuple) int {
	if len(v.table) == 0 {
		return -1
	}
	return v.table[flowHash(t)%uint64(len(v.table))]
}

// Backends returns the pool (install order, dead members included).
func (v *VIP) Backends() []*Backend { return v.backends }

// AddBackend grows the pool. The Maglev rebuild moves only ~1/n of the
// table's slots, and flows already pinned by conntrack never move.
func (v *VIP) AddBackend(b Backend) *Backend {
	b.Alive = true
	nb := &b
	v.backends = append(v.backends, nb)
	v.plane.bindBackend(v, len(v.backends)-1, nb)
	v.rebuild()
	return nb
}

// KillBackend marks backend i dead, rebuilds the table, and migrates
// its sessions: embryonic flows (no reply seen yet) re-home to a live
// backend so the client's SYN retransmission completes the handshake
// there; established flows are terminated with a synthesized RST to the
// client. Either way every session and SNAT port is released — nothing
// leaks on the dead pool member.
func (v *VIP) KillBackend(i int) {
	p := v.plane
	if i < 0 || i >= len(v.backends) || !v.backends[i].Alive {
		return
	}
	v.backends[i].Alive = false
	v.rebuild()

	flows := p.sortedFlowsByID()
	for _, f := range flows {
		if f.vip != v || f.backend != i {
			continue
		}
		if !f.sawReply && f.orig.Proto == wire.ProtoTCP {
			if nb := v.pick(f.orig); nb >= 0 {
				p.rehome(f, v, nb)
				p.Stats.LBRehomed.Inc()
				continue
			}
		}
		if f.orig.Proto == wire.ProtoTCP && f.state != StateClosed {
			// Reset both ends: the client sees its connection die, and
			// the dead pool member's half of the session is torn down
			// rather than left dangling in its stack.
			p.cfg.Transmit(p.synthRST(f))
			p.cfg.Transmit(p.synthRSTBackend(f))
			p.Stats.LBResets.Inc()
		}
		p.removeFlow(f)
	}
}

// rehome re-points an embryonic flow at backend nb: the reply-side
// conntrack key and both translations move to the new backend; the
// SNAT port is kept.
func (p *Plane) rehome(f *flow, v *VIP, nb int) {
	old := v.backends[f.backend]
	old.liveFlows--
	b := v.backends[nb]
	b.Conns.Inc()
	b.liveFlows++

	delete(p.ct, f.reply)
	f.backend = nb
	f.fwd.dstIP, f.fwd.dstPort, f.fwd.dstMAC = b.IP, b.Port, b.MAC
	f.reply = tuple{Src: b.IP, Dst: p.cfg.LocalIP, SrcPort: b.Port, DstPort: f.snat, Proto: f.orig.Proto}
	p.ct[f.reply] = ctEntry{f: f, dir: 1}
}

// sortedFlowsByID returns every tracked flow in creation order.
func (p *Plane) sortedFlowsByID() []*flow {
	out := make([]*flow, 0, p.flowCount)
	for _, e := range p.ct {
		if e.dir == 0 {
			out = append(out, e.f)
		}
	}
	sortFlowsByID(out)
	return out
}

// --- filter.Hook ---------------------------------------------------------

// IngressCost prices one frame's trip through the plane: the fixed hook
// cost plus a full traversal of the rule chain (netfilter semantics — a
// frame matching no rule visits every instruction). It is evaluated
// before Ingress runs and charged at interrupt priority by the host.
func (p *Plane) IngressCost(frame []byte) time.Duration {
	return p.cfg.PerPacket + time.Duration(p.Chain.Instructions())*p.cfg.PerInstr
}

// Ingress classifies one received frame. It may rewrite (returning a
// fresh frame — the original is the network's and is never written),
// absorb it into a hairpin forward, answer it (ARP), or drop it.
func (p *Plane) Ingress(frame []byte) ([]byte, filter.Verdict) {
	p.Stats.RxFrames.Inc()

	if v, matched := p.Chain.Eval(frame); matched && v != filter.VerdictPass {
		if v == filter.VerdictDrop {
			p.Stats.Drops.Inc()
		}
		return nil, v
	}

	if len(p.arpOwned) > 0 && len(frame) >= wire.EthHeaderLen &&
		binary.BigEndian.Uint16(frame[12:14]) == wire.EtherTypeARP {
		return p.arpIngress(frame)
	}

	pf, ok := parseFrame(frame)
	if !ok {
		return nil, filter.VerdictPass
	}

	if e, hit := p.ct[pf.t]; hit {
		return p.conntracked(frame, pf, e)
	}

	key := vipKey{ip: pf.t.Dst, port: pf.t.DstPort}
	if v, isVIP := p.vips[key]; isVIP {
		return p.admitVIP(frame, pf, v)
	}
	if r, isRedir := p.redirects[key]; isRedir {
		return p.admitRedirect(frame, pf, r)
	}
	return nil, filter.VerdictPass
}

// Egress intercepts locally-originated frames. Only redirect replies
// need attention: they are un-NATted in place (the transmit path owns
// its frame) so the client sees the VIP it connected to.
func (p *Plane) Egress(frame []byte) ([]byte, filter.Verdict) {
	if len(p.redirects) == 0 {
		return nil, filter.VerdictPass
	}
	pf, ok := parseFrame(frame)
	if !ok {
		return nil, filter.VerdictPass
	}
	e, hit := p.ct[pf.t]
	if !hit || e.dir != 1 || !e.f.rev.rewrite {
		return nil, filter.VerdictPass
	}
	f := e.f
	f.lastSeen = p.cfg.Sim.Now()
	if pf.proto == wire.ProtoTCP {
		p.updateTCP(f, 1, pf.flags)
		f.sawReply = true
	}
	if !p.applyXlate(frame, &f.rev) {
		p.Stats.Drops.Inc()
		return nil, filter.VerdictDrop
	}
	p.Stats.Rewrites.Inc()
	return frame, filter.VerdictPass
}

// conntracked handles a frame whose tuple is already tracked.
func (p *Plane) conntracked(frame []byte, pf parsed, e ctEntry) ([]byte, filter.Verdict) {
	f := e.f
	f.lastSeen = p.cfg.Sim.Now()
	if pf.proto == wire.ProtoTCP {
		p.updateTCP(f, e.dir, pf.flags)
		if e.dir == 0 {
			if pf.flags&wire.TCPAck != 0 {
				f.clientAck = pf.ack
			}
			if end := pf.seq + uint32(pf.payLen); int32(end-f.clientEndSeq) > 0 {
				f.clientEndSeq = end
			}
		} else {
			f.sawReply = true
		}
	} else if e.dir == 1 {
		f.sawReply = true
	}

	x := &f.fwd
	if e.dir == 1 {
		x = &f.rev
	}
	if !x.rewrite {
		return nil, filter.VerdictPass
	}
	if x.hairpin {
		out := append([]byte(nil), frame...)
		if !p.applyXlate(out, x) {
			p.Stats.Drops.Inc()
			return nil, filter.VerdictDrop
		}
		p.Stats.Rewrites.Inc()
		p.Stats.Hairpins.Inc()
		p.cfg.Transmit(out)
		return nil, filter.VerdictAbsorb
	}
	out := append([]byte(nil), frame...)
	if !p.applyXlate(out, x) {
		p.Stats.Drops.Inc()
		return nil, filter.VerdictDrop
	}
	p.Stats.Rewrites.Inc()
	return out, filter.VerdictPass
}

// admitVIP begins tracking a new connection to a virtual service: pick
// a backend by consistent hash, allocate a SNAT port, install both
// directions in conntrack, and forward the (rewritten) first frame.
func (p *Plane) admitVIP(frame []byte, pf parsed, v *VIP) ([]byte, filter.Verdict) {
	if pf.proto == wire.ProtoTCP && pf.flags&wire.TCPSyn == 0 {
		// Mid-stream segment with no flow: a connection we already
		// terminated (or never admitted). Not ours to deliver.
		p.Stats.CTInvalid.Inc()
		p.Stats.Drops.Inc()
		return nil, filter.VerdictDrop
	}
	bi := v.pick(pf.t)
	if bi < 0 {
		p.Stats.LBRefused.Inc()
		p.Stats.Drops.Inc()
		return nil, filter.VerdictDrop
	}
	b := v.backends[bi]
	snat, ok := p.snat.alloc()
	if !ok {
		p.Stats.SNATFailed.Inc()
		p.Stats.Drops.Inc()
		return nil, filter.VerdictDrop
	}

	now := p.cfg.Sim.Now()
	p.nextFlowID++
	f := &flow{
		id:        p.nextFlowID,
		orig:      pf.t,
		reply:     tuple{Src: b.IP, Dst: p.cfg.LocalIP, SrcPort: b.Port, DstPort: snat, Proto: pf.proto},
		created:   now,
		lastSeen:  now,
		clientMAC: pf.srcMAC,
		backend:   bi,
		vip:       v,
		snat:      snat,
	}
	f.fwd = xlate{
		srcIP: p.cfg.LocalIP, srcPort: snat,
		dstIP: b.IP, dstPort: b.Port,
		dstMAC: b.MAC, hairpin: true, rewrite: true,
	}
	f.rev = xlate{
		srcIP: v.IP, srcPort: v.Port,
		dstIP: pf.t.Src, dstPort: pf.t.SrcPort,
		dstMAC: pf.srcMAC, hairpin: true, rewrite: true,
	}
	if pf.proto == wire.ProtoTCP {
		f.clientEndSeq = pf.seq + uint32(pf.payLen) + 1 // +1 for the SYN
	}
	p.insertFlow(f)
	if pf.proto == wire.ProtoTCP {
		p.updateTCP(f, 0, pf.flags)
	}
	p.Stats.LBConns.Inc()

	out := append([]byte(nil), frame...)
	if !p.applyXlate(out, &f.fwd) {
		p.Stats.Drops.Inc()
		return nil, filter.VerdictDrop
	}
	p.Stats.Rewrites.Inc()
	p.Stats.Hairpins.Inc()
	p.cfg.Transmit(out)
	return nil, filter.VerdictAbsorb
}

// admitRedirect begins tracking a DNAT-to-local connection: the frame
// is rewritten toward the host's own stack and delivered normally;
// the reply direction is handled by Egress.
func (p *Plane) admitRedirect(frame []byte, pf parsed, r redirect) ([]byte, filter.Verdict) {
	if pf.proto == wire.ProtoTCP && pf.flags&wire.TCPSyn == 0 {
		p.Stats.CTInvalid.Inc()
		p.Stats.Drops.Inc()
		return nil, filter.VerdictDrop
	}
	now := p.cfg.Sim.Now()
	p.nextFlowID++
	f := &flow{
		id:   p.nextFlowID,
		orig: pf.t,
		// The reply key is the egress-side tuple: local stack -> client.
		reply:     tuple{Src: p.cfg.LocalIP, Dst: pf.t.Src, SrcPort: r.localPort, DstPort: pf.t.SrcPort, Proto: pf.proto},
		created:   now,
		lastSeen:  now,
		clientMAC: pf.srcMAC,
		backend:   -1,
	}
	f.fwd = xlate{
		srcIP: pf.t.Src, srcPort: pf.t.SrcPort,
		dstIP: p.cfg.LocalIP, dstPort: r.localPort,
		dstMAC: p.cfg.LocalMAC, rewrite: true,
	}
	f.rev = xlate{
		srcIP: pf.t.Dst, srcPort: pf.t.DstPort, // the VIP identity
		dstIP: pf.t.Src, dstPort: pf.t.SrcPort,
		dstMAC: pf.srcMAC, rewrite: true,
	}
	if pf.proto == wire.ProtoTCP {
		f.clientEndSeq = pf.seq + uint32(pf.payLen) + 1
	}
	p.insertFlow(f)
	if pf.proto == wire.ProtoTCP {
		p.updateTCP(f, 0, pf.flags)
	}

	out := append([]byte(nil), frame...)
	if !p.applyXlate(out, &f.fwd) {
		p.Stats.Drops.Inc()
		return nil, filter.VerdictDrop
	}
	p.Stats.Rewrites.Inc()
	return out, filter.VerdictPass
}

// arpIngress answers ARP requests for owned VIP addresses with the
// host's own MAC (proxy ARP), so clients on the segment resolve the
// virtual address without any host actually configuring it.
func (p *Plane) arpIngress(frame []byte) ([]byte, filter.Verdict) {
	pkt, err := wire.UnmarshalARP(frame[wire.EthHeaderLen:])
	if err != nil || pkt.Op != wire.ARPRequest {
		return nil, filter.VerdictPass
	}
	if p.arpOwned[pkt.TargetIP] == 0 {
		return nil, filter.VerdictPass
	}
	reply := wire.ARPPacket{
		Op:        wire.ARPReply,
		SenderMAC: p.cfg.LocalMAC,
		SenderIP:  pkt.TargetIP,
		TargetMAC: pkt.SenderMAC,
		TargetIP:  pkt.SenderIP,
	}
	out := make([]byte, wire.EthHeaderLen+wire.ARPLen)
	eh := wire.EthHeader{Dst: pkt.SenderMAC, Src: p.cfg.LocalMAC, Type: wire.EtherTypeARP}
	eh.Marshal(out)
	copy(out[wire.EthHeaderLen:], reply.Marshal())
	p.Stats.ARPReplies.Inc()
	p.cfg.Transmit(out)
	return nil, filter.VerdictAbsorb
}

// --- Introspection -------------------------------------------------------

// FlowInfo is one row of the plane's flow table, for psdstat-style
// display. Rows are ordered by the original tuple, so rendered output
// is byte-stable.
type FlowInfo struct {
	Proto   string
	Client  string // initiator address
	Service string // the VIP/redirect identity the initiator targeted
	Backend string // translated destination ("" for untranslated flows)
	State   string
	Idle    time.Duration
}

// Flows renders the conntrack table in deterministic order.
func (p *Plane) Flows() []FlowInfo {
	now := p.cfg.Sim.Now()
	flows := p.sortedFlows()
	out := make([]FlowInfo, 0, len(flows))
	for _, f := range flows {
		fi := FlowInfo{
			Proto:   wire.ProtoName(f.orig.Proto),
			Client:  fmt.Sprintf("%v:%d", f.orig.Src, f.orig.SrcPort),
			Service: fmt.Sprintf("%v:%d", f.orig.Dst, f.orig.DstPort),
			State:   f.state.String(),
			Idle:    now.Sub(f.lastSeen),
		}
		if f.fwd.rewrite {
			fi.Backend = fmt.Sprintf("%v:%d", f.fwd.dstIP, f.fwd.dstPort)
		}
		out = append(out, fi)
	}
	return out
}

// FlowCount returns the number of tracked flows.
func (p *Plane) FlowCount() int { return p.flowCount }

// SNATInUse returns the number of allocated SNAT ports.
func (p *Plane) SNATInUse() int { return p.snat.inUseCount() }

// StateCount returns the number of flows in state s.
func (p *Plane) StateCount(s State) int64 {
	if s < numStates {
		return p.stateCount[s]
	}
	return 0
}
