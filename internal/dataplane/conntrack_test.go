package dataplane

import (
	"testing"
	"time"

	"repro/internal/wire"
)

// udpTo builds a distinct client flow toward the VIP.
func udpTo(h *harness, sport uint16) {
	h.p.Ingress(udpFrame(clientMAC, lbMAC, clientIP, vipIP, sport, vipPort, []byte("x"), true))
	h.takeSent()
}

// TestIdleGCPerState: transient flows expire on the short timer while
// established ones survive it.
func TestIdleGCPerState(t *testing.T) {
	h := newHarness(t, nil)
	h.vip(t)

	// Flow A: completes the handshake (established, long timer).
	h.p.Ingress(tcpFrame(clientMAC, lbMAC, clientIP, vipIP, 4000, vipPort, wire.TCPSyn, 1, 0, nil))
	a := h.p.sortedFlowsByID()[0]
	be := h.p.sortedFlows()[0].vip.backends[a.backend]
	h.p.Ingress(tcpFrame(be.MAC, lbMAC, be.IP, lbIP, bePort, a.snat, wire.TCPSyn|wire.TCPAck, 9, 2, nil))
	h.p.Ingress(tcpFrame(clientMAC, lbMAC, clientIP, vipIP, 4000, vipPort, wire.TCPAck, 2, 10, nil))
	// Flow B: a lone SYN (embryonic, transient timer).
	h.p.Ingress(tcpFrame(clientMAC, lbMAC, clientIP, vipIP, 4001, vipPort, wire.TCPSyn, 1, 0, nil))
	h.takeSent()

	if h.p.FlowCount() != 2 {
		t.Fatalf("flows = %d", h.p.FlowCount())
	}
	// Past the transient limit but well inside the established one.
	if err := h.s.RunFor(DefaultTransientIdle + 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if h.p.FlowCount() != 1 {
		t.Fatalf("flows = %d after transient GC", h.p.FlowCount())
	}
	if h.p.StateCount(StateEstablished) != 1 || h.p.StateCount(StateSynSent) != 0 {
		t.Fatalf("state gauges: est=%d syn_sent=%d",
			h.p.StateCount(StateEstablished), h.p.StateCount(StateSynSent))
	}
	// And past the established limit everything is gone.
	if err := h.s.RunFor(DefaultEstablishedIdle); err != nil {
		t.Fatal(err)
	}
	if h.p.FlowCount() != 0 || h.p.SNATInUse() != 0 {
		t.Fatalf("flows=%d snat=%d at end", h.p.FlowCount(), h.p.SNATInUse())
	}
	if h.p.Stats.CTExpired.Value() != 2 {
		t.Fatalf("expired = %d", h.p.Stats.CTExpired.Value())
	}
}

// TestTableFullEviction: at capacity the stalest flow is evicted to
// admit a new one, deterministically.
func TestTableFullEviction(t *testing.T) {
	h := newHarness(t, func(c *Config) { c.MaxFlows = 2 })
	h.vip(t)

	udpTo(h, 5000)
	h.s.RunFor(time.Millisecond * 7)
	udpTo(h, 5001)
	h.s.RunFor(time.Millisecond * 7)

	// Refresh 5000 so 5001 is now the stalest.
	udpTo(h, 5000)
	h.s.RunFor(time.Millisecond * 7)

	udpTo(h, 5002)
	if h.p.Stats.CTEvicted.Value() != 1 {
		t.Fatalf("evicted = %d", h.p.Stats.CTEvicted.Value())
	}
	if h.p.FlowCount() != 2 {
		t.Fatalf("flows = %d", h.p.FlowCount())
	}
	for _, f := range h.p.sortedFlows() {
		if f.orig.SrcPort == 5001 {
			t.Fatal("victim should have been the stalest flow (5001)")
		}
	}
}

// TestRSTClosesFlow: a reset from either side moves the flow to closed,
// which lingers only briefly.
func TestRSTClosesFlow(t *testing.T) {
	h := newHarness(t, nil)
	h.vip(t)
	h.p.Ingress(tcpFrame(clientMAC, lbMAC, clientIP, vipIP, 4000, vipPort, wire.TCPSyn, 1, 0, nil))
	f := h.p.sortedFlowsByID()[0]
	h.p.Ingress(tcpFrame(clientMAC, lbMAC, clientIP, vipIP, 4000, vipPort, wire.TCPRst, 2, 0, nil))
	if f.state != StateClosed {
		t.Fatalf("state = %v", f.state)
	}
	if err := h.s.RunFor(DefaultClosedLinger + 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if h.p.FlowCount() != 0 {
		t.Fatalf("closed flow survived linger: %d", h.p.FlowCount())
	}
}

func TestPortAllocRoundRobin(t *testing.T) {
	a := newPortAlloc(61000, 3)
	p1, _ := a.alloc()
	p2, _ := a.alloc()
	if p1 != 61000 || p2 != 61001 {
		t.Fatalf("first ports: %d %d", p1, p2)
	}
	a.free(p1)
	// Round-robin: the scan resumes after the last allocation instead of
	// immediately reusing p1, so recently freed ports rest (TIME_WAIT
	// hygiene).
	p3, _ := a.alloc()
	if p3 != 61002 {
		t.Fatalf("p3 = %d, want 61002", p3)
	}
	p4, _ := a.alloc()
	if p4 != 61000 {
		t.Fatalf("p4 = %d, want 61000 (wrapped)", p4)
	}
	if _, ok := a.alloc(); ok {
		t.Fatal("pool should be exhausted")
	}
	a.free(p3)
	if got, ok := a.alloc(); !ok || got != p3 {
		t.Fatalf("realloc = %d/%v", got, ok)
	}
}

func TestTupleOrderTotal(t *testing.T) {
	a := tuple{Src: wire.IP(10, 0, 0, 1), Dst: wire.IP(10, 0, 0, 2), SrcPort: 1, DstPort: 2, Proto: wire.ProtoTCP}
	b := a
	b.SrcPort = 3
	c := a
	c.Proto = wire.ProtoUDP
	if !a.less(b) || b.less(a) {
		t.Fatal("port order broken")
	}
	if !a.less(c) || c.less(a) {
		t.Fatal("proto order broken")
	}
	if a.less(a) {
		t.Fatal("irreflexivity broken")
	}
}

// TestFlowsSnapshotSorted: the rendered flow table is ordered by the
// original tuple regardless of insertion order.
func TestFlowsSnapshotSorted(t *testing.T) {
	h := newHarness(t, nil)
	h.vip(t)
	for _, sport := range []uint16{5003, 5001, 5002} {
		udpTo(h, sport)
	}
	rows := h.p.Flows()
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Client >= rows[i].Client {
			t.Fatalf("rows out of order: %q then %q", rows[i-1].Client, rows[i].Client)
		}
	}
	if rows[0].Proto != "udp" || rows[0].State != "new" {
		t.Fatalf("row render: %+v", rows[0])
	}
}
