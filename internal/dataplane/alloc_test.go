package dataplane

import (
	"testing"

	"repro/internal/filter"
	"repro/internal/wire"
)

// natAllocsPerPacketBudget bounds the steady-state NAT rewrite path.
// The conntracked fast path makes exactly one allocation per packet —
// the rewritten copy of the frame (the original belongs to the network
// and is never written) — and the RFC 1624 incremental fixup adds
// none: a stray per-packet allocation in parse, conntrack, or checksum
// would blow this.
const natAllocsPerPacketBudget = 1.0

// TestNATRewriteAllocBudget drives an established VIP flow's data
// packets through the plane under alloc accounting, both directions.
func TestNATRewriteAllocBudget(t *testing.T) {
	h := newHarness(t, nil)
	v := h.vip(t)

	// Establish one connection: SYN in, SYN|ACK back from whichever
	// backend the hash picked, final ACK in.
	syn := tcpFrame(clientMAC, lbMAC, clientIP, vipIP, clPort, vipPort, wire.TCPSyn, 1000, 0, nil)
	if _, verdict := h.p.Ingress(syn); verdict != filter.VerdictAbsorb {
		t.Fatalf("SYN verdict = %v, want absorb", verdict)
	}
	f := h.p.sortedFlows()[0]
	be := v.backends[f.backend]
	h.p.Ingress(tcpFrame(be.MAC, lbMAC, be.IP, lbIP, bePort, f.snat, wire.TCPSyn|wire.TCPAck, 7000, 1001, nil))
	h.p.Ingress(tcpFrame(clientMAC, lbMAC, clientIP, vipIP, clPort, vipPort, wire.TCPAck, 1001, 7001, nil))
	if h.p.StateCount(StateEstablished) != 1 {
		t.Fatalf("flow not established after handshake")
	}

	// Steady state: the same data segment each way, over and over. The
	// plane rewrites a fresh copy every time; the inputs are reused
	// (Ingress never writes the frame it was handed), and the capture
	// buffer is reset in place so its append stays allocation-free.
	data := tcpFrame(clientMAC, lbMAC, clientIP, vipIP, clPort, vipPort,
		wire.TCPAck|wire.TCPPsh, 1001, 7001, make([]byte, 1024))
	reply := tcpFrame(be.MAC, lbMAC, be.IP, lbIP, bePort, f.snat,
		wire.TCPAck|wire.TCPPsh, 7001, 2025, make([]byte, 1024))

	got := testing.AllocsPerRun(200, func() {
		h.sent = h.sent[:0]
		h.p.Ingress(data)
		h.p.Ingress(reply)
	})
	perPacket := got / 2
	t.Logf("NAT rewrite: %.2f allocs/packet (budget %.0f)", perPacket, natAllocsPerPacketBudget)
	if perPacket > natAllocsPerPacketBudget {
		t.Fatalf("NAT rewrite allocates %.2f objects/packet; budget is %.0f (one frame copy)", perPacket, natAllocsPerPacketBudget)
	}
}
