package dataplane

import (
	"fmt"
	"testing"

	"repro/internal/wire"
)

func slotCounts(table []int, n int) []int {
	counts := make([]int, n)
	for _, b := range table {
		counts[b]++
	}
	return counts
}

// TestMaglevDistribution: every backend owns a near-equal share of the
// lookup table (Maglev §3.4's load property).
func TestMaglevDistribution(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		keys := make([]string, n)
		for i := range keys {
			keys[i] = fmt.Sprintf("backend-%d", i)
		}
		table := maglevTable(keys, DefaultTableSize)
		if len(table) != DefaultTableSize {
			t.Fatalf("n=%d: table size %d", n, len(table))
		}
		fair := DefaultTableSize / n
		for i, c := range slotCounts(table, n) {
			if c < fair/2 || c > fair*2 {
				t.Errorf("n=%d: backend %d owns %d slots, fair share %d", n, i, c, fair)
			}
		}
	}
}

// TestMaglevDisruption: removing one backend must not reshuffle the
// survivors' slots wholesale — only the dead backend's share (plus a
// small residue) may move.
func TestMaglevDisruption(t *testing.T) {
	const n = 5
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("backend-%d", i)
	}
	before := maglevTable(keys, DefaultTableSize)

	// Remove backend 2; map both tables to key names for comparison.
	survivors := append(append([]string{}, keys[:2]...), keys[3:]...)
	after := maglevTable(survivors, DefaultTableSize)

	moved := 0
	for s := range before {
		ob, nb := keys[before[s]], survivors[after[s]]
		if ob != nb && ob != "backend-2" {
			moved++
		}
	}
	// The necessary churn is the dead backend's ~1/n share; surviving
	// slots that move beyond that are the disruption. Maglev keeps it
	// small — well under one further share.
	if limit := DefaultTableSize / n; moved > limit {
		t.Errorf("%d surviving slots moved, limit %d", moved, limit)
	}
}

// TestMaglevAddDisruption: the mirror property for pool growth.
func TestMaglevAddDisruption(t *testing.T) {
	const n = 4
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("backend-%d", i)
	}
	before := maglevTable(keys, DefaultTableSize)
	grown := append(append([]string{}, keys...), "backend-new")
	after := maglevTable(grown, DefaultTableSize)

	moved := 0
	for s := range before {
		if nb := grown[after[s]]; nb != keys[before[s]] && nb != "backend-new" {
			moved++
		}
	}
	if limit := DefaultTableSize / n; moved > limit {
		t.Errorf("%d slots moved to another old backend, limit %d", moved, limit)
	}
}

// TestMaglevDeterminism: the table is a pure function of its inputs.
func TestMaglevDeterminism(t *testing.T) {
	keys := []string{"a", "b", "c"}
	t1 := maglevTable(keys, DefaultTableSize)
	t2 := maglevTable(keys, DefaultTableSize)
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatal("table not deterministic")
		}
	}
	if maglevTable(nil, DefaultTableSize) != nil {
		t.Fatal("empty pool should yield nil table")
	}
}

// TestFlowHashClientStability: the hash depends only on the wire tuple,
// so a retransmission always lands on the same slot.
func TestFlowHashClientStability(t *testing.T) {
	a := tuple{Src: wire.IP(10, 0, 0, 50), Dst: wire.IP(10, 0, 0, 100), SrcPort: 4000, DstPort: 80, Proto: wire.ProtoTCP}
	if flowHash(a) != flowHash(a) {
		t.Fatal("hash unstable")
	}
	b := a
	b.SrcPort = 4001
	if flowHash(a) == flowHash(b) {
		t.Fatal("distinct clients should (almost surely) hash apart")
	}
}
