package dataplane

// Maglev-style consistent hashing (Eisenbud et al., NSDI '16 §3.4): each
// backend fills a prime-sized lookup table by walking its own
// pseudo-random permutation of the slots, taking turns, so the table is
// (a) near-uniformly split across backends and (b) minimally disrupted
// when the backend set changes — most slots keep their backend when one
// is added or removed, and conntrack pins the rest.

// DefaultTableSize is the default Maglev lookup-table size. Prime, as
// the permutation construction requires; small because the simulated
// pools are small (the paper-scale value is 65537).
const DefaultTableSize = 251

// fnv1a is the 64-bit FNV-1a hash of the given bytes, the deterministic
// hash behind both the permutation parameters and the flow hash.
func fnv1a(seed uint64, parts ...[]byte) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037) ^ seed
	for _, p := range parts {
		for _, b := range p {
			h ^= uint64(b)
			h *= prime
		}
	}
	return h
}

// maglevTable builds the lookup table for the given backend keys.
// Returns a table mapping slot -> index into keys, or nil when keys is
// empty. m must be prime.
func maglevTable(keys []string, m int) []int {
	if len(keys) == 0 {
		return nil
	}
	type perm struct {
		offset, skip, next int
	}
	perms := make([]perm, len(keys))
	for i, k := range keys {
		kb := []byte(k)
		perms[i].offset = int(fnv1a(0xcafe, kb) % uint64(m))
		perms[i].skip = int(fnv1a(0xbeef, kb)%uint64(m-1)) + 1
	}
	table := make([]int, m)
	for i := range table {
		table[i] = -1
	}
	filled := 0
	for filled < m {
		for i := range perms {
			p := &perms[i]
			// Walk backend i's permutation to its next free slot.
			var slot int
			for {
				slot = (p.offset + p.next*p.skip) % m
				p.next++
				if table[slot] < 0 {
					break
				}
			}
			table[slot] = i
			filled++
			if filled == m {
				break
			}
		}
	}
	return table
}

// flowHash hashes a connection's initiator-side identity. Only the
// client address and port (plus protocol) feed the hash, so a client's
// retransmitted SYN hashes identically even after the table is rebuilt.
func flowHash(t tuple) uint64 {
	return fnv1a(uint64(t.Proto),
		t.Src[:], []byte{byte(t.SrcPort >> 8), byte(t.SrcPort)},
		t.Dst[:], []byte{byte(t.DstPort >> 8), byte(t.DstPort)})
}
