package costs

import (
	"testing"
	"time"
)

func us(d time.Duration) float64 { return float64(d) / 1000 }

func TestLinThroughPoints(t *testing.T) {
	l := LinUS(1, 19, 1460, 203)
	if got := us(l.At(1)); got < 18.9 || got > 19.1 {
		t.Fatalf("At(1) = %v µs, want 19", got)
	}
	if got := us(l.At(1460)); got < 202.9 || got > 203.1 {
		t.Fatalf("At(1460) = %v µs, want 203", got)
	}
}

func TestLinNegativeSlopeReproducesPoints(t *testing.T) {
	l := LinUS(1, 24, 1460, 20) // ip_output shrinks with size in Table 4
	if l.PerByteNS >= 0 {
		t.Fatalf("slope should be negative: %v", l.PerByteNS)
	}
	if got := us(l.At(1460)); got < 19.9 || got > 20.1 {
		t.Fatalf("At(1460) = %v, want 20", got)
	}
	// And the evaluation never goes negative, even far off the range.
	if l.At(1<<20) != 0 {
		t.Fatal("At must clamp at zero")
	}
}

func TestLinScalePlus(t *testing.T) {
	l := Lin{FixedNS: 100, PerByteNS: 2}
	s := l.Scale(2, 3)
	if s.FixedNS != 200 || s.PerByteNS != 6 {
		t.Fatalf("scale: %+v", s)
	}
	p := l.Plus(Lin{FixedNS: 1, PerByteNS: 1})
	if p.FixedNS != 101 || p.PerByteNS != 3 {
		t.Fatalf("plus: %+v", p)
	}
}

// sumPath adds up a path's components at message size n.
func sumPath(pc PathCosts, comps []Component, n int) time.Duration {
	var total time.Duration
	for _, c := range comps {
		total += pc[c].At(n)
	}
	return total
}

// TestTable4Totals checks the encoded component costs reproduce the
// paper's published path totals at both calibration sizes.
func TestTable4Totals(t *testing.T) {
	cases := []struct {
		name   string
		pc     PathCosts
		comps  []Component
		n      int
		wantUS float64
	}{
		{"lib tcp send 1", decLibraryIPF().TCP, SendComponents, 1, 225},
		{"lib tcp send 1460", decLibraryIPF().TCP, SendComponents, 1460, 831},
		{"lib tcp recv 1", decLibraryIPF().TCP, RecvComponents, 1, 658},
		{"lib tcp recv 1460", decLibraryIPF().TCP, RecvComponents, 1460, 1529},
		{"lib udp send 1", decLibraryIPF().UDP, SendComponents, 1, 146},
		{"lib udp send 1472", decLibraryIPF().UDP, SendComponents, 1472, 544},
		{"lib udp recv 1", decLibraryIPF().UDP, RecvComponents, 1, 456},
		{"lib udp recv 1472", decLibraryIPF().UDP, RecvComponents, 1472, 1141},
		{"kern tcp send 1", decKernel().TCP, SendComponents, 1, 214},
		{"kern tcp send 1460", decKernel().TCP, SendComponents, 1460, 585},
		{"kern tcp recv 1", decKernel().TCP, RecvComponents, 1, 348},
		{"kern tcp recv 1460", decKernel().TCP, RecvComponents, 1460, 1123},
		{"kern udp send 1", decKernel().UDP, SendComponents, 1, 231},
		{"kern udp send 1472", decKernel().UDP, SendComponents, 1472, 565},
		{"kern udp recv 1", decKernel().UDP, RecvComponents, 1, 351},
		{"kern udp recv 1472", decKernel().UDP, RecvComponents, 1472, 1042},
		{"srv tcp send 1", decServer().TCP, SendComponents, 1, 675},
		{"srv tcp send 1460", decServer().TCP, SendComponents, 1460, 1382},
		{"srv tcp recv 1", decServer().TCP, RecvComponents, 1, 1138},
		{"srv tcp recv 1460", decServer().TCP, RecvComponents, 1460, 2455},
		{"srv udp send 1", decServer().UDP, SendComponents, 1, 734},
		{"srv udp send 1472", decServer().UDP, SendComponents, 1472, 1420},
		{"srv udp recv 1", decServer().UDP, RecvComponents, 1, 1019},
		{"srv udp recv 1472", decServer().UDP, RecvComponents, 1472, 2086},
	}
	for _, c := range cases {
		got := us(sumPath(c.pc, c.comps, c.n))
		// Negative-slope clamping (ip_output, netisr rows) adds a few µs
		// at the max size; allow 2% plus a 12µs absolute floor.
		tol := c.wantUS * 0.02
		if tol < 12 {
			tol = 12
		}
		if got < c.wantUS-tol || got > c.wantUS+tol {
			t.Errorf("%s: sum = %.1f µs, want %.0f ± %.0f", c.name, got, c.wantUS, tol)
		}
	}
}

// TestPaperSanityCheck is the consistency check DESIGN.md promises: the
// one-way UDP 1-byte sums from Table 4 must be consistent with Table 2's
// round trips (paper: library 653, kernel 633, server 1804 µs one-way,
// including 51 µs network transit).
func TestPaperSanityCheck(t *testing.T) {
	transit := 51.0
	cases := []struct {
		name string
		pc   ProtoCosts
		want float64
	}{
		{"library", decLibraryIPF(), 653},
		{"kernel", decKernel(), 633},
		{"server", decServer(), 1804},
	}
	for _, c := range cases {
		oneWay := us(sumPath(c.pc.UDP, SendComponents, 1)+sumPath(c.pc.UDP, RecvComponents, 1)) + transit
		if oneWay < c.want-15 || oneWay > c.want+15 {
			t.Errorf("%s one-way = %.0f µs, want %.0f", c.name, oneWay, c.want)
		}
	}
}

func TestOrderings(t *testing.T) {
	// The derived variants must preserve the paper's latency ordering at
	// 1 byte (one-way sums): SHM-IPF < SHM < IPC for the library, and
	// library < server by a large margin.
	ipf := DECLibrarySHMIPF().Costs.UDP
	shm := DECLibrarySHM().Costs.UDP
	ipc := DECLibraryIPC().Costs.UDP
	srv := DECServerUX().Costs.UDP
	sum := func(pc PathCosts) time.Duration {
		return sumPath(pc, SendComponents, 1) + sumPath(pc, RecvComponents, 1)
	}
	if !(sum(ipf) < sum(shm) && sum(shm) < sum(ipc)) {
		t.Errorf("library delivery ordering violated: ipf=%v shm=%v ipc=%v", sum(ipf), sum(shm), sum(ipc))
	}
	if sum(srv) < 2*sum(ipf) {
		t.Errorf("server should be >2x library at 1 byte: srv=%v ipf=%v", sum(srv), sum(ipf))
	}
}

func TestUltrixSlowerThanMach(t *testing.T) {
	m := DECKernelMach25().Costs.UDP
	u := DECKernelUltrix().Costs.UDP
	for i := Component(0); i < NumComponents; i++ {
		if u[i].At(100) < m[i].At(100) {
			t.Errorf("Ultrix %v cheaper than Mach 2.5", i)
		}
	}
}

func TestGatewayProfiles(t *testing.T) {
	p := I486Kernel386BSD()
	if !p.LargeTCPSendBroken {
		t.Error("386BSD must carry the large-TCP-send bug")
	}
	if !I486ServerBNR2SS().LargeTCPSendBroken {
		t.Error("BNR2SS must carry the large-TCP-send bug")
	}
	if I486KernelMach25().LargeTCPSendBroken {
		t.Error("Mach 2.5 must not carry the bug")
	}
	// The Gateway NIC's per-byte cost must dominate: device-boundary cost
	// at 1460 bytes should exceed 1 ms (it is what caps throughput).
	dev := I486KernelMach25().Costs.TCP[CompDeviceIntrRead].At(1460)
	if dev < time.Millisecond {
		t.Errorf("gateway device read at 1460B = %v, expected > 1ms", dev)
	}
	// 386BSD in-kernel receive path must be slower than the i486 library
	// receive path (the paper's latency inversion).
	bsd := sumPath(I486Kernel386BSD().Costs.UDP, RecvComponents, 1)
	lib := sumPath(I486LibrarySHM().Costs.UDP, RecvComponents, 1)
	if bsd <= lib {
		t.Errorf("386BSD recv (%v) should exceed library recv (%v)", bsd, lib)
	}
}

func TestNewAPIRemovesCopies(t *testing.T) {
	base := DECLibrarySHMIPF()
	na := WithNewAPI(base)
	if na.Name != "Mach 3.0+UX Library-NEWAPI-SHM-IPF" {
		t.Errorf("name = %q", na.Name)
	}
	if na.Costs.TCP[CompEntryCopyin].PerByteNS != 0 || na.Costs.TCP[CompCopyoutExit].PerByteNS != 0 {
		t.Error("NEWAPI left per-byte copy costs")
	}
	if na.Costs.TCP[CompEntryCopyin].FixedNS != base.Costs.TCP[CompEntryCopyin].FixedNS {
		t.Error("NEWAPI changed fixed costs")
	}
	if na.Costs.TCP[CompTransportOutput] != base.Costs.TCP[CompTransportOutput] {
		t.Error("NEWAPI touched protocol costs")
	}
}

func TestComponentNames(t *testing.T) {
	if CompEntryCopyin.String() != "entry/copyin" || CompCopyoutExit.String() != "copyout/exit" {
		t.Error("component names wrong")
	}
	if Component(99).String() != "unknown" {
		t.Error("out-of-range name")
	}
	// CompDataplane is deliberately outside both Table 4 path lists.
	if len(SendComponents)+len(RecvComponents) != int(NumComponents)-1 {
		t.Error("component lists incomplete")
	}
	if CompDataplane.String() != "dataplane" {
		t.Error("dataplane component name wrong")
	}
}

func TestStyleDeliveryStrings(t *testing.T) {
	if StyleLibrary.String() != "library" || StyleKernel.String() != "kernel" || StyleServer.String() != "server" {
		t.Error("style strings")
	}
	if DeliverIPC.String() != "IPC" || DeliverSHM.String() != "SHM" || DeliverSHMIPF.String() != "SHM-IPF" {
		t.Error("delivery strings")
	}
}
