package costs

// This file encodes the paper's Table 4 measurements and derives the
// profiles for every system configuration in Table 2.
//
// Table 4 columns are (1-byte, max-byte) microsecond pairs; max is 1460
// bytes for TCP and 1472 for UDP (the largest unfragmented Ethernet
// payloads).

const (
	tcpMax = 1460
	udpMax = 1472
)

func lin(tcp bool, us1, us2 float64) Lin {
	if tcp {
		return LinUS(1, us1, tcpMax, us2)
	}
	return LinUS(1, us1, udpMax, us2)
}

// decLibraryIPF returns the instrumented Library (SHM-IPF) column of
// Table 4.
func decLibraryIPF() ProtoCosts {
	var c ProtoCosts
	t, u := &c.TCP, &c.UDP
	// Send path.
	t[CompEntryCopyin] = lin(true, 19, 203)
	u[CompEntryCopyin] = lin(false, 6, 7) // UDP library references user data; no copy
	t[CompTransportOutput] = lin(true, 82, 328)
	u[CompTransportOutput] = lin(false, 18, 239)
	t[CompIPOutput] = lin(true, 26, 26)
	u[CompIPOutput] = lin(false, 17, 18)
	t[CompEtherOutput] = lin(true, 98, 274)
	u[CompEtherOutput] = lin(false, 105, 280)
	// Receive path.
	t[CompDeviceIntrRead] = lin(true, 42, 43)
	u[CompDeviceIntrRead] = lin(false, 39, 40)
	t[CompNetisrPF] = lin(true, 82, 95)
	u[CompNetisrPF] = lin(false, 58, 70)
	t[CompKernelCopyout] = lin(true, 123, 534)
	u[CompKernelCopyout] = lin(false, 107, 517)
	t[CompMbufQueue] = lin(true, 22, 21)
	u[CompMbufQueue] = lin(false, 20, 20)
	t[CompIPIntr] = lin(true, 37, 35)
	u[CompIPIntr] = lin(false, 35, 33)
	t[CompTransportInput] = lin(true, 214, 445)
	u[CompTransportInput] = lin(false, 103, 318)
	t[CompWakeupUser] = lin(true, 92, 95)
	u[CompWakeupUser] = lin(false, 73, 80)
	t[CompCopyoutExit] = lin(true, 46, 261)
	u[CompCopyoutExit] = lin(false, 21, 63)
	return c
}

// decKernel returns the instrumented Kernel (Mach 2.5) column of Table 4.
func decKernel() ProtoCosts {
	var c ProtoCosts
	t, u := &c.TCP, &c.UDP
	t[CompEntryCopyin] = lin(true, 50, 153)
	u[CompEntryCopyin] = lin(false, 65, 104)
	t[CompTransportOutput] = lin(true, 65, 307)
	u[CompTransportOutput] = lin(false, 70, 273)
	t[CompIPOutput] = lin(true, 24, 20)
	u[CompIPOutput] = lin(false, 22, 25)
	t[CompEtherOutput] = lin(true, 75, 105)
	u[CompEtherOutput] = lin(false, 74, 163)
	t[CompDeviceIntrRead] = lin(true, 77, 469)
	u[CompDeviceIntrRead] = lin(false, 74, 481)
	t[CompNetisrPF] = lin(true, 79, 73)
	u[CompNetisrPF] = lin(false, 83, 84)
	// In-kernel protocols deliver straight to the socket queue: no
	// kernel-to-user packet copy and no user-level mbuf requeue.
	t[CompKernelCopyout] = Lin{}
	u[CompKernelCopyout] = Lin{}
	t[CompMbufQueue] = Lin{}
	u[CompMbufQueue] = Lin{}
	t[CompIPIntr] = lin(true, 30, 37)
	u[CompIPIntr] = lin(false, 30, 54)
	t[CompTransportInput] = lin(true, 76, 270)
	u[CompTransportInput] = lin(false, 67, 279)
	t[CompWakeupUser] = lin(true, 54, 54)
	u[CompWakeupUser] = lin(false, 70, 69)
	t[CompCopyoutExit] = lin(true, 32, 220)
	u[CompCopyoutExit] = lin(false, 27, 75)
	return c
}

// decServer returns the instrumented Server (UX) column of Table 4.
func decServer() ProtoCosts {
	var c ProtoCosts
	t, u := &c.TCP, &c.UDP
	t[CompEntryCopyin] = lin(true, 254, 579) // 4-copy RPC into the server
	u[CompEntryCopyin] = lin(false, 293, 628)
	t[CompTransportOutput] = lin(true, 224, 447) // heavyweight spl synchronization
	u[CompTransportOutput] = lin(false, 229, 398)
	t[CompIPOutput] = lin(true, 31, 25)
	u[CompIPOutput] = lin(false, 24, 27)
	t[CompEtherOutput] = lin(true, 166, 331)
	u[CompEtherOutput] = lin(false, 188, 367)
	t[CompDeviceIntrRead] = lin(true, 101, 496)
	u[CompDeviceIntrRead] = lin(false, 99, 497)
	t[CompNetisrPF] = lin(true, 53, 52)
	u[CompNetisrPF] = lin(false, 76, 61)
	t[CompKernelCopyout] = lin(true, 113, 148) // kernel memory -> server, fast reads
	u[CompKernelCopyout] = lin(false, 124, 207)
	t[CompMbufQueue] = lin(true, 79, 58)
	u[CompMbufQueue] = lin(false, 68, 64)
	t[CompIPIntr] = lin(true, 127, 95)
	u[CompIPIntr] = lin(false, 121, 91)
	t[CompTransportInput] = lin(true, 249, 365)
	u[CompTransportInput] = lin(false, 61, 273)
	t[CompWakeupUser] = lin(true, 194, 213)
	u[CompWakeupUser] = lin(false, 262, 274)
	t[CompCopyoutExit] = lin(true, 222, 1028) // IPC reply with redundant copies
	u[CompCopyoutExit] = lin(false, 208, 619)
	return c
}

// applyBoth applies f to both protocols' costs for one component.
func (c *ProtoCosts) applyBoth(comp Component, f func(Lin) Lin) {
	c.TCP[comp] = f(c.TCP[comp])
	c.UDP[comp] = f(c.UDP[comp])
}

// scaleAll multiplies every component by the given factors.
func (c *ProtoCosts) scaleAll(fixed, perByte float64) {
	for i := Component(0); i < NumComponents; i++ {
		c.TCP[i] = c.TCP[i].Scale(fixed, perByte)
		c.UDP[i] = c.UDP[i].Scale(fixed, perByte)
	}
}

// proxyRPC is the round-trip cost of a proxy call from a protocol library
// to the operating-system server (two Mach IPCs plus dispatch). It is off
// the critical path, so its precise value only affects connection setup
// latency.
var proxyRPC = Lin{FixedNS: 450_000, PerByteNS: 100}

// --- DECstation 5000/200 profiles ---

// DECLibrarySHMIPF is the paper's instrumented library configuration: the
// packet filter is integrated with the device driver and shares a memory
// ring with the application.
func DECLibrarySHMIPF() Profile {
	return Profile{
		Name:     "Mach 3.0+UX Library-SHM-IPF",
		Style:    StyleLibrary,
		Delivery: DeliverSHMIPF,
		Costs:    decLibraryIPF(),
		ProxyRPC: proxyRPC,
	}
}

// SWChecksumShare is the fraction of the per-byte slope a software
// in_cksum pass contributes to a fused copy+checksum loop on the R3000
// (one load+add+carry per word against a load/store pair). Offload
// profiles subtract it when the checksum moves to the NIC; user-space
// byte-scan stages (the psd adapters) price their per-byte work with
// it, so both directions of the calibration share one constant.
const SWChecksumShare = 0.45

// DECLibrarySHMIPFOffload derives the fourth receive architecture from
// the instrumented Library-SHM-IPF profile: a NIC that segments
// (TSO/GSO), coalesces (LRO), checksums, and moderates interrupts on its
// own pipeline, so per-packet software work either disappears or is
// amortized over super-segments.
//
// Software-side adjustments, both directions:
//
//   - the transport checksum moves onto the NIC, so the per-byte share
//     of the fused copy+checksum pass (CompEtherOutput on send) and of
//     transport input (CompTransportInput on receive) drops to the copy
//     alone. The checksum share is taken as 45% of the per-byte slope,
//     the fraction an in_cksum pass contributes to a combined
//     copy+checksum loop on the R3000 (one load+add+carry per word vs. a
//     load/store pair).
//
// NIC-side costs are charged on the engine pipeline (see
// internal/offload): an ASIC touches data at better than wire rate, so
// the per-byte slopes sit well under the 800 ns/B wire and never become
// the bottleneck; the fixed parts model descriptor handling.
func DECLibrarySHMIPFOffload() Profile {
	p := DECLibrarySHMIPF()
	p.Name = "Mach 3.0+UX Library-SHM-IPF-OFFLOAD"
	p.Costs.applyBoth(CompEtherOutput, func(l Lin) Lin {
		return Lin{FixedNS: l.FixedNS, PerByteNS: l.PerByteNS * (1 - SWChecksumShare)}
	})
	p.Costs.applyBoth(CompTransportInput, func(l Lin) Lin {
		return Lin{FixedNS: l.FixedNS, PerByteNS: l.PerByteNS * (1 - SWChecksumShare)}
	})
	p.Offload = OffloadCosts{
		Enabled:   true,
		TxSetup:   Lin{FixedNS: 8_000},                // descriptor + header template parse
		TxSegment: Lin{FixedNS: 2_000},                // per sliced frame: header patch
		Checksum:  Lin{FixedNS: 1_500, PerByteNS: 10}, // ASIC checksum, ~80x wire rate
		RxMerge:   Lin{FixedNS: 2_000},                // per frame through the LRO unit
		RxFlush:   Lin{FixedNS: 4_000},                // per super-segment delivered

		// Finite descriptor FIFOs; overflow degrades to the software
		// path instead of dropping. 64 frames is a period-appropriate
		// ring, deep enough that steady traffic at wire rate never
		// overflows (the engine's slopes beat the 800 ns/B wire).
		TxFIFOFrames: 64,
		RxFIFOFrames: 64,
		// The host fallback pays the in_cksum share the offload profile
		// subtracted from the software path: 45% of the ~800 ns/B fused
		// copy+checksum slope on the R3000.
		SwChecksum: Lin{FixedNS: 2_000, PerByteNS: 360},
	}
	return p
}

// DECLibrarySHM derives the shared-memory (non-integrated) variant: the
// device interrupt copies the whole packet into a kernel buffer first
// (the kernel profile's device read cost), after which the copy into the
// shared ring reads fast kernel memory rather than slow device memory
// (the server profile's kernel-copyout cost).
func DECLibrarySHM() Profile {
	p := DECLibrarySHMIPF()
	p.Name = "Mach 3.0+UX Library-SHM"
	p.Delivery = DeliverSHM
	k, s := decKernel(), decServer()
	p.Costs.TCP[CompDeviceIntrRead] = k.TCP[CompDeviceIntrRead]
	p.Costs.UDP[CompDeviceIntrRead] = k.UDP[CompDeviceIntrRead]
	p.Costs.TCP[CompKernelCopyout] = s.TCP[CompKernelCopyout]
	p.Costs.UDP[CompKernelCopyout] = s.UDP[CompKernelCopyout]
	return p
}

// DECLibraryIPC derives the baseline per-packet Mach IPC variant from the
// SHM profile: delivery pays IPC message construction per packet, and the
// application's receive loop pays a receive trap per message instead of
// draining a ring.
func DECLibraryIPC() Profile {
	p := DECLibrarySHM()
	p.Name = "Mach 3.0+UX Library-IPC"
	p.Delivery = DeliverIPC
	p.Costs.applyBoth(CompKernelCopyout, func(l Lin) Lin {
		return l.Plus(Lin{FixedNS: 30_000, PerByteNS: 0.05 * 1000 / 10}) // +30µs, +0.005µs/B
	})
	p.IPCRecvPerPacket = Lin{FixedNS: 25_000, PerByteNS: 5}
	return p
}

// DECKernelMach25 is the paper's instrumented in-kernel configuration.
func DECKernelMach25() Profile {
	return Profile{
		Name:     "Mach 2.5 In-Kernel",
		Style:    StyleKernel,
		Costs:    decKernel(),
		ProxyRPC: proxyRPC,
	}
}

// DECKernelUltrix derives Ultrix 4.2A from the Mach 2.5 kernel profile.
// Table 2 shows Ultrix uniformly a few percent slower in latency
// (1.52 vs 1.45 ms UDP 1B RTT) and ~7% lower in throughput; a 6% uniform
// inflation reproduces both to within the tables' precision.
func DECKernelUltrix() Profile {
	p := DECKernelMach25()
	p.Name = "Ultrix 4.2A In-Kernel"
	p.Costs.scaleAll(1.06, 1.06)
	return p
}

// DECServerUX is the paper's instrumented single-server configuration.
func DECServerUX() Profile {
	return Profile{
		Name:     "Mach 3.0+UX Server",
		Style:    StyleServer,
		Costs:    decServer(),
		ProxyRPC: proxyRPC,
	}
}

// --- i486 Gateway profiles ---
//
// The paper does not publish a Table 4 for the Gateway, so these profiles
// are synthesized from the DECstation ones plus the paper's qualitative
// statements: the 33 MHz i486 is roughly comparable to the 25 MHz R3000
// (fixed costs scaled by the observed 1B latency ratios), the 3Com 3C503
// moves data 8 bits at a time (a large per-byte device cost that caps
// throughput near the measured 457-503 KB/s), and 386BSD handles network
// interrupts and scheduling inefficiently (large fixed receive-side costs
// that make its in-kernel latency *worse* than user-level Mach 3.0
// configurations, as Table 2 shows).

// gatewayDeviceByteNS is the per-byte cost of moving packet data through
// the 3C503's 8-bit interface.
const gatewayDeviceByteNS = 1250

func gatewayize(p Profile, fixedScale float64) Profile {
	p.Costs.scaleAll(fixedScale, 1.15)
	// The slow NIC dominates per-byte costs at the device boundary in
	// both directions.
	p.Costs.applyBoth(CompEtherOutput, func(l Lin) Lin {
		return Lin{FixedNS: l.FixedNS, PerByteNS: l.PerByteNS + gatewayDeviceByteNS/2}
	})
	p.Costs.applyBoth(CompDeviceIntrRead, func(l Lin) Lin {
		return Lin{FixedNS: l.FixedNS, PerByteNS: l.PerByteNS + gatewayDeviceByteNS/2}
	})
	return p
}

// I486KernelMach25 is Mach 2.5 on the Gateway.
func I486KernelMach25() Profile {
	p := gatewayize(DECKernelMach25(), 1.40)
	p.Name = "Mach 2.5 In-Kernel (i486)"
	return p
}

// I486Kernel386BSD is 386BSD on the Gateway, including its interrupt
// handling and scheduling inefficiencies and its large-TCP-send bug.
func I486Kernel386BSD() Profile {
	p := gatewayize(DECKernelMach25(), 1.40)
	p.Name = "386BSD In-Kernel"
	// Interrupt fielding and wakeup paths are much slower; per-byte device
	// handling is worse still (programmed I/O).
	p.Costs.applyBoth(CompDeviceIntrRead, func(l Lin) Lin {
		return l.Plus(Lin{FixedNS: 250_000, PerByteNS: 650})
	})
	p.Costs.applyBoth(CompWakeupUser, func(l Lin) Lin {
		return l.Plus(Lin{FixedNS: 150_000})
	})
	p.LargeTCPSendBroken = true
	return p
}

// I486ServerUX is CMU's UX server on the Gateway.
func I486ServerUX() Profile {
	p := gatewayize(DECServerUX(), 1.35)
	p.Name = "Mach 3.0+UX Server (i486)"
	return p
}

// I486ServerBNR2SS is the BNR2SS single server on the Gateway: TCP costs
// comparable to UX, UDP notably slower (Table 2: 4.61 vs 3.96 ms at 1
// byte), and the same large-TCP-send bug as 386BSD (shared BNR2 code).
func I486ServerBNR2SS() Profile {
	p := gatewayize(DECServerUX(), 1.35)
	p.Name = "Mach 3.0+BNR2SS Server"
	for _, comp := range []Component{CompTransportInput, CompTransportOutput} {
		p.Costs.UDP[comp] = p.Costs.UDP[comp].Plus(Lin{FixedNS: 160_000})
	}
	p.Costs.scaleAll(1.0, 1.08)
	p.LargeTCPSendBroken = true
	return p
}

// I486LibraryIPC is the protocol library with per-packet IPC on the
// Gateway (the integrated packet filter was never ported there).
func I486LibraryIPC() Profile {
	p := gatewayize(DECLibraryIPC(), 1.30)
	p.Name = "Mach 3.0+UX Library-IPC (i486)"
	return p
}

// I486LibrarySHM is the shared-memory library variant on the Gateway.
func I486LibrarySHM() Profile {
	p := gatewayize(DECLibrarySHM(), 1.30)
	p.Name = "Mach 3.0+UX Library-SHM (i486)"
	return p
}

// WithNewAPI returns the profile with the paper's §4.2 modified socket
// interface: the application and protocol share buffers, eliminating the
// socket-layer copy on both sides. Only the copy components change; the
// protocol machinery is untouched.
func WithNewAPI(p Profile) Profile {
	p.Name = newAPIName(p.Name)
	// Sending: data is referenced, not copied into mbufs.
	p.Costs.applyBoth(CompEntryCopyin, func(l Lin) Lin {
		return Lin{FixedNS: l.FixedNS, PerByteNS: 0}
	})
	// Receiving: the application reads directly from the shared buffer.
	p.Costs.applyBoth(CompCopyoutExit, func(l Lin) Lin {
		return Lin{FixedNS: l.FixedNS, PerByteNS: 0}
	})
	return p
}

func newAPIName(s string) string {
	// "Mach 3.0+UX Library-SHM-IPF" -> "Mach 3.0+UX Library-NEWAPI-SHM-IPF"
	const marker = "Library-"
	for i := 0; i+len(marker) <= len(s); i++ {
		if s[i:i+len(marker)] == marker {
			return s[:i+len(marker)] + "NEWAPI-" + s[i+len(marker):]
		}
	}
	return s + " NEWAPI"
}

// CalibrateTable2 reconciles the instrumented per-layer costs of Table 4
// with the uninstrumented end-to-end measurements of Table 2.
//
// The paper notes that Table 4 comes from "an instrumented version of the
// protocols" that reflects "a small percentage error" — and indeed the
// two tables disagree by a style-dependent factor: summing Table 4's
// one-way UDP 1-byte paths (plus 102 µs of round-trip network transit)
// gives 1.27 ms for the kernel where Table 2 measures 1.45 ms (the
// instrumentation *understates* kernel costs), 1.31 ms for the library
// where Table 2 measures 1.23 ms (it *overstates* library costs, whose
// user-level instrumentation was cheaper), and matches the server
// exactly. This function applies those ratios, computed from the CPU
// (non-wire) portions of the 1-byte round trips:
//
//	kernel:  (1450-102)/(1266-102) = 1.158
//	library: (1230-102)/(1306-102) = 0.937
//	server:  1.0
//
// Table 2 and Table 3 reproductions use calibrated profiles; the Table 4
// reproduction uses the raw profiles, exactly as the paper ran an
// instrumented build for its breakdown.
func CalibrateTable2(p Profile) Profile {
	factor := 1.0
	switch p.Style {
	case StyleKernel:
		factor = 1.158
	case StyleLibrary:
		factor = 0.937
	case StyleServer:
		factor = 1.0
	}
	p.Costs.scaleAll(factor, factor)
	return p
}
