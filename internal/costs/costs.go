// Package costs defines the virtual-time cost model that stands in for
// the paper's DECstation 5000/200 and i486 Gateway hardware.
//
// The model is calibrated from Table 4 of the paper, which reports the
// average time spent in each protocol layer for the library-based
// (SHM-IPF), kernel-based (Mach 2.5), and server-based (UX) TCP and UDP
// implementations at the minimum (1 byte) and maximum (1460/1472 byte)
// unfragmented message sizes. Each component is modelled as a linear
// fixed + per-byte cost through those two measured points.
//
// Profiles for configurations the paper did not instrument (Library-IPC,
// Library-SHM, Ultrix, and the whole i486 Gateway column) are derived
// from the instrumented profiles with documented adjustments; see the
// constructor comments and DESIGN.md.
package costs

import "time"

// Lin is a linear cost: Fixed + PerByte*n nanoseconds for an n-byte
// operation.
type Lin struct {
	FixedNS   float64
	PerByteNS float64
}

// LinUS builds a Lin from the paper's two measured points (in
// microseconds) at message sizes n1 and n2 bytes.
func LinUS(n1 int, us1 float64, n2 int, us2 float64) Lin {
	// A few Table 4 entries shrink slightly with size (measurement noise,
	// e.g. ip_output 24 -> 20 µs); the slope is kept negative so the
	// encoded model reproduces the published totals exactly. Negative
	// slopes are safe here because every such component is charged per
	// packet, so n never exceeds the calibration maximum, and At clamps
	// the result at zero.
	perByte := (us2 - us1) * 1000 / float64(n2-n1)
	fixed := us1*1000 - perByte*float64(n1)
	return Lin{FixedNS: fixed, PerByteNS: perByte}
}

// FlatUS builds a size-independent cost from microseconds.
func FlatUS(us float64) Lin { return Lin{FixedNS: us * 1000} }

// At evaluates the cost for an n-byte operation, never less than zero.
func (l Lin) At(n int) time.Duration {
	v := l.FixedNS + l.PerByteNS*float64(n)
	if v < 0 {
		return 0
	}
	return time.Duration(v)
}

// Scale returns the cost with fixed and per-byte parts multiplied by the
// given factors.
func (l Lin) Scale(fixed, perByte float64) Lin {
	return Lin{FixedNS: l.FixedNS * fixed, PerByteNS: l.PerByteNS * perByte}
}

// Plus returns the sum of two linear costs.
func (l Lin) Plus(o Lin) Lin {
	return Lin{FixedNS: l.FixedNS + o.FixedNS, PerByteNS: l.PerByteNS + o.PerByteNS}
}

// Component identifies one instrumented protocol layer, matching the rows
// of the paper's Table 4.
type Component int

const (
	// Send path.
	CompEntryCopyin Component = iota
	CompTransportOutput
	CompIPOutput
	CompEtherOutput
	// Receive path.
	CompDeviceIntrRead
	CompNetisrPF
	CompKernelCopyout
	CompMbufQueue
	CompIPIntr
	CompTransportInput
	CompWakeupUser
	CompCopyoutExit
	// CompDataplane is the programmable data-plane hook stage (rule
	// chain traversal, conntrack, NAT rewrite) between the device
	// interrupt and the demultiplexing packet filter. Not part of the
	// paper's Table 4 rows, so it is absent from RecvComponents.
	CompDataplane

	NumComponents
)

var compNames = [NumComponents]string{
	"entry/copyin", "tcp,udp_output", "ip_output", "ether_output",
	"device intr/read", "netisr/packet filter", "kernel copyout",
	"mbuf/queue", "ipintr", "tcp,udp_input", "wakeup user thread",
	"copyout/exit", "dataplane",
}

func (c Component) String() string {
	if c >= 0 && c < NumComponents {
		return compNames[c]
	}
	return "unknown"
}

// SendComponents and RecvComponents list the components of each path in
// Table 4 order.
var (
	SendComponents = []Component{CompEntryCopyin, CompTransportOutput, CompIPOutput, CompEtherOutput}
	RecvComponents = []Component{CompDeviceIntrRead, CompNetisrPF, CompKernelCopyout,
		CompMbufQueue, CompIPIntr, CompTransportInput, CompWakeupUser, CompCopyoutExit}
)

// PathCosts holds the cost of every component for one protocol.
type PathCosts [NumComponents]Lin

// ProtoCosts holds per-protocol path costs.
type ProtoCosts struct {
	TCP PathCosts
	UDP PathCosts
}

// Style describes where the protocol stack executes.
type Style int

const (
	StyleLibrary Style = iota // application-linked protocol library
	StyleKernel               // in-kernel (Mach 2.5, Ultrix, 386BSD)
	StyleServer               // user-level protocol server (UX, BNR2SS)
)

func (s Style) String() string {
	switch s {
	case StyleLibrary:
		return "library"
	case StyleKernel:
		return "kernel"
	case StyleServer:
		return "server"
	}
	return "unknown"
}

// Delivery selects the user/kernel packet receive interface for
// library-based configurations (paper §4.1).
type Delivery int

const (
	// DeliverIPC sends each incoming packet to the application in a
	// separate Mach IPC message.
	DeliverIPC Delivery = iota
	// DeliverSHM copies packets into a ring shared between kernel and
	// application and signals a lightweight condition variable; multiple
	// packets are picked up per wakeup.
	DeliverSHM
	// DeliverSHMIPF integrates the packet filter with the device driver:
	// the filter examines headers in device memory and the packet body is
	// copied once, directly into the destination ring.
	DeliverSHMIPF
)

func (d Delivery) String() string {
	switch d {
	case DeliverIPC:
		return "IPC"
	case DeliverSHM:
		return "SHM"
	case DeliverSHMIPF:
		return "SHM-IPF"
	}
	return "unknown"
}

// OffloadCosts prices a simulated NIC offload engine. The charges are
// NIC-side virtual time — they serialize frames through the engine's own
// pipeline, not the host CPU, which is the point of offloading — but they
// are metered into the metrics registry so the engine's work is visible
// next to the software components. Enabled gates the whole engine: a
// zero-value OffloadCosts means the host has a plain NIC.
type OffloadCosts struct {
	Enabled bool

	// TxSetup is charged once per transmit super-segment: descriptor
	// setup and parsing the header template.
	TxSetup Lin
	// TxSegment is charged per wire frame sliced out of a super-segment:
	// header replication and field patching.
	TxSegment Lin
	// Checksum is charged per frame checksummed (transmit) or verified
	// (receive) on the NIC; the per-byte part dominates.
	Checksum Lin
	// RxMerge is charged per received frame examined by the coalescing
	// (LRO) unit, whether or not it merges.
	RxMerge Lin
	// RxFlush is charged per coalesced super-segment delivered up to the
	// host receive path.
	RxFlush Lin

	// TxFIFOFrames and RxFIFOFrames bound the engine's per-direction
	// FIFO: the number of frames that may sit queued awaiting pipeline
	// completion (plus, on receive, open LRO merges). When a FIFO is
	// full, further frames are not dropped — they degrade gracefully to
	// the software path: the host CPU does the checksum work (priced by
	// SwChecksum) and TSO/LRO are skipped for that frame. Zero means
	// unlimited, which preserves the behavior of older profiles.
	TxFIFOFrames int
	RxFIFOFrames int

	// SwChecksum prices the software-fallback checksum pass (and, on
	// transmit, the software GSO slicing that replaces TSO), charged on
	// the host CPU when a full FIFO pushes a frame off the engine.
	SwChecksum Lin
}

// Profile is the complete cost model for one system configuration.
type Profile struct {
	Name  string
	Style Style
	// Delivery applies to StyleLibrary only.
	Delivery Delivery
	Costs    ProtoCosts

	// Offload, when Enabled, attaches the simulated NIC offload engine
	// (TSO/GSO segmentation, LRO coalescing, checksum offload, adaptive
	// interrupt moderation) to hosts built with this profile.
	Offload OffloadCosts

	// IPCRecvPerPacket is an extra per-packet charge in the application's
	// receive loop when packets arrive as individual IPC messages
	// (DeliverIPC): the receive trap and message header handling.
	IPCRecvPerPacket Lin

	// ProxyRPC is the cost of one proxy call to the operating-system
	// server (connection setup and other non-critical-path operations).
	ProxyRPC Lin

	// LargeTCPSendBroken models the 386BSD/BNR2SS bug the paper notes:
	// "a bug that prevents them from sending large TCP packets". Sends of
	// TCP payloads of 1024 bytes or more fail, and the benchmark tables
	// report NA.
	LargeTCPSendBroken bool
}

// Clone returns a deep copy of the profile (PathCosts are values, so a
// struct copy suffices; the method exists for clarity at call sites).
func (p Profile) Clone() Profile { return p }
