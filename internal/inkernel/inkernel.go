// Package inkernel implements the paper's in-kernel baseline (Mach 2.5,
// Ultrix 4.2A, 386BSD): the protocol stack executes inside the simulated
// kernel. Application socket calls trap into the kernel and run the
// socket layer there; received packets are processed at software
// interrupt level, which preempts application work on the uniprocessor.
//
// There is no packet filter demultiplexing to user space and no
// kernel-to-user packet copy: the stack reads the kernel buffer directly
// and data is copied exactly once, at the copyout in recv (the zero
// "kernel copyout" and "mbuf/queue" rows of Table 4's kernel column).
package inkernel

import (
	"time"

	"repro/internal/costs"
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/metrics"
	"repro/internal/offload"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/socketapi"
	"repro/internal/stack"
	"repro/internal/trace"
	"repro/internal/wire"
)

// System is one host running an in-kernel protocol stack.
type System struct {
	Host   *kern.Host
	St     *stack.Stack
	prof   costs.Profile
	kproc  *kern.Process
	netisr *sim.Proc

	// selCond implements select in the style of BSD's selwakeup: any
	// socket status change wakes all selectors, which recheck.
	selCond sim.Cond

	// Observer, when set, receives every protocol-layer charge (Table 4
	// instrumentation).
	Observer func(comp costs.Component, d time.Duration)
}

// SetTrace attaches a flight recorder to the system: the kernel host's
// packet-filter layer and the in-kernel protocol stack.
func (sys *System) SetTrace(r *trace.Recorder) {
	sys.Host.Trace = r
	sys.St.SetTrace(r)
}

// SetMetrics attaches a registry scope (e.g. "host.alpha") to the
// system: kernel host counters plus the in-kernel protocol stack.
func (sys *System) SetMetrics(hs *metrics.Scope) {
	if hs == nil {
		return
	}
	sys.Host.SetMetrics(hs)
	sys.St.SetMetrics(hs.Sub("stack").Sub("kstack"))
}

// New attaches a host running prof's in-kernel stack to the segment.
func New(s *sim.Sim, seg *simnet.Segment, name string, mac wire.MAC, ip wire.IPAddr, prof costs.Profile) *System {
	sys := &System{prof: prof}
	sys.Host = kern.NewHost(s, seg, name, mac, ip, prof)
	sys.kproc = sys.Host.NewProcess("kernel")

	// All traffic lands on the kernel stack's endpoint.
	ep := sys.Host.NewEndpoint(0)
	if _, err := ep.InstallProgram(kern.CatchAllProgram(), 0); err != nil {
		panic(err)
	}

	sys.St = stack.New(stack.Config{
		Sim:      s,
		Name:     name + ".kstack",
		LocalIP:  ip,
		LocalMAC: sys.Host.NIC.MAC(),
		Costs:    &sys.prof.Costs,
		Charge:   sys.charge,
		Transmit: sys.Host.Transmit,
		Ports:    stack.NewLocalPorts(),

		MaxTCPPayload: quirkMax(prof),

		// NIC offload engine hookup (profiles that enable it).
		TSOMaxPayload:   offload.TSOFor(sys.Host.Prof),
		ChecksumOffload: sys.Host.Prof.Offload.Enabled,
	})

	// The software-interrupt thread: drains the device queue and runs
	// protocol input at interrupt priority, preempting user work.
	sys.netisr = sys.kproc.GoDaemon("netisr", func(t *sim.Proc) {
		for {
			pkt, ok := ep.Recv(t)
			if !ok {
				return
			}
			sys.St.Input(t, pkt.Frame)
		}
	})
	sys.St.StartTimers(sys.kproc.GoDaemon)
	return sys
}

func quirkMax(prof costs.Profile) int {
	if prof.LargeTCPSendBroken {
		return 1024
	}
	return 0
}

// charge prices one protocol layer. Input processing (on the netisr
// thread) runs at interrupt priority; everything else is a process
// executing in kernel mode at task priority.
func (sys *System) charge(t *sim.Proc, tcp bool, comp costs.Component, n int) {
	pc := &sys.prof.Costs.UDP
	if tcp {
		pc = &sys.prof.Costs.TCP
	}
	d := pc[comp].At(n)
	if sys.Observer != nil && d > 0 {
		sys.Observer(comp, d)
	}
	if t == sys.netisr {
		sys.Host.ChargeIntrProc(t, d)
	} else {
		sys.Host.ChargeProc(t, d)
	}
}

// fdEntry is a refcounted descriptor-table slot; fork shares entries, as
// BSD shares struct file.
type fdEntry struct {
	sock *stack.Socket
	refs *int
}

// API is the per-process socket interface.
type API struct {
	sys  *System
	Proc *kern.Process
	fds  map[int]*fdEntry
	next int
}

var _ socketapi.API = (*API)(nil)
var _ socketapi.ZeroCopyAPI = (*API)(nil)

// NewAPI creates a process on the host and returns its socket interface.
func (sys *System) NewAPI(name string) *API {
	a := &API{sys: sys, Proc: sys.Host.NewProcess(name), fds: make(map[int]*fdEntry), next: 3}
	return a
}

func (a *API) get(fd int) (*fdEntry, error) {
	e, ok := a.fds[fd]
	if !ok {
		return nil, socketapi.ErrBadFD
	}
	return e, nil
}

func (a *API) install(s *stack.Socket) int {
	fd := a.next
	a.next++
	one := 1
	a.fds[fd] = &fdEntry{sock: s, refs: &one}
	s.Notify = func() { a.sys.selCond.Broadcast() }
	return fd
}

// Socket implements socketapi.API.
func (a *API) Socket(t *sim.Proc, typ int) (int, error) {
	var proto uint8
	switch typ {
	case socketapi.SockStream:
		proto = wire.ProtoTCP
	case socketapi.SockDgram:
		proto = wire.ProtoUDP
	default:
		return -1, socketapi.ErrInvalid
	}
	return a.install(a.sys.St.NewSocket(proto)), nil
}

// Bind implements socketapi.API.
func (a *API) Bind(t *sim.Proc, fd int, addr socketapi.SockAddr) error {
	e, err := a.get(fd)
	if err != nil {
		return err
	}
	return a.sys.St.Bind(e.sock, stack.Addr{IP: addr.Addr, Port: addr.Port})
}

// Connect implements socketapi.API.
func (a *API) Connect(t *sim.Proc, fd int, addr socketapi.SockAddr) error {
	e, err := a.get(fd)
	if err != nil {
		return err
	}
	return a.sys.St.Connect(t, e.sock, stack.Addr{IP: addr.Addr, Port: addr.Port})
}

// Listen implements socketapi.API.
func (a *API) Listen(t *sim.Proc, fd int, backlog int) error {
	e, err := a.get(fd)
	if err != nil {
		return err
	}
	return a.sys.St.Listen(e.sock, backlog)
}

// Accept implements socketapi.API.
func (a *API) Accept(t *sim.Proc, fd int) (int, socketapi.SockAddr, error) {
	e, err := a.get(fd)
	if err != nil {
		return -1, socketapi.SockAddr{}, err
	}
	ns, err := a.sys.St.Accept(t, e.sock)
	if err != nil {
		return -1, socketapi.SockAddr{}, err
	}
	ra := ns.RemoteAddr()
	return a.install(ns), socketapi.SockAddr{Addr: ra.IP, Port: ra.Port}, nil
}

// Send implements socketapi.API.
func (a *API) Send(t *sim.Proc, fd int, b []byte, flags int) (int, error) {
	return a.SendMsg(t, fd, [][]byte{b}, flags, nil)
}

// SendTo implements socketapi.API.
func (a *API) SendTo(t *sim.Proc, fd int, b []byte, flags int, to socketapi.SockAddr) (int, error) {
	return a.SendMsg(t, fd, [][]byte{b}, flags, &to)
}

// SendMsg implements socketapi.API.
func (a *API) SendMsg(t *sim.Proc, fd int, iov [][]byte, flags int, to *socketapi.SockAddr) (int, error) {
	e, err := a.get(fd)
	if err != nil {
		return 0, err
	}
	opts := stack.SendOpts{OOB: flags&socketapi.MsgOOB != 0}
	if to != nil {
		opts.To = &stack.Addr{IP: to.Addr, Port: to.Port}
	}
	return a.sys.St.Send(t, e.sock, iov, opts)
}

// Recv implements socketapi.API.
func (a *API) Recv(t *sim.Proc, fd int, b []byte, flags int) (int, error) {
	n, _, err := a.RecvFrom(t, fd, b, flags)
	return n, err
}

// RecvFrom implements socketapi.API.
func (a *API) RecvFrom(t *sim.Proc, fd int, b []byte, flags int) (int, socketapi.SockAddr, error) {
	e, err := a.get(fd)
	if err != nil {
		return 0, socketapi.SockAddr{}, err
	}
	opts := stack.RecvOpts{OOB: flags&socketapi.MsgOOB != 0, Peek: flags&socketapi.MsgPeek != 0}
	n, from, _, err := a.sys.St.Recv(t, e.sock, b, opts)
	return n, socketapi.SockAddr{Addr: from.IP, Port: from.Port}, err
}

// RecvMsg implements socketapi.API.
func (a *API) RecvMsg(t *sim.Proc, fd int, iov [][]byte, flags int) (int, socketapi.SockAddr, error) {
	total := 0
	var from socketapi.SockAddr
	for i, b := range iov {
		n, f, err := a.RecvFrom(t, fd, b, flags)
		if i == 0 {
			from = f
		}
		total += n
		if err != nil {
			return total, from, err
		}
		if n < len(b) {
			break
		}
	}
	return total, from, nil
}

// Close implements socketapi.API.
func (a *API) Close(t *sim.Proc, fd int) error {
	e, err := a.get(fd)
	if err != nil {
		return err
	}
	delete(a.fds, fd)
	*e.refs--
	if *e.refs == 0 {
		return a.sys.St.Close(t, e.sock)
	}
	return nil
}

// Shutdown implements socketapi.API.
func (a *API) Shutdown(t *sim.Proc, fd int, how int) error {
	e, err := a.get(fd)
	if err != nil {
		return err
	}
	return a.sys.St.Shutdown(t, e.sock, how)
}

// SetSockOpt implements socketapi.API.
func (a *API) SetSockOpt(t *sim.Proc, fd int, opt, value int) error {
	e, err := a.get(fd)
	if err != nil {
		return err
	}
	return a.sys.St.SetOption(e.sock, opt, value)
}

// GetSockOpt implements socketapi.API.
func (a *API) GetSockOpt(t *sim.Proc, fd int, opt int) (int, error) {
	e, err := a.get(fd)
	if err != nil {
		return 0, err
	}
	return a.sys.St.GetOption(e.sock, opt)
}

// GetSockName implements socketapi.API.
func (a *API) GetSockName(t *sim.Proc, fd int) (socketapi.SockAddr, error) {
	e, err := a.get(fd)
	if err != nil {
		return socketapi.SockAddr{}, err
	}
	la := e.sock.LocalAddr()
	return socketapi.SockAddr{Addr: la.IP, Port: la.Port}, nil
}

// GetPeerName implements socketapi.API.
func (a *API) GetPeerName(t *sim.Proc, fd int) (socketapi.SockAddr, error) {
	e, err := a.get(fd)
	if err != nil {
		return socketapi.SockAddr{}, err
	}
	ra := e.sock.RemoteAddr()
	if ra.IsZero() {
		return socketapi.SockAddr{}, socketapi.ErrNotConn
	}
	return socketapi.SockAddr{Addr: ra.IP, Port: ra.Port}, nil
}

// Select implements socketapi.API.
func (a *API) Select(t *sim.Proc, read, write socketapi.FDSet, timeout time.Duration) (socketapi.FDSet, socketapi.FDSet, error) {
	deadline := t.Now().Add(timeout)
	for {
		r, w := socketapi.FDSet{}, socketapi.FDSet{}
		for fd := range read {
			if e, ok := a.fds[fd]; ok && e.sock.Readable() {
				r[fd] = true
			}
		}
		for fd := range write {
			if e, ok := a.fds[fd]; ok && e.sock.Writable() {
				w[fd] = true
			}
		}
		if len(r) > 0 || len(w) > 0 {
			return r, w, nil
		}
		if timeout == 0 {
			return r, w, nil
		}
		if timeout < 0 {
			a.sys.selCond.Wait(t)
			continue
		}
		remain := deadline.Sub(t.Now())
		if remain <= 0 {
			return r, w, nil
		}
		a.sys.selCond.WaitTimeout(t, remain)
	}
}

// Fork implements socketapi.API: the child's descriptor table references
// the same open sockets.
func (a *API) Fork(t *sim.Proc, childName string) (socketapi.API, error) {
	child := &API{
		sys:  a.sys,
		Proc: a.sys.Host.NewProcess(childName),
		fds:  make(map[int]*fdEntry, len(a.fds)),
		next: a.next,
	}
	for fd, e := range a.fds {
		*e.refs++
		child.fds[fd] = e
	}
	return child, nil
}

// ExitProcess implements socketapi.API: the kernel closes surviving
// descriptors gracefully, as BSD exit() does.
func (a *API) ExitProcess(t *sim.Proc) {
	for fd := range a.fds {
		a.Close(t, fd)
	}
	a.Proc.Exit()
}

// SendZC implements socketapi.ZeroCopyAPI. The in-kernel implementation
// cannot share buffers across the protection boundary, so it falls back
// to the copying path (provided so workloads can run unchanged; the
// benchmark harness only advertises NEWAPI for library configurations).
func (a *API) SendZC(t *sim.Proc, fd int, b []byte, flags int) (int, error) {
	return a.Send(t, fd, b, flags)
}

var _ socketapi.ChainAPI = (*API)(nil)

// SendChain implements socketapi.ChainAPI. The chain lives in
// application memory, so crossing into the kernel costs the usual
// copyin: the gather list is fed to the copying send path and the
// chain released.
func (a *API) SendChain(t *sim.Proc, fd int, c *mbuf.Chain, flags int) (int, error) {
	e, err := a.get(fd)
	if err != nil {
		if c != nil {
			c.Release()
		}
		return 0, err
	}
	var iov [][]byte
	if c != nil {
		for it := c.Iter(); ; {
			b, ok := it.Next()
			if !ok {
				break
			}
			iov = append(iov, b)
		}
	}
	n, serr := a.sys.St.Send(t, e.sock, iov, stack.SendOpts{OOB: flags&socketapi.MsgOOB != 0})
	if c != nil {
		c.Release()
	}
	return n, serr
}

// RecvPeek implements socketapi.ChainAPI: a copying emulation (the
// kernel cannot hand the application an alias into kernel buffers), so
// the view is a private copy and the requested ranges are sliced from
// it. Semantics match the library implementation exactly.
func (a *API) RecvPeek(t *sim.Proc, fd int, max int, ranges []socketapi.Range) (socketapi.RecvView, error) {
	e, err := a.get(fd)
	if err != nil {
		return socketapi.RecvView{}, err
	}
	if max <= 0 {
		max, _ = a.sys.St.GetOption(e.sock, socketapi.SoRcvBuf)
	}
	buf := make([]byte, max)
	n, from, _, rerr := a.sys.St.Recv(t, e.sock, buf, stack.RecvOpts{Peek: true})
	if rerr != nil {
		return socketapi.RecvView{}, rerr
	}
	view := mbuf.FromBytes(buf[:n])
	return socketapi.RecvView{
		Chain:  view,
		Copied: socketapi.MaterializeRanges(view, ranges),
		From:   socketapi.SockAddr{Addr: from.IP, Port: from.Port},
	}, nil
}

// RecvRelease implements socketapi.ChainAPI: consuming queued bytes is
// a kernel-side operation with no copyout.
func (a *API) RecvRelease(t *sim.Proc, fd int, n int) error {
	e, err := a.get(fd)
	if err != nil {
		return err
	}
	return a.sys.St.RecvRelease(t, e.sock, n)
}

// Splice implements socketapi.ChainAPI. Both sockets live in the
// kernel, so this is sendfile: the pump runs entirely below the
// user/kernel boundary and no payload byte is copied.
func (a *API) Splice(t *sim.Proc, dstFD, srcFD int, n int) (int, error) {
	de, err := a.get(dstFD)
	if err != nil {
		return 0, err
	}
	se, err := a.get(srcFD)
	if err != nil {
		return 0, err
	}
	return a.sys.St.Splice(t, de.sock, se.sock, n)
}

// RecvZC implements socketapi.ZeroCopyAPI (copying fallback, see SendZC).
func (a *API) RecvZC(t *sim.Proc, fd int, max int, flags int) ([]byte, socketapi.SockAddr, error) {
	buf := make([]byte, max)
	n, from, err := a.RecvFrom(t, fd, buf, flags)
	return buf[:n], from, err
}
