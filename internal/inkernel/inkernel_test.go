package inkernel_test

import (
	"testing"

	"repro/internal/apitest"
	"repro/internal/costs"
	"repro/internal/inkernel"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/socketapi"
	"repro/internal/wire"
)

func build(t *testing.T, seed int64) *apitest.Env {
	s := sim.New(seed)
	seg := simnet.NewSegment(s)
	ipA, ipB := wire.IP(10, 0, 0, 1), wire.IP(10, 0, 0, 2)
	sysA := inkernel.New(s, seg, "A", wire.MAC{1}, ipA, costs.DECKernelMach25())
	sysB := inkernel.New(s, seg, "B", wire.MAC{2}, ipB, costs.DECKernelMach25())
	return &apitest.Env{
		Sim:  s,
		NewA: func(name string) socketapi.API { return sysA.NewAPI(name) },
		NewB: func(name string) socketapi.API { return sysB.NewAPI(name) },
		IPA:  ipA,
		IPB:  ipB,
	}
}

func TestConformance(t *testing.T) {
	apitest.RunAll(t, build)
}
