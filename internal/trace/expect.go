package trace

import (
	"fmt"
	"strings"
)

// Want describes one step of an expected event sequence. Event is
// required. Host, when non-empty, must be a prefix of the record's Host
// — so "alpha" matches both the link "alpha" and the stacks
// "alpha.os-server" / "alpha.demo-client.lib". Contains, when
// non-empty, must be a substring of the record's Detail() line.
type Want struct {
	Event    Event
	Host     string
	Contains string
}

func (w Want) String() string {
	s := w.Event.String()
	if w.Host != "" {
		s += " host=" + w.Host
	}
	if w.Contains != "" {
		s += fmt.Sprintf(" detail~%q", w.Contains)
	}
	return s
}

// Matches reports whether rec satisfies the step.
func (w Want) Matches(rec *Record) bool {
	if rec.Event != w.Event {
		return false
	}
	if w.Host != "" && !strings.HasPrefix(rec.Host, w.Host) {
		return false
	}
	if w.Contains != "" && !strings.Contains(rec.Detail(), w.Contains) {
		return false
	}
	return true
}

// Expect checks that wants occurs as an ordered subsequence of recs:
// each step must match a record strictly after the previous step's
// match, with any number of other records in between. This is the
// test-oracle form of "SYN, then SYN-ACK, then ACK, then ESTABLISHED":
// it pins relative order without overconstraining unrelated traffic.
//
// On failure the error names the first unmatched step and lists the
// candidate records of the same event type, so the mismatch is
// diagnosable from the test log alone.
func Expect(recs []Record, wants ...Want) error {
	i := 0
	for step, w := range wants {
		found := -1
		for ; i < len(recs); i++ {
			if w.Matches(&recs[i]) {
				found = i
				break
			}
		}
		if found < 0 {
			return expectErr(recs, wants, step, w)
		}
		i = found + 1
	}
	return nil
}

func expectErr(recs []Record, wants []Want, step int, w Want) error {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: step %d/%d not found: %s", step+1, len(wants), w)
	var near []string
	for i := range recs {
		if recs[i].Event == w.Event {
			near = append(near, recs[i].String())
		}
	}
	if len(near) == 0 {
		fmt.Fprintf(&b, "\n  (no %s records at all in %d records)", w.Event, len(recs))
	} else {
		if len(near) > 8 {
			near = near[len(near)-8:]
		}
		fmt.Fprintf(&b, "\n  %s records seen (any position):", w.Event)
		for _, s := range near {
			fmt.Fprintf(&b, "\n    %s", s)
		}
	}
	return fmt.Errorf("%s", b.String())
}

// Find returns every record matching w, in order.
func Find(recs []Record, w Want) []Record {
	var out []Record
	for i := range recs {
		if w.Matches(&recs[i]) {
			out = append(out, recs[i])
		}
	}
	return out
}

// Count returns the number of records matching w.
func Count(recs []Record, w Want) int {
	n := 0
	for i := range recs {
		if w.Matches(&recs[i]) {
			n++
		}
	}
	return n
}
