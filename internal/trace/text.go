package trace

import (
	"bufio"
	"fmt"
	"io"
	"time"

	"repro/internal/wire"
)

// Detail renders the event-specific portion of a record as one line of
// text. The output is stable across runs for a given seed: it contains
// only virtual quantities.
func (rec Record) Detail() string {
	switch rec.Event {
	case EvDispatch:
		if rec.Name == "" {
			return "dispatch timer"
		}
		return "dispatch " + rec.Name
	case EvPark:
		return "park " + rec.Name
	case EvUnpark:
		return "unpark " + rec.Name
	case EvFrameTx:
		return fmt.Sprintf("tx %dB %s", rec.Arg0, DecodeFrame(rec.Frame))
	case EvFrameRx:
		return fmt.Sprintf("rx %dB from %s", rec.Arg0, rec.Name)
	case EvFrameDrop:
		return fmt.Sprintf("drop (%s)", rec.Aux)
	case EvFrameCorrupt:
		return fmt.Sprintf("corrupt bit=%d", rec.Arg0)
	case EvFrameDup:
		return "dup"
	case EvFrameDelay:
		return fmt.Sprintf("delay %v", time.Duration(rec.Arg0))
	case EvPartitionDrop:
		return "partition-drop to " + rec.Name
	case EvFilterMatch:
		return fmt.Sprintf("filter match id=%d examined=%dB", rec.Arg0, rec.Arg1)
	case EvFilterMiss:
		return "filter miss (no endpoint)"
	case EvTCPState:
		return fmt.Sprintf("state %s %s", rec.Name, rec.Aux)
	case EvTCPRexmit:
		return fmt.Sprintf("rexmit(%s) %s shift=%d", rec.Aux, rec.Name, rec.Arg0)
	case EvTCPCwnd:
		return fmt.Sprintf("cwnd %s cwnd=%d ssthresh=%d", rec.Name, rec.Arg0, rec.Arg1)
	case EvTCPRTT:
		return fmt.Sprintf("rtt %s sample=%v srtt=%v rttvar=%v", rec.Name,
			time.Duration(rec.Arg0), time.Duration(rec.Arg1), time.Duration(rec.Arg2))
	case EvChecksumDrop:
		return fmt.Sprintf("checksum-drop (%s)", rec.Aux)
	case EvSession:
		return fmt.Sprintf("session %s sid=%d proto=%s", rec.Aux, rec.Arg0, rec.Name)
	case EvPortOp:
		return fmt.Sprintf("port %s %s/%d", rec.Aux, rec.Name, rec.Arg0)
	case EvConnSetup:
		return fmt.Sprintf("conn-setup %s sid=%d", rec.Name, rec.Arg0)
	case EvConnTeardown:
		return fmt.Sprintf("conn-teardown %s sid=%d", rec.Name, rec.Arg0)
	case EvMigrate:
		return fmt.Sprintf("migrate %s %s sid=%d", rec.Aux, rec.Name, rec.Arg0)
	case EvOrphanAbort:
		return fmt.Sprintf("orphan-abort sid=%d", rec.Arg0)
	}
	return rec.Event.String()
}

// String renders the full one-line form: virtual time, host, layer,
// detail.
func (rec Record) String() string {
	host := rec.Host
	if host == "" {
		host = "-"
	}
	return fmt.Sprintf("%14v  %-22s %-6s %s", rec.At.Duration(), host, rec.Layer, rec.Detail())
}

// WriteText writes the records as human-readable text, one per line.
// Same records in, same bytes out.
func WriteText(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for i := range recs {
		if _, err := fmt.Fprintln(bw, recs[i].String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteText exports every retained record as text.
func (r *Recorder) WriteText(w io.Writer) error { return WriteText(w, r.Records()) }

// DecodeFrame renders a captured Ethernet frame as a tcpdump-style
// one-liner (ARP, IPv4, UDP, TCP, ICMP).
func DecodeFrame(frame []byte) string {
	eh, err := wire.UnmarshalEth(frame)
	if err != nil {
		return fmt.Sprintf("malformed frame (%d bytes)", len(frame))
	}
	switch eh.Type {
	case wire.EtherTypeARP:
		p, err := wire.UnmarshalARP(frame[wire.EthHeaderLen:])
		if err != nil {
			return "malformed ARP"
		}
		if p.Op == wire.ARPRequest {
			return fmt.Sprintf("ARP who-has %v tell %v", p.TargetIP, p.SenderIP)
		}
		return fmt.Sprintf("ARP reply %v is-at %v", p.SenderIP, p.SenderMAC)
	case wire.EtherTypeIPv4:
		h, hl, err := wire.UnmarshalIPv4(frame[wire.EthHeaderLen:])
		if err != nil {
			return "malformed IPv4"
		}
		body := frame[wire.EthHeaderLen+hl:]
		if int(h.TotalLen) <= len(frame)-wire.EthHeaderLen {
			body = frame[wire.EthHeaderLen+hl : wire.EthHeaderLen+int(h.TotalLen)]
		}
		if h.IsFragment() {
			return fmt.Sprintf("IP %v > %v: %s fragment off=%d mf=%v len=%d",
				h.Src, h.Dst, wire.ProtoName(h.Proto), int(h.FragOff)*8, h.MoreFragments(), len(body))
		}
		switch h.Proto {
		case wire.ProtoUDP:
			u, err := wire.UnmarshalUDP(body)
			if err != nil {
				return "malformed UDP"
			}
			return fmt.Sprintf("UDP %v:%d > %v:%d len=%d",
				h.Src, u.SrcPort, h.Dst, u.DstPort, int(u.Length)-wire.UDPHeaderLen)
		case wire.ProtoTCP:
			th, hl2, err := wire.UnmarshalTCP(body)
			if err != nil {
				return "malformed TCP"
			}
			payload := len(body) - hl2
			extra := ""
			if th.MSS != 0 {
				extra = fmt.Sprintf(" mss=%d", th.MSS)
			}
			return fmt.Sprintf("TCP %v:%d > %v:%d [%s] seq=%d ack=%d win=%d len=%d%s",
				h.Src, th.SrcPort, h.Dst, th.DstPort,
				wire.FlagString(th.Flags), th.Seq, th.Ack, th.Window, payload, extra)
		case wire.ProtoICMP:
			ih, _, err := wire.UnmarshalICMP(body)
			if err != nil {
				return "malformed ICMP"
			}
			return fmt.Sprintf("ICMP %v > %v type=%d code=%d", h.Src, h.Dst, ih.Type, ih.Code)
		}
		return fmt.Sprintf("IP %v > %v proto=%d", h.Src, h.Dst, h.Proto)
	}
	return fmt.Sprintf("ethertype %#04x (%d bytes)", eh.Type, len(frame))
}
