package trace

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/sim"
)

// Pcap constants: the classic libpcap file format with the
// nanosecond-resolution magic, so Wireshark shows virtual timestamps
// exactly. Link type 1 is Ethernet.
const (
	pcapMagicNanos   = 0xa1b23c4d
	pcapVersionMajor = 2
	pcapVersionMinor = 4
	pcapSnapLen      = 65535
	pcapLinkEthernet = 1
)

// WritePcap writes every captured frame (EvFrameTx records) as a pcap
// stream. Timestamps are the virtual transmit times, so the capture is
// byte-identical across runs with the same seed.
func WritePcap(w io.Writer, recs []Record) error {
	var hdr [24]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], pcapMagicNanos)
	le.PutUint16(hdr[4:], pcapVersionMajor)
	le.PutUint16(hdr[6:], pcapVersionMinor)
	// thiszone and sigfigs stay zero.
	le.PutUint32(hdr[16:], pcapSnapLen)
	le.PutUint32(hdr[20:], pcapLinkEthernet)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var rec [16]byte
	for i := range recs {
		r := &recs[i]
		if r.Event != EvFrameTx {
			continue
		}
		ns := int64(r.At)
		le.PutUint32(rec[0:], uint32(ns/1e9))
		le.PutUint32(rec[4:], uint32(ns%1e9))
		le.PutUint32(rec[8:], uint32(len(r.Frame)))
		le.PutUint32(rec[12:], uint32(len(r.Frame)))
		if _, err := w.Write(rec[:]); err != nil {
			return err
		}
		if _, err := w.Write(r.Frame); err != nil {
			return err
		}
	}
	return nil
}

// WritePcap exports the recorder's frame stream as pcap.
func (r *Recorder) WritePcap(w io.Writer) error { return WritePcap(w, r.Records()) }

// PcapPacket is one packet read back from a pcap stream.
type PcapPacket struct {
	At   sim.Time
	Data []byte
}

// ReadPcap parses a pcap stream produced by WritePcap (little-endian,
// nanosecond magic) and returns the packets, for round-trip tests.
func ReadPcap(r io.Reader) ([]PcapPacket, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: short pcap header: %w", err)
	}
	le := binary.LittleEndian
	if m := le.Uint32(hdr[0:]); m != pcapMagicNanos {
		return nil, fmt.Errorf("trace: bad pcap magic %#08x (want nanosecond %#08x)", m, uint32(pcapMagicNanos))
	}
	if lt := le.Uint32(hdr[20:]); lt != pcapLinkEthernet {
		return nil, fmt.Errorf("trace: unexpected link type %d", lt)
	}
	var pkts []PcapPacket
	var rec [16]byte
	for {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			if err == io.EOF {
				return pkts, nil
			}
			return nil, fmt.Errorf("trace: short pcap record header: %w", err)
		}
		sec := int64(le.Uint32(rec[0:]))
		nsec := int64(le.Uint32(rec[4:]))
		incl := le.Uint32(rec[8:])
		if incl > pcapSnapLen {
			return nil, fmt.Errorf("trace: pcap record length %d exceeds snaplen", incl)
		}
		data := make([]byte, incl)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, fmt.Errorf("trace: short pcap packet body: %w", err)
		}
		pkts = append(pkts, PcapPacket{At: sim.Time(sec*1e9 + nsec), Data: data})
	}
}
