package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// WriteChromeTrace exports the records as Chrome trace_event JSON
// (load in chrome://tracing or https://ui.perfetto.dev). Each host
// becomes a "process" (pid in first-appearance order), each layer a
// "thread" within it, and every record an instant event carrying its
// detail line; congestion-window samples additionally emit counter
// events so cwnd/ssthresh render as a graph. The output is built
// deterministically: same records, same bytes.
func WriteChromeTrace(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	pids := map[string]int{}
	var hosts []string
	pidOf := func(host string) int {
		if host == "" {
			host = "(sim)"
		}
		if pid, ok := pids[host]; ok {
			return pid
		}
		pid := len(pids) + 1
		pids[host] = pid
		hosts = append(hosts, host)
		return pid
	}

	if _, err := io.WriteString(bw, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}

	// Pass 1: name the processes and threads in deterministic order.
	for i := range recs {
		pidOf(recs[i].Host)
	}
	for _, host := range hosts {
		pid := pids[host]
		emit(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
			pid, strconv.Quote(host)))
		for l := Layer(0); l < numLayers; l++ {
			emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
				pid, int(l), strconv.Quote(l.String())))
		}
	}

	for i := range recs {
		r := &recs[i]
		pid := pidOf(r.Host)
		ts := strconv.FormatFloat(float64(r.At)/1e3, 'f', 3, 64) // ns -> µs
		emit(fmt.Sprintf(`{"name":%s,"ph":"i","s":"t","ts":%s,"pid":%d,"tid":%d,"args":{"detail":%s}}`,
			strconv.Quote(r.Event.String()), ts, pid, int(r.Layer), strconv.Quote(r.Detail())))
		if r.Event == EvTCPCwnd {
			emit(fmt.Sprintf(`{"name":%s,"ph":"C","ts":%s,"pid":%d,"tid":%d,"args":{"cwnd":%d,"ssthresh":%d}}`,
				strconv.Quote("cwnd "+r.Name), ts, pid, int(r.Layer), r.Arg0, r.Arg1))
		}
	}
	if _, err := io.WriteString(bw, "\n],\"displayTimeUnit\":\"ns\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteChromeTrace exports the recorder's records as trace_event JSON.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, r.Records())
}
