// Package trace is a deterministic flight recorder for the simulated
// network. Instrumented layers (the sim scheduler, the Ethernet segment,
// the kernel packet filter, the protocol stacks, and the OS servers)
// emit typed records stamped with virtual time; the recorder keeps them
// in dispatch order, which for a given seed is reproducible bit for bit.
//
// Recording is strictly passive: no virtual CPU time is charged and no
// events are scheduled, so an instrumented run reaches the same virtual
// end time as an uninstrumented one. When the recorder is nil or a layer
// is masked off, the instrumentation sites reduce to a single nil/mask
// check and allocate nothing.
//
// Records can be exported as human-readable text (WriteText), as a
// Wireshark-compatible pcap of the frame stream (WritePcap), or as
// Chrome trace_event JSON for chrome://tracing (WriteChromeTrace), and
// queried in tests with Expect (ordered-subsequence matching).
package trace

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Layer identifies the subsystem that emitted a record.
type Layer uint8

const (
	LayerSim    Layer = iota // scheduler: event dispatch, proc park/unpark
	LayerNet                 // Ethernet segment: frame tx/rx/drop, fault attribution
	LayerFilter              // kernel packet filter: match/miss per frame
	LayerStack               // protocol stack: TCP state machine, timers, checksums
	LayerCore                // OS servers: sessions, ports, migration
	numLayers
)

var layerNames = [numLayers]string{"sim", "net", "filter", "stack", "core"}

func (l Layer) String() string {
	if int(l) < len(layerNames) {
		return layerNames[l]
	}
	return fmt.Sprintf("layer(%d)", int(l))
}

// ParseLayer maps a layer name ("sim", "net", "filter", "stack", "core")
// back to its Layer, for command-line flags.
func ParseLayer(name string) (Layer, error) {
	for i, n := range layerNames {
		if n == name {
			return Layer(i), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown layer %q", name)
}

// Mask selects which layers a recorder captures.
type Mask uint8

// AllLayers enables every layer.
const AllLayers Mask = 1<<numLayers - 1

// MaskOf builds a mask from individual layers.
func MaskOf(layers ...Layer) Mask {
	var m Mask
	for _, l := range layers {
		m |= 1 << l
	}
	return m
}

// Event is the type of a trace record.
type Event uint8

const (
	// Scheduler (LayerSim).
	EvDispatch Event = iota // an event fired; Name is the resumed proc ("" for timers)
	EvPark                  // a proc blocked waiting for a wakeup
	EvUnpark                // a parked proc was made runnable

	// Network (LayerNet).
	EvFrameTx       // a frame finished serializing onto the segment (Frame holds the bytes)
	EvFrameRx       // a NIC accepted a frame
	EvFrameDrop     // the segment dropped a frame (Aux: "loss", "down", "malformed")
	EvFrameCorrupt  // fault injection flipped a bit (Arg0: bit index)
	EvFrameDup      // fault injection duplicated the frame
	EvFrameDelay    // fault injection delayed the frame (Arg0: extra ns)
	EvPartitionDrop // a partition swallowed the frame (Name: intended receiver)

	// Packet filter (LayerFilter).
	EvFilterMatch // a filter claimed the frame (Arg0: filter ID, Arg1: bytes examined)
	EvFilterMiss  // no filter claimed the frame

	// Protocol stack (LayerStack).
	EvTCPState     // TCP state transition (Name: conn, Aux: "OLD -> NEW")
	EvTCPRexmit    // retransmission (Aux: "rto", "fast", "persist"; Arg0: shift/dupacks)
	EvTCPCwnd      // congestion window changed (Arg0: cwnd, Arg1: ssthresh)
	EvTCPRTT       // RTT sample folded into srtt (Arg0: sample, Arg1: srtt, Arg2: rttvar; ns)
	EvChecksumDrop // inbound packet discarded on checksum (Aux: "ip", "tcp", "udp", "icmp")

	// OS servers (LayerCore).
	EvSession      // proxy session created (Arg0: session ID)
	EvPortOp       // port table operation (Aux: op; Name: proto; Arg0: port)
	EvConnSetup    // TCP connection established on behalf of an app (Arg0: session ID)
	EvConnTeardown // server-side session closed (Arg0: session ID)
	EvMigrate      // TCP session migrated (Aux: "to-app", "to-server"; Arg0: session ID)
	EvOrphanAbort  // orphaned session aborted after app death (Arg0: session ID)

	numEvents
)

var eventNames = [numEvents]string{
	"dispatch", "park", "unpark",
	"frame-tx", "frame-rx", "frame-drop", "frame-corrupt", "frame-dup", "frame-delay", "partition-drop",
	"filter-match", "filter-miss",
	"tcp-state", "tcp-rexmit", "tcp-cwnd", "tcp-rtt", "checksum-drop",
	"session", "port-op", "conn-setup", "conn-teardown", "migrate", "orphan-abort",
}

func (e Event) String() string {
	if int(e) < len(eventNames) {
		return eventNames[e]
	}
	return fmt.Sprintf("event(%d)", int(e))
}

// eventLayers maps every event to the single layer that emits it, so
// queries can name an event without repeating the layer.
var eventLayers = [numEvents]Layer{
	LayerSim, LayerSim, LayerSim,
	LayerNet, LayerNet, LayerNet, LayerNet, LayerNet, LayerNet, LayerNet,
	LayerFilter, LayerFilter,
	LayerStack, LayerStack, LayerStack, LayerStack, LayerStack,
	LayerCore, LayerCore, LayerCore, LayerCore, LayerCore, LayerCore,
}

// LayerOf returns the layer that emits e.
func LayerOf(e Event) Layer { return eventLayers[e] }

// Record is one trace entry. Host tags the emitting component (a link or
// stack name such as "alpha" or "alpha.os-server"; empty for scheduler
// records). Name and Aux are event-specific labels — typically the
// primary object (proc, connection, remote link) and a qualifier (drop
// reason, state transition, retransmit kind). Frame is a private copy of
// the frame bytes, captured only for EvFrameTx.
type Record struct {
	Seq   uint64
	At    sim.Time
	Layer Layer
	Event Event
	Host  string
	Name  string
	Aux   string
	Arg0  int64
	Arg1  int64
	Arg2  int64
	Frame []byte
}

// Recorder accumulates trace records for one simulation. The zero of
// *Recorder (nil) is a valid, permanently-disabled recorder: On returns
// false and Emit is a no-op, so instrumentation sites need no nil checks
// beyond their On guard.
//
// A recorder can be split into lanes (see Lane) for sharded runs: each
// lane is a private single-writer buffer stamped by its own shard's
// clock, and the root merges them canonically on read. A recorder with
// no lanes — the classic case — keeps the original single-buffer
// behavior bit for bit.
type Recorder struct {
	sim     *sim.Sim
	mask    Mask
	limit   int
	dropped int
	seq     uint64
	recs    []Record

	root   *Recorder   // nil on the root recorder
	laneID int         // 0 for the root's own buffer
	lanes  []*Recorder // root only: child lanes in creation order
}

// New returns a recorder stamping records with s's virtual clock. With
// no layers given, every layer is captured.
func New(s *sim.Sim, layers ...Layer) *Recorder {
	m := AllLayers
	if len(layers) > 0 {
		m = MaskOf(layers...)
	}
	return &Recorder{sim: s, mask: m}
}

// Lane returns a child recorder that buffers privately and stamps
// records with s's clock. One lane per component (and per scheduler, in
// sharded runs) keeps every buffer single-writer, so shards may emit
// concurrently; Records on the root merges the lanes into one canonical
// stream ordered by (time, lane, emission seq). Lane ids follow
// creation order, which tracks topology construction order and is
// therefore deterministic. Lane on a nil recorder returns nil, so
// disabled tracing stays free.
func (r *Recorder) Lane(s *sim.Sim) *Recorder {
	if r == nil {
		return nil
	}
	root := r
	if root.root != nil {
		root = root.root
	}
	l := &Recorder{sim: s, mask: root.mask, limit: root.limit, root: root, laneID: len(root.lanes) + 1}
	root.lanes = append(root.lanes, l)
	return l
}

// On reports whether layer l is being captured. It is the guard every
// instrumentation site uses; it works on a nil receiver and performs no
// allocation, which is what makes disabled tracing free.
func (r *Recorder) On(l Layer) bool {
	return r != nil && r.mask&(1<<l) != 0
}

// Mask returns the recorder's layer mask (0 for a nil recorder).
func (r *Recorder) Mask() Mask {
	if r == nil {
		return 0
	}
	return r.mask
}

// SetLimit caps the number of retained records per lane; further emits
// are counted in Dropped instead of stored. Zero (the default) means
// unlimited. On a root recorder the limit propagates to existing lanes
// and is inherited by new ones.
func (r *Recorder) SetLimit(n int) {
	r.limit = n
	for _, l := range r.lanes {
		l.limit = n
	}
}

// Dropped returns the number of records discarded due to the limit,
// summed over lanes when called on a root.
func (r *Recorder) Dropped() int {
	if r == nil {
		return 0
	}
	d := r.dropped
	for _, l := range r.lanes {
		d += l.dropped
	}
	return d
}

// Emit appends a record. Callers must check On first; Emit on a nil
// recorder is a no-op so an unguarded call is safe, just wasteful.
func (r *Recorder) Emit(l Layer, e Event, host, name, aux string, a0, a1, a2 int64) {
	if r == nil {
		return
	}
	r.add(Record{
		Layer: l, Event: e, Host: host, Name: name, Aux: aux,
		Arg0: a0, Arg1: a1, Arg2: a2,
	})
}

// EmitFrame appends a frame-carrying record, copying the frame bytes so
// later in-place corruption by fault injection cannot retroactively
// change the trace. wireSize is the frame's on-the-wire size including
// framing overhead.
func (r *Recorder) EmitFrame(e Event, host, name string, frame []byte, wireSize int64) {
	if r == nil {
		return
	}
	cp := make([]byte, len(frame))
	copy(cp, frame)
	r.add(Record{
		Layer: LayerOf(e), Event: e, Host: host, Name: name,
		Arg0: int64(len(frame)), Arg1: wireSize, Frame: cp,
	})
}

func (r *Recorder) add(rec Record) {
	if r.limit > 0 && len(r.recs) >= r.limit {
		r.dropped++
		return
	}
	r.seq++
	rec.Seq = r.seq
	rec.At = r.sim.Now()
	r.recs = append(r.recs, rec)
}

// Records returns the accumulated records. With no lanes this is the
// recorder's own backing store in emission order (callers must not
// modify it) — byte-identical to the pre-lane behavior. With lanes it
// is a fresh merged slice ordered by (At, lane id, per-lane seq) and
// renumbered 1..n: the canonical total order, a pure function of the
// simulation content regardless of how many shards recorded it.
func (r *Recorder) Records() []Record {
	if r == nil {
		return nil
	}
	if len(r.lanes) == 0 {
		return r.recs
	}
	type tagged struct {
		rec  Record
		lane int
	}
	n := len(r.recs)
	for _, l := range r.lanes {
		n += len(l.recs)
	}
	merged := make([]tagged, 0, n)
	for _, rec := range r.recs {
		merged = append(merged, tagged{rec, 0})
	}
	for _, l := range r.lanes {
		for _, rec := range l.recs {
			merged = append(merged, tagged{rec, l.laneID})
		}
	}
	sort.Slice(merged, func(a, b int) bool {
		if merged[a].rec.At != merged[b].rec.At {
			return merged[a].rec.At < merged[b].rec.At
		}
		if merged[a].lane != merged[b].lane {
			return merged[a].lane < merged[b].lane
		}
		return merged[a].rec.Seq < merged[b].rec.Seq
	})
	out := make([]Record, n)
	for i := range merged {
		out[i] = merged[i].rec
		out[i].Seq = uint64(i + 1)
	}
	return out
}

// Len returns the number of retained records across all lanes.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := len(r.recs)
	for _, l := range r.lanes {
		n += len(l.recs)
	}
	return n
}

// Reset discards all records (the drop counter included) on the
// recorder and its lanes but keeps the mask and limit. The record
// buffers are retained and reused, so a recorder that is periodically
// reset stops allocating; slices returned by Records before the Reset
// are invalidated by it.
func (r *Recorder) Reset() {
	for i := range r.recs {
		r.recs[i] = Record{} // release frame copies and strings
	}
	r.recs = r.recs[:0]
	r.dropped = 0
	r.seq = 0
	for _, l := range r.lanes {
		l.Reset()
	}
}

// simTracer adapts the recorder to the sim.Tracer callback interface.
// It is installed only when LayerSim is enabled, so scheduler tracing
// costs nothing when off.
type simTracer struct{ r *Recorder }

func (t simTracer) EventDispatch(at sim.Time, proc string) {
	t.r.Emit(LayerSim, EvDispatch, "", proc, "", 0, 0, 0)
}
func (t simTracer) ProcPark(at sim.Time, proc string) {
	t.r.Emit(LayerSim, EvPark, "", proc, "", 0, 0, 0)
}
func (t simTracer) ProcUnpark(at sim.Time, proc string) {
	t.r.Emit(LayerSim, EvUnpark, "", proc, "", 0, 0, 0)
}

// SimTracer returns a sim.Tracer feeding the recorder, or nil when the
// sim layer is masked off (so the scheduler keeps its zero-cost path).
func (r *Recorder) SimTracer() sim.Tracer {
	if !r.On(LayerSim) {
		return nil
	}
	return simTracer{r}
}
