package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/wire"
)

func testRecorder(layers ...Layer) *Recorder {
	return New(sim.New(1), layers...)
}

func TestLayerMask(t *testing.T) {
	r := testRecorder(LayerNet, LayerStack)
	for _, c := range []struct {
		l    Layer
		want bool
	}{
		{LayerSim, false}, {LayerNet, true}, {LayerFilter, false},
		{LayerStack, true}, {LayerCore, false},
	} {
		if got := r.On(c.l); got != c.want {
			t.Errorf("On(%v) = %v, want %v", c.l, got, c.want)
		}
	}
	if all := testRecorder(); all.Mask() != AllLayers {
		t.Errorf("no layers should mean all layers, got mask %b", all.Mask())
	}
	var nilRec *Recorder
	if nilRec.On(LayerNet) || nilRec.Mask() != 0 || nilRec.Len() != 0 {
		t.Error("nil recorder must be fully disabled")
	}
}

func TestParseLayer(t *testing.T) {
	for _, name := range []string{"sim", "net", "filter", "stack", "core"} {
		l, err := ParseLayer(name)
		if err != nil {
			t.Fatal(err)
		}
		if l.String() != name {
			t.Errorf("ParseLayer(%q).String() = %q", name, l.String())
		}
	}
	if _, err := ParseLayer("bogus"); err == nil {
		t.Error("ParseLayer should reject unknown names")
	}
}

func TestEmitAndLimit(t *testing.T) {
	r := testRecorder(LayerCore)
	r.SetLimit(2)
	for i := 0; i < 5; i++ {
		r.Emit(LayerCore, EvSession, "h", "tcp", "new", int64(i), 0, 0)
	}
	if r.Len() != 2 || r.Dropped() != 3 {
		t.Fatalf("limit: got %d records, %d dropped", r.Len(), r.Dropped())
	}
	recs := r.Records()
	if recs[0].Seq != 1 || recs[1].Seq != 2 {
		t.Errorf("Seq not monotonic from 1: %d, %d", recs[0].Seq, recs[1].Seq)
	}
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Error("Reset should clear records and drop count")
	}
}

func TestEmitFrameCopies(t *testing.T) {
	r := testRecorder(LayerNet)
	frame := []byte{1, 2, 3, 4}
	r.EmitFrame(EvFrameTx, "h", "", frame, 42)
	frame[0] = 0xff // later in-place corruption must not reach the trace
	rec := r.Records()[0]
	if rec.Frame[0] != 1 {
		t.Error("EmitFrame must copy the frame bytes")
	}
	if rec.Arg0 != 4 || rec.Arg1 != 42 {
		t.Errorf("frame sizes: got len=%d wire=%d", rec.Arg0, rec.Arg1)
	}
}

func TestEventLayerTaxonomy(t *testing.T) {
	// Every event names exactly one layer and has a distinct name; Want
	// relies on the former to omit Layer, text output on the latter.
	seen := map[string]Event{}
	for e := Event(0); e < numEvents; e++ {
		name := e.String()
		if name == "" || strings.HasPrefix(name, "event(") {
			t.Errorf("event %d has no name", e)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("events %d and %d share the name %q", prev, e, name)
		}
		seen[name] = e
		if LayerOf(e) >= numLayers {
			t.Errorf("event %v maps to no layer", e)
		}
	}
}

func TestExpectSubsequence(t *testing.T) {
	r := testRecorder(LayerCore, LayerStack)
	r.Emit(LayerCore, EvSession, "alpha", "tcp", "new", 1, 0, 0)
	r.Emit(LayerStack, EvTCPState, "alpha.os-server", "10.0.0.1:1>10.0.0.2:2", "CLOSED -> SYN_SENT", 0, 0, 0)
	r.Emit(LayerStack, EvTCPState, "beta.os-server", "10.0.0.2:2>10.0.0.1:1", "CLOSED -> SYN_RCVD", 0, 0, 0)
	r.Emit(LayerCore, EvConnTeardown, "alpha", "10.0.0.1:1", "", 1, 0, 0)
	recs := r.Records()

	if err := Expect(recs,
		Want{Event: EvSession, Host: "alpha"},
		Want{Event: EvTCPState, Host: "alpha", Contains: "SYN_SENT"},
		Want{Event: EvTCPState, Host: "beta", Contains: "SYN_RCVD"},
		Want{Event: EvConnTeardown},
	); err != nil {
		t.Fatalf("matching subsequence rejected: %v", err)
	}
	// Out of order: SYN_RCVD before SYN_SENT must fail.
	if err := Expect(recs,
		Want{Event: EvTCPState, Contains: "SYN_RCVD"},
		Want{Event: EvTCPState, Contains: "SYN_SENT"},
	); err == nil {
		t.Fatal("out-of-order wants should not match")
	}
	// Host is a prefix match on the component name.
	if n := Count(recs, Want{Event: EvTCPState, Host: "alpha"}); n != 1 {
		t.Errorf("host prefix count = %d, want 1", n)
	}
	if got := Find(recs, Want{Event: EvTCPState, Host: "alpha.os-server"}); len(got) != 1 {
		t.Errorf("Find by full host = %d records, want 1", len(got))
	}
}

// buildEthFrame marshals a tiny valid ARP frame for pcap tests.
func buildEthFrame(fill byte) []byte {
	p := wire.ARPPacket{
		Op:        wire.ARPRequest,
		SenderMAC: wire.MAC{fill, 1, 2, 3, 4, 5},
		SenderIP:  wire.IP(10, 0, 0, fill),
		TargetIP:  wire.IP(10, 0, 0, 99),
	}
	eh := wire.EthHeader{
		Dst: wire.BroadcastMAC, Src: p.SenderMAC, Type: wire.EtherTypeARP,
	}
	body := p.Marshal()
	frame := make([]byte, wire.EthHeaderLen+len(body))
	eh.Marshal(frame)
	copy(frame[wire.EthHeaderLen:], body)
	return frame
}

func TestPcapRoundTripSynthetic(t *testing.T) {
	s := sim.New(1)
	r := New(s, LayerNet)
	var frames [][]byte
	for i := 0; i < 3; i++ {
		f := buildEthFrame(byte(i + 1))
		frames = append(frames, f)
		r.EmitFrame(EvFrameTx, "h", "", f, int64(len(f)+8))
		// Non-frame records must not land in the pcap.
		r.Emit(LayerNet, EvFrameRx, "peer", "h", "", int64(len(f)), 0, 0)
	}

	var buf bytes.Buffer
	if err := r.WritePcap(&buf); err != nil {
		t.Fatal(err)
	}
	pkts, err := ReadPcap(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != len(frames) {
		t.Fatalf("got %d packets, want %d", len(pkts), len(frames))
	}
	for i, pkt := range pkts {
		if !bytes.Equal(pkt.Data, frames[i]) {
			t.Errorf("packet %d bytes differ", i)
		}
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	r := testRecorder(LayerNet, LayerStack)
	r.EmitFrame(EvFrameTx, "alpha", "", buildEthFrame(1), 50)
	r.Emit(LayerStack, EvTCPState, "alpha.os-server", "c", "CLOSED -> SYN_SENT", 0, 0, 0)
	r.Emit(LayerStack, EvTCPCwnd, "alpha.os-server", "c", "", 1460, 65535, 0)

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var instants, counters, meta int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "i":
			instants++
		case "C":
			counters++
		case "M":
			meta++
		}
	}
	if instants != 3 || counters != 1 || meta == 0 {
		t.Errorf("event mix: %d instants, %d counters, %d metadata", instants, counters, meta)
	}
}

// TestDisabledRecorderAllocs is the zero-cost-when-disabled guarantee:
// the On guard plus the skipped Emit must not allocate, whether the
// recorder is nil or merely has the layer switched off.
func TestDisabledRecorderAllocs(t *testing.T) {
	frame := buildEthFrame(1)
	probe := func(r *Recorder) func() {
		return func() {
			if r.On(LayerNet) {
				r.EmitFrame(EvFrameTx, "h", "", frame, 50)
			}
			if r.On(LayerStack) {
				r.Emit(LayerStack, EvTCPState, "h", "c", "x -> y", 0, 0, 0)
			}
			if r.On(LayerCore) {
				r.Emit(LayerCore, EvSession, "h", "tcp", "new", 1, 0, 0)
			}
		}
	}
	if n := testing.AllocsPerRun(1000, probe(nil)); n != 0 {
		t.Errorf("nil recorder: %.1f allocs per event site pass, want 0", n)
	}
	onlySim := testRecorder(LayerSim)
	if n := testing.AllocsPerRun(1000, probe(onlySim)); n != 0 {
		t.Errorf("off-layer recorder: %.1f allocs per event site pass, want 0", n)
	}
}

func TestTextOutputDeterministic(t *testing.T) {
	render := func() string {
		r := testRecorder(LayerNet, LayerCore)
		r.EmitFrame(EvFrameTx, "alpha", "", buildEthFrame(7), 50)
		r.Emit(LayerCore, EvPortOp, "beta", "tcp", "bind", 80, 1, 0)
		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Error("text rendering differs across identical recorders")
	}
	if !strings.Contains(a, "ARP who-has") || !strings.Contains(a, "port bind tcp/80") {
		t.Errorf("unexpected text rendering:\n%s", a)
	}
}
