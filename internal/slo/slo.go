// Package slo evaluates service-level-objective assertions over the
// deterministic metrics registry. A Suite is a named list of checks —
// quantile bounds on latency histograms, ceilings on drop counters,
// conservation laws over state gauges — and evaluating it against a
// registry yields a pass/fail verdict per check. Scenario tests and CI
// gates are built from these verdicts: because the simulation is
// deterministic, an SLO that passes once passes forever, and a failure
// is a reproducible counterexample rather than flake.
package slo

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/metrics"
)

// Context carries what checks evaluate against: a snapshot for counter
// and gauge sums, plus the live registry for cross-host histogram
// merges (quantiles cannot be recovered from rendered views).
type Context struct {
	Reg  *metrics.Registry
	Snap metrics.Snapshot
}

// NewContext snapshots the registry at virtual time `at`.
func NewContext(reg *metrics.Registry, at time.Duration) *Context {
	return &Context{Reg: reg, Snap: reg.Snapshot(at)}
}

// Check is one named assertion.
type Check struct {
	Name string
	Eval func(*Context) (ok bool, detail string)
}

// Result is one evaluated assertion.
type Result struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail"`
}

func (r Result) String() string {
	verdict := "PASS"
	if !r.OK {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%s %-28s %s", verdict, r.Name, r.Detail)
}

// Suite is an ordered list of checks; evaluation order is declaration
// order, so reports are byte-stable.
type Suite struct {
	Checks []Check
}

// Add appends a custom check and returns the suite for chaining.
func (s *Suite) Add(c Check) *Suite {
	s.Checks = append(s.Checks, c)
	return s
}

// Eval runs every check against the context.
func (s *Suite) Eval(ctx *Context) []Result {
	out := make([]Result, 0, len(s.Checks))
	for _, c := range s.Checks {
		ok, detail := c.Eval(ctx)
		out = append(out, Result{Name: c.Name, OK: ok, Detail: detail})
	}
	return out
}

// Passed reports whether every result passed.
func Passed(rs []Result) bool {
	for _, r := range rs {
		if !r.OK {
			return false
		}
	}
	return true
}

// Failures returns the failing subset, in order.
func Failures(rs []Result) []Result {
	var out []Result
	for _, r := range rs {
		if !r.OK {
			out = append(out, r)
		}
	}
	return out
}

// Report renders results one per line.
func Report(rs []Result) string {
	var b strings.Builder
	for _, r := range rs {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// QuantileAtMost asserts that quantile q of every histogram whose name
// ends in suffix — merged across hosts — is at most bound. The check
// fails when no histogram recorded a sample: an SLO over an idle metric
// is a misconfigured scenario, not a pass.
func QuantileAtMost(name, suffix string, q float64, bound time.Duration) Check {
	return Check{Name: name, Eval: func(ctx *Context) (bool, string) {
		h := ctx.Reg.MergedHistogram(suffix)
		n := h.Count()
		if n == 0 {
			return false, fmt.Sprintf("no samples under *%s", suffix)
		}
		v := time.Duration(h.Quantile(q))
		return v <= bound, fmt.Sprintf("p%g(*%s) = %v (bound %v, n=%d)", q*100, suffix, v, bound, n)
	}}
}

// SumAtMost asserts the sum over all instruments ending in suffix is at
// most max (drop ceilings, error budgets).
func SumAtMost(name, suffix string, max int64) Check {
	return Check{Name: name, Eval: func(ctx *Context) (bool, string) {
		v := ctx.Snap.Sum(suffix)
		return v <= max, fmt.Sprintf("sum(*%s) = %d (max %d)", suffix, v, max)
	}}
}

// SumAtLeast asserts the sum over all instruments ending in suffix is
// at least min (the scenario actually did work).
func SumAtLeast(name, suffix string, min int64) Check {
	return Check{Name: name, Eval: func(ctx *Context) (bool, string) {
		v := ctx.Snap.Sum(suffix)
		return v >= min, fmt.Sprintf("sum(*%s) = %d (min %d)", suffix, v, min)
	}}
}

// SumZero asserts the sum over all instruments ending in suffix is
// exactly zero — conservation laws over state gauges after drain.
func SumZero(name, suffix string) Check {
	return Check{Name: name, Eval: func(ctx *Context) (bool, string) {
		v := ctx.Snap.Sum(suffix)
		return v == 0, fmt.Sprintf("sum(*%s) = %d (want 0)", suffix, v)
	}}
}

// RatioAtMost asserts sum(num)/sum(den) <= max (bounded drop ratios).
// A zero denominator passes only if the numerator is also zero.
func RatioAtMost(name, numSuffix, denSuffix string, max float64) Check {
	return Check{Name: name, Eval: func(ctx *Context) (bool, string) {
		num := ctx.Snap.Sum(numSuffix)
		den := ctx.Snap.Sum(denSuffix)
		if den == 0 {
			return num == 0, fmt.Sprintf("sum(*%s) = %d with sum(*%s) = 0", numSuffix, num, denSuffix)
		}
		ratio := float64(num) / float64(den)
		return ratio <= max, fmt.Sprintf("sum(*%s)/sum(*%s) = %d/%d = %.4f (max %.4f)",
			numSuffix, denSuffix, num, den, ratio, max)
	}}
}

// Expr wraps an arbitrary predicate as a check.
func Expr(name string, eval func(*Context) (bool, string)) Check {
	return Check{Name: name, Eval: eval}
}
