package slo

import (
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

func testRegistry() *metrics.Registry {
	reg := metrics.NewRegistry()
	a := reg.Scope("host.a.stack")
	b := reg.Scope("host.b.stack")
	ha := a.Histogram("rtt_ns")
	hb := b.Histogram("rtt_ns")
	for i := 0; i < 99; i++ {
		ha.Observe(int64(time.Millisecond))
		hb.Observe(int64(2 * time.Millisecond))
	}
	ha.Observe(int64(80 * time.Millisecond)) // tail outlier

	sent := a.NewCounter("frames_sent")
	sent.Add(1000)
	drops := a.NewCounter("drops")
	drops.Add(5)
	var tw metrics.Gauge
	a.GaugeVar("tcp_state.time_wait", &tw)
	return reg
}

func TestQuantileAtMost(t *testing.T) {
	reg := testRegistry()
	ctx := NewContext(reg, time.Second)

	// p50 across both hosts is ~1-2ms; generous bound passes.
	if ok, d := QuantileAtMost("p50-rtt", ".rtt_ns", 0.50, 10*time.Millisecond).Eval(ctx); !ok {
		t.Fatalf("p50 should pass: %s", d)
	}
	// p999 catches the 80ms outlier against a 10ms bound.
	if ok, d := QuantileAtMost("p999-rtt", ".rtt_ns", 0.999, 10*time.Millisecond).Eval(ctx); ok {
		t.Fatalf("p999 should fail on the outlier: %s", d)
	}
	// An SLO over a metric with no samples is a failure, not a pass.
	if ok, _ := QuantileAtMost("idle", ".connect_ns", 0.99, time.Second).Eval(ctx); ok {
		t.Fatal("quantile over empty histogram should fail")
	}
}

func TestSumsAndRatios(t *testing.T) {
	reg := testRegistry()
	ctx := NewContext(reg, time.Second)

	cases := []struct {
		c    Check
		want bool
	}{
		{SumAtMost("drops-bounded", ".drops", 10), true},
		{SumAtMost("drops-tight", ".drops", 4), false},
		{SumAtLeast("did-work", ".frames_sent", 1000), true},
		{SumAtLeast("did-more-work", ".frames_sent", 1001), false},
		{SumZero("no-time-wait", ".tcp_state.time_wait"), true},
		{RatioAtMost("drop-ratio", ".drops", ".frames_sent", 0.01), true},
		{RatioAtMost("drop-ratio-tight", ".drops", ".frames_sent", 0.001), false},
		{RatioAtMost("zero-den", ".drops", ".no_such", 0.5), false},
	}
	for _, tc := range cases {
		ok, detail := tc.c.Eval(ctx)
		if ok != tc.want {
			t.Errorf("%s: got %v (%s), want %v", tc.c.Name, ok, detail, tc.want)
		}
	}
}

func TestSuiteEvalAndReport(t *testing.T) {
	reg := testRegistry()
	ctx := NewContext(reg, time.Second)

	var s Suite
	s.Add(SumAtLeast("did-work", ".frames_sent", 1)).
		Add(SumAtMost("drops-tight", ".drops", 0)).
		Add(Expr("custom", func(c *Context) (bool, string) { return true, "always" }))

	rs := s.Eval(ctx)
	if len(rs) != 3 {
		t.Fatalf("got %d results", len(rs))
	}
	if Passed(rs) {
		t.Fatal("suite should fail on drops-tight")
	}
	f := Failures(rs)
	if len(f) != 1 || f[0].Name != "drops-tight" {
		t.Fatalf("failures = %v", f)
	}
	rep := Report(rs)
	if !strings.Contains(rep, "PASS did-work") || !strings.Contains(rep, "FAIL drops-tight") {
		t.Fatalf("report:\n%s", rep)
	}
	// Byte-stable across identical evaluations.
	if rep != Report(s.Eval(NewContext(reg, time.Second))) {
		t.Fatal("report not deterministic")
	}
}
