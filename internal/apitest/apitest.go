// Package apitest is a conformance suite for socketapi.API
// implementations. The paper's compatibility goal — existing socket
// clients work unchanged whether protocols run in the kernel, in a
// server, or in application libraries — translates here to one test
// suite that every implementation must pass.
package apitest

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/socketapi"
	"repro/internal/wire"
)

// Env is a two-host world with an API factory per host.
type Env struct {
	Sim      *sim.Sim
	NewA     func(name string) socketapi.API // host A (10.0.0.1)
	NewB     func(name string) socketapi.API // host B (10.0.0.2)
	IPA, IPB wire.IPAddr
}

// Builder constructs a fresh Env for one subtest.
type Builder func(t *testing.T, seed int64) *Env

// RunAll runs the whole conformance suite against the implementation.
func RunAll(t *testing.T, build Builder) {
	tests := []struct {
		name string
		fn   func(t *testing.T, e *Env)
	}{
		{"UDPEcho", testUDPEcho},
		{"UDPUnconnectedMultiPeer", testUDPUnconnectedMultiPeer},
		{"TCPTransfer", testTCPTransfer},
		{"TCPEcho", testTCPEcho},
		{"TCPConnectRefused", testTCPConnectRefused},
		{"TCPShutdownWrite", testTCPShutdownWrite},
		{"SockNames", testSockNames},
		{"SockOptions", testSockOptions},
		{"SelectReadable", testSelectReadable},
		{"SelectTimeout", testSelectTimeout},
		{"ForkSharesSessions", testForkSharesSessions},
		{"BadFD", testBadFD},
		{"AcceptMultiple", testAcceptMultiple},
		{"BindConflict", testBindConflict},
	}
	tests = append(tests, moreTests...)
	tests = append(tests, chainTests...)
	for i, tc := range tests {
		tc := tc
		seed := int64(i + 1)
		t.Run(tc.name, func(t *testing.T) {
			e := build(t, seed)
			e.Sim.Deadline = sim.Time(30 * time.Minute)
			tc.fn(t, e)
			if err := e.Sim.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func testUDPEcho(t *testing.T, e *Env) {
	srv := e.NewB("udpserver")
	cli := e.NewA("udpclient")
	e.Sim.Spawn("server", func(p *sim.Proc) {
		fd, err := srv.Socket(p, socketapi.SockDgram)
		if err != nil {
			t.Error(err)
			return
		}
		if err := srv.Bind(p, fd, socketapi.SockAddr{Port: 7}); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 1500)
		n, from, err := srv.RecvFrom(p, fd, buf, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := srv.SendTo(p, fd, buf[:n], 0, from); err != nil {
			t.Error(err)
		}
	})
	e.Sim.Spawn("client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		fd, _ := cli.Socket(p, socketapi.SockDgram)
		msg := []byte("echo me")
		if _, err := cli.SendTo(p, fd, msg, 0, socketapi.SockAddr{Addr: e.IPB, Port: 7}); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 1500)
		n, from, err := cli.RecvFrom(p, fd, buf, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(buf[:n], msg) {
			t.Errorf("echo = %q", buf[:n])
		}
		if from.Addr != e.IPB || from.Port != 7 {
			t.Errorf("echo source = %v", from)
		}
		cli.Close(p, fd)
	})
}

func testUDPUnconnectedMultiPeer(t *testing.T, e *Env) {
	srv := e.NewB("collector")
	e.Sim.Spawn("collector", func(p *sim.Proc) {
		fd, _ := srv.Socket(p, socketapi.SockDgram)
		if err := srv.Bind(p, fd, socketapi.SockAddr{Port: 514}); err != nil {
			t.Error(err)
			return
		}
		seen := map[string]bool{}
		buf := make([]byte, 100)
		for i := 0; i < 2; i++ {
			n, _, err := srv.RecvFrom(p, fd, buf, 0)
			if err != nil {
				t.Error(err)
				return
			}
			seen[string(buf[:n])] = true
		}
		if !seen["from-1"] || !seen["from-2"] {
			t.Errorf("seen = %v", seen)
		}
	})
	for i := 1; i <= 2; i++ {
		i := i
		cli := e.NewA("sender")
		e.Sim.Spawn("sender", func(p *sim.Proc) {
			p.Sleep(time.Duration(i) * time.Millisecond)
			fd, _ := cli.Socket(p, socketapi.SockDgram)
			msg := []byte{'f', 'r', 'o', 'm', '-', byte('0' + i)}
			if _, err := cli.SendTo(p, fd, msg, 0, socketapi.SockAddr{Addr: e.IPB, Port: 514}); err != nil {
				t.Error(err)
			}
		})
	}
}

func testTCPTransfer(t *testing.T, e *Env) {
	const total = 128 * 1024
	payload := make([]byte, total)
	e.Sim.Rand().Read(payload)
	var got bytes.Buffer
	srv := e.NewB("sink")
	cli := e.NewA("source")
	e.Sim.Spawn("sink", func(p *sim.Proc) {
		ls, _ := srv.Socket(p, socketapi.SockStream)
		if err := srv.Bind(p, ls, socketapi.SockAddr{Port: 5001}); err != nil {
			t.Error(err)
			return
		}
		if err := srv.Listen(p, ls, 5); err != nil {
			t.Error(err)
			return
		}
		fd, peer, err := srv.Accept(p, ls)
		if err != nil {
			t.Error(err)
			return
		}
		if peer.Addr != e.IPA {
			t.Errorf("peer = %v", peer)
		}
		buf := make([]byte, 8192)
		for {
			n, err := srv.Recv(p, fd, buf, 0)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			if n == 0 {
				break
			}
			got.Write(buf[:n])
		}
		srv.Close(p, fd)
		srv.Close(p, ls)
	})
	e.Sim.Spawn("source", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		fd, _ := cli.Socket(p, socketapi.SockStream)
		if err := cli.Connect(p, fd, socketapi.SockAddr{Addr: e.IPB, Port: 5001}); err != nil {
			t.Error(err)
			return
		}
		for off := 0; off < total; {
			n := 8192
			if off+n > total {
				n = total - off
			}
			w, err := cli.Send(p, fd, payload[off:off+n], 0)
			if err != nil {
				t.Errorf("send: %v", err)
				return
			}
			off += w
		}
		cli.Close(p, fd)
	})
	e.Sim.Spawn("check", func(p *sim.Proc) {
		// Runs last (after both exit) because spawn order is FIFO at each
		// instant and the others block; simplest is to poll.
		for got.Len() < total {
			p.Sleep(10 * time.Millisecond)
			if p.Now() > sim.Time(20*time.Minute) {
				t.Errorf("transfer stalled at %d/%d", got.Len(), total)
				return
			}
		}
		if !bytes.Equal(got.Bytes(), payload) {
			t.Error("stream corrupted")
		}
	})
}

func testTCPEcho(t *testing.T, e *Env) {
	srv := e.NewB("echod")
	cli := e.NewA("client")
	e.Sim.Spawn("echod", func(p *sim.Proc) {
		ls, _ := srv.Socket(p, socketapi.SockStream)
		srv.Bind(p, ls, socketapi.SockAddr{Port: 7})
		srv.Listen(p, ls, 1)
		fd, _, err := srv.Accept(p, ls)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 4096)
		for {
			n, err := srv.Recv(p, fd, buf, 0)
			if err != nil || n == 0 {
				break
			}
			srv.Send(p, fd, buf[:n], 0)
		}
		srv.Close(p, fd)
		srv.Close(p, ls)
	})
	e.Sim.Spawn("client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		fd, _ := cli.Socket(p, socketapi.SockStream)
		if err := cli.Connect(p, fd, socketapi.SockAddr{Addr: e.IPB, Port: 7}); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 5; i++ {
			msg := bytes.Repeat([]byte{byte('a' + i)}, 100*(i+1))
			if _, err := cli.Send(p, fd, msg, 0); err != nil {
				t.Error(err)
				return
			}
			buf := make([]byte, len(msg))
			off := 0
			for off < len(msg) {
				n, err := cli.Recv(p, fd, buf[off:], 0)
				if err != nil || n == 0 {
					t.Errorf("echo read: n=%d err=%v", n, err)
					return
				}
				off += n
			}
			if !bytes.Equal(buf, msg) {
				t.Errorf("round %d corrupted", i)
				return
			}
		}
		cli.Close(p, fd)
	})
}

func testTCPConnectRefused(t *testing.T, e *Env) {
	cli := e.NewA("client")
	e.Sim.Spawn("client", func(p *sim.Proc) {
		fd, _ := cli.Socket(p, socketapi.SockStream)
		err := cli.Connect(p, fd, socketapi.SockAddr{Addr: e.IPB, Port: 9999})
		if !errors.Is(err, socketapi.ErrConnRefused) {
			t.Errorf("connect = %v, want ECONNREFUSED", err)
		}
	})
}

func testTCPShutdownWrite(t *testing.T, e *Env) {
	srv := e.NewB("server")
	cli := e.NewA("client")
	e.Sim.Spawn("server", func(p *sim.Proc) {
		ls, _ := srv.Socket(p, socketapi.SockStream)
		srv.Bind(p, ls, socketapi.SockAddr{Port: 5001})
		srv.Listen(p, ls, 1)
		fd, _, err := srv.Accept(p, ls)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 100)
		n, _ := srv.Recv(p, fd, buf, 0)
		if string(buf[:n]) != "half" {
			t.Errorf("got %q", buf[:n])
		}
		// EOF after the client's write shutdown.
		if n, _ := srv.Recv(p, fd, buf, 0); n != 0 {
			t.Errorf("expected EOF, got %d bytes", n)
		}
		// Server can still send the other way.
		srv.Send(p, fd, []byte("reply"), 0)
		srv.Close(p, fd)
		srv.Close(p, ls)
	})
	e.Sim.Spawn("client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		fd, _ := cli.Socket(p, socketapi.SockStream)
		if err := cli.Connect(p, fd, socketapi.SockAddr{Addr: e.IPB, Port: 5001}); err != nil {
			t.Error(err)
			return
		}
		cli.Send(p, fd, []byte("half"), 0)
		if err := cli.Shutdown(p, fd, socketapi.ShutWr); err != nil {
			t.Error(err)
			return
		}
		if _, err := cli.Send(p, fd, []byte("more"), 0); err == nil {
			t.Error("send after shutdown succeeded")
		}
		buf := make([]byte, 100)
		n, err := cli.Recv(p, fd, buf, 0)
		if err != nil || string(buf[:n]) != "reply" {
			t.Errorf("reply: %q err=%v", buf[:n], err)
		}
		cli.Close(p, fd)
	})
}

func testSockNames(t *testing.T, e *Env) {
	srv := e.NewB("server")
	cli := e.NewA("client")
	e.Sim.Spawn("server", func(p *sim.Proc) {
		ls, _ := srv.Socket(p, socketapi.SockStream)
		srv.Bind(p, ls, socketapi.SockAddr{Port: 5001})
		srv.Listen(p, ls, 1)
		fd, _, err := srv.Accept(p, ls)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 10)
		srv.Recv(p, fd, buf, 0)
		srv.Close(p, fd)
		srv.Close(p, ls)
	})
	e.Sim.Spawn("client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		fd, _ := cli.Socket(p, socketapi.SockStream)
		if _, err := cli.GetPeerName(p, fd); !errors.Is(err, socketapi.ErrNotConn) {
			t.Errorf("GetPeerName unconnected = %v", err)
		}
		if err := cli.Connect(p, fd, socketapi.SockAddr{Addr: e.IPB, Port: 5001}); err != nil {
			t.Error(err)
			return
		}
		local, err := cli.GetSockName(p, fd)
		if err != nil || local.Addr != e.IPA || local.Port == 0 {
			t.Errorf("GetSockName = %v, %v", local, err)
		}
		peer, err := cli.GetPeerName(p, fd)
		if err != nil || peer.Addr != e.IPB || peer.Port != 5001 {
			t.Errorf("GetPeerName = %v, %v", peer, err)
		}
		cli.Send(p, fd, []byte("x"), 0)
		cli.Close(p, fd)
	})
}

func testSockOptions(t *testing.T, e *Env) {
	api := e.NewA("opt")
	e.Sim.Spawn("opt", func(p *sim.Proc) {
		fd, _ := api.Socket(p, socketapi.SockStream)
		if err := api.SetSockOpt(p, fd, socketapi.SoRcvBuf, 65536); err != nil {
			t.Error(err)
		}
		if v, err := api.GetSockOpt(p, fd, socketapi.SoRcvBuf); err != nil || v != 65536 {
			t.Errorf("rcvbuf = %d, %v", v, err)
		}
		if err := api.SetSockOpt(p, fd, socketapi.TCPNoDelay, 1); err != nil {
			t.Error(err)
		}
		if v, _ := api.GetSockOpt(p, fd, socketapi.TCPNoDelay); v != 1 {
			t.Errorf("nodelay = %d", v)
		}
		if err := api.SetSockOpt(p, fd, socketapi.SoRcvBuf, -1); err == nil {
			t.Error("negative buffer accepted")
		}
		api.Close(p, fd)
	})
}

func testSelectReadable(t *testing.T, e *Env) {
	srv := e.NewB("selserver")
	cli := e.NewA("selclient")
	e.Sim.Spawn("selserver", func(p *sim.Proc) {
		fd, _ := srv.Socket(p, socketapi.SockDgram)
		srv.Bind(p, fd, socketapi.SockAddr{Port: 1234})
		r, _, err := srv.Select(p, socketapi.NewFDSet(fd), nil, -1)
		if err != nil {
			t.Error(err)
			return
		}
		if !r[fd] {
			t.Error("select returned without fd readable")
		}
		buf := make([]byte, 100)
		n, _, _ := srv.RecvFrom(p, fd, buf, 0)
		if string(buf[:n]) != "sel" {
			t.Errorf("got %q", buf[:n])
		}
	})
	e.Sim.Spawn("selclient", func(p *sim.Proc) {
		p.Sleep(50 * time.Millisecond)
		fd, _ := cli.Socket(p, socketapi.SockDgram)
		cli.SendTo(p, fd, []byte("sel"), 0, socketapi.SockAddr{Addr: e.IPB, Port: 1234})
	})
}

func testSelectTimeout(t *testing.T, e *Env) {
	api := e.NewA("seltimeout")
	e.Sim.Spawn("seltimeout", func(p *sim.Proc) {
		fd, _ := api.Socket(p, socketapi.SockDgram)
		api.Bind(p, fd, socketapi.SockAddr{Port: 999})
		start := p.Now()
		r, w, err := api.Select(p, socketapi.NewFDSet(fd), nil, 20*time.Millisecond)
		if err != nil {
			t.Error(err)
			return
		}
		if len(r) != 0 || len(w) != 0 {
			t.Error("nothing should be ready")
		}
		if got := p.Now().Sub(start); got < 20*time.Millisecond {
			t.Errorf("returned after %v, want >= 20ms", got)
		}
	})
}

func testForkSharesSessions(t *testing.T, e *Env) {
	srv := e.NewB("forkserver")
	parent := e.NewA("parent")
	e.Sim.Spawn("forkserver", func(p *sim.Proc) {
		ls, _ := srv.Socket(p, socketapi.SockStream)
		srv.Bind(p, ls, socketapi.SockAddr{Port: 5001})
		srv.Listen(p, ls, 1)
		fd, _, err := srv.Accept(p, ls)
		if err != nil {
			t.Error(err)
			return
		}
		// Expect data written by parent and child over the same session.
		var got bytes.Buffer
		buf := make([]byte, 100)
		for {
			n, err := srv.Recv(p, fd, buf, 0)
			if err != nil || n == 0 {
				break
			}
			got.Write(buf[:n])
		}
		s := got.String()
		if !bytes.Contains([]byte(s), []byte("parent")) || !bytes.Contains([]byte(s), []byte("child")) {
			t.Errorf("stream = %q, want writes from both processes", s)
		}
		srv.Close(p, fd)
		srv.Close(p, ls)
	})
	e.Sim.Spawn("parent", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		fd, _ := parent.Socket(p, socketapi.SockStream)
		if err := parent.Connect(p, fd, socketapi.SockAddr{Addr: e.IPB, Port: 5001}); err != nil {
			t.Error(err)
			return
		}
		child, err := parent.Fork(p, "child")
		if err != nil {
			t.Errorf("fork: %v", err)
			return
		}
		if _, err := parent.Send(p, fd, []byte("parent"), 0); err != nil {
			t.Errorf("parent send: %v", err)
		}
		done := make(chan struct{})
		_ = done
		e.Sim.Spawn("child", func(cp *sim.Proc) {
			if _, err := child.Send(cp, fd, []byte("child"), 0); err != nil {
				t.Errorf("child send: %v", err)
			}
			// Child closes its copy; session must stay open for parent.
			child.Close(cp, fd)
			child.ExitProcess(cp)
		})
		p.Sleep(100 * time.Millisecond)
		parent.Close(p, fd)
	})
}

func testBadFD(t *testing.T, e *Env) {
	api := e.NewA("badfd")
	e.Sim.Spawn("badfd", func(p *sim.Proc) {
		if _, err := api.Send(p, 77, []byte("x"), 0); !errors.Is(err, socketapi.ErrBadFD) {
			t.Errorf("send on bad fd = %v", err)
		}
		if err := api.Close(p, 77); !errors.Is(err, socketapi.ErrBadFD) {
			t.Errorf("close on bad fd = %v", err)
		}
		fd, _ := api.Socket(p, socketapi.SockDgram)
		api.Close(p, fd)
		if _, err := api.Send(p, fd, []byte("x"), 0); !errors.Is(err, socketapi.ErrBadFD) {
			t.Errorf("send on closed fd = %v", err)
		}
	})
}

func testAcceptMultiple(t *testing.T, e *Env) {
	srv := e.NewB("multiserver")
	const clients = 3
	e.Sim.Spawn("multiserver", func(p *sim.Proc) {
		ls, _ := srv.Socket(p, socketapi.SockStream)
		srv.Bind(p, ls, socketapi.SockAddr{Port: 5001})
		srv.Listen(p, ls, clients)
		for i := 0; i < clients; i++ {
			fd, _, err := srv.Accept(p, ls)
			if err != nil {
				t.Error(err)
				return
			}
			buf := make([]byte, 10)
			n, err := srv.Recv(p, fd, buf, 0)
			if err != nil || n == 0 {
				t.Errorf("conn %d: n=%d err=%v", i, n, err)
			}
			srv.Close(p, fd)
		}
		srv.Close(p, ls)
	})
	for i := 0; i < clients; i++ {
		i := i
		cli := e.NewA("multiclient")
		e.Sim.Spawn("multiclient", func(p *sim.Proc) {
			p.Sleep(time.Duration(i+1) * 10 * time.Millisecond)
			fd, _ := cli.Socket(p, socketapi.SockStream)
			if err := cli.Connect(p, fd, socketapi.SockAddr{Addr: e.IPB, Port: 5001}); err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			cli.Send(p, fd, []byte("hi"), 0)
			cli.Close(p, fd)
		})
	}
}

func testBindConflict(t *testing.T, e *Env) {
	a1 := e.NewA("bind1")
	a2 := e.NewA("bind2")
	e.Sim.Spawn("binds", func(p *sim.Proc) {
		fd1, _ := a1.Socket(p, socketapi.SockDgram)
		if err := a1.Bind(p, fd1, socketapi.SockAddr{Port: 4444}); err != nil {
			t.Error(err)
			return
		}
		fd2, _ := a2.Socket(p, socketapi.SockDgram)
		if err := a2.Bind(p, fd2, socketapi.SockAddr{Port: 4444}); !errors.Is(err, socketapi.ErrAddrInUse) {
			t.Errorf("conflicting bind = %v, want EADDRINUSE", err)
		}
		a1.Close(p, fd1)
		// Port must be reusable after close.
		fd3, _ := a2.Socket(p, socketapi.SockDgram)
		if err := a2.Bind(p, fd3, socketapi.SockAddr{Port: 4444}); err != nil {
			t.Errorf("bind after close = %v", err)
		}
	})
}
