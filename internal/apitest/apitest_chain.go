package apitest

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/socketapi"
)

// chainTests extends the conformance suite to the chain interface:
// scatter-gather send, selective-copy receive, and cross-socket splice
// must behave identically on every architecture, whatever each one's
// copy cost.
var chainTests = []struct {
	name string
	fn   func(t *testing.T, e *Env)
}{
	{"ChainEchoTCP", testChainEchoTCP},
	{"ChainSendUDP", testChainSendUDP},
	{"RecvPeekSelectiveRanges", testRecvPeekRanges},
	{"RecvPeekViewWriteIsolated", testRecvPeekViewWrite},
	{"SpliceEcho", testSpliceEcho},
	{"SpliceForward", testSpliceForward},
}

// chains returns the chain interface of an API, failing the test if the
// implementation lacks it (all three architectures must provide it).
func chains(t *testing.T, api socketapi.API) socketapi.ChainAPI {
	t.Helper()
	c, ok := api.(socketapi.ChainAPI)
	if !ok {
		t.Fatalf("%T does not implement socketapi.ChainAPI", api)
	}
	return c
}

// drainPeek reads exactly want bytes through RecvPeek/RecvRelease.
func drainPeek(t *testing.T, p *sim.Proc, api socketapi.API, fd, want int) []byte {
	t.Helper()
	ch := chains(t, api)
	var got []byte
	for len(got) < want {
		view, err := ch.RecvPeek(p, fd, want-len(got), nil)
		if err != nil {
			t.Errorf("RecvPeek: %v", err)
			return got
		}
		n := view.Chain.Len()
		if n == 0 {
			view.Chain.Release()
			return got // EOF
		}
		b := make([]byte, n)
		view.Chain.ReadAt(b, 0)
		got = append(got, b...)
		view.Chain.Release()
		if err := ch.RecvRelease(p, fd, n); err != nil {
			t.Errorf("RecvRelease: %v", err)
			return got
		}
	}
	return got
}

func testChainEchoTCP(t *testing.T, e *Env) {
	srv := e.NewB("chainecho")
	cli := e.NewA("chaincli")
	msg := bytes.Repeat([]byte("chain-echo-"), 300) // > one segment
	e.Sim.Spawn("server", func(p *sim.Proc) {
		fd, _ := srv.Socket(p, socketapi.SockStream)
		srv.Bind(p, fd, socketapi.SockAddr{Port: 700})
		srv.Listen(p, fd, 4)
		cfd, _, err := srv.Accept(p, fd)
		if err != nil {
			t.Error(err)
			return
		}
		sc := chains(t, srv)
		// Echo by reference: the peeked view is surrendered straight
		// back to SendChain without flattening.
		got := 0
		for got < len(msg) {
			view, err := sc.RecvPeek(p, cfd, len(msg)-got, nil)
			if err != nil {
				t.Error(err)
				return
			}
			n := view.Chain.Len()
			if n == 0 {
				break
			}
			if err := sc.RecvRelease(p, cfd, n); err != nil {
				t.Error(err)
				return
			}
			if _, err := sc.SendChain(p, cfd, view.Chain, 0); err != nil {
				t.Error(err)
				return
			}
			got += n
		}
		srv.Close(p, cfd)
		srv.Close(p, fd)
	})
	e.Sim.Spawn("client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		fd, _ := cli.Socket(p, socketapi.SockStream)
		if err := cli.Connect(p, fd, socketapi.SockAddr{Addr: e.IPB, Port: 700}); err != nil {
			t.Error(err)
			return
		}
		cc := chains(t, cli)
		// Gather from three aliased pieces: no flat staging buffer.
		c := mbuf.New()
		c.AppendAlias(msg[:1000])
		c.AppendAlias(msg[1000:2000])
		c.AppendAlias(msg[2000:])
		if n, err := cc.SendChain(p, fd, c, 0); err != nil || n != len(msg) {
			t.Errorf("SendChain = %d, %v", n, err)
			return
		}
		got := drainPeek(t, p, cli, fd, len(msg))
		if !bytes.Equal(got, msg) {
			t.Errorf("echo mismatch: %d bytes", len(got))
		}
		cli.Close(p, fd)
	})
}

func testChainSendUDP(t *testing.T, e *Env) {
	srv := e.NewB("chainudp")
	cli := e.NewA("chainudpcli")
	e.Sim.Spawn("server", func(p *sim.Proc) {
		fd, _ := srv.Socket(p, socketapi.SockDgram)
		srv.Bind(p, fd, socketapi.SockAddr{Port: 701})
		sc := chains(t, srv)
		view, err := sc.RecvPeek(p, fd, 0, nil)
		if err != nil {
			t.Error(err)
			return
		}
		b := make([]byte, view.Chain.Len())
		view.Chain.ReadAt(b, 0)
		if string(b) != "datagram-as-chain" {
			t.Errorf("got %q", b)
		}
		if view.From.Addr != e.IPA {
			t.Errorf("from = %v", view.From)
		}
		view.Chain.Release()
		// RecvRelease consumes the whole datagram regardless of n.
		if err := sc.RecvRelease(p, fd, 1); err != nil {
			t.Error(err)
		}
	})
	e.Sim.Spawn("client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		fd, _ := cli.Socket(p, socketapi.SockDgram)
		if err := cli.Connect(p, fd, socketapi.SockAddr{Addr: e.IPB, Port: 701}); err != nil {
			t.Error(err)
			return
		}
		cc := chains(t, cli)
		c := mbuf.FromBytesCopy([]byte("datagram-as-chain"))
		if n, err := cc.SendChain(p, fd, c, 0); err != nil || n != 17 {
			t.Errorf("SendChain = %d, %v", n, err)
		}
	})
}

func testRecvPeekRanges(t *testing.T, e *Env) {
	srv := e.NewB("ranges")
	cli := e.NewA("rangescli")
	// A framed message: 4-byte type, 4-byte length, payload.
	msg := append([]byte("TYPElen!"), bytes.Repeat([]byte("p"), 512)...)
	e.Sim.Spawn("server", func(p *sim.Proc) {
		fd, _ := srv.Socket(p, socketapi.SockStream)
		srv.Bind(p, fd, socketapi.SockAddr{Port: 702})
		srv.Listen(p, fd, 4)
		cfd, _, err := srv.Accept(p, fd)
		if err != nil {
			t.Error(err)
			return
		}
		sc := chains(t, srv)
		// Materialize only the two header fields; the payload stays a
		// chain view. Ranges beyond the view must clamp, not fail.
		ranges := []socketapi.Range{{Off: 0, Len: 4}, {Off: 4, Len: 4}, {Off: 100000, Len: 4}}
		var view socketapi.RecvView
		for {
			view, err = sc.RecvPeek(p, cfd, len(msg), ranges)
			if err != nil {
				t.Error(err)
				return
			}
			if view.Chain.Len() >= len(msg) {
				break
			}
			// Wait for the rest without consuming: release the view and
			// ask again after more data arrives.
			view.Chain.Release()
			p.Sleep(5 * time.Millisecond)
		}
		if string(view.Copied[0]) != "TYPE" || string(view.Copied[1]) != "len!" {
			t.Errorf("header ranges = %q %q", view.Copied[0], view.Copied[1])
		}
		if len(view.Copied[2]) != 0 {
			t.Errorf("out-of-view range not clamped: %d bytes", len(view.Copied[2]))
		}
		b := make([]byte, view.Chain.Len())
		view.Chain.ReadAt(b, 0)
		if !bytes.Equal(b, msg) {
			t.Error("view does not match message")
		}
		view.Chain.Release()
		sc.RecvRelease(p, cfd, len(msg))
		srv.Close(p, cfd)
		srv.Close(p, fd)
	})
	e.Sim.Spawn("client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		fd, _ := cli.Socket(p, socketapi.SockStream)
		if err := cli.Connect(p, fd, socketapi.SockAddr{Addr: e.IPB, Port: 702}); err != nil {
			t.Error(err)
			return
		}
		cli.Send(p, fd, msg, 0)
		cli.Close(p, fd)
	})
}

func testRecvPeekViewWrite(t *testing.T, e *Env) {
	srv := e.NewB("cow")
	cli := e.NewA("cowcli")
	e.Sim.Spawn("server", func(p *sim.Proc) {
		fd, _ := srv.Socket(p, socketapi.SockStream)
		srv.Bind(p, fd, socketapi.SockAddr{Port: 703})
		srv.Listen(p, fd, 4)
		cfd, _, err := srv.Accept(p, fd)
		if err != nil {
			t.Error(err)
			return
		}
		sc := chains(t, srv)
		v1, err := sc.RecvPeek(p, cfd, 32, nil)
		if err != nil {
			t.Error(err)
			return
		}
		// Scribble over the aliased view. Copy-on-write must keep the
		// receive queue (and any in-flight segment) intact.
		v1.Chain.WriteAt(bytes.Repeat([]byte("X"), v1.Chain.Len()), 0)
		v2, err := sc.RecvPeek(p, cfd, 32, nil)
		if err != nil {
			t.Error(err)
			return
		}
		b := make([]byte, v2.Chain.Len())
		v2.Chain.ReadAt(b, 0)
		if string(b) != "copy-on-write-me" {
			t.Errorf("queue corrupted by view write: %q", b)
		}
		v1.Chain.Release()
		v2.Chain.Release()
		sc.RecvRelease(p, cfd, len(b))
		srv.Close(p, cfd)
		srv.Close(p, fd)
	})
	e.Sim.Spawn("client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		fd, _ := cli.Socket(p, socketapi.SockStream)
		if err := cli.Connect(p, fd, socketapi.SockAddr{Addr: e.IPB, Port: 703}); err != nil {
			t.Error(err)
			return
		}
		cli.Send(p, fd, []byte("copy-on-write-me"), 0)
		cli.Close(p, fd)
	})
}

func testSpliceEcho(t *testing.T, e *Env) {
	srv := e.NewB("spliceecho")
	cli := e.NewA("splicecli")
	msg := bytes.Repeat([]byte("splice-echo!"), 512) // 6 KB
	e.Sim.Spawn("server", func(p *sim.Proc) {
		fd, _ := srv.Socket(p, socketapi.SockStream)
		srv.Bind(p, fd, socketapi.SockAddr{Port: 704})
		srv.Listen(p, fd, 4)
		cfd, _, err := srv.Accept(p, fd)
		if err != nil {
			t.Error(err)
			return
		}
		// Echo without ever seeing a byte: splice the socket into itself.
		if n, err := chains(t, srv).Splice(p, cfd, cfd, len(msg)); err != nil || n != len(msg) {
			t.Errorf("Splice = %d, %v", n, err)
		}
		srv.Close(p, cfd)
		srv.Close(p, fd)
	})
	e.Sim.Spawn("client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		fd, _ := cli.Socket(p, socketapi.SockStream)
		if err := cli.Connect(p, fd, socketapi.SockAddr{Addr: e.IPB, Port: 704}); err != nil {
			t.Error(err)
			return
		}
		if _, err := cli.Send(p, fd, msg, 0); err != nil {
			t.Error(err)
			return
		}
		got := make([]byte, 0, len(msg))
		buf := make([]byte, 2048)
		for len(got) < len(msg) {
			n, err := cli.Recv(p, fd, buf, 0)
			if err != nil || n == 0 {
				t.Errorf("recv after %d: n=%d %v", len(got), n, err)
				return
			}
			got = append(got, buf[:n]...)
		}
		if !bytes.Equal(got, msg) {
			t.Error("splice-echo mismatch")
		}
		cli.Close(p, fd)
	})
}

func testSpliceForward(t *testing.T, e *Env) {
	proxy := e.NewB("fwdproxy")
	cli := e.NewA("fwdsrc")
	sink := e.NewA("fwdsink")
	msg := bytes.Repeat([]byte("forward-me"), 800) // 8 KB
	e.Sim.Spawn("sink", func(p *sim.Proc) {
		fd, _ := sink.Socket(p, socketapi.SockStream)
		sink.Bind(p, fd, socketapi.SockAddr{Port: 706})
		sink.Listen(p, fd, 4)
		cfd, _, err := sink.Accept(p, fd)
		if err != nil {
			t.Error(err)
			return
		}
		got := make([]byte, 0, len(msg))
		buf := make([]byte, 4096)
		for len(got) < len(msg) {
			n, err := sink.Recv(p, cfd, buf, 0)
			if err != nil || n == 0 {
				t.Errorf("sink recv after %d: n=%d %v", len(got), n, err)
				return
			}
			got = append(got, buf[:n]...)
		}
		if !bytes.Equal(got, msg) {
			t.Error("forwarded bytes mismatch")
		}
		sink.Close(p, cfd)
		sink.Close(p, fd)
	})
	e.Sim.Spawn("proxy", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		lfd, _ := proxy.Socket(p, socketapi.SockStream)
		proxy.Bind(p, lfd, socketapi.SockAddr{Port: 705})
		proxy.Listen(p, lfd, 4)
		sfd, _, err := proxy.Accept(p, lfd)
		if err != nil {
			t.Error(err)
			return
		}
		dfd, _ := proxy.Socket(p, socketapi.SockStream)
		if err := proxy.Connect(p, dfd, socketapi.SockAddr{Addr: e.IPA, Port: 706}); err != nil {
			t.Error(err)
			return
		}
		if n, err := chains(t, proxy).Splice(p, dfd, sfd, len(msg)); err != nil || n != len(msg) {
			t.Errorf("Splice = %d, %v", n, err)
		}
		proxy.Close(p, dfd)
		proxy.Close(p, sfd)
		proxy.Close(p, lfd)
	})
	e.Sim.Spawn("source", func(p *sim.Proc) {
		p.Sleep(2 * time.Millisecond)
		fd, _ := cli.Socket(p, socketapi.SockStream)
		if err := cli.Connect(p, fd, socketapi.SockAddr{Addr: e.IPB, Port: 705}); err != nil {
			t.Error(err)
			return
		}
		if _, err := cli.Send(p, fd, msg, 0); err != nil {
			t.Error(err)
		}
		cli.Close(p, fd)
	})
}
