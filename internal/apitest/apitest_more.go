package apitest

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/socketapi"
)

// moreTests extends the conformance suite with edge-case behaviour every
// implementation must share.
var moreTests = []struct {
	name string
	fn   func(t *testing.T, e *Env)
}{
	{"MsgPeekLeavesData", testMsgPeek},
	{"ScatterGather", testScatterGather},
	{"ListenBacklogLimit", testListenBacklog},
	{"DoubleCloseIsError", testDoubleClose},
	{"UDPTruncation", testUDPTruncation},
	{"ConnectedUDPFiltersPeers", testConnectedUDP},
	{"EphemeralPortsDistinct", testEphemeralPorts},
	{"LargeUDPFragmented", testLargeUDP},
	{"ShutdownReadEOF", testShutdownRead},
	{"SelectWritable", testSelectWritable},
}

func testMsgPeek(t *testing.T, e *Env) {
	srv := e.NewB("peek")
	cli := e.NewA("peeker")
	e.Sim.Spawn("peek", func(p *sim.Proc) {
		fd, _ := srv.Socket(p, socketapi.SockDgram)
		srv.Bind(p, fd, socketapi.SockAddr{Port: 4000})
		buf := make([]byte, 64)
		n, _, err := srv.RecvFrom(p, fd, buf, socketapi.MsgPeek)
		if err != nil || string(buf[:n]) != "peekaboo" {
			t.Errorf("peek: %q %v", buf[:n], err)
		}
		// A second peek and then a real read must see the same datagram.
		n, _, _ = srv.RecvFrom(p, fd, buf, socketapi.MsgPeek)
		if string(buf[:n]) != "peekaboo" {
			t.Errorf("second peek: %q", buf[:n])
		}
		n, _, _ = srv.RecvFrom(p, fd, buf, 0)
		if string(buf[:n]) != "peekaboo" {
			t.Errorf("read after peek: %q", buf[:n])
		}
	})
	e.Sim.Spawn("peeker", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		fd, _ := cli.Socket(p, socketapi.SockDgram)
		cli.SendTo(p, fd, []byte("peekaboo"), 0, socketapi.SockAddr{Addr: e.IPB, Port: 4000})
	})
}

func testScatterGather(t *testing.T, e *Env) {
	srv := e.NewB("sg")
	cli := e.NewA("sgc")
	e.Sim.Spawn("sg", func(p *sim.Proc) {
		ls, _ := srv.Socket(p, socketapi.SockStream)
		srv.Bind(p, ls, socketapi.SockAddr{Port: 5001})
		srv.Listen(p, ls, 1)
		fd, _, err := srv.Accept(p, ls)
		if err != nil {
			t.Error(err)
			return
		}
		// Let the whole message arrive, then scatter one read across
		// three small buffers.
		p.Sleep(100 * time.Millisecond)
		iov := [][]byte{make([]byte, 3), make([]byte, 5), make([]byte, 16)}
		n, _, err := srv.RecvMsg(p, fd, iov, 0)
		if err != nil || n != 11 {
			t.Errorf("scattered read: n=%d err=%v", n, err)
			return
		}
		got := string(iov[0]) + string(iov[1][:5]) + string(iov[2][:3])
		if got != "hello world" {
			t.Errorf("scattered read = %q", got)
		}
		srv.Close(p, fd)
		srv.Close(p, ls)
	})
	e.Sim.Spawn("sgc", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		fd, _ := cli.Socket(p, socketapi.SockStream)
		if err := cli.Connect(p, fd, socketapi.SockAddr{Addr: e.IPB, Port: 5001}); err != nil {
			t.Error(err)
			return
		}
		// Gather the write from three pieces.
		n, err := cli.SendMsg(p, fd, [][]byte{[]byte("hello"), []byte(" "), []byte("world")}, 0, nil)
		if err != nil || n != 11 {
			t.Errorf("gathered write: n=%d err=%v", n, err)
		}
		cli.Close(p, fd)
	})
}

func testListenBacklog(t *testing.T, e *Env) {
	srv := e.NewB("backlog")
	e.Sim.Spawn("backlog", func(p *sim.Proc) {
		ls, _ := srv.Socket(p, socketapi.SockStream)
		srv.Bind(p, ls, socketapi.SockAddr{Port: 5001})
		srv.Listen(p, ls, 2)
		// Accept all three eventually: the third client's SYN is dropped
		// while the backlog is full and retried, so everyone connects
		// once we start accepting.
		for i := 0; i < 3; i++ {
			fd, _, err := srv.Accept(p, ls)
			if err != nil {
				t.Errorf("accept %d: %v", i, err)
				return
			}
			buf := make([]byte, 4)
			srv.Recv(p, fd, buf, 0)
			srv.Close(p, fd)
		}
		srv.Close(p, ls)
	})
	for i := 0; i < 3; i++ {
		cli := e.NewA("c")
		e.Sim.Spawn("c", func(p *sim.Proc) {
			p.Sleep(time.Millisecond)
			fd, _ := cli.Socket(p, socketapi.SockStream)
			if err := cli.Connect(p, fd, socketapi.SockAddr{Addr: e.IPB, Port: 5001}); err != nil {
				t.Errorf("connect: %v", err)
				return
			}
			cli.Send(p, fd, []byte("hi"), 0)
			cli.Close(p, fd)
		})
	}
}

func testDoubleClose(t *testing.T, e *Env) {
	api := e.NewA("dc")
	e.Sim.Spawn("dc", func(p *sim.Proc) {
		fd, _ := api.Socket(p, socketapi.SockDgram)
		if err := api.Close(p, fd); err != nil {
			t.Errorf("first close: %v", err)
		}
		if err := api.Close(p, fd); !errors.Is(err, socketapi.ErrBadFD) {
			t.Errorf("second close = %v, want EBADF", err)
		}
	})
}

func testUDPTruncation(t *testing.T, e *Env) {
	srv := e.NewB("trunc")
	cli := e.NewA("truncc")
	e.Sim.Spawn("trunc", func(p *sim.Proc) {
		fd, _ := srv.Socket(p, socketapi.SockDgram)
		srv.Bind(p, fd, socketapi.SockAddr{Port: 4001})
		small := make([]byte, 4)
		n, _, err := srv.RecvFrom(p, fd, small, 0)
		if err != nil || n != 4 || string(small) != "0123" {
			t.Errorf("truncated read: %q %v", small[:n], err)
		}
		// The rest of the datagram is discarded; the next read sees the
		// next datagram, not the tail of the first.
		n, _, _ = srv.RecvFrom(p, fd, small, 0)
		if string(small[:n]) != "next" {
			t.Errorf("after truncation got %q, want next datagram", small[:n])
		}
	})
	e.Sim.Spawn("truncc", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		fd, _ := cli.Socket(p, socketapi.SockDgram)
		dst := socketapi.SockAddr{Addr: e.IPB, Port: 4001}
		cli.SendTo(p, fd, []byte("0123456789"), 0, dst)
		p.Sleep(10 * time.Millisecond)
		cli.SendTo(p, fd, []byte("next"), 0, dst)
	})
}

func testConnectedUDP(t *testing.T, e *Env) {
	// A connected UDP socket must only receive from its peer.
	peer := e.NewB("goodpeer")
	noise := e.NewB("noise")
	cli := e.NewA("connudp")
	var got []string
	e.Sim.Spawn("goodpeer", func(p *sim.Proc) {
		fd, _ := peer.Socket(p, socketapi.SockDgram)
		peer.Bind(p, fd, socketapi.SockAddr{Port: 2000})
		buf := make([]byte, 64)
		_, from, err := peer.RecvFrom(p, fd, buf, 0)
		if err != nil {
			t.Error(err)
			return
		}
		peer.SendTo(p, fd, []byte("from-peer"), 0, from)
	})
	e.Sim.Spawn("connudp", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		fd, _ := cli.Socket(p, socketapi.SockDgram)
		if err := cli.Connect(p, fd, socketapi.SockAddr{Addr: e.IPB, Port: 2000}); err != nil {
			t.Error(err)
			return
		}
		la, _ := cli.GetSockName(p, fd)
		// Noise process on B fires at the client's port from port 2001.
		e.Sim.Spawn("noise", func(np *sim.Proc) {
			nfd, _ := noise.Socket(np, socketapi.SockDgram)
			noise.Bind(np, nfd, socketapi.SockAddr{Port: 2001})
			noise.SendTo(np, nfd, []byte("spoofed"), 0, socketapi.SockAddr{Addr: la.Addr, Port: la.Port})
		})
		if _, err := cli.Send(p, fd, []byte("hello"), 0); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 64)
		n, _, err := cli.RecvFrom(p, fd, buf, 0)
		if err != nil {
			t.Error(err)
			return
		}
		got = append(got, string(buf[:n]))
	})
	e.Sim.Spawn("verify", func(p *sim.Proc) {
		p.Sleep(500 * time.Millisecond)
		if len(got) != 1 || got[0] != "from-peer" {
			t.Errorf("connected socket received %v; noise must be filtered", got)
		}
	})
}

func testEphemeralPorts(t *testing.T, e *Env) {
	api := e.NewA("ephem")
	e.Sim.Spawn("ephem", func(p *sim.Proc) {
		seen := map[uint16]bool{}
		for i := 0; i < 5; i++ {
			fd, _ := api.Socket(p, socketapi.SockDgram)
			if err := api.Bind(p, fd, socketapi.SockAddr{}); err != nil {
				t.Error(err)
				return
			}
			la, err := api.GetSockName(p, fd)
			if err != nil || la.Port < 1024 {
				t.Errorf("ephemeral bind: %v %v", la, err)
			}
			if seen[la.Port] {
				t.Errorf("duplicate ephemeral port %d", la.Port)
			}
			seen[la.Port] = true
		}
	})
}

func testLargeUDP(t *testing.T, e *Env) {
	srv := e.NewB("big")
	cli := e.NewA("bigc")
	payload := bytes.Repeat([]byte("x0y1"), 1200) // 4800 B > MTU: fragments
	e.Sim.Spawn("big", func(p *sim.Proc) {
		fd, _ := srv.Socket(p, socketapi.SockDgram)
		srv.SetSockOpt(p, fd, socketapi.SoRcvBuf, 16384)
		srv.Bind(p, fd, socketapi.SockAddr{Port: 4002})
		buf := make([]byte, 9000)
		n, _, err := srv.RecvFrom(p, fd, buf, 0)
		if err != nil || !bytes.Equal(buf[:n], payload) {
			t.Errorf("large datagram: n=%d err=%v", n, err)
		}
	})
	e.Sim.Spawn("bigc", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		fd, _ := cli.Socket(p, socketapi.SockDgram)
		if _, err := cli.SendTo(p, fd, payload, 0, socketapi.SockAddr{Addr: e.IPB, Port: 4002}); err != nil {
			t.Error(err)
		}
	})
}

func testShutdownRead(t *testing.T, e *Env) {
	api := e.NewA("shutrd")
	e.Sim.Spawn("shutrd", func(p *sim.Proc) {
		fd, _ := api.Socket(p, socketapi.SockDgram)
		api.Bind(p, fd, socketapi.SockAddr{Port: 4500})
		if err := api.Shutdown(p, fd, socketapi.ShutRd); err != nil {
			t.Error(err)
			return
		}
		// A read after SHUT_RD returns immediately with no data.
		buf := make([]byte, 10)
		n, _, err := api.RecvFrom(p, fd, buf, 0)
		if err != nil || n != 0 {
			t.Errorf("read after SHUT_RD: n=%d err=%v", n, err)
		}
	})
}

func testSelectWritable(t *testing.T, e *Env) {
	srv := e.NewB("wsel")
	cli := e.NewA("wselc")
	e.Sim.Spawn("wsel", func(p *sim.Proc) {
		ls, _ := srv.Socket(p, socketapi.SockStream)
		srv.Bind(p, ls, socketapi.SockAddr{Port: 5001})
		srv.Listen(p, ls, 1)
		fd, _, err := srv.Accept(p, ls)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 16)
		srv.Recv(p, fd, buf, 0)
		srv.Close(p, fd)
		srv.Close(p, ls)
	})
	e.Sim.Spawn("wselc", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		fd, _ := cli.Socket(p, socketapi.SockStream)
		if err := cli.Connect(p, fd, socketapi.SockAddr{Addr: e.IPB, Port: 5001}); err != nil {
			t.Error(err)
			return
		}
		_, w, err := cli.Select(p, nil, socketapi.NewFDSet(fd), time.Second)
		if err != nil || !w[fd] {
			t.Errorf("connected socket not writable: %v %v", w, err)
		}
		cli.Send(p, fd, []byte("done"), 0)
		cli.Close(p, fd)
	})
}
