// Package metrics is the deterministic metrics subsystem: counters,
// gauges, and log-bucketed latency histograms keyed to the virtual
// clock, collected in a hierarchical registry with byte-stable
// renderings (text, JSON, Prometheus exposition).
//
// Design constraints, in order:
//
//  1. Zero cost on the hot path when disabled. Counter and Gauge are
//     value types embedded directly in the subsystems' Stats structs, so
//     "counting" is a plain uint64 increment whether or not a registry
//     exists — exactly what the ad-hoc int counters cost before. The
//     registry binds pointers to those same fields, so the counters the
//     tests read and the counters an operator scrapes can never
//     disagree. Histograms are only allocated when metrics are enabled;
//     Observe on a nil histogram is a single nil check.
//
//  2. Determinism. The simulation is single-threaded under the event
//     scheduler, so instruments need no atomics; snapshots iterate in
//     sorted name order; every rendering is byte-stable for a given
//     simulation state.
//
//  3. Snapshot-time evaluation for populations. Values that are
//     naturally "the current size of something" (sessions, ports in
//     use, sockets per TCP state, TIME_WAIT population) are registered
//     as gauge functions and cost nothing until a snapshot is taken —
//     the netstat model of reading live kernel tables.
package metrics

// Counter is a monotonically increasing event count. The zero value is
// ready to use. Methods are nil-safe so optional instruments can stay
// nil when metrics are disabled.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous level that can move both ways (queue
// depths, populations). The zero value is ready to use; methods are
// nil-safe.
type Gauge struct {
	v int64
}

// Set replaces the level.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v = v
	}
}

// Add moves the level by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v += d
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}
