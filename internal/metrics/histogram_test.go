package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBucketRoundTrip(t *testing.T) {
	// Every bucket's upper bound must map back to that bucket, and the
	// next value must map to the next bucket.
	for i := 0; i < histBuckets; i++ {
		u := bucketUpper(i)
		if got := bucketOf(u); got != i {
			t.Fatalf("bucketOf(bucketUpper(%d)=%d) = %d", i, u, got)
		}
		if u < math.MaxUint64 && i < histBuckets-1 {
			if got := bucketOf(u + 1); got != i+1 {
				t.Fatalf("bucketOf(%d) = %d, want %d", u+1, got, i+1)
			}
		}
	}
	if bucketOf(math.MaxUint64) != histBuckets-1 {
		t.Fatalf("MaxUint64 lands in bucket %d, want %d", bucketOf(math.MaxUint64), histBuckets-1)
	}
}

// oracle computes the exact q-quantile of samples by sorting.
func oracleQuantile(samples []uint64, q float64) uint64 {
	s := append([]uint64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(math.Ceil(q * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// TestQuantileVsOracle quickchecks Quantile against a sorted-slice
// oracle: the histogram's answer must be >= the true sample and within
// 12.5% relative error (the sub-bucket resolution guarantee).
func TestQuantileVsOracle(t *testing.T) {
	qs := []float64{0.01, 0.25, 0.50, 0.90, 0.99, 1.0}
	f := func(raw []uint32, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		h := &Histogram{}
		samples := make([]uint64, 0, len(raw))
		for _, r := range raw {
			// Spread samples across many octaves, not just 32-bit range.
			v := uint64(r) << uint(rng.Intn(24))
			samples = append(samples, v)
			h.Observe(int64(v))
		}
		for _, q := range qs {
			want := oracleQuantile(samples, q)
			got := h.Quantile(q)
			if got < want {
				t.Logf("q=%v: got %d < true %d", q, got, want)
				return false
			}
			// Upper bound within 12.5% of the true sample.
			if float64(got) > float64(want)*1.125+1 {
				t.Logf("q=%v: got %d > 1.125*true %d", q, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestMergeEqualsCombined quickchecks that merging two histograms gives
// the same state as observing all samples into one.
func TestMergeEqualsCombined(t *testing.T) {
	f := func(a, b []uint32) bool {
		ha, hb, hc := &Histogram{}, &Histogram{}, &Histogram{}
		for _, v := range a {
			ha.Observe(int64(v))
			hc.Observe(int64(v))
		}
		for _, v := range b {
			hb.Observe(int64(v))
			hc.Observe(int64(v))
		}
		ha.Merge(hb)
		if ha.count != hc.count || ha.sum != hc.sum || ha.Min() != hc.Min() || ha.max != hc.max {
			return false
		}
		return ha.counts == hc.counts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should read zero")
	}
	for _, v := range []int64{5, 5, 10, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 1120 || h.Min() != 5 || h.Max() != 1000 {
		t.Fatalf("count=%d sum=%d min=%d max=%d", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	if got := h.Quantile(0.5); got != 10 {
		t.Fatalf("p50 = %d, want 10 (exact: linear bucket)", got)
	}
	if got := h.Quantile(1.0); got != 1000 {
		t.Fatalf("p100 = %d, want clamp to max 1000", got)
	}
	h.Observe(-7) // clamps to 0
	if h.Min() != 0 || h.Count() != 6 {
		t.Fatalf("negative sample should clamp to 0: min=%d count=%d", h.Min(), h.Count())
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(42)
	h.Merge(&Histogram{})
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.View() != (HistView{}) {
		t.Fatal("nil histogram must be inert")
	}
}
