package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteText renders the snapshot as flat "name value" lines, histograms
// expanded into .count/.sum/.min/.max/.p50/.p90/.p99 sublines. Output
// is byte-stable for a given snapshot.
func WriteText(w io.Writer, s Snapshot) error {
	if _, err := fmt.Fprintf(w, "# at %d\n", int64(s.At)); err != nil {
		return err
	}
	for _, it := range s.Items {
		if it.Hist != nil {
			h := it.Hist
			_, err := fmt.Fprintf(w,
				"%s.count %d\n%s.sum %d\n%s.min %d\n%s.max %d\n%s.p50 %d\n%s.p90 %d\n%s.p99 %d\n",
				it.Name, h.Count, it.Name, h.Sum, it.Name, h.Min, it.Name, h.Max,
				it.Name, h.P50, it.Name, h.P90, it.Name, h.P99)
			if err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", it.Name, it.Value); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as indented JSON. encoding/json emits
// struct fields in declaration order and map-free snapshots have no
// iteration-order hazard, so the bytes are stable.
func WriteJSON(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// promName converts a dotted metric name to Prometheus exposition form:
// "psd_" prefix, every character outside [a-zA-Z0-9_] becomes "_".
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 4)
	b.WriteString("psd_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteProm renders the snapshot in Prometheus text exposition format.
// Histograms render as summaries (quantile labels plus _sum and
// _count). Duplicate sanitized names are allowed by the format since
// each carries its own TYPE line once; we emit TYPE per metric name the
// first time it appears.
func WriteProm(w io.Writer, s Snapshot) error {
	seenType := make(map[string]bool)
	for _, it := range s.Items {
		pn := promName(it.Name)
		switch {
		case it.Hist != nil:
			if !seenType[pn] {
				if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", pn); err != nil {
					return err
				}
				seenType[pn] = true
			}
			h := it.Hist
			_, err := fmt.Fprintf(w,
				"%s{quantile=\"0.5\"} %d\n%s{quantile=\"0.9\"} %d\n%s{quantile=\"0.99\"} %d\n%s_sum %d\n%s_count %d\n",
				pn, h.P50, pn, h.P90, pn, h.P99, pn, h.Sum, pn, h.Count)
			if err != nil {
				return err
			}
		default:
			if !seenType[pn] {
				typ := "gauge"
				if it.Kind == KindCounter.String() {
					typ = "counter"
				}
				if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", pn, typ); err != nil {
					return err
				}
				seenType[pn] = true
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", pn, it.Value); err != nil {
				return err
			}
		}
	}
	return nil
}
