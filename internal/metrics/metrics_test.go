package metrics

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	var g *Gauge
	g.Set(3)
	g.Inc()
	g.Dec()
	if g.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	var sc *Scope
	if sc.Sub("x") != nil || sc.NewCounter("c") != nil || sc.Histogram("h") != nil {
		t.Fatal("nil scope must return nil instruments")
	}
	sc.Counter("c", &Counter{})
	sc.GaugeVar("g", &Gauge{})
	sc.GaugeFunc("f", func() int64 { return 1 })
	var r *Registry
	if r.Scope("x") != nil {
		t.Fatal("nil registry must return nil scope")
	}
	if s := r.Snapshot(0); len(s.Items) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	if r.MergedHistogram(".x") != nil {
		t.Fatal("nil registry must return nil merged histogram")
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	host := r.Scope("host.alpha")
	var rx Counter
	rx.Add(7)
	host.Sub("nic").Counter("rx_frames", &rx)
	var depth Gauge
	depth.Set(3)
	host.GaugeVar("queue_depth", &depth)
	host.GaugeFunc("sessions", func() int64 { return 11 })
	h := host.Histogram("rtt_ns")
	h.Observe(100)
	h.Observe(200)

	s := r.Snapshot(5 * time.Second)
	if s.At != 5*time.Second {
		t.Fatalf("At = %v", s.At)
	}
	wantNames := []string{
		"host.alpha.nic.rx_frames",
		"host.alpha.queue_depth",
		"host.alpha.rtt_ns",
		"host.alpha.sessions",
	}
	if len(s.Items) != len(wantNames) {
		t.Fatalf("items = %d, want %d", len(s.Items), len(wantNames))
	}
	for i, n := range wantNames {
		if s.Items[i].Name != n {
			t.Fatalf("item %d = %q, want %q (sorted order)", i, s.Items[i].Name, n)
		}
	}
	if it, _ := s.Get("host.alpha.nic.rx_frames"); it.Value != 7 {
		t.Fatalf("rx_frames = %d", it.Value)
	}
	if it, _ := s.Get("host.alpha.sessions"); it.Value != 11 {
		t.Fatalf("gauge func = %d", it.Value)
	}
	if it, _ := s.Get("host.alpha.rtt_ns"); it.Hist == nil || it.Hist.Count != 2 {
		t.Fatalf("hist view = %+v", it.Hist)
	}
	// Increment after snapshot; old snapshot must not change.
	rx.Inc()
	if it, _ := s.Get("host.alpha.nic.rx_frames"); it.Value != 7 {
		t.Fatal("snapshot must be a copy")
	}
}

func TestDuplicateNamesGetSuffix(t *testing.T) {
	r := NewRegistry()
	sc := r.Scope("host.a")
	sc.NewCounter("x")
	sc.NewCounter("x")
	sc.NewCounter("x")
	s := r.Snapshot(0)
	var names []string
	for _, it := range s.Items {
		names = append(names, it.Name)
	}
	want := []string{"host.a.x", "host.a.x#2", "host.a.x#3"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestDelta(t *testing.T) {
	r := NewRegistry()
	sc := r.Scope("n")
	c := sc.NewCounter("c")
	var g Gauge
	sc.GaugeVar("g", &g)
	h := sc.Histogram("h")
	c.Add(10)
	g.Set(5)
	h.Observe(100)
	prev := r.Snapshot(time.Second)
	c.Add(3)
	g.Set(9)
	h.Observe(200)
	cur := r.Snapshot(2 * time.Second)
	d := Delta(prev, cur)
	if it, _ := d.Get("n.c"); it.Value != 3 {
		t.Fatalf("counter delta = %d", it.Value)
	}
	if it, _ := d.Get("n.g"); it.Value != 9 {
		t.Fatalf("gauge should pass through: %d", it.Value)
	}
	if it, _ := d.Get("n.h"); it.Hist.Count != 1 || it.Hist.Sum != 200 {
		t.Fatalf("hist delta = %+v", it.Hist)
	}
}

func TestSumAndMergedHistogram(t *testing.T) {
	r := NewRegistry()
	for _, hn := range []string{"host.a", "host.b"} {
		sc := r.Scope(hn)
		sc.NewCounter("tcp_rexmit").Add(2)
		h := sc.Histogram("connect_ns")
		h.Observe(1000)
	}
	s := r.Snapshot(0)
	if got := s.Sum(".tcp_rexmit"); got != 4 {
		t.Fatalf("Sum = %d", got)
	}
	m := r.MergedHistogram(".connect_ns")
	if m.Count() != 2 || m.Sum() != 2000 {
		t.Fatalf("merged count=%d sum=%d", m.Count(), m.Sum())
	}
}

func TestRenderingsStable(t *testing.T) {
	build := func() Snapshot {
		r := NewRegistry()
		sc := r.Scope("host.alpha")
		sc.NewCounter("nic.rx_frames").Add(42)
		var g Gauge
		g.Set(-3)
		sc.GaugeVar("balance", &g)
		h := sc.Histogram("rtt_ns")
		h.Observe(150)
		h.Observe(250)
		return r.Snapshot(time.Millisecond)
	}
	var t1, j1, p1, t2, j2, p2 bytes.Buffer
	s1, s2 := build(), build()
	for _, step := range []struct {
		w *bytes.Buffer
		s Snapshot
		f func(w *bytes.Buffer, s Snapshot) error
	}{
		{&t1, s1, func(w *bytes.Buffer, s Snapshot) error { return WriteText(w, s) }},
		{&t2, s2, func(w *bytes.Buffer, s Snapshot) error { return WriteText(w, s) }},
		{&j1, s1, func(w *bytes.Buffer, s Snapshot) error { return WriteJSON(w, s) }},
		{&j2, s2, func(w *bytes.Buffer, s Snapshot) error { return WriteJSON(w, s) }},
		{&p1, s1, func(w *bytes.Buffer, s Snapshot) error { return WriteProm(w, s) }},
		{&p2, s2, func(w *bytes.Buffer, s Snapshot) error { return WriteProm(w, s) }},
	} {
		if err := step.f(step.w, step.s); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(t1.Bytes(), t2.Bytes()) {
		t.Fatal("text rendering not byte-stable")
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Fatal("JSON rendering not byte-stable")
	}
	if !bytes.Equal(p1.Bytes(), p2.Bytes()) {
		t.Fatal("prom rendering not byte-stable")
	}
	text := t1.String()
	for _, want := range []string{
		"host.alpha.balance -3\n",
		"host.alpha.nic.rx_frames 42\n",
		"host.alpha.rtt_ns.count 2\n",
		"host.alpha.rtt_ns.p99 ",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("text missing %q in:\n%s", want, text)
		}
	}
	prom := p1.String()
	for _, want := range []string{
		"# TYPE psd_host_alpha_nic_rx_frames counter\n",
		"psd_host_alpha_rtt_ns{quantile=\"0.5\"} ",
		"psd_host_alpha_rtt_ns_count 2\n",
		"# TYPE psd_host_alpha_balance gauge\n",
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("prom missing %q in:\n%s", want, prom)
		}
	}
}
