package metrics

import (
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind distinguishes instrument types in snapshots.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the exposition name of the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// instrument is one registered metric.
type instrument struct {
	name    string
	kind    Kind
	counter *Counter
	gauge   *Gauge
	gaugeFn func() int64
	hist    *Histogram
}

// Registry holds the full instrument tree for one simulation. It is not
// safe for concurrent use — the simulation is single-threaded, and the
// registry inherits that model.
type Registry struct {
	byName map[string]int
	items  []instrument
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]int)}
}

// Scope returns a scope rooted at name (dotted-path prefix, e.g.
// "host.alpha").
func (r *Registry) Scope(name string) *Scope {
	if r == nil {
		return nil
	}
	return &Scope{reg: r, prefix: name}
}

// register adds an instrument, deterministically suffixing the name
// (#2, #3, ...) if it is already taken so two same-named subsystems
// cannot silently share or clobber an entry.
func (r *Registry) register(ins instrument) {
	name := ins.name
	for i := 2; ; i++ {
		if _, taken := r.byName[name]; !taken {
			break
		}
		name = ins.name + "#" + strconv.Itoa(i)
	}
	ins.name = name
	r.byName[name] = len(r.items)
	r.items = append(r.items, ins)
}

// Scope is a named subtree of a registry. A nil *Scope is valid and
// inert: every method returns a nil instrument or does nothing, so
// subsystems hold a scope pointer and never test whether metrics are
// enabled.
type Scope struct {
	reg    *Registry
	prefix string
}

// Sub returns a child scope ("kern" under "host.alpha" names
// "host.alpha.kern.*").
func (s *Scope) Sub(name string) *Scope {
	if s == nil {
		return nil
	}
	return &Scope{reg: s.reg, prefix: s.prefix + "." + name}
}

// Name returns the scope's full dotted prefix.
func (s *Scope) Name() string {
	if s == nil {
		return ""
	}
	return s.prefix
}

func (s *Scope) full(name string) string { return s.prefix + "." + name }

// Counter binds an existing counter (typically a Stats struct field)
// into the registry under the scope.
func (s *Scope) Counter(name string, c *Counter) {
	if s == nil || c == nil {
		return
	}
	s.reg.register(instrument{name: s.full(name), kind: KindCounter, counter: c})
}

// NewCounter creates, registers, and returns a counter (nil when the
// scope is nil — safe to use unconditionally).
func (s *Scope) NewCounter(name string) *Counter {
	if s == nil {
		return nil
	}
	c := &Counter{}
	s.Counter(name, c)
	return c
}

// GaugeVar binds an existing gauge into the registry.
func (s *Scope) GaugeVar(name string, g *Gauge) {
	if s == nil || g == nil {
		return
	}
	s.reg.register(instrument{name: s.full(name), kind: KindGauge, gauge: g})
}

// GaugeFunc registers a gauge evaluated at snapshot time. fn must be
// deterministic for a given simulation state; it costs nothing until a
// snapshot is taken.
func (s *Scope) GaugeFunc(name string, fn func() int64) {
	if s == nil || fn == nil {
		return
	}
	s.reg.register(instrument{name: s.full(name), kind: KindGauge, gaugeFn: fn})
}

// Histogram creates, registers, and returns a histogram (nil when the
// scope is nil, making Observe free).
func (s *Scope) Histogram(name string) *Histogram {
	if s == nil {
		return nil
	}
	h := &Histogram{}
	s.reg.register(instrument{name: s.full(name), kind: KindHistogram, hist: h})
	return h
}

// Item is one instrument's value in a snapshot.
type Item struct {
	Name  string    `json:"name"`
	Kind  string    `json:"kind"`
	Value int64     `json:"value"`
	Hist  *HistView `json:"hist,omitempty"`
}

// Snapshot is the registry's state at one instant of virtual time,
// sorted by name. All renderings of a snapshot are byte-stable.
type Snapshot struct {
	At    time.Duration `json:"at_ns"`
	Items []Item        `json:"items"`
}

// Snapshot captures every instrument, sorted by name. at is the virtual
// time of the capture.
func (r *Registry) Snapshot(at time.Duration) Snapshot {
	if r == nil {
		return Snapshot{At: at}
	}
	s := Snapshot{At: at, Items: make([]Item, 0, len(r.items))}
	for _, ins := range r.items {
		it := Item{Name: ins.name, Kind: ins.kind.String()}
		switch ins.kind {
		case KindCounter:
			it.Value = int64(ins.counter.Value())
		case KindGauge:
			if ins.gaugeFn != nil {
				it.Value = ins.gaugeFn()
			} else {
				it.Value = ins.gauge.Value()
			}
		case KindHistogram:
			v := ins.hist.View()
			it.Hist = &v
			it.Value = int64(v.Count)
		}
		s.Items = append(s.Items, it)
	}
	sort.Slice(s.Items, func(i, j int) bool { return s.Items[i].Name < s.Items[j].Name })
	return s
}

// Delta returns cur minus prev for counters (and histogram counts);
// gauges pass through cur unchanged, since a level has no meaningful
// difference over an interval here.
func Delta(prev, cur Snapshot) Snapshot {
	prevBy := make(map[string]Item, len(prev.Items))
	for _, it := range prev.Items {
		prevBy[it.Name] = it
	}
	d := Snapshot{At: cur.At, Items: make([]Item, 0, len(cur.Items))}
	for _, it := range cur.Items {
		p, ok := prevBy[it.Name]
		if ok && it.Kind == KindCounter.String() {
			it.Value -= p.Value
		}
		if ok && it.Hist != nil && p.Hist != nil {
			h := *it.Hist
			h.Count -= p.Hist.Count
			h.Sum -= p.Hist.Sum
			it.Hist = &h
			it.Value = int64(h.Count)
		}
		d.Items = append(d.Items, it)
	}
	return d
}

// Sum adds the values of every item whose name ends in suffix — the
// cross-host aggregation helper ("how many TIME_WAIT sockets exist
// anywhere" is Sum(".tcp_state.time_wait")).
func (s Snapshot) Sum(suffix string) int64 {
	var total int64
	for _, it := range s.Items {
		if strings.HasSuffix(it.Name, suffix) {
			total += it.Value
		}
	}
	return total
}

// Get returns the item with the exact name, if present.
func (s Snapshot) Get(name string) (Item, bool) {
	for _, it := range s.Items {
		if it.Name == name {
			return it, true
		}
	}
	return Item{}, false
}

// MergedHistogram merges every live histogram whose name ends in suffix
// into a fresh histogram (for cross-stack quantiles, e.g. connect
// latency over all hosts).
func (r *Registry) MergedHistogram(suffix string) *Histogram {
	if r == nil {
		return nil
	}
	out := &Histogram{}
	for _, ins := range r.items {
		if ins.kind == KindHistogram && strings.HasSuffix(ins.name, suffix) {
			out.Merge(ins.hist)
		}
	}
	return out
}
