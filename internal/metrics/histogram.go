package metrics

import (
	"math"
	"math/bits"
)

// Histogram bucket layout: HDR-style log-linear. Values 0..15 get exact
// buckets; above that, each power-of-two octave is split into 8
// sub-buckets, so any reported quantile is within 12.5% of the true
// sample value. 60 octaves of 8 sub-buckets after the 16 exact ones
// cover the full uint64 range in 496 fixed buckets (~4 KB per
// histogram, no allocation on Observe).
const (
	histLinearMax  = 16 // values below this index themselves
	histSubBuckets = 8  // sub-buckets per octave above the linear range
	histBuckets    = 496
)

// Histogram records a distribution of non-negative int64 samples
// (virtual-clock durations in nanoseconds, queue depths, batch sizes).
// The zero value is ready to use; all methods are nil-safe so disabled
// metrics cost one nil check per Observe.
type Histogram struct {
	counts     [histBuckets]uint64
	count, sum uint64
	min, max   uint64
}

// bucketOf maps a sample to its bucket index.
func bucketOf(u uint64) int {
	if u < histLinearMax {
		return int(u)
	}
	e := bits.Len64(u) - 1 // highest set bit; >= 4 here
	// Mantissa: the 3 bits below the leading bit select the sub-bucket.
	return histLinearMax + (e-4)*histSubBuckets + int(u>>(uint(e)-3)) - histSubBuckets
}

// bucketUpper returns the largest sample value a bucket can hold.
func bucketUpper(i int) uint64 {
	if i < histLinearMax {
		return uint64(i)
	}
	b := i - histLinearMax
	e := b/histSubBuckets + 4
	m := uint64(b%histSubBuckets + histSubBuckets)
	return (m+1)<<(uint(e)-3) - 1
}

// Observe records one sample. Negative samples clamp to zero (they can
// only arise from virtual-clock arithmetic bugs; clamping keeps the
// accounting total intact while the bug is found).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	u := uint64(v)
	if v < 0 {
		u = 0
	}
	if h.count == 0 || u < h.min {
		h.min = u
	}
	if u > h.max {
		h.max = u
	}
	h.count++
	h.sum += u
	h.counts[bucketOf(u)]++
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Min returns the smallest recorded sample (0 when empty).
func (h *Histogram) Min() uint64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1): the
// bucket boundary at or above the sample of that rank, clamped to the
// observed [min, max]. The bound is within 12.5% of the true sample.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil || h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			u := bucketUpper(i)
			if u > h.max {
				u = h.max
			}
			if u < h.min {
				u = h.min
			}
			return u
		}
	}
	return h.max
}

// Merge folds other's samples into h (bucket-wise; exact for counts and
// sums, bound-preserving for quantiles).
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil || other.count == 0 {
		return
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
	for i, c := range other.counts {
		h.counts[i] += c
	}
}

// HistView is a rendered summary of a histogram at snapshot time.
type HistView struct {
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	Min   uint64 `json:"min"`
	Max   uint64 `json:"max"`
	P50   uint64 `json:"p50"`
	P90   uint64 `json:"p90"`
	P99   uint64 `json:"p99"`
}

// View summarizes the histogram for snapshots.
func (h *Histogram) View() HistView {
	if h == nil {
		return HistView{}
	}
	return HistView{
		Count: h.count,
		Sum:   h.sum,
		Min:   h.Min(),
		Max:   h.max,
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
}
