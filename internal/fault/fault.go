// Package fault is a deterministic fault-injection layer for the
// simulated network. It decides, frame by frame, whether traffic is
// dropped, duplicated, corrupted, reordered, delayed, or cut off by a
// partition — reproducibly.
//
// Determinism is the design center: every link (network attachment)
// draws from its own PRNG stream derived from the simulation seed and
// the link's name, so
//
//   - the same seed replays the exact same fault sequence, and
//   - faults on one link never perturb the random stream of another,
//     which means independently configured faults compose without
//     changing each other's outcomes.
//
// Faults are driven either by static Rates (set once, apply forever) or
// by a Plan: a schedule of fault events over virtual time ("partition
// hosts a/b at t=2s for 500ms", "flap link a every second"). Plans have
// a compact text form for command-line use; see ParsePlan.
package fault

import "time"

// Rates are static fault probabilities and parameters for one link (or
// for the injector-wide default). Probabilities are in [0, 1].
type Rates struct {
	// Drop is the probability a frame is lost after serialization.
	Drop float64
	// Dup is the probability a frame is delivered twice.
	Dup float64
	// Corrupt is the probability a single bit of the frame (past the
	// link header) is flipped. The frame is still delivered; the
	// receiving stack's checksums are expected to discard it.
	Corrupt float64
	// Reorder is the probability a frame is held for ReorderBy after
	// serialization, letting later traffic overtake it. A zero
	// ReorderBy with nonzero Reorder means DefaultReorderBy.
	Reorder   float64
	ReorderBy time.Duration
	// Delay is a fixed extra latency added to every frame; Jitter adds
	// a uniform random component in [0, Jitter).
	Delay  time.Duration
	Jitter time.Duration
}

// DefaultReorderBy is the hold time applied to reordered frames when
// Rates.ReorderBy is zero: a few frame times on the simulated 10 Mb/s
// Ethernet, enough for later traffic to overtake.
const DefaultReorderBy = 2 * time.Millisecond

// IsZero reports whether r injects nothing.
func (r Rates) IsZero() bool { return r == Rates{} }

// Counters tally fault decisions on one link. Frames counts every frame
// offered to the injector; the rest count what was done to them.
type Counters struct {
	Frames     int // frames evaluated on this link
	Dropped    int // lost to Drop
	Duplicated int // delivered twice
	Corrupted  int // delivered with a flipped bit
	Reordered  int // held ReorderBy
	Delayed    int // delivered with any nonzero extra delay
	DownDrops  int // lost because the link was down (either end)
	PartDrops  int // deliveries suppressed by an active partition
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.Frames += o.Frames
	c.Dropped += o.Dropped
	c.Duplicated += o.Duplicated
	c.Corrupted += o.Corrupted
	c.Reordered += o.Reordered
	c.Delayed += o.Delayed
	c.DownDrops += o.DownDrops
	c.PartDrops += o.PartDrops
}

// Total returns the number of frames the injector interfered with.
func (c Counters) Total() int {
	return c.Dropped + c.Duplicated + c.Corrupted + c.Reordered + c.Delayed + c.DownDrops + c.PartDrops
}

// Decision is the injector's verdict on one transmitted frame.
type Decision struct {
	// Drop loses the frame entirely (random loss or sender link down).
	Drop bool
	// Dup delivers the frame a second time.
	Dup bool
	// CorruptBit, when >= 0, is the index of a bit to flip, counted
	// from the start of the frame's corruptible region (the caller
	// decides where that region starts — typically past the link-layer
	// header, whose corruption a real NIC's CRC would catch).
	CorruptBit int
	// Delay is extra latency before delivery (reordering, fixed delay,
	// and jitter combined).
	Delay time.Duration
}
