package fault

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// drawSequence records the injector's verdicts for n frames on a link.
func drawSequence(in *Injector, link string, n int) []Decision {
	out := make([]Decision, n)
	for i := range out {
		out[i] = in.Outbound(link, 1000)
	}
	return out
}

func TestStreamsAreSeedDeterministic(t *testing.T) {
	r := Rates{Drop: 0.1, Dup: 0.1, Corrupt: 0.1, Reorder: 0.1, Jitter: time.Millisecond}
	mk := func(seed int64) []Decision {
		in := NewInjector(sim.New(seed))
		in.SetDefaultRates(r)
		return drawSequence(in, "a", 500)
	}
	a, b := mk(7), mk(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at frame %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := mk(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("different seeds produced identical 500-frame decision sequences")
	}
}

func TestLinkStreamsAreIndependent(t *testing.T) {
	r := Rates{Drop: 0.2, Dup: 0.2, Corrupt: 0.2, Jitter: time.Millisecond}

	// Baseline: link "a" alone.
	in1 := NewInjector(sim.New(42))
	in1.SetDefaultRates(r)
	alone := drawSequence(in1, "a", 200)

	// Interleave heavy traffic on "b" between every "a" frame; "a"'s
	// stream must not notice.
	in2 := NewInjector(sim.New(42))
	in2.SetDefaultRates(r)
	mixed := make([]Decision, 200)
	for i := range mixed {
		drawSequence(in2, "b", 5)
		mixed[i] = in2.Outbound("a", 1000)
	}
	for i := range alone {
		if alone[i] != mixed[i] {
			t.Fatalf("link a's stream perturbed by link b traffic at frame %d", i)
		}
	}
}

func TestPartitionCutsBothDirectionsAndHeals(t *testing.T) {
	in := NewInjector(sim.New(1))
	p := in.Partition([]string{"a"}, []string{"b", "c"})
	for _, pair := range [][2]string{{"a", "b"}, {"b", "a"}, {"a", "c"}, {"c", "a"}} {
		if !in.Cut(pair[0], pair[1]) {
			t.Errorf("partition should cut %s->%s", pair[0], pair[1])
		}
	}
	if in.Cut("b", "c") {
		t.Errorf("partition cut traffic within a group")
	}
	if in.Cut("a", "d") {
		t.Errorf("partition cut traffic to an uninvolved link")
	}
	p.Heal()
	if in.Cut("a", "b") {
		t.Errorf("healed partition still cutting traffic")
	}
	if got := in.Counters("a").PartDrops; got != 2 {
		t.Errorf("a PartDrops = %d, want 2 (a->b, a->c)", got)
	}
	if got := in.Counters("b").PartDrops; got != 1 {
		t.Errorf("b PartDrops = %d, want 1", got)
	}
}

func TestDownLinkDropsAndCounts(t *testing.T) {
	in := NewInjector(sim.New(1))
	in.SetDown("a", true)
	if d := in.Outbound("a", 0); !d.Drop {
		t.Fatalf("down link transmitted")
	}
	if !in.Cut("b", "a") {
		t.Fatalf("delivery to down link not cut")
	}
	in.SetDown("a", false)
	if d := in.Outbound("a", 0); d.Drop {
		t.Fatalf("revived link still dropping")
	}
	if in.Cut("b", "a") {
		t.Fatalf("delivery to revived link still cut")
	}
	if got := in.Counters("a").DownDrops; got != 2 {
		t.Errorf("a DownDrops = %d, want 2 (one tx, one rx)", got)
	}
}

func TestRatesZeroMeansPristine(t *testing.T) {
	in := NewInjector(sim.New(3))
	for i, d := range drawSequence(in, "a", 100) {
		if d.Drop || d.Dup || d.CorruptBit >= 0 || d.Delay != 0 {
			t.Fatalf("zero-rate injector interfered with frame %d: %+v", i, d)
		}
	}
	if in.Active() {
		t.Errorf("zero-rate injector claims to be active")
	}
	in.SetDefaultRates(Rates{Drop: 0.5})
	if !in.Active() {
		t.Errorf("injector with drop rate claims to be inactive")
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("@0 rates drop=0.05 dup=0.02 jitter=1ms; @2s partition a,b|c for=500ms; @3s heal; @1s down a for=200ms every=1s; @4s up a")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 5 {
		t.Fatalf("got %d events, want 5", len(p.Events))
	}
	ev := p.Events[0]
	if ev.Verb != "rates" || ev.At != 0 || ev.Rates.Drop != 0.05 || ev.Rates.Dup != 0.02 || ev.Rates.Jitter != time.Millisecond {
		t.Errorf("rates event parsed wrong: %+v", ev)
	}
	ev = p.Events[1]
	if ev.Verb != "partition" || ev.At != 2*time.Second || ev.For != 500*time.Millisecond ||
		len(ev.A) != 2 || ev.A[0] != "a" || ev.A[1] != "b" || len(ev.B) != 1 || ev.B[0] != "c" {
		t.Errorf("partition event parsed wrong: %+v", ev)
	}
	if p.Events[2].Verb != "heal" {
		t.Errorf("heal event parsed wrong: %+v", p.Events[2])
	}
	ev = p.Events[3]
	if ev.Verb != "down" || ev.Link != "a" || ev.Every != time.Second || ev.For != 200*time.Millisecond {
		t.Errorf("flap event parsed wrong: %+v", ev)
	}
	if p.Events[4].Verb != "up" || p.Events[4].Link != "a" {
		t.Errorf("up event parsed wrong: %+v", p.Events[4])
	}

	for _, bad := range []string{
		"rates drop=0.5",        // missing @time
		"@0 rates drop=2",       // probability out of range
		"@0 partition a b",      // missing |
		"@0 nonsense",           // unknown verb
		"@0 down",               // missing link
		"@x heal",               // bad time
		"@0 rates drop",         // not key=value
		"@0 rates volume=11",    // unknown key
		"@0 heal extra",         // heal takes no args
		"@0 partition |b",       // empty group
		"@0 down a for=banana",  // bad duration
		"@0 down a every=cheez", // bad period
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted invalid input", bad)
		}
	}

	// Comments and newlines are tolerated.
	p, err = ParsePlan("# warmup\n@0 rates drop=0.1\n\n@1s heal")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 2 {
		t.Fatalf("got %d events, want 2", len(p.Events))
	}
}

func TestScheduleAppliesAndReverts(t *testing.T) {
	s := sim.New(1)
	in := NewInjector(s)
	var p Plan
	p.RatesAt(0, "", Rates{Drop: 0.5}).
		PartitionAt(time.Second, 500*time.Millisecond, []string{"a"}, []string{"b"}).
		DownAt(2*time.Second, 300*time.Millisecond, "a")
	in.Schedule(&p)

	check := func(at time.Duration, f func()) {
		s.At(sim.Time(int64(at)), f)
	}
	check(time.Millisecond, func() {
		if in.DefaultRates().Drop != 0.5 {
			t.Errorf("t=1ms: rates not applied")
		}
	})
	check(1200*time.Millisecond, func() {
		if !in.Partitioned("a", "b") {
			t.Errorf("t=1.2s: partition not active")
		}
	})
	check(1600*time.Millisecond, func() {
		if in.Partitioned("a", "b") {
			t.Errorf("t=1.6s: partition did not auto-heal")
		}
	})
	check(2100*time.Millisecond, func() {
		if !in.Down("a") {
			t.Errorf("t=2.1s: link a not down")
		}
	})
	check(2400*time.Millisecond, func() {
		if in.Down("a") {
			t.Errorf("t=2.4s: link a did not come back up")
		}
	})
	// Timer events are daemons; drive the clock explicitly.
	if err := s.RunFor(3 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestFlapSchedule(t *testing.T) {
	s := sim.New(1)
	in := NewInjector(s)
	var p Plan
	p.FlapEvery(time.Second, time.Second, 200*time.Millisecond, "a")
	in.Schedule(&p)

	downs := 0
	s.Every(50*time.Millisecond, func() {
		if in.Down("a") {
			downs++
		}
	})
	if err := s.RunFor(4 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Down 200ms of every 1s starting at t=1s: 3 full flaps in 4s,
	// each observed by ~4 of the 50ms probes.
	if downs < 9 || downs > 15 {
		t.Errorf("observed %d down-probes, want ~12 (3 flaps x 4 probes)", downs)
	}
}

func TestCountersAggregate(t *testing.T) {
	in := NewInjector(sim.New(9))
	in.SetDefaultRates(Rates{Drop: 1})
	in.Outbound("a", 0)
	in.Outbound("b", 0)
	in.Outbound("b", 0)
	tot := in.TotalCounters()
	if tot.Frames != 3 || tot.Dropped != 3 {
		t.Errorf("totals = %+v, want 3 frames / 3 dropped", tot)
	}
	if got := in.Links(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Links() = %v", got)
	}
	rep := in.Report()
	if rep == "" || len(rep) < 20 {
		t.Errorf("empty report")
	}
}
