package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/sim"
)

// Injector makes fault decisions for every link of one network segment.
// Links are identified by name and materialize on first use; each gets
// a PRNG stream derived from (simulation seed, link name) so decisions
// are bit-reproducible and independent across links.
type Injector struct {
	sim      *sim.Sim
	seed     int64
	defaults Rates
	links    map[string]*link
	order    []string // link creation order, for stable reports
	parts    []*Partition
}

type link struct {
	name  string
	rng   *rand.Rand
	rates *Rates // nil: use the injector default
	down  bool
	c     Counters
}

// NewInjector returns an idle injector drawing per-link seeds from s.
func NewInjector(s *sim.Sim) *Injector {
	return &Injector{sim: s, seed: s.Seed(), links: make(map[string]*link)}
}

// link materializes per-link state. The stream seed depends only on the
// sim seed and the name, never on creation order or traffic.
func (in *Injector) link(name string) *link {
	l, ok := in.links[name]
	if !ok {
		l = &link{name: name, rng: rand.New(rand.NewSource(streamSeed(in.seed, name)))}
		in.links[name] = l
		in.order = append(in.order, name)
	}
	return l
}

// streamSeed mixes the simulation seed with a link name into an
// independent stream seed. It is sim.StreamSeed: a link's stream
// depends only on (seed, name), never on creation order, traffic, or
// which shard the link's segment landed on — which is what keeps fault
// decisions identical when a topology is resharded.
func streamSeed(seed int64, name string) int64 { return sim.StreamSeed(seed, name) }

// Prime materializes per-link state up front. Trunk segments call it at
// attach time: their two directions make fault decisions from different
// shards, so the lazily-grown link map must be complete before the
// simulation starts.
func (in *Injector) Prime(names ...string) {
	for _, n := range names {
		in.link(n)
	}
}

// SetDefaultRates installs the rates used by links with no override.
func (in *Injector) SetDefaultRates(r Rates) { in.defaults = r }

// DefaultRates returns the injector-wide rates.
func (in *Injector) DefaultRates() Rates { return in.defaults }

// SetLinkRates overrides the rates for one link.
func (in *Injector) SetLinkRates(name string, r Rates) { in.link(name).rates = &r }

// ClearLinkRates removes a per-link override.
func (in *Injector) ClearLinkRates(name string) { in.link(name).rates = nil }

// SetDown forces a link down (all its traffic lost, both directions) or
// back up.
func (in *Injector) SetDown(name string, down bool) { in.link(name).down = down }

// Down reports whether a link is administratively down.
func (in *Injector) Down(name string) bool { return in.link(name).down }

// Partition cuts all traffic between group a and group b (both
// directions) until the returned handle is healed. Traffic within a
// group, or involving links in neither group, is unaffected. Partitions
// stack: traffic is cut if any active partition separates the pair.
type Partition struct {
	in     *Injector
	a, b   map[string]bool
	active bool
}

// Partition installs a partition between the two link groups.
func (in *Injector) Partition(a, b []string) *Partition {
	p := &Partition{in: in, a: nameSet(a), b: nameSet(b), active: true}
	in.parts = append(in.parts, p)
	return p
}

func nameSet(names []string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

// Heal removes the partition. Healing twice is a no-op.
func (p *Partition) Heal() {
	if !p.active {
		return
	}
	p.active = false
	live := p.in.parts[:0]
	for _, q := range p.in.parts {
		if q.active {
			live = append(live, q)
		}
	}
	p.in.parts = live
}

// HealAll removes every active partition.
func (in *Injector) HealAll() {
	for _, p := range in.parts {
		p.active = false
	}
	in.parts = nil
}

// Partitioned reports whether an active partition separates two links.
func (in *Injector) Partitioned(x, y string) bool {
	for _, p := range in.parts {
		if p.active && ((p.a[x] && p.b[y]) || (p.b[x] && p.a[y])) {
			return true
		}
	}
	return false
}

func (l *link) effective(def Rates) Rates {
	if l.rates != nil {
		return *l.rates
	}
	return def
}

// Outbound decides the fate of one frame serialized onto the medium by
// the named link. corruptibleBits is the size in bits of the region a
// corruption may touch (0 disables corruption for this frame). All
// random draws come from the link's own stream, in a fixed order, so
// the decision sequence for a link depends only on the seed and that
// link's own traffic.
func (in *Injector) Outbound(linkName string, corruptibleBits int) Decision {
	l := in.link(linkName)
	l.c.Frames++
	d := Decision{CorruptBit: -1}
	if l.down {
		l.c.DownDrops++
		d.Drop = true
		return d
	}
	r := l.effective(in.defaults)
	if r.IsZero() {
		return d
	}
	if r.Drop > 0 && l.rng.Float64() < r.Drop {
		l.c.Dropped++
		d.Drop = true
		return d
	}
	if r.Dup > 0 && l.rng.Float64() < r.Dup {
		l.c.Duplicated++
		d.Dup = true
	}
	if r.Corrupt > 0 && corruptibleBits > 0 && l.rng.Float64() < r.Corrupt {
		l.c.Corrupted++
		d.CorruptBit = l.rng.Intn(corruptibleBits)
	}
	if r.Reorder > 0 && l.rng.Float64() < r.Reorder {
		l.c.Reordered++
		by := r.ReorderBy
		if by == 0 {
			by = DefaultReorderBy
		}
		d.Delay += by
	}
	d.Delay += r.Delay
	if r.Jitter > 0 {
		d.Delay += time.Duration(l.rng.Int63n(int64(r.Jitter)))
	}
	if d.Delay > 0 {
		l.c.Delayed++
	}
	return d
}

// Cut reports whether delivery from one link to another is suppressed
// by a partition or by the receiver being down, counting the loss.
// (A down sender never reaches Cut: Outbound already dropped the frame.)
func (in *Injector) Cut(from, to string) bool {
	if in.link(to).down {
		in.link(to).c.DownDrops++
		return true
	}
	if in.Partitioned(from, to) {
		in.link(from).c.PartDrops++
		return true
	}
	return false
}

// CutTx is Cut with single-writer counter attribution: every loss is
// counted on the sending link. Trunk segments use it because their two
// directions run on different shards — Cut's receiver-side DownDrops
// increment would be a cross-shard write.
func (in *Injector) CutTx(from, to string) bool {
	if in.link(to).down {
		in.link(from).c.DownDrops++
		return true
	}
	if in.Partitioned(from, to) {
		in.link(from).c.PartDrops++
		return true
	}
	return false
}

// Active reports whether the injector currently interferes with any
// traffic at all (rates, overrides, downed links, or partitions).
func (in *Injector) Active() bool {
	if !in.defaults.IsZero() || len(in.parts) > 0 {
		return true
	}
	for _, l := range in.links {
		if l.down || (l.rates != nil && !l.rates.IsZero()) {
			return true
		}
	}
	return false
}

// Links returns the names of all links seen so far, in creation order.
func (in *Injector) Links() []string { return append([]string(nil), in.order...) }

// Counters returns a copy of one link's fault counters.
func (in *Injector) Counters(name string) Counters { return in.link(name).c }

// TotalCounters sums the counters of every link.
func (in *Injector) TotalCounters() Counters {
	var t Counters
	for _, l := range in.links {
		t.Add(l.c)
	}
	return t
}

// Report formats the per-link fault counters as a small table, sorted
// by link name.
func (in *Injector) Report() string {
	names := append([]string(nil), in.order...)
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %8s %7s %5s %7s %7s %7s %6s %6s\n",
		"link", "frames", "drop", "dup", "corrupt", "reorder", "delayed", "down", "part")
	for _, n := range names {
		c := in.links[n].c
		fmt.Fprintf(&b, "%-16s %8d %7d %5d %7d %7d %7d %6d %6d\n",
			n, c.Frames, c.Dropped, c.Duplicated, c.Corrupted, c.Reordered, c.Delayed, c.DownDrops, c.PartDrops)
	}
	return b.String()
}
