package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Event is one scheduled fault action.
type Event struct {
	// At is the virtual time of the first firing.
	At time.Duration
	// Every, when nonzero, repeats the event with this period.
	Every time.Duration
	// For, when nonzero, automatically reverts the event's effect after
	// this long: a partition heals, a downed link comes back up, rates
	// reset to zero.
	For time.Duration

	// Verb is one of "rates", "partition", "heal", "down", "up".
	Verb string
	// Link targets "rates" ("" means the injector-wide default) and
	// "down"/"up".
	Link string
	// A and B are the two host groups of a "partition". "heal" with
	// empty groups heals everything.
	A, B []string
	// Rates is the payload of a "rates" event.
	Rates Rates
}

// Plan is a schedule of fault events over virtual time.
type Plan struct {
	Events []Event
}

// RatesAt schedules new rates for a link ("" = injector default) at t.
func (p *Plan) RatesAt(t time.Duration, link string, r Rates) *Plan {
	p.Events = append(p.Events, Event{At: t, Verb: "rates", Link: link, Rates: r})
	return p
}

// PartitionAt schedules a partition of groups a and b at t, healing
// itself after d (0 = until healed explicitly).
func (p *Plan) PartitionAt(t, d time.Duration, a, b []string) *Plan {
	p.Events = append(p.Events, Event{At: t, For: d, Verb: "partition", A: a, B: b})
	return p
}

// HealAt schedules healing of every active partition at t.
func (p *Plan) HealAt(t time.Duration) *Plan {
	p.Events = append(p.Events, Event{At: t, Verb: "heal"})
	return p
}

// DownAt schedules link down at t, back up after d (0 = until UpAt).
func (p *Plan) DownAt(t, d time.Duration, link string) *Plan {
	p.Events = append(p.Events, Event{At: t, For: d, Verb: "down", Link: link})
	return p
}

// UpAt schedules link back up at t.
func (p *Plan) UpAt(t time.Duration, link string) *Plan {
	p.Events = append(p.Events, Event{At: t, Verb: "up", Link: link})
	return p
}

// FlapEvery schedules the link to go down for downFor every period,
// starting at t.
func (p *Plan) FlapEvery(t, period, downFor time.Duration, link string) *Plan {
	p.Events = append(p.Events, Event{At: t, Every: period, For: downFor, Verb: "down", Link: link})
	return p
}

// Schedule arms every event of the plan on the injector's simulator.
// Events fire as daemons: an armed plan never keeps Run alive. Calling
// Schedule more than once arms the plan again.
func (in *Injector) Schedule(p *Plan) {
	for i := range p.Events {
		ev := p.Events[i] // copy: the closure outlives the loop
		fire := func() { in.apply(ev) }
		if ev.Every > 0 {
			in.sim.At(in.sim.Now().Add(ev.At), func() {
				fire()
				in.sim.Every(ev.Every, fire)
			})
		} else {
			in.sim.At(in.sim.Now().Add(ev.At), fire)
		}
	}
}

func (in *Injector) apply(ev Event) {
	switch ev.Verb {
	case "rates":
		old := in.defaults
		var oldLink *Rates
		if ev.Link == "" {
			in.defaults = ev.Rates
		} else {
			oldLink = in.link(ev.Link).rates
			in.SetLinkRates(ev.Link, ev.Rates)
		}
		if ev.For > 0 {
			in.sim.After(ev.For, func() {
				if ev.Link == "" {
					in.defaults = old
				} else {
					in.link(ev.Link).rates = oldLink
				}
			})
		}
	case "partition":
		p := in.Partition(ev.A, ev.B)
		if ev.For > 0 {
			in.sim.After(ev.For, p.Heal)
		}
	case "heal":
		in.HealAll()
	case "down":
		in.SetDown(ev.Link, true)
		if ev.For > 0 {
			in.sim.After(ev.For, func() { in.SetDown(ev.Link, false) })
		}
	case "up":
		in.SetDown(ev.Link, false)
	}
}

// ParsePlan parses the compact text form of a fault plan: directives
// separated by ";" or newlines, each
//
//	@<time> [every=<dur>] [for=<dur>] <verb> [args...]
//
// where <verb> is one of
//
//	rates [link=<name>] [drop=<p>] [dup=<p>] [corrupt=<p>]
//	      [reorder=<p>] [reorderby=<dur>] [delay=<dur>] [jitter=<dur>]
//	partition <a,b,..>|<c,d,..>
//	heal
//	down <link>
//	up <link>
//
// Times and durations use Go syntax ("2s", "500ms"); "@0" is time zero.
// Examples:
//
//	@0 rates drop=0.05 dup=0.02; @2s partition a|b for=500ms
//	@1s down a for=200ms every=1s        (flap link a)
func ParsePlan(text string) (*Plan, error) {
	p := &Plan{}
	text = strings.ReplaceAll(text, "\n", ";")
	for _, raw := range strings.Split(text, ";") {
		dir := strings.TrimSpace(raw)
		if dir == "" || strings.HasPrefix(dir, "#") {
			continue
		}
		ev, err := parseDirective(dir)
		if err != nil {
			return nil, fmt.Errorf("fault plan %q: %w", dir, err)
		}
		p.Events = append(p.Events, ev)
	}
	return p, nil
}

func parseDirective(dir string) (Event, error) {
	var ev Event
	fields := strings.Fields(dir)
	if len(fields) == 0 || !strings.HasPrefix(fields[0], "@") {
		return ev, fmt.Errorf("directive must start with @<time>")
	}
	at, err := parseDur(fields[0][1:])
	if err != nil {
		return ev, fmt.Errorf("bad time %q: %v", fields[0][1:], err)
	}
	ev.At = at
	fields = fields[1:]

	// Split off the every=/for= modifiers, which may appear anywhere
	// after the time; what remains is "<verb> [args]".
	var rest []string
	for _, f := range fields {
		switch {
		case strings.HasPrefix(f, "every="):
			if ev.Every, err = parseDur(f[len("every="):]); err != nil {
				return ev, fmt.Errorf("bad every: %v", err)
			}
		case strings.HasPrefix(f, "for="):
			if ev.For, err = parseDur(f[len("for="):]); err != nil {
				return ev, fmt.Errorf("bad for: %v", err)
			}
		default:
			rest = append(rest, f)
		}
	}
	if len(rest) == 0 {
		return ev, fmt.Errorf("missing verb")
	}
	ev.Verb = rest[0]
	args := rest[1:]

	switch ev.Verb {
	case "rates":
		for _, a := range args {
			k, v, ok := strings.Cut(a, "=")
			if !ok {
				return ev, fmt.Errorf("rates arg %q is not key=value", a)
			}
			if err := setRate(&ev, k, v); err != nil {
				return ev, err
			}
		}
	case "partition":
		if len(args) != 1 {
			return ev, fmt.Errorf("partition wants one arg: <a,b>|<c,d>")
		}
		a, b, ok := strings.Cut(args[0], "|")
		if !ok {
			return ev, fmt.Errorf("partition groups must be separated by |")
		}
		ev.A, ev.B = splitGroup(a), splitGroup(b)
		if len(ev.A) == 0 || len(ev.B) == 0 {
			return ev, fmt.Errorf("partition groups must be non-empty")
		}
	case "heal":
		if len(args) != 0 {
			return ev, fmt.Errorf("heal takes no args")
		}
	case "down", "up":
		if len(args) != 1 {
			return ev, fmt.Errorf("%s wants one arg: <link>", ev.Verb)
		}
		ev.Link = args[0]
	default:
		return ev, fmt.Errorf("unknown verb %q", ev.Verb)
	}
	return ev, nil
}

func setRate(ev *Event, k, v string) error {
	prob := func(dst *float64) error {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 || f > 1 {
			return fmt.Errorf("%s=%q: want probability in [0,1]", k, v)
		}
		*dst = f
		return nil
	}
	dur := func(dst *time.Duration) error {
		d, err := parseDur(v)
		if err != nil {
			return fmt.Errorf("%s=%q: %v", k, v, err)
		}
		*dst = d
		return nil
	}
	switch k {
	case "link":
		ev.Link = v
		return nil
	case "drop":
		return prob(&ev.Rates.Drop)
	case "dup":
		return prob(&ev.Rates.Dup)
	case "corrupt":
		return prob(&ev.Rates.Corrupt)
	case "reorder":
		return prob(&ev.Rates.Reorder)
	case "reorderby":
		return dur(&ev.Rates.ReorderBy)
	case "delay":
		return dur(&ev.Rates.Delay)
	case "jitter":
		return dur(&ev.Rates.Jitter)
	}
	return fmt.Errorf("unknown rates key %q", k)
}

func splitGroup(s string) []string {
	var out []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

// parseDur accepts Go duration syntax plus a bare "0".
func parseDur(s string) (time.Duration, error) {
	if s == "0" {
		return 0, nil
	}
	return time.ParseDuration(s)
}
