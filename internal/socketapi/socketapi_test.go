package socketapi

import (
	"testing"

	"repro/internal/wire"
)

func TestSockAddr(t *testing.T) {
	a := SockAddr{Addr: wire.IP(10, 0, 0, 1), Port: 80}
	if a.String() != "10.0.0.1:80" {
		t.Fatalf("String = %s", a)
	}
	if a.IsZero() {
		t.Fatal("non-zero address reported zero")
	}
	if !(SockAddr{}).IsZero() {
		t.Fatal("zero address not zero")
	}
}

func TestNewFDSet(t *testing.T) {
	s := NewFDSet(3, 5, 9)
	if len(s) != 3 || !s[3] || !s[5] || !s[9] || s[4] {
		t.Fatalf("set = %v", s)
	}
	if len(NewFDSet()) != 0 {
		t.Fatal("empty set")
	}
}

func TestErrorsAreDistinct(t *testing.T) {
	errs := []error{
		ErrBadFD, ErrInvalid, ErrAddrInUse, ErrAddrNotAvail, ErrConnRefused,
		ErrConnReset, ErrNotConn, ErrIsConn, ErrPipe, ErrTimedOut, ErrMsgSize,
		ErrShutdown, ErrHostUnreach, ErrNotSupported, ErrWouldBlock, ErrNetDown,
	}
	seen := map[string]bool{}
	for _, e := range errs {
		if e == nil || seen[e.Error()] {
			t.Fatalf("duplicate or nil error: %v", e)
		}
		seen[e.Error()] = true
	}
}
