// Package socketapi defines the BSD socket programming interface that all
// three protocol implementations in this repository export: the
// decomposed library architecture (internal/core), the in-kernel baseline
// (internal/inkernel), and the server baseline (internal/uxserver).
//
// The paper's compatibility goal is that existing socket clients relink
// against the new implementation unmodified; here that goal translates to
// every implementation satisfying this one interface, so the benchmark
// workloads and example applications run unchanged against any of them.
//
// Calls take the calling thread (a *sim.Proc) explicitly: the simulation
// has no implicit "current thread".
package socketapi

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/wire"
)

// SockAddr is an Internet socket address (sockaddr_in).
type SockAddr struct {
	Addr wire.IPAddr
	Port uint16
}

func (a SockAddr) String() string { return fmt.Sprintf("%v:%d", a.Addr, a.Port) }

// IsZero reports whether the address is completely unspecified.
func (a SockAddr) IsZero() bool { return a.Addr.IsZero() && a.Port == 0 }

// Socket types.
const (
	SockStream = 1 // SOCK_STREAM
	SockDgram  = 2 // SOCK_DGRAM
)

// Send/receive flags.
const (
	MsgOOB  = 0x1 // process out-of-band data
	MsgPeek = 0x2 // peek at incoming data without consuming
)

// Shutdown directions.
const (
	ShutRd   = 0
	ShutWr   = 1
	ShutRdWr = 2
)

// Socket options.
const (
	SoRcvBuf = iota
	SoSndBuf
	SoReuseAddr
	TCPNoDelay
	SoKeepAlive
)

// Errors mirroring the errno values socket clients expect.
var (
	ErrBadFD        = errors.New("bad file descriptor (EBADF)")
	ErrInvalid      = errors.New("invalid argument (EINVAL)")
	ErrAddrInUse    = errors.New("address already in use (EADDRINUSE)")
	ErrAddrNotAvail = errors.New("cannot assign requested address (EADDRNOTAVAIL)")
	ErrConnRefused  = errors.New("connection refused (ECONNREFUSED)")
	ErrConnReset    = errors.New("connection reset by peer (ECONNRESET)")
	ErrNotConn      = errors.New("socket is not connected (ENOTCONN)")
	ErrIsConn       = errors.New("socket is already connected (EISCONN)")
	ErrPipe         = errors.New("broken pipe (EPIPE)")
	ErrTimedOut     = errors.New("connection timed out (ETIMEDOUT)")
	ErrMsgSize      = errors.New("message too long (EMSGSIZE)")
	ErrShutdown     = errors.New("cannot send after socket shutdown (ESHUTDOWN)")
	ErrHostUnreach  = errors.New("no route to host (EHOSTUNREACH)")
	ErrNotSupported = errors.New("operation not supported (EOPNOTSUPP)")
	ErrWouldBlock   = errors.New("operation would block (EWOULDBLOCK)")
	ErrNetDown      = errors.New("network is down (ENETDOWN)")
)

// FDSet is a set of file descriptors for Select, in the spirit of fd_set.
type FDSet map[int]bool

// NewFDSet builds a set from a list of descriptors.
func NewFDSet(fds ...int) FDSet {
	s := make(FDSet, len(fds))
	for _, fd := range fds {
		s[fd] = true
	}
	return s
}

// API is the socket interface every protocol implementation exports. The
// paper's Table 1 maps each of these calls onto proxy/server actions in
// the decomposed architecture; the baselines implement them directly.
//
// The BSD interface has ten data-movement calls; the distinct semantics
// are Send/SendTo/SendMsg and Recv/RecvFrom/RecvMsg, with Read/Write and
// Readv/Writev expressible in terms of them (and provided by Base).
type API interface {
	Socket(t *sim.Proc, typ int) (int, error)
	Bind(t *sim.Proc, fd int, addr SockAddr) error
	Connect(t *sim.Proc, fd int, addr SockAddr) error
	Listen(t *sim.Proc, fd int, backlog int) error
	Accept(t *sim.Proc, fd int) (int, SockAddr, error)

	Send(t *sim.Proc, fd int, b []byte, flags int) (int, error)
	SendTo(t *sim.Proc, fd int, b []byte, flags int, to SockAddr) (int, error)
	SendMsg(t *sim.Proc, fd int, iov [][]byte, flags int, to *SockAddr) (int, error)
	Recv(t *sim.Proc, fd int, b []byte, flags int) (int, error)
	RecvFrom(t *sim.Proc, fd int, b []byte, flags int) (int, SockAddr, error)
	RecvMsg(t *sim.Proc, fd int, iov [][]byte, flags int) (int, SockAddr, error)

	Close(t *sim.Proc, fd int) error
	Shutdown(t *sim.Proc, fd int, how int) error
	SetSockOpt(t *sim.Proc, fd int, opt int, value int) error
	GetSockOpt(t *sim.Proc, fd int, opt int) (int, error)
	GetSockName(t *sim.Proc, fd int) (SockAddr, error)
	GetPeerName(t *sim.Proc, fd int) (SockAddr, error)

	// Select blocks until one of the read/write sets is ready or the
	// timeout expires (timeout < 0 blocks forever). It returns the ready
	// subsets.
	Select(t *sim.Proc, read, write FDSet, timeout time.Duration) (FDSet, FDSet, error)

	// Fork returns a copy of the API bound to a new process whose
	// descriptor table references the same open sessions, with BSD fork
	// semantics. Implementations that decompose protocol state must
	// return sessions to the operating system first (paper Table 1).
	Fork(t *sim.Proc, childName string) (API, error)

	// ExitProcess terminates the calling process without closing its
	// descriptors cleanly (the paper's "unexpected shutdown" case).
	ExitProcess(t *sim.Proc)
}

// ZeroCopyAPI is the paper's §4.2 modified interface (NEWAPI): send and
// receive share buffers between the application and the protocol,
// eliminating the socket-layer copy. Only the library implementation
// provides it; the kernel and server baselines cannot without crossing
// protection boundaries.
type ZeroCopyAPI interface {
	// SendZC transfers b without copying it into protocol buffers; the
	// caller must not reuse b until the call returns.
	SendZC(t *sim.Proc, fd int, b []byte, flags int) (int, error)
	// RecvZC returns a view of received data owned by the protocol,
	// valid until the next RecvZC on the same descriptor.
	RecvZC(t *sim.Proc, fd int, max int, flags int) ([]byte, SockAddr, error)
}

// Range names one byte range of a received view that RecvPeek must
// materialize into a private copy (Libra-style selective copying: the
// application declares exactly which bytes it needs as flat memory —
// typically headers — and everything else stays aliased).
type Range struct {
	Off int // offset within the returned view
	Len int // bytes to materialize
}

// RecvView is the result of a RecvPeek: an aliased, reference-counted
// view of the socket's receive queue plus the selectively materialized
// ranges the caller asked for.
//
// Chain shares storage with the receive queue; the bytes it views are
// not consumed until RecvRelease. The caller may mutate the view
// through Chain.WriteAt — copy-on-write keeps the receive queue and any
// in-flight segments intact — and may SendChain the view onward (a
// zero-copy forward). The caller owns Chain and must Release it (or
// surrender it to SendChain) when done.
type RecvView struct {
	Chain  *mbuf.Chain // aliased view, up to max bytes; nil-length at EOF
	Copied [][]byte    // one private copy per requested Range, clamped to the view
	From   SockAddr    // datagram source (UDP only)
}

// MaterializeRanges builds the private flat copies a RecvPeek caller
// asked for, clamping each range to the view. Implementations that
// cannot alias protocol buffers use it to emulate selective copying
// with identical semantics.
func MaterializeRanges(view *mbuf.Chain, ranges []Range) [][]byte {
	if len(ranges) == 0 {
		return nil
	}
	out := make([][]byte, len(ranges))
	for i, r := range ranges {
		off, ln := r.Off, r.Len
		if off < 0 {
			off = 0
		}
		if off > view.Len() {
			off = view.Len()
		}
		if ln < 0 || off+ln > view.Len() {
			ln = view.Len() - off
		}
		b := make([]byte, ln)
		view.ReadAt(b, off)
		out[i] = b
	}
	return out
}

// ChainAPI is the scatter-gather/sendfile-style interface layered over
// the refcounted mbuf chains: send surrenders a chain instead of
// copying a flat buffer, receive returns an aliased view with selective
// materialization, and Splice moves bytes socket-to-socket without the
// application ever touching (or, in the decomposed architecture, even
// mapping) the payload.
//
// All three architectures implement it. Where a protection boundary
// makes true aliasing impossible (the in-kernel and server baselines'
// send/receive paths), the implementation degrades to a copy with
// identical semantics — exactly the contrast the proxy benchmark
// measures.
type ChainAPI interface {
	// SendChain queues the chain's bytes on the connection, surrendering
	// ownership of c (the callee releases it, possibly after
	// retransmission). Blocks until every byte is queued. c may be nil
	// or empty.
	SendChain(t *sim.Proc, fd int, c *mbuf.Chain, flags int) (int, error)

	// RecvPeek blocks until data is available (or EOF/error) and returns
	// a view of up to max bytes without consuming them, materializing
	// the requested ranges. Call RecvRelease to consume.
	RecvPeek(t *sim.Proc, fd int, max int, ranges []Range) (RecvView, error)

	// RecvRelease consumes n bytes from the receive queue (for UDP, the
	// front datagram regardless of n), advancing the flow-control
	// window. Views previously returned by RecvPeek remain valid: they
	// hold their own storage references.
	RecvRelease(t *sim.Proc, fd int, n int) error

	// Splice moves up to n payload bytes from srcFD's receive queue to
	// dstFD's send queue without copying, blocking until n bytes have
	// moved or srcFD reaches EOF. Both descriptors must be connected
	// TCP streams. Returns the number of bytes moved.
	Splice(t *sim.Proc, dstFD, srcFD int, n int) (int, error)
}
