package simnet

import (
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/wire"
)

func frameTo(dst, src wire.MAC, payload int) []byte {
	b := make([]byte, wire.EthHeaderLen+payload)
	h := wire.EthHeader{Dst: dst, Src: src, Type: wire.EtherTypeIPv4}
	h.Marshal(b)
	return b
}

func TestUnicastDelivery(t *testing.T) {
	s := sim.New(1)
	g := NewSegment(s)
	a := g.Attach(wire.MAC{1})
	b := g.Attach(wire.MAC{2})
	c := g.Attach(wire.MAC{3})
	var gotB, gotC int
	b.Rx = func(Frame) { gotB++ }
	c.Rx = func(Frame) { gotC++ }
	if err := a.Transmit(frameTo(b.MAC(), a.MAC(), 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if gotB != 1 || gotC != 0 {
		t.Fatalf("delivery: b=%d c=%d", gotB, gotC)
	}
}

func TestBroadcastReachesAllButSender(t *testing.T) {
	s := sim.New(1)
	g := NewSegment(s)
	var nics []*NIC
	got := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		n := g.Attach(wire.MAC{byte(i + 1)})
		n.Rx = func(Frame) { got[i]++ }
		nics = append(nics, n)
	}
	nics[0].Transmit(frameTo(wire.BroadcastMAC, nics[0].MAC(), 28))
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 1 || got[2] != 1 || got[3] != 1 {
		t.Fatalf("broadcast delivery: %v", got)
	}
}

func TestPromiscuousMode(t *testing.T) {
	s := sim.New(1)
	g := NewSegment(s)
	a := g.Attach(wire.MAC{1})
	b := g.Attach(wire.MAC{2})
	snoop := g.Attach(wire.MAC{9})
	snoop.Promisc = true
	var snooped int
	b.Rx = func(Frame) {}
	snoop.Rx = func(Frame) { snooped++ }
	a.Transmit(frameTo(b.MAC(), a.MAC(), 64))
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if snooped != 1 {
		t.Fatalf("promiscuous NIC saw %d frames", snooped)
	}
}

func TestSerializationTimeMatchesPaper(t *testing.T) {
	// The paper's measured network transit: 51 µs for a minimum frame,
	// 1214 µs for a 1460-byte TCP payload (1518-byte frame).
	s := sim.New(1)
	g := NewSegment(s)
	a := g.Attach(wire.MAC{1})
	b := g.Attach(wire.MAC{2})
	var arrival sim.Time
	b.Rx = func(Frame) { arrival = s.Now() }

	a.Transmit(frameTo(b.MAC(), a.MAC(), 1)) // pads to 64-byte frame
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if got := arrival.Duration(); got != 51200*time.Nanosecond {
		t.Fatalf("min frame transit = %v, want 51.2µs", got)
	}

	start := s.Now()
	a.Transmit(frameTo(b.MAC(), a.MAC(), 1500)) // 1518-byte frame
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if got := arrival.Sub(start); got != time.Duration(1518)*ByteTime {
		t.Fatalf("max frame transit = %v, want %v", got, time.Duration(1518)*ByteTime)
	}
}

func TestMediumSerializesTransmitters(t *testing.T) {
	s := sim.New(1)
	g := NewSegment(s)
	a := g.Attach(wire.MAC{1})
	b := g.Attach(wire.MAC{2})
	c := g.Attach(wire.MAC{3})
	var arrivals []sim.Time
	c.Rx = func(Frame) { arrivals = append(arrivals, s.Now()) }
	// Both stations transmit at t=0; the second must wait for the medium.
	a.Transmit(frameTo(c.MAC(), a.MAC(), 46)) // 64-byte frame = 51.2µs
	b.Transmit(frameTo(c.MAC(), b.MAC(), 46))
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	if arrivals[0].Duration() != 51200*time.Nanosecond || arrivals[1].Duration() != 102400*time.Nanosecond {
		t.Fatalf("arrivals = %v (medium not serialized)", arrivals)
	}
}

func TestLossInjection(t *testing.T) {
	s := sim.New(42)
	g := NewSegment(s)
	g.Faults().SetDefaultRates(fault.Rates{Drop: 0.5})
	a := g.Attach(wire.MAC{1})
	b := g.Attach(wire.MAC{2})
	got := 0
	b.Rx = func(Frame) { got++ }
	const n = 400
	s.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			a.Transmit(frameTo(b.MAC(), a.MAC(), 46))
			p.Sleep(100 * time.Microsecond)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got < n/4 || got > 3*n/4 {
		t.Fatalf("with 50%% loss, delivered %d of %d", got, n)
	}
	if g.Stats().FramesDropped() != uint64(n-got) {
		t.Fatalf("drop accounting: dropped=%d delivered=%d", g.Stats().FramesDropped(), got)
	}
}

func TestDuplicationInjection(t *testing.T) {
	s := sim.New(7)
	g := NewSegment(s)
	g.Faults().SetDefaultRates(fault.Rates{Dup: 1})
	a := g.Attach(wire.MAC{1})
	b := g.Attach(wire.MAC{2})
	got := 0
	b.Rx = func(Frame) { got++ }
	a.Transmit(frameTo(b.MAC(), a.MAC(), 46))
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("duplicated frame delivered %d times", got)
	}
}

func TestDelayReordersFrames(t *testing.T) {
	s := sim.New(3)
	g := NewSegment(s)
	a := g.Attach(wire.MAC{1})
	b := g.Attach(wire.MAC{2})
	var sizes []int
	b.Rx = func(f Frame) { sizes = append(sizes, len(f.Data)) }
	g.Faults().SetDefaultRates(fault.Rates{Reorder: 1, ReorderBy: 10 * time.Millisecond})
	a.Transmit(frameTo(b.MAC(), a.MAC(), 100)) // delayed at delivery
	if err := s.RunFor(time.Millisecond); err != nil {
		t.Fatal(err) // frame 1 has serialized and is now held
	}
	g.Faults().SetDefaultRates(fault.Rates{})
	a.Transmit(frameTo(b.MAC(), a.MAC(), 200)) // arrives first
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 2 || sizes[0] != wire.EthHeaderLen+200 || sizes[1] != wire.EthHeaderLen+100 {
		t.Fatalf("expected reordering, got sizes %v", sizes)
	}
}

func TestTransmitValidation(t *testing.T) {
	s := sim.New(1)
	g := NewSegment(s)
	a := g.Attach(wire.MAC{1})
	if err := a.Transmit(make([]byte, 5)); err == nil {
		t.Fatal("runt frame accepted")
	}
	if err := a.Transmit(make([]byte, wire.EthHeaderLen+wire.EthMTU+1)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestThroughputSaturation(t *testing.T) {
	// Back-to-back max frames must achieve exactly the 10 Mb/s wire rate.
	s := sim.New(1)
	g := NewSegment(s)
	a := g.Attach(wire.MAC{1})
	b := g.Attach(wire.MAC{2})
	bytes := 0
	b.Rx = func(f Frame) { bytes += len(f.Data) - wire.EthHeaderLen }
	const frames = 100
	for i := 0; i < frames; i++ {
		a.Transmit(frameTo(b.MAC(), a.MAC(), 1500))
	}
	if err := s.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Duration(frames*1518) * ByteTime
	gotKBps := float64(bytes) / elapsed.Seconds() / 1024
	// 1500/1518 of 1.25 MB/s ≈ 1206 KB/s
	if gotKBps < 1200 || gotKBps > 1210 {
		t.Fatalf("saturated payload rate = %.0f KB/s", gotKBps)
	}
}
