package simnet

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/wire"
)

// TestZeroFaultDeliveryIsByReference pins the zero-copy contract: with no
// fault injection configured, a delivered Frame.Data is the very slice the
// sender handed to Transmit — no per-hop copy.
func TestZeroFaultDeliveryIsByReference(t *testing.T) {
	s := sim.New(1)
	g := NewSegment(s)
	a := g.Attach(wire.MAC{1})
	b := g.Attach(wire.MAC{2})
	sent := frameTo(b.MAC(), a.MAC(), 100)
	var got []byte
	b.Rx = func(f Frame) { got = f.Data }
	if err := a.Transmit(sent); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("frame not delivered")
	}
	if &got[0] != &sent[0] {
		t.Fatalf("zero-fault delivery copied the frame: got %p, sent %p", &got[0], &sent[0])
	}
}

// TestCorruptionNeverAliasesSenderBuffer is the ownership regression test
// for fault-injected corruption under duplication: the corrupted delivery
// must be a private copy (flipping a bit in the sender's buffer would
// corrupt retransmissions and the pcap trace), and with Dup both
// deliveries must share that one corrupted copy rather than re-flipping
// or re-copying. The sender's buffer must come through byte-identical.
func TestCorruptionNeverAliasesSenderBuffer(t *testing.T) {
	s := sim.New(7)
	g := NewSegment(s)
	a := g.AttachNamed("a", wire.MAC{1})
	b := g.AttachNamed("b", wire.MAC{2})
	g.Faults().SetLinkRates("a", fault.Rates{Corrupt: 1, Dup: 1})

	sent := frameTo(b.MAC(), a.MAC(), 200)
	orig := append([]byte(nil), sent...)
	var got [][]byte
	b.Rx = func(f Frame) { got = append(got, f.Data) }
	if err := a.Transmit(sent); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("want 2 deliveries (dup), got %d", len(got))
	}
	for i, d := range got {
		if &d[0] == &sent[0] {
			t.Errorf("delivery %d aliases the sender's buffer", i)
		}
		if bytes.Equal(d, orig) {
			t.Errorf("delivery %d was not corrupted", i)
		}
	}
	// Both dup deliveries share the one corrupted private copy.
	if &got[0][0] != &got[1][0] {
		t.Errorf("dup deliveries should share one corrupted copy: %p vs %p", &got[0][0], &got[1][0])
	}
	// The sender's buffer is untouched by the injected corruption.
	if !bytes.Equal(sent, orig) {
		t.Error("fault injection mutated the sender's buffer")
	}
	if st := g.Stats(); st.FramesCorrupted.Value() != 1 || st.FramesDup.Value() != 1 {
		t.Errorf("stats: corrupted=%d dup=%d, want 1/1", st.FramesCorrupted.Value(), st.FramesDup.Value())
	}
}
