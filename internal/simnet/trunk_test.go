package simnet

import (
	"fmt"

	"repro/internal/fault"
	"sort"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/wire"
)

// trunkPair builds a two-shard group joined by one trunk and returns
// the group and the two ends. Each end logs its receptions into its own
// single-writer log slice.
func trunkPair(seed int64, prop time.Duration, logs *[2][]string) (*sim.Group, *NIC, *NIC) {
	g := sim.NewGroup(seed, 2)
	tr := NewTrunk(g.Shard(0), prop)
	a := tr.AttachOn(g.Shard(0), "west", wire.MAC{1})
	b := tr.AttachOn(g.Shard(1), "east", wire.MAC{2})
	a.Rx = func(f Frame) {
		(*logs)[0] = append((*logs)[0], fmt.Sprintf("a@%d len=%d", int64(g.Shard(0).Now()), len(f.Data)))
	}
	b.Rx = func(f Frame) {
		(*logs)[1] = append((*logs)[1], fmt.Sprintf("b@%d len=%d", int64(g.Shard(1).Now()), len(f.Data)))
	}
	return g, a, b
}

// runTrunkPingPong drives count round trips across a trunk and returns
// the two per-end logs. Each reception triggers a reply, so traffic
// continuously crosses the shard boundary in both directions.
func runTrunkPingPong(t *testing.T, serial bool, count int) ([2][]string, *NIC, *NIC) {
	t.Helper()
	var logs [2][]string
	g, a, b := trunkPair(7, 200*time.Microsecond, &logs)
	g.SingleThreaded = serial
	g.Deadline = sim.Time(10 * time.Second)
	sent := 0
	a.Rx = func(f Frame) {
		logs[0] = append(logs[0], fmt.Sprintf("a@%d len=%d", int64(g.Shard(0).Now()), len(f.Data)))
		if sent < count {
			sent++
			a.Transmit(frameTo(wire.MAC{2}, wire.MAC{1}, 100+sent%32))
		}
	}
	b.Rx = func(f Frame) {
		logs[1] = append(logs[1], fmt.Sprintf("b@%d len=%d", int64(g.Shard(1).Now()), len(f.Data)))
		b.Transmit(frameTo(wire.MAC{1}, wire.MAC{2}, 64))
	}
	g.Shard(0).At(sim.Time(0).Add(time.Millisecond), func() {
		sent++
		a.Transmit(frameTo(wire.MAC{2}, wire.MAC{1}, 100))
	})
	if err := g.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	return logs, a, b
}

func TestTrunkDeliversBothDirections(t *testing.T) {
	logs, a, b := runTrunkPingPong(t, true, 10)
	if len(logs[1]) != 10 || len(logs[0]) != 10 {
		t.Fatalf("receptions: a=%d b=%d, want 10 each", len(logs[0]), len(logs[1]))
	}
	if a.DirStats().FramesSent.Value() != 10 || b.DirStats().FramesSent.Value() != 10 {
		t.Fatalf("dir frames sent: a=%d b=%d",
			a.DirStats().FramesSent.Value(), b.DirStats().FramesSent.Value())
	}
	if a.RxFrames.Value() != 10 || b.RxFrames.Value() != 10 {
		t.Fatalf("rx frames: a=%d b=%d", a.RxFrames.Value(), b.RxFrames.Value())
	}
}

func TestTrunkSerialParallelIdentical(t *testing.T) {
	serial, _, _ := runTrunkPingPong(t, true, 200)
	parallel, _, _ := runTrunkPingPong(t, false, 200)
	for end := 0; end < 2; end++ {
		if len(serial[end]) != len(parallel[end]) {
			t.Fatalf("end %d: serial %d entries, parallel %d", end, len(serial[end]), len(parallel[end]))
		}
		for i := range serial[end] {
			if serial[end][i] != parallel[end][i] {
				t.Fatalf("end %d entry %d: serial %q parallel %q", end, i, serial[end][i], parallel[end][i])
			}
		}
	}
}

func TestTrunkLookaheadRegistered(t *testing.T) {
	g := sim.NewGroup(1, 2)
	NewTrunk(g.Shard(0), 50*time.Millisecond)
	if got := g.Lookahead(); got != 50*time.Millisecond {
		t.Fatalf("lookahead = %v, want 50ms", got)
	}
	// A second, faster trunk shrinks the group lookahead.
	NewTrunk(g.Shard(1), 300*time.Microsecond)
	if got := g.Lookahead(); got != 300*time.Microsecond {
		t.Fatalf("lookahead = %v, want 300µs", got)
	}
	// Zero-latency trunks clamp to the documented minimum.
	NewTrunk(g.Shard(0), 0)
	if got := g.Lookahead(); got != sim.MinLookahead {
		t.Fatalf("lookahead = %v, want MinLookahead %v", got, sim.MinLookahead)
	}
}

func TestTrunkRejectsThirdStation(t *testing.T) {
	g := sim.NewGroup(1, 2)
	tr := NewTrunk(g.Shard(0), time.Millisecond)
	tr.AttachOn(g.Shard(0), "a", wire.MAC{1})
	tr.AttachOn(g.Shard(1), "b", wire.MAC{2})
	defer func() {
		if recover() == nil {
			t.Fatal("third AttachOn on a trunk did not panic")
		}
	}()
	tr.AttachOn(g.Shard(0), "c", wire.MAC{3})
}

func TestSharedSegmentRejectsForeignShard(t *testing.T) {
	g := sim.NewGroup(1, 2)
	seg := NewSegment(g.Shard(0))
	defer func() {
		if recover() == nil {
			t.Fatal("AttachOn with a foreign shard did not panic")
		}
	}()
	seg.AttachOn(g.Shard(1), "x", wire.MAC{1})
}

// TestTrunkFaultsStable: fault decisions on a trunk come from per-link
// name-derived streams, so loss patterns are identical serial vs
// parallel.
func TestTrunkFaultsStable(t *testing.T) {
	run := func(serial bool) []string {
		var logs [2][]string
		g, a, b := trunkPair(11, 150*time.Microsecond, &logs)
		g.SingleThreaded = serial
		g.Deadline = sim.Time(10 * time.Second)
		a.seg.Faults().SetLinkRates("west", faultRates(0.2))
		a.seg.Faults().SetLinkRates("east", faultRates(0.1))
		for i := 0; i < 50; i++ {
			i := i
			g.Shard(0).At(sim.Time(0).Add(time.Duration(i+1)*time.Millisecond), func() {
				a.Transmit(frameTo(wire.MAC{2}, wire.MAC{1}, 64+i))
			})
			g.Shard(1).At(sim.Time(0).Add(time.Duration(i+1)*time.Millisecond+500*time.Microsecond), func() {
				b.Transmit(frameTo(wire.MAC{1}, wire.MAC{2}, 32+i))
			})
		}
		if err := g.RunFor(time.Second); err != nil {
			t.Fatal(err)
		}
		all := append(append([]string(nil), logs[0]...), logs[1]...)
		sort.Strings(all)
		all = append(all, fmt.Sprintf("westdrops=%d eastdrops=%d",
			a.DirStats().DropsLoss.Value(), b.DirStats().DropsLoss.Value()))
		return all
	}
	serial, parallel := run(true), run(false)
	if len(serial) != len(parallel) {
		t.Fatalf("serial %d entries, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("entry %d: serial %q parallel %q", i, serial[i], parallel[i])
		}
	}
	if serial[len(serial)-1] == "westdrops=0 eastdrops=0" {
		t.Fatal("fault rates injected no loss; test is vacuous")
	}
}

func faultRates(drop float64) fault.Rates { return fault.Rates{Drop: drop} }
