// Package simnet simulates a shared 10 Mb/s Ethernet segment.
//
// The model matches what the paper's measured network transit times imply:
// transmission serializes on a half-duplex shared medium at 0.8 µs/byte
// with a 64-byte minimum frame, and propagation delay on the LAN is
// negligible. Frames queue FIFO for the medium (a simplification of
// CSMA/CD that preserves the contention behaviour that matters here:
// data and acknowledgements share the wire).
//
// Fault injection (loss, duplication, single-bit corruption, reordering,
// delay/jitter, link down, partitions) is provided by the deterministic
// internal/fault layer: every attached station is a named link with its
// own seed-derived random stream. See Segment.Faults.
package simnet

import (
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wire"
)

// ByteTime is the serialization time of one byte at 10 Mb/s.
const ByteTime = 800 * time.Nanosecond

// Frame is an Ethernet frame in flight: header plus payload, no CRC
// (the CRC is accounted for in wire size only).
//
// Ownership rules: Data is owned by the network from the moment it is
// passed to Transmit and is IMMUTABLE from then on. A frame is delivered
// to every matching receiver — and to a duplicate-fault's second
// delivery — by reference, with no per-hop copy; receivers (and anything
// downstream of them: endpoint queues, socket buffers that alias frame
// payloads, pcap exports) must therefore never write to Data. The only
// mutation in the system is fault-injected corruption, which takes a
// private copy first (see Segment.inject), so a corrupted delivery can
// never alias the sender's buffer or another receiver's copy.
type Frame struct {
	Data []byte
}

// WireSize returns the frame's size on the wire, including CRC and
// minimum-frame padding.
func (f Frame) WireSize() int { return wire.FrameWireSize(len(f.Data) - wire.EthHeaderLen) }

// Stats counts segment activity. Drops are attributed by cause so the
// metrics registry can tell injected loss from a down link from a
// malformed frame.
type Stats struct {
	FramesSent      metrics.Counter
	BytesSent       metrics.Counter // wire bytes, including padding and CRC
	DropsLoss       metrics.Counter // lost to injected random loss
	DropsDown       metrics.Counter // lost because the sender's link was down
	DropsMalformed  metrics.Counter // unparseable Ethernet header
	FramesDup       metrics.Counter
	FramesCorrupted metrics.Counter // delivered with an injected bit flip
	FramesDelayed   metrics.Counter
	PartitionDrops  metrics.Counter // deliveries suppressed by partition / down receiver
	DeliveryEvents  metrics.Counter
}

// FramesDropped is the total across all drop causes.
func (s *Stats) FramesDropped() uint64 {
	return s.DropsLoss.Value() + s.DropsDown.Value() + s.DropsMalformed.Value()
}

// Segment is a shared Ethernet segment, or — in point-to-point trunk
// mode (see NewTrunk) — a full-duplex link whose two stations may live
// on different simulation shards.
type Segment struct {
	sim    *sim.Sim
	medium sim.Resource
	nics   []*NIC
	stats  Stats
	inj    *fault.Injector // nil until Faults() is first called
	tr     *trace.Recorder // nil unless tracing; see SetTrace

	// ByteTime is the per-byte serialization time; defaults to 0.8 µs
	// (10 Mb/s).
	byteTime time.Duration

	// Trunk mode: exactly two stations, each with its own serialization
	// medium (full duplex) and its own shard clock; frames cross with
	// prop delay, which doubles as the shard group's lookahead.
	ptp  bool
	prop time.Duration
}

// NewSegment returns an idle 10 Mb/s segment on s. Every station shares
// s's event queue: a shared segment is one serialization domain and must
// be wholly owned by one shard.
func NewSegment(s *sim.Sim) *Segment {
	return &Segment{sim: s, byteTime: ByteTime, medium: sim.Resource{Name: "ether"}}
}

// NewTrunk returns a point-to-point full-duplex link with the given
// propagation delay — the only legal place to cut a topology into
// shards, because the delay is the conservative lookahead that lets
// both sides run ahead. Delays below sim.MinLookahead (including zero)
// are clamped to it; the clamp is the documented alternative to
// rejecting zero-latency links outright. Attach each end with AttachOn,
// passing that end's shard sim. s seeds the trunk's fault streams and
// registers the lookahead with s's shard group, if any.
func NewTrunk(s *sim.Sim, prop time.Duration) *Segment {
	if prop < sim.MinLookahead {
		prop = sim.MinLookahead
	}
	if g := s.Group(); g != nil {
		// Observed unconditionally — even if both ends land on one
		// shard — so the window schedule depends on the topology alone,
		// never on the shard mapping.
		prop = g.ObserveLookahead(prop)
	}
	return &Segment{sim: s, byteTime: ByteTime, ptp: true, prop: prop}
}

// IsTrunk reports whether the segment is a point-to-point trunk.
func (g *Segment) IsTrunk() bool { return g.ptp }

// Prop returns a trunk's propagation delay (0 for shared segments).
func (g *Segment) Prop() time.Duration {
	if !g.ptp {
		return 0
	}
	return g.prop
}

// SetBitRate overrides the default 10 Mb/s serialization rate.
func (g *Segment) SetBitRate(bitsPerSec int64) {
	g.byteTime = time.Duration(8 * int64(time.Second) / bitsPerSec)
}

// Stats returns the live segment counters.
func (g *Segment) Stats() *Stats { return &g.stats }

// Bind registers the stats counters under a scope.
func (s *Stats) Bind(sc *metrics.Scope) {
	if sc == nil {
		return
	}
	sc.Counter("frames_sent", &s.FramesSent)
	sc.Counter("bytes_sent", &s.BytesSent)
	sc.Counter("drops_loss", &s.DropsLoss)
	sc.Counter("drops_down", &s.DropsDown)
	sc.Counter("drops_malformed", &s.DropsMalformed)
	sc.Counter("frames_dup", &s.FramesDup)
	sc.Counter("frames_corrupted", &s.FramesCorrupted)
	sc.Counter("frames_delayed", &s.FramesDelayed)
	sc.Counter("partition_drops", &s.PartitionDrops)
	sc.Counter("delivery_events", &s.DeliveryEvents)
}

// SetMetrics binds the segment's counters into a registry scope
// (typically "net"). Pass nil to leave metrics disabled; counting
// happens either way at plain-increment cost. Trunk directions bind
// their own Stats instead (NIC.DirStats).
func (g *Segment) SetMetrics(sc *metrics.Scope) {
	g.stats.Bind(sc)
}

// SetTrace attaches a flight recorder to the segment (nil to detach).
// The net layer records frame transmissions (with the frame bytes, for
// pcap export), receptions, and every fault-layer intervention with its
// attribution.
func (g *Segment) SetTrace(r *trace.Recorder) { g.tr = r }

// Faults returns the segment's fault injector, creating it on first
// use. Station names given to AttachNamed are the link names the
// injector sees.
func (g *Segment) Faults() *fault.Injector {
	if g.inj == nil {
		g.inj = fault.NewInjector(g.sim)
	}
	return g.inj
}

// NIC is a station attached to a segment. Rx is invoked in event context
// when a frame addressed to this station (or broadcast, or anything in
// promiscuous mode) finishes arriving; it models the start of the device
// interrupt and must not block.
type NIC struct {
	seg     *Segment
	sim     *sim.Sim // owner shard: all of this station's events run here
	name    string
	mac     wire.MAC
	Promisc bool
	Rx      func(f Frame)

	// TxDone, when set, is invoked in event context each time one of
	// this station's frames finishes serializing onto the medium. Router
	// ports use it to track egress-queue occupancy (frames handed to
	// Transmit that have not yet cleared the wire).
	TxDone func(f Frame)

	TxFrames metrics.Counter
	RxFrames metrics.Counter
	TxBytes  metrics.Counter // wire bytes, including padding and CRC
	RxBytes  metrics.Counter

	free []*txJob // recycled transmit jobs (per station: single-writer)

	// Trunk direction state. stats points at the direction's own
	// counters in ptp mode and at the segment's in shared mode, so every
	// counter has exactly one writing shard. tr, when set, overrides the
	// segment recorder (psd gives each direction its own trace lane).
	// origin/oseq key this direction's deliveries in the global merge
	// order; medium models the direction's private wire (full duplex).
	stats    *Stats
	tr       *trace.Recorder
	peer     *NIC
	medium   *sim.Resource
	dirStats Stats
	origin   uint64
	oseq     uint64
}

// BindMetrics registers the NIC's counters under a scope (typically
// "host.<name>.nic").
func (n *NIC) BindMetrics(sc *metrics.Scope) {
	if sc == nil {
		return
	}
	sc.Counter("tx_frames", &n.TxFrames)
	sc.Counter("rx_frames", &n.RxFrames)
	sc.Counter("tx_bytes", &n.TxBytes)
	sc.Counter("rx_bytes", &n.RxBytes)
}

// Attach adds a new station with the given MAC to the segment, named
// after the MAC.
func (g *Segment) Attach(mac wire.MAC) *NIC {
	return g.AttachNamed(mac.String(), mac)
}

// AttachNamed adds a new station with the given link name and MAC. The
// name identifies the station to the fault injector ("partition a from
// b", per-link rates, per-link counters).
func (g *Segment) AttachNamed(name string, mac wire.MAC) *NIC {
	return g.AttachOn(g.sim, name, mac)
}

// AttachOn adds a station owned by shard sim s. On a shared segment s
// must be the segment's own sim (one serialization domain, one shard);
// on a trunk it is the attaching end's shard, and the trunk takes at
// most two stations.
func (g *Segment) AttachOn(s *sim.Sim, name string, mac wire.MAC) *NIC {
	if !g.ptp && s != g.sim {
		panic("simnet: a shared segment's stations must all live on the segment's own shard; cut shards at trunks")
	}
	if g.ptp && len(g.nics) >= 2 {
		panic("simnet: a trunk is point-to-point; it takes exactly two stations")
	}
	n := &NIC{seg: g, sim: s, name: name, mac: mac, stats: &g.stats}
	if g.ptp {
		n.stats = &n.dirStats
		n.medium = &sim.Resource{Name: "trunk-" + name}
		n.origin = s.AllocOrigin()
		// Both directions' fault streams must exist before shards run
		// concurrently: the injector's link map grows lazily otherwise.
		g.Faults().Prime(name)
		if len(g.nics) == 1 {
			prev := g.nics[0]
			prev.peer, n.peer = n, prev
		}
	}
	g.nics = append(g.nics, n)
	return n
}

// Sim returns the shard sim that owns this station.
func (n *NIC) Sim() *sim.Sim { return n.sim }

// DirStats returns this station's transmit-direction counters: its own
// on a trunk, the shared segment's otherwise.
func (n *NIC) DirStats() *Stats { return n.stats }

// SetTrace overrides the segment recorder for records attributed to
// this station (per-direction trace lanes in sharded runs).
func (n *NIC) SetTrace(r *trace.Recorder) { n.tr = r }

// rec returns the recorder for this station's records.
func (n *NIC) rec() *trace.Recorder {
	if n.tr != nil {
		return n.tr
	}
	return n.seg.tr
}

// MAC returns the station's hardware address.
func (n *NIC) MAC() wire.MAC { return n.mac }

// Name returns the station's link name.
func (n *NIC) Name() string { return n.name }

// txJob carries one frame through medium acquisition. Jobs are pooled on
// the transmitting station and the completion continuation is bound
// once, so the steady-state transmit path allocates nothing beyond the
// frame itself.
type txJob struct {
	n      *NIC
	f      Frame
	doneFn func()
}

func (n *NIC) getTxJob() *txJob {
	if k := len(n.free); k > 0 {
		j := n.free[k-1]
		n.free[k-1] = nil
		n.free = n.free[:k-1]
		return j
	}
	j := &txJob{n: n}
	j.doneFn = j.done
	return j
}

// done runs when the frame has finished serializing onto the medium.
func (j *txJob) done() {
	n, f := j.n, j.f
	g := n.seg
	j.f = Frame{}
	n.free = append(n.free, j)
	wireBytes := uint64(f.WireSize())
	n.stats.FramesSent.Inc()
	n.stats.BytesSent.Add(wireBytes)
	n.TxBytes.Add(wireBytes)
	if r := n.rec(); r.On(trace.LayerNet) {
		r.EmitFrame(trace.EvFrameTx, n.name, "", f.Data, int64(f.WireSize()))
	}
	if n.TxDone != nil {
		n.TxDone(f)
	}
	g.inject(n, f)
}

// Transmit queues a frame for the medium (the shared wire, or this
// direction's private wire on a trunk). It may be called from event or
// process context on the station's own shard; the frame is delivered to
// receivers after the medium has been acquired and the frame
// serialized. The data slice is owned by the network after the call and
// must not be mutated by anyone afterwards — delivery is by reference
// (see Frame).
func (n *NIC) Transmit(data []byte) error {
	if len(data) < wire.EthHeaderLen {
		return fmt.Errorf("simnet: frame shorter than Ethernet header (%d bytes)", len(data))
	}
	if len(data) > wire.EthHeaderLen+wire.EthMTU {
		return fmt.Errorf("simnet: frame payload exceeds MTU (%d bytes)", len(data)-wire.EthHeaderLen)
	}
	g := n.seg
	n.TxFrames.Inc()
	j := n.getTxJob()
	j.f = Frame{Data: data}
	txTime := time.Duration(j.f.WireSize()) * g.byteTime
	m := &g.medium
	if n.medium != nil {
		m = n.medium
	}
	m.UseEvent(n.sim, sim.TaskPriority, txTime, j.doneFn)
	return nil
}

// inject applies the fault layer's verdict to a serialized frame and
// hands the surviving copies to deliver.
func (g *Segment) inject(from *NIC, f Frame) {
	if g.inj == nil {
		g.deliver(from, f, 0)
		return
	}
	// Only bits past the Ethernet header are corruptible: a real NIC's
	// frame CRC would catch link-header damage, so modeling it would
	// only test the simulator, not the protocol stack.
	d := g.inj.Outbound(from.name, (len(f.Data)-wire.EthHeaderLen)*8)
	r := from.rec()
	on := r.On(trace.LayerNet)
	if d.Drop {
		// Attribute the drop regardless of tracing so the metrics
		// registry can break drops out by cause.
		reason := "loss"
		if g.inj.Down(from.name) {
			reason = "down"
			from.stats.DropsDown.Inc()
		} else {
			from.stats.DropsLoss.Inc()
		}
		if on {
			r.Emit(trace.LayerNet, trace.EvFrameDrop, from.name, "", reason, 0, 0, 0)
		}
		return
	}
	if d.CorruptBit >= 0 {
		data := make([]byte, len(f.Data))
		copy(data, f.Data)
		data[wire.EthHeaderLen+d.CorruptBit/8] ^= 1 << (d.CorruptBit % 8)
		f = Frame{Data: data}
		from.stats.FramesCorrupted.Inc()
		if on {
			r.Emit(trace.LayerNet, trace.EvFrameCorrupt, from.name, "", "", int64(d.CorruptBit), 0, 0)
		}
	}
	if d.Delay > 0 {
		from.stats.FramesDelayed.Inc()
		if on {
			r.Emit(trace.LayerNet, trace.EvFrameDelay, from.name, "", "", int64(d.Delay), 0, 0)
		}
	}
	g.deliver(from, f, d.Delay)
	if d.Dup {
		from.stats.FramesDup.Inc()
		if on {
			r.Emit(trace.LayerNet, trace.EvFrameDup, from.name, "", "", 0, 0, 0)
		}
		g.deliver(from, f, d.Delay)
	}
}

func (g *Segment) deliver(from *NIC, f Frame, delay time.Duration) {
	hdr, err := wire.UnmarshalEth(f.Data)
	if err != nil {
		from.stats.DropsMalformed.Inc()
		if r := from.rec(); r.On(trace.LayerNet) {
			r.Emit(trace.LayerNet, trace.EvFrameDrop, from.name, "", "malformed", 0, 0, 0)
		}
		return
	}
	if g.ptp {
		g.deliverTrunk(from, hdr, f, delay)
		return
	}
	for _, nic := range g.nics {
		if nic == from {
			continue // Ethernet does not deliver a frame to its sender
		}
		if !nic.Promisc && nic.mac != hdr.Dst && !hdr.Dst.IsBroadcast() {
			continue
		}
		if g.inj != nil && g.inj.Cut(from.name, nic.name) {
			g.stats.PartitionDrops.Inc()
			if g.tr.On(trace.LayerNet) {
				g.tr.Emit(trace.LayerNet, trace.EvPartitionDrop, from.name, nic.name, "", 0, 0, 0)
			}
			continue
		}
		nic := nic
		g.stats.DeliveryEvents.Inc()
		nic.RxFrames.Inc()
		nic.RxBytes.Add(uint64(f.WireSize()))
		if nic.Rx == nil {
			continue
		}
		if delay == 0 {
			if g.tr.On(trace.LayerNet) {
				g.tr.Emit(trace.LayerNet, trace.EvFrameRx, nic.name, from.name, "", int64(len(f.Data)), 0, 0)
			}
			nic.Rx(f)
		} else {
			fromName := from.name
			g.sim.After(delay, func() {
				if g.tr.On(trace.LayerNet) {
					g.tr.Emit(trace.LayerNet, trace.EvFrameRx, nic.name, fromName, "", int64(len(f.Data)), 0, 0)
				}
				nic.Rx(f)
			})
		}
	}
}

// deliverTrunk carries a frame to the far end of a point-to-point link.
// Transmit-side decisions (partition cut, delivery accounting) run on
// the sending shard; the arrival event runs on the receiving shard at
// now + prop (+ injected delay), keyed (at, direction origin, seq) so
// the merged cross-shard order is intrinsic to the traffic, not to the
// shard mapping. The receive-side counters and trace records are
// written inside the arrival event — on the receiver's shard — keeping
// every counter and lane single-writer.
func (g *Segment) deliverTrunk(from *NIC, hdr wire.EthHeader, f Frame, delay time.Duration) {
	peer := from.peer
	if peer == nil {
		return // far end not attached yet
	}
	if !peer.Promisc && peer.mac != hdr.Dst && !hdr.Dst.IsBroadcast() {
		return
	}
	if g.inj != nil && g.inj.CutTx(from.name, peer.name) {
		from.stats.PartitionDrops.Inc()
		if r := from.rec(); r.On(trace.LayerNet) {
			r.Emit(trace.LayerNet, trace.EvPartitionDrop, from.name, peer.name, "", 0, 0, 0)
		}
		return
	}
	from.stats.DeliveryEvents.Inc()
	at := from.sim.Now().Add(g.prop + delay)
	from.oseq++
	fromName := from.name
	from.sim.SendRemote(peer.sim, at, from.origin, from.oseq, func() {
		peer.RxFrames.Inc()
		peer.RxBytes.Add(uint64(f.WireSize()))
		if r := peer.rec(); r.On(trace.LayerNet) {
			r.Emit(trace.LayerNet, trace.EvFrameRx, peer.name, fromName, "", int64(len(f.Data)), 0, 0)
		}
		if peer.Rx != nil {
			peer.Rx(f)
		}
	})
}
