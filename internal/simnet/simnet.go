// Package simnet simulates a shared 10 Mb/s Ethernet segment.
//
// The model matches what the paper's measured network transit times imply:
// transmission serializes on a half-duplex shared medium at 0.8 µs/byte
// with a 64-byte minimum frame, and propagation delay on the LAN is
// negligible. Frames queue FIFO for the medium (a simplification of
// CSMA/CD that preserves the contention behaviour that matters here:
// data and acknowledgements share the wire).
//
// Fault injection (loss, duplication, extra delay for reordering) is
// available for exercising the protocol stack's recovery machinery.
package simnet

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/wire"
)

// ByteTime is the serialization time of one byte at 10 Mb/s.
const ByteTime = 800 * time.Nanosecond

// Frame is an Ethernet frame in flight: header plus payload, no CRC
// (the CRC is accounted for in wire size only).
type Frame struct {
	Data []byte
}

// WireSize returns the frame's size on the wire, including CRC and
// minimum-frame padding.
func (f Frame) WireSize() int { return wire.FrameWireSize(len(f.Data) - wire.EthHeaderLen) }

// Stats counts segment activity.
type Stats struct {
	FramesSent     int
	BytesSent      int // wire bytes, including padding and CRC
	FramesDropped  int
	FramesDup      int
	FramesDelayed  int
	DeliveryEvents int
}

// Segment is a shared Ethernet segment.
type Segment struct {
	sim    *sim.Sim
	medium sim.Resource
	nics   []*NIC
	stats  Stats

	// ByteTime is the per-byte serialization time; defaults to 0.8 µs
	// (10 Mb/s).
	byteTime time.Duration

	// Fault injection knobs. Rates are probabilities in [0, 1].
	LossRate float64
	DupRate  float64
	// DelayRate is the probability a frame is held for DelayBy extra time
	// after serialization, which reorders it behind later traffic.
	DelayRate float64
	DelayBy   time.Duration
}

// NewSegment returns an idle 10 Mb/s segment on s.
func NewSegment(s *sim.Sim) *Segment {
	return &Segment{sim: s, byteTime: ByteTime, medium: sim.Resource{Name: "ether"}}
}

// SetBitRate overrides the default 10 Mb/s serialization rate.
func (g *Segment) SetBitRate(bitsPerSec int64) {
	g.byteTime = time.Duration(8 * int64(time.Second) / bitsPerSec)
}

// Stats returns a copy of the segment counters.
func (g *Segment) Stats() Stats { return g.stats }

// NIC is a station attached to a segment. Rx is invoked in event context
// when a frame addressed to this station (or broadcast, or anything in
// promiscuous mode) finishes arriving; it models the start of the device
// interrupt and must not block.
type NIC struct {
	seg     *Segment
	mac     wire.MAC
	Promisc bool
	Rx      func(f Frame)

	TxFrames int
	RxFrames int
}

// Attach adds a new station with the given MAC to the segment.
func (g *Segment) Attach(mac wire.MAC) *NIC {
	n := &NIC{seg: g, mac: mac}
	g.nics = append(g.nics, n)
	return n
}

// MAC returns the station's hardware address.
func (n *NIC) MAC() wire.MAC { return n.mac }

// Transmit queues a frame for the shared medium. It may be called from
// event or process context; the frame is delivered to receivers after the
// medium has been acquired and the frame serialized. The data slice is
// owned by the network after the call.
func (n *NIC) Transmit(data []byte) error {
	if len(data) < wire.EthHeaderLen {
		return fmt.Errorf("simnet: frame shorter than Ethernet header (%d bytes)", len(data))
	}
	if len(data) > wire.EthHeaderLen+wire.EthMTU {
		return fmt.Errorf("simnet: frame payload exceeds MTU (%d bytes)", len(data)-wire.EthHeaderLen)
	}
	f := Frame{Data: data}
	g := n.seg
	n.TxFrames++
	txTime := time.Duration(f.WireSize()) * g.byteTime
	g.medium.UseEvent(g.sim, sim.TaskPriority, txTime, func() {
		g.stats.FramesSent++
		g.stats.BytesSent += f.WireSize()
		g.deliver(n, f)
		if g.DupRate > 0 && g.sim.Rand().Float64() < g.DupRate {
			g.stats.FramesDup++
			g.deliver(n, f)
		}
	})
	return nil
}

func (g *Segment) deliver(from *NIC, f Frame) {
	if g.LossRate > 0 && g.sim.Rand().Float64() < g.LossRate {
		g.stats.FramesDropped++
		return
	}
	hdr, err := wire.UnmarshalEth(f.Data)
	if err != nil {
		g.stats.FramesDropped++
		return
	}
	delay := time.Duration(0)
	if g.DelayRate > 0 && g.sim.Rand().Float64() < g.DelayRate {
		delay = g.DelayBy
		g.stats.FramesDelayed++
	}
	for _, nic := range g.nics {
		if nic == from {
			continue // Ethernet does not deliver a frame to its sender
		}
		if !nic.Promisc && nic.mac != hdr.Dst && !hdr.Dst.IsBroadcast() {
			continue
		}
		nic := nic
		g.stats.DeliveryEvents++
		nic.RxFrames++
		if nic.Rx == nil {
			continue
		}
		if delay == 0 {
			nic.Rx(f)
		} else {
			g.sim.After(delay, func() { nic.Rx(f) })
		}
	}
}
