// Package simnet simulates a shared 10 Mb/s Ethernet segment.
//
// The model matches what the paper's measured network transit times imply:
// transmission serializes on a half-duplex shared medium at 0.8 µs/byte
// with a 64-byte minimum frame, and propagation delay on the LAN is
// negligible. Frames queue FIFO for the medium (a simplification of
// CSMA/CD that preserves the contention behaviour that matters here:
// data and acknowledgements share the wire).
//
// Fault injection (loss, duplication, single-bit corruption, reordering,
// delay/jitter, link down, partitions) is provided by the deterministic
// internal/fault layer: every attached station is a named link with its
// own seed-derived random stream. See Segment.Faults.
package simnet

import (
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wire"
)

// ByteTime is the serialization time of one byte at 10 Mb/s.
const ByteTime = 800 * time.Nanosecond

// Frame is an Ethernet frame in flight: header plus payload, no CRC
// (the CRC is accounted for in wire size only).
//
// Ownership rules: Data is owned by the network from the moment it is
// passed to Transmit and is IMMUTABLE from then on. A frame is delivered
// to every matching receiver — and to a duplicate-fault's second
// delivery — by reference, with no per-hop copy; receivers (and anything
// downstream of them: endpoint queues, socket buffers that alias frame
// payloads, pcap exports) must therefore never write to Data. The only
// mutation in the system is fault-injected corruption, which takes a
// private copy first (see Segment.inject), so a corrupted delivery can
// never alias the sender's buffer or another receiver's copy.
type Frame struct {
	Data []byte
}

// WireSize returns the frame's size on the wire, including CRC and
// minimum-frame padding.
func (f Frame) WireSize() int { return wire.FrameWireSize(len(f.Data) - wire.EthHeaderLen) }

// Stats counts segment activity. Drops are attributed by cause so the
// metrics registry can tell injected loss from a down link from a
// malformed frame.
type Stats struct {
	FramesSent      metrics.Counter
	BytesSent       metrics.Counter // wire bytes, including padding and CRC
	DropsLoss       metrics.Counter // lost to injected random loss
	DropsDown       metrics.Counter // lost because the sender's link was down
	DropsMalformed  metrics.Counter // unparseable Ethernet header
	FramesDup       metrics.Counter
	FramesCorrupted metrics.Counter // delivered with an injected bit flip
	FramesDelayed   metrics.Counter
	PartitionDrops  metrics.Counter // deliveries suppressed by partition / down receiver
	DeliveryEvents  metrics.Counter
}

// FramesDropped is the total across all drop causes.
func (s *Stats) FramesDropped() uint64 {
	return s.DropsLoss.Value() + s.DropsDown.Value() + s.DropsMalformed.Value()
}

// Segment is a shared Ethernet segment.
type Segment struct {
	sim    *sim.Sim
	medium sim.Resource
	nics   []*NIC
	stats  Stats
	inj    *fault.Injector // nil until Faults() is first called
	tr     *trace.Recorder // nil unless tracing; see SetTrace
	freeTx []*txJob        // recycled transmit jobs

	// ByteTime is the per-byte serialization time; defaults to 0.8 µs
	// (10 Mb/s).
	byteTime time.Duration
}

// NewSegment returns an idle 10 Mb/s segment on s.
func NewSegment(s *sim.Sim) *Segment {
	return &Segment{sim: s, byteTime: ByteTime, medium: sim.Resource{Name: "ether"}}
}

// SetBitRate overrides the default 10 Mb/s serialization rate.
func (g *Segment) SetBitRate(bitsPerSec int64) {
	g.byteTime = time.Duration(8 * int64(time.Second) / bitsPerSec)
}

// Stats returns the live segment counters.
func (g *Segment) Stats() *Stats { return &g.stats }

// SetMetrics binds the segment's counters into a registry scope
// (typically "net"). Pass nil to leave metrics disabled; counting
// happens either way at plain-increment cost.
func (g *Segment) SetMetrics(sc *metrics.Scope) {
	if sc == nil {
		return
	}
	sc.Counter("frames_sent", &g.stats.FramesSent)
	sc.Counter("bytes_sent", &g.stats.BytesSent)
	sc.Counter("drops_loss", &g.stats.DropsLoss)
	sc.Counter("drops_down", &g.stats.DropsDown)
	sc.Counter("drops_malformed", &g.stats.DropsMalformed)
	sc.Counter("frames_dup", &g.stats.FramesDup)
	sc.Counter("frames_corrupted", &g.stats.FramesCorrupted)
	sc.Counter("frames_delayed", &g.stats.FramesDelayed)
	sc.Counter("partition_drops", &g.stats.PartitionDrops)
	sc.Counter("delivery_events", &g.stats.DeliveryEvents)
}

// SetTrace attaches a flight recorder to the segment (nil to detach).
// The net layer records frame transmissions (with the frame bytes, for
// pcap export), receptions, and every fault-layer intervention with its
// attribution.
func (g *Segment) SetTrace(r *trace.Recorder) { g.tr = r }

// Faults returns the segment's fault injector, creating it on first
// use. Station names given to AttachNamed are the link names the
// injector sees.
func (g *Segment) Faults() *fault.Injector {
	if g.inj == nil {
		g.inj = fault.NewInjector(g.sim)
	}
	return g.inj
}

// NIC is a station attached to a segment. Rx is invoked in event context
// when a frame addressed to this station (or broadcast, or anything in
// promiscuous mode) finishes arriving; it models the start of the device
// interrupt and must not block.
type NIC struct {
	seg     *Segment
	name    string
	mac     wire.MAC
	Promisc bool
	Rx      func(f Frame)

	// TxDone, when set, is invoked in event context each time one of
	// this station's frames finishes serializing onto the medium. Router
	// ports use it to track egress-queue occupancy (frames handed to
	// Transmit that have not yet cleared the wire).
	TxDone func(f Frame)

	TxFrames metrics.Counter
	RxFrames metrics.Counter
	TxBytes  metrics.Counter // wire bytes, including padding and CRC
	RxBytes  metrics.Counter
}

// BindMetrics registers the NIC's counters under a scope (typically
// "host.<name>.nic").
func (n *NIC) BindMetrics(sc *metrics.Scope) {
	if sc == nil {
		return
	}
	sc.Counter("tx_frames", &n.TxFrames)
	sc.Counter("rx_frames", &n.RxFrames)
	sc.Counter("tx_bytes", &n.TxBytes)
	sc.Counter("rx_bytes", &n.RxBytes)
}

// Attach adds a new station with the given MAC to the segment, named
// after the MAC.
func (g *Segment) Attach(mac wire.MAC) *NIC {
	return g.AttachNamed(mac.String(), mac)
}

// AttachNamed adds a new station with the given link name and MAC. The
// name identifies the station to the fault injector ("partition a from
// b", per-link rates, per-link counters).
func (g *Segment) AttachNamed(name string, mac wire.MAC) *NIC {
	n := &NIC{seg: g, name: name, mac: mac}
	g.nics = append(g.nics, n)
	return n
}

// MAC returns the station's hardware address.
func (n *NIC) MAC() wire.MAC { return n.mac }

// Name returns the station's link name.
func (n *NIC) Name() string { return n.name }

// txJob carries one frame through medium acquisition. Jobs are pooled on
// the segment and the completion continuation is bound once, so the
// steady-state transmit path allocates nothing beyond the frame itself.
type txJob struct {
	g      *Segment
	n      *NIC
	f      Frame
	doneFn func()
}

func (g *Segment) getTxJob() *txJob {
	if n := len(g.freeTx); n > 0 {
		j := g.freeTx[n-1]
		g.freeTx[n-1] = nil
		g.freeTx = g.freeTx[:n-1]
		return j
	}
	j := &txJob{g: g}
	j.doneFn = j.done
	return j
}

// done runs when the frame has finished serializing onto the medium.
func (j *txJob) done() {
	g, n, f := j.g, j.n, j.f
	j.n, j.f = nil, Frame{}
	g.freeTx = append(g.freeTx, j)
	wireBytes := uint64(f.WireSize())
	g.stats.FramesSent.Inc()
	g.stats.BytesSent.Add(wireBytes)
	n.TxBytes.Add(wireBytes)
	if g.tr.On(trace.LayerNet) {
		g.tr.EmitFrame(trace.EvFrameTx, n.name, "", f.Data, int64(f.WireSize()))
	}
	if n.TxDone != nil {
		n.TxDone(f)
	}
	g.inject(n, f)
}

// Transmit queues a frame for the shared medium. It may be called from
// event or process context; the frame is delivered to receivers after the
// medium has been acquired and the frame serialized. The data slice is
// owned by the network after the call and must not be mutated by anyone
// afterwards — delivery is by reference (see Frame).
func (n *NIC) Transmit(data []byte) error {
	if len(data) < wire.EthHeaderLen {
		return fmt.Errorf("simnet: frame shorter than Ethernet header (%d bytes)", len(data))
	}
	if len(data) > wire.EthHeaderLen+wire.EthMTU {
		return fmt.Errorf("simnet: frame payload exceeds MTU (%d bytes)", len(data)-wire.EthHeaderLen)
	}
	g := n.seg
	n.TxFrames.Inc()
	j := g.getTxJob()
	j.n = n
	j.f = Frame{Data: data}
	txTime := time.Duration(j.f.WireSize()) * g.byteTime
	g.medium.UseEvent(g.sim, sim.TaskPriority, txTime, j.doneFn)
	return nil
}

// inject applies the fault layer's verdict to a serialized frame and
// hands the surviving copies to deliver.
func (g *Segment) inject(from *NIC, f Frame) {
	if g.inj == nil {
		g.deliver(from, f, 0)
		return
	}
	// Only bits past the Ethernet header are corruptible: a real NIC's
	// frame CRC would catch link-header damage, so modeling it would
	// only test the simulator, not the protocol stack.
	d := g.inj.Outbound(from.name, (len(f.Data)-wire.EthHeaderLen)*8)
	on := g.tr.On(trace.LayerNet)
	if d.Drop {
		// Attribute the drop regardless of tracing so the metrics
		// registry can break drops out by cause.
		reason := "loss"
		if g.inj.Down(from.name) {
			reason = "down"
			g.stats.DropsDown.Inc()
		} else {
			g.stats.DropsLoss.Inc()
		}
		if on {
			g.tr.Emit(trace.LayerNet, trace.EvFrameDrop, from.name, "", reason, 0, 0, 0)
		}
		return
	}
	if d.CorruptBit >= 0 {
		data := make([]byte, len(f.Data))
		copy(data, f.Data)
		data[wire.EthHeaderLen+d.CorruptBit/8] ^= 1 << (d.CorruptBit % 8)
		f = Frame{Data: data}
		g.stats.FramesCorrupted.Inc()
		if on {
			g.tr.Emit(trace.LayerNet, trace.EvFrameCorrupt, from.name, "", "", int64(d.CorruptBit), 0, 0)
		}
	}
	if d.Delay > 0 {
		g.stats.FramesDelayed.Inc()
		if on {
			g.tr.Emit(trace.LayerNet, trace.EvFrameDelay, from.name, "", "", int64(d.Delay), 0, 0)
		}
	}
	g.deliver(from, f, d.Delay)
	if d.Dup {
		g.stats.FramesDup.Inc()
		if on {
			g.tr.Emit(trace.LayerNet, trace.EvFrameDup, from.name, "", "", 0, 0, 0)
		}
		g.deliver(from, f, d.Delay)
	}
}

func (g *Segment) deliver(from *NIC, f Frame, delay time.Duration) {
	hdr, err := wire.UnmarshalEth(f.Data)
	if err != nil {
		g.stats.DropsMalformed.Inc()
		if g.tr.On(trace.LayerNet) {
			g.tr.Emit(trace.LayerNet, trace.EvFrameDrop, from.name, "", "malformed", 0, 0, 0)
		}
		return
	}
	for _, nic := range g.nics {
		if nic == from {
			continue // Ethernet does not deliver a frame to its sender
		}
		if !nic.Promisc && nic.mac != hdr.Dst && !hdr.Dst.IsBroadcast() {
			continue
		}
		if g.inj != nil && g.inj.Cut(from.name, nic.name) {
			g.stats.PartitionDrops.Inc()
			if g.tr.On(trace.LayerNet) {
				g.tr.Emit(trace.LayerNet, trace.EvPartitionDrop, from.name, nic.name, "", 0, 0, 0)
			}
			continue
		}
		nic := nic
		g.stats.DeliveryEvents.Inc()
		nic.RxFrames.Inc()
		nic.RxBytes.Add(uint64(f.WireSize()))
		if nic.Rx == nil {
			continue
		}
		if delay == 0 {
			if g.tr.On(trace.LayerNet) {
				g.tr.Emit(trace.LayerNet, trace.EvFrameRx, nic.name, from.name, "", int64(len(f.Data)), 0, 0)
			}
			nic.Rx(f)
		} else {
			fromName := from.name
			g.sim.After(delay, func() {
				if g.tr.On(trace.LayerNet) {
					g.tr.Emit(trace.LayerNet, trace.EvFrameRx, nic.name, fromName, "", int64(len(f.Data)), 0, 0)
				}
				nic.Rx(f)
			})
		}
	}
}
