package kern

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"repro/internal/costs"
	"repro/internal/filter"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/wire"
)

func testFrame(dst wire.MAC, proto uint8, srcIP, dstIP wire.IPAddr, sport, dport uint16, payload int) []byte {
	b := make([]byte, wire.EthHeaderLen+wire.IPv4HeaderLen+8+payload)
	eh := wire.EthHeader{Dst: dst, Src: wire.MAC{0xaa}, Type: wire.EtherTypeIPv4}
	eh.Marshal(b)
	ih := wire.IPv4Header{
		TotalLen: uint16(wire.IPv4HeaderLen + 8 + payload),
		TTL:      64, Proto: proto, Src: srcIP, Dst: dstIP,
	}
	ih.Marshal(b[wire.EthHeaderLen:])
	tp := b[wire.EthHeaderLen+wire.IPv4HeaderLen:]
	binary.BigEndian.PutUint16(tp[0:2], sport)
	binary.BigEndian.PutUint16(tp[2:4], dport)
	return b
}

type testRig struct {
	s    *sim.Sim
	seg  *simnet.Segment
	a, b *Host
}

func newRig(prof costs.Profile) *testRig {
	s := sim.New(1)
	seg := simnet.NewSegment(s)
	a := NewHost(s, seg, "alpha", wire.MAC{1}, wire.IP(10, 0, 0, 1), prof)
	b := NewHost(s, seg, "beta", wire.MAC{2}, wire.IP(10, 0, 0, 2), prof)
	return &testRig{s: s, seg: seg, a: a, b: b}
}

func TestRxDeliversToMatchingEndpoint(t *testing.T) {
	r := newRig(costs.DECLibrarySHMIPF())
	ep := r.b.NewEndpoint(0)
	if _, err := ep.InstallFilter(filter.MatchSpec{
		Proto: wire.ProtoUDP, LocalIP: r.b.IP, LocalPort: 53,
	}, 10); err != nil {
		t.Fatal(err)
	}
	var got []Packet
	r.s.Spawn("rx", func(p *sim.Proc) {
		pkt, ok := ep.Recv(p)
		if !ok {
			t.Error("recv failed")
			return
		}
		got = append(got, pkt)
	})
	r.a.NIC.Transmit(testFrame(r.b.NIC.MAC(), wire.ProtoUDP, r.a.IP, r.b.IP, 9000, 53, 100))
	if err := r.s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Payload != 100 {
		t.Fatalf("got %v", got)
	}
	if r.b.RxFrames.Value() != 1 || ep.Delivered.Value() != 1 {
		t.Fatalf("stats: frames=%d delivered=%d", r.b.RxFrames.Value(), ep.Delivered.Value())
	}
}

func TestRxUnmatchedCounted(t *testing.T) {
	r := newRig(costs.DECLibrarySHMIPF())
	r.a.NIC.Transmit(testFrame(r.b.NIC.MAC(), wire.ProtoUDP, r.a.IP, r.b.IP, 9000, 53, 10))
	if err := r.s.RunFor(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if r.b.RxNoMatch.Value() != 1 {
		t.Fatalf("no-match = %d", r.b.RxNoMatch.Value())
	}
}

func TestCatchAllFallback(t *testing.T) {
	r := newRig(costs.DECLibrarySHMIPF())
	sess := r.b.NewEndpoint(0)
	sess.InstallFilter(filter.MatchSpec{Proto: wire.ProtoUDP, LocalIP: r.b.IP, LocalPort: 53}, 10)
	server := r.b.NewEndpoint(0)
	if _, err := server.InstallProgram(CatchAllProgram(), 0); err != nil {
		t.Fatal(err)
	}
	r.a.NIC.Transmit(testFrame(r.b.NIC.MAC(), wire.ProtoUDP, r.a.IP, r.b.IP, 9000, 53, 10))
	r.a.NIC.Transmit(testFrame(r.b.NIC.MAC(), wire.ProtoTCP, r.a.IP, r.b.IP, 1234, 80, 10))
	if err := r.s.RunFor(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if sess.Delivered.Value() != 1 || server.Delivered.Value() != 1 {
		t.Fatalf("session=%d server=%d", sess.Delivered.Value(), server.Delivered.Value())
	}
}

func TestEndpointOverflowDrops(t *testing.T) {
	r := newRig(costs.DECLibrarySHMIPF())
	ep := r.b.NewEndpoint(2)
	ep.InstallProgram(CatchAllProgram(), 0)
	for i := 0; i < 5; i++ {
		r.a.NIC.Transmit(testFrame(r.b.NIC.MAC(), wire.ProtoUDP, r.a.IP, r.b.IP, 1, 2, 10))
	}
	if err := r.s.RunFor(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if ep.Delivered.Value() != 2 || ep.Drops.Value() != 3 {
		t.Fatalf("delivered=%d drops=%d", ep.Delivered.Value(), ep.Drops.Value())
	}
}

func TestRecvChargesIPCPerPacket(t *testing.T) {
	profIPC := costs.DECLibraryIPC()
	profSHM := costs.DECLibrarySHM()
	elapsed := func(prof costs.Profile) time.Duration {
		r := newRig(prof)
		ep := r.b.NewEndpoint(0)
		ep.InstallProgram(CatchAllProgram(), 0)
		r.a.NIC.Transmit(testFrame(r.b.NIC.MAC(), wire.ProtoUDP, r.a.IP, r.b.IP, 1, 2, 10))
		r.a.NIC.Transmit(testFrame(r.b.NIC.MAC(), wire.ProtoUDP, r.a.IP, r.b.IP, 1, 2, 10))
		// Let both packets be fully delivered before measuring dequeues.
		if err := r.s.RunFor(50 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		if ep.Pending() != 2 {
			t.Fatalf("expected 2 queued packets, have %d", ep.Pending())
		}
		var start, end sim.Time
		r.s.Spawn("rx", func(p *sim.Proc) {
			start = p.Now()
			ep.Recv(p)
			ep.Recv(p)
			end = p.Now()
		})
		if err := r.s.Run(); err != nil {
			t.Fatal(err)
		}
		return end.Sub(start)
	}
	dIPC, dSHM := elapsed(profIPC), elapsed(profSHM)
	if dIPC <= dSHM {
		t.Fatalf("IPC dequeue (%v) should cost more than SHM dequeue (%v)", dIPC, dSHM)
	}
}

func TestRxPipelineTiming(t *testing.T) {
	// With the SHM-IPF profile and a 100-byte UDP payload, delivery should
	// complete at arrival + devread + netisr + copyout (no contention).
	prof := costs.DECLibrarySHMIPF()
	r := newRig(prof)
	ep := r.b.NewEndpoint(0)
	ep.InstallProgram(CatchAllProgram(), 0)
	var delivered sim.Time
	r.s.Spawn("rx", func(p *sim.Proc) {
		ep.Recv(p)
		delivered = p.Now()
	})
	frame := testFrame(r.b.NIC.MAC(), wire.ProtoUDP, r.a.IP, r.b.IP, 1, 2, 100)
	wireTime := time.Duration(wire.FrameWireSize(len(frame)-wire.EthHeaderLen)) * simnet.ByteTime
	r.a.NIC.Transmit(frame)
	if err := r.s.Run(); err != nil {
		t.Fatal(err)
	}
	pc := prof.Costs.UDP
	want := wireTime +
		pc[costs.CompDeviceIntrRead].At(100) +
		pc[costs.CompNetisrPF].At(100) +
		pc[costs.CompKernelCopyout].At(100)
	if delivered.Duration() != want {
		t.Fatalf("delivered at %v, want %v", delivered.Duration(), want)
	}
}

func TestMeterSeesKernelCharges(t *testing.T) {
	r := newRig(costs.DECLibrarySHMIPF())
	m := &fakeMeter{}
	r.b.Meter = m
	ep := r.b.NewEndpoint(0)
	ep.InstallProgram(CatchAllProgram(), 0)
	r.a.NIC.Transmit(testFrame(r.b.NIC.MAC(), wire.ProtoUDP, r.a.IP, r.b.IP, 1, 2, 10))
	if err := r.s.RunFor(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for _, comp := range []costs.Component{costs.CompDeviceIntrRead, costs.CompNetisrPF, costs.CompKernelCopyout} {
		if m.got[comp] == 0 {
			t.Errorf("component %v not metered", comp)
		}
	}
}

type fakeMeter struct {
	got [costs.NumComponents]time.Duration
}

func (m *fakeMeter) Account(c costs.Component, d time.Duration) { m.got[c] += d }

func TestEndpointCloseWakesReceiver(t *testing.T) {
	r := newRig(costs.DECLibrarySHMIPF())
	ep := r.b.NewEndpoint(0)
	done := false
	r.s.Spawn("rx", func(p *sim.Proc) {
		_, ok := ep.Recv(p)
		if ok {
			t.Error("expected ok=false after close")
		}
		done = true
	})
	r.s.After(time.Millisecond, func() { ep.Close() })
	if err := r.s.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("receiver never woke")
	}
}

func TestFilterRemovedOnClose(t *testing.T) {
	r := newRig(costs.DECLibrarySHMIPF())
	ep := r.b.NewEndpoint(0)
	ep.InstallFilter(filter.MatchSpec{Proto: wire.ProtoUDP, LocalIP: r.b.IP, LocalPort: 53}, 5)
	ep.InstallFilter(filter.MatchSpec{Proto: wire.ProtoUDP, LocalIP: r.b.IP, LocalPort: 54}, 5)
	if r.b.Filters.Len() != 2 {
		t.Fatal("filters not installed")
	}
	ep.Close()
	if r.b.Filters.Len() != 0 {
		t.Fatal("filters not removed on close")
	}
}

func TestProcessExitNotification(t *testing.T) {
	r := newRig(costs.DECLibrarySHMIPF())
	pr := r.a.NewProcess("app")
	if r.a.Processes() != 1 {
		t.Fatal("process not registered")
	}
	var order []string
	pr.OnExit(func() { order = append(order, "first") })
	pr.OnExit(func() { order = append(order, "second") })
	pr.Exit()
	pr.Exit() // idempotent
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("exit callbacks: %v", order)
	}
	if r.a.Processes() != 0 || !pr.Exited() {
		t.Fatal("process not removed")
	}
	ran := false
	pr.OnExit(func() { ran = true })
	if !ran {
		t.Fatal("OnExit after exit must run immediately")
	}
}

func TestServiceRPC(t *testing.T) {
	r := newRig(costs.DECLibrarySHMIPF())
	srvProc := r.a.NewProcess("server")
	svc := NewService(srvProc, "echo", 2, func(t *sim.Proc, method string, args any) (any, error) {
		if method == "fail" {
			return nil, fmt.Errorf("boom")
		}
		t.Sleep(time.Millisecond) // simulated work
		return args.(int) * 2, nil
	})
	results := make([]int, 3)
	for i := 0; i < 3; i++ {
		i := i
		r.s.Spawn("client", func(p *sim.Proc) {
			rep, err := svc.Call(p, "double", i)
			if err != nil {
				t.Errorf("call: %v", err)
				return
			}
			results[i] = rep.(int)
		})
	}
	var gotErr error
	r.s.Spawn("failer", func(p *sim.Proc) {
		_, gotErr = svc.Call(p, "fail", 0)
	})
	if err := r.s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range results {
		if v != i*2 {
			t.Fatalf("results = %v", results)
		}
	}
	if gotErr == nil {
		t.Fatal("error not propagated")
	}
}

func TestServiceWorkersRunConcurrently(t *testing.T) {
	r := newRig(costs.DECLibrarySHMIPF())
	srvProc := r.a.NewProcess("server")
	svc := NewService(srvProc, "slow", 2, func(t *sim.Proc, method string, args any) (any, error) {
		t.Sleep(10 * time.Millisecond)
		return nil, nil
	})
	var done []sim.Time
	for i := 0; i < 2; i++ {
		r.s.Spawn("client", func(p *sim.Proc) {
			svc.Call(p, "go", nil)
			done = append(done, p.Now())
		})
	}
	if err := r.s.Run(); err != nil {
		t.Fatal(err)
	}
	// With 2 workers both calls finish at 10ms; with 1 they would
	// serialize to 10ms and 20ms.
	if len(done) != 2 || done[0] != done[1] {
		t.Fatalf("completion times %v; workers not concurrent", done)
	}
}

func TestChargeProcAdvancesClock(t *testing.T) {
	r := newRig(costs.DECLibrarySHMIPF())
	var took time.Duration
	r.s.Spawn("w", func(p *sim.Proc) {
		start := p.Now()
		r.a.ChargeProc(p, 5*time.Millisecond)
		r.a.ChargeProc(p, 0) // no-op
		took = p.Now().Sub(start)
	})
	if err := r.s.Run(); err != nil {
		t.Fatal(err)
	}
	if took != 5*time.Millisecond {
		t.Fatalf("charged %v", took)
	}
	if r.a.CPU.BusyTime() != 5*time.Millisecond {
		t.Fatalf("cpu busy %v", r.a.CPU.BusyTime())
	}
}

func TestEgressFilterBlocksTraffic(t *testing.T) {
	r := newRig(costs.DECLibrarySHMIPF())
	// Allow only UDP to port 53 out of host A; everything else is dropped
	// before reaching the wire (the paper's §3.4 packet-limiting idea).
	eg := filter.NewSet()
	if _, err := eg.Install(filter.Compile(filter.MatchSpec{
		Proto: wire.ProtoUDP, RemoteIP: r.a.IP, RemotePort: 9000,
	}), filter.MatchSpec{}, 0, nil); err != nil {
		t.Fatal(err)
	}
	r.a.SetEgress(eg)

	allowed := testFrame(r.b.NIC.MAC(), wire.ProtoUDP, r.a.IP, r.b.IP, 9000, 53, 10)
	blocked := testFrame(r.b.NIC.MAC(), wire.ProtoTCP, r.a.IP, r.b.IP, 1234, 80, 10)
	if err := r.a.Transmit(allowed); err != nil {
		t.Fatal(err)
	}
	if err := r.a.Transmit(blocked); err != nil {
		t.Fatal(err)
	}
	if err := r.s.RunFor(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if r.a.TxBlocked.Value() != 1 {
		t.Fatalf("blocked = %d, want 1", r.a.TxBlocked.Value())
	}
	if r.b.RxFrames.Value() != 1 {
		t.Fatalf("frames on wire = %d, want 1 (TCP frame must not escape)", r.b.RxFrames.Value())
	}
}
