package kern

import (
	"fmt"

	"repro/internal/sim"
)

// Process is a simulated address space on a host. Threads are sim.Procs
// spawned through the process so that exit can be observed; protocol
// state owned by the process (library sessions) is cleaned up through
// exit watchers, which is how the operating-system server learns that it
// must abort orphaned connections.
type Process struct {
	Host *Host
	PID  int
	Name string

	exited  bool
	onExit  []func()
	threads int
}

// NewProcess creates a process on the host.
func (h *Host) NewProcess(name string) *Process {
	p := &Process{Host: h, PID: h.nextPID, Name: fmt.Sprintf("%s/%s", h.Name, name)}
	h.nextPID++
	h.procs[p.PID] = p
	return p
}

// Exited reports whether the process has exited.
func (p *Process) Exited() bool { return p.exited }

// OnExit registers a callback to run when the process exits (the kernel's
// death notification). Registering on an exited process runs the callback
// immediately.
func (p *Process) OnExit(fn func()) {
	if p.exited {
		fn()
		return
	}
	p.onExit = append(p.onExit, fn)
}

// Exit terminates the process: death notifications fire synchronously.
// Threads are not forcibly descheduled (the simulation has no preemption
// to model); long-running service threads must be registered to stop via
// OnExit.
func (p *Process) Exit() {
	if p.exited {
		return
	}
	p.exited = true
	delete(p.Host.procs, p.PID)
	for _, fn := range p.onExit {
		fn()
	}
	p.onExit = nil
}

// Go spawns a foreground thread in this process.
func (p *Process) Go(name string, body func(t *sim.Proc)) *sim.Proc {
	p.threads++
	return p.Host.Sim.Spawn(p.Name+"."+name, func(t *sim.Proc) {
		defer func() { p.threads-- }()
		body(t)
	})
}

// GoDaemon spawns a daemon (service) thread in this process.
func (p *Process) GoDaemon(name string, body func(t *sim.Proc)) *sim.Proc {
	return p.Host.Sim.SpawnDaemon(p.Name+"."+name, body)
}

// Processes returns the number of live processes on the host.
func (h *Host) Processes() int { return len(h.procs) }
