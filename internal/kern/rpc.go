package kern

import (
	"fmt"

	"repro/internal/sim"
)

// Service is a synchronous RPC port in the style of Mach IPC, used for
// the proxy calls between protocol libraries and the operating-system
// server, and for the data-path RPCs of the server-based baseline.
// Callers block until a server worker executes the handler and replies.
type Service struct {
	Name    string
	host    *Host
	queue   *sim.Chan[*call]
	handler func(t *sim.Proc, method string, args any) (any, error)
}

type call struct {
	method string
	args   any
	reply  any
	err    error
	done   bool
	doneCV sim.Cond
}

// NewService creates a service on the host and spawns `workers` daemon
// threads in the given process to serve it.
func NewService(owner *Process, name string, workers int, handler func(t *sim.Proc, method string, args any) (any, error)) *Service {
	s := &Service{
		Name:    name,
		host:    owner.Host,
		queue:   sim.NewChan[*call](0),
		handler: handler,
	}
	for i := 0; i < workers; i++ {
		s.spawnWorker(owner, fmt.Sprintf("%s-worker%d", name, i))
	}
	owner.OnExit(func() { s.queue.Close() })
	return s
}

func (s *Service) spawnWorker(owner *Process, name string) {
	owner.GoDaemon(name, func(t *sim.Proc) {
		for {
			c, ok := s.queue.Recv(t)
			if !ok {
				return
			}
			c.reply, c.err = s.handler(t, c.method, c.args)
			c.done = true
			c.doneCV.Broadcast()
		}
	})
}

// Call performs a synchronous RPC. The cost of the IPC itself is charged
// by the caller (libraries charge Profile.ProxyRPC for proxy calls; the
// server baseline's data-path costs are in its entry/exit components).
func (s *Service) Call(t *sim.Proc, method string, args any) (any, error) {
	c := &call{method: method, args: args}
	s.queue.Send(t, c)
	for !c.done {
		c.doneCV.Wait(t)
	}
	return c.reply, c.err
}

// ChargeProxyRPC charges the caller for one proxy round trip of n bytes
// of marshalled arguments, per the host profile.
func (h *Host) ChargeProxyRPC(t *sim.Proc, n int) {
	h.ChargeProc(t, h.Prof.ProxyRPC.At(n))
}
