package kern

import (
	"fmt"

	"repro/internal/costs"
	"repro/internal/filter"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// DefaultEndpointDepth is the default packet queue depth for an endpoint:
// the shared ring (SHM modes) or port queue (IPC mode). Arriving packets
// are dropped when the queue is full, as on the real interfaces.
const DefaultEndpointDepth = 512

// Packet is a received frame queued at an endpoint.
type Packet struct {
	Frame   []byte
	Arrived sim.Time
	Payload int // transport payload length, for cost accounting
}

// Endpoint is a packet delivery target: the kernel side of a packet
// filter port (IPC mode) or shared ring (SHM modes). One endpoint may
// have several filters installed (for example, an OS server's fallback
// endpoint).
type Endpoint struct {
	host    *Host
	queue   []Packet // ring: live packets are queue[head:]
	head    int
	depth   int
	avail   sim.Cond
	filters []int
	closed  bool

	Delivered metrics.Counter
	Drops     metrics.Counter
}

// pending returns the number of queued packets.
func (e *Endpoint) pending() int { return len(e.queue) - e.head }

// pop removes the head packet; the caller has checked pending() > 0. The
// head index resets when the queue drains, so the steady state reuses the
// same backing array instead of allocating per packet.
func (e *Endpoint) pop() Packet {
	pkt := e.queue[e.head]
	e.queue[e.head] = Packet{}
	e.head++
	if e.head == len(e.queue) {
		e.queue = e.queue[:0]
		e.head = 0
	}
	return pkt
}

// NewEndpoint creates an endpoint with the given queue depth (0 means
// DefaultEndpointDepth).
func (h *Host) NewEndpoint(depth int) *Endpoint {
	if depth <= 0 {
		depth = DefaultEndpointDepth
	}
	e := &Endpoint{host: h, depth: depth}
	h.endpoints = append(h.endpoints, e)
	return e
}

// InstallFilter compiles spec and installs it for this endpoint at the
// given priority. It returns the filter ID.
func (e *Endpoint) InstallFilter(spec filter.MatchSpec, priority int) (int, error) {
	f, err := e.host.Filters.Install(filter.Compile(spec), spec, priority, e)
	if err != nil {
		return 0, err
	}
	e.filters = append(e.filters, f.ID)
	return f.ID, nil
}

// InstallProgram installs a raw filter program (used for the catch-all
// fallback filters).
func (e *Endpoint) InstallProgram(prog filter.Program, priority int) (int, error) {
	f, err := e.host.Filters.Install(prog, filter.MatchSpec{}, priority, e)
	if err != nil {
		return 0, err
	}
	e.filters = append(e.filters, f.ID)
	return f.ID, nil
}

// CatchAllProgram accepts every frame; OS servers and in-kernel stacks
// install it at low priority to receive everything sessions don't claim.
func CatchAllProgram() filter.Program {
	return filter.Program{{Op: filter.OpPushLit, Arg: 1}, {Op: filter.OpRet}}
}

// RemoveFilter uninstalls one filter by ID.
func (e *Endpoint) RemoveFilter(id int) {
	e.host.Filters.Remove(id)
	for i, fid := range e.filters {
		if fid == id {
			e.filters = append(e.filters[:i], e.filters[i+1:]...)
			return
		}
	}
}

// Close uninstalls all filters and wakes any blocked receivers, which
// will see ok=false.
func (e *Endpoint) Close() {
	for _, id := range e.filters {
		e.host.Filters.Remove(id)
	}
	e.filters = nil
	e.closed = true
	e.avail.Broadcast()
}

// deliver runs in event (interrupt) context after the delivery copy has
// been charged.
func (e *Endpoint) deliver(h *Host, f simnet.Frame, payload int) {
	if e.closed {
		return
	}
	if e.pending() >= e.depth {
		e.Drops.Inc()
		h.RxDropped.Inc()
		return
	}
	e.queue = append(e.queue, Packet{Frame: f.Data, Arrived: h.Sim.Now(), Payload: payload})
	e.Delivered.Inc()
	h.DeliveryBytes.Add(uint64(payload))
	switch h.Prof.Delivery {
	case costs.DeliverIPC:
		h.DeliveredIPC.Inc()
	case costs.DeliverSHM:
		h.DeliveredSHM.Inc()
	case costs.DeliverSHMIPF:
		h.DeliveredSHMIPF.Inc()
	}
	h.mQueueDepth.Observe(int64(e.pending()))
	e.avail.Signal()
}

// Recv dequeues the next packet, blocking until one arrives or the
// endpoint closes. In IPC delivery mode each dequeue pays the per-message
// receive cost; in the shared-memory modes the ring is drained directly.
func (e *Endpoint) Recv(p *sim.Proc) (Packet, bool) {
	waited := false
	for e.pending() == 0 && !e.closed {
		waited = true
		e.avail.Wait(p)
	}
	if e.pending() == 0 {
		return Packet{}, false
	}
	if waited {
		// How many packets accumulated while this receiver slept — the
		// effective wakeup batch size.
		e.host.Wakeups.Inc()
		e.host.mWakeBatch.Observe(int64(e.pending()))
	}
	pkt := e.pop()
	e.host.mRxWait.Observe(int64(e.host.Sim.Now().Sub(pkt.Arrived)))
	if e.host.Prof.Delivery == costs.DeliverIPC {
		if c := e.host.Prof.IPCRecvPerPacket.At(pkt.Payload); c > 0 {
			e.host.ChargeProc(p, c)
		}
	}
	return pkt, true
}

// TryRecv dequeues a packet if one is queued, without blocking.
func (e *Endpoint) TryRecv(p *sim.Proc) (Packet, bool) {
	if e.pending() == 0 {
		return Packet{}, false
	}
	return e.Recv(p)
}

// Pending returns the number of queued packets.
func (e *Endpoint) Pending() int { return e.pending() }

func (e *Endpoint) String() string {
	return fmt.Sprintf("endpoint(%s, %d queued, %d filters)", e.host.Name, e.pending(), len(e.filters))
}
