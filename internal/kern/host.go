// Package kern simulates the host operating-system substrate the paper's
// protocol architecture runs on: a uniprocessor with a network device,
// a kernel packet filter with three user/kernel delivery interfaces
// (per-packet IPC, shared-memory ring, and the driver-integrated filter),
// Mach-style synchronous RPC for the proxy calls, and processes with
// death notification.
//
// All CPU work is charged in virtual time against the host's single CPU
// resource; interrupt-level work (device receive, packet filter, packet
// delivery) queue-jumps task-level work, mirroring the paper's
// uniprocessor hosts.
package kern

import (
	"time"

	"repro/internal/costs"
	"repro/internal/filter"
	"repro/internal/metrics"
	"repro/internal/offload"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Host is one simulated machine.
type Host struct {
	Sim  *sim.Sim
	Name string
	CPU  sim.Resource

	// Prof is the cost profile of the system configuration this host is
	// running; it prices the device and delivery components charged here.
	Prof costs.Profile

	IP  wire.IPAddr
	NIC *simnet.NIC

	// Offload is the simulated NIC offload engine, attached when the
	// profile's Offload.Enabled is set. It sits between the NIC and the
	// host: transmitted frames go through it (TSO slicing, checksum
	// fill) and received frames pass its LRO/verify/moderation stage
	// before the device-interrupt path runs.
	Offload *offload.Engine

	Filters   *filter.Set
	egress    *filter.Set
	hook      filter.Hook
	endpoints []*Endpoint

	nextPID int
	procs   map[int]*Process

	// Meter, when set, receives every kernel-side receive-path charge for
	// the Table 4 per-layer breakdown.
	Meter Meter

	// Trace, when set, records packet-filter verdicts (match with filter
	// ID and bytes examined, or miss) on the flight recorder.
	Trace *trace.Recorder

	// Stats.
	RxFrames      metrics.Counter
	RxNoMatch     metrics.Counter // packet filter misses
	RxDropped     metrics.Counter // endpoint queue overflows
	TxBlocked     metrics.Counter // frames rejected by the egress filter
	DeliveryBytes metrics.Counter
	FilterMatch   metrics.Counter
	FilterSteal   metrics.Counter // matches won by a priority>0 (session) filter over the catch-all
	HookDrops     metrics.Counter // frames the data-plane hook dropped (either direction)
	HookAbsorbed  metrics.Counter // frames the data-plane hook consumed (either direction)

	// Per-interface delivery counts, by user/kernel receive interface.
	DeliveredIPC    metrics.Counter
	DeliveredSHM    metrics.Counter
	DeliveredSHMIPF metrics.Counter

	// Wakeups counts receiver sleep→wake transitions: a Recv that had to
	// block and was later signalled. Segments delivered per wakeup is
	// the architecture-comparison headline the moderation/LRO column
	// improves, so the counter lives here for every architecture.
	Wakeups metrics.Counter

	// Histograms, allocated only when SetMetrics is called; Observe on
	// nil is a single check.
	mQueueDepth *metrics.Histogram // endpoint queue occupancy after each delivery
	mRxWait     *metrics.Histogram // ns from frame arrival to Recv dequeue
	mWakeBatch  *metrics.Histogram // packets available when a blocked receiver wakes

	// mKern is the host's kern registry scope, kept so components
	// installed after SetMetrics (the data-plane hook) can bind under it.
	mKern *metrics.Scope

	freeRx []*rxJob // recycled receive-path jobs
}

// KernScope returns the host's "kern" metrics scope, or nil when metrics
// are disabled. Late-installed components (SetHook planes) bind here.
func (h *Host) KernScope() *metrics.Scope { return h.mKern }

// SetMetrics binds the host's kernel-side counters into a per-host
// registry scope and allocates the receive-path histograms. The scope
// is the host root (e.g. "host.alpha"); kern counters land under
// "<host>.kern.*", filter verdicts under "<host>.kern.filter.*", and
// the NIC under "<host>.nic.*".
func (h *Host) SetMetrics(hs *metrics.Scope) {
	if hs == nil {
		return
	}
	h.NIC.BindMetrics(hs.Sub("nic"))
	if h.Offload != nil {
		h.Offload.BindMetrics(hs.Sub("nic").Sub("offload"))
	}
	ks := hs.Sub("kern")
	h.mKern = ks
	ks.Counter("rx_frames", &h.RxFrames)
	ks.Counter("wakeups", &h.Wakeups)
	ks.Counter("rx_dropped", &h.RxDropped)
	ks.Counter("tx_blocked", &h.TxBlocked)
	ks.Counter("delivery_bytes", &h.DeliveryBytes)
	ks.Counter("delivered_ipc", &h.DeliveredIPC)
	ks.Counter("delivered_shm", &h.DeliveredSHM)
	ks.Counter("delivered_shm_ipf", &h.DeliveredSHMIPF)
	fs := ks.Sub("filter")
	fs.Counter("match", &h.FilterMatch)
	fs.Counter("miss", &h.RxNoMatch)
	fs.Counter("steal", &h.FilterSteal)
	ks.Counter("hook_drops", &h.HookDrops)
	ks.Counter("hook_absorbed", &h.HookAbsorbed)
	h.mQueueDepth = ks.Histogram("queue_depth")
	h.mRxWait = ks.Histogram("rx_wait_ns")
	h.mWakeBatch = ks.Histogram("wakeup_batch")
	ks.GaugeFunc("endpoints", func() int64 {
		live := 0
		for _, e := range h.endpoints {
			if !e.closed {
				live++
			}
		}
		return int64(live)
	})
}

// NewHost attaches a new machine to the segment.
func NewHost(s *sim.Sim, seg *simnet.Segment, name string, mac wire.MAC, ip wire.IPAddr, prof costs.Profile) *Host {
	h := &Host{
		Sim:     s,
		Name:    name,
		Prof:    prof,
		IP:      ip,
		CPU:     sim.Resource{Name: name + ".cpu"},
		Filters: filter.NewSet(),
		nextPID: 1,
		procs:   make(map[int]*Process),
	}
	h.NIC = seg.AttachNamed(name, mac)
	h.NIC.Rx = h.rx
	if prof.Offload.Enabled {
		h.Offload = offload.New(offload.Config{
			Sim:   s,
			Name:  name,
			NIC:   h.NIC,
			Up:    h.rx,
			Costs: prof.Offload,
			// Software fallback for full-FIFO frames: the checksum (or
			// GSO slicing) work lands on the host CPU at interrupt
			// priority, like the rest of the receive path.
			SW: func(d time.Duration, then func()) {
				if d <= 0 {
					then()
					return
				}
				h.CPU.UseEvent(s, sim.IntrPriority, d, then)
			},
		})
		h.NIC.Rx = h.Offload.Rx
	}
	return h
}

// ChargeProc charges d of task-priority CPU to the calling process thread.
func (h *Host) ChargeProc(p *sim.Proc, d time.Duration) {
	if d <= 0 {
		return
	}
	h.CPU.Use(p, sim.TaskPriority, d)
}

// ChargeIntrProc charges d of interrupt-priority CPU to the calling
// thread. The in-kernel baseline's software-interrupt protocol processing
// uses this so that it preempts (queue-jumps) application work.
func (h *Host) ChargeIntrProc(p *sim.Proc, d time.Duration) {
	if d <= 0 {
		return
	}
	h.CPU.Use(p, sim.IntrPriority, d)
}

// pathFor picks the per-protocol cost table for a received frame by
// peeking at the IP protocol field. Non-IP traffic (ARP) is priced with
// the UDP table, whose small-packet costs are the right magnitude.
func (h *Host) pathFor(frame []byte) *costs.PathCosts {
	const protoOff = wire.EthHeaderLen + 9
	if len(frame) > protoOff {
		eh, err := wire.UnmarshalEth(frame)
		if err == nil && eh.Type == wire.EtherTypeIPv4 && frame[protoOff] == wire.ProtoTCP {
			return &h.Prof.Costs.TCP
		}
	}
	return &h.Prof.Costs.UDP
}

// payloadLen returns the transport payload length of a frame, used to
// price per-byte costs the way Table 4 does (by message size).
func payloadLen(frame []byte) int {
	n := len(frame) - wire.EthHeaderLen - wire.IPv4HeaderLen - 8
	if n < 0 {
		n = 0
	}
	return n
}

// rxJob carries one frame through the staged receive path. Jobs are
// pooled per host, and the stage continuations are bound once at job
// construction, so the steady-state receive path schedules no new
// closures per frame.
type rxJob struct {
	h  *Host
	f  simnet.Frame
	pc *costs.PathCosts
	n  int
	ep *Endpoint

	planeFn   func() // routes through the data-plane hook after the device charge
	hookFn    func() // runs the hook's Ingress after the dataplane charge
	filterFn  func() // charges the software interrupt after the device charge
	matchFn   func() // runs the packet filter after the softint charge
	deliverFn func() // delivers to the endpoint after the copyout charge
}

func (h *Host) getRxJob() *rxJob {
	if n := len(h.freeRx); n > 0 {
		j := h.freeRx[n-1]
		h.freeRx[n-1] = nil
		h.freeRx = h.freeRx[:n-1]
		return j
	}
	j := &rxJob{h: h}
	j.planeFn = j.plane
	j.hookFn = j.runHook
	j.filterFn = j.filter
	j.matchFn = j.match
	j.deliverFn = j.deliver
	return j
}

func (h *Host) putRxJob(j *rxJob) {
	j.f, j.pc, j.ep = simnet.Frame{}, nil, nil
	h.freeRx = append(h.freeRx, j)
}

// rx is the NIC receive callback: it models the device interrupt, the
// packet filter, and delivery into the matching endpoint's queue. It runs
// entirely at interrupt priority on the host CPU.
func (h *Host) rx(f simnet.Frame) {
	h.RxFrames.Inc()
	j := h.getRxJob()
	j.f = f
	j.pc = h.pathFor(f.Data)
	j.n = payloadLen(f.Data)
	// Device interrupt; for non-integrated configurations this includes
	// the copy from device memory into a kernel buffer. Then the
	// data-plane hook (if installed) and a software interrupt that
	// demultiplexes via the packet filter.
	h.chargeRx(costs.CompDeviceIntrRead, j.pc[costs.CompDeviceIntrRead].At(j.n), j.planeFn)
}

// plane routes the frame through the data-plane hook stage: the hook's
// traversal cost is charged first (rule chain + conntrack/NAT work),
// then runHook applies its effects. Hosts without a hook fall straight
// through to the software interrupt.
func (j *rxJob) plane() {
	h := j.h
	if h.hook == nil {
		j.filter()
		return
	}
	h.chargeRx(costs.CompDataplane, h.hook.IngressCost(j.f.Data), j.hookFn)
}

// runHook applies the hook's ingress verdict: drop and absorb terminate
// the receive path here; pass continues (with the rewritten frame, if
// the hook produced one) into the packet-filter stage.
func (j *rxJob) runHook() {
	h := j.h
	nf, v := h.hook.Ingress(j.f.Data)
	switch v {
	case filter.VerdictDrop:
		h.HookDrops.Inc()
		h.putRxJob(j)
		return
	case filter.VerdictAbsorb:
		h.HookAbsorbed.Inc()
		h.putRxJob(j)
		return
	}
	if nf != nil {
		j.f.Data = nf
		j.pc = h.pathFor(nf)
		j.n = payloadLen(nf)
	}
	j.filter()
}

// filter charges the software-interrupt stage.
func (j *rxJob) filter() {
	j.h.chargeRx(costs.CompNetisrPF, j.pc[costs.CompNetisrPF].At(j.n), j.matchFn)
}

// match runs the packet filter and, on a hit, charges the delivery copy.
func (j *rxJob) match() {
	h := j.h
	m, examined := h.Filters.Match(j.f.Data)
	if m == nil {
		h.RxNoMatch.Inc()
		if h.Trace.On(trace.LayerFilter) {
			h.Trace.Emit(trace.LayerFilter, trace.EvFilterMiss, h.Name, "", "", 0, int64(examined), 0)
		}
		h.putRxJob(j)
		return
	}
	h.FilterMatch.Inc()
	if m.Priority > 0 {
		// A session filter outbid the catch-all: the packet was "stolen"
		// from the OS server's fallback path.
		h.FilterSteal.Inc()
	}
	if h.Trace.On(trace.LayerFilter) {
		h.Trace.Emit(trace.LayerFilter, trace.EvFilterMatch, h.Name, "", "", int64(m.ID), int64(examined), 0)
	}
	j.ep = m.Owner.(*Endpoint)
	// Delivery: copy into the endpoint (IPC message, shared ring,
	// or the integrated filter's direct copy). Zero for the
	// in-kernel baseline, whose stack reads the kernel buffer.
	h.chargeRx(costs.CompKernelCopyout, j.pc[costs.CompKernelCopyout].At(j.n), j.deliverFn)
}

// deliver queues the frame at the matched endpoint and recycles the job.
func (j *rxJob) deliver() {
	j.ep.deliver(j.h, j.f, j.n)
	j.h.putRxJob(j)
}

// chargeRx charges one receive-path component at interrupt priority and
// then continues, metering the charge if a Meter is installed. Zero-cost
// components continue immediately without touching the CPU.
func (h *Host) chargeRx(comp costs.Component, d time.Duration, then func()) {
	if h.Meter != nil && d > 0 {
		h.Meter.Account(comp, d)
	}
	if d == 0 {
		then()
		return
	}
	h.CPU.UseEvent(h.Sim, sim.IntrPriority, d, then)
}

// Meter is implemented by stacks that attribute per-layer costs for the
// Table 4 reproduction. The host-level receive components are attributed
// by the endpoint at delivery time instead, since the stack never sees
// them directly.
type Meter interface {
	Account(comp costs.Component, d time.Duration)
}

// Inject runs a frame through the host's receive path as if it had just
// arrived from the wire: device charge, packet filter, delivery. The OS
// server uses it to hand reassembled datagrams back to the filter set so
// a migrated session's filter can claim them.
func (h *Host) Inject(frame []byte) {
	h.rx(simnet.Frame{Data: frame})
}

// Egress, when non-nil, is the outbound packet filter the paper's §3.4
// suggests ("a packet limiting mechanism ... could be implemented by
// checking each outgoing packet using a service similar to the packet
// filter"): a frame accepted by no installed program is dropped instead
// of transmitted. Installed by the operating system; applications cannot
// bypass it because their only path to the wire is this transmit call.
func (h *Host) SetEgress(s *filter.Set) { h.egress = s }

// SetHook installs (or, with nil, removes) the host's data-plane hook.
// The hook sees every received frame between the device interrupt and
// the demultiplexing packet filter, and every locally-originated frame
// before the egress filter — on all architectures, since each is built
// on this host substrate.
func (h *Host) SetHook(hk filter.Hook) { h.hook = hk }

// Hook returns the installed data-plane hook, or nil.
func (h *Host) Hook() filter.Hook { return h.hook }

// Transmit sends a frame, subject to the data-plane hook's egress stage
// and the egress filter. Deployments use this as the stack's transmit
// function. The egress hook runs synchronously (locally-originated
// frames were already priced by the stack's send components) and owns
// the frame, so un-NAT rewrites happen in place.
func (h *Host) Transmit(frame []byte) error {
	if h.hook != nil {
		nf, v := h.hook.Egress(frame)
		switch v {
		case filter.VerdictDrop:
			h.HookDrops.Inc()
			return nil
		case filter.VerdictAbsorb:
			h.HookAbsorbed.Inc()
			return nil
		}
		if nf != nil {
			frame = nf
		}
	}
	if h.egress != nil {
		if m, _ := h.egress.Match(frame); m == nil {
			h.TxBlocked.Inc()
			return nil // silently dropped, like a firewall
		}
	}
	return h.RawTransmit(frame)
}

// RawTransmit bypasses the egress hook and filter — the path data-plane
// hooks use for frames they originate or forward (hairpinned rewrites,
// ARP replies), mirroring netfilter's FORWARD-vs-OUTPUT distinction.
// When an offload engine is attached it goes through it, so forwarded
// LRO super-segments are re-sliced instead of rejected by the MTU check.
func (h *Host) RawTransmit(frame []byte) error {
	if h.Offload != nil {
		return h.Offload.Transmit(frame)
	}
	return h.NIC.Transmit(frame)
}
