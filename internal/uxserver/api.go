package uxserver

import (
	"time"

	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/socketapi"
	"repro/internal/stack"
)

// API is the per-process socket interface: a thin shim translating each
// socket call into an RPC on the protocol server, exactly as the UX
// emulation library does. Descriptors map to server-side handles.
type API struct {
	sys  *System
	Proc *kern.Process
	fds  map[int]int // fd -> server handle
	next int
}

var _ socketapi.API = (*API)(nil)
var _ socketapi.ZeroCopyAPI = (*API)(nil)

// NewAPI creates an application process bound to the server.
func (sys *System) NewAPI(name string) *API {
	return &API{sys: sys, Proc: sys.Host.NewProcess(name), fds: make(map[int]int), next: 3}
}

func (a *API) call(t *sim.Proc, method string, args any) (any, error) {
	return a.sys.svc.Call(t, method, args)
}

func (a *API) lookup(fd int) (int, error) {
	h, ok := a.fds[fd]
	if !ok {
		return 0, socketapi.ErrBadFD
	}
	return h, nil
}

// Socket implements socketapi.API.
func (a *API) Socket(t *sim.Proc, typ int) (int, error) {
	rep, err := a.call(t, "socket", sockArgs{typ: typ})
	if err != nil {
		return -1, err
	}
	fd := a.next
	a.next++
	a.fds[fd] = rep.(int)
	return fd, nil
}

// Bind implements socketapi.API.
func (a *API) Bind(t *sim.Proc, fd int, addr socketapi.SockAddr) error {
	h, err := a.lookup(fd)
	if err != nil {
		return err
	}
	_, err = a.call(t, "bind", addrArgs{h: h, addr: toStack(addr)})
	return err
}

// Connect implements socketapi.API.
func (a *API) Connect(t *sim.Proc, fd int, addr socketapi.SockAddr) error {
	h, err := a.lookup(fd)
	if err != nil {
		return err
	}
	_, err = a.call(t, "connect", addrArgs{h: h, addr: toStack(addr)})
	return err
}

// Listen implements socketapi.API.
func (a *API) Listen(t *sim.Proc, fd int, backlog int) error {
	h, err := a.lookup(fd)
	if err != nil {
		return err
	}
	_, err = a.call(t, "listen", fdArgs{h: h, n: backlog})
	return err
}

// Accept implements socketapi.API.
func (a *API) Accept(t *sim.Proc, fd int) (int, socketapi.SockAddr, error) {
	h, err := a.lookup(fd)
	if err != nil {
		return -1, socketapi.SockAddr{}, err
	}
	rep, err := a.call(t, "accept", fdArgs{h: h})
	if err != nil {
		return -1, socketapi.SockAddr{}, err
	}
	r := rep.(acceptReply)
	nfd := a.next
	a.next++
	a.fds[nfd] = r.h
	return nfd, socketapi.SockAddr{Addr: r.peer.IP, Port: r.peer.Port}, nil
}

// Send implements socketapi.API.
func (a *API) Send(t *sim.Proc, fd int, b []byte, flags int) (int, error) {
	return a.SendMsg(t, fd, [][]byte{b}, flags, nil)
}

// SendTo implements socketapi.API.
func (a *API) SendTo(t *sim.Proc, fd int, b []byte, flags int, to socketapi.SockAddr) (int, error) {
	return a.SendMsg(t, fd, [][]byte{b}, flags, &to)
}

// SendMsg implements socketapi.API.
func (a *API) SendMsg(t *sim.Proc, fd int, iov [][]byte, flags int, to *socketapi.SockAddr) (int, error) {
	h, err := a.lookup(fd)
	if err != nil {
		return 0, err
	}
	args := sendArgs{h: h, iov: iov, oob: flags&socketapi.MsgOOB != 0}
	if to != nil {
		sa := toStack(*to)
		args.to = &sa
	}
	rep, err := a.call(t, "send", args)
	if err != nil {
		return 0, err
	}
	return rep.(int), nil
}

// Recv implements socketapi.API.
func (a *API) Recv(t *sim.Proc, fd int, b []byte, flags int) (int, error) {
	n, _, err := a.RecvFrom(t, fd, b, flags)
	return n, err
}

// RecvFrom implements socketapi.API.
func (a *API) RecvFrom(t *sim.Proc, fd int, b []byte, flags int) (int, socketapi.SockAddr, error) {
	h, err := a.lookup(fd)
	if err != nil {
		return 0, socketapi.SockAddr{}, err
	}
	rep, err := a.call(t, "recv", recvArgs{
		h: h, max: len(b),
		oob:  flags&socketapi.MsgOOB != 0,
		peek: flags&socketapi.MsgPeek != 0,
	})
	if err != nil {
		return 0, socketapi.SockAddr{}, err
	}
	r := rep.(recvReply)
	n := copy(b, r.data)
	return n, socketapi.SockAddr{Addr: r.from.IP, Port: r.from.Port}, nil
}

// RecvMsg implements socketapi.API.
func (a *API) RecvMsg(t *sim.Proc, fd int, iov [][]byte, flags int) (int, socketapi.SockAddr, error) {
	total := 0
	var from socketapi.SockAddr
	for i, b := range iov {
		n, f, err := a.RecvFrom(t, fd, b, flags)
		if i == 0 {
			from = f
		}
		total += n
		if err != nil {
			return total, from, err
		}
		if n < len(b) {
			break
		}
	}
	return total, from, nil
}

// Close implements socketapi.API.
func (a *API) Close(t *sim.Proc, fd int) error {
	h, err := a.lookup(fd)
	if err != nil {
		return err
	}
	delete(a.fds, fd)
	_, err = a.call(t, "close", fdArgs{h: h})
	return err
}

// Shutdown implements socketapi.API.
func (a *API) Shutdown(t *sim.Proc, fd int, how int) error {
	h, err := a.lookup(fd)
	if err != nil {
		return err
	}
	_, err = a.call(t, "shutdown", fdArgs{h: h, n: how})
	return err
}

// SetSockOpt implements socketapi.API.
func (a *API) SetSockOpt(t *sim.Proc, fd int, opt, value int) error {
	h, err := a.lookup(fd)
	if err != nil {
		return err
	}
	_, err = a.call(t, "setopt", optArgs{h: h, opt: opt, value: value})
	return err
}

// GetSockOpt implements socketapi.API.
func (a *API) GetSockOpt(t *sim.Proc, fd int, opt int) (int, error) {
	h, err := a.lookup(fd)
	if err != nil {
		return 0, err
	}
	rep, err := a.call(t, "getopt", optArgs{h: h, opt: opt})
	if err != nil {
		return 0, err
	}
	return rep.(int), nil
}

// GetSockName implements socketapi.API.
func (a *API) GetSockName(t *sim.Proc, fd int) (socketapi.SockAddr, error) {
	return a.nameCall(t, fd, "sockname")
}

// GetPeerName implements socketapi.API.
func (a *API) GetPeerName(t *sim.Proc, fd int) (socketapi.SockAddr, error) {
	return a.nameCall(t, fd, "peername")
}

func (a *API) nameCall(t *sim.Proc, fd int, method string) (socketapi.SockAddr, error) {
	h, err := a.lookup(fd)
	if err != nil {
		return socketapi.SockAddr{}, err
	}
	rep, err := a.call(t, method, fdArgs{h: h})
	if err != nil {
		return socketapi.SockAddr{}, err
	}
	addr := rep.(stack.Addr)
	return socketapi.SockAddr{Addr: addr.IP, Port: addr.Port}, nil
}

// toStack converts an API socket address to the stack's representation.
func toStack(a socketapi.SockAddr) stack.Addr {
	return stack.Addr{IP: a.Addr, Port: a.Port}
}

// Select implements socketapi.API: the whole select executes in the
// server, which owns every descriptor.
func (a *API) Select(t *sim.Proc, read, write socketapi.FDSet, timeout time.Duration) (socketapi.FDSet, socketapi.FDSet, error) {
	args := selectArgs{timeout: timeout}
	h2fd := make(map[int]int)
	for fd := range read {
		if h, ok := a.fds[fd]; ok {
			args.read = append(args.read, h)
			h2fd[h] = fd
		}
	}
	for fd := range write {
		if h, ok := a.fds[fd]; ok {
			args.write = append(args.write, h)
			h2fd[h] = fd
		}
	}
	rep, err := a.call(t, "select", args)
	if err != nil {
		return nil, nil, err
	}
	r := rep.(selectReply)
	rset, wset := socketapi.FDSet{}, socketapi.FDSet{}
	for _, h := range r.read {
		rset[h2fd[h]] = true
	}
	for _, h := range r.write {
		wset[h2fd[h]] = true
	}
	return rset, wset, nil
}

// Fork implements socketapi.API: the child references the same server
// handles.
func (a *API) Fork(t *sim.Proc, childName string) (socketapi.API, error) {
	child := &API{
		sys:  a.sys,
		Proc: a.sys.Host.NewProcess(childName),
		fds:  make(map[int]int, len(a.fds)),
		next: a.next,
	}
	for fd, h := range a.fds {
		if _, err := a.call(t, "dup", fdArgs{h: h}); err != nil {
			return nil, err
		}
		child.fds[fd] = h
	}
	return child, nil
}

// ExitProcess implements socketapi.API.
func (a *API) ExitProcess(t *sim.Proc) {
	for fd := range a.fds {
		a.Close(t, fd)
	}
	a.Proc.Exit()
}

// SendZC implements socketapi.ZeroCopyAPI. A server-based implementation
// cannot share buffers with the application, so this is the copying path.
func (a *API) SendZC(t *sim.Proc, fd int, b []byte, flags int) (int, error) {
	return a.Send(t, fd, b, flags)
}

// RecvZC implements socketapi.ZeroCopyAPI (copying fallback, see SendZC).
func (a *API) RecvZC(t *sim.Proc, fd int, max int, flags int) ([]byte, socketapi.SockAddr, error) {
	buf := make([]byte, max)
	n, from, err := a.RecvFrom(t, fd, buf, flags)
	return buf[:n], from, err
}

var _ socketapi.ChainAPI = (*API)(nil)

// SendChain implements socketapi.ChainAPI. The chain's segments cross
// the RPC boundary as a gather list; the server's socket layer copies
// them (a server cannot alias application memory), so this is the
// copying path with scatter-gather framing.
func (a *API) SendChain(t *sim.Proc, fd int, c *mbuf.Chain, flags int) (int, error) {
	h, err := a.lookup(fd)
	if err != nil {
		if c != nil {
			c.Release()
		}
		return 0, err
	}
	var iov [][]byte
	if c != nil {
		for it := c.Iter(); ; {
			b, ok := it.Next()
			if !ok {
				break
			}
			iov = append(iov, b)
		}
	}
	rep, err := a.call(t, "send", sendArgs{h: h, iov: iov, oob: flags&socketapi.MsgOOB != 0})
	if c != nil {
		c.Release()
	}
	if err != nil {
		return 0, err
	}
	return rep.(int), nil
}

// RecvPeek implements socketapi.ChainAPI: the peeked bytes are copied
// out of the server in the RPC reply (same copy the BSD path pays),
// and the requested ranges are sliced from that private copy.
func (a *API) RecvPeek(t *sim.Proc, fd int, max int, ranges []socketapi.Range) (socketapi.RecvView, error) {
	h, err := a.lookup(fd)
	if err != nil {
		return socketapi.RecvView{}, err
	}
	if max <= 0 {
		if max, err = a.GetSockOpt(t, fd, socketapi.SoRcvBuf); err != nil {
			return socketapi.RecvView{}, err
		}
	}
	rep, err := a.call(t, "recv", recvArgs{h: h, max: max, peek: true})
	if err != nil {
		return socketapi.RecvView{}, err
	}
	r := rep.(recvReply)
	view := mbuf.FromBytes(r.data)
	return socketapi.RecvView{
		Chain:  view,
		Copied: socketapi.MaterializeRanges(view, ranges),
		From:   socketapi.SockAddr{Addr: r.from.IP, Port: r.from.Port},
	}, nil
}

// RecvRelease implements socketapi.ChainAPI: consuming queued bytes
// happens inside the server, no data crosses back.
func (a *API) RecvRelease(t *sim.Proc, fd int, n int) error {
	h, err := a.lookup(fd)
	if err != nil {
		return err
	}
	_, err = a.call(t, "discard", fdArgs{h: h, n: n})
	return err
}

// Splice implements socketapi.ChainAPI: one RPC sets up a pump between
// two server-resident sockets. The forwarded payload never leaves the
// server's address space — the strongest case for the server
// architecture, and the path the proxy benchmark measures.
func (a *API) Splice(t *sim.Proc, dstFD, srcFD int, n int) (int, error) {
	dh, err := a.lookup(dstFD)
	if err != nil {
		return 0, err
	}
	sh, err := a.lookup(srcFD)
	if err != nil {
		return 0, err
	}
	rep, err := a.call(t, "splice", spliceArgs{dh: dh, sh: sh, n: n})
	if err != nil {
		return 0, err
	}
	return rep.(int), nil
}
