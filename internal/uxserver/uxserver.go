// Package uxserver implements the paper's server-based baseline (CMU's UX
// single server, BNR2SS): the entire protocol stack runs in one
// user-level server process, and every application socket call is a
// synchronous RPC into it.
//
// The performance character the paper measures — four data copies per
// send/receive RPC and heavyweight priority-level synchronization inside
// the server — is priced by the server column of the cost model
// (costs.DECServerUX and derivatives) as the stack runs; this package
// contributes the structure: one more address space on the path, a
// server-side network input thread at task (not interrupt) priority, and
// a bounded worker pool serving application RPCs.
package uxserver

import (
	"time"

	"repro/internal/costs"
	"repro/internal/kern"
	"repro/internal/metrics"
	"repro/internal/offload"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/socketapi"
	"repro/internal/stack"
	"repro/internal/trace"
	"repro/internal/wire"
)

// workerPool is the number of server threads available to serve
// application RPCs; blocking calls (accept, recv) occupy one each.
const workerPool = 32

// System is one host running a protocol server.
type System struct {
	Host *kern.Host
	Proc *kern.Process // the server process
	St   *stack.Stack
	svc  *kern.Service

	handles map[int]*handle
	nextH   int
	selCond sim.Cond

	// Observer, when set, receives every protocol-layer charge (Table 4
	// instrumentation).
	Observer func(comp costs.Component, d time.Duration)
}

// SetTrace attaches a flight recorder to the system: the kernel host's
// packet-filter layer and the server's protocol stack.
func (sys *System) SetTrace(r *trace.Recorder) {
	sys.Host.Trace = r
	sys.St.SetTrace(r)
}

// SetMetrics attaches a registry scope (e.g. "host.alpha") to the
// system: kernel host counters plus the network server's stack.
func (sys *System) SetMetrics(hs *metrics.Scope) {
	if hs == nil {
		return
	}
	sys.Host.SetMetrics(hs)
	sys.St.SetMetrics(hs.Sub("stack").Sub("uxstack"))
}

// handle is a server-side session handle, shared across fork.
type handle struct {
	sock *stack.Socket
	refs int
}

// New attaches a host whose protocols are served by a user-level server.
func New(s *sim.Sim, seg *simnet.Segment, name string, mac wire.MAC, ip wire.IPAddr, prof costs.Profile) *System {
	sys := &System{handles: make(map[int]*handle), nextH: 1}
	sys.Host = kern.NewHost(s, seg, name, mac, ip, prof)
	sys.Proc = sys.Host.NewProcess("uxserver")

	ep := sys.Host.NewEndpoint(0)
	if _, err := ep.InstallProgram(kern.CatchAllProgram(), 0); err != nil {
		panic(err)
	}

	sys.St = stack.New(stack.Config{
		Sim:      s,
		Name:     name + ".uxstack",
		LocalIP:  ip,
		LocalMAC: sys.Host.NIC.MAC(),
		Costs:    &sys.Host.Prof.Costs,
		Charge: func(t *sim.Proc, tcp bool, comp costs.Component, n int) {
			pc := &sys.Host.Prof.Costs.UDP
			if tcp {
				pc = &sys.Host.Prof.Costs.TCP
			}
			d := pc[comp].At(n)
			if sys.Observer != nil && d > 0 {
				sys.Observer(comp, d)
			}
			// Everything runs at task priority: the server is an ordinary
			// process, which is part of why its latency is worse.
			sys.Host.ChargeProc(t, d)
		},
		Transmit:      sys.Host.Transmit,
		Ports:         stack.NewLocalPorts(),
		MaxTCPPayload: quirkMax(prof),

		// NIC offload engine hookup (profiles that enable it).
		TSOMaxPayload:   offload.TSOFor(sys.Host.Prof),
		ChecksumOffload: sys.Host.Prof.Offload.Enabled,
	})

	// Network input thread (task priority, competing with RPC workers).
	sys.Proc.GoDaemon("netin", func(t *sim.Proc) {
		for {
			pkt, ok := ep.Recv(t)
			if !ok {
				return
			}
			sys.St.Input(t, pkt.Frame)
		}
	})
	sys.St.StartTimers(sys.Proc.GoDaemon)
	sys.svc = kern.NewService(sys.Proc, name+".ux", workerPool, sys.handle)
	return sys
}

func quirkMax(prof costs.Profile) int {
	if prof.LargeTCPSendBroken {
		return 1024
	}
	return 0
}

func (sys *System) getHandle(h int) (*handle, error) {
	e, ok := sys.handles[h]
	if !ok {
		return nil, socketapi.ErrBadFD
	}
	return e, nil
}

func (sys *System) newHandle(s *stack.Socket) int {
	h := sys.nextH
	sys.nextH++
	sys.handles[h] = &handle{sock: s, refs: 1}
	s.Notify = func() { sys.selCond.Broadcast() }
	return h
}

// RPC argument/reply types.

type sockArgs struct{ typ int }
type addrArgs struct {
	h    int
	addr stack.Addr
}
type fdArgs struct {
	h int
	n int
}
type sendArgs struct {
	h   int
	iov [][]byte
	oob bool
	to  *stack.Addr
}
type recvArgs struct {
	h    int
	max  int
	oob  bool
	peek bool
}
type recvReply struct {
	data []byte
	from stack.Addr
}
type acceptReply struct {
	h    int
	peer stack.Addr
}
type selectArgs struct {
	read, write []int
	timeout     time.Duration
}
type selectReply struct{ read, write []int }
type optArgs struct{ h, opt, value int }
type spliceArgs struct{ dh, sh, n int }

// handle dispatches one RPC inside a server worker thread.
func (sys *System) handle(t *sim.Proc, method string, args any) (any, error) {
	switch method {
	case "socket":
		a := args.(sockArgs)
		var proto uint8
		switch a.typ {
		case socketapi.SockStream:
			proto = wire.ProtoTCP
		case socketapi.SockDgram:
			proto = wire.ProtoUDP
		default:
			return nil, socketapi.ErrInvalid
		}
		return sys.newHandle(sys.St.NewSocket(proto)), nil
	case "bind":
		a := args.(addrArgs)
		e, err := sys.getHandle(a.h)
		if err != nil {
			return nil, err
		}
		return nil, sys.St.Bind(e.sock, a.addr)
	case "connect":
		a := args.(addrArgs)
		e, err := sys.getHandle(a.h)
		if err != nil {
			return nil, err
		}
		return nil, sys.St.Connect(t, e.sock, a.addr)
	case "listen":
		a := args.(fdArgs)
		e, err := sys.getHandle(a.h)
		if err != nil {
			return nil, err
		}
		return nil, sys.St.Listen(e.sock, a.n)
	case "accept":
		a := args.(fdArgs)
		e, err := sys.getHandle(a.h)
		if err != nil {
			return nil, err
		}
		ns, err := sys.St.Accept(t, e.sock)
		if err != nil {
			return nil, err
		}
		return acceptReply{h: sys.newHandle(ns), peer: ns.RemoteAddr()}, nil
	case "send":
		a := args.(sendArgs)
		e, err := sys.getHandle(a.h)
		if err != nil {
			return nil, err
		}
		return sys.St.Send(t, e.sock, a.iov, stack.SendOpts{OOB: a.oob, To: a.to})
	case "recv":
		a := args.(recvArgs)
		e, err := sys.getHandle(a.h)
		if err != nil {
			return nil, err
		}
		buf := make([]byte, a.max)
		n, from, _, err := sys.St.Recv(t, e.sock, buf, stack.RecvOpts{OOB: a.oob, Peek: a.peek})
		if err != nil {
			return nil, err
		}
		return recvReply{data: buf[:n], from: from}, nil
	case "close":
		a := args.(fdArgs)
		e, err := sys.getHandle(a.h)
		if err != nil {
			return nil, err
		}
		e.refs--
		if e.refs == 0 {
			delete(sys.handles, a.h)
			return nil, sys.St.Close(t, e.sock)
		}
		return nil, nil
	case "dup":
		a := args.(fdArgs)
		e, err := sys.getHandle(a.h)
		if err != nil {
			return nil, err
		}
		e.refs++
		return nil, nil
	case "shutdown":
		a := args.(fdArgs)
		e, err := sys.getHandle(a.h)
		if err != nil {
			return nil, err
		}
		return nil, sys.St.Shutdown(t, e.sock, a.n)
	case "setopt":
		a := args.(optArgs)
		e, err := sys.getHandle(a.h)
		if err != nil {
			return nil, err
		}
		return nil, sys.St.SetOption(e.sock, a.opt, a.value)
	case "getopt":
		a := args.(optArgs)
		e, err := sys.getHandle(a.h)
		if err != nil {
			return nil, err
		}
		return sys.St.GetOption(e.sock, a.opt)
	case "sockname":
		a := args.(fdArgs)
		e, err := sys.getHandle(a.h)
		if err != nil {
			return nil, err
		}
		la := e.sock.LocalAddr()
		if la.IP.IsZero() {
			la.IP = sys.St.LocalIP()
		}
		return la, nil
	case "peername":
		a := args.(fdArgs)
		e, err := sys.getHandle(a.h)
		if err != nil {
			return nil, err
		}
		ra := e.sock.RemoteAddr()
		if ra.IsZero() {
			return nil, socketapi.ErrNotConn
		}
		return ra, nil
	case "discard":
		a := args.(fdArgs)
		e, err := sys.getHandle(a.h)
		if err != nil {
			return nil, err
		}
		return nil, sys.St.RecvRelease(t, e.sock, a.n)
	case "splice":
		// Both sockets live in the server, so the pump runs entirely
		// inside it: forwarded payload bytes are never copied out to
		// (or even mapped into) the application.
		a := args.(spliceArgs)
		de, err := sys.getHandle(a.dh)
		if err != nil {
			return nil, err
		}
		se, err := sys.getHandle(a.sh)
		if err != nil {
			return nil, err
		}
		return sys.St.Splice(t, de.sock, se.sock, a.n)
	case "select":
		a := args.(selectArgs)
		deadline := t.Now().Add(a.timeout)
		for {
			var rep selectReply
			for _, h := range a.read {
				if e, ok := sys.handles[h]; ok && e.sock.Readable() {
					rep.read = append(rep.read, h)
				}
			}
			for _, h := range a.write {
				if e, ok := sys.handles[h]; ok && e.sock.Writable() {
					rep.write = append(rep.write, h)
				}
			}
			if len(rep.read) > 0 || len(rep.write) > 0 || a.timeout == 0 {
				return rep, nil
			}
			if a.timeout < 0 {
				sys.selCond.Wait(t)
				continue
			}
			remain := deadline.Sub(t.Now())
			if remain <= 0 {
				return rep, nil
			}
			sys.selCond.WaitTimeout(t, remain)
		}
	}
	return nil, socketapi.ErrNotSupported
}
