package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/costs"
)

// Message sizes for the latency columns, as in the paper: the maximum is
// the largest unfragmented Ethernet payload (1460 for TCP with a 20-byte
// TCP header, 1472 for UDP with an 8-byte UDP header).
var (
	TCPSizes = []int{1, 100, 512, 1024, 1460}
	UDPSizes = []int{1, 100, 512, 1024, 1472}
)

// Options tunes how much work the table runners do.
type Options struct {
	LatRounds  int // round trips per latency cell
	TotalBytes int // ttcp transfer size
}

// DefaultOptions mirrors the paper closely enough for stable numbers
// while keeping runs quick.
func DefaultOptions() Options {
	return Options{LatRounds: 300, TotalBytes: ttcpTotalBytes}
}

// QuickOptions is for tests.
func QuickOptions() Options {
	return Options{LatRounds: 50, TotalBytes: 2 << 20}
}

// Table2Row is one measured row of Table 2 (or Table 3).
type Table2Row struct {
	Config     string
	Platform   string
	Throughput float64 // KB/s
	RcvBufKB   int
	TCPLat     []LatResult
	UDPLat     []LatResult
}

// RunTable2Row measures one configuration.
func RunTable2Row(cfg SysConfig, opt Options) Table2Row {
	row := Table2Row{Config: cfg.Name, Platform: cfg.Platform, RcvBufKB: cfg.RcvBufKB}
	tr := RunTTCP(cfg, cfg.RcvBufKB, opt.TotalBytes)
	row.Throughput = tr.KBps()
	if tr.Err != nil {
		row.Throughput = 0
	}
	for _, size := range TCPSizes {
		row.TCPLat = append(row.TCPLat, RunProtolat(cfg, false, size, opt.LatRounds))
	}
	for _, size := range UDPSizes {
		row.UDPLat = append(row.UDPLat, RunProtolat(cfg, true, size, opt.LatRounds))
	}
	return row
}

// RunTable2 reproduces the full Table 2: both platforms, all
// configurations.
func RunTable2(opt Options) []Table2Row {
	var rows []Table2Row
	for _, cfg := range DECConfigs() {
		rows = append(rows, RunTable2Row(cfg, opt))
	}
	for _, cfg := range I486Configs() {
		rows = append(rows, RunTable2Row(cfg, opt))
	}
	return rows
}

// RunTable3 reproduces Table 3: the NEWAPI rows (the paper also repeats
// the two in-kernel rows for comparison; include them).
func RunTable3(opt Options) []Table2Row {
	var rows []Table2Row
	for _, cfg := range DECConfigs()[:2] { // Mach 2.5, Ultrix for reference
		rows = append(rows, RunTable2Row(cfg, opt))
	}
	for _, cfg := range NewAPIConfigs() {
		rows = append(rows, RunTable2Row(cfg, opt))
	}
	return rows
}

// FormatTable2 renders rows in the paper's layout.
func FormatTable2(title string, rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-36s %11s %8s | %-37s | %-37s\n", "", "Throughput", "RcvBuf", "TCP latency ms (msg bytes)", "UDP latency ms (msg bytes)")
	fmt.Fprintf(&b, "%-36s %11s %8s | %7d %7d %7d %7d %7d | %7d %7d %7d %7d %7d\n",
		"Configuration", "(KB/sec)", "(KB)",
		TCPSizes[0], TCPSizes[1], TCPSizes[2], TCPSizes[3], TCPSizes[4],
		UDPSizes[0], UDPSizes[1], UDPSizes[2], UDPSizes[3], UDPSizes[4])
	line := strings.Repeat("-", 140)
	fmt.Fprintln(&b, line)
	lastPlatform := ""
	for _, r := range rows {
		if r.Platform != lastPlatform {
			fmt.Fprintf(&b, "%s\n", r.Platform)
			lastPlatform = r.Platform
		}
		fmt.Fprintf(&b, "%-36s %11.0f %8d |", r.Config, r.Throughput, r.RcvBufKB)
		for _, l := range r.TCPLat {
			fmt.Fprintf(&b, " %7s", latCell(l))
		}
		fmt.Fprintf(&b, " |")
		for _, l := range r.UDPLat {
			fmt.Fprintf(&b, " %7s", latCell(l))
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

func latCell(l LatResult) string {
	if l.NA {
		return "NA"
	}
	if l.Err != nil {
		return "ERR"
	}
	return fmt.Sprintf("%.2f", l.Ms())
}

// --- Table 4: the per-layer latency breakdown ---

// Breakdown is the averaged per-packet time in each layer for one
// configuration/protocol/size cell of Table 4.
type Breakdown struct {
	Config  string
	TCP     bool
	MsgSize int
	// PerLayer is the average one-way time per message in each component,
	// ordered as costs.SendComponents then costs.RecvComponents.
	PerLayer map[costs.Component]time.Duration
	Transit  time.Duration
}

// SendTotal sums the send-path components.
func (b Breakdown) SendTotal() time.Duration {
	var t time.Duration
	for _, c := range costs.SendComponents {
		t += b.PerLayer[c]
	}
	return t
}

// RecvTotal sums the receive-path components.
func (b Breakdown) RecvTotal() time.Duration {
	var t time.Duration
	for _, c := range costs.RecvComponents {
		t += b.PerLayer[c]
	}
	return t
}

// RunBreakdown runs protolat with per-layer instrumentation, attributing
// accumulated charges to components and averaging per one-way message, as
// the paper's Table 4 does. As in the paper, TCP numbers only approximate
// the critical path because acknowledgement traffic is attributed too.
func RunBreakdown(cfg SysConfig, tcp bool, msgSize, rounds int) Breakdown {
	cfg.RawCosts = true // the paper's Table 4 came from the instrumented build
	bd := Breakdown{Config: cfg.Name, TCP: tcp, MsgSize: msgSize,
		PerLayer: make(map[costs.Component]time.Duration)}

	acc := make(map[costs.Component]time.Duration)
	counting := false

	w := cfg.Build(7)
	w.Observe(func(comp costs.Component, d time.Duration) {
		if counting {
			acc[comp] += d
		}
	})
	// Piggyback on RunProtolat's logic by replicating its workload inline
	// with observation windows; we run warmup rounds uncounted.
	res := runProtolatOn(w, cfg, tcp, msgSize, rounds, func(on bool) { counting = on })
	if res.Err != nil {
		return bd
	}
	// Each round trip crosses each path component twice (once per host).
	for comp, total := range acc {
		bd.PerLayer[comp] = total / time.Duration(2*rounds)
	}
	bd.Transit = wireTransit(msgSize, tcp)
	return bd
}

// FormatTable4 renders breakdowns in the paper's Table 4 layout: columns
// are (config × min/max size), rows are layers.
func FormatTable4(title string, cells []Breakdown) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-22s", "Layer (µs)")
	for _, c := range cells {
		fmt.Fprintf(&b, " %9s", fmt.Sprintf("%s/%d", shortName(c.Config), c.MsgSize))
	}
	fmt.Fprintln(&b)
	us := func(d time.Duration) string { return fmt.Sprintf("%.0f", float64(d)/1000) }
	fmt.Fprintln(&b, "Send path")
	for _, comp := range costs.SendComponents {
		fmt.Fprintf(&b, "  %-20s", comp)
		for _, c := range cells {
			fmt.Fprintf(&b, " %9s", us(c.PerLayer[comp]))
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "  %-20s", "send total")
	for _, c := range cells {
		fmt.Fprintf(&b, " %9s", us(c.SendTotal()))
	}
	fmt.Fprintln(&b)
	fmt.Fprintln(&b, "Receive path")
	for _, comp := range costs.RecvComponents {
		fmt.Fprintf(&b, "  %-20s", comp)
		for _, c := range cells {
			fmt.Fprintf(&b, " %9s", us(c.PerLayer[comp]))
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "  %-20s", "recv total")
	for _, c := range cells {
		fmt.Fprintf(&b, " %9s", us(c.RecvTotal()))
	}
	fmt.Fprintln(&b)
	fmt.Fprintf(&b, "  %-20s", "network transit")
	for _, c := range cells {
		fmt.Fprintf(&b, " %9s", us(c.Transit))
	}
	fmt.Fprintln(&b)
	fmt.Fprintf(&b, "  %-20s", "one-way total")
	for _, c := range cells {
		fmt.Fprintf(&b, " %9s", us(c.SendTotal()+c.RecvTotal()+c.Transit))
	}
	fmt.Fprintln(&b)
	return b.String()
}

func shortName(s string) string {
	switch {
	case strings.Contains(s, "SHM-IPF"):
		return "Lib"
	case strings.Contains(s, "Library"):
		return "Lib"
	case strings.Contains(s, "Kernel") || strings.Contains(s, "In-Kernel"):
		return "Kern"
	case strings.Contains(s, "Server"):
		return "Srv"
	}
	return s
}

// wireTransit is the serialization time of one message's frame at
// 10 Mb/s, matching the paper's "network transit time" row.
func wireTransit(msgSize int, tcp bool) time.Duration {
	hdr := 8
	if tcp {
		hdr = 20
	}
	frame := 14 + 20 + hdr + msgSize + 4
	if frame < 64 {
		frame = 64
	}
	return time.Duration(frame) * 800 * time.Nanosecond
}
