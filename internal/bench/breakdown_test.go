package bench

import (
	"testing"
	"time"

	"repro/internal/costs"
)

// TestBreakdownMatchesTable4 checks the Table 4 reproduction against the
// paper's published per-layer values for the UDP 1-byte column of each
// implementation style (tolerance 20% + 15 µs: the workload attributes
// real charges, including ACK and wakeup variance).
func TestBreakdownMatchesTable4(t *testing.T) {
	type want struct {
		comp costs.Component
		us   float64
	}
	cases := []struct {
		cfg   SysConfig
		wants []want
	}{
		{DECConfigs()[5], []want{ // Library SHM-IPF
			{costs.CompTransportOutput, 18}, {costs.CompEtherOutput, 105},
			{costs.CompKernelCopyout, 107}, {costs.CompTransportInput, 103},
			{costs.CompCopyoutExit, 21},
		}},
		{DECConfigs()[0], []want{ // Kernel
			{costs.CompEntryCopyin, 65}, {costs.CompTransportOutput, 70},
			{costs.CompDeviceIntrRead, 74}, {costs.CompTransportInput, 67},
		}},
		{DECConfigs()[2], []want{ // Server
			{costs.CompEntryCopyin, 293}, {costs.CompTransportOutput, 229},
			{costs.CompCopyoutExit, 208},
		}},
	}
	for _, c := range cases {
		bd := RunBreakdown(c.cfg, false, 1, 100)
		for _, w := range c.wants {
			got := float64(bd.PerLayer[w.comp]) / float64(time.Microsecond)
			tol := w.us*0.20 + 15
			if got < w.us-tol || got > w.us+tol {
				t.Errorf("%s %v: %.0f µs, want %.0f ± %.0f", c.cfg.Name, w.comp, got, w.us, tol)
			}
		}
		// One-way totals should be near the paper's sums.
		oneWay := float64(bd.SendTotal()+bd.RecvTotal()+bd.Transit) / float64(time.Microsecond)
		t.Logf("%s UDP 1B one-way total: %.0f µs", c.cfg.Name, oneWay)
	}
}
