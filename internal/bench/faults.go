package bench

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/fault"
)

// FaultConfig is the fault-injection setting applied to every world the
// harness builds: static default rates on all links, plus an optional
// fault plan (the text DSL of internal/fault) scheduled on each run's
// simulator.
type FaultConfig struct {
	Rates fault.Rates
	Plan  string
}

// Active reports whether the configuration injects anything at all.
func (c FaultConfig) Active() bool { return !c.Rates.IsZero() || c.Plan != "" }

var (
	faultCfg  FaultConfig
	faultInjs []*fault.Injector
)

// SetFaults installs cfg as the harness-wide fault configuration and
// resets the report accumulator. The plan text is validated eagerly so a
// bad -faultplan fails before any benchmark runs.
func SetFaults(cfg FaultConfig) error {
	if cfg.Plan != "" {
		if _, err := fault.ParsePlan(cfg.Plan); err != nil {
			return err
		}
	}
	faultCfg = cfg
	faultInjs = nil
	return nil
}

// FaultsActive reports whether the harness is currently injecting faults.
func FaultsActive() bool { return faultCfg.Active() }

// applyFaults wires the harness-wide fault configuration into a freshly
// built world and remembers its injector for the aggregate report.
// Called from Build before buildHook so tests can still override.
func applyFaults(w *World) {
	if !faultCfg.Active() {
		return
	}
	inj := w.Seg.Faults()
	inj.SetDefaultRates(faultCfg.Rates)
	if faultCfg.Plan != "" {
		p, err := fault.ParsePlan(faultCfg.Plan)
		if err != nil {
			panic("bench: plan validated by SetFaults failed to parse: " + err.Error())
		}
		inj.Schedule(p)
	}
	faultInjs = append(faultInjs, inj)
}

// FaultReport aggregates per-link fault counters across every world
// built since SetFaults, formatted as the injector's standard table.
// Empty when no faults were configured or nothing ran.
func FaultReport() string {
	if len(faultInjs) == 0 {
		return ""
	}
	per := map[string]fault.Counters{}
	var names []string
	for _, inj := range faultInjs {
		for _, l := range inj.Links() {
			if _, ok := per[l]; !ok {
				names = append(names, l)
			}
			c := per[l]
			c.Add(inj.Counters(l))
			per[l] = c
		}
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "Fault injection (%d worlds)\n", len(faultInjs))
	fmt.Fprintf(&b, "  %-8s %10s %8s %6s %8s %8s %8s %6s %6s\n",
		"link", "frames", "drop", "dup", "corrupt", "reorder", "delayed", "down", "part")
	var total fault.Counters
	for _, n := range names {
		c := per[n]
		total.Add(c)
		fmt.Fprintf(&b, "  %-8s %10d %8d %6d %8d %8d %8d %6d %6d\n",
			n, c.Frames, c.Dropped, c.Duplicated, c.Corrupted, c.Reordered, c.Delayed, c.DownDrops, c.PartDrops)
	}
	fmt.Fprintf(&b, "  %-8s %10d %8d %6d %8d %8d %8d %6d %6d\n",
		"total", total.Frames, total.Dropped, total.Duplicated, total.Corrupted, total.Reordered, total.Delayed, total.DownDrops, total.PartDrops)
	return b.String()
}
