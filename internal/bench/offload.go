package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/sim"
	"repro/internal/socketapi"
	"repro/psd"
)

// Offload suite: the four-column comparison the NIC offload engine is
// judged by. Three workloads:
//
//	tcp-steady: a paced one-way TCP stream at fixed offered load, where
//	            the receive-side numbers live — wakeups per wire
//	            segment, LRO coalescing, and software-checksummed bytes.
//	proxy:      the splice forwarding pump (throughput and copy
//	            accounting on the proxy host).
//	churn:      many short-lived connections — the workload where
//	            interrupt moderation must not add connection latency.
//
// Each tcp-steady cell runs at several offered-load points because the
// coalescing win is load-dependent: a saturated wire arrives back-to-
// back and merges deeply, a trickle is delivered immediately by the
// moderation logic.

// OffloadLoadPointsMbps are the tcp-steady offered-load points, in
// Mb/s, on the simulated 10 Mb/s wire.
var OffloadLoadPointsMbps = []float64{2, 5, 9}

// offloadSteadyBytes sizes each tcp-steady transfer; small enough that
// the twelve cells stay quick, large enough that steady state dominates
// connection setup.
const offloadSteadyBytes = 384 << 10

// OffloadCell is one (configuration, workload) measurement row of
// BENCH_offload.json.
type OffloadCell struct {
	Config      string  `json:"config"`
	Workload    string  `json:"workload"`
	OfferedMbps float64 `json:"offered_mbps,omitempty"`
	KBps        float64 `json:"kbps,omitempty"`

	// Receive-side segment accounting on the sink host: frames that
	// crossed the wire, frames delivered up the kernel path (fewer when
	// LRO merged), and receiver sleep-to-wake transitions.
	WireFrames        int64   `json:"wire_frames,omitempty"`
	Deliveries        int64   `json:"deliveries,omitempty"`
	Wakeups           int64   `json:"wakeups,omitempty"`
	WakeupsPerSegment float64 `json:"wakeups_per_segment,omitempty"`
	SegmentsPerWakeup float64 `json:"segments_per_wakeup,omitempty"`
	CoalesceRatio     float64 `json:"coalesce_ratio,omitempty"`

	// Checksum accounting across every stack in the world: bytes the
	// stacks checksummed in software versus bytes the engine verified or
	// generated on the NIC.
	SwChecksumBytes  int64 `json:"sw_checksum_bytes"`
	OffloadCsumBytes int64 `json:"offload_csum_bytes,omitempty"`

	// Engine activity.
	TSOSuper  int64 `json:"tso_super,omitempty"`
	LROMerged int64 `json:"lro_merged,omitempty"`

	// Proxy cells only.
	CopiesPerByte float64 `json:"copies_per_byte,omitempty"`

	// Churn cells only.
	Conns int64 `json:"conns,omitempty"`
}

// OffloadReport is the JSON document psdbench -offload writes
// (BENCH_offload.json holds one entry per recorded run).
type OffloadReport struct {
	Label   string        `json:"label"`
	Date    string        `json:"date,omitempty"`
	Results []OffloadCell `json:"results"`
}

// WriteOffloadJSON writes a report as indented JSON.
func WriteOffloadJSON(w io.Writer, rep OffloadReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// RunOffloadSuite measures every cell: tcp-steady on each Columns()
// configuration at each offered-load point, the splice proxy on each
// configuration, and connection churn on each architecture flavor.
// Deterministic: two calls return identical rows.
func RunOffloadSuite() ([]OffloadCell, error) {
	var out []OffloadCell
	for _, cfg := range Columns() {
		for _, mbps := range OffloadLoadPointsMbps {
			cell, err := RunOffloadSteady(cfg, mbps)
			if err != nil {
				return nil, fmt.Errorf("offload: %s tcp-steady %.0f Mb/s: %w", cfg.Name, mbps, err)
			}
			out = append(out, cell)
		}
	}
	for _, cfg := range Columns() {
		cell, err := runOffloadProxy(cfg)
		if err != nil {
			return nil, fmt.Errorf("offload: %s proxy: %w", cfg.Name, err)
		}
		out = append(out, cell)
	}
	for _, f := range psd.ArchFlavors() {
		cell, err := runOffloadChurn(f)
		if err != nil {
			return nil, fmt.Errorf("offload: %s churn: %w", f.Name, err)
		}
		out = append(out, cell)
	}
	return out, nil
}

// RunOffloadSteady measures one paced tcp-steady cell with registry
// capture, digesting the sink host's segment/wakeup accounting and the
// world-wide checksum split.
func RunOffloadSteady(cfg SysConfig, mbps float64) (OffloadCell, error) {
	cell := OffloadCell{Config: cfg.Name, Workload: "tcp-steady", OfferedMbps: mbps}
	wasOn := metricsCfg.enabled
	EnableMetrics()
	var w *World
	restore := captureBuild(&w)
	res := runPacedStream(cfg, mbps, offloadSteadyBytes)
	restore()
	metricsCfg.enabled = wasOn
	if res.Err != nil {
		return cell, res.Err
	}
	cell.KBps = res.KBps()
	digestOffload(&cell, w)
	return cell, nil
}

// digestOffload reads the segment, wakeup, and checksum accounting out
// of a finished world's registry. Host B is the receive side in the
// paced stream.
func digestOffload(cell *OffloadCell, w *World) {
	if w == nil || w.Reg == nil {
		return
	}
	snap := w.Reg.Snapshot(w.Sim.Now().Duration())
	get := func(name string) int64 {
		it, _ := snap.Get(name)
		return it.Value
	}
	cell.WireFrames = get("host.B.nic.rx_frames")
	cell.Deliveries = get("host.B.kern.rx_frames")
	cell.Wakeups = get("host.B.kern.wakeups")
	if cell.WireFrames > 0 {
		cell.WakeupsPerSegment = float64(cell.Wakeups) / float64(cell.WireFrames)
	}
	if cell.Wakeups > 0 {
		cell.SegmentsPerWakeup = float64(cell.WireFrames) / float64(cell.Wakeups)
	}
	if cell.Deliveries > 0 {
		cell.CoalesceRatio = float64(cell.WireFrames) / float64(cell.Deliveries)
	}
	cell.SwChecksumBytes = snap.Sum(".sw_checksum_bytes")
	cell.OffloadCsumBytes = snap.Sum(".offload.tx_csum_bytes") + snap.Sum(".offload.rx_csum_bytes")
	cell.TSOSuper = snap.Sum(".offload.tso_super")
	cell.LROMerged = snap.Sum(".offload.lro_merged")
}

// runPacedStream is RunTTCP with a pacing loop on the source: one 8 KB
// chunk per interval, scheduled against absolute deadlines so send-side
// blocking cannot skew the offered rate.
func runPacedStream(cfg SysConfig, mbps float64, totalBytes int) TTCPResult {
	w := cfg.Build(42)
	res := TTCPResult{}
	var start, end sim.Time
	interval := time.Duration(float64(ttcpChunk*8) / mbps * 1e9 / 1e6)
	payload := make([]byte, ttcpChunk)
	for i := range payload {
		payload[i] = byte(i)
	}

	sink := w.NewB("steady-sink")
	source := w.NewA("steady-source")

	w.Sim.Spawn("sink", func(p *sim.Proc) {
		ls, err := sink.Socket(p, socketapi.SockStream)
		if err != nil {
			res.Err = err
			return
		}
		sink.SetSockOpt(p, ls, socketapi.SoRcvBuf, cfg.RcvBufKB*1024)
		if err := sink.Bind(p, ls, socketapi.SockAddr{Port: ttcpPort}); err != nil {
			res.Err = err
			return
		}
		sink.Listen(p, ls, 1)
		fd, _, err := sink.Accept(p, ls)
		if err != nil {
			res.Err = err
			return
		}
		got := 0
		buf := make([]byte, ttcpChunk)
		for {
			n, err := sink.Recv(p, fd, buf, 0)
			if err != nil {
				res.Err = err
				return
			}
			if n == 0 {
				break
			}
			got += n
		}
		end = p.Now()
		res.Bytes = got
		sink.Close(p, fd)
		sink.Close(p, ls)
	})

	w.Sim.Spawn("source", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		fd, err := source.Socket(p, socketapi.SockStream)
		if err != nil {
			res.Err = err
			return
		}
		source.SetSockOpt(p, fd, socketapi.SoSndBuf, cfg.RcvBufKB*1024)
		if err := source.Connect(p, fd, socketapi.SockAddr{Addr: w.IPB, Port: ttcpPort}); err != nil {
			res.Err = err
			return
		}
		start = p.Now()
		for i, sent := 0, 0; sent < totalBytes; i++ {
			if target := start.Add(time.Duration(i) * interval); p.Now() < target {
				p.Sleep(target.Sub(p.Now()))
			}
			chunk := ttcpChunk
			if sent+chunk > totalBytes {
				chunk = totalBytes - sent
			}
			n, err := source.Send(p, fd, payload[:chunk], 0)
			if err != nil {
				res.Err = err
				return
			}
			sent += n
		}
		source.Close(p, fd)
	})

	if err := w.Sim.Run(); err != nil && res.Err == nil {
		res.Err = err
	}
	res.Duration = end.Sub(start)
	if res.Err == nil && res.Bytes != totalBytes {
		res.Err = fmt.Errorf("paced stream: received %d of %d bytes", res.Bytes, totalBytes)
	}
	return res
}

// runOffloadProxy measures the splice forwarding pump on one
// configuration — the workload where payload never crosses the socket
// API, so what remains is per-segment work the engine absorbs.
func runOffloadProxy(cfg SysConfig) (OffloadCell, error) {
	cell := OffloadCell{Config: cfg.Name, Workload: "proxy-splice"}
	r := RunProxy(cfg, "splice", 1<<20)
	if r.Err != nil {
		return cell, r.Err
	}
	cell.KBps = r.KBps()
	cell.CopiesPerByte = r.CopiesPerByte()
	return cell, nil
}

// runOffloadChurn runs a small connection-churn workload on one
// architecture flavor and digests the wakeup and checksum accounting
// across every host.
func runOffloadChurn(f psd.ArchFlavor) (OffloadCell, error) {
	cell := OffloadCell{Config: f.Name, Workload: "churn"}
	rep, err := psd.RunChurn(psd.ChurnConfig{
		Seed:           7,
		Servers:        4,
		Clients:        16,
		ConnsPerClient: 6,
		OrphanEvery:    8,
		MsgBytes:       512,
		Arch:           f.New(),
	})
	if err != nil {
		return cell, err
	}
	// The conservation laws read the decomposed OS server's session
	// accounting; the in-kernel and server baselines don't expose it
	// (no ".core" scope), so only check where the counters exist.
	if rep.ConnSetups > 0 {
		if err := rep.Check(); err != nil {
			return cell, err
		}
	}
	snap := rep.Snapshot
	cell.Conns = int64(rep.ConnsPlan)
	cell.WireFrames = snap.Sum(".nic.rx_frames")
	cell.Deliveries = snap.Sum(".kern.rx_frames")
	cell.Wakeups = snap.Sum(".kern.wakeups")
	if cell.WireFrames > 0 {
		cell.WakeupsPerSegment = float64(cell.Wakeups) / float64(cell.WireFrames)
	}
	cell.SwChecksumBytes = snap.Sum(".sw_checksum_bytes")
	cell.OffloadCsumBytes = snap.Sum(".offload.tx_csum_bytes") + snap.Sum(".offload.rx_csum_bytes")
	cell.TSOSuper = snap.Sum(".offload.tso_super")
	cell.LROMerged = snap.Sum(".offload.lro_merged")
	return cell, nil
}
