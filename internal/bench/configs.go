// Package bench regenerates the paper's evaluation: Table 2 (throughput
// and round-trip latency for every system configuration), Table 3 (the
// NEWAPI shared-buffer interface), Table 4 (the per-layer latency
// breakdown), the receive-buffer sweep methodology, and a set of
// ablations on the design choices.
package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/costs"
	"repro/internal/inkernel"
	"repro/internal/kern"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/socketapi"
	"repro/internal/trace"
	"repro/internal/uxserver"
	"repro/internal/wire"
)

// Kind selects the implementation architecture for a configuration.
type Kind int

const (
	KindKernel Kind = iota // protocols in the kernel (Mach 2.5, Ultrix, 386BSD)
	KindServer             // protocols in a user-level server (UX, BNR2SS)
	KindCore               // the decomposed architecture (this paper)
)

// SysConfig is one system-configuration row of the paper's tables.
type SysConfig struct {
	Name     string
	Platform string
	Kind     Kind

	// Prof prices the protocol implementation (and, for KindCore, the
	// library and the kernel delivery interface).
	Prof costs.Profile
	// SrvProf prices the OS server backing a KindCore configuration.
	SrvProf costs.Profile

	// RcvBufKB is the receive buffer used for the throughput benchmark
	// (the paper's per-configuration best, found by sweeping).
	RcvBufKB int

	// NewAPI runs the workloads through the zero-copy interface (§4.2).
	NewAPI bool

	// RawCosts skips the Table 2 calibration, running with the exact
	// instrumented per-layer costs of Table 4 (used by the breakdown
	// reproduction, which models the paper's instrumented build).
	RawCosts bool

	// TCPLatNA marks TCP latency cells at >= 1024-byte messages NA: the
	// 386BSD/BNR2SS bug that prevents sending large TCP packets.
	TCPLatNA bool
}

// DECConfigs returns the DECstation 5000/200 rows of Table 2, in the
// paper's order.
func DECConfigs() []SysConfig {
	return []SysConfig{
		{Name: "Mach 2.5 In-Kernel", Platform: "DECstation 5000/200", Kind: KindKernel,
			Prof: costs.DECKernelMach25(), RcvBufKB: 24},
		{Name: "Ultrix 4.2A In-Kernel", Platform: "DECstation 5000/200", Kind: KindKernel,
			Prof: costs.DECKernelUltrix(), RcvBufKB: 16},
		{Name: "Mach 3.0+UX Server", Platform: "DECstation 5000/200", Kind: KindServer,
			Prof: costs.DECServerUX(), RcvBufKB: 24},
		{Name: "Mach 3.0+UX Library-IPC", Platform: "DECstation 5000/200", Kind: KindCore,
			Prof: costs.DECLibraryIPC(), SrvProf: costs.DECServerUX(), RcvBufKB: 24},
		{Name: "Mach 3.0+UX Library-SHM", Platform: "DECstation 5000/200", Kind: KindCore,
			Prof: costs.DECLibrarySHM(), SrvProf: costs.DECServerUX(), RcvBufKB: 120},
		{Name: "Mach 3.0+UX Library-SHM-IPF", Platform: "DECstation 5000/200", Kind: KindCore,
			Prof: costs.DECLibrarySHMIPF(), SrvProf: costs.DECServerUX(), RcvBufKB: 120},
	}
}

// I486Configs returns the Gateway 486 rows of Table 2.
func I486Configs() []SysConfig {
	return []SysConfig{
		{Name: "Mach 2.5 In-Kernel", Platform: "Gateway 486", Kind: KindKernel,
			Prof: costs.I486KernelMach25(), RcvBufKB: 8},
		{Name: "386BSD In-Kernel", Platform: "Gateway 486", Kind: KindKernel,
			Prof: costs.I486Kernel386BSD(), RcvBufKB: 8, TCPLatNA: true},
		{Name: "Mach 3.0+UX Server", Platform: "Gateway 486", Kind: KindServer,
			Prof: costs.I486ServerUX(), RcvBufKB: 16},
		{Name: "Mach 3.0+BNR2SS Server", Platform: "Gateway 486", Kind: KindServer,
			Prof: costs.I486ServerBNR2SS(), RcvBufKB: 12, TCPLatNA: true},
		{Name: "Mach 3.0+UX Library-IPC", Platform: "Gateway 486", Kind: KindCore,
			Prof: costs.I486LibraryIPC(), SrvProf: costs.I486ServerUX(), RcvBufKB: 24},
		{Name: "Mach 3.0+UX Library-SHM", Platform: "Gateway 486", Kind: KindCore,
			Prof: costs.I486LibrarySHM(), SrvProf: costs.I486ServerUX(), RcvBufKB: 24},
	}
}

// NewAPIConfigs returns the Table 3 rows: the three DECstation library
// configurations under the modified (shared-buffer) socket interface.
func NewAPIConfigs() []SysConfig {
	return []SysConfig{
		{Name: "Mach 3.0+UX Library-NEWAPI-IPC", Platform: "DECstation 5000/200", Kind: KindCore,
			Prof: costs.WithNewAPI(costs.DECLibraryIPC()), SrvProf: costs.DECServerUX(), RcvBufKB: 24, NewAPI: true},
		{Name: "Mach 3.0+UX Library-NEWAPI-SHM", Platform: "DECstation 5000/200", Kind: KindCore,
			Prof: costs.WithNewAPI(costs.DECLibrarySHM()), SrvProf: costs.DECServerUX(), RcvBufKB: 120, NewAPI: true},
		{Name: "Mach 3.0+UX Library-NEWAPI-SHM-IPF", Platform: "DECstation 5000/200", Kind: KindCore,
			Prof: costs.WithNewAPI(costs.DECLibrarySHMIPF()), SrvProf: costs.DECServerUX(), RcvBufKB: 120, NewAPI: true},
	}
}

// OffloadConfig returns the fourth architecture column: the decomposed
// system with the simulated NIC offload engine attached (TSO/GSO
// segmentation, LRO coalescing, checksum offload, adaptive interrupt
// moderation). Not a paper row — it extends the paper's three-way
// comparison with the "move per-packet work onto the NIC" step the
// follow-on literature argues for.
func OffloadConfig() SysConfig {
	return SysConfig{Name: "Mach 3.0+UX Library-SHM-IPF-OFFLOAD", Platform: "DECstation 5000/200", Kind: KindCore,
		Prof: costs.DECLibrarySHMIPFOffload(), SrvProf: costs.DECServerUX(), RcvBufKB: 120}
}

// Columns is the shared architecture registry for the comparison suites
// (the psdbench default suite, -proxy, -scenarios, -scale): one
// representative per architecture — in-kernel, server, decomposed
// library — plus the offload column, in presentation order. Subcommands
// take their architecture lists from here so a new column appears
// everywhere at once.
func Columns() []SysConfig {
	decs := DECConfigs()
	return []SysConfig{decs[0], decs[2], decs[5], OffloadConfig()}
}

// HeadlineConfig is the paper's headline configuration (Library-SHM-IPF
// on the DECstation), the reference column the others compare against.
func HeadlineConfig() SysConfig { return DECConfigs()[5] }

// FindConfig returns the registered configuration with the given name and
// platform prefix, for ad-hoc runs.
func FindConfig(name string) (SysConfig, error) {
	all := append(append(DECConfigs(), I486Configs()...), NewAPIConfigs()...)
	all = append(all, OffloadConfig())
	for _, c := range all {
		if c.Name == name {
			return c, nil
		}
	}
	return SysConfig{}, fmt.Errorf("bench: unknown configuration %q", name)
}

// World is a two-host instantiation of a configuration, ready to run a
// workload.
type World struct {
	Cfg  SysConfig
	Sim  *sim.Sim
	Seg  *simnet.Segment
	IPA  wire.IPAddr
	IPB  wire.IPAddr
	NewA func(name string) socketapi.API
	NewB func(name string) socketapi.API

	// Rec is the world's flight recorder when harness tracing is
	// enabled (see EnableTrace); nil otherwise.
	Rec *trace.Recorder

	// Reg is the world's metrics registry when harness metrics are
	// enabled (see EnableMetrics); nil otherwise.
	Reg *metrics.Registry

	hostA, hostB *kern.Host
	setObs       func(fn func(comp costs.Component, d time.Duration))
	setTrace     func(r *trace.Recorder)
	setMetrics   func(reg *metrics.Registry)
}

// Build instantiates the configuration on a fresh simulator.
func (c SysConfig) Build(seed int64) *World {
	s := sim.New(seed)
	s.Deadline = sim.Time(4 * time.Hour) // throughput runs take ~20 virtual seconds; leave margin
	seg := simnet.NewSegment(s)
	w := &World{
		Cfg: c, Sim: s, Seg: seg,
		IPA: wire.IP(10, 0, 0, 1), IPB: wire.IP(10, 0, 0, 2),
	}
	macA, macB := wire.MAC{0, 0, 0, 0, 0, 1}, wire.MAC{0, 0, 0, 0, 0, 2}
	if !c.RawCosts {
		c.Prof = costs.CalibrateTable2(c.Prof)
	}
	switch c.Kind {
	case KindKernel:
		a := inkernel.New(s, seg, "A", macA, w.IPA, c.Prof)
		b := inkernel.New(s, seg, "B", macB, w.IPB, c.Prof)
		w.hostA, w.hostB = a.Host, b.Host
		w.NewA = func(n string) socketapi.API { return a.NewAPI(n) }
		w.NewB = func(n string) socketapi.API { return b.NewAPI(n) }
		w.setObs = func(fn func(costs.Component, time.Duration)) {
			a.Observer, b.Observer = fn, fn
		}
		w.setTrace = func(r *trace.Recorder) { a.SetTrace(r); b.SetTrace(r) }
		w.setMetrics = func(reg *metrics.Registry) {
			a.SetMetrics(reg.Scope("host.A"))
			b.SetMetrics(reg.Scope("host.B"))
		}
	case KindServer:
		a := uxserver.New(s, seg, "A", macA, w.IPA, c.Prof)
		b := uxserver.New(s, seg, "B", macB, w.IPB, c.Prof)
		w.hostA, w.hostB = a.Host, b.Host
		w.NewA = func(n string) socketapi.API { return a.NewAPI(n) }
		w.NewB = func(n string) socketapi.API { return b.NewAPI(n) }
		w.setObs = func(fn func(costs.Component, time.Duration)) {
			a.Observer, b.Observer = fn, fn
		}
		w.setTrace = func(r *trace.Recorder) { a.SetTrace(r); b.SetTrace(r) }
		w.setMetrics = func(reg *metrics.Registry) {
			a.SetMetrics(reg.Scope("host.A"))
			b.SetMetrics(reg.Scope("host.B"))
		}
	case KindCore:
		a := core.New(s, seg, "A", macA, w.IPA, c.Prof, c.SrvProf)
		b := core.New(s, seg, "B", macB, w.IPB, c.Prof, c.SrvProf)
		w.hostA, w.hostB = a.Host, b.Host
		w.NewA = func(n string) socketapi.API { return a.NewLibrary(n) }
		w.NewB = func(n string) socketapi.API { return b.NewLibrary(n) }
		w.setObs = func(fn func(costs.Component, time.Duration)) {
			a.Observer, b.Observer = fn, fn
		}
		w.setTrace = func(r *trace.Recorder) { a.SetTrace(r); b.SetTrace(r) }
		w.setMetrics = func(reg *metrics.Registry) {
			a.SetMetrics(reg.Scope("host.A"))
			b.SetMetrics(reg.Scope("host.B"))
		}
	}
	applyFaults(w)
	attachTrace(w)
	attachMetrics(w)
	if buildHook != nil {
		buildHook(w)
	}
	return w
}

// Observe installs fn as the protocol-layer charge observer on both hosts
// (stack layers via the deployments, kernel receive path via the hosts).
func (w *World) Observe(fn func(comp costs.Component, d time.Duration)) {
	w.setObs(fn)
	m := meterFunc(fn)
	w.hostA.Meter = m
	w.hostB.Meter = m
}

type meterFunc func(comp costs.Component, d time.Duration)

func (f meterFunc) Account(comp costs.Component, d time.Duration) { f(comp, d) }

// stackOutA/B expose TCP segment counters for harness diagnostics.
func stackOutA(w *World) int { return hostTCPOut(w, true) }
func stackOutB(w *World) int { return hostTCPOut(w, false) }

func hostTCPOut(w *World, a bool) int {
	h := w.hostA
	if !a {
		h = w.hostB
	}
	// Count frames transmitted by the host NIC as a proxy for segments.
	return int(h.NIC.TxFrames.Value())
}
