package bench

import "testing"

// TestDataplaneChainCost verifies the chain-length sweep measures what
// it claims: a 128-rule chain must cost measurably more than an empty
// one, in both throughput and round-trip latency, and the chain's
// instruction count must scale with the rule count.
func TestDataplaneChainCost(t *testing.T) {
	cfg := HeadlineConfig()

	t0, err := RunDataplaneTTCP(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	t128, err := RunDataplaneTTCP(cfg, 128)
	if err != nil {
		t.Fatal(err)
	}
	if t128.ChainInstrs <= t0.ChainInstrs || t128.ChainInstrs < 128 {
		t.Errorf("chain instrs: 0 rules -> %d, 128 rules -> %d", t0.ChainInstrs, t128.ChainInstrs)
	}
	if t128.KBps >= t0.KBps {
		t.Errorf("throughput did not degrade: 0 rules %.1f KB/s, 128 rules %.1f KB/s", t0.KBps, t128.KBps)
	}

	l0, err := RunDataplaneLat(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	l128, err := RunDataplaneLat(cfg, 128)
	if err != nil {
		t.Fatal(err)
	}
	if l128.LatencyMs <= l0.LatencyMs {
		t.Errorf("latency did not grow: 0 rules %.3f ms, 128 rules %.3f ms", l0.LatencyMs, l128.LatencyMs)
	}
}

// TestDataplaneChainDeterminism: the same cell measured twice returns
// identical numbers.
func TestDataplaneChainDeterminism(t *testing.T) {
	cfg := HeadlineConfig()
	a, err := RunDataplaneLat(cfg, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDataplaneLat(cfg, 32)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("two identical cells diverged: %+v vs %+v", a, b)
	}
}
