package bench

import "testing"

func TestSmokeTTCP(t *testing.T) {
	for _, cfg := range DECConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			r := RunTTCP(cfg, cfg.RcvBufKB, 2<<20) // 2 MB for the smoke test
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			t.Logf("%s: %.0f KB/s", cfg.Name, r.KBps())
		})
	}
}

func TestSmokeLatency(t *testing.T) {
	for _, cfg := range DECConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			u := RunProtolat(cfg, true, 1, 50)
			if u.Err != nil {
				t.Fatal(u.Err)
			}
			tcp := RunProtolat(cfg, false, 1, 50)
			if tcp.Err != nil {
				t.Fatal(tcp.Err)
			}
			t.Logf("%s: UDP 1B RTT %.2f ms, TCP 1B RTT %.2f ms", cfg.Name, u.Ms(), tcp.Ms())
		})
	}
}
