package bench

import (
	"encoding/json"
	"io"

	"repro/internal/metrics"
)

// Registry capture for the harness: when enabled, every world the
// benchmarks build carries a metrics registry, so psdbench can report
// latency quantiles and loss/retransmit counts alongside the paper's
// tables.

var metricsCfg struct {
	enabled bool
}

// EnableMetrics turns on the metrics registry for every world built
// after the call.
func EnableMetrics() { metricsCfg.enabled = true }

// DisableMetrics switches registry capture back off (tests).
func DisableMetrics() { metricsCfg.enabled = false }

// attachMetrics wires a registry into a freshly built world when capture
// is enabled (called from Build).
func attachMetrics(w *World) {
	if !metricsCfg.enabled || w.setMetrics == nil {
		return
	}
	w.Reg = metrics.NewRegistry()
	w.Seg.SetMetrics(w.Reg.Scope("net"))
	w.setMetrics(w.Reg)
}

// WorkloadMetrics is the registry-derived digest of one benchmark
// workload: connect-latency quantiles across every stack in the world,
// wire-level drops, and TCP retransmissions.
type WorkloadMetrics struct {
	Name         string `json:"name"`
	ConnectP50Ns int64  `json:"connect_p50_ns"`
	ConnectP99Ns int64  `json:"connect_p99_ns"`
	Drops        int64  `json:"drops"`
	Rexmits      int64  `json:"rexmits"`
}

// digestWorld reduces a world's registry to a WorkloadMetrics row.
func digestWorld(name string, w *World) WorkloadMetrics {
	m := WorkloadMetrics{Name: name}
	if w.Reg == nil {
		return m
	}
	if h := w.Reg.MergedHistogram(".connect_ns"); h != nil && h.Count() > 0 {
		m.ConnectP50Ns = int64(h.Quantile(0.50))
		m.ConnectP99Ns = int64(h.Quantile(0.99))
	}
	snap := w.Reg.Snapshot(w.Sim.Now().Duration())
	m.Drops = snap.Sum(".drops_loss") + snap.Sum(".drops_down") + snap.Sum(".partition_drops")
	m.Rexmits = snap.Sum(".tcp_rexmit") + snap.Sum(".tcp_fast_rexmit")
	return m
}

// RunMetricsSuite runs a small fixed workload set on cfg with registry
// capture enabled — a clean TCP stream, a clean latency ping-pong, and
// a lossy TCP stream that forces retransmissions — and returns one
// digest row per workload. Deterministic for a given configuration.
func RunMetricsSuite(cfg SysConfig) ([]WorkloadMetrics, error) {
	wasOn := metricsCfg.enabled
	EnableMetrics()
	defer func() { metricsCfg.enabled = wasOn }()

	var out []WorkloadMetrics
	var firstErr error

	// Clean bulk transfer (1 MB keeps the suite quick).
	{
		var w *World
		restore := captureBuild(&w)
		res := RunTTCP(cfg, cfg.RcvBufKB, 1<<20)
		restore()
		if res.Err != nil && firstErr == nil {
			firstErr = res.Err
		}
		out = append(out, digestWorld("tcp-stream", w))
	}

	// Clean round-trip latency.
	{
		var w *World
		restore := captureBuild(&w)
		res := RunProtolat(cfg, false, 1024, 50)
		restore()
		if res.Err != nil && firstErr == nil {
			firstErr = res.Err
		}
		out = append(out, digestWorld("tcp-latency", w))
	}

	// Lossy bulk transfer: 1% frame loss exercises rexmit accounting.
	{
		var w *World
		restore := captureBuild(&w, func(w *World) {
			r := w.Seg.Faults().DefaultRates()
			r.Drop = 0.01
			w.Seg.Faults().SetDefaultRates(r)
		})
		res := RunTTCP(cfg, cfg.RcvBufKB, 1<<20)
		restore()
		if res.Err != nil && firstErr == nil {
			firstErr = res.Err
		}
		out = append(out, digestWorld("tcp-stream-lossy", w))
	}

	return out, firstErr
}

// MetricsReport is the JSON document psdbench writes for the registry
// digest (BENCH_metrics.json holds one entry per recorded run).
type MetricsReport struct {
	Label   string            `json:"label"`
	Date    string            `json:"date,omitempty"`
	Config  string            `json:"config"`
	Results []WorkloadMetrics `json:"results"`
}

// WriteMetricsJSON writes a report as indented JSON.
func WriteMetricsJSON(w io.Writer, rep MetricsReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// captureBuild temporarily installs a build hook that records the next
// world built (and applies any extra setup), returning a restore func.
func captureBuild(dst **World, extra ...func(*World)) func() {
	prev := buildHook
	buildHook = func(w *World) {
		if prev != nil {
			prev(w)
		}
		*dst = w
		for _, fn := range extra {
			fn(w)
		}
	}
	return func() { buildHook = prev }
}
