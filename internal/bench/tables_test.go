package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/costs"
)

func TestFindConfig(t *testing.T) {
	cfg, err := FindConfig("Mach 2.5 In-Kernel")
	if err != nil || cfg.Kind != KindKernel {
		t.Fatalf("FindConfig: %+v %v", cfg, err)
	}
	if _, err := FindConfig("No Such System"); err == nil {
		t.Fatal("unknown config found")
	}
}

func TestConfigRegistryShape(t *testing.T) {
	dec := DECConfigs()
	if len(dec) != 6 {
		t.Fatalf("DEC rows = %d, want 6", len(dec))
	}
	i486 := I486Configs()
	if len(i486) != 6 {
		t.Fatalf("i486 rows = %d, want 6", len(i486))
	}
	na := NewAPIConfigs()
	if len(na) != 3 {
		t.Fatalf("NEWAPI rows = %d, want 3", len(na))
	}
	for _, cfg := range na {
		if !cfg.NewAPI || !strings.Contains(cfg.Name, "NEWAPI") {
			t.Errorf("NEWAPI row misconfigured: %+v", cfg.Name)
		}
	}
	// The quirky systems carry their NA flag.
	quirky := 0
	for _, cfg := range i486 {
		if cfg.TCPLatNA {
			quirky++
		}
	}
	if quirky != 2 {
		t.Fatalf("i486 NA rows = %d, want 2 (386BSD, BNR2SS)", quirky)
	}
}

func TestRunTable2RowQuick(t *testing.T) {
	row := RunTable2Row(DECConfigs()[0], QuickOptions())
	if row.Throughput < 500 || row.Throughput > 1500 {
		t.Fatalf("kernel throughput = %.0f KB/s, out of plausible range", row.Throughput)
	}
	if len(row.TCPLat) != 5 || len(row.UDPLat) != 5 {
		t.Fatalf("latency cells: %d/%d", len(row.TCPLat), len(row.UDPLat))
	}
	for i, l := range row.UDPLat {
		if l.Err != nil {
			t.Fatalf("udp cell %d: %v", i, l.Err)
		}
		if i > 0 && l.Avg <= row.UDPLat[i-1].Avg {
			t.Fatalf("latency not monotonic with size: %v", row.UDPLat)
		}
	}
}

func TestNARowsReportNA(t *testing.T) {
	cfg := I486Configs()[1] // 386BSD
	l := RunProtolat(cfg, false, 1024, 10)
	if !l.NA {
		t.Fatal("386BSD TCP 1024B must be NA")
	}
	l = RunProtolat(cfg, false, 100, 10)
	if l.NA || l.Err != nil {
		t.Fatalf("386BSD TCP 100B should measure: %+v", l)
	}
	if latCell(LatResult{NA: true}) != "NA" {
		t.Fatal("NA cell formatting")
	}
}

func TestFormatTable2(t *testing.T) {
	rows := []Table2Row{{
		Config: "Test System", Platform: "TestStation",
		Throughput: 1000, RcvBufKB: 24,
		TCPLat: make([]LatResult, 5),
		UDPLat: make([]LatResult, 5),
	}}
	out := FormatTable2("Table X", rows)
	for _, want := range []string{"Table X", "TestStation", "Test System", "1000", "24"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestBreakdownCells(t *testing.T) {
	bd := RunBreakdown(DECConfigs()[0], false, 1, 50)
	if bd.SendTotal() <= 0 || bd.RecvTotal() <= 0 {
		t.Fatalf("empty breakdown: %+v", bd)
	}
	// Kernel profile: no kernel-copyout or mbuf/queue components.
	if bd.PerLayer[costs.CompKernelCopyout] != 0 || bd.PerLayer[costs.CompMbufQueue] != 0 {
		t.Fatalf("kernel breakdown has user-level delivery components: %v", bd.PerLayer)
	}
	out := FormatTable4("T4", []Breakdown{bd})
	for _, want := range []string{"entry/copyin", "network transit", "one-way total"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in table", want)
		}
	}
}

func TestWireTransitMatchesPaper(t *testing.T) {
	if got := wireTransit(1, false); got != 51200*time.Nanosecond {
		t.Fatalf("UDP 1B transit = %v, want 51.2µs", got)
	}
	if got := wireTransit(1472, false); got != 1518*800*time.Nanosecond {
		t.Fatalf("UDP 1472B transit = %v", got)
	}
	if got := wireTransit(1460, true); got != 1518*800*time.Nanosecond {
		t.Fatalf("TCP 1460B transit = %v", got)
	}
}

func TestBestBuffer(t *testing.T) {
	pts := []SweepPoint{{8, 500}, {16, 980}, {24, 1000}, {120, 1005}}
	best := BestBuffer(pts)
	if best.BufKB != 24 {
		t.Fatalf("best = %d, want the knee at 24", best.BufKB)
	}
	if BestBuffer(nil).BufKB != 0 {
		t.Fatal("empty sweep")
	}
}

func TestSweepBuffersRuns(t *testing.T) {
	pts := SweepBuffers(DECConfigs()[0], 1<<20, []int{8, 24})
	if len(pts) != 2 || pts[0].Throughput <= 0 || pts[1].Throughput <= 0 {
		t.Fatalf("sweep: %+v", pts)
	}
	if pts[1].Throughput < pts[0].Throughput {
		t.Fatalf("larger buffer slower: %+v", pts)
	}
	out := FormatSweep(DECConfigs()[0], pts)
	if !strings.Contains(out, "best:") {
		t.Fatal("sweep formatting")
	}
}

func TestLossAblationRecovers(t *testing.T) {
	r := runTTCPWithLoss(DECConfigs()[0], 24, 1<<20, 0.02)
	if r.Err != nil {
		t.Fatalf("lossy transfer failed: %v", r.Err)
	}
	clean := RunTTCP(DECConfigs()[0], 24, 1<<20)
	if r.KBps() >= clean.KBps() {
		t.Fatalf("loss did not reduce throughput: %.0f vs %.0f", r.KBps(), clean.KBps())
	}
}

// TestThroughputOrderingMatchesPaper is the headline Table 2 shape check
// as a unit test: server < library-IPC < library-SHM <= library-SHM-IPF,
// and the libraries within 25% of the kernel.
func TestThroughputOrderingMatchesPaper(t *testing.T) {
	dec := DECConfigs()
	get := func(i int) float64 {
		r := RunTTCP(dec[i], dec[i].RcvBufKB, 4<<20)
		if r.Err != nil {
			t.Fatalf("%s: %v", dec[i].Name, r.Err)
		}
		return r.KBps()
	}
	kernel, server := get(0), get(2)
	ipc, shm, ipf := get(3), get(4), get(5)
	if !(server < ipc && ipc < shm && shm <= ipf) {
		t.Fatalf("ordering violated: srv=%.0f ipc=%.0f shm=%.0f ipf=%.0f", server, ipc, shm, ipf)
	}
	if ipf < 0.75*kernel {
		t.Fatalf("library-SHM-IPF (%.0f) should be comparable to kernel (%.0f)", ipf, kernel)
	}
	if server > 0.70*kernel {
		t.Fatalf("server (%.0f) should be well below kernel (%.0f)", server, kernel)
	}
}

// TestLatencyMatchesTable2Anchors pins the UDP 1-byte round trips to the
// paper's published values within 5%.
func TestLatencyMatchesTable2Anchors(t *testing.T) {
	dec := DECConfigs()
	anchors := []struct {
		idx  int
		want float64 // ms
	}{
		{0, 1.45}, {1, 1.52}, {2, 3.61}, {3, 1.40}, {4, 1.34}, {5, 1.23},
	}
	for _, a := range anchors {
		r := RunProtolat(dec[a.idx], true, 1, 100)
		if r.Err != nil {
			t.Fatalf("%s: %v", dec[a.idx].Name, r.Err)
		}
		if got := r.Ms(); got < a.want*0.95 || got > a.want*1.05 {
			t.Errorf("%s UDP 1B RTT = %.2f ms, paper %.2f (±5%%)", dec[a.idx].Name, got, a.want)
		}
	}
}

// TestDeterministicMeasurements: the whole measurement pipeline must be
// bit-for-bit reproducible — same config, same seed, same numbers.
func TestDeterministicMeasurements(t *testing.T) {
	cfg := DECConfigs()[5]
	r1 := RunTTCP(cfg, cfg.RcvBufKB, 2<<20)
	r2 := RunTTCP(cfg, cfg.RcvBufKB, 2<<20)
	if r1.Err != nil || r2.Err != nil {
		t.Fatal(r1.Err, r2.Err)
	}
	if r1.Duration != r2.Duration {
		t.Fatalf("throughput runs differ: %v vs %v", r1.Duration, r2.Duration)
	}
	l1 := RunProtolat(cfg, true, 100, 50)
	l2 := RunProtolat(cfg, true, 100, 50)
	if l1.Avg != l2.Avg {
		t.Fatalf("latency runs differ: %v vs %v", l1.Avg, l2.Avg)
	}
}
