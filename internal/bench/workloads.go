package bench

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/socketapi"
)

// ttcp constants matching the paper's methodology: a memory-to-memory
// transfer of 16 MB in 8 KB writes.
const (
	ttcpTotalBytes = 16 << 20
	ttcpChunk      = 8 << 10
	ttcpPort       = 5001
)

// TTCPResult is one throughput measurement.
type TTCPResult struct {
	Bytes    int
	Duration time.Duration
	Err      error
}

// KBps returns throughput in KB/second (1 KB = 1024 bytes, as ttcp
// reports).
func (r TTCPResult) KBps() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1024 / r.Duration.Seconds()
}

// RunTTCP runs the throughput benchmark on a fresh world built from cfg,
// with the given receive buffer size (KB).
func RunTTCP(cfg SysConfig, rcvBufKB int, totalBytes int) TTCPResult {
	if totalBytes == 0 {
		totalBytes = ttcpTotalBytes
	}
	w := cfg.Build(42)
	res := TTCPResult{}
	var start, end sim.Time
	payload := make([]byte, ttcpChunk)
	for i := range payload {
		payload[i] = byte(i)
	}

	sink := w.NewB("ttcp-sink")
	source := w.NewA("ttcp-source")

	w.Sim.Spawn("sink", func(p *sim.Proc) {
		ls, err := sink.Socket(p, socketapi.SockStream)
		if err != nil {
			res.Err = err
			return
		}
		sink.SetSockOpt(p, ls, socketapi.SoRcvBuf, rcvBufKB*1024)
		if err := sink.Bind(p, ls, socketapi.SockAddr{Port: ttcpPort}); err != nil {
			res.Err = err
			return
		}
		sink.Listen(p, ls, 1)
		fd, _, err := sink.Accept(p, ls)
		if err != nil {
			res.Err = err
			return
		}
		got := 0
		buf := make([]byte, ttcpChunk)
		zc, useZC := sink.(socketapi.ZeroCopyAPI)
		useZC = useZC && cfg.NewAPI
		for {
			var n int
			var err error
			if useZC {
				var view []byte
				view, _, err = zc.RecvZC(p, fd, ttcpChunk, 0)
				n = len(view)
			} else {
				n, err = sink.Recv(p, fd, buf, 0)
			}
			if err != nil {
				res.Err = err
				return
			}
			if n == 0 {
				break
			}
			got += n
		}
		end = p.Now()
		res.Bytes = got
		sink.Close(p, fd)
		sink.Close(p, ls)
	})

	w.Sim.Spawn("source", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		fd, err := source.Socket(p, socketapi.SockStream)
		if err != nil {
			res.Err = err
			return
		}
		source.SetSockOpt(p, fd, socketapi.SoSndBuf, rcvBufKB*1024)
		if err := source.Connect(p, fd, socketapi.SockAddr{Addr: w.IPB, Port: ttcpPort}); err != nil {
			res.Err = err
			return
		}
		start = p.Now()
		zc, useZC := source.(socketapi.ZeroCopyAPI)
		useZC = useZC && cfg.NewAPI
		for sent := 0; sent < totalBytes; {
			chunk := ttcpChunk
			if sent+chunk > totalBytes {
				chunk = totalBytes - sent
			}
			var n int
			var err error
			if useZC {
				n, err = zc.SendZC(p, fd, payload[:chunk], 0)
			} else {
				n, err = source.Send(p, fd, payload[:chunk], 0)
			}
			if err != nil {
				res.Err = err
				return
			}
			sent += n
		}
		source.Close(p, fd)
	})

	if err := w.Sim.Run(); err != nil && res.Err == nil {
		res.Err = err
	}
	res.Duration = end.Sub(start)
	if res.Err == nil && res.Bytes != totalBytes {
		res.Err = fmt.Errorf("ttcp: received %d of %d bytes", res.Bytes, totalBytes)
	}
	noteRun(cfg.Name+" ttcp", res.Duration, w.Rec)
	return res
}

// LatResult is one round-trip latency measurement.
type LatResult struct {
	Rounds int
	Avg    time.Duration
	Err    error
	NA     bool
}

// Ms returns the average round trip in milliseconds.
func (r LatResult) Ms() float64 { return float64(r.Avg) / float64(time.Millisecond) }

const protolatPort = 5002

// RunProtolat measures average round-trip latency for msgSize-byte
// messages over TCP or UDP, in the manner of the paper's protolat
// program: a client-server ping-pong on an otherwise idle network,
// excluding a warmup round (connection setup, ARP).
func RunProtolat(cfg SysConfig, udp bool, msgSize, rounds int) LatResult {
	if !udp && cfg.TCPLatNA && msgSize >= 1024 {
		// The 386BSD/BNR2SS large-TCP-packet bug: the paper reports NA.
		return LatResult{NA: true}
	}
	w := cfg.Build(7)
	res := runProtolatOn(w, cfg, !udp, msgSize, rounds, nil)
	proto := "tcp"
	if udp {
		proto = "udp"
	}
	noteRun(fmt.Sprintf("%s protolat-%s-%d", cfg.Name, proto, msgSize),
		time.Duration(res.Rounds)*res.Avg, w.Rec)
	return res
}

// runProtolatOn runs the latency workload on an already-built world.
// counting, when non-nil, is flipped on after the warmup round and off
// after the measured rounds (the Table 4 instrumentation window).
func runProtolatOn(w *World, cfg SysConfig, tcp bool, msgSize, rounds int, counting func(on bool)) LatResult {
	udp := !tcp
	res := LatResult{Rounds: rounds}
	styp := socketapi.SockStream
	if udp {
		styp = socketapi.SockDgram
	}
	msg := make([]byte, msgSize)

	server := w.NewB("protolat-server")
	client := w.NewA("protolat-client")

	echo := func(p *sim.Proc, api socketapi.API, fd int) bool {
		// Read one full message and send it back.
		buf := make([]byte, msgSize)
		got := 0
		for got < msgSize {
			n, from, err := api.RecvFrom(p, fd, buf[got:], 0)
			if err != nil {
				res.Err = err
				return false
			}
			if n == 0 {
				return false
			}
			got += n
			if udp {
				if _, err := api.SendTo(p, fd, buf[:n], 0, from); err != nil {
					res.Err = err
					return false
				}
				return true
			}
		}
		if _, err := api.Send(p, fd, buf, 0); err != nil {
			res.Err = err
			return false
		}
		return true
	}

	w.Sim.Spawn("server", func(p *sim.Proc) {
		fd, err := server.Socket(p, styp)
		if err != nil {
			res.Err = err
			return
		}
		if err := server.Bind(p, fd, socketapi.SockAddr{Port: protolatPort}); err != nil {
			res.Err = err
			return
		}
		conn := fd
		if !udp {
			server.Listen(p, fd, 1)
			c, _, err := server.Accept(p, fd)
			if err != nil {
				res.Err = err
				return
			}
			conn = c
		}
		for i := 0; i < rounds+1; i++ { // +1 warmup
			if !echo(p, server, conn) {
				return
			}
		}
		if !udp {
			server.Close(p, conn)
		}
		server.Close(p, fd)
	})

	w.Sim.Spawn("client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		fd, err := client.Socket(p, styp)
		if err != nil {
			res.Err = err
			return
		}
		if err := client.Connect(p, fd, socketapi.SockAddr{Addr: w.IPB, Port: protolatPort}); err != nil {
			res.Err = err
			return
		}
		buf := make([]byte, msgSize)
		roundTrip := func() bool {
			if _, err := client.Send(p, fd, msg, 0); err != nil {
				res.Err = err
				return false
			}
			got := 0
			for got < msgSize {
				n, err := client.Recv(p, fd, buf[got:], 0)
				if err != nil {
					res.Err = err
					return false
				}
				if n == 0 {
					res.Err = fmt.Errorf("protolat: premature EOF")
					return false
				}
				got += n
				if udp {
					break
				}
			}
			return true
		}
		if !roundTrip() { // warmup: ARP, slow start, caches
			return
		}
		if counting != nil {
			counting(true)
		}
		start := p.Now()
		for i := 0; i < rounds; i++ {
			if !roundTrip() {
				return
			}
		}
		res.Avg = time.Duration(int64(p.Now().Sub(start)) / int64(rounds))
		if counting != nil {
			counting(false)
		}
		client.Close(p, fd)
	})

	if err := w.Sim.Run(); err != nil && res.Err == nil {
		res.Err = err
	}
	return res
}
