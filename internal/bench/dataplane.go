package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/dataplane"
	"repro/internal/filter"
	"repro/internal/kern"
	"repro/internal/wire"
	"repro/psd"
)

// Dataplane suite: what does programmability cost? Two sweeps and a
// churn gate:
//
//	ttcp-chain:     bulk TCP throughput with a data plane installed on
//	                both hosts and a rule chain of N never-matching
//	                filter programs — every frame pays the full
//	                netfilter-style traversal at its receiver.
//	protolat-chain: TCP round-trip latency under the same chains, where
//	                the per-frame charge is most visible.
//	vip-churn:      the L4 load-balancer conservation gate (psd.RunLB)
//	                on every architecture flavor: kill a backend mid-
//	                run, add a fresh one, and demand zero leaked flows
//	                and SNAT ports.
//
// The chain lengths reproduce the classic packet-filter scaling
// question: a hook with an empty chain prices the plane itself; 128
// rules price a badly-ordered production rule set.

// DataplaneChainLengths are the rule-chain sizes the sweeps measure.
var DataplaneChainLengths = []int{0, 8, 32, 128}

// dataplaneTTCPBytes sizes each throughput cell; 1 MB keeps the
// 16-cell sweep quick while steady state still dominates.
const dataplaneTTCPBytes = 1 << 20

// dataplaneLatRounds is the round-trip count per latency cell.
const dataplaneLatRounds = 100

// DataplaneCell is one measurement row of BENCH_dataplane.json.
type DataplaneCell struct {
	Config   string `json:"config"`
	Workload string `json:"workload"`

	// Chain-sweep cells.
	ChainRules  int     `json:"chain_rules"`
	ChainInstrs int     `json:"chain_instrs,omitempty"`
	KBps        float64 `json:"kbps,omitempty"`
	LatencyMs   float64 `json:"latency_ms,omitempty"`

	// vip-churn cells: the RunLB conservation outcome.
	Conns     int64 `json:"conns,omitempty"`
	Served    int64 `json:"served,omitempty"`
	Failed    int64 `json:"failed,omitempty"`
	Rehomed   int64 `json:"rehomed,omitempty"`
	Resets    int64 `json:"resets,omitempty"`
	FlowsLeft int64 `json:"flows_left,omitempty"`
	SNATLeft  int64 `json:"snat_left,omitempty"`
}

// DataplaneReport is the JSON document psdbench -dataplane writes.
type DataplaneReport struct {
	Label   string          `json:"label"`
	Date    string          `json:"date,omitempty"`
	Results []DataplaneCell `json:"results"`
}

// WriteDataplaneJSON writes a report as indented JSON.
func WriteDataplaneJSON(w io.Writer, rep DataplaneReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// attachPlanes installs a data plane with a rule chain of n never-
// matching programs on both hosts of a world, returning the chain's
// instruction count. The rules match distinct unused TEST-NET remotes,
// so every frame walks the entire chain — the traversal upper bound the
// cost model charges.
func attachPlanes(w *World, n int) int {
	instrs := 0
	hosts := []struct {
		h  *kern.Host
		ip wire.IPAddr
	}{{w.hostA, w.IPA}, {w.hostB, w.IPB}}
	for _, hh := range hosts {
		h := hh.h
		p := dataplane.New(dataplane.Config{
			Sim:      w.Sim,
			LocalIP:  hh.ip,
			LocalMAC: h.NIC.MAC(),
			Transmit: h.RawTransmit,
		})
		for i := 0; i < n; i++ {
			prog := filter.Compile(filter.MatchSpec{
				RemoteIP: wire.IP(192, 0, 2, byte(1+i%250)),
			})
			if _, err := p.Chain.Append(prog, filter.VerdictDrop); err != nil {
				panic(err) // Compile output always validates
			}
		}
		h.SetHook(p)
		instrs = p.Chain.Instructions()
	}
	return instrs
}

// RunDataplaneTTCP measures one throughput cell: bulk TCP transfer with
// an n-rule chain on both hosts.
func RunDataplaneTTCP(cfg SysConfig, n int) (DataplaneCell, error) {
	cell := DataplaneCell{Config: cfg.Name, Workload: "ttcp-chain", ChainRules: n}
	var w *World
	restore := captureBuild(&w, func(w *World) {
		cell.ChainInstrs = attachPlanes(w, n)
	})
	res := RunTTCP(cfg, cfg.RcvBufKB, dataplaneTTCPBytes)
	restore()
	if res.Err != nil {
		return cell, res.Err
	}
	cell.KBps = res.KBps()
	return cell, nil
}

// RunDataplaneLat measures one latency cell: 64-byte TCP round trips
// under an n-rule chain on both hosts.
func RunDataplaneLat(cfg SysConfig, n int) (DataplaneCell, error) {
	cell := DataplaneCell{Config: cfg.Name, Workload: "protolat-chain", ChainRules: n}
	var w *World
	restore := captureBuild(&w, func(w *World) {
		cell.ChainInstrs = attachPlanes(w, n)
	})
	res := RunProtolat(cfg, false, 64, dataplaneLatRounds)
	restore()
	if res.Err != nil {
		return cell, res.Err
	}
	cell.LatencyMs = res.Ms()
	return cell, nil
}

// runDataplaneChurn runs the L4 load-balancer churn workload on one
// architecture flavor and gates on its conservation laws.
func runDataplaneChurn(f psd.ArchFlavor) (DataplaneCell, error) {
	cell := DataplaneCell{Config: f.Name, Workload: "vip-churn"}
	cfg := psd.DefaultLB(7)
	cfg.Arch = f.New()
	rep, err := psd.RunLB(cfg)
	if err != nil {
		return cell, err
	}
	if err := rep.Check(); err != nil {
		return cell, err
	}
	cell.Conns = int64(rep.ConnsPlan)
	cell.Served = rep.Served
	cell.Failed = rep.Failed
	cell.Rehomed = rep.Rehomed
	cell.Resets = rep.Resets
	cell.FlowsLeft = rep.FlowsLeft
	cell.SNATLeft = rep.SNATLeft
	return cell, nil
}

// RunDataplaneSuite measures every cell: throughput and latency at each
// chain length on each Columns() configuration, then the VIP churn gate
// on each architecture flavor. Deterministic: two calls return
// identical rows.
func RunDataplaneSuite() ([]DataplaneCell, error) {
	var out []DataplaneCell
	for _, cfg := range Columns() {
		for _, n := range DataplaneChainLengths {
			cell, err := RunDataplaneTTCP(cfg, n)
			if err != nil {
				return nil, fmt.Errorf("dataplane: %s ttcp chain=%d: %w", cfg.Name, n, err)
			}
			out = append(out, cell)
		}
	}
	for _, cfg := range Columns() {
		for _, n := range DataplaneChainLengths {
			cell, err := RunDataplaneLat(cfg, n)
			if err != nil {
				return nil, fmt.Errorf("dataplane: %s protolat chain=%d: %w", cfg.Name, n, err)
			}
			out = append(out, cell)
		}
	}
	for _, f := range psd.ArchFlavors() {
		cell, err := runDataplaneChurn(f)
		if err != nil {
			return nil, fmt.Errorf("dataplane: %s vip-churn: %w", f.Name, err)
		}
		out = append(out, cell)
	}
	return out, nil
}
