package bench

import (
	"reflect"
	"testing"
)

// TestTSOUnderFaultRetransmits is the TSO-under-fault regression: when
// the wire drops a frame the engine sliced out of a super-segment, the
// sender's stack must retransmit it from the chain-holding send queue
// and the transfer must still complete byte-perfect.
func TestTSOUnderFaultRetransmits(t *testing.T) {
	cfg := OffloadConfig()
	wasOn := metricsCfg.enabled
	EnableMetrics()
	defer func() { metricsCfg.enabled = wasOn }()

	var w *World
	restore := captureBuild(&w, func(w *World) {
		r := w.Seg.Faults().DefaultRates()
		r.Drop = 0.03
		w.Seg.Faults().SetDefaultRates(r)
	})
	res := RunTTCP(cfg, cfg.RcvBufKB, 256<<10)
	restore()
	if res.Err != nil {
		t.Fatalf("lossy transfer failed: %v", res.Err)
	}
	if res.Bytes != 256<<10 {
		t.Fatalf("received %d bytes, want %d", res.Bytes, 256<<10)
	}
	snap := w.Reg.Snapshot(w.Sim.Now().Duration())
	if v := snap.Sum(".offload.tso_super"); v == 0 {
		t.Fatalf("no TSO super-segments — the fault path never exercised slicing")
	}
	if v := snap.Sum(".tcp_rexmit") + snap.Sum(".tcp_fast_rexmit"); v == 0 {
		t.Fatalf("no retransmissions under 3%% drop — the regression is vacuous")
	}
}

// TestOffloadSteadyAcceptance pins the headline claim: on tcp-steady
// the offload column takes strictly fewer wakeups per wire segment and
// software-checksums strictly fewer bytes than Library-SHM-IPF at two
// offered-load points.
func TestOffloadSteadyAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second steady-state cells")
	}
	lib, off := HeadlineConfig(), OffloadConfig()
	for _, mbps := range []float64{2, 5} {
		lc, err := RunOffloadSteady(lib, mbps)
		if err != nil {
			t.Fatalf("library %.0f Mb/s: %v", mbps, err)
		}
		oc, err := RunOffloadSteady(off, mbps)
		if err != nil {
			t.Fatalf("offload %.0f Mb/s: %v", mbps, err)
		}
		if oc.WakeupsPerSegment >= lc.WakeupsPerSegment {
			t.Errorf("%.0f Mb/s: offload wakeups/segment %.3f, library %.3f — want strictly fewer",
				mbps, oc.WakeupsPerSegment, lc.WakeupsPerSegment)
		}
		if oc.SwChecksumBytes >= lc.SwChecksumBytes {
			t.Errorf("%.0f Mb/s: offload sw-checksummed %d B, library %d B — want strictly fewer",
				mbps, oc.SwChecksumBytes, lc.SwChecksumBytes)
		}
		if oc.Deliveries >= oc.WireFrames {
			t.Errorf("%.0f Mb/s: %d deliveries for %d wire frames — LRO never coalesced",
				mbps, oc.Deliveries, oc.WireFrames)
		}
	}
}

// TestTSOAllocBudget holds the offload transmit path to the same
// per-segment allocation ceiling PR 3 set for the software hot path:
// slicing super-segments in the engine must reuse pooled buffers, not
// trade the copy savings for header-clone garbage.
func TestTSOAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting run skipped in -short")
	}
	cfg := OffloadConfig()
	unhook := setBuildHook(func(w *World) { hookWorld = w })
	defer unhook()

	segs := 0
	run := func() {
		r := RunTTCP(cfg, cfg.RcvBufKB, 2<<20)
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if hookWorld != nil && hookWorld.hostA.NIC.TxFrames.Value() > 0 {
			segs = int(hookWorld.hostA.NIC.TxFrames.Value())
		}
	}
	run() // warm the global buffer pools

	allocs := testing.AllocsPerRun(3, run)
	if segs == 0 {
		t.Fatal("no transmitted segments observed")
	}
	perSeg := allocs / float64(segs)
	t.Logf("TSO path: %.0f allocs/run over %d wire segments = %.2f allocs/segment (budget %.0f)",
		allocs, segs, perSeg, allocsPerSegmentBudget)
	if perSeg > allocsPerSegmentBudget {
		t.Fatalf("TSO path allocates %.2f objects/segment; budget is %.0f", perSeg, allocsPerSegmentBudget)
	}
}

// TestOffloadSteadyDeterminism: the same cell measured twice must be
// identical in every field — the in-process half of the -count=2
// determinism battery CI runs on the offload lane.
func TestOffloadSteadyDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second steady-state cells")
	}
	cfg := OffloadConfig()
	a, err := RunOffloadSteady(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOffloadSteady(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("offload steady cell not deterministic:\n  %+v\n  %+v", a, b)
	}
}
