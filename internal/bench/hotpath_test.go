package bench

import (
	"testing"
)

// Steady-state allocation budget for the TCP hot path. The seed tree spent
// ~69 heap allocations per transmitted segment on the Library ttcp
// workload; the pooled mbuf/checksum/event hot path brings that under 6.
// The budget below is deliberately loose (pool warm-up, world
// construction, and map growth all amortize differently across machines)
// but pins the order of magnitude: a regression back to per-packet
// allocation would blow through it immediately.
const allocsPerSegmentBudget = 15.0

// TestSteadyStateTCPAllocBudget runs the paper's headline configuration
// (Library-SHM-IPF) end to end — sender stack, wire, receiver stack,
// ack path — and asserts the whole run stays inside the per-segment
// allocation budget.
func TestSteadyStateTCPAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting run skipped in -short")
	}
	cfg := DECConfigs()[5] // Library-SHM-IPF
	unhook := setBuildHook(func(w *World) { hookWorld = w })
	defer unhook()

	segs := 0
	run := func() {
		r := RunTTCP(cfg, cfg.RcvBufKB, 2<<20)
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if hookWorld != nil && hookWorld.hostA.NIC.TxFrames.Value() > 0 {
			segs = int(hookWorld.hostA.NIC.TxFrames.Value())
		}
	}
	run() // warm the global buffer pools

	allocs := testing.AllocsPerRun(3, run)
	if segs == 0 {
		t.Fatal("no transmitted segments observed")
	}
	perSeg := allocs / float64(segs)
	t.Logf("steady-state TCP: %.0f allocs/run over %d segments = %.2f allocs/segment (budget %.0f)",
		allocs, segs, perSeg, allocsPerSegmentBudget)
	if perSeg > allocsPerSegmentBudget {
		t.Fatalf("TCP hot path allocates %.2f objects/segment; budget is %.0f", perSeg, allocsPerSegmentBudget)
	}
}

// TestHotpathSuiteRuns is the smoke test for the benchmark harness itself:
// every workload in the suite must complete and report sane metrics on a
// tiny transfer.
func TestHotpathSuiteRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke run skipped in -short")
	}
	for _, wl := range hotpathSuite() {
		virt, segs, err := wl.run(128<<10, 4)
		if err != nil {
			t.Fatalf("%s: %v", wl.name, err)
		}
		if virt <= 0 {
			t.Errorf("%s: nonpositive virtual duration %v", wl.name, virt)
		}
		if segs <= 0 {
			t.Errorf("%s: no segments counted", wl.name)
		}
	}
}
