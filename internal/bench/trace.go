package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/trace"
)

// Flight-recorder capture for the harness: when enabled, every world the
// benchmarks build carries a recorder, and the harness remembers the
// slowest measured run so psdbench can dump the one trace most worth
// staring at.

var traceCfg struct {
	enabled bool
	layers  []trace.Layer
	limit   int

	slowLabel   string
	slowElapsed time.Duration
	slowRec     *trace.Recorder
}

// EnableTrace turns on flight recording for every world built after the
// call. limit caps records per run (0 = unlimited); layers defaults to
// net+stack+core when empty.
func EnableTrace(limit int, layers ...trace.Layer) {
	if len(layers) == 0 {
		layers = []trace.Layer{trace.LayerNet, trace.LayerStack, trace.LayerCore}
	}
	traceCfg.enabled = true
	traceCfg.layers = layers
	traceCfg.limit = limit
}

// DisableTrace switches recording back off (tests).
func DisableTrace() {
	traceCfg.enabled = false
	traceCfg.slowLabel, traceCfg.slowElapsed, traceCfg.slowRec = "", 0, nil
}

// attachTrace wires a recorder into a freshly built world when capture
// is enabled (called from Build).
func attachTrace(w *World) {
	if !traceCfg.enabled || w.setTrace == nil {
		return
	}
	rec := trace.New(w.Sim, traceCfg.layers...)
	if traceCfg.limit > 0 {
		rec.SetLimit(traceCfg.limit)
	}
	w.Seg.SetTrace(rec)
	w.Sim.SetTracer(rec.SimTracer())
	w.setTrace(rec)
	w.Rec = rec
}

// noteRun keeps the recorder of the slowest run seen so far, measured in
// elapsed virtual time.
func noteRun(label string, elapsed time.Duration, rec *trace.Recorder) {
	if rec == nil || elapsed <= traceCfg.slowElapsed {
		return
	}
	traceCfg.slowLabel, traceCfg.slowElapsed, traceCfg.slowRec = label, elapsed, rec
}

// DumpSlowest writes the slowest traced run under dir as trace.txt,
// trace.pcap and trace.json, returning a one-line report.
func DumpSlowest(dir string) (string, error) {
	rec := traceCfg.slowRec
	if rec == nil {
		return "", fmt.Errorf("bench: no traced runs recorded (EnableTrace before running)")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	for _, out := range []struct {
		name  string
		write func(io.Writer) error
	}{
		{"trace.txt", rec.WriteText},
		{"trace.pcap", rec.WritePcap},
		{"trace.json", rec.WriteChromeTrace},
	} {
		f, err := os.Create(filepath.Join(dir, out.name))
		if err != nil {
			return "", err
		}
		err = out.write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return "", err
		}
	}
	return fmt.Sprintf("slowest run: %s (%v, %d events) -> %s/{trace.txt,trace.pcap,trace.json}",
		traceCfg.slowLabel, traceCfg.slowElapsed, rec.Len(), dir), nil
}
