package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/socketapi"
)

// Proxy forwarding benchmark: a source on host A streams through a
// forwarding proxy on host B back to a sink on host A. The proxy is the
// workload where data movement dominates — every payload byte enters
// and leaves the same process — so it isolates exactly what the chain
// interface buys over flat BSD calls. Three forwarding strategies:
//
//	bsd:    Recv into a flat buffer, Send it on — the classic loop,
//	        two socket-layer copies per forwarded byte.
//	chain:  RecvPeek an aliased view, surrender it to SendChain —
//	        zero copies where the architecture can alias protocol
//	        storage, an honest degradation to copies where a
//	        protection boundary forbids it.
//	splice: one Splice call — the pump runs below the socket API, and
//	        on the decomposed architecture inside the OS server, so
//	        forwarded bytes are never even mapped into the proxy.
const (
	proxyInPort  = 5003 // proxy listens here for the source
	proxyOutPort = 5004 // sink listens here for the proxy
	proxyChunk   = 8 << 10
)

// ProxyModes lists the forwarding strategies in report order.
var ProxyModes = []string{"bsd", "chain", "splice"}

// ProxyResult is one proxy forwarding measurement.
type ProxyResult struct {
	Mode     string
	Bytes    int
	Duration time.Duration // first byte sent to last byte sunk, virtual time

	// Copy accounting on the proxy host (host B), from the socket-layer
	// counters of every stack running there.
	CopiedBytes  int64 // bytes physically copied at the socket layer
	AliasedBytes int64 // bytes moved by reference
	SplicedBytes int64 // bytes moved by Splice
	Segments     int   // frames the proxy host transmitted

	Err error
}

// KBps returns forwarding throughput in KB/second.
func (r ProxyResult) KBps() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1024 / r.Duration.Seconds()
}

// CopiesPerByte is the headline ratio: socket-layer copied bytes on the
// proxy host per payload byte forwarded. 2.0 for the classic loop,
// ~0 for a fully aliased path.
func (r ProxyResult) CopiesPerByte() float64 {
	if r.Bytes == 0 {
		return 0
	}
	return float64(r.CopiedBytes) / float64(r.Bytes)
}

// RunProxy forwards totalBytes through a proxy on host B using the
// given mode, on a fresh world built from cfg. Deterministic for a
// given (cfg, mode, totalBytes).
func RunProxy(cfg SysConfig, mode string, totalBytes int) ProxyResult {
	if totalBytes == 0 {
		totalBytes = 4 << 20
	}
	wasOn := metricsCfg.enabled
	EnableMetrics()
	var w *World
	restore := captureBuild(&w)
	w = cfg.Build(43)
	restore()
	metricsCfg.enabled = wasOn

	res := ProxyResult{Mode: mode}
	var start, end sim.Time

	sink := w.NewA("proxy-sink")
	source := w.NewA("proxy-source")
	proxy := w.NewB("proxy-fwd")

	w.Sim.Spawn("sink", func(p *sim.Proc) {
		ls, err := sink.Socket(p, socketapi.SockStream)
		if err != nil {
			res.Err = err
			return
		}
		sink.SetSockOpt(p, ls, socketapi.SoRcvBuf, cfg.RcvBufKB*1024)
		if err := sink.Bind(p, ls, socketapi.SockAddr{Port: proxyOutPort}); err != nil {
			res.Err = err
			return
		}
		sink.Listen(p, ls, 1)
		fd, _, err := sink.Accept(p, ls)
		if err != nil {
			res.Err = err
			return
		}
		got := 0
		buf := make([]byte, proxyChunk)
		for got < totalBytes {
			n, err := sink.Recv(p, fd, buf, 0)
			if err != nil {
				res.Err = err
				return
			}
			if n == 0 {
				break
			}
			got += n
		}
		end = p.Now()
		res.Bytes = got
		sink.Close(p, fd)
		sink.Close(p, ls)
	})

	w.Sim.Spawn("proxy", func(p *sim.Proc) {
		p.Sleep(time.Millisecond) // let the sink bind
		ls, err := proxy.Socket(p, socketapi.SockStream)
		if err != nil {
			res.Err = err
			return
		}
		proxy.SetSockOpt(p, ls, socketapi.SoRcvBuf, cfg.RcvBufKB*1024)
		if err := proxy.Bind(p, ls, socketapi.SockAddr{Port: proxyInPort}); err != nil {
			res.Err = err
			return
		}
		proxy.Listen(p, ls, 1)
		src, _, err := proxy.Accept(p, ls)
		if err != nil {
			res.Err = err
			return
		}
		dst, err := proxy.Socket(p, socketapi.SockStream)
		if err != nil {
			res.Err = err
			return
		}
		proxy.SetSockOpt(p, dst, socketapi.SoSndBuf, cfg.RcvBufKB*1024)
		if err := proxy.Connect(p, dst, socketapi.SockAddr{Addr: w.IPA, Port: proxyOutPort}); err != nil {
			res.Err = err
			return
		}
		if err := forward(p, proxy, mode, dst, src, totalBytes); err != nil {
			res.Err = err
		}
		proxy.Close(p, dst)
		proxy.Close(p, src)
		proxy.Close(p, ls)
	})

	w.Sim.Spawn("source", func(p *sim.Proc) {
		p.Sleep(2 * time.Millisecond) // let the proxy listen
		fd, err := source.Socket(p, socketapi.SockStream)
		if err != nil {
			res.Err = err
			return
		}
		source.SetSockOpt(p, fd, socketapi.SoSndBuf, cfg.RcvBufKB*1024)
		if err := source.Connect(p, fd, socketapi.SockAddr{Addr: w.IPB, Port: proxyInPort}); err != nil {
			res.Err = err
			return
		}
		start = p.Now()
		payload := make([]byte, proxyChunk)
		for i := range payload {
			payload[i] = byte(i)
		}
		for sent := 0; sent < totalBytes; {
			chunk := proxyChunk
			if sent+chunk > totalBytes {
				chunk = totalBytes - sent
			}
			n, err := source.Send(p, fd, payload[:chunk], 0)
			if err != nil {
				res.Err = err
				return
			}
			sent += n
		}
		source.Close(p, fd)
	})

	if err := w.Sim.Run(); err != nil && res.Err == nil {
		res.Err = err
	}
	res.Duration = end.Sub(start)
	if res.Err == nil && res.Bytes != totalBytes {
		res.Err = fmt.Errorf("proxy: sank %d of %d bytes", res.Bytes, totalBytes)
	}
	res.CopiedBytes = hostSum(w, "host.B.", ".sock_copied_bytes")
	res.AliasedBytes = hostSum(w, "host.B.", ".sock_aliased_bytes")
	res.SplicedBytes = hostSum(w, "host.B.", ".splice_bytes")
	res.Segments = int(w.hostB.NIC.TxFrames.Value())
	return res
}

// forward pumps totalBytes from src to dst inside the proxy process
// using the selected strategy.
func forward(p *sim.Proc, api socketapi.API, mode string, dst, src, totalBytes int) error {
	switch mode {
	case "bsd":
		buf := make([]byte, proxyChunk)
		for moved := 0; moved < totalBytes; {
			n, err := api.Recv(p, src, buf, 0)
			if err != nil {
				return err
			}
			if n == 0 {
				break
			}
			if _, err := api.Send(p, dst, buf[:n], 0); err != nil {
				return err
			}
			moved += n
		}
		return nil

	case "chain":
		ch, ok := api.(socketapi.ChainAPI)
		if !ok {
			return fmt.Errorf("proxy: %T lacks the chain interface", api)
		}
		for moved := 0; moved < totalBytes; {
			view, err := ch.RecvPeek(p, src, proxyChunk, nil)
			if err != nil {
				return err
			}
			n := view.Chain.Len()
			if n == 0 {
				view.Chain.Release()
				break
			}
			if err := ch.RecvRelease(p, src, n); err != nil {
				view.Chain.Release()
				return err
			}
			if _, err := ch.SendChain(p, dst, view.Chain, 0); err != nil {
				return err
			}
			moved += n
		}
		return nil

	case "splice":
		ch, ok := api.(socketapi.ChainAPI)
		if !ok {
			return fmt.Errorf("proxy: %T lacks the chain interface", api)
		}
		_, err := ch.Splice(p, dst, src, totalBytes)
		return err

	default:
		return fmt.Errorf("proxy: unknown mode %q", mode)
	}
}

// hostSum totals every counter under the host prefix with the given
// suffix — per-host copy accounting over all stacks running there (a
// decomposed host runs one per library plus the OS server's).
func hostSum(w *World, prefix, suffix string) int64 {
	if w.Reg == nil {
		return 0
	}
	snap := w.Reg.Snapshot(w.Sim.Now().Duration())
	var total int64
	for _, it := range snap.Items {
		if strings.HasPrefix(it.Name, prefix) && strings.HasSuffix(it.Name, suffix) {
			total += it.Value
		}
	}
	return total
}

// ProxyMetrics is one row of BENCH_proxy.json: a (configuration,
// forwarding mode) cell with throughput, copy accounting, and the Go
// allocator's cost of carrying the run.
type ProxyMetrics struct {
	Config        string  `json:"config"`
	Mode          string  `json:"mode"`
	KBps          float64 `json:"kbps"`
	CopiesPerByte float64 `json:"copies_per_byte"`
	CopiedBytes   int64   `json:"copied_bytes"`
	AliasedBytes  int64   `json:"aliased_bytes"`
	SplicedBytes  int64   `json:"spliced_bytes"`
	Segments      int     `json:"segments"`

	NsPerOp          int64   `json:"ns_per_op"`
	BytesPerOp       int64   `json:"bytes_per_op"`
	AllocsPerOp      int64   `json:"allocs_per_op"`
	AllocsPerSegment float64 `json:"allocs_per_segment"`
}

// ProxyReport is the JSON document psdbench -proxy writes.
type ProxyReport struct {
	Label   string         `json:"label"`
	Date    string         `json:"date,omitempty"`
	Results []ProxyMetrics `json:"results"`
}

// proxyConfigs returns the architectures the proxy comparison runs
// on: the shared registry, so the proxy tables carry the same columns
// as the default suite, -scenarios, and -scale.
func proxyConfigs() []SysConfig { return Columns() }

// RunProxySuite measures every (configuration, mode) cell. totalBytes
// sizes each transfer (0 means 4 MB).
func RunProxySuite(totalBytes int) ([]ProxyMetrics, error) {
	if totalBytes == 0 {
		totalBytes = 4 << 20
	}
	var out []ProxyMetrics
	for _, cfg := range proxyConfigs() {
		for _, mode := range ProxyModes {
			var last ProxyResult
			var runErr error
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					last = RunProxy(cfg, mode, totalBytes)
					if last.Err != nil {
						runErr = last.Err
						b.Fatalf("proxy %s/%s: %v", cfg.Name, mode, last.Err)
					}
				}
			})
			if runErr != nil {
				return nil, fmt.Errorf("proxy %s/%s: %w", cfg.Name, mode, runErr)
			}
			m := ProxyMetrics{
				Config:        cfg.Name,
				Mode:          mode,
				KBps:          last.KBps(),
				CopiesPerByte: last.CopiesPerByte(),
				CopiedBytes:   last.CopiedBytes,
				AliasedBytes:  last.AliasedBytes,
				SplicedBytes:  last.SplicedBytes,
				Segments:      last.Segments,
				NsPerOp:       res.NsPerOp(),
				BytesPerOp:    res.AllocedBytesPerOp(),
				AllocsPerOp:   res.AllocsPerOp(),
			}
			if last.Segments > 0 {
				m.AllocsPerSegment = float64(res.AllocsPerOp()) / float64(last.Segments)
			}
			out = append(out, m)
		}
	}
	return out, nil
}

// WriteProxyJSON writes a report as indented JSON.
func WriteProxyJSON(w io.Writer, rep ProxyReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
