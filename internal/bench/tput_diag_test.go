package bench

import (
	"sort"

	"repro/internal/core"
	"repro/internal/stack"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/socketapi"
)

func runTputDiag(t *testing.T, cfg SysConfig, bufKB int) {
	w := cfg.Build(42)
	const total = 4 << 20
	sink := w.NewB("sink")
	source := w.NewA("source")
	var srcLib, sinkLib *core.Library
	if l, ok := source.(*core.Library); ok {
		srcLib = l
	}
	if l, ok := sink.(*core.Library); ok {
		sinkLib = l
	}
	var start, end sim.Time
	w.Sim.Spawn("sink", func(p *sim.Proc) {
		ls, _ := sink.Socket(p, socketapi.SockStream)
		sink.SetSockOpt(p, ls, socketapi.SoRcvBuf, bufKB*1024)
		sink.Bind(p, ls, socketapi.SockAddr{Port: 5001})
		sink.Listen(p, ls, 1)
		fd, _, _ := sink.Accept(p, ls)
		buf := make([]byte, 8192)
		got := 0
		for got < total {
			n, err := sink.Recv(p, fd, buf, 0)
			if err != nil || n == 0 {
				t.Errorf("recv: n=%d err=%v", n, err)
				return
			}
			got += n
		}
		end = p.Now()
	})
	w.Sim.Spawn("source", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		fd, _ := source.Socket(p, socketapi.SockStream)
		source.SetSockOpt(p, fd, socketapi.SoSndBuf, bufKB*1024)
		source.Connect(p, fd, socketapi.SockAddr{Addr: w.IPB, Port: 5001})
		start = p.Now()
		payload := make([]byte, 8192)
		for sent := 0; sent < total; {
			n, err := source.Send(p, fd, payload, 0)
			if err != nil {
				t.Error(err)
				return
			}
			sent += n
		}
	})
	if err := w.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	dur := end.Sub(start)
	txA := w.hostA.NIC.TxFrames.Value()
	txB := w.hostB.NIC.TxFrames.Value()
	cpuA := w.hostA.CPU.BusyTime()
	cpuB := w.hostB.CPU.BusyTime()
	t.Logf("%s buf=%dKB: %.0f KB/s; dataFrames(A)=%d (avg %0.f B/seg), acks(B)=%d, cpuA=%v (%.0f%%), cpuB=%v (%.0f%%), wire=%v busy",
		cfg.Name, bufKB, float64(total)/1024/dur.Seconds(),
		txA, float64(total)/float64(txA), txB,
		cpuA, 100*float64(cpuA)/float64(dur), cpuB, 100*float64(cpuB)/float64(dur),
		dur)
	if srcLib != nil {
		t.Logf("  src stack: %+v", srcLib.St.Stats)
	}
	if sinkLib != nil {
		t.Logf("  sink stack: %+v", sinkLib.St.Stats)
	}
}

func TestTputDiag(t *testing.T) {
	cfgs := DECConfigs()
	runTputDiag(t, cfgs[0], 24)  // kernel
	runTputDiag(t, cfgs[5], 120) // lib SHM-IPF
	runTputDiag(t, cfgs[5], 24)
	runTputDiag(t, cfgs[3], 24) // lib IPC
}

func TestSegLenHistogram(t *testing.T) {
	stack.DebugSegLens = map[int]int{}
	stack.DebugSendReasons = map[string]int{}
	stack.DebugSegTrace = true
	defer func() { stack.DebugSegLens = nil; stack.DebugSendReasons = nil; stack.DebugSegTrace = false }()
	runTputDiag(t, DECConfigs()[5], 120)
	t.Logf("resend reasons: %v", stack.DebugSendReasons)
	type kv struct{ l, c int }
	var all []kv
	for l, c := range stack.DebugSegLens {
		all = append(all, kv{l, c})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].c > all[j].c })
	for i, e := range all {
		if i > 12 {
			break
		}
		t.Logf("len %5d x %d", e.l, e.c)
	}
}
