package bench

import (
	"fmt"
	"strings"

	"repro/internal/fault"
)

// SweepPoint is one receive-buffer-size measurement.
type SweepPoint struct {
	BufKB      int
	Throughput float64
}

// SweepBuffers reproduces the paper's methodology for choosing each
// configuration's receive buffer: "running the throughput benchmarks with
// increasing buffer size until further increases did not improve
// throughput."
func SweepBuffers(cfg SysConfig, totalBytes int, sizesKB []int) []SweepPoint {
	if len(sizesKB) == 0 {
		sizesKB = []int{8, 16, 24, 32, 48, 64, 96, 120}
	}
	var out []SweepPoint
	for _, kb := range sizesKB {
		r := RunTTCP(cfg, kb, totalBytes)
		p := SweepPoint{BufKB: kb}
		if r.Err == nil {
			p.Throughput = r.KBps()
		}
		out = append(out, p)
	}
	return out
}

// BestBuffer returns the sweep's knee: the smallest buffer within 2% of
// the peak.
func BestBuffer(points []SweepPoint) SweepPoint {
	peak := 0.0
	for _, p := range points {
		if p.Throughput > peak {
			peak = p.Throughput
		}
	}
	for _, p := range points {
		if p.Throughput >= 0.98*peak {
			return p
		}
	}
	return SweepPoint{}
}

// FormatSweep renders a sweep.
func FormatSweep(cfg SysConfig, points []SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: throughput vs receive buffer\n", cfg.Name)
	for _, p := range points {
		fmt.Fprintf(&b, "  %4d KB  %6.0f KB/s\n", p.BufKB, p.Throughput)
	}
	best := BestBuffer(points)
	fmt.Fprintf(&b, "  best: %d KB (%.0f KB/s)\n", best.BufKB, best.Throughput)
	return b.String()
}

// AblationResult is one ablation measurement.
type AblationResult struct {
	Name     string
	Metric   string
	Baseline float64
	Variant  float64
}

// RunAblations measures the design choices DESIGN.md calls out, on the
// Library-SHM-IPF configuration:
//
//   - delayed ACKs on vs off (fast-timer flush only vs every-second-
//     segment coalescing): throughput effect,
//   - packet-filter delivery mode (SHM-IPF vs SHM vs per-packet IPC):
//     small-message latency effect,
//   - loss resilience: throughput at 1% injected loss vs clean network
//     (exercises fast retransmit and RTO machinery).
func RunAblations(opt Options) []AblationResult {
	var out []AblationResult

	base := DECConfigs()[5] // Library-SHM-IPF
	clean := RunTTCP(base, base.RcvBufKB, opt.TotalBytes)

	// Delivery-mode latency ablation.
	ipf := RunProtolat(base, true, 1, opt.LatRounds)
	shm := RunProtolat(DECConfigs()[4], true, 1, opt.LatRounds)
	ipc := RunProtolat(DECConfigs()[3], true, 1, opt.LatRounds)
	out = append(out,
		AblationResult{Name: "delivery SHM vs SHM-IPF", Metric: "UDP 1B RTT ms", Baseline: ipf.Ms(), Variant: shm.Ms()},
		AblationResult{Name: "delivery IPC vs SHM-IPF", Metric: "UDP 1B RTT ms", Baseline: ipf.Ms(), Variant: ipc.Ms()},
	)

	// Loss resilience.
	lossy := runTTCPWithLoss(base, base.RcvBufKB, opt.TotalBytes, 0.01)
	out = append(out, AblationResult{
		Name: "1% packet loss", Metric: "TCP throughput KB/s",
		Baseline: clean.KBps(), Variant: lossy.KBps(),
	})

	// NEWAPI vs standard socket interface (the §4.2 flexibility claim).
	na := RunTTCP(NewAPIConfigs()[2], 120, opt.TotalBytes)
	out = append(out, AblationResult{
		Name: "NEWAPI shared buffers", Metric: "TCP throughput KB/s",
		Baseline: clean.KBps(), Variant: na.KBps(),
	})
	return out
}

// runTTCPWithLoss is RunTTCP with loss injection on the segment.
func runTTCPWithLoss(cfg SysConfig, rcvBufKB, totalBytes int, loss float64) TTCPResult {
	// Rebuild RunTTCP's flow with the segment knob set before traffic.
	// Simplest faithful approach: run the standard workload on a world
	// whose segment drops frames.
	saved := buildHook
	buildHook = func(w *World) {
		w.Seg.Faults().SetDefaultRates(fault.Rates{Drop: loss})
		w.Sim.Deadline = 0 // default hour; loss runs take longer
	}
	defer func() { buildHook = saved }()
	return RunTTCP(cfg, rcvBufKB, totalBytes)
}

// buildHook lets harness internals adjust a freshly built world (fault
// injection for ablations).
var buildHook func(*World)

// FormatAblations renders ablation results.
func FormatAblations(results []AblationResult) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Ablations (baseline = Mach 3.0+UX Library-SHM-IPF)")
	for _, r := range results {
		fmt.Fprintf(&b, "  %-28s %-22s baseline %8.2f -> variant %8.2f (%+.0f%%)\n",
			r.Name, r.Metric, r.Baseline, r.Variant, 100*(r.Variant-r.Baseline)/r.Baseline)
	}
	return b.String()
}
