package bench

import (
	"testing"
)

// metricsEnabledExtraBudget bounds what turning the registry on may add
// to the TCP hot path, in allocations per transmitted segment. The
// counters themselves are plain embedded integers (they always count);
// enabling metrics only adds the registry build at world construction
// and three histogram observes per measured event, none of which
// allocate per segment — the whole fixed cost must amortize under two
// allocations per segment even on a modest 2 MB transfer.
const metricsEnabledExtraBudget = 2.0

// TestMetricsOverhead measures the tcp-steady workload with the registry
// off and on. Off must stay inside the PR 3 allocation budget (metrics
// are embedded counters, not a parallel accounting layer); on may add at
// most metricsEnabledExtraBudget allocations per segment.
func TestMetricsOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting run skipped in -short")
	}
	cfg := DECConfigs()[5] // Library-SHM-IPF
	unhook := setBuildHook(func(w *World) { hookWorld = w })
	defer unhook()

	segs := 0
	run := func() {
		r := RunTTCP(cfg, cfg.RcvBufKB, 2<<20)
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if hookWorld != nil && hookWorld.hostA.NIC.TxFrames.Value() > 0 {
			segs = int(hookWorld.hostA.NIC.TxFrames.Value())
		}
	}

	measure := func() float64 {
		run() // warm pools and, when enabled, registry code paths
		allocs := testing.AllocsPerRun(3, run)
		if segs == 0 {
			t.Fatal("no transmitted segments observed")
		}
		return allocs / float64(segs)
	}

	DisableMetrics()
	off := measure()
	EnableMetrics()
	defer DisableMetrics()
	on := measure()

	t.Logf("tcp-steady allocs/segment: metrics off %.2f, on %.2f (off budget %.0f, extra budget %.1f)",
		off, on, allocsPerSegmentBudget, metricsEnabledExtraBudget)
	if off > allocsPerSegmentBudget {
		t.Errorf("metrics-off hot path allocates %.2f objects/segment; budget is %.0f", off, allocsPerSegmentBudget)
	}
	if extra := on - off; extra > metricsEnabledExtraBudget {
		t.Errorf("enabling metrics adds %.2f allocs/segment; budget is %.1f", extra, metricsEnabledExtraBudget)
	}
}

// TestRunMetricsSuite checks the psdbench registry digest: quantiles
// populated on the latency workload, retransmissions observed on the
// lossy stream, and full determinism of the digest rows.
func TestRunMetricsSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("metrics suite run skipped in -short")
	}
	cfg := DECConfigs()[5]
	rows, err := RunMetricsSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("suite produced %d rows, want 3", len(rows))
	}
	byName := map[string]WorkloadMetrics{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	for _, name := range []string{"tcp-stream", "tcp-latency", "tcp-stream-lossy"} {
		r, ok := byName[name]
		if !ok {
			t.Fatalf("missing workload %q", name)
		}
		if r.ConnectP50Ns <= 0 || r.ConnectP99Ns < r.ConnectP50Ns {
			t.Errorf("%s: bad connect quantiles p50=%d p99=%d", name, r.ConnectP50Ns, r.ConnectP99Ns)
		}
	}
	if byName["tcp-stream"].Rexmits != 0 || byName["tcp-stream"].Drops != 0 {
		t.Errorf("clean stream shows drops=%d rexmits=%d, want 0/0",
			byName["tcp-stream"].Drops, byName["tcp-stream"].Rexmits)
	}
	if byName["tcp-stream-lossy"].Drops == 0 {
		t.Error("lossy stream shows zero wire drops")
	}
	if byName["tcp-stream-lossy"].Rexmits == 0 {
		t.Error("lossy stream shows zero retransmissions")
	}

	again, err := RunMetricsSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i] != again[i] {
			t.Errorf("suite row %d differs across identical runs:\n%+v\n%+v", i, rows[i], again[i])
		}
	}
}
