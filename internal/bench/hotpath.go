package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"testing"
	"time"
)

// Hot-path wall-clock benchmarking: the simulator's own performance, as
// opposed to the virtual-time results it reproduces. Every workload here
// is a Table 2/3 workload run end to end; the metrics are the real-world
// cost of carrying it (ns, bytes allocated, allocations), plus the
// headline ratio of virtual seconds simulated per real second burned.
// psdbench -json emits these as BENCH_hotpath.json so each PR leaves a
// recorded perf trajectory (compare runs with benchstat or by eye).

// HotpathMetrics is one measured workload.
type HotpathMetrics struct {
	// Name identifies the workload ("tcp-steady/Library-SHM-IPF", ...).
	Name string `json:"name"`
	// NsPerOp is wall-clock nanoseconds per complete workload run.
	NsPerOp int64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are the Go allocator's per-run totals.
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// VirtSeconds is the virtual time one run simulates.
	VirtSeconds float64 `json:"virt_seconds"`
	// SimPerReal is virtual seconds simulated per wall-clock second: the
	// "runs as fast as the hardware allows" headline number (higher is
	// better).
	SimPerReal float64 `json:"sim_per_real"`
	// Segments is the number of frames the primary sender transmitted in
	// one run, for per-segment normalization.
	Segments int `json:"segments"`
	// AllocsPerSegment = AllocsPerOp / Segments (0 when unknown).
	AllocsPerSegment float64 `json:"allocs_per_segment"`
}

// HotpathReport is the JSON document psdbench -json writes.
type HotpathReport struct {
	Label   string           `json:"label"`
	Date    string           `json:"date,omitempty"`
	GoMaxMB int              `json:"-"`
	Results []HotpathMetrics `json:"results"`
	// Metrics is the registry digest of the headline configuration:
	// connect-latency quantiles and drop/retransmit counts per workload.
	Metrics []WorkloadMetrics `json:"metrics,omitempty"`
}

// hotpathWorkload is one entry of the suite.
type hotpathWorkload struct {
	name string
	run  func(totalBytes, rounds int) (virt time.Duration, segments int, err error)
}

func hotpathSuite() []hotpathWorkload {
	decs := DECConfigs()
	newapi := NewAPIConfigs()
	library := decs[5] // Library-SHM-IPF: the paper's headline configuration
	kernel := decs[0]  // Mach 2.5 in-kernel baseline
	server := decs[2]  // UX server
	zc := newapi[2]    // NEWAPI Library-SHM-IPF (Table 3)

	ttcp := func(cfg SysConfig) func(int, int) (time.Duration, int, error) {
		return func(totalBytes, _ int) (time.Duration, int, error) {
			unhook := setBuildHook(func(w *World) { hookWorld = w })
			defer unhook()
			r := RunTTCP(cfg, cfg.RcvBufKB, totalBytes)
			segs := 0
			if hookWorld != nil {
				segs = int(hookWorld.hostA.NIC.TxFrames.Value())
			}
			return r.Duration, segs, r.Err
		}
	}
	lat := func(cfg SysConfig, udp bool, size int) func(int, int) (time.Duration, int, error) {
		return func(_, rounds int) (time.Duration, int, error) {
			r := RunProtolat(cfg, udp, size, rounds)
			return time.Duration(r.Rounds) * r.Avg, r.Rounds * 2, r.Err
		}
	}

	return []hotpathWorkload{
		{"tcp-steady/Library-SHM-IPF", ttcp(library)},
		{"tcp-steady/Kernel-Mach2.5", ttcp(kernel)},
		{"tcp-steady/Server-UX", ttcp(server)},
		{"tcp-steady/NEWAPI-SHM-IPF", ttcp(zc)},
		{"tcp-latency-1460/Library-SHM-IPF", lat(library, false, 1460)},
		{"udp-latency-1472/Library-SHM-IPF", lat(library, true, 1472)},
	}
}

// hookWorld captures the last world a workload built, so the harness can
// read NIC counters after the run.
var hookWorld *World

// setBuildHook installs fn as the world build observer (see buildHook in
// sweep.go), returning a restore function.
func setBuildHook(fn func(*World)) (unhook func()) {
	prev := buildHook
	buildHook = fn
	return func() { buildHook = prev; hookWorld = nil }
}

// RunHotpath measures the wall-clock hot path of the Table 2/3 workloads.
// totalBytes sizes the throughput transfers (0 means 4 MB, enough to hit
// steady state without taking minutes); rounds sizes the latency runs (0
// means 100).
func RunHotpath(totalBytes, rounds int) ([]HotpathMetrics, error) {
	if totalBytes == 0 {
		totalBytes = 4 << 20
	}
	if rounds == 0 {
		rounds = 100
	}
	var out []HotpathMetrics
	for _, wl := range hotpathSuite() {
		var virt time.Duration
		var segs int
		var runErr error
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				virt, segs, runErr = wl.run(totalBytes, rounds)
				if runErr != nil {
					b.Fatalf("%s: %v", wl.name, runErr)
				}
			}
		})
		if runErr != nil {
			return nil, fmt.Errorf("hotpath %s: %w", wl.name, runErr)
		}
		m := HotpathMetrics{
			Name:        wl.name,
			NsPerOp:     res.NsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			VirtSeconds: virt.Seconds(),
			Segments:    segs,
		}
		if res.NsPerOp() > 0 {
			m.SimPerReal = virt.Seconds() / (float64(res.NsPerOp()) / 1e9)
		}
		if segs > 0 {
			m.AllocsPerSegment = float64(res.AllocsPerOp()) / float64(segs)
		}
		out = append(out, m)
	}
	return out, nil
}

// WriteHotpathJSON writes a report as indented JSON.
func WriteHotpathJSON(w io.Writer, rep HotpathReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
