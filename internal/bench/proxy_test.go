package bench

import "testing"

// proxyAllocsPerSegmentBudget bounds the splice forwarding path on the
// headline configuration: the proxy moves every byte by reference, so
// its allocation bill must look like the steady-state TCP budget (the
// two TCP connections), not like a per-byte data path.
const proxyAllocsPerSegmentBudget = 20.0

// TestProxySpliceZeroCopy is the acceptance gate for the chain
// interface: on the splice path the proxy host copies no payload byte
// at the socket layer on any architecture, and on the decomposed
// architecture the aliased chain path is copy-free too.
func TestProxySpliceZeroCopy(t *testing.T) {
	if testing.Short() {
		t.Skip("proxy measurement run skipped in -short")
	}
	const total = 1 << 20
	for _, cfg := range proxyConfigs() {
		r := RunProxy(cfg, "splice", total)
		if r.Err != nil {
			t.Fatalf("%s/splice: %v", cfg.Name, r.Err)
		}
		if r.CopiedBytes != 0 {
			t.Errorf("%s/splice: %d bytes copied on the proxy host; splice must copy none", cfg.Name, r.CopiedBytes)
		}
		if r.SplicedBytes != total {
			t.Errorf("%s/splice: spliced %d of %d bytes", cfg.Name, r.SplicedBytes, total)
		}
	}

	library := HeadlineConfig()
	r := RunProxy(library, "chain", total)
	if r.Err != nil {
		t.Fatalf("library/chain: %v", r.Err)
	}
	if r.CopiedBytes != 0 {
		t.Errorf("library/chain: %d bytes copied; the decomposed chain path must alias", r.CopiedBytes)
	}
	// And the flat-buffer loop must show the classic two copies per
	// byte, so the contrast the report records is real.
	r = RunProxy(library, "bsd", total)
	if r.Err != nil {
		t.Fatalf("library/bsd: %v", r.Err)
	}
	if got := r.CopiesPerByte(); got < 1.9 || got > 2.1 {
		t.Errorf("library/bsd: copies/byte = %.3f, want ~2.0", got)
	}
}

// TestProxyAllocBudget gates the splice forwarding workload on a
// per-forwarded-segment allocation ceiling, like the steady-state TCP
// budget: a stray per-chunk allocation in the pump would blow it.
func TestProxyAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting run skipped in -short")
	}
	cfg := HeadlineConfig() // Library-SHM-IPF
	segs := 0
	run := func() {
		r := RunProxy(cfg, "splice", 2<<20)
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Segments > 0 {
			segs = r.Segments
		}
	}
	run() // warm the global buffer pools

	allocs := testing.AllocsPerRun(3, run)
	if segs == 0 {
		t.Fatal("no forwarded segments observed")
	}
	perSeg := allocs / float64(segs)
	t.Logf("proxy splice: %.0f allocs/run over %d segments = %.2f allocs/segment (budget %.0f)",
		allocs, segs, perSeg, proxyAllocsPerSegmentBudget)
	if perSeg > proxyAllocsPerSegmentBudget {
		t.Fatalf("splice path allocates %.2f objects/segment; budget is %.0f", perSeg, proxyAllocsPerSegmentBudget)
	}
}

// TestProxyDeterminism runs every (config, mode) cell twice and
// requires identical virtual-time results and accounting. Run under
// -count=2 in CI it also crosses process reuse.
func TestProxyDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism re-run skipped in -short")
	}
	const total = 512 << 10
	for _, cfg := range proxyConfigs() {
		for _, mode := range ProxyModes {
			a := RunProxy(cfg, mode, total)
			b := RunProxy(cfg, mode, total)
			if a.Err != nil || b.Err != nil {
				t.Fatalf("%s/%s: %v / %v", cfg.Name, mode, a.Err, b.Err)
			}
			if a != b {
				t.Errorf("%s/%s not deterministic:\n  run1 %+v\n  run2 %+v", cfg.Name, mode, a, b)
			}
		}
	}
}

// TestProxySuiteRuns smoke-tests the report generator on a tiny
// transfer: every cell completes with sane numbers.
func TestProxySuiteRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke run skipped in -short")
	}
	rows, err := RunProxySuite(256 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(proxyConfigs())*len(ProxyModes) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, m := range rows {
		if m.KBps <= 0 {
			t.Errorf("%s/%s: KBps = %v", m.Config, m.Mode, m.KBps)
		}
		if m.Mode == "splice" && m.CopiesPerByte != 0 {
			t.Errorf("%s/splice: copies/byte = %v", m.Config, m.CopiesPerByte)
		}
	}
}
