package sim

import (
	"testing"
	"time"
)

func TestMutexExcludes(t *testing.T) {
	s := New(1)
	var m Mutex
	inside := 0
	maxInside := 0
	for i := 0; i < 4; i++ {
		s.Spawn("w", func(p *Proc) {
			m.Lock(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(5 * time.Millisecond) // yield while holding the lock
			inside--
			m.Unlock()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("max concurrent holders = %d", maxInside)
	}
	if s.Now() != Time(20*time.Millisecond) {
		t.Fatalf("serialized time = %v, want 20ms", s.Now())
	}
}

func TestMutexFIFO(t *testing.T) {
	s := New(1)
	var m Mutex
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		s.Spawn("w", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Millisecond) // arrival order 0,1,2
			m.Lock(p)
			order = append(order, i)
			p.Sleep(10 * time.Millisecond)
			m.Unlock()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("acquisition order = %v", order)
		}
	}
}

func TestMutexTryLockAndHeld(t *testing.T) {
	var m Mutex
	if m.Held() {
		t.Fatal("fresh mutex held")
	}
	if !m.TryLock() {
		t.Fatal("TryLock on free mutex failed")
	}
	if m.TryLock() {
		t.Fatal("TryLock on held mutex succeeded")
	}
	if !m.Held() {
		t.Fatal("Held false while locked")
	}
	m.Unlock()
	if m.Held() {
		t.Fatal("Held true after unlock")
	}
}

func TestMutexUnlockUnheldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var m Mutex
	m.Unlock()
}

func TestChanTryOps(t *testing.T) {
	q := NewChan[int](1)
	if _, ok := q.TryRecv(); ok {
		t.Fatal("TryRecv on empty queue")
	}
	if !q.TrySend(1) {
		t.Fatal("TrySend on empty queue failed")
	}
	if q.TrySend(2) {
		t.Fatal("TrySend on full queue succeeded")
	}
	v, ok := q.TryRecv()
	if !ok || v != 1 {
		t.Fatalf("TryRecv = %d %v", v, ok)
	}
	q.Close()
	if q.TrySend(3) {
		t.Fatal("TrySend on closed queue succeeded")
	}
}

func TestChanCloseDrains(t *testing.T) {
	s := New(1)
	q := NewChan[int](0)
	var got []int
	s.Spawn("producer", func(p *Proc) {
		q.Send(p, 1)
		q.Send(p, 2)
		q.Close()
	})
	s.Spawn("consumer", func(p *Proc) {
		p.Sleep(time.Millisecond)
		for {
			v, ok := q.Recv(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("drained %v", got)
	}
}

func TestResourceUseEventQueues(t *testing.T) {
	s := New(1)
	var r Resource
	var order []string
	r.UseEvent(s, TaskPriority, 10*time.Millisecond, func() { order = append(order, "first") })
	r.UseEvent(s, TaskPriority, 10*time.Millisecond, func() { order = append(order, "second") })
	r.UseEvent(s, IntrPriority, time.Millisecond, func() { order = append(order, "intr") })
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	want := []string{"first", "intr", "second"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
	if r.Uses() != 3 || r.BusyTime() != 21*time.Millisecond {
		t.Fatalf("uses=%d busy=%v", r.Uses(), r.BusyTime())
	}
}

func TestTimeHelpers(t *testing.T) {
	a := Time(time.Second)
	if a.Add(time.Second) != Time(2*time.Second) {
		t.Fatal("Add")
	}
	if a.Sub(Time(time.Millisecond)) != 999*time.Millisecond {
		t.Fatal("Sub")
	}
	if a.String() != "1s" {
		t.Fatalf("String = %s", a)
	}
}

func TestYieldProcInterleaves(t *testing.T) {
	s := New(1)
	var order []string
	s.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.YieldProc()
		order = append(order, "a2")
	})
	s.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// a yields at t=0, letting b run before a resumes.
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := New(1)
	n := 0
	s.Every(time.Millisecond, func() {
		n++
		if n == 3 {
			s.Stop()
		}
	})
	s.Spawn("fg", func(p *Proc) { p.Sleep(time.Hour) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("ticks before stop = %d", n)
	}
}
