// Sharded simulation: a Group partitions one logical simulation across
// N shard Sims, each with its own event queue, clock, and (via Stream)
// PRNG streams, synchronized with a conservative synchronous-window
// algorithm.
//
// Every window the coordinator computes the horizon — the earliest
// pending event time across all shards — and lets each shard run
// independently up to horizon + lookahead, where lookahead is the
// smallest propagation delay of any cross-shard link (a trunk, see
// internal/simnet). A frame transmitted at time t arrives at t +
// propagation >= horizon + lookahead, i.e. at or after the window end,
// so no shard can receive a message for a time it has already passed:
// the classic conservative (YAWNS-style) guarantee. Cross-shard sends
// are staged in per-shard outboxes and merged at the barrier.
//
// Determinism is by construction, not by luck:
//
//   - Within a shard, events run in (at, band, origin, seq) order — the
//     same total order a single-queue run would use.
//   - Cross-shard deliveries carry intrinsic keys (at, origin id of the
//     transmitting link direction, per-direction seq). The key does not
//     mention shards at all, so changing the shard count — or running
//     the shards serially instead of on worker goroutines — cannot
//     change where a delivery sorts.
//   - Shards share no mutable state; they interact only through the
//     barrier exchange. Serial execution of the shards in id order is
//     therefore observably identical to parallel execution, which is
//     what SingleThreaded mode exists to prove (golden-equivalence
//     tests diff full traces and registry snapshots across the two).
package sim

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// MinLookahead is the smallest propagation delay a cross-shard link may
// declare. Zero-latency links would force zero-width windows (no shard
// could ever run ahead), so link constructors clamp to this value and
// document the clamp rather than deadlock.
const MinLookahead = 10 * time.Microsecond

// DefaultMaxWindow caps the window width even when no cross-shard link
// bounds it (a group with fully shard-local traffic has infinite
// lookahead). The cap keeps fg-exit and Stop latency bounded: both are
// only observed at barriers. It is deliberately shard-count-invariant —
// window boundaries must not depend on topology placement.
const DefaultMaxWindow = time.Millisecond

// Group runs N shard Sims under one virtual clock.
type Group struct {
	shards []*Sim
	seed   int64

	// SingleThreaded makes Run execute shards serially in id order
	// instead of on worker goroutines. Results are identical — this is
	// the golden reference the determinism battery diffs against.
	SingleThreaded bool

	// Deadline bounds virtual time for Run (0 = one hour), mirroring
	// Sim.Deadline.
	Deadline Time

	// MaxWindow overrides DefaultMaxWindow (0 = default).
	MaxWindow time.Duration

	lookahead Time // min registered cross-shard propagation (0 = none yet)
	originSeq uint64
	running   bool
	windows   uint64
	stopReq   atomic.Bool // Stop requested; honored at the next barrier

	// Worker state, live only while a parallel Run/RunUntil is active.
	starts []chan Time
	done   chan int
}

// NewGroup creates n shard sims. Every shard carries the same seed —
// named Streams and per-link fault streams must not depend on which
// shard their owner landed on.
func NewGroup(seed int64, n int) *Group {
	if n < 1 {
		panic("sim: NewGroup needs at least one shard")
	}
	g := &Group{seed: seed, shards: make([]*Sim, n)}
	for i := range g.shards {
		s := New(seed)
		s.group = g
		s.shardID = i
		g.shards[i] = s
	}
	return g
}

// Seed returns the group seed (shared by every shard).
func (g *Group) Seed() int64 { return g.seed }

// NumShards returns the shard count.
func (g *Group) NumShards() int { return len(g.shards) }

// Shard returns shard i's sim. Components are placed on a shard by
// being constructed against its sim.
func (g *Group) Shard(i int) *Sim { return g.shards[i] }

// Shards returns all shard sims in id order.
func (g *Group) Shards() []*Sim { return g.shards }

// Windows returns how many synchronization windows have executed.
func (g *Group) Windows() uint64 { return g.windows }

// Dispatched returns total events executed and the per-shard breakdown.
func (g *Group) Dispatched() (total uint64, perShard []uint64) {
	perShard = make([]uint64, len(g.shards))
	for i, s := range g.shards {
		perShard[i] = s.dispatched
		total += s.dispatched
	}
	return total, perShard
}

// ObserveLookahead registers a cross-shard link's propagation delay,
// shrinking the window bound. Link constructors call this for EVERY
// trunk, even one whose endpoints happen to share a shard: the window
// schedule must be a function of the topology alone, never of the
// shard mapping, or reshard-invariance breaks. Delays below
// MinLookahead are clamped (the documented floor for zero-latency
// links).
func (g *Group) ObserveLookahead(prop time.Duration) time.Duration {
	if prop < MinLookahead {
		prop = MinLookahead
	}
	if g.lookahead == 0 || Time(prop) < g.lookahead {
		g.lookahead = Time(prop)
	}
	return prop
}

// Lookahead returns the current window bound from registered links
// (0 = none registered, windows are capped by MaxWindow alone).
func (g *Group) Lookahead() time.Duration { return g.lookahead.Duration() }

// allocOrigin hands out group-wide stable band-1 origin ids.
func (g *Group) allocOrigin() uint64 {
	g.originSeq++
	return g.originSeq
}

// Now returns the group clock: the furthest shard clock. Between
// barriers shard clocks differ by less than one window; RunUntil
// realigns them exactly.
func (g *Group) Now() Time {
	var t Time
	for _, s := range g.shards {
		if s.now > t {
			t = s.now
		}
	}
	return t
}

// Stop makes Run return at the next window barrier. It may be called
// from any shard's event context (the flag is atomic); other shards
// finish the current window first, keeping the window schedule — and so
// determinism — intact.
func (g *Group) Stop() { g.stopReq.Store(true) }

// Spawn starts a foreground process on shard 0 (convenience for
// group-agnostic drivers; placement-aware callers use Shard(i).Spawn).
func (g *Group) Spawn(name string, fn func(p *Proc)) *Proc {
	return g.shards[0].Spawn(name, fn)
}

func (g *Group) fgState() (everFg bool, fg int) {
	for _, s := range g.shards {
		everFg = everFg || s.everFg
		fg += s.fg
	}
	return everFg, fg
}

func (g *Group) anyStopped() bool {
	for _, s := range g.shards {
		if s.stopped {
			return true
		}
	}
	return false
}

func (g *Group) clearStopped() {
	for _, s := range g.shards {
		s.stopped = false
	}
}

// horizon returns the earliest pending event time across shards.
func (g *Group) horizon() (Time, bool) {
	var h Time
	ok := false
	for _, s := range g.shards {
		if ev := s.peek(); ev != nil && (!ok || ev.at < h) {
			h, ok = ev.at, true
		}
	}
	return h, ok
}

// windowEnd computes the exclusive end of the window opening at
// horizon. Events with at < end run this window; every cross-shard
// delivery generated inside it lands at >= horizon + propagation >=
// horizon + lookahead >= end, hence in a later window.
func (g *Group) windowEnd(horizon Time) Time {
	w := Time(g.MaxWindow)
	if w == 0 {
		w = Time(DefaultMaxWindow)
	}
	if g.lookahead != 0 && g.lookahead < w {
		w = g.lookahead
	}
	return horizon + w
}

// runShards executes one window on every shard, serially or on the
// worker goroutines, then merges the outboxes. Any shard panic is
// re-raised on the coordinator goroutine, lowest shard id first.
func (g *Group) runShards(end Time) {
	g.windows++
	if g.SingleThreaded {
		for _, s := range g.shards {
			s.runWindow(end)
			if s.panicV != nil {
				panic(s.panicV)
			}
		}
	} else {
		for _, c := range g.starts {
			c <- end
		}
		for range g.shards {
			<-g.done
		}
		for _, s := range g.shards {
			if s.panicV != nil {
				panic(s.panicV)
			}
		}
	}
	g.exchange(end)
}

// exchange merges every shard's staged cross-shard sends into the
// destination queues. Delivery keys are unique and intrinsic, so the
// heap gives them their canonical position regardless of merge order;
// iterating shards in id order just keeps the merge allocation-stable.
func (g *Group) exchange(end Time) {
	for _, src := range g.shards {
		for i := range src.outbox {
			m := &src.outbox[i]
			if m.at < end {
				panic(fmt.Sprintf("sim: conservative lookahead violated: delivery at %v inside window ending %v", m.at, end))
			}
			m.dst.ScheduleRemote(m.at, m.origin, m.oseq, m.fn)
			*m = remoteMsg{}
		}
		src.outbox = src.outbox[:0]
	}
}

// startWorkers launches one goroutine per shard for a parallel run;
// stopWorkers tears them down when the run returns. Worker lifetime is
// bounded by the Run call so an abandoned Group leaks nothing.
func (g *Group) startWorkers() {
	g.starts = make([]chan Time, len(g.shards))
	g.done = make(chan int, len(g.shards))
	for i, s := range g.shards {
		c := make(chan Time)
		g.starts[i] = c
		go func(s *Sim, c chan Time) {
			for end := range c {
				runWindowRecover(s, end)
				g.done <- s.shardID
			}
		}(s, c)
	}
}

func runWindowRecover(s *Sim, end Time) {
	defer func() {
		if r := recover(); r != nil && s.panicV == nil {
			s.panicV = r
		}
	}()
	s.runWindow(end)
}

func (g *Group) stopWorkers() {
	for _, c := range g.starts {
		close(c)
	}
	g.starts, g.done = nil, nil
}

// Run executes windows until every foreground process has exited, Stop
// is called, or the queues drain — Group.Run is to a sharded simulation
// what Sim.Run is to a standalone one. Termination, deadlock, and
// deadline are only evaluated at barriers, so runs may execute up to
// one window of daemon events past the last foreground exit; the window
// schedule is shard-count-invariant, so this overshoot is too.
func (g *Group) Run() error {
	return g.drive(func() (Time, bool, error) {
		everFg, fg := g.fgState()
		if everFg && fg == 0 {
			return 0, false, nil
		}
		horizon, ok := g.horizon()
		if !ok {
			if fg > 0 {
				return 0, false, fmt.Errorf("sim: deadlock at %v: %d foreground process(es) parked with no pending events: %s",
					g.Now(), fg, g.parkedNames())
			}
			return 0, false, nil
		}
		return horizon, true, nil
	}, 0, false)
}

// RunFor advances the group clock by d (see Sim.RunFor).
func (g *Group) RunFor(d time.Duration) error { return g.RunUntil(g.Now().Add(d)) }

// RunUntil executes all events at or before t, then aligns every shard
// clock to t.
func (g *Group) RunUntil(t Time) error {
	err := g.drive(func() (Time, bool, error) {
		horizon, ok := g.horizon()
		if !ok || horizon > t {
			return 0, false, nil
		}
		return horizon, true, nil
	}, t, true)
	if err == nil {
		for _, s := range g.shards {
			if s.now < t {
				s.now = t
			}
		}
	}
	return err
}

// drive is the window loop shared by Run and RunUntil. next reports the
// horizon of the next window, or ok=false to finish. A bounded drive
// caps windows at until+1 so events at exactly until still run.
func (g *Group) drive(next func() (Time, bool, error), until Time, bounded bool) error {
	if g.running {
		return fmt.Errorf("sim: Group run called reentrantly")
	}
	g.running = true
	defer func() { g.running = false }()
	g.clearStopped()
	g.stopReq.Store(false)
	if !g.SingleThreaded {
		g.startWorkers()
		defer g.stopWorkers()
	}
	deadline := g.Deadline
	if deadline == 0 {
		deadline = Time(int64(time.Hour))
	}
	for {
		if g.stopReq.Load() || g.anyStopped() {
			return nil
		}
		horizon, ok, err := next()
		if err != nil || !ok {
			return err
		}
		if horizon > deadline {
			return fmt.Errorf("sim: virtual deadline %v exceeded (now %v)", deadline, horizon)
		}
		end := g.windowEnd(horizon)
		if bounded && end > until+1 {
			end = until + 1
		}
		if end > deadline+1 {
			end = deadline + 1
		}
		g.runShards(end)
	}
}

func (g *Group) parkedNames() string {
	var names []string
	for _, s := range g.shards {
		for p := range s.procs {
			if p.parked {
				names = append(names, p.name)
			}
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return "(none)"
	}
	return fmt.Sprint(names)
}
