// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine drives everything in this repository: simulated hosts, CPUs,
// network links, kernels, protocol stacks, and application processes all
// advance a shared virtual clock by scheduling events on a single Sim.
//
// Concurrency model: the scheduler executes exactly one event at a time.
// Simulated processes (Proc) are goroutines, but control is handed between
// the scheduler and at most one process goroutine through unbuffered
// channels, so logically the whole simulation is single-threaded and fully
// deterministic for a given seed. Simulation state may therefore be
// mutated freely from event callbacks and from running Procs without
// locking.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts t to a duration since the simulation epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

func (t Time) String() string { return time.Duration(t).String() }

// An event is a scheduled callback or process resumption. Events are
// pooled on the owning Sim's free list; gen counts reuses so that stale
// Timer handles (whose event has fired and been recycled) are detected
// instead of cancelling an unrelated event.
//
// The full ordering key is (at, band, origin, seq). Locally scheduled
// events are band 0 with origin 0, so for a standalone Sim the key
// degenerates to the classic (at, seq) FIFO tie-break. Cross-shard
// deliveries (see ScheduleRemote) are band 1, keyed by a stable origin
// id and a per-origin sequence number: the key is intrinsic to the
// message, never to which shard happened to carry it, which is what
// makes the merged order invariant under resharding.
type event struct {
	at      Time
	seq     uint64 // tie-break: FIFO among events at the same instant
	origin  uint64 // band 1: stable source-stream id (0 for band 0)
	fn      func()
	proc    *Proc      // if non-nil, resume this process instead of calling fn
	rw      *resWaiter // if non-nil, a resource grant expiry (UseEvent)
	band    uint8      // 0 local, 1 remote delivery
	stopped bool
	index   int    // heap index, -1 when not queued
	gen     uint64 // incremented each time the event is recycled
}

// Timer is a handle to a scheduled event, returned by At, After, and Every.
type Timer struct {
	ev        *event
	gen       uint64 // ev's generation when the handle was issued
	recurring bool
	dead      bool // stops a recurring timer across reschedules
}

// Stop cancels the timer. For one-shot timers it reports whether the event
// had not yet fired; for recurring timers it always stops future firings
// and reports whether the timer was still live.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil {
		return false
	}
	if t.recurring {
		was := !t.dead
		t.dead = true
		if t.ev.gen == t.gen {
			t.ev.stopped = true
		}
		return was
	}
	if t.ev.gen != t.gen || t.ev.stopped || t.ev.index < 0 {
		return false // already fired (and recycled) or already stopped
	}
	t.ev.stopped = true
	return true
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].band != h[j].band {
		return h[i].band < h[j].band
	}
	if h[i].origin != h[j].origin {
		return h[i].origin < h[j].origin
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Sim is a discrete-event simulator instance.
type Sim struct {
	now     Time
	events  eventHeap
	seq     uint64
	yield   chan struct{} // a running Proc signals the scheduler here
	fg      int           // live foreground (non-daemon) processes
	everFg  bool          // whether any foreground process was ever spawned
	procs   map[*Proc]struct{}
	running bool
	stopped bool
	panicV  any
	tracer  Tracer
	free    []*event // recycled events (the pool behind the heap)

	// Sharding state. A standalone Sim has group == nil and none of it
	// is touched on the hot path.
	group      *Group
	shardID    int
	outbox     []remoteMsg // cross-shard sends staged until the window barrier
	dispatched uint64      // events executed (per-shard accounting)
	origins    uint64      // local origin-id allocator when no group exists

	// Deadline is the virtual time at which Run gives up and returns an
	// error. It guards against livelock (for example, protocol timers that
	// tick forever while a workload is wedged). The zero value means the
	// default of one virtual hour.
	Deadline Time

	seed int64
	rng  *rand.Rand
}

// New returns a simulator with a deterministic random source derived from
// seed.
func New(seed int64) *Sim {
	return &Sim{
		yield: make(chan struct{}),
		procs: make(map[*Proc]struct{}),
		seed:  seed,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Tracer receives scheduler-level callbacks: one per dispatched event
// and one per explicit process park/unpark. Implementations must be
// passive — they may record but must not schedule events or advance
// time, or determinism is lost. The flight recorder (internal/trace)
// implements this.
type Tracer interface {
	EventDispatch(at Time, proc string)
	ProcPark(at Time, proc string)
	ProcUnpark(at Time, proc string)
}

// SetTracer installs t as the scheduler tracer (nil to disable). When no
// tracer is installed the hooks cost a single nil check.
func (s *Sim) SetTracer(t Tracer) { s.tracer = t }

// Seed returns the seed the simulator was created with. Components that
// need their own deterministic random streams (for example per-link
// fault injection) derive them from this.
func (s *Sim) Seed() int64 { return s.seed }

// Rand returns the simulation's deterministic random source.
//
// Deprecated for new code: draws interleave with every other caller, so
// values depend on global event order. Components that must stay stable
// under resharding should use Stream instead.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// StreamSeed mixes a simulation seed with a component name (FNV-1a over
// the name, then a splitmix64 finalizer) into an independent stream
// seed. It depends only on (seed, name) — never on creation order,
// traffic, or shard placement.
func StreamSeed(seed int64, name string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	z := uint64(seed) ^ h
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Stream returns an independent deterministic random source keyed by
// (sim seed, name). Every shard of a Group carries the same seed, so a
// named stream yields the same values no matter which shard its owner
// lands on.
func (s *Sim) Stream(name string) *rand.Rand {
	return rand.New(rand.NewSource(StreamSeed(s.seed, name)))
}

func (s *Sim) schedule(at Time, fn func(), p *Proc) *event {
	if at < s.now {
		at = s.now
	}
	s.seq++
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		ev.at, ev.seq, ev.fn, ev.proc = at, s.seq, fn, p
	} else {
		ev = &event{at: at, seq: s.seq, fn: fn, proc: p}
	}
	ev.index = -1
	heap.Push(&s.events, ev)
	return ev
}

// recycle returns a dispatched or cancelled event to the free list.
// Bumping gen invalidates any outstanding Timer handles to it.
func (s *Sim) recycle(ev *event) {
	ev.gen++
	ev.fn, ev.proc, ev.rw = nil, nil, nil
	ev.band, ev.origin = 0, 0
	ev.stopped = false
	s.free = append(s.free, ev)
}

// ScheduleRemote inserts a band-1 delivery event keyed by (at, origin,
// oseq). It is how merged cross-shard messages enter a shard's queue: at
// equal times all local (band-0) events sort first, then deliveries in
// (origin, oseq) order. Keys are unique, so insertion order is
// irrelevant — which is what lets the barrier merge stay deterministic.
func (s *Sim) ScheduleRemote(at Time, origin, oseq uint64, fn func()) {
	if at < s.now {
		panic(fmt.Sprintf("sim: lookahead violation: remote delivery at %v but shard %d is already at %v", at, s.shardID, s.now))
	}
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		ev.at, ev.seq, ev.fn, ev.proc = at, oseq, fn, nil
	} else {
		ev = &event{at: at, seq: oseq, fn: fn}
	}
	ev.band, ev.origin = 1, origin
	ev.index = -1
	heap.Push(&s.events, ev)
}

// remoteMsg is one staged cross-shard delivery awaiting the barrier.
type remoteMsg struct {
	dst    *Sim
	at     Time
	origin uint64
	oseq   uint64
	fn     func()
}

// SendRemote schedules fn at time `at` on dst with the band-1 key
// (origin, oseq). A same-sim send is inserted immediately (the heap
// handles any future time); a cross-shard send is staged in the sender's
// outbox and merged by the Group at the next window barrier. Both paths
// give the event the identical key, so the executed order does not
// depend on whether the two endpoints shared a shard.
func (s *Sim) SendRemote(dst *Sim, at Time, origin, oseq uint64, fn func()) {
	if dst == s {
		s.ScheduleRemote(at, origin, oseq, fn)
		return
	}
	if s.group == nil || dst.group != s.group {
		panic("sim: SendRemote between sims that do not share a Group")
	}
	s.outbox = append(s.outbox, remoteMsg{dst: dst, at: at, origin: origin, oseq: oseq, fn: fn})
}

// AllocOrigin hands out a stable band-1 origin id. Allocation follows
// topology construction order, which is identical across shard counts,
// so origins are reshard-invariant. Group shards share one allocator.
func (s *Sim) AllocOrigin() uint64 {
	if s.group != nil {
		return s.group.allocOrigin()
	}
	s.origins++
	return s.origins
}

// Group returns the shard group this sim belongs to, or nil for a
// standalone sim.
func (s *Sim) Group() *Group { return s.group }

// ShardID returns this sim's index within its Group (0 standalone).
func (s *Sim) ShardID() int { return s.shardID }

// Dispatched returns the number of events this sim has executed.
func (s *Sim) Dispatched() uint64 { return s.dispatched }

// At schedules fn to run at virtual time t (or now, if t is in the past).
func (s *Sim) At(t Time, fn func()) *Timer {
	ev := s.schedule(t, fn, nil)
	return &Timer{ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current virtual time.
func (s *Sim) After(d time.Duration, fn func()) *Timer {
	ev := s.schedule(s.now.Add(d), fn, nil)
	return &Timer{ev: ev, gen: ev.gen}
}

// Every schedules fn to run every period, starting one period from now,
// until the returned Timer is stopped. The callback runs as a daemon: it
// does not keep Run alive.
func (s *Sim) Every(period time.Duration, fn func()) *Timer {
	t := &Timer{recurring: true}
	var tick func()
	tick = func() {
		if t.dead {
			return
		}
		fn()
		if t.dead {
			return
		}
		t.ev = s.schedule(s.now.Add(period), tick, nil)
		t.gen = t.ev.gen
	}
	t.ev = s.schedule(s.now.Add(period), tick, nil)
	t.gen = t.ev.gen
	return t
}

// Stop makes Run return after the current event completes.
func (s *Sim) Stop() { s.stopped = true }

// Idle reports whether no events remain queued.
func (s *Sim) Idle() bool { return s.pending() == 0 }

func (s *Sim) pending() int {
	n := 0
	for _, ev := range s.events {
		if !ev.stopped {
			n++
		}
	}
	return n
}

// Run executes events in virtual-time order until every foreground process
// has exited, Stop is called, or the event queue drains. It returns an
// error on deadlock (foreground processes parked with no pending events)
// or when the virtual Deadline is exceeded.
func (s *Sim) Run() error {
	deadline := s.Deadline
	if deadline == 0 {
		deadline = Time(int64(time.Hour))
	}
	if s.group != nil {
		return fmt.Errorf("sim: shard %d belongs to a Group; drive it with Group.Run", s.shardID)
	}
	if s.running {
		return fmt.Errorf("sim: Run called reentrantly")
	}
	s.running = true
	defer func() { s.running = false }()
	s.stopped = false
	for !s.stopped {
		if s.everFg && s.fg == 0 {
			// All foreground work is done.
			return nil
		}
		ev := s.next()
		if ev == nil {
			if s.fg > 0 {
				return fmt.Errorf("sim: deadlock at %v: %d foreground process(es) parked with no pending events: %s",
					s.now, s.fg, s.parkedNames())
			}
			return nil
		}
		if ev.at > deadline {
			return fmt.Errorf("sim: virtual deadline %v exceeded (now %v, fg=%d)", Time(deadline), ev.at, s.fg)
		}
		s.now = ev.at
		s.dispatch(ev)
		if s.panicV != nil {
			panic(s.panicV)
		}
	}
	return nil
}

func (s *Sim) next() *event {
	for len(s.events) > 0 {
		ev := heap.Pop(&s.events).(*event)
		if ev.stopped {
			s.recycle(ev)
			continue
		}
		return ev
	}
	return nil
}

// peek returns the earliest live event without removing it, discarding
// cancelled events as it goes. Nil means the queue is empty.
func (s *Sim) peek() *event {
	for len(s.events) > 0 {
		ev := s.events[0]
		if !ev.stopped {
			return ev
		}
		heap.Pop(&s.events)
		s.recycle(ev)
	}
	return nil
}

// runWindow executes every event strictly before end, in key order. It
// is the per-shard inner loop of a Group window: no fg/deadline checks
// (the Group applies those at barriers), and it stops early on Stop or
// on a captured proc panic so the coordinator can surface it.
func (s *Sim) runWindow(end Time) {
	for !s.stopped && s.panicV == nil {
		ev := s.peek()
		if ev == nil || ev.at >= end {
			return
		}
		heap.Pop(&s.events)
		s.now = ev.at
		s.dispatch(ev)
	}
}

// RunFor advances the simulation by d, executing all events scheduled in
// [now, now+d]. Foreground completion does not stop it; it is intended for
// draining (for example TIME_WAIT expiry) and for tests.
func (s *Sim) RunFor(d time.Duration) error { return s.RunUntil(s.now.Add(d)) }

// RunUntil executes all events scheduled at or before t and then sets the
// clock to t.
func (s *Sim) RunUntil(t Time) error {
	if s.group != nil {
		return fmt.Errorf("sim: shard %d belongs to a Group; drive it with Group.RunUntil", s.shardID)
	}
	if s.running {
		return fmt.Errorf("sim: RunUntil called reentrantly")
	}
	s.running = true
	defer func() { s.running = false }()
	s.stopped = false
	for !s.stopped {
		if len(s.events) == 0 || s.events[0].at > t {
			break
		}
		ev := s.next()
		if ev == nil {
			break
		}
		s.now = ev.at
		s.dispatch(ev)
		if s.panicV != nil {
			panic(s.panicV)
		}
	}
	if s.now < t {
		s.now = t
	}
	return nil
}

func (s *Sim) dispatch(ev *event) {
	s.dispatched++
	if s.tracer != nil {
		name := ""
		if ev.proc != nil {
			name = ev.proc.name
		}
		s.tracer.EventDispatch(s.now, name)
	}
	switch {
	case ev.proc != nil:
		p := ev.proc
		p.pendingResume = nil
		p.resume <- struct{}{}
		<-s.yield
	case ev.rw != nil:
		// Resource grant expired: run the continuation, then hand the
		// resource to the next waiter.
		w := ev.rw
		w.done()
		w.r.release(s)
		w.r.putWaiter(w)
	default:
		ev.fn()
	}
	s.recycle(ev)
}

func (s *Sim) parkedNames() string {
	var names []string
	for p := range s.procs {
		if p.parked {
			names = append(names, p.name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return "(none)"
	}
	return fmt.Sprint(names)
}

// ParkedProcs lists the names of currently-parked processes (diagnostics).
func (s *Sim) ParkedProcs() []string {
	var names []string
	for p := range s.procs {
		if p.parked {
			names = append(names, p.name)
		}
	}
	sort.Strings(names)
	return names
}
