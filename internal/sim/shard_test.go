package sim

import (
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"testing"
	"time"
)

// testLink is a minimal cross-shard channel: a fixed origin id per
// direction, a per-direction sequence, and a propagation delay — the
// same shape simnet trunks use.
type testLink struct {
	src, dst *Sim
	origin   uint64
	oseq     uint64
	prop     time.Duration
}

func newTestLink(g *Group, src, dst *Sim, prop time.Duration) *testLink {
	prop = g.ObserveLookahead(prop)
	return &testLink{src: src, dst: dst, origin: src.AllocOrigin(), prop: prop}
}

func (l *testLink) send(fn func()) {
	l.oseq++
	l.src.SendRemote(l.dst, l.src.Now().Add(l.prop), l.origin, l.oseq, fn)
}

// TestBandOrdering checks the (at, band, origin, seq) tie-break: at one
// instant, local events run first in FIFO order, then deliveries in
// (origin, oseq) order regardless of insertion order.
func TestBandOrdering(t *testing.T) {
	s := New(1)
	var got []string
	// Deliveries inserted deliberately out of key order.
	s.ScheduleRemote(1000, 7, 2, func() { got = append(got, "o7s2") })
	s.ScheduleRemote(1000, 7, 1, func() { got = append(got, "o7s1") })
	s.ScheduleRemote(1000, 3, 9, func() { got = append(got, "o3s9") })
	s.At(1000, func() { got = append(got, "localA") })
	s.At(1000, func() { got = append(got, "localB") })
	if err := s.RunUntil(1000); err != nil {
		t.Fatal(err)
	}
	want := []string{"localA", "localB", "o3s9", "o7s1", "o7s2"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

// TestStandaloneOrderUnchanged guards the classic FIFO tie-break: for a
// plain Sim, same-instant events still run in scheduling order.
func TestStandaloneOrderUnchanged(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 8; i++ {
		i := i
		s.At(500, func() { got = append(got, i) })
	}
	if err := s.RunUntil(500); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant FIFO broken: %v", got)
		}
	}
}

// pingPong builds a deterministic multi-shard workload: each shard
// runs a foreground proc that streams timestamped messages over a link
// to its neighbor, interleaved with local timers. Each shard logs only
// its own activity (single-writer, like every real component), so the
// per-shard logs are valid in parallel mode; they are the determinism
// oracle.
func pingPong(g *Group, rounds int) [][]string {
	k := g.NumShards()
	logs := make([][]string, k)
	for i := 0; i < k; i++ {
		i := i
		s := g.Shard(i)
		next := g.Shard((i + 1) % k)
		l := newTestLink(g, s, next, 50*time.Microsecond)
		s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for r := 0; r < rounds; r++ {
				r := r
				dst := l.dst.ShardID()
				l.send(func() {
					logs[dst] = append(logs[dst], fmt.Sprintf("%v rx from=%d round=%d", l.dst.Now(), i, r))
				})
				p.Sleep(30 * time.Microsecond)
				logs[i] = append(logs[i], fmt.Sprintf("%v tick shard=%d round=%d", s.Now(), i, r))
			}
		})
	}
	return logs
}

// TestSerialParallelIdentical is the core golden-equivalence property
// at the engine level: SingleThreaded and worker-goroutine execution
// produce identical per-shard logs, clocks, and dispatch counts.
func TestSerialParallelIdentical(t *testing.T) {
	run := func(single bool) ([][]string, Time, uint64) {
		g := NewGroup(42, 3)
		g.SingleThreaded = single
		logs := pingPong(g, 25)
		if err := g.Run(); err != nil {
			t.Fatal(err)
		}
		total, _ := g.Dispatched()
		return logs, g.Now(), total
	}
	sLog, sNow, sN := run(true)
	pLog, pNow, pN := run(false)
	if !reflect.DeepEqual(sLog, pLog) {
		t.Fatalf("serial and parallel logs differ:\nserial:   %v\nparallel: %v", sLog, pLog)
	}
	if sNow != pNow || sN != pN {
		t.Fatalf("clock/dispatch divergence: serial (%v, %d) parallel (%v, %d)", sNow, sN, pNow, pN)
	}
	if len(sLog[0]) == 0 {
		t.Fatal("workload produced no log")
	}
}

// TestShardCountRegression: a fixed logical workload must produce the
// same set of timestamped observations under shard counts {1, 2, 8,
// NumCPU} (parallel workers each time). Entries carry their own
// canonical key (time, entity, round), so the flattened sorted logs
// must match exactly.
func TestShardCountRegression(t *testing.T) {
	counts := []int{1, 2, 8, runtime.NumCPU()}
	const procs = 8 // fixed logical parties, placed round-robin on shards
	run := func(k int) []string {
		g := NewGroup(7, k)
		logs := make([][]string, k)
		for i := 0; i < procs; i++ {
			i := i
			s := g.Shard(i % k)
			next := g.Shard((i + 1) % procs % k)
			l := newTestLink(g, s, next, 80*time.Microsecond)
			s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for r := 0; r < 10; r++ {
					r := r
					dst := l.dst.ShardID()
					l.send(func() {
						logs[dst] = append(logs[dst], fmt.Sprintf("%v rx origin=%d round=%d", l.dst.Now(), l.origin, r))
					})
					p.Sleep(time.Duration(30+i) * time.Microsecond)
				}
			})
		}
		if err := g.Run(); err != nil {
			t.Fatal(err)
		}
		// Drain deliveries still in flight when the last proc exited.
		if err := g.RunFor(10 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		var flat []string
		for _, lg := range logs {
			flat = append(flat, lg...)
		}
		sort.Strings(flat)
		return flat
	}
	want := run(counts[0])
	if len(want) != procs*10 {
		t.Fatalf("baseline produced %d entries, want %d", len(want), procs*10)
	}
	for _, k := range counts[1:] {
		if got := run(k); !reflect.DeepEqual(got, want) {
			t.Fatalf("shard count %d changed the observations:\nwant %v\ngot  %v", k, want, got)
		}
	}
}

// TestMinLookaheadClamp: zero- and sub-minimum-latency links get the
// documented floor instead of deadlocking the window schedule.
func TestMinLookaheadClamp(t *testing.T) {
	g := NewGroup(1, 2)
	if got := g.ObserveLookahead(0); got != MinLookahead {
		t.Fatalf("zero-latency link clamped to %v, want %v", got, MinLookahead)
	}
	if got := g.ObserveLookahead(MinLookahead / 2); got != MinLookahead {
		t.Fatalf("sub-minimum link clamped to %v, want %v", got, MinLookahead)
	}
	if g.Lookahead() != MinLookahead {
		t.Fatalf("group lookahead = %v, want %v", g.Lookahead(), MinLookahead)
	}
	if got := g.ObserveLookahead(time.Millisecond); got != time.Millisecond {
		t.Fatalf("legal lookahead altered: %v", got)
	}
}

// TestLookaheadViolationPanics: a delivery timed inside the current
// window is a conservative-synchronization bug and must be loud.
func TestLookaheadViolationPanics(t *testing.T) {
	g := NewGroup(1, 2)
	g.SingleThreaded = true
	g.ObserveLookahead(100 * time.Microsecond)
	a, b := g.Shard(0), g.Shard(1)
	a.Spawn("bad", func(p *Proc) {
		// Claims zero propagation on a link that declared 100µs.
		a.SendRemote(b, a.Now(), 1, 1, func() {})
		p.Sleep(time.Millisecond)
	})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on lookahead violation")
		}
	}()
	_ = g.Run()
}

// TestGroupRunUntilAlignsClocks: after RunUntil every shard sits at
// exactly t, like standalone RunUntil.
func TestGroupRunUntilAlignsClocks(t *testing.T) {
	g := NewGroup(3, 4)
	g.SingleThreaded = true
	g.Shard(2).After(time.Millisecond, func() {})
	if err := g.RunUntil(Time(5 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	for i, s := range g.Shards() {
		if s.Now() != Time(5*time.Millisecond) {
			t.Fatalf("shard %d clock %v, want 5ms", i, s.Now())
		}
	}
}

// TestGroupDeadlock: parked foreground procs with empty queues must be
// reported, with names from every shard.
func TestGroupDeadlock(t *testing.T) {
	g := NewGroup(9, 2)
	g.SingleThreaded = true
	g.Shard(0).Spawn("stuck0", func(p *Proc) { p.Park() })
	g.Shard(1).Spawn("stuck1", func(p *Proc) { p.Park() })
	err := g.Run()
	if err == nil {
		t.Fatal("no deadlock error")
	}
	for _, name := range []string{"stuck0", "stuck1"} {
		if !contains(err.Error(), name) {
			t.Fatalf("deadlock error %q missing %s", err, name)
		}
	}
}

// TestGroupDeadline: runaway daemon timers hit the virtual deadline.
func TestGroupDeadline(t *testing.T) {
	g := NewGroup(5, 2)
	g.SingleThreaded = true
	g.Deadline = Time(10 * time.Millisecond)
	g.Shard(1).Every(time.Millisecond, func() {})
	g.Shard(0).Spawn("waiter", func(p *Proc) { p.Park() })
	if err := g.Run(); err == nil || !contains(err.Error(), "deadline") {
		t.Fatalf("want deadline error, got %v", err)
	}
}

// TestGroupStop: Stop from inside an event halts at the next barrier.
func TestGroupStop(t *testing.T) {
	g := NewGroup(5, 2)
	fired := 0
	g.Shard(1).After(time.Millisecond, func() { fired++; g.Stop() })
	g.Shard(0).Spawn("waiter", func(p *Proc) { p.Park() })
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("stop event fired %d times", fired)
	}
}

// TestGroupedSimRejectsRun: shard sims must be driven by the Group.
func TestGroupedSimRejectsRun(t *testing.T) {
	g := NewGroup(1, 2)
	if err := g.Shard(1).Run(); err == nil {
		t.Fatal("shard Run did not error")
	}
	if err := g.Shard(0).RunUntil(10); err == nil {
		t.Fatal("shard RunUntil did not error")
	}
}

// TestStreamStability: named streams depend only on (seed, name).
func TestStreamStability(t *testing.T) {
	g := NewGroup(77, 4)
	a := g.Shard(0).Stream("host.alpha").Uint64()
	b := g.Shard(3).Stream("host.alpha").Uint64()
	if a != b {
		t.Fatalf("same name on different shards diverged: %d vs %d", a, b)
	}
	solo := New(77).Stream("host.alpha").Uint64()
	if a != solo {
		t.Fatalf("grouped stream differs from standalone: %d vs %d", a, solo)
	}
	if other := New(77).Stream("host.beta").Uint64(); other == a {
		t.Fatal("distinct names produced the same stream")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
