package sim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.After(3*time.Millisecond, func() { got = append(got, 3) })
	s.After(1*time.Millisecond, func() { got = append(got, 1) })
	s.After(2*time.Millisecond, func() { got = append(got, 2) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != Time(3*time.Millisecond) {
		t.Fatalf("now = %v, want 3ms", s.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Millisecond, func() { got = append(got, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.After(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestEvery(t *testing.T) {
	s := New(1)
	n := 0
	var tick *Timer
	tick = s.Every(10*time.Millisecond, func() {
		n++
		if n == 5 {
			tick.Stop()
		}
	})
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("ticks = %d, want 5", n)
	}
}

func TestProcSleep(t *testing.T) {
	s := New(1)
	var wake Time
	s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(42 * time.Millisecond)
		wake = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if wake != Time(42*time.Millisecond) {
		t.Fatalf("woke at %v, want 42ms", wake)
	}
}

func TestProcParkUnpark(t *testing.T) {
	s := New(1)
	var order []string
	var sleeper *Proc
	sleeper = s.Spawn("parker", func(p *Proc) {
		order = append(order, "parking")
		p.Park()
		order = append(order, "woken")
	})
	s.After(5*time.Millisecond, func() {
		order = append(order, "unpark")
		sleeper.Unpark()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"parking", "unpark", "woken"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestUnparkBeforePark(t *testing.T) {
	s := New(1)
	done := false
	s.Spawn("p", func(p *Proc) {
		p.Unpark() // bank a token against ourselves
		p.Park()   // must consume it and not block
		done = true
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("banked unpark token lost")
	}
}

func TestParkTimeout(t *testing.T) {
	s := New(1)
	var gotOK bool
	var at Time
	s.Spawn("p", func(p *Proc) {
		gotOK = p.ParkTimeout(7 * time.Millisecond)
		at = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if gotOK {
		t.Fatal("ParkTimeout reported unparked on timeout")
	}
	if at != Time(7*time.Millisecond) {
		t.Fatalf("timed out at %v, want 7ms", at)
	}
}

func TestParkTimeoutUnparked(t *testing.T) {
	s := New(1)
	var gotOK bool
	var pr *Proc
	pr = s.Spawn("p", func(p *Proc) {
		gotOK = p.ParkTimeout(time.Second)
	})
	s.After(time.Millisecond, func() { pr.Unpark() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !gotOK {
		t.Fatal("explicit unpark reported as timeout")
	}
	if s.Now() != Time(time.Millisecond) {
		t.Fatalf("finished at %v, want 1ms", s.Now())
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := New(1)
	s.Spawn("stuck", func(p *Proc) { p.Park() })
	if err := s.Run(); err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestDeadline(t *testing.T) {
	s := New(1)
	s.Deadline = Time(time.Second)
	s.Every(time.Millisecond, func() {}) // ticks forever
	s.Spawn("stuck", func(p *Proc) { p.Park() })
	if err := s.Run(); err == nil {
		t.Fatal("expected deadline error")
	}
}

func TestCondSignalWakesInFIFO(t *testing.T) {
	s := New(1)
	var c Cond
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			c.Wait(p)
			order = append(order, name)
		})
	}
	s.After(time.Millisecond, func() { c.Signal() })
	s.After(2*time.Millisecond, func() { c.Signal() })
	s.After(3*time.Millisecond, func() { c.Signal() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestCondBroadcast(t *testing.T) {
	s := New(1)
	var c Cond
	n := 0
	for i := 0; i < 4; i++ {
		s.Spawn("w", func(p *Proc) {
			c.Wait(p)
			n++
		})
	}
	s.After(time.Millisecond, func() { c.Broadcast() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("woken = %d, want 4", n)
	}
}

func TestCondWaitAbsorbsStrayToken(t *testing.T) {
	s := New(1)
	var c Cond
	woken := false
	var pr *Proc
	pr = s.Spawn("w", func(p *Proc) {
		p.Unpark() // stray token banked before the wait
		c.Wait(p)
		woken = true
	})
	_ = pr
	s.After(time.Millisecond, func() {
		if woken {
			t.Error("Wait returned on a stray token instead of a signal")
		}
		c.Signal()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !woken {
		t.Fatal("never woke")
	}
}

func TestCondWaitTimeout(t *testing.T) {
	s := New(1)
	var c Cond
	var ok bool
	s.Spawn("w", func(p *Proc) {
		ok = c.WaitTimeout(p, 5*time.Millisecond)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("WaitTimeout reported signal on timeout")
	}
	if c.Waiters() != 0 {
		t.Fatal("timed-out waiter left on queue")
	}
}

func TestChanFIFOAndBlocking(t *testing.T) {
	s := New(1)
	q := NewChan[int](2)
	var got []int
	s.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			q.Send(p, i) // must block when full
		}
		q.Close()
	})
	s.Spawn("consumer", func(p *Proc) {
		p.Sleep(time.Millisecond)
		for {
			v, ok := q.Recv(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("received %d items, want 5", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestChanRecvTimeout(t *testing.T) {
	s := New(1)
	q := NewChan[int](0)
	var ok bool
	s.Spawn("c", func(p *Proc) {
		_, ok = q.RecvTimeout(p, 3*time.Millisecond)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("RecvTimeout returned ok on empty queue")
	}
	if s.Now() != Time(3*time.Millisecond) {
		t.Fatalf("timeout at %v, want 3ms", s.Now())
	}
}

func TestResourceSerializes(t *testing.T) {
	s := New(1)
	var cpu Resource
	var ends []Time
	for i := 0; i < 3; i++ {
		s.Spawn("user", func(p *Proc) {
			cpu.Use(p, TaskPriority, 10*time.Millisecond)
			ends = append(ends, p.Now())
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{Time(10 * time.Millisecond), Time(20 * time.Millisecond), Time(30 * time.Millisecond)}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
	if cpu.BusyTime() != 30*time.Millisecond {
		t.Fatalf("busy = %v", cpu.BusyTime())
	}
}

func TestResourceInterruptPriority(t *testing.T) {
	s := New(1)
	var cpu Resource
	var order []string
	s.Spawn("t1", func(p *Proc) {
		cpu.Use(p, TaskPriority, 10*time.Millisecond)
		order = append(order, "t1")
	})
	s.Spawn("t2", func(p *Proc) {
		p.Sleep(time.Millisecond)
		cpu.Use(p, TaskPriority, 10*time.Millisecond)
		order = append(order, "t2")
	})
	s.After(2*time.Millisecond, func() {
		cpu.UseEvent(s, IntrPriority, time.Millisecond, func() {
			order = append(order, "intr")
		})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"t1", "intr", "t2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestWaitGroup(t *testing.T) {
	s := New(1)
	var wg WaitGroup
	wg.Add(3)
	done := false
	for i := 1; i <= 3; i++ {
		d := time.Duration(i) * time.Millisecond
		s.Spawn("w", func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	s.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		done = true
		if p.Now() != Time(3*time.Millisecond) {
			t.Errorf("wait finished at %v", p.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("Wait never returned")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		s := New(7)
		var cpu Resource
		var trace []Time
		for i := 0; i < 8; i++ {
			s.Spawn("w", func(p *Proc) {
				d := time.Duration(s.Rand().Intn(1000)) * time.Microsecond
				p.Sleep(d)
				cpu.Use(p, TaskPriority, 100*time.Microsecond)
				trace = append(trace, p.Now())
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("trace lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestProcPanicPropagates(t *testing.T) {
	s := New(1)
	s.Spawn("boom", func(p *Proc) { panic("boom") })
	defer func() {
		if recover() == nil {
			t.Fatal("panic in proc not propagated")
		}
	}()
	_ = s.Run()
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New(1)
	if err := s.RunUntil(Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if s.Now() != Time(time.Second) {
		t.Fatalf("now = %v", s.Now())
	}
}
