package sim

import (
	"fmt"
	"runtime/debug"
	"time"
)

// Proc is a simulated thread of execution: a goroutine whose progress is
// interleaved with the event loop so that only one of them runs at a time.
// Procs block in virtual time with Sleep and Park, and are woken with
// Unpark or by timers.
//
// A foreground Proc (created with Spawn) keeps Sim.Run alive until it
// exits; a daemon Proc (SpawnDaemon) does not, and is the right choice for
// service loops such as protocol timers and receive threads.
type Proc struct {
	sim    *Sim
	name   string
	daemon bool

	resume        chan struct{}
	parked        bool
	unparkPending bool   // an Unpark arrived while the proc was running
	pendingResume *event // the event that will resume this proc, if any

	exited bool
}

// Spawn starts a foreground simulated process. The body begins executing
// at the current virtual time, after already-queued events at this instant.
func (s *Sim) Spawn(name string, body func(p *Proc)) *Proc {
	return s.spawn(name, body, false)
}

// SpawnDaemon starts a daemon simulated process; Run does not wait for it.
func (s *Sim) SpawnDaemon(name string, body func(p *Proc)) *Proc {
	return s.spawn(name, body, true)
}

func (s *Sim) spawn(name string, body func(p *Proc), daemon bool) *Proc {
	p := &Proc{sim: s, name: name, daemon: daemon, resume: make(chan struct{})}
	if !daemon {
		s.fg++
		s.everFg = true
	}
	s.procs[p] = struct{}{}
	go func() {
		<-p.resume // wait for the scheduler to start us
		defer func() {
			if r := recover(); r != nil {
				s.panicV = fmt.Errorf("sim: process %q panicked: %v\n%s", p.name, r, debug.Stack())
			}
			p.exited = true
			delete(s.procs, p)
			if !p.daemon {
				s.fg--
			}
			s.yield <- struct{}{}
		}()
		body(p)
	}()
	p.pendingResume = s.schedule(s.now, nil, p)
	return p
}

// Sim returns the simulator this process belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Name returns the process's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

// yieldToScheduler hands control back and waits to be resumed.
func (p *Proc) yieldToScheduler() {
	p.sim.yield <- struct{}{}
	<-p.resume
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	if d <= 0 {
		p.YieldProc()
		return
	}
	p.pendingResume = p.sim.schedule(p.sim.now.Add(d), nil, p)
	p.parked = true
	p.yieldToScheduler()
	p.parked = false
}

// YieldProc reschedules the process at the current instant, letting other
// events queued for this instant run first.
func (p *Proc) YieldProc() {
	p.pendingResume = p.sim.schedule(p.sim.now, nil, p)
	p.parked = true
	p.yieldToScheduler()
	p.parked = false
}

// Park blocks the process until another party calls Unpark. If an Unpark
// arrived since the last Park, it consumes that token and returns
// immediately (so wakeups are never lost).
func (p *Proc) Park() {
	if p.unparkPending {
		p.unparkPending = false
		return
	}
	if p.sim.tracer != nil {
		p.sim.tracer.ProcPark(p.sim.now, p.name)
	}
	p.parked = true
	p.yieldToScheduler()
	p.parked = false
}

// ParkTimeout parks for at most d. It reports whether the process was
// explicitly unparked (true) as opposed to timing out (false).
func (p *Proc) ParkTimeout(d time.Duration) bool {
	if p.unparkPending {
		p.unparkPending = false
		return true
	}
	timedOut := false
	t := p.sim.After(d, func() {
		timedOut = true
		p.Unpark()
	})
	p.Park()
	if !timedOut {
		t.Stop()
	}
	return !timedOut
}

// Unpark wakes a parked process, or banks a wakeup token if it is
// currently running. Unparking an exited process is a no-op. Multiple
// Unparks coalesce into a single token.
func (p *Proc) Unpark() {
	if p.exited {
		return
	}
	if p.sim.tracer != nil {
		p.sim.tracer.ProcUnpark(p.sim.now, p.name)
	}
	if !p.parked {
		p.unparkPending = true
		return
	}
	if p.pendingResume != nil {
		// Already scheduled to wake (e.g. racing with a timeout); the
		// earlier of the two wins, so just bank the token.
		p.unparkPending = true
		return
	}
	p.pendingResume = p.sim.schedule(p.sim.now, nil, p)
}
