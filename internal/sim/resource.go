package sim

import "time"

// Resource models a serially-shared device such as a CPU or a half-duplex
// network medium. Work is admitted FIFO within two priority bands:
// interrupt-level work queue-jumps task-level work but does not preempt a
// charge already in progress. This mirrors how the paper's uniprocessor
// hosts interleave interrupt handling with user and server execution at
// the granularity the cost model cares about.
type Resource struct {
	Name string

	busy     bool
	intrQ    waiterQ // interrupt band (FIFO)
	taskQ    waiterQ // task band (FIFO)
	freeW    []*resWaiter
	busyTime time.Duration
	uses     int
}

// resWaiter is one queued admission. Waiters are pooled per resource:
// the steady state charges, releases, and re-charges without allocating.
type resWaiter struct {
	proc    *Proc         // proc-style waiter (Use)
	done    func()        // event-style continuation (UseEvent)
	d       time.Duration // charge duration for event-style waiters
	r       *Resource
	granted bool
}

// waiterQ is a FIFO of waiters that reuses its backing array: the head
// index advances on pop and resets when the queue drains, so a resource
// under steady load stops allocating queue nodes entirely.
type waiterQ struct {
	q    []*resWaiter
	head int
}

func (q *waiterQ) push(w *resWaiter) { q.q = append(q.q, w) }

func (q *waiterQ) pop() *resWaiter {
	if q.head >= len(q.q) {
		return nil
	}
	w := q.q[q.head]
	q.q[q.head] = nil
	q.head++
	if q.head == len(q.q) {
		q.q = q.q[:0]
		q.head = 0
	}
	return w
}

func (q *waiterQ) len() int { return len(q.q) - q.head }

// Priority selects the admission band for resource use.
type Priority int

const (
	// TaskPriority is ordinary process-level work.
	TaskPriority Priority = iota
	// IntrPriority is interrupt-level work; it is admitted ahead of all
	// queued task-level work.
	IntrPriority
)

func (r *Resource) getWaiter() *resWaiter {
	if n := len(r.freeW); n > 0 {
		w := r.freeW[n-1]
		r.freeW[n-1] = nil
		r.freeW = r.freeW[:n-1]
		return w
	}
	return &resWaiter{r: r}
}

func (r *Resource) putWaiter(w *resWaiter) {
	w.proc, w.done, w.d, w.granted = nil, nil, 0, false
	r.freeW = append(r.freeW, w)
}

// Use charges d of exclusive time on the resource on behalf of p,
// blocking until the resource grants it. A zero or negative duration still
// performs admission (useful for pure serialization points).
func (r *Resource) Use(p *Proc, pri Priority, d time.Duration) {
	if r.busy {
		w := r.getWaiter()
		w.proc = p
		r.enqueue(pri, w)
		for !w.granted {
			p.Park()
		}
		r.putWaiter(w)
	} else {
		r.busy = true
	}
	r.uses++
	r.busyTime += d
	if d > 0 {
		p.Sleep(d)
	}
	r.release(p.sim)
}

// UseEvent charges d of exclusive time from event context (no Proc), then
// runs done. It is used by interrupt handlers, which are events rather
// than processes. The expiry is a first-class scheduler event (no timer
// closures), and the waiter record is pooled.
func (r *Resource) UseEvent(s *Sim, pri Priority, d time.Duration, done func()) {
	w := r.getWaiter()
	w.done, w.d = done, d
	if r.busy {
		r.enqueue(pri, w)
		return
	}
	r.busy = true
	r.grant(s, w)
}

// grant starts an event-style waiter's charge: the scheduler runs its
// continuation and releases the resource when the charge expires (see
// Sim.dispatch).
func (r *Resource) grant(s *Sim, w *resWaiter) {
	r.uses++
	r.busyTime += w.d
	ev := s.schedule(s.now.Add(w.d), nil, nil)
	ev.rw = w
}

func (r *Resource) enqueue(pri Priority, w *resWaiter) {
	if pri == IntrPriority {
		r.intrQ.push(w)
	} else {
		r.taskQ.push(w)
	}
}

func (r *Resource) release(s *Sim) {
	next := r.intrQ.pop()
	if next == nil {
		next = r.taskQ.pop()
	}
	if next == nil {
		r.busy = false
		return
	}
	if next.proc != nil {
		next.granted = true
		next.proc.Unpark()
		return
	}
	r.grant(s, next)
}

// BusyTime returns the total virtual time the resource has been charged.
func (r *Resource) BusyTime() time.Duration { return r.busyTime }

// Uses returns the number of grants made.
func (r *Resource) Uses() int { return r.uses }

// Busy reports whether the resource is currently held.
func (r *Resource) Busy() bool { return r.busy }

// QueueLen returns the number of waiters in both bands.
func (r *Resource) QueueLen() int { return r.intrQ.len() + r.taskQ.len() }
