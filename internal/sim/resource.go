package sim

import "time"

// Resource models a serially-shared device such as a CPU or a half-duplex
// network medium. Work is admitted FIFO within two priority bands:
// interrupt-level work queue-jumps task-level work but does not preempt a
// charge already in progress. This mirrors how the paper's uniprocessor
// hosts interleave interrupt handling with user and server execution at
// the granularity the cost model cares about.
type Resource struct {
	Name string

	busy     bool
	intrQ    []*resWaiter // interrupt band (FIFO)
	taskQ    []*resWaiter // task band (FIFO)
	busyTime time.Duration
	uses     int
}

type resWaiter struct {
	proc    *Proc
	fn      func() // event-style continuation, used by UseEvent
	granted bool
}

// Priority selects the admission band for resource use.
type Priority int

const (
	// TaskPriority is ordinary process-level work.
	TaskPriority Priority = iota
	// IntrPriority is interrupt-level work; it is admitted ahead of all
	// queued task-level work.
	IntrPriority
)

// Use charges d of exclusive time on the resource on behalf of p,
// blocking until the resource grants it. A zero or negative duration still
// performs admission (useful for pure serialization points).
func (r *Resource) Use(p *Proc, pri Priority, d time.Duration) {
	if r.busy {
		w := &resWaiter{proc: p}
		r.enqueue(pri, w)
		for !w.granted {
			p.Park()
		}
	} else {
		r.busy = true
	}
	r.uses++
	r.busyTime += d
	if d > 0 {
		p.Sleep(d)
	}
	r.release(p.sim)
}

// UseEvent charges d of exclusive time from event context (no Proc), then
// runs done. It is used by interrupt handlers, which are events rather
// than processes.
func (r *Resource) UseEvent(s *Sim, pri Priority, d time.Duration, done func()) {
	grant := func() {
		r.uses++
		r.busyTime += d
		s.After(d, func() {
			done()
			r.release(s)
		})
	}
	if r.busy {
		r.enqueue(pri, &resWaiter{fn: grant})
		return
	}
	r.busy = true
	grant()
}

func (r *Resource) enqueue(pri Priority, w *resWaiter) {
	if pri == IntrPriority {
		r.intrQ = append(r.intrQ, w)
	} else {
		r.taskQ = append(r.taskQ, w)
	}
}

func (r *Resource) release(s *Sim) {
	var next *resWaiter
	switch {
	case len(r.intrQ) > 0:
		next = r.intrQ[0]
		r.intrQ = r.intrQ[1:]
	case len(r.taskQ) > 0:
		next = r.taskQ[0]
		r.taskQ = r.taskQ[1:]
	default:
		r.busy = false
		return
	}
	if next.proc != nil {
		next.granted = true
		next.proc.Unpark()
		return
	}
	next.fn()
}

// BusyTime returns the total virtual time the resource has been charged.
func (r *Resource) BusyTime() time.Duration { return r.busyTime }

// Uses returns the number of grants made.
func (r *Resource) Uses() int { return r.uses }

// Busy reports whether the resource is currently held.
func (r *Resource) Busy() bool { return r.busy }

// QueueLen returns the number of waiters in both bands.
func (r *Resource) QueueLen() int { return len(r.intrQ) + len(r.taskQ) }
