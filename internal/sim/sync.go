package sim

import "time"

// Cond is a virtual-time condition variable. Because the simulation is
// logically single-threaded, no mutex is needed: a waiter's predicate
// cannot change between testing it and calling Wait. The usual pattern
// still applies:
//
//	for !pred() {
//		cond.Wait(p)
//	}
type Cond struct {
	waiters []*condWaiter
	head    int           // first live waiter; backing array is reused
	free    []*condWaiter // recycled waiter records
}

type condWaiter struct {
	p     *Proc
	woken bool
}

func (c *Cond) getWaiter(p *Proc) *condWaiter {
	var w *condWaiter
	if n := len(c.free); n > 0 {
		w = c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		w.p, w.woken = p, false
	} else {
		w = &condWaiter{p: p}
	}
	c.waiters = append(c.waiters, w)
	return w
}

func (c *Cond) putWaiter(w *condWaiter) {
	w.p = nil
	c.free = append(c.free, w)
}

// pop removes and returns the longest waiter, nil if none. The head index
// walks forward and resets when the queue drains, so steady-state
// wait/signal traffic reuses the same backing array.
func (c *Cond) pop() *condWaiter {
	if c.head >= len(c.waiters) {
		return nil
	}
	w := c.waiters[c.head]
	c.waiters[c.head] = nil
	c.head++
	if c.head == len(c.waiters) {
		c.waiters = c.waiters[:0]
		c.head = 0
	}
	return w
}

// Wait parks the calling process until Signal or Broadcast. Stray wakeup
// tokens (for example, from an unrelated Unpark banked while the process
// was running) are absorbed by re-parking, so Wait returns only on a real
// signal.
func (c *Cond) Wait(p *Proc) {
	w := c.getWaiter(p)
	for !w.woken {
		p.Park()
	}
	c.putWaiter(w)
}

// WaitTimeout parks for at most d; it reports whether the process was
// signalled (true) rather than timed out (false).
func (c *Cond) WaitTimeout(p *Proc, d time.Duration) bool {
	w := c.getWaiter(p)
	deadline := p.Now().Add(d)
	for !w.woken {
		remain := deadline.Sub(p.Now())
		if remain <= 0 || !p.ParkTimeout(remain) && !w.woken {
			if !w.woken {
				c.remove(w)
				c.putWaiter(w)
				return false
			}
		}
	}
	c.putWaiter(w)
	return true
}

func (c *Cond) remove(w *condWaiter) {
	for i := c.head; i < len(c.waiters); i++ {
		if c.waiters[i] == w {
			copy(c.waiters[i:], c.waiters[i+1:])
			c.waiters[len(c.waiters)-1] = nil
			c.waiters = c.waiters[:len(c.waiters)-1]
			if c.head == len(c.waiters) {
				c.waiters = c.waiters[:0]
				c.head = 0
			}
			return
		}
	}
}

// Signal wakes the longest-waiting process, if any.
func (c *Cond) Signal() {
	if w := c.pop(); w != nil {
		w.woken = true
		w.p.Unpark()
	}
}

// Broadcast wakes all waiting processes.
func (c *Cond) Broadcast() {
	for {
		w := c.pop()
		if w == nil {
			return
		}
		w.woken = true
		w.p.Unpark()
	}
}

// Waiters returns the number of processes currently waiting.
func (c *Cond) Waiters() int { return len(c.waiters) - c.head }

// WaitGroup counts outstanding work in virtual time.
type WaitGroup struct {
	n    int
	cond Cond
}

// Add adds delta to the counter.
func (wg *WaitGroup) Add(delta int) {
	wg.n += delta
	if wg.n < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if wg.n == 0 {
		wg.cond.Broadcast()
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait parks until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	for wg.n > 0 {
		wg.cond.Wait(p)
	}
}

// Chan is a bounded FIFO message queue in virtual time. A capacity of zero
// means unbounded. The backing array is reused: the head index advances on
// receive and resets when the queue drains.
type Chan[T any] struct {
	cap      int
	items    []T
	head     int
	closed   bool
	notEmpty Cond
	notFull  Cond
}

// NewChan returns a queue holding at most capacity items (0 = unbounded).
func NewChan[T any](capacity int) *Chan[T] {
	return &Chan[T]{cap: capacity}
}

// Len returns the number of queued items.
func (q *Chan[T]) Len() int { return len(q.items) - q.head }

// popItem removes the head item; the caller has checked Len() > 0.
func (q *Chan[T]) popItem() T {
	v := q.items[q.head]
	var zero T
	q.items[q.head] = zero
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return v
}

// Close marks the queue closed. Receivers drain remaining items and then
// see ok=false; senders panic, as on a native Go channel.
func (q *Chan[T]) Close() {
	q.closed = true
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}

// Send enqueues v, parking while the queue is full.
func (q *Chan[T]) Send(p *Proc, v T) {
	for q.cap > 0 && q.Len() >= q.cap && !q.closed {
		q.notFull.Wait(p)
	}
	if q.closed {
		panic("sim: send on closed Chan")
	}
	q.items = append(q.items, v)
	q.notEmpty.Signal()
}

// TrySend enqueues v if there is room, reporting whether it did.
func (q *Chan[T]) TrySend(v T) bool {
	if q.closed || (q.cap > 0 && q.Len() >= q.cap) {
		return false
	}
	q.items = append(q.items, v)
	q.notEmpty.Signal()
	return true
}

// Recv dequeues an item, parking while the queue is empty. ok is false if
// the queue is closed and drained.
func (q *Chan[T]) Recv(p *Proc) (v T, ok bool) {
	for q.Len() == 0 && !q.closed {
		q.notEmpty.Wait(p)
	}
	if q.Len() == 0 {
		return v, false
	}
	v = q.popItem()
	q.notFull.Signal()
	return v, true
}

// TryRecv dequeues an item if one is available.
func (q *Chan[T]) TryRecv() (v T, ok bool) {
	if q.Len() == 0 {
		return v, false
	}
	v = q.popItem()
	q.notFull.Signal()
	return v, true
}

// RecvTimeout dequeues an item, waiting at most d. ok is false on timeout
// or when the queue is closed and drained.
func (q *Chan[T]) RecvTimeout(p *Proc, d time.Duration) (v T, ok bool) {
	deadline := p.Now().Add(d)
	for q.Len() == 0 && !q.closed {
		remain := deadline.Sub(p.Now())
		if remain <= 0 {
			return v, false
		}
		if !q.notEmpty.WaitTimeout(p, remain) && q.Len() == 0 {
			return v, false
		}
	}
	if q.Len() == 0 {
		return v, false
	}
	v = q.popItem()
	q.notFull.Signal()
	return v, true
}

// Mutex is a virtual-time mutual-exclusion lock with FIFO handoff. The
// protocol stack uses one as its splnet equivalent: cooperative
// scheduling means threads only interleave at yields (CPU charges,
// sleeps), but protocol entry points yield constantly, so protocol state
// still needs explicit serialization exactly as it does in BSD.
type Mutex struct {
	held bool
	cond Cond
}

// Lock acquires the mutex, parking until it is free.
func (m *Mutex) Lock(t *Proc) {
	for m.held {
		m.cond.Wait(t)
	}
	m.held = true
}

// TryLock acquires the mutex if it is free.
func (m *Mutex) TryLock() bool {
	if m.held {
		return false
	}
	m.held = true
	return true
}

// Unlock releases the mutex and wakes the longest waiter.
func (m *Mutex) Unlock() {
	if !m.held {
		panic("sim: unlock of unheld Mutex")
	}
	m.held = false
	m.cond.Signal()
}

// Held reports whether the mutex is currently held.
func (m *Mutex) Held() bool { return m.held }
