package wire

import (
	"encoding/binary"
	"fmt"
)

// ICMPHeaderLen is the length of the fixed ICMP header.
const ICMPHeaderLen = 8

// ICMP message types and codes used by the stack.
const (
	ICMPEchoReply       = 0
	ICMPDestUnreachable = 3
	ICMPEchoRequest     = 8
	ICMPTimeExceeded    = 11

	ICMPCodeNetUnreachable   = 0
	ICMPCodePortUnreachable  = 3
	ICMPCodeHostUnreachable  = 1
	ICMPCodeFragNeeded       = 4
	ICMPCodeTTLExceeded      = 0
	ICMPCodeReassemblyExpiry = 1
)

// ICMPQuoteLen is how much of the offending datagram's transport payload
// an ICMP error message quotes after the IP header (RFC 792).
const ICMPQuoteLen = 8

// ICMPErrorPayload builds the payload of an ICMP error message: the
// offending datagram's IP header followed by its first ICMPQuoteLen
// transport bytes — enough for the receiver to identify the socket.
func ICMPErrorPayload(orig IPv4Header, origBody []byte) []byte {
	quote := make([]byte, IPv4HeaderLen, IPv4HeaderLen+ICMPQuoteLen)
	orig.Marshal(quote)
	n := len(origBody)
	if n > ICMPQuoteLen {
		n = ICMPQuoteLen
	}
	return append(quote, origBody[:n]...)
}

// ICMPIsError reports whether an ICMP type is an error message (an error
// must never be generated in response to another error).
func ICMPIsError(typ uint8) bool {
	return typ == ICMPDestUnreachable || typ == ICMPTimeExceeded
}

// ICMPHeader is the fixed part of an ICMP message. For echo messages, ID
// and Seq hold the identifier and sequence; for errors they are unused.
type ICMPHeader struct {
	Type uint8
	Code uint8
	ID   uint16
	Seq  uint16
}

// Marshal encodes the header and payload into a fresh slice, computing the
// ICMP checksum over the whole message.
func (h *ICMPHeader) Marshal(payload []byte) []byte {
	b := make([]byte, ICMPHeaderLen+len(payload))
	b[0] = h.Type
	b[1] = h.Code
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	binary.BigEndian.PutUint16(b[6:8], h.Seq)
	copy(b[ICMPHeaderLen:], payload)
	ck := Checksum(b)
	binary.BigEndian.PutUint16(b[2:4], ck)
	return b
}

// UnmarshalICMP parses an ICMP message, verifying its checksum, and
// returns the header and payload.
func UnmarshalICMP(b []byte) (ICMPHeader, []byte, error) {
	var h ICMPHeader
	if len(b) < ICMPHeaderLen {
		return h, nil, fmt.Errorf("wire: short ICMP message (%d bytes)", len(b))
	}
	if Checksum(b) != 0 {
		return h, nil, fmt.Errorf("wire: ICMP %w", ErrChecksum)
	}
	h.Type = b[0]
	h.Code = b[1]
	h.ID = binary.BigEndian.Uint16(b[4:6])
	h.Seq = binary.BigEndian.Uint16(b[6:8])
	return h, b[ICMPHeaderLen:], nil
}
