package wire

import (
	"math/rand"
	"testing"
)

// TestChecksumFixupQuickcheck compares the RFC 1624 incremental update
// against a full recomputation over randomized coverage, rewrite ranges,
// and contents. Ranges start on 16-bit boundaries of the covered data,
// which is the alignment every header field rewrite satisfies.
func TestChecksumFixupQuickcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1624))
	for trial := 0; trial < 20000; trial++ {
		n := 2 + rng.Intn(1500)
		buf := make([]byte, n)
		rng.Read(buf)
		check := Checksum(buf)

		off := rng.Intn(n) &^ 1
		l := 1 + rng.Intn(n-off)
		old := append([]byte(nil), buf[off:off+l]...)
		rng.Read(buf[off : off+l])

		got := ChecksumFixup(check, old, buf[off:off+l])
		want := Checksum(buf)
		if got != want {
			t.Fatalf("trial %d: n=%d off=%d l=%d: fixup %#04x != recompute %#04x",
				trial, n, off, l, got, want)
		}
	}
}

// TestChecksumFixupComposes verifies that fixing up two disjoint ranges
// in sequence equals one recomputation — the property NAT relies on when
// it rewrites the address block and the port block separately.
func TestChecksumFixupComposes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5000; trial++ {
		buf := make([]byte, 40+rng.Intn(200))
		rng.Read(buf)
		check := Checksum(buf)

		oldA := append([]byte(nil), buf[12:20]...)
		oldB := append([]byte(nil), buf[20:24]...)
		rng.Read(buf[12:24])

		check = ChecksumFixup(check, oldA, buf[12:20])
		check = ChecksumFixup(check, oldB, buf[20:24])
		if want := Checksum(buf); check != want {
			t.Fatalf("trial %d: composed fixup %#04x != recompute %#04x", trial, check, want)
		}
	}
}

// TestChecksumFixupIdentity: rewriting bytes to themselves must not
// change the checksum.
func TestChecksumFixupIdentity(t *testing.T) {
	buf := []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}
	check := Checksum(buf)
	if got := ChecksumFixup(check, buf[2:4], buf[2:4]); got != check {
		t.Fatalf("identity fixup changed checksum: %#04x -> %#04x", check, got)
	}
}
