package wire

import (
	"encoding/binary"
	"fmt"
)

// ARP operation codes.
const (
	ARPRequest = 1
	ARPReply   = 2
)

// ARPLen is the size of an ARP packet for Ethernet/IPv4.
const ARPLen = 28

// ARPPacket is an Ethernet/IPv4 ARP packet.
type ARPPacket struct {
	Op        uint16
	SenderMAC MAC
	SenderIP  IPAddr
	TargetMAC MAC
	TargetIP  IPAddr
}

// Marshal encodes the packet into a fresh slice.
func (p *ARPPacket) Marshal() []byte {
	b := make([]byte, ARPLen)
	binary.BigEndian.PutUint16(b[0:2], 1)             // hardware type: Ethernet
	binary.BigEndian.PutUint16(b[2:4], EtherTypeIPv4) // protocol type: IPv4
	b[4] = 6                                          // hardware address length
	b[5] = 4                                          // protocol address length
	binary.BigEndian.PutUint16(b[6:8], p.Op)
	copy(b[8:14], p.SenderMAC[:])
	copy(b[14:18], p.SenderIP[:])
	copy(b[18:24], p.TargetMAC[:])
	copy(b[24:28], p.TargetIP[:])
	return b
}

// UnmarshalARP parses an ARP packet.
func UnmarshalARP(b []byte) (ARPPacket, error) {
	var p ARPPacket
	if len(b) < ARPLen {
		return p, fmt.Errorf("wire: short ARP packet (%d bytes)", len(b))
	}
	if ht := binary.BigEndian.Uint16(b[0:2]); ht != 1 {
		return p, fmt.Errorf("wire: ARP hardware type %d not Ethernet", ht)
	}
	if pt := binary.BigEndian.Uint16(b[2:4]); pt != EtherTypeIPv4 {
		return p, fmt.Errorf("wire: ARP protocol type %#x not IPv4", pt)
	}
	if b[4] != 6 || b[5] != 4 {
		return p, fmt.Errorf("wire: ARP address lengths %d/%d", b[4], b[5])
	}
	p.Op = binary.BigEndian.Uint16(b[6:8])
	copy(p.SenderMAC[:], b[8:14])
	copy(p.SenderIP[:], b[14:18])
	copy(p.TargetMAC[:], b[18:24])
	copy(p.TargetIP[:], b[24:28])
	return p, nil
}
