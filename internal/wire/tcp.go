package wire

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// TCPHeaderLen is the length of a TCP header without options.
const TCPHeaderLen = 20

// TCP flag bits.
const (
	TCPFin = 0x01
	TCPSyn = 0x02
	TCPRst = 0x04
	TCPPsh = 0x08
	TCPAck = 0x10
	TCPUrg = 0x20
)

// TCP option kinds.
const (
	TCPOptEnd = 0
	TCPOptNop = 1
	TCPOptMSS = 2
)

// TCPHeader is a TCP segment header.
type TCPHeader struct {
	SrcPort  uint16
	DstPort  uint16
	Seq      uint32
	Ack      uint32
	Flags    uint8
	Window   uint16
	Checksum uint16
	Urgent   uint16
	MSS      uint16 // MSS option value; 0 means absent (only valid on SYN)
}

// HeaderLen returns the marshalled header length including options.
func (h *TCPHeader) HeaderLen() int {
	if h.MSS != 0 {
		return TCPHeaderLen + 4
	}
	return TCPHeaderLen
}

// Marshal writes the header (and MSS option, if set) into b, which must be
// at least HeaderLen bytes. The checksum field is written as given; use
// TCPChecksum to compute it.
func (h *TCPHeader) Marshal(b []byte) {
	hl := h.HeaderLen()
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint32(b[4:8], h.Seq)
	binary.BigEndian.PutUint32(b[8:12], h.Ack)
	b[12] = byte(hl/4) << 4
	b[13] = h.Flags
	binary.BigEndian.PutUint16(b[14:16], h.Window)
	binary.BigEndian.PutUint16(b[16:18], h.Checksum)
	binary.BigEndian.PutUint16(b[18:20], h.Urgent)
	if h.MSS != 0 {
		b[20] = TCPOptMSS
		b[21] = 4
		binary.BigEndian.PutUint16(b[22:24], h.MSS)
	}
}

// UnmarshalTCP parses a TCP header from b, returning the header and the
// header length (data offset).
func UnmarshalTCP(b []byte) (TCPHeader, int, error) {
	var h TCPHeader
	if len(b) < TCPHeaderLen {
		return h, 0, fmt.Errorf("wire: short TCP header (%d bytes)", len(b))
	}
	hl := int(b[12]>>4) * 4
	if hl < TCPHeaderLen || len(b) < hl {
		return h, 0, fmt.Errorf("wire: bad TCP data offset %d", hl)
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Seq = binary.BigEndian.Uint32(b[4:8])
	h.Ack = binary.BigEndian.Uint32(b[8:12])
	h.Flags = b[13]
	h.Window = binary.BigEndian.Uint16(b[14:16])
	h.Checksum = binary.BigEndian.Uint16(b[16:18])
	h.Urgent = binary.BigEndian.Uint16(b[18:20])
	// Parse options (MSS only; others skipped).
	opts := b[TCPHeaderLen:hl]
	for len(opts) > 0 {
		switch opts[0] {
		case TCPOptEnd:
			opts = nil
		case TCPOptNop:
			opts = opts[1:]
		default:
			if len(opts) < 2 || int(opts[1]) < 2 || int(opts[1]) > len(opts) {
				return h, 0, fmt.Errorf("wire: malformed TCP option")
			}
			if opts[0] == TCPOptMSS && opts[1] == 4 {
				h.MSS = binary.BigEndian.Uint16(opts[2:4])
			}
			opts = opts[opts[1]:]
		}
	}
	return h, hl, nil
}

// TCPChecksum computes the TCP checksum over the pseudo-header, the
// marshalled header bytes hdr (checksum field zero), and payload slices.
func TCPChecksum(src, dst IPAddr, hdr []byte, payload ...[]byte) uint16 {
	var c Checksummer
	length := len(hdr)
	for _, p := range payload {
		length += len(p)
	}
	c.PseudoHeader(src, dst, ProtoTCP, uint16(length))
	c.Add(hdr)
	for _, p := range payload {
		c.Add(p)
	}
	return c.Sum()
}

// VerifyTCPChecksum checks a received TCP segment (header + payload).
func VerifyTCPChecksum(src, dst IPAddr, seg []byte) bool {
	if len(seg) < TCPHeaderLen {
		return false
	}
	var c Checksummer
	c.PseudoHeader(src, dst, ProtoTCP, uint16(len(seg)))
	c.Add(seg)
	return c.Sum() == 0
}

// FlagString renders TCP flags like "SYN|ACK" for diagnostics.
func FlagString(f uint8) string {
	var parts []string
	for _, fl := range []struct {
		bit  uint8
		name string
	}{{TCPFin, "FIN"}, {TCPSyn, "SYN"}, {TCPRst, "RST"}, {TCPPsh, "PSH"}, {TCPAck, "ACK"}, {TCPUrg, "URG"}} {
		if f&fl.bit != 0 {
			parts = append(parts, fl.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}
