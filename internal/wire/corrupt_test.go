package wire

import (
	"encoding/binary"
	"errors"
	"testing"
)

// TestIPv4HeaderCorruptionDetected flips every bit of a marshalled IPv4
// header in turn and asserts the header checksum catches each flip.
// The Internet checksum's one's-complement arithmetic detects any
// single-bit error, so this is exhaustive, not statistical.
func TestIPv4HeaderCorruptionDetected(t *testing.T) {
	h := IPv4Header{
		TotalLen: IPv4HeaderLen + 100,
		ID:       0x1234,
		TTL:      DefaultTTL,
		Proto:    ProtoTCP,
		Src:      IP(10, 0, 0, 1),
		Dst:      IP(10, 0, 0, 2),
	}
	b := make([]byte, IPv4HeaderLen)
	h.Marshal(b)
	if _, _, err := UnmarshalIPv4(b); err != nil {
		t.Fatalf("pristine header rejected: %v", err)
	}
	for bit := 0; bit < IPv4HeaderLen*8; bit++ {
		c := make([]byte, len(b))
		copy(c, b)
		c[bit/8] ^= 1 << (bit % 8)
		_, _, err := UnmarshalIPv4(c)
		if err == nil {
			t.Fatalf("bit flip %d (byte %d) not detected", bit, bit/8)
		}
		// Flips in the version/IHL byte change the parse geometry and
		// fail before checksumming; everything else must be reported as
		// a checksum error specifically.
		if bit >= 8 && !errors.Is(err, ErrChecksum) {
			t.Fatalf("bit flip %d: error %v is not ErrChecksum", bit, err)
		}
	}
}

// TestTCPSegmentCorruptionDetected flips every bit of a TCP segment
// (header and payload) and asserts the pseudo-header checksum catches
// each flip.
func TestTCPSegmentCorruptionDetected(t *testing.T) {
	src, dst := IP(10, 0, 0, 1), IP(10, 0, 0, 2)
	h := TCPHeader{SrcPort: 1234, DstPort: 80, Seq: 99, Ack: 7, Flags: TCPAck | TCPPsh, Window: 4096}
	payload := []byte("some bytes the application cares about")
	seg := make([]byte, h.HeaderLen()+len(payload))
	h.Marshal(seg)
	copy(seg[h.HeaderLen():], payload)
	ck := TCPChecksum(src, dst, seg[:h.HeaderLen()], payload)
	binary.BigEndian.PutUint16(seg[16:18], ck)
	if !VerifyTCPChecksum(src, dst, seg) {
		t.Fatal("pristine segment rejected")
	}
	for bit := 0; bit < len(seg)*8; bit++ {
		c := make([]byte, len(seg))
		copy(c, seg)
		c[bit/8] ^= 1 << (bit % 8)
		if VerifyTCPChecksum(src, dst, c) {
			t.Fatalf("bit flip %d (byte %d) not detected", bit, bit/8)
		}
	}
	// The pseudo-header ties the segment to its addresses: a datagram
	// delivered to the wrong host must not verify.
	if VerifyTCPChecksum(src, IP(10, 0, 0, 3), seg) {
		t.Fatal("segment verified against the wrong destination address")
	}
}

// TestUDPDatagramCorruptionDetected flips every bit of a UDP datagram.
// One subtlety is RFC 768's zero-checksum convention: a receiver must
// accept a datagram whose checksum field is zero ("not computed"), so a
// flip that zeroes the checksum field itself escapes detection. Senders
// here always compute checksums (transmitting 0 as 0xffff), so the
// exemption applies only to flips inside the checksum field that turn a
// one-bit field value into zero — impossible for a single flip unless
// the field had exactly one bit set.
func TestUDPDatagramCorruptionDetected(t *testing.T) {
	src, dst := IP(10, 0, 0, 1), IP(10, 0, 0, 2)
	payload := []byte("datagram payload")
	h := UDPHeader{SrcPort: 53, DstPort: 4321, Length: uint16(UDPHeaderLen + len(payload))}
	hb := make([]byte, UDPHeaderLen)
	h.Marshal(hb)
	h.Checksum = UDPChecksum(src, dst, hb, payload)
	h.Marshal(hb)
	seg := append(append([]byte(nil), hb...), payload...)
	if !VerifyUDPChecksum(src, dst, seg) {
		t.Fatal("pristine datagram rejected")
	}
	ckField := binary.BigEndian.Uint16(seg[6:8])
	for bit := 0; bit < len(seg)*8; bit++ {
		c := make([]byte, len(seg))
		copy(c, seg)
		c[bit/8] ^= 1 << (bit % 8)
		zeroedChecksum := binary.BigEndian.Uint16(c[6:8]) == 0
		if VerifyUDPChecksum(src, dst, c) != zeroedChecksum {
			t.Fatalf("bit flip %d (byte %d): verify = %v, checksum field %#x",
				bit, bit/8, !zeroedChecksum, binary.BigEndian.Uint16(c[6:8]))
		}
	}
	// Sanity: with a realistic multi-bit checksum the zero-field escape
	// hatch was unreachable above.
	if ckField == 0 || ckField&(ckField-1) == 0 {
		t.Logf("checksum %#x had <2 bits set; zero-field case exercised", ckField)
	}
}

// TestICMPCorruptionDetected flips every bit of an ICMP echo request.
func TestICMPCorruptionDetected(t *testing.T) {
	h := ICMPHeader{Type: ICMPEchoRequest, ID: 7, Seq: 3}
	msg := h.Marshal([]byte("ping payload"))
	if _, _, err := UnmarshalICMP(msg); err != nil {
		t.Fatalf("pristine message rejected: %v", err)
	}
	for bit := 0; bit < len(msg)*8; bit++ {
		c := make([]byte, len(msg))
		copy(c, msg)
		c[bit/8] ^= 1 << (bit % 8)
		_, _, err := UnmarshalICMP(c)
		if err == nil {
			t.Fatalf("bit flip %d (byte %d) not detected", bit, bit/8)
		}
		if !errors.Is(err, ErrChecksum) {
			t.Fatalf("bit flip %d: error %v is not ErrChecksum", bit, err)
		}
	}
}
