package wire

import (
	"encoding/binary"
	"fmt"
)

// IPv4HeaderLen is the length of an IPv4 header without options.
const IPv4HeaderLen = 20

// IPv4 fragmentation flag bits (in the flags/fragment-offset word).
const (
	IPFlagDF  = 0x4000 // don't fragment
	IPFlagMF  = 0x2000 // more fragments
	IPOffMask = 0x1fff
)

// DefaultTTL is the initial time-to-live for outgoing packets.
const DefaultTTL = 64

// IPv4Header is an IPv4 packet header (options unsupported, as in the
// stack this repository models).
type IPv4Header struct {
	TOS      uint8
	TotalLen uint16 // header + payload
	ID       uint16
	Flags    uint16 // DF/MF bits, in place (already shifted)
	FragOff  uint16 // fragment offset in 8-byte units
	TTL      uint8
	Proto    uint8
	Checksum uint16 // as parsed; recomputed on marshal
	Src, Dst IPAddr
}

// Marshal writes the header into b (at least IPv4HeaderLen bytes),
// computing the header checksum.
func (h *IPv4Header) Marshal(b []byte) {
	b[0] = 0x45 // version 4, IHL 5
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:4], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	binary.BigEndian.PutUint16(b[6:8], h.Flags|(h.FragOff&IPOffMask))
	b[8] = h.TTL
	b[9] = h.Proto
	b[10], b[11] = 0, 0
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	ck := Checksum(b[:IPv4HeaderLen])
	binary.BigEndian.PutUint16(b[10:12], ck)
	h.Checksum = ck
}

// UnmarshalIPv4 parses and validates an IPv4 header, returning the header
// and the header length.
func UnmarshalIPv4(b []byte) (IPv4Header, int, error) {
	var h IPv4Header
	if len(b) < IPv4HeaderLen {
		return h, 0, fmt.Errorf("wire: short IPv4 header (%d bytes)", len(b))
	}
	if v := b[0] >> 4; v != 4 {
		return h, 0, fmt.Errorf("wire: IP version %d", v)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(b) < ihl {
		return h, 0, fmt.Errorf("wire: bad IHL %d", ihl)
	}
	if Checksum(b[:ihl]) != 0 {
		return h, 0, fmt.Errorf("wire: IPv4 header %w", ErrChecksum)
	}
	h.TOS = b[1]
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	fo := binary.BigEndian.Uint16(b[6:8])
	h.Flags = fo &^ IPOffMask
	h.FragOff = fo & IPOffMask
	h.TTL = b[8]
	h.Proto = b[9]
	h.Checksum = binary.BigEndian.Uint16(b[10:12])
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	if int(h.TotalLen) < ihl {
		return h, 0, fmt.Errorf("wire: IPv4 total length %d < header %d", h.TotalLen, ihl)
	}
	return h, ihl, nil
}

// MoreFragments reports whether the MF bit is set.
func (h *IPv4Header) MoreFragments() bool { return h.Flags&IPFlagMF != 0 }

// DontFragment reports whether the DF bit is set.
func (h *IPv4Header) DontFragment() bool { return h.Flags&IPFlagDF != 0 }

// IsFragment reports whether the packet is any fragment other than a
// complete datagram.
func (h *IPv4Header) IsFragment() bool { return h.MoreFragments() || h.FragOff != 0 }
