package wire

import (
	"encoding/binary"
	"errors"

	"repro/internal/mbuf"
)

// ErrChecksum marks a parse failure caused by a checksum mismatch, as
// opposed to a malformed header. Callers use errors.Is to count
// corruption discards separately from garbage.
var ErrChecksum = errors.New("checksum mismatch")

// Checksummer accumulates the Internet checksum (RFC 1071) over a sequence
// of byte slices, correctly handling odd-length slices in the middle of
// the sequence by tracking byte parity. The accumulator is 64-bit so the
// hot loop can add whole 32-bit words without folding; since 2^16 ≡ 1
// (mod 2^16 - 1), deferring the fold to Sum gives the same result.
type Checksummer struct {
	sum uint64
	odd bool
}

// Add folds b into the checksum.
func (c *Checksummer) Add(b []byte) {
	i := 0
	if c.odd && len(b) > 0 {
		// The previous slice ended mid-word; this byte is the low half.
		c.sum += uint64(b[0])
		i = 1
		c.odd = false
	}
	// 8 bytes per iteration: two big-endian 32-bit loads. A uint64
	// accumulator absorbs 2^32 such adds before overflow — far beyond
	// any frame or chain length seen here.
	for ; i+8 <= len(b); i += 8 {
		c.sum += uint64(binary.BigEndian.Uint32(b[i:]))
		c.sum += uint64(binary.BigEndian.Uint32(b[i+4:]))
	}
	for ; i+1 < len(b); i += 2 {
		c.sum += uint64(b[i])<<8 | uint64(b[i+1])
	}
	if i < len(b) {
		c.sum += uint64(b[i]) << 8
		c.odd = true
	}
}

// AddChain folds every segment of the chain into the checksum without
// flattening it — the integrated chain walk half of the classic
// copy/checksum fusion.
func (c *Checksummer) AddChain(ch *mbuf.Chain) {
	it := ch.Iter()
	for b, ok := it.Next(); ok; b, ok = it.Next() {
		c.Add(b)
	}
}

// CopyAndSum copies the chain's contents into dst while folding them into
// the checksum in the same pass (the paper's fused copy+checksum: one
// traversal, one cache walk). It returns the number of bytes copied,
// which is min(len(dst), ch.Len()).
func (c *Checksummer) CopyAndSum(dst []byte, ch *mbuf.Chain) int {
	total := 0
	it := ch.Iter()
	for b, ok := it.Next(); ok && total < len(dst); b, ok = it.Next() {
		n := copy(dst[total:], b)
		c.Add(dst[total : total+n])
		total += n
	}
	return total
}

// AddUint16 folds a 16-bit value into the checksum. It must only be called
// on a word boundary (even number of bytes added so far).
func (c *Checksummer) AddUint16(v uint16) {
	if c.odd {
		panic("wire: AddUint16 on odd byte boundary")
	}
	c.sum += uint64(v)
}

// Sum finishes the computation and returns the one's-complement checksum.
func (c *Checksummer) Sum() uint16 {
	s := c.sum
	for s>>16 != 0 {
		s = (s & 0xffff) + (s >> 16)
	}
	return ^uint16(s)
}

// Offsets of the transport checksum field within the TCP and UDP
// headers. The IP output path computes transport checksums during its
// fused copy into the link frame and patches them in at these offsets.
const (
	TCPChecksumOffset = 16
	UDPChecksumOffset = 6
)

// Checksum returns the Internet checksum of b.
func Checksum(b []byte) uint16 {
	var c Checksummer
	c.Add(b)
	return c.Sum()
}

// ChecksumChain returns the Internet checksum of the chain's contents.
func ChecksumChain(ch *mbuf.Chain) uint16 {
	var c Checksummer
	c.AddChain(ch)
	return c.Sum()
}

// ChecksumFixup incrementally updates a header checksum field after a
// range of covered bytes changed from old to new, per RFC 1624 eqn. 3:
//
//	HC' = ~(~HC + ~m + m')
//
// check is the current field value; old and new are the bytes before and
// after the rewrite (they may differ in length, but NAT rewrites use
// equal, even-length ranges). The update is exact — the result equals a
// full recomputation — so rewrites never have to re-sum payload; only
// the changed header bytes are visited. Fixups compose: rewriting two
// disjoint ranges is two successive calls.
func ChecksumFixup(check uint16, old, new []byte) uint16 {
	var co, cn Checksummer
	co.Add(old)
	cn.Add(new)
	// co.Sum() is ~m already; ^cn.Sum() undoes the complement to get m'.
	s := uint64(^check) + uint64(co.Sum()) + uint64(^cn.Sum())
	for s>>16 != 0 {
		s = (s & 0xffff) + (s >> 16)
	}
	return ^uint16(s)
}

// PseudoHeader folds the IPv4 pseudo-header used by TCP and UDP checksums
// into c: source address, destination address, protocol, and length of the
// transport segment.
func (c *Checksummer) PseudoHeader(src, dst IPAddr, proto uint8, length uint16) {
	c.Add(src[:])
	c.Add(dst[:])
	c.AddUint16(uint16(proto))
	c.AddUint16(length)
}
