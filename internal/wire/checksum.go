package wire

import "errors"

// ErrChecksum marks a parse failure caused by a checksum mismatch, as
// opposed to a malformed header. Callers use errors.Is to count
// corruption discards separately from garbage.
var ErrChecksum = errors.New("checksum mismatch")

// Checksummer accumulates the Internet checksum (RFC 1071) over a sequence
// of byte slices, correctly handling odd-length slices in the middle of
// the sequence by tracking byte parity.
type Checksummer struct {
	sum uint32
	odd bool
}

// Add folds b into the checksum.
func (c *Checksummer) Add(b []byte) {
	i := 0
	if c.odd && len(b) > 0 {
		// The previous slice ended mid-word; this byte is the low half.
		c.sum += uint32(b[0])
		i = 1
		c.odd = false
	}
	for ; i+1 < len(b); i += 2 {
		c.sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if i < len(b) {
		c.sum += uint32(b[i]) << 8
		c.odd = true
	}
}

// AddUint16 folds a 16-bit value into the checksum. It must only be called
// on a word boundary (even number of bytes added so far).
func (c *Checksummer) AddUint16(v uint16) {
	if c.odd {
		panic("wire: AddUint16 on odd byte boundary")
	}
	c.sum += uint32(v)
}

// Sum finishes the computation and returns the one's-complement checksum.
func (c *Checksummer) Sum() uint16 {
	s := c.sum
	for s>>16 != 0 {
		s = (s & 0xffff) + (s >> 16)
	}
	return ^uint16(s)
}

// Checksum returns the Internet checksum of b.
func Checksum(b []byte) uint16 {
	var c Checksummer
	c.Add(b)
	return c.Sum()
}

// PseudoHeader folds the IPv4 pseudo-header used by TCP and UDP checksums
// into c: source address, destination address, protocol, and length of the
// transport segment.
func (c *Checksummer) PseudoHeader(src, dst IPAddr, proto uint8, length uint16) {
	c.Add(src[:])
	c.Add(dst[:])
	c.AddUint16(uint16(proto))
	c.AddUint16(length)
}
