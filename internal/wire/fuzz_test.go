package wire

import (
	"bytes"
	"testing"
)

// The fuzz targets hold the wire parsers to two properties: they never
// panic or over-read on arbitrary bytes, and anything they accept
// survives a marshal/parse round trip with identical semantic fields.
// Options the marshalers do not emit (IP options, TCP options other
// than MSS) are allowed to disappear; the parsed struct must not.

func FuzzParseEth(f *testing.F) {
	h := EthHeader{Dst: MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, Src: MAC{2, 0, 0, 0, 0, 1}, Type: EtherTypeIPv4}
	seed := make([]byte, EthHeaderLen)
	h.Marshal(seed)
	f.Add(seed)
	f.Add([]byte{})
	f.Add(seed[:13])
	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := UnmarshalEth(b)
		if err != nil {
			return
		}
		out := make([]byte, EthHeaderLen)
		h.Marshal(out)
		if !bytes.Equal(out, b[:EthHeaderLen]) {
			t.Fatalf("eth round trip: %x != %x", out, b[:EthHeaderLen])
		}
	})
}

func FuzzParseIPv4(f *testing.F) {
	h := IPv4Header{TotalLen: 40, ID: 7, Flags: IPFlagDF, TTL: DefaultTTL, Proto: ProtoTCP,
		Src: IPAddr{10, 0, 0, 1}, Dst: IPAddr{10, 0, 0, 2}}
	seed := make([]byte, IPv4HeaderLen)
	h.Marshal(seed)
	f.Add(seed)
	frag := h
	frag.Flags, frag.FragOff = IPFlagMF, 185
	fragB := make([]byte, IPv4HeaderLen)
	frag.Marshal(fragB)
	f.Add(fragB)
	bad := append([]byte(nil), seed...)
	bad[10] ^= 0xff // corrupt checksum
	f.Add(bad)
	f.Add([]byte{0x46, 0, 0, 24}) // IHL 6, short options
	f.Fuzz(func(t *testing.T, b []byte) {
		h, ihl, err := UnmarshalIPv4(b)
		if err != nil {
			return
		}
		if ihl < IPv4HeaderLen || ihl > len(b) {
			t.Fatalf("accepted IHL %d outside [20, %d]", ihl, len(b))
		}
		if int(h.TotalLen) < ihl {
			t.Fatalf("accepted TotalLen %d < header %d", h.TotalLen, ihl)
		}
		if h.FragOff&^IPOffMask != 0 {
			t.Fatalf("fragment offset %#x has flag bits", h.FragOff)
		}
		out := make([]byte, IPv4HeaderLen)
		h.Marshal(out)
		h2, _, err := UnmarshalIPv4(out)
		if err != nil {
			t.Fatalf("remarshal rejected: %v", err)
		}
		h.Checksum, h2.Checksum = 0, 0 // recomputed; options change it
		if h != h2 {
			t.Fatalf("ipv4 round trip: %+v != %+v", h, h2)
		}
	})
}

func FuzzParseTCP(f *testing.F) {
	h := TCPHeader{SrcPort: 1024, DstPort: 80, Seq: 1, Ack: 2, Flags: TCPSyn | TCPAck,
		Window: 16384, MSS: 1460}
	seed := make([]byte, h.HeaderLen())
	h.Marshal(seed)
	f.Add(seed)
	plain := h
	plain.MSS = 0
	seed2 := make([]byte, plain.HeaderLen())
	plain.Marshal(seed2)
	f.Add(seed2)
	// Data offset 6 with a NOP-padded option list.
	withNops := append(append([]byte(nil), seed2...), TCPOptNop, TCPOptNop, TCPOptNop, TCPOptEnd)
	withNops[12] = 6 << 4
	f.Add(withNops)
	// Truncated option: kind MSS, length 4, but only 2 bytes present.
	f.Add(append(append([]byte(nil), withNops[:20]...), TCPOptMSS, 4))
	f.Fuzz(func(t *testing.T, b []byte) {
		h, hl, err := UnmarshalTCP(b)
		if err != nil {
			return
		}
		if hl < TCPHeaderLen || hl > len(b) {
			t.Fatalf("accepted data offset %d outside [20, %d]", hl, len(b))
		}
		out := make([]byte, h.HeaderLen())
		h.Marshal(out)
		h2, _, err := UnmarshalTCP(out)
		if err != nil {
			t.Fatalf("remarshal rejected: %v", err)
		}
		if h != h2 {
			t.Fatalf("tcp round trip: %+v != %+v", h, h2)
		}
	})
}

func FuzzParseUDP(f *testing.F) {
	h := UDPHeader{SrcPort: 53, DstPort: 1024, Length: 20, Checksum: 0xbeef}
	seed := make([]byte, UDPHeaderLen)
	h.Marshal(seed)
	f.Add(seed)
	short := UDPHeader{Length: 7}
	shortB := make([]byte, UDPHeaderLen)
	short.Marshal(shortB)
	f.Add(shortB)
	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := UnmarshalUDP(b)
		if err != nil {
			return
		}
		if h.Length < UDPHeaderLen {
			t.Fatalf("accepted UDP length %d", h.Length)
		}
		out := make([]byte, UDPHeaderLen)
		h.Marshal(out)
		if !bytes.Equal(out, b[:UDPHeaderLen]) {
			t.Fatalf("udp round trip: %x != %x", out, b[:UDPHeaderLen])
		}
	})
}

func FuzzParseICMP(f *testing.F) {
	echo := ICMPHeader{Type: ICMPEchoRequest, ID: 9, Seq: 1}
	f.Add(echo.Marshal([]byte("payload")))
	orig := IPv4Header{TotalLen: 28, TTL: 1, Proto: ProtoUDP,
		Src: IPAddr{10, 0, 0, 1}, Dst: IPAddr{10, 9, 0, 1}}
	te := ICMPHeader{Type: ICMPTimeExceeded, Code: ICMPCodeTTLExceeded}
	f.Add(te.Marshal(ICMPErrorPayload(orig, []byte{0, 53, 4, 0, 0, 16, 0, 0})))
	corrupt := echo.Marshal(nil)
	corrupt[2] ^= 0x40
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, b []byte) {
		h, payload, err := UnmarshalICMP(b)
		if err != nil {
			return
		}
		if len(payload) != len(b)-ICMPHeaderLen {
			t.Fatalf("payload length %d from %d-byte message", len(payload), len(b))
		}
		out := h.Marshal(payload)
		h2, p2, err := UnmarshalICMP(out)
		if err != nil {
			t.Fatalf("remarshal rejected: %v", err)
		}
		if h != h2 || !bytes.Equal(payload, p2) {
			t.Fatalf("icmp round trip: %+v != %+v", h, h2)
		}
	})
}

func FuzzParseARP(f *testing.F) {
	req := ARPPacket{Op: ARPRequest, SenderMAC: MAC{2, 0, 0, 0, 0, 1},
		SenderIP: IPAddr{10, 0, 0, 1}, TargetIP: IPAddr{10, 0, 0, 2}}
	f.Add(req.Marshal())
	rep := ARPPacket{Op: ARPReply, SenderMAC: MAC{2, 0, 0, 0, 0, 2}, SenderIP: IPAddr{10, 0, 0, 2},
		TargetMAC: req.SenderMAC, TargetIP: req.SenderIP}
	f.Add(rep.Marshal())
	badHW := req.Marshal()
	badHW[0] = 0xff
	f.Add(badHW)
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := UnmarshalARP(b)
		if err != nil {
			return
		}
		// Everything the parser accepts is exactly re-encodable: the
		// constant fields were validated, so the first ARPLen bytes of
		// the input are canonical.
		if out := p.Marshal(); !bytes.Equal(out, b[:ARPLen]) {
			t.Fatalf("arp round trip: %x != %x", out, b[:ARPLen])
		}
	})
}
