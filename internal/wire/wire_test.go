package wire

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChecksumKnownVector(t *testing.T) {
	// Classic RFC 1071 example: 0x0001, 0xf203, 0xf4f5, 0xf6f7.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != ^uint16(0xddf2) {
		t.Fatalf("checksum = %#04x, want %#04x", got, ^uint16(0xddf2))
	}
}

func TestChecksumVerifiesToZero(t *testing.T) {
	b := []byte{0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11, 0x00, 0x00, 10, 0, 0, 1, 10, 0, 0, 2}
	ck := Checksum(b)
	binary.BigEndian.PutUint16(b[10:12], ck)
	if Checksum(b) != 0 {
		t.Fatal("checksum over checksummed data not zero")
	}
}

// TestQuickChecksumSplitInvariance: accumulating a byte string in arbitrary
// chunkings must give the same sum as one shot.
func TestQuickChecksumSplitInvariance(t *testing.T) {
	f := func(data []byte, cuts []uint8) bool {
		want := Checksum(data)
		var c Checksummer
		rest := data
		for _, cut := range cuts {
			if len(rest) == 0 {
				break
			}
			n := int(cut) % (len(rest) + 1)
			c.Add(rest[:n])
			rest = rest[n:]
		}
		c.Add(rest)
		return c.Sum() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickChecksumErrorDetection(t *testing.T) {
	// Flipping any single byte of a checksummed message must be detected.
	f := func(data []byte, idx uint16, delta uint8) bool {
		if len(data) < 2 || delta == 0 {
			return true
		}
		if len(data)%2 != 0 {
			data = data[:len(data)-1]
		}
		ck := Checksum(data)
		msg := append(append([]byte{}, data...), byte(ck>>8), byte(ck))
		i := int(idx) % len(msg)
		msg[i] += delta
		// A change of 0xff in an odd/even pair can alias (one's complement
		// has two zero representations); accept detection OR the known
		// +/-0xffff alias.
		sum := Checksum(msg)
		if sum == 0 {
			// verify it really is the one's complement alias case
			msg[i] -= delta
			return Checksum(msg) == 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEthRoundTrip(t *testing.T) {
	h := EthHeader{Dst: MAC{1, 2, 3, 4, 5, 6}, Src: MAC{7, 8, 9, 10, 11, 12}, Type: EtherTypeIPv4}
	b := make([]byte, EthHeaderLen)
	h.Marshal(b)
	got, err := UnmarshalEth(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: %+v != %+v", got, h)
	}
}

func TestEthShort(t *testing.T) {
	if _, err := UnmarshalEth(make([]byte, 13)); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestFrameWireSize(t *testing.T) {
	if FrameWireSize(1) != EthMinFrame {
		t.Fatalf("tiny frame = %d, want %d", FrameWireSize(1), EthMinFrame)
	}
	if FrameWireSize(1500) != EthMaxFrame {
		t.Fatalf("max frame = %d, want %d", FrameWireSize(1500), EthMaxFrame)
	}
	// 46-byte payload is the largest that still pads.
	if FrameWireSize(46) != EthMinFrame {
		t.Fatal("min-frame padding wrong")
	}
	if FrameWireSize(47) != 65 {
		t.Fatal("first unpadded size wrong")
	}
}

func TestARPRoundTrip(t *testing.T) {
	p := ARPPacket{
		Op:        ARPRequest,
		SenderMAC: MAC{1, 2, 3, 4, 5, 6},
		SenderIP:  IP(10, 0, 0, 1),
		TargetIP:  IP(10, 0, 0, 2),
	}
	got, err := UnmarshalARP(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("round trip: %+v != %+v", got, p)
	}
}

func TestARPRejectsNonEthernet(t *testing.T) {
	b := (&ARPPacket{Op: ARPReply}).Marshal()
	b[0] = 0x13
	if _, err := UnmarshalARP(b); err == nil {
		t.Fatal("bad hardware type accepted")
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	h := IPv4Header{
		TOS: 0, TotalLen: 84, ID: 0x1234, Flags: IPFlagDF, TTL: 64,
		Proto: ProtoTCP, Src: IP(10, 0, 0, 1), Dst: IP(10, 0, 0, 2),
	}
	b := make([]byte, IPv4HeaderLen)
	h.Marshal(b)
	got, hl, err := UnmarshalIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if hl != IPv4HeaderLen {
		t.Fatalf("hl = %d", hl)
	}
	if got.Src != h.Src || got.Dst != h.Dst || got.TotalLen != h.TotalLen ||
		got.ID != h.ID || got.Proto != h.Proto || !got.DontFragment() || got.IsFragment() {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestIPv4ChecksumRejected(t *testing.T) {
	h := IPv4Header{TotalLen: 20, TTL: 64, Proto: ProtoUDP, Src: IP(1, 1, 1, 1), Dst: IP(2, 2, 2, 2)}
	b := make([]byte, IPv4HeaderLen)
	h.Marshal(b)
	b[8] ^= 0xff // corrupt TTL
	if _, _, err := UnmarshalIPv4(b); err == nil {
		t.Fatal("corrupted header accepted")
	}
}

func TestIPv4Fragflags(t *testing.T) {
	h := IPv4Header{TotalLen: 20, TTL: 1, Proto: ProtoUDP, Flags: IPFlagMF, FragOff: 185}
	b := make([]byte, IPv4HeaderLen)
	h.Marshal(b)
	got, _, err := UnmarshalIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.MoreFragments() || got.FragOff != 185 || !got.IsFragment() {
		t.Fatalf("frag fields: %+v", got)
	}
}

func TestUDPRoundTripAndChecksum(t *testing.T) {
	payload := []byte("hello, world")
	h := UDPHeader{SrcPort: 1234, DstPort: 53, Length: uint16(UDPHeaderLen + len(payload))}
	b := make([]byte, UDPHeaderLen)
	h.Marshal(b)
	src, dst := IP(10, 0, 0, 1), IP(10, 0, 0, 2)
	h.Checksum = UDPChecksum(src, dst, b, payload)
	h.Marshal(b)
	seg := append(b, payload...)
	if !VerifyUDPChecksum(src, dst, seg) {
		t.Fatal("valid UDP checksum rejected")
	}
	seg[10] ^= 1
	if VerifyUDPChecksum(src, dst, seg) {
		t.Fatal("corrupted UDP payload accepted")
	}
	got, err := UnmarshalUDP(seg)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 1234 || got.DstPort != 53 || got.Length != h.Length {
		t.Fatalf("UDP fields: %+v", got)
	}
}

func TestUDPZeroChecksumMeansUncomputed(t *testing.T) {
	h := UDPHeader{SrcPort: 1, DstPort: 2, Length: UDPHeaderLen}
	b := make([]byte, UDPHeaderLen)
	h.Marshal(b)
	if !VerifyUDPChecksum(IP(1, 1, 1, 1), IP(2, 2, 2, 2), b) {
		t.Fatal("zero checksum must pass")
	}
}

func TestTCPRoundTripWithMSS(t *testing.T) {
	h := TCPHeader{
		SrcPort: 2000, DstPort: 80, Seq: 0xdeadbeef, Ack: 0xfeedface,
		Flags: TCPSyn | TCPAck, Window: 8760, Urgent: 7, MSS: 1460,
	}
	b := make([]byte, h.HeaderLen())
	h.Marshal(b)
	got, hl, err := UnmarshalTCP(b)
	if err != nil {
		t.Fatal(err)
	}
	if hl != 24 {
		t.Fatalf("hl = %d", hl)
	}
	got.Checksum = h.Checksum
	if got != h {
		t.Fatalf("round trip: %+v != %+v", got, h)
	}
}

func TestTCPChecksumOddPayload(t *testing.T) {
	payload := []byte("odd")
	h := TCPHeader{SrcPort: 1, DstPort: 2, Seq: 1, Ack: 2, Flags: TCPAck, Window: 100}
	b := make([]byte, h.HeaderLen())
	h.Marshal(b)
	src, dst := IP(10, 1, 0, 1), IP(10, 1, 0, 2)
	h.Checksum = TCPChecksum(src, dst, b, payload)
	h.Marshal(b)
	binary.BigEndian.PutUint16(b[16:18], h.Checksum)
	if !VerifyTCPChecksum(src, dst, append(b, payload...)) {
		t.Fatal("valid TCP checksum rejected")
	}
}

func TestQuickTCPHeaderRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, win, urg, mss uint16) bool {
		h := TCPHeader{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack,
			Flags: flags, Window: win, Urgent: urg, MSS: mss}
		b := make([]byte, h.HeaderLen())
		h.Marshal(b)
		got, _, err := UnmarshalTCP(b)
		if err != nil {
			return false
		}
		got.Checksum = h.Checksum
		return got == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTCPMalformedOption(t *testing.T) {
	h := TCPHeader{MSS: 1460}
	b := make([]byte, h.HeaderLen())
	h.Marshal(b)
	b[21] = 9 // MSS option claims 9 bytes, only 4 remain
	if _, _, err := UnmarshalTCP(b); err == nil {
		t.Fatal("malformed option accepted")
	}
}

func TestICMPRoundTrip(t *testing.T) {
	h := ICMPHeader{Type: ICMPEchoRequest, ID: 77, Seq: 3}
	payload := []byte("ping data")
	msg := h.Marshal(payload)
	got, pl, err := UnmarshalICMP(msg)
	if err != nil {
		t.Fatal(err)
	}
	if got != h || !bytes.Equal(pl, payload) {
		t.Fatalf("round trip: %+v %q", got, pl)
	}
	msg[9] ^= 0x40
	if _, _, err := UnmarshalICMP(msg); err == nil {
		t.Fatal("corrupted ICMP accepted")
	}
}

func TestIPAddrHelpers(t *testing.T) {
	a := IP(192, 168, 1, 200)
	if IPFromUint32(a.Uint32()) != a {
		t.Fatal("uint32 round trip")
	}
	if a.Mask(24) != IP(192, 168, 1, 0) {
		t.Fatalf("mask: %v", a.Mask(24))
	}
	if a.Mask(0) != IP(0, 0, 0, 0) || a.Mask(32) != a {
		t.Fatal("mask edges")
	}
	if a.String() != "192.168.1.200" {
		t.Fatalf("string: %s", a)
	}
	if !(IPAddr{}).IsZero() || !IP(255, 255, 255, 255).IsBroadcast() {
		t.Fatal("predicates")
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if m.String() != "de:ad:be:ef:00:01" {
		t.Fatalf("got %s", m)
	}
	if !BroadcastMAC.IsBroadcast() || m.IsBroadcast() {
		t.Fatal("broadcast predicate")
	}
}

func TestFlagString(t *testing.T) {
	if FlagString(TCPSyn|TCPAck) != "SYN|ACK" {
		t.Fatalf("got %s", FlagString(TCPSyn|TCPAck))
	}
	if FlagString(0) != "none" {
		t.Fatal("zero flags")
	}
}

func BenchmarkChecksum1460(b *testing.B) {
	data := make([]byte, 1460)
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(1460)
	for i := 0; i < b.N; i++ {
		Checksum(data)
	}
}
