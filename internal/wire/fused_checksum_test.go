package wire

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mbuf"
)

// chainOf builds a multi-segment chain whose concatenation is flat,
// splitting at the given cut points.
func chainOf(flat []byte, cuts ...int) *mbuf.Chain {
	c := mbuf.New()
	prev := 0
	for _, cut := range cuts {
		c.AppendBytes(flat[prev:cut])
		prev = cut
	}
	c.AppendBytes(flat[prev:])
	return c
}

// TestChecksumChainMatchesFlat checks the segment-wise chain checksum
// against the reference flat checksum across odd and even segment
// lengths, including odd-length segments in the middle of a chain (the
// case that exercises the cross-segment parity/byte-swap logic).
func TestChecksumChainMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := [][]int{
		{},           // single segment
		{1},          // 1-byte head
		{3, 10},      // odd segment in the middle
		{2, 4, 6},    // even cuts
		{5, 6, 7, 8}, // run of 1-byte odd segments
	}
	for _, size := range []int{1, 2, 3, 16, 17, 100, 1460, 1461} {
		flat := make([]byte, size)
		rng.Read(flat)
		want := Checksum(flat)
		for _, cuts := range cases {
			ok := true
			for _, c := range cuts {
				if c >= size {
					ok = false
				}
			}
			if !ok {
				continue
			}
			ch := chainOf(flat, cuts...)
			if got := ChecksumChain(ch); got != want {
				t.Errorf("size %d cuts %v: chain sum %#x, flat %#x", size, cuts, got, want)
			}
			ch.Release()
		}
	}
}

// TestCopyAndSumMatchesCopyThenSum checks the fused copy+checksum against
// the unfused reference (copy the chain flat, then checksum the copy):
// same bytes out, same sum, for odd and even lengths and segmenting.
func TestCopyAndSumMatchesCopyThenSum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, size := range []int{0, 1, 2, 7, 8, 9, 64, 513, 1460, 1473} {
		flat := make([]byte, size)
		rng.Read(flat)
		var cuts []int
		for p := 0; p < size-1; {
			p += 1 + rng.Intn(200)
			if p < size {
				cuts = append(cuts, p)
			}
		}
		ch := chainOf(flat, cuts...)

		dst := make([]byte, size)
		var ck Checksummer
		n := ck.CopyAndSum(dst, ch)
		if n != size {
			t.Fatalf("size %d: CopyAndSum copied %d bytes", size, n)
		}
		if !bytes.Equal(dst, flat) {
			t.Fatalf("size %d cuts %v: CopyAndSum mangled the copy", size, cuts)
		}
		if got, want := ck.Sum(), Checksum(flat); got != want {
			t.Fatalf("size %d cuts %v: fused sum %#x, reference %#x", size, cuts, got, want)
		}
		ch.Release()
	}
}

// TestCopyAndSumAfterPseudoHeader mirrors the transmit path's use: fold
// the pseudo-header first (even-length words), then fuse-copy an odd or
// even payload, and compare against the reference computed flat.
func TestCopyAndSumAfterPseudoHeader(t *testing.T) {
	src, dst := IP(10, 0, 0, 1), IP(10, 0, 0, 2)
	for _, size := range []int{1, 2, 19, 20, 1460} {
		flat := make([]byte, size)
		for i := range flat {
			flat[i] = byte(i * 31)
		}
		ch := chainOf(flat, size/3, size/2)

		var fused Checksummer
		fused.PseudoHeader(src, dst, ProtoTCP, uint16(size))
		out := make([]byte, size)
		fused.CopyAndSum(out, ch)

		var ref Checksummer
		ref.PseudoHeader(src, dst, ProtoTCP, uint16(size))
		ref.Add(flat)

		if fused.Sum() != ref.Sum() {
			t.Errorf("size %d: fused %#x, reference %#x", size, fused.Sum(), ref.Sum())
		}
		ch.Release()
	}
}

// TestQuickFusedChecksum drives CopyAndSum with random payloads and
// random segmenting and cross-checks both the copied bytes and the sum
// against the flat reference.
func TestQuickFusedChecksum(t *testing.T) {
	f := func(flat []byte, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var cuts []int
		for p := 0; p < len(flat)-1; {
			p += 1 + rng.Intn(64)
			if p < len(flat) {
				cuts = append(cuts, p)
			}
		}
		ch := chainOf(flat, cuts...)
		defer ch.Release()
		dst := make([]byte, len(flat))
		var ck Checksummer
		ck.CopyAndSum(dst, ch)
		return bytes.Equal(dst, flat) && ck.Sum() == Checksum(flat)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestAddChainAllocsFree pins that summing a warm multi-segment chain
// allocates nothing — the point of fusing is that the hot path walks
// segments in place.
func TestAddChainAllocsFree(t *testing.T) {
	flat := bytes.Repeat([]byte{0xC3}, 1460)
	ch := chainOf(flat, 100, 700, 1300)
	defer ch.Release()
	avg := testing.AllocsPerRun(100, func() {
		var ck Checksummer
		ck.AddChain(ch)
		_ = ck.Sum()
	})
	if avg > 0 {
		t.Fatalf("AddChain allocates %.2f objects/op, want 0", avg)
	}
}
