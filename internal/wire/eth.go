package wire

import (
	"encoding/binary"
	"fmt"
)

// Ethernet framing constants for the simulated 10 Mb/s segment.
const (
	EthHeaderLen = 14 // dst(6) + src(6) + ethertype(2)
	EthCRCLen    = 4
	EthMinFrame  = 64   // minimum frame size including CRC
	EthMaxFrame  = 1518 // maximum frame size including CRC
	EthMTU       = 1500 // maximum payload
)

// EtherType values.
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeARP  = 0x0806
)

// EthHeader is an Ethernet II frame header.
type EthHeader struct {
	Dst  MAC
	Src  MAC
	Type uint16
}

// Marshal writes the header into b, which must be at least EthHeaderLen
// bytes.
func (h *EthHeader) Marshal(b []byte) {
	copy(b[0:6], h.Dst[:])
	copy(b[6:12], h.Src[:])
	binary.BigEndian.PutUint16(b[12:14], h.Type)
}

// UnmarshalEth parses an Ethernet header from b.
func UnmarshalEth(b []byte) (EthHeader, error) {
	var h EthHeader
	if len(b) < EthHeaderLen {
		return h, fmt.Errorf("wire: short ethernet header (%d bytes)", len(b))
	}
	copy(h.Dst[:], b[0:6])
	copy(h.Src[:], b[6:12])
	h.Type = binary.BigEndian.Uint16(b[12:14])
	return h, nil
}

// FrameWireSize returns the number of bytes a frame with the given payload
// occupies on the wire (header + payload + CRC, padded to the minimum).
func FrameWireSize(payloadLen int) int {
	n := EthHeaderLen + payloadLen + EthCRCLen
	if n < EthMinFrame {
		n = EthMinFrame
	}
	return n
}
