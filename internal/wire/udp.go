package wire

import (
	"encoding/binary"
	"fmt"
)

// UDPHeaderLen is the length of a UDP header.
const UDPHeaderLen = 8

// UDPHeader is a UDP datagram header.
type UDPHeader struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16 // header + payload
	Checksum uint16
}

// Marshal writes the header into b (at least UDPHeaderLen bytes) with a
// zero checksum field; use PatchUDPChecksum to fill it in after the
// payload is known.
func (h *UDPHeader) Marshal(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint16(b[4:6], h.Length)
	binary.BigEndian.PutUint16(b[6:8], h.Checksum)
}

// UnmarshalUDP parses a UDP header.
func UnmarshalUDP(b []byte) (UDPHeader, error) {
	var h UDPHeader
	if len(b) < UDPHeaderLen {
		return h, fmt.Errorf("wire: short UDP header (%d bytes)", len(b))
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Length = binary.BigEndian.Uint16(b[4:6])
	h.Checksum = binary.BigEndian.Uint16(b[6:8])
	if h.Length < UDPHeaderLen {
		return h, fmt.Errorf("wire: UDP length %d too small", h.Length)
	}
	return h, nil
}

// UDPChecksum computes the UDP checksum over the pseudo-header, the
// marshalled header bytes hdr (checksum field zero), and the payload
// slices. A computed value of zero is transmitted as 0xffff per RFC 768.
func UDPChecksum(src, dst IPAddr, hdr []byte, payload ...[]byte) uint16 {
	var c Checksummer
	length := len(hdr)
	for _, p := range payload {
		length += len(p)
	}
	c.PseudoHeader(src, dst, ProtoUDP, uint16(length))
	c.Add(hdr)
	for _, p := range payload {
		c.Add(p)
	}
	s := c.Sum()
	if s == 0 {
		s = 0xffff
	}
	return s
}

// VerifyUDPChecksum checks a received UDP segment (header + payload in
// seg). A zero checksum field means "not computed" and passes.
func VerifyUDPChecksum(src, dst IPAddr, seg []byte) bool {
	if len(seg) < UDPHeaderLen {
		return false
	}
	if binary.BigEndian.Uint16(seg[6:8]) == 0 {
		return true
	}
	var c Checksummer
	c.PseudoHeader(src, dst, ProtoUDP, uint16(len(seg)))
	c.Add(seg)
	return c.Sum() == 0
}
