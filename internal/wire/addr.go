// Package wire defines the on-the-wire formats used by the protocol
// stack: Ethernet framing, ARP, IPv4, UDP, and TCP headers, plus the
// Internet checksum. Everything here is pure data encoding with no
// protocol logic; the state machines live in internal/stack.
package wire

import "fmt"

// MAC is a 48-bit Ethernet hardware address.
type MAC [6]byte

// BroadcastMAC is the Ethernet broadcast address.
var BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// IsBroadcast reports whether m is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == BroadcastMAC }

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IPAddr is an IPv4 address.
type IPAddr [4]byte

// Uint32 returns the address as a big-endian integer.
func (a IPAddr) Uint32() uint32 {
	return uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
}

// IPFromUint32 builds an address from a big-endian integer.
func IPFromUint32(v uint32) IPAddr {
	return IPAddr{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// IP is shorthand for constructing an address from four octets.
func IP(a, b, c, d byte) IPAddr { return IPAddr{a, b, c, d} }

func (a IPAddr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// IsZero reports whether the address is 0.0.0.0 (INADDR_ANY).
func (a IPAddr) IsZero() bool { return a == IPAddr{} }

// IsBroadcast reports whether the address is 255.255.255.255.
func (a IPAddr) IsBroadcast() bool { return a == IPAddr{255, 255, 255, 255} }

// Mask applies a prefix-length netmask to the address.
func (a IPAddr) Mask(prefixLen int) IPAddr {
	if prefixLen <= 0 {
		return IPAddr{}
	}
	if prefixLen >= 32 {
		return a
	}
	m := ^uint32(0) << (32 - prefixLen)
	return IPFromUint32(a.Uint32() & m)
}

// IP protocol numbers.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// ProtoName returns a short name for an IP protocol number.
func ProtoName(p uint8) string {
	switch p {
	case ProtoICMP:
		return "icmp"
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	}
	return fmt.Sprintf("proto-%d", p)
}
