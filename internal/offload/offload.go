// Package offload simulates a NIC offload engine: the fourth receive
// architecture of the reproduction (Library-SHM-IPF-OFFLOAD).
//
// The paper's arc — IPC, then SHM, then SHM-IPF — wins at each step by
// removing one copy or one wakeup per packet from the software path.
// This engine takes the next step the follow-on literature argues for
// ("the NIC should be part of the OS"): it moves per-packet work onto
// the device itself, so the software cost that remains is charged per
// super-segment instead of per wire frame.
//
// Four offloads, all deterministic on the virtual clock:
//
//   - TSO/GSO transmit segmentation: the stack hands one oversized
//     frame per send (header template + payload) and the engine slices
//     it into MSS-sized wire frames, patching sequence numbers, IP IDs,
//     lengths, and flags, and computing each slice's checksum.
//   - LRO receive coalescing: in-order TCP data segments of one flow
//     are merged into a single super-segment before the packet filter,
//     ring, and wakeup path run, so their fixed per-packet costs —
//     including the receiver wakeup — are paid once per merge. A merge
//     flushes when it reaches MaxCoalesce, when the flow goes quiet for
//     the hold window, or at a stream boundary (FIN, RST, SYN, URG,
//     options, a sequence gap).
//   - Checksum offload: every TCP/UDP frame is checksummed on transmit
//     and verified on receive by the engine; the stack skips its
//     software pass. Frames that fail verification are dropped here,
//     preserving end-to-end protection against injected corruption.
//   - Adaptive interrupt moderation (NAPI-like): the engine tracks the
//     inter-arrival EWMA. When idle, a PSH segment flushes its merge
//     immediately, so request/response latency never pays a hold
//     window. Under load, PSH segments merge like any other data and
//     delivery batches up to MaxCoalesce — the moderation trade every
//     NIC makes, bounded here by the hold window after the last
//     arrival.
//
// Engine work is charged as virtual time on the engine's own transmit
// and receive pipelines — not on the host CPU, which is the point of
// offloading — and metered into the metrics registry so it stays
// visible next to the software components.
package offload

import (
	"time"

	"repro/internal/costs"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// Defaults. The wire runs at 0.8 µs/byte, so full-size frames arrive
// ~1.2 ms apart; the hold window must span a few arrivals to coalesce
// anything, and the idle threshold must sit above the steady-state gap
// so ping-pong traffic never waits.
const (
	DefaultMSS = 1460
	// DefaultMaxCoalesce caps merged payload per super-segment. 32 MSS
	// stays well under the IPv4 TotalLen limit and, at wire rate, bounds
	// the accumulation a delivery can be deferred by.
	DefaultMaxCoalesce = 32 * DefaultMSS
	// DefaultHold is the quiet period after the last arrival that
	// flushes an open merge (the moderation timer).
	DefaultHold    = 2500 * time.Microsecond
	DefaultIdleGap = 3 * time.Millisecond // EWMA gap above which the engine is idle

	// DefaultTSOMax is the transmit super-segment payload cap that
	// deployments configure their stacks with when the engine is
	// attached (stack.Config.TSOMaxPayload).
	DefaultTSOMax = 8 * DefaultMSS
)

// TSOFor returns the stack TSOMaxPayload for a host profile: the
// default super-segment cap when the engine is enabled, 0 (TSO off)
// otherwise.
func TSOFor(p costs.Profile) int {
	if p.Offload.Enabled {
		return DefaultTSOMax
	}
	return 0
}

// Config assembles an engine between a host's receive path and its NIC.
type Config struct {
	Sim  *sim.Sim
	Name string

	// NIC is the transmit target; the engine's sliced frames go out
	// through it.
	NIC *simnet.NIC
	// Up is the host receive path the engine delivers into (the function
	// that was the NIC's Rx callback before the engine was attached).
	Up func(f simnet.Frame)

	// SW, when set, charges software-fallback work on the host CPU (at
	// interrupt priority, like the rest of the receive path) and calls
	// then when the charge completes. A full engine FIFO pushes frames
	// onto this path instead of dropping them. Nil runs fallbacks
	// uncharged (unit tests).
	SW func(d time.Duration, then func())

	Costs costs.OffloadCosts

	MSS         int           // TSO slice payload size (default 1460)
	MaxCoalesce int           // max merged payload bytes (default 8*MSS)
	Hold        time.Duration // LRO/moderation hold window (default 2.5 ms)
	IdleGap     time.Duration // inter-arrival EWMA above which the engine is idle
}

// Stats counts engine activity; the counters are always live and bind
// into the metrics registry via BindMetrics.
type Stats struct {
	TSOSuper  metrics.Counter // super-segments handed down by the stack
	TSOSlices metrics.Counter // wire frames sliced out of them
	TxPass    metrics.Counter // frames transmitted unsliced

	TxCsumFrames metrics.Counter // frames checksummed on transmit
	TxCsumBytes  metrics.Counter // transport bytes checksummed on transmit
	RxCsumFrames metrics.Counter // frames verified on receive
	RxCsumBytes  metrics.Counter // transport bytes verified on receive
	RxCsumBad    metrics.Counter // frames dropped for a bad checksum

	LROMerged   metrics.Counter // wire frames absorbed into a pending merge
	LROFlushes  metrics.Counter // merged super-segments delivered up
	LROBytes    metrics.Counter // payload bytes delivered in merged segments
	RxImmediate metrics.Counter // frames delivered without holding

	TxEngineNS metrics.Counter // virtual ns charged on the transmit pipeline
	RxEngineNS metrics.Counter // virtual ns charged on the receive pipeline

	// Finite-FIFO accounting: overflows never drop, they degrade to the
	// software path, whose work is counted here.
	TxOverflow   metrics.Counter // frames refused by a full transmit FIFO
	RxOverflow   metrics.Counter // frames refused by a full receive FIFO
	SwCsumFrames metrics.Counter // frames checksummed/verified on the host instead
	SwCsumBytes  metrics.Counter // transport bytes the host checksummed in fallback
	SwSlices     metrics.Counter // wire frames sliced by software GSO in fallback
}

// Engine is one NIC's offload pipeline.
type Engine struct {
	cfg Config

	// Pipeline clocks: engine work serializes FIFO on each direction,
	// so deliveries can never overtake each other no matter how the
	// per-frame charges vary.
	txFree sim.Time
	rxFree sim.Time

	// FIFO occupancy: frames queued awaiting pipeline completion on
	// each direction (receive also counts open LRO merges). Compared
	// against Costs.TxFIFOFrames/RxFIFOFrames to decide when a frame
	// falls back to the software path.
	txQueued int
	rxQueued int

	// Adaptive moderation state.
	ewmaGap time.Duration
	lastArr sim.Time
	sawArr  bool

	// Pending LRO merges, keyed by flow; entries exist only while a
	// merge is open (bounded by concurrently-held flows, and never
	// iterated, so the map cannot perturb determinism).
	pending map[flowKey]*mergeBuf

	Stats Stats
}

// flowKey identifies one TCP flow direction.
type flowKey struct {
	src, dst     wire.IPAddr
	sport, dport uint16
}

// mergeBuf is one in-progress LRO super-segment.
type mergeBuf struct {
	key       flowKey
	buf       []byte   // frame under construction: headers of the first frame + concatenated payloads
	hlen      int      // TCP header length within the frame
	count     int      // wire frames merged
	nextSeq   uint32   // expected sequence of the next mergeable frame
	lastAck   uint32   // latest cumulative ACK seen (patched in at flush)
	lastWin   uint16   // latest advertised window
	psh       bool     // a merged frame carried PSH (set on the super-segment)
	lastTouch sim.Time // arrival time of the newest merged frame (hold timer base)
	gen       int      // guards the hold timer against early flushes
}

// New attaches an engine. The caller re-points the NIC's Rx at
// Engine.Rx and its transmit path at Engine.Transmit.
func New(cfg Config) *Engine {
	if cfg.MSS <= 0 {
		cfg.MSS = DefaultMSS
	}
	if cfg.MaxCoalesce <= 0 {
		cfg.MaxCoalesce = DefaultMaxCoalesce
	}
	if cfg.Hold <= 0 {
		cfg.Hold = DefaultHold
	}
	if cfg.IdleGap <= 0 {
		cfg.IdleGap = DefaultIdleGap
	}
	return &Engine{cfg: cfg, pending: make(map[flowKey]*mergeBuf)}
}

// BindMetrics registers the engine's counters under a scope (typically
// "host.<name>.nic.offload").
func (e *Engine) BindMetrics(sc *metrics.Scope) {
	if sc == nil {
		return
	}
	sc.Counter("tso_super", &e.Stats.TSOSuper)
	sc.Counter("tso_slices", &e.Stats.TSOSlices)
	sc.Counter("tx_pass", &e.Stats.TxPass)
	sc.Counter("tx_csum_frames", &e.Stats.TxCsumFrames)
	sc.Counter("tx_csum_bytes", &e.Stats.TxCsumBytes)
	sc.Counter("rx_csum_frames", &e.Stats.RxCsumFrames)
	sc.Counter("rx_csum_bytes", &e.Stats.RxCsumBytes)
	sc.Counter("rx_csum_bad", &e.Stats.RxCsumBad)
	sc.Counter("lro_merged", &e.Stats.LROMerged)
	sc.Counter("lro_flushes", &e.Stats.LROFlushes)
	sc.Counter("lro_bytes", &e.Stats.LROBytes)
	sc.Counter("rx_immediate", &e.Stats.RxImmediate)
	sc.Counter("tx_engine_ns", &e.Stats.TxEngineNS)
	sc.Counter("rx_engine_ns", &e.Stats.RxEngineNS)
	sc.Counter("tx_overflow", &e.Stats.TxOverflow)
	sc.Counter("rx_overflow", &e.Stats.RxOverflow)
	sc.Counter("sw_csum_frames", &e.Stats.SwCsumFrames)
	sc.Counter("sw_csum_bytes", &e.Stats.SwCsumBytes)
	sc.Counter("sw_slices", &e.Stats.SwSlices)
}

// txFull and rxFull report a full FIFO (0 = unlimited).
func (e *Engine) txFull() bool {
	max := e.cfg.Costs.TxFIFOFrames
	return max > 0 && e.txQueued >= max
}

func (e *Engine) rxFull() bool {
	max := e.cfg.Costs.RxFIFOFrames
	return max > 0 && e.rxQueued+len(e.pending) >= max
}

// sw charges software-fallback work on the host CPU and continues.
func (e *Engine) sw(d time.Duration, then func()) {
	if e.cfg.SW == nil || d <= 0 {
		then()
		return
	}
	e.cfg.SW(d, then)
}

// chargeTx advances the transmit pipeline clock by d and returns the
// completion time.
func (e *Engine) chargeTx(d time.Duration) sim.Time {
	now := e.cfg.Sim.Now()
	if e.txFree < now {
		e.txFree = now
	}
	e.txFree = e.txFree.Add(d)
	e.Stats.TxEngineNS.Add(uint64(d))
	return e.txFree
}

// chargeRx advances the receive pipeline clock by d and returns the
// completion time.
func (e *Engine) chargeRx(d time.Duration) sim.Time {
	now := e.cfg.Sim.Now()
	if e.rxFree < now {
		e.rxFree = now
	}
	e.rxFree = e.rxFree.Add(d)
	e.Stats.RxEngineNS.Add(uint64(d))
	return e.rxFree
}

// at schedules fn at time t (immediately if t has passed).
func (e *Engine) at(t sim.Time, fn func()) {
	d := t.Sub(e.cfg.Sim.Now())
	if d < 0 {
		d = 0
	}
	e.cfg.Sim.After(d, fn)
}

// --- Transmit path -----------------------------------------------------

// parsedFrame is the engine's view of an IPv4 transport frame.
type parsedFrame struct {
	ip      wire.IPv4Header
	ipHdrAt int // offset of the IP header (== wire.EthHeaderLen)
	tpAt    int // offset of the transport header
	tcp     wire.TCPHeader
	tcpHLen int
	payAt   int // offset of the transport payload (TCP) / datagram body (UDP)
}

// parse extracts the headers the engine cares about. ok is false for
// anything that is not plain unfragmented IPv4 TCP/UDP — those frames
// pass through the engine untouched.
func parse(frame []byte) (p parsedFrame, ok bool) {
	eh, err := wire.UnmarshalEth(frame)
	if err != nil || eh.Type != wire.EtherTypeIPv4 {
		return p, false
	}
	ip, hlen, err := wire.UnmarshalIPv4(frame[wire.EthHeaderLen:])
	if err != nil || ip.IsFragment() {
		return p, false
	}
	if int(ip.TotalLen) > len(frame)-wire.EthHeaderLen {
		return p, false
	}
	p.ip = ip
	p.ipHdrAt = wire.EthHeaderLen
	p.tpAt = wire.EthHeaderLen + hlen
	switch ip.Proto {
	case wire.ProtoTCP:
		th, thl, err := wire.UnmarshalTCP(frame[p.tpAt : wire.EthHeaderLen+int(ip.TotalLen)])
		if err != nil {
			return p, false
		}
		p.tcp, p.tcpHLen = th, thl
		p.payAt = p.tpAt + thl
		return p, true
	case wire.ProtoUDP:
		p.payAt = p.tpAt + wire.UDPHeaderLen
		return p, true
	}
	return p, false
}

// Transmit is the engine's frame entry point on the send side. Frames
// at or under the MTU get their transport checksum computed here (the
// stack skipped its software pass); oversized TCP frames are TSO
// super-segments and are sliced into MSS-sized wire frames.
func (e *Engine) Transmit(frame []byte) error {
	p, ok := parse(frame)
	if !ok {
		e.Stats.TxPass.Inc()
		return e.cfg.NIC.Transmit(frame)
	}
	segLen := wire.EthHeaderLen + int(p.ip.TotalLen) - p.tpAt

	if len(frame) <= wire.EthHeaderLen+wire.EthMTU {
		// Plain frame. The stack skipped its software checksum pass, so
		// the checksum must be computed here either way; a full FIFO only
		// moves the charge onto the host CPU.
		e.patchTransportChecksum(frame, p)
		e.Stats.TxPass.Inc()
		if e.txFull() {
			e.Stats.TxOverflow.Inc()
			e.Stats.SwCsumFrames.Inc()
			e.Stats.SwCsumBytes.Add(uint64(segLen))
			e.sw(e.cfg.Costs.SwChecksum.At(segLen), func() { e.cfg.NIC.Transmit(frame) })
			return nil
		}
		e.Stats.TxCsumFrames.Inc()
		e.Stats.TxCsumBytes.Add(uint64(segLen))
		done := e.chargeTx(e.cfg.Costs.Checksum.At(segLen))
		e.transmitAt(done, frame)
		return nil
	}

	if p.ip.Proto != wire.ProtoTCP {
		// Only TCP is segmented; an oversized UDP frame would be a stack
		// bug (ipOutput still fragments UDP).
		return e.cfg.NIC.Transmit(frame)
	}

	// TSO: slice the super-segment into MSS-sized wire frames.
	e.Stats.TSOSuper.Inc()
	slices := e.sliceSuper(frame, p)

	if e.txFull() {
		// FIFO full: software GSO. The host does the slicing and the
		// per-slice checksums, then the frames go straight to the wire in
		// order, skipping the engine pipeline.
		e.Stats.TxOverflow.Inc()
		var d time.Duration
		for _, s := range slices {
			segBytes := len(s) - p.tpAt
			e.Stats.SwSlices.Inc()
			e.Stats.SwCsumFrames.Inc()
			e.Stats.SwCsumBytes.Add(uint64(segBytes))
			d += e.cfg.Costs.SwChecksum.At(segBytes)
		}
		e.sw(d, func() {
			for _, s := range slices {
				e.cfg.NIC.Transmit(s)
			}
		})
		return nil
	}

	payLen := wire.EthHeaderLen + int(p.ip.TotalLen) - p.payAt
	d := e.cfg.Costs.TxSetup.At(payLen)
	for _, s := range slices {
		take := len(s) - p.payAt
		e.Stats.TSOSlices.Inc()
		e.Stats.TxCsumFrames.Inc()
		e.Stats.TxCsumBytes.Add(uint64(p.tcpHLen + take))
		d += e.cfg.Costs.TxSegment.At(take) + e.cfg.Costs.Checksum.At(p.tcpHLen+take)
		done := e.chargeTx(d)
		d = 0
		e.transmitAt(done, s)
	}
	return nil
}

// transmitAt occupies a transmit FIFO slot until the pipeline completes
// at t, then sends the frame out.
func (e *Engine) transmitAt(t sim.Time, frame []byte) {
	e.txQueued++
	e.at(t, func() {
		e.txQueued--
		e.cfg.NIC.Transmit(frame)
	})
}

// sliceSuper slices a TSO super-segment into MSS-sized wire frames with
// patched IP/TCP headers and fresh checksums. The header template is the
// frame's own Ethernet+IP+TCP headers; FIN/PSH ride only on the last
// slice. Shared by the engine TSO path and the software GSO fallback —
// the bytes on the wire are identical either way, only who is charged
// for producing them differs.
func (e *Engine) sliceSuper(frame []byte, p parsedFrame) [][]byte {
	payload := frame[p.payAt : wire.EthHeaderLen+int(p.ip.TotalLen)]
	mss := e.cfg.MSS
	hdrLen := p.payAt // Ethernet + IP + TCP headers, options included
	var slices [][]byte
	for off, idx := 0, 0; off < len(payload); idx++ {
		take := mss
		last := false
		if off+take >= len(payload) {
			take = len(payload) - off
			last = true
		}
		slice := make([]byte, hdrLen+take)
		copy(slice, frame[:hdrLen])
		copy(slice[hdrLen:], payload[off:off+take])

		// IP header: new length, per-slice ID, fresh checksum.
		ih := p.ip
		ih.TotalLen = uint16(int(p.ip.TotalLen) - len(payload) + take)
		ih.ID = p.ip.ID + uint16(idx)
		ih.Marshal(slice[p.ipHdrAt : p.ipHdrAt+wire.IPv4HeaderLen])

		// TCP header: advance the sequence number.
		tb := slice[p.tpAt:]
		seq := p.tcp.Seq + uint32(off)
		tb[4] = byte(seq >> 24)
		tb[5] = byte(seq >> 16)
		tb[6] = byte(seq >> 8)
		tb[7] = byte(seq)
		if !last {
			tb[13] &^= wire.TCPFin | wire.TCPPsh
		}

		sp := parsedFrame{ip: ih, ipHdrAt: p.ipHdrAt, tpAt: p.tpAt, payAt: p.payAt}
		e.patchTransportChecksum(slice, sp)
		slices = append(slices, slice)
		off += take
	}
	return slices
}

// patchTransportChecksum zeroes and recomputes the TCP/UDP checksum of
// a frame in place.
func (e *Engine) patchTransportChecksum(frame []byte, p parsedFrame) {
	end := wire.EthHeaderLen + int(p.ip.TotalLen)
	seg := frame[p.tpAt:end]
	var ckAt int
	switch p.ip.Proto {
	case wire.ProtoTCP:
		ckAt = wire.TCPChecksumOffset
	case wire.ProtoUDP:
		ckAt = wire.UDPChecksumOffset
	default:
		return
	}
	seg[ckAt], seg[ckAt+1] = 0, 0
	var ck wire.Checksummer
	ck.PseudoHeader(p.ip.Src, p.ip.Dst, p.ip.Proto, uint16(len(seg)))
	ck.Add(seg)
	sum := ck.Sum()
	if p.ip.Proto == wire.ProtoUDP && sum == 0 {
		sum = 0xffff
	}
	seg[ckAt] = byte(sum >> 8)
	seg[ckAt+1] = byte(sum)
}

// --- Receive path ------------------------------------------------------

// Rx is the engine's NIC receive callback: checksum verification, LRO
// coalescing, and adaptive moderation, then delivery into the host
// receive path.
func (e *Engine) Rx(f simnet.Frame) {
	now := e.cfg.Sim.Now()
	busy := e.observeArrival(now)

	p, ok := parse(f.Data)
	if !ok {
		// Non-IP (ARP) and ICMP flow straight up; the stack validates
		// them itself.
		e.deliverNow(f)
		return
	}

	segLen := wire.EthHeaderLen + int(p.ip.TotalLen) - p.tpAt
	seg := f.Data[p.tpAt : wire.EthHeaderLen+int(p.ip.TotalLen)]

	if e.rxFull() {
		// FIFO full: degrade to the software path. The host verifies the
		// checksum — bad frames still die, so end-to-end protection never
		// lapses under load — and LRO is skipped for this frame; an open
		// merge for the flow flushes first so the stream stays in order.
		e.Stats.RxOverflow.Inc()
		if p.ip.Proto == wire.ProtoTCP {
			key := flowKey{src: p.ip.Src, dst: p.ip.Dst, sport: p.tcp.SrcPort, dport: p.tcp.DstPort}
			if pend := e.pending[key]; pend != nil {
				e.flush(pend, 0)
			}
		}
		okSum := true
		switch p.ip.Proto {
		case wire.ProtoTCP:
			okSum = wire.VerifyTCPChecksum(p.ip.Src, p.ip.Dst, seg)
		case wire.ProtoUDP:
			okSum = wire.VerifyUDPChecksum(p.ip.Src, p.ip.Dst, seg)
		}
		e.Stats.SwCsumFrames.Inc()
		e.Stats.SwCsumBytes.Add(uint64(segLen))
		e.sw(e.cfg.Costs.SwChecksum.At(segLen), func() {
			if !okSum {
				e.Stats.RxCsumBad.Inc()
				return
			}
			e.deliverAfter(0, f)
		})
		return
	}

	// Checksum verification on the NIC. Bad frames die here with a
	// counter, exactly as a bad software checksum would have dropped
	// them in the stack.
	e.Stats.RxCsumFrames.Inc()
	e.Stats.RxCsumBytes.Add(uint64(segLen))
	d := e.cfg.Costs.Checksum.At(segLen)
	okSum := true
	switch p.ip.Proto {
	case wire.ProtoTCP:
		okSum = wire.VerifyTCPChecksum(p.ip.Src, p.ip.Dst, seg)
	case wire.ProtoUDP:
		okSum = wire.VerifyUDPChecksum(p.ip.Src, p.ip.Dst, seg)
	}
	if !okSum {
		e.Stats.RxCsumBad.Inc()
		e.chargeRx(d)
		return
	}

	if p.ip.Proto != wire.ProtoTCP {
		e.deliverAfter(d, f)
		return
	}

	key := flowKey{src: p.ip.Src, dst: p.ip.Dst, sport: p.tcp.SrcPort, dport: p.tcp.DstPort}
	payLen := wire.EthHeaderLen + int(p.ip.TotalLen) - p.payAt
	mergeable := payLen > 0 &&
		(p.tcp.Flags == wire.TCPAck || p.tcp.Flags == wire.TCPAck|wire.TCPPsh) &&
		p.tcpHLen == wire.TCPHeaderLen // no SYN/FIN/RST/URG, no options

	pend := e.pending[key]

	if !mergeable {
		// Pure ACKs and boundary segments (FIN, SYN, RST, URG, options):
		// flush anything pending for this flow first so the stream stays
		// in order, then deliver.
		if pend != nil {
			e.flush(pend, e.cfg.Costs.RxFlush.At(0))
		}
		e.deliverAfter(d+e.cfg.Costs.RxMerge.At(payLen), f)
		return
	}

	d += e.cfg.Costs.RxMerge.At(payLen)
	psh := p.tcp.Flags&wire.TCPPsh != 0

	if pend != nil {
		if p.tcp.Seq != pend.nextSeq {
			// Sequence gap (loss or reordering upstream): flush what we
			// have and deliver the new frame at once, so the stack sees
			// the gap promptly and dup-ACKs.
			e.flush(pend, 0)
			e.deliverAfter(d, f)
			return
		}
		// In-order continuation: absorb.
		pend.buf = append(pend.buf, f.Data[p.payAt:wire.EthHeaderLen+int(p.ip.TotalLen)]...)
		pend.count++
		pend.nextSeq += uint32(payLen)
		pend.lastAck = p.tcp.Ack
		pend.lastWin = p.tcp.Window
		pend.psh = pend.psh || psh
		pend.lastTouch = now
		e.Stats.LROMerged.Inc()
		e.chargeRx(d)
		if len(pend.buf)-pend.hlen-pend.key.hdrLen() >= e.cfg.MaxCoalesce || (psh && !busy) {
			// Full, or a push while idle: the sender is waiting on this
			// data, hand it up now. Under load the push merges like any
			// other byte — that deferral is the interrupt moderation.
			e.flush(pend, e.cfg.Costs.RxFlush.At(0))
		}
		return
	}

	// Open a merge with this frame as the template. The buffer is a
	// private copy: delivered frames are immutable, and the merged
	// super-segment is a new frame that never existed on the wire.
	pend = &mergeBuf{
		key:       key,
		hlen:      p.tcpHLen,
		count:     1,
		nextSeq:   p.tcp.Seq + uint32(payLen),
		lastAck:   p.tcp.Ack,
		lastWin:   p.tcp.Window,
		psh:       psh,
		lastTouch: now,
	}
	pend.buf = make([]byte, 0, p.payAt+e.cfg.MaxCoalesce+e.cfg.MSS)
	pend.buf = append(pend.buf, f.Data[:wire.EthHeaderLen+int(p.ip.TotalLen)]...)
	e.pending[key] = pend
	e.Stats.LROMerged.Inc()
	e.chargeRx(d)

	if psh && !busy {
		// A single pushed segment on an idle flow is a request or a
		// response tail: no reason to hold it.
		e.flush(pend, e.cfg.Costs.RxFlush.At(0))
		return
	}
	e.armHold(pend, e.cfg.Hold)
}

// armHold schedules the moderation timer: the merge flushes once the
// flow has been quiet for the hold window. Arrivals refresh lastTouch,
// so the timer re-arms itself until the quiet period is real; the
// generation guard kills timers that outlive their merge.
func (e *Engine) armHold(pend *mergeBuf, wait time.Duration) {
	gen := pend.gen
	key := pend.key
	e.cfg.Sim.After(wait, func() {
		if cur := e.pending[key]; cur != pend || pend.gen != gen {
			return
		}
		if quiet := e.cfg.Sim.Now().Sub(pend.lastTouch); quiet < e.cfg.Hold {
			e.armHold(pend, e.cfg.Hold-quiet)
			return
		}
		e.flush(pend, e.cfg.Costs.RxFlush.At(0))
	})
}

// hdrLen returns the Ethernet+IP header length preceding the transport
// header (constant for the frames the engine merges).
func (flowKey) hdrLen() int { return wire.EthHeaderLen + wire.IPv4HeaderLen }

// flush finalizes a pending merge — patches lengths, ACK, window, and
// checksums so the super-segment is a well-formed frame — and delivers
// it. extra is added to the pipeline charge.
func (e *Engine) flush(pend *mergeBuf, extra time.Duration) {
	delete(e.pending, pend.key)
	pend.gen++

	frame := pend.buf
	ipAt := wire.EthHeaderLen
	tpAt := pend.key.hdrLen()
	totalLen := len(frame) - wire.EthHeaderLen

	// IP header: merged length, fresh checksum.
	ih, _, err := wire.UnmarshalIPv4(frame[ipAt:])
	if err == nil {
		ih.TotalLen = uint16(totalLen)
		ih.Marshal(frame[ipAt : ipAt+wire.IPv4HeaderLen])
	}

	// TCP header: latest cumulative ACK and window, PSH if any merged
	// frame pushed, fresh checksum.
	tb := frame[tpAt:]
	if pend.psh {
		tb[13] |= wire.TCPPsh
	}
	tb[8] = byte(pend.lastAck >> 24)
	tb[9] = byte(pend.lastAck >> 16)
	tb[10] = byte(pend.lastAck >> 8)
	tb[11] = byte(pend.lastAck)
	tb[14] = byte(pend.lastWin >> 8)
	tb[15] = byte(pend.lastWin)
	tb[wire.TCPChecksumOffset], tb[wire.TCPChecksumOffset+1] = 0, 0
	var ck wire.Checksummer
	ck.PseudoHeader(ih.Src, ih.Dst, wire.ProtoTCP, uint16(len(tb)))
	ck.Add(tb)
	sum := ck.Sum()
	tb[wire.TCPChecksumOffset] = byte(sum >> 8)
	tb[wire.TCPChecksumOffset+1] = byte(sum)

	e.Stats.LROFlushes.Inc()
	e.Stats.LROBytes.Add(uint64(len(tb) - pend.hlen))
	e.deliverAfter(extra, simnet.Frame{Data: frame})
}

// deliverNow hands a frame up with no engine charge.
func (e *Engine) deliverNow(f simnet.Frame) {
	e.Stats.RxImmediate.Inc()
	e.deliverAfter(0, f)
}

// deliverAfter hands a frame up after charging d on the receive
// pipeline (FIFO: a cheap frame never overtakes an expensive one). The
// frame holds a receive FIFO slot until the delivery fires.
func (e *Engine) deliverAfter(d time.Duration, f simnet.Frame) {
	done := e.chargeRx(d)
	e.rxQueued++
	e.at(done, func() {
		e.rxQueued--
		e.cfg.Up(f)
	})
}

// observeArrival updates the inter-arrival EWMA and reports whether the
// engine considers itself under load (poll mode).
func (e *Engine) observeArrival(now sim.Time) bool {
	if !e.sawArr {
		e.sawArr = true
		e.lastArr = now
		e.ewmaGap = e.cfg.IdleGap // start idle: first packets go straight up
		return false
	}
	gap := now.Sub(e.lastArr)
	e.lastArr = now
	if gap > 4*e.cfg.IdleGap {
		gap = 4 * e.cfg.IdleGap // clamp so one long silence doesn't poison the average
	}
	// EWMA with alpha = 1/4.
	e.ewmaGap = (3*e.ewmaGap + gap) / 4
	return e.ewmaGap < e.cfg.IdleGap
}

// PendingMerges reports the number of open LRO merges (diagnostics).
func (e *Engine) PendingMerges() int { return len(e.pending) }
