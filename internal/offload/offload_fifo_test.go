package offload

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/costs"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// fifoCosts is a cost model built to jam the engine: the per-frame
// checksum charge is enormous, so pipeline completions stay queued and
// a tiny FIFO fills after a couple of frames.
func fifoCosts(txFIFO, rxFIFO int) costs.OffloadCosts {
	return costs.OffloadCosts{
		Enabled:      true,
		TxSetup:      costs.FlatUS(5),
		TxSegment:    costs.FlatUS(5),
		Checksum:     costs.FlatUS(10_000), // 10 ms per frame: the pipeline backs up instantly
		RxMerge:      costs.FlatUS(1),
		RxFlush:      costs.FlatUS(1),
		TxFIFOFrames: txFIFO,
		RxFIFOFrames: rxFIFO,
		SwChecksum:   costs.Lin{FixedNS: 2_000, PerByteNS: 360},
	}
}

// TestRxFIFOOverflowFallsBackToSoftware: once the receive FIFO is full,
// further frames must not be dropped — they are verified on the host
// (charged through the SW hook) and still delivered, in order.
func TestRxFIFOOverflowFallsBackToSoftware(t *testing.T) {
	env := &rxEnv{s: sim.New(1)}
	var swCalls []time.Duration
	env.e = New(Config{
		Sim:  env.s,
		Name: "rx-fifo-test",
		Up:   func(f simnet.Frame) { env.got = append(env.got, delivery{at: env.s.Now(), data: f.Data}) },
		SW: func(d time.Duration, then func()) {
			swCalls = append(swCalls, d)
			then()
		},
		Costs: fifoCosts(0, 2),
	})

	// Six pure ACKs (non-mergeable, so each goes straight into the
	// delivery FIFO) arriving far faster than the 10 ms/frame pipeline
	// drains: frames 0 and 1 occupy the two slots, frames 2..5 overflow.
	const n = 6
	for i := 0; i < n; i++ {
		env.inject(time.Duration(i)*10*time.Microsecond,
			tcpFrame(uint32(1000+i), uint32(i), wire.TCPAck, nil))
	}
	env.run(t)

	if len(env.got) != n {
		t.Fatalf("deliveries = %d, want %d (overflow must never drop)", len(env.got), n)
	}
	for i, d := range env.got {
		_, th, _ := parseDelivery(t, d)
		if th.Seq != uint32(1000+i) {
			t.Fatalf("delivery %d seq = %d, want %d (order lost)", i, th.Seq, 1000+i)
		}
	}
	if v := env.e.Stats.RxOverflow.Value(); v != n-2 {
		t.Fatalf("rx_overflow = %d, want %d", v, n-2)
	}
	if v := env.e.Stats.RxCsumFrames.Value(); v != 2 {
		t.Fatalf("rx_csum_frames = %d, want 2 (engine verified only the queued frames)", v)
	}
	if v := env.e.Stats.SwCsumFrames.Value(); v != n-2 {
		t.Fatalf("sw_csum_frames = %d, want %d", v, n-2)
	}
	if len(swCalls) != n-2 {
		t.Fatalf("SW hook called %d times, want %d", len(swCalls), n-2)
	}
	for i, d := range swCalls {
		if d <= 0 {
			t.Fatalf("SW call %d charged %v, want a positive host-CPU charge", i, d)
		}
	}
}

// TestRxFIFOOverflowStillDropsCorruption: the software fallback must
// keep end-to-end protection — a corrupt frame arriving while the FIFO
// is full dies with a counter instead of sneaking past verification.
func TestRxFIFOOverflowStillDropsCorruption(t *testing.T) {
	env := &rxEnv{s: sim.New(2)}
	env.e = New(Config{
		Sim:   env.s,
		Name:  "rx-fifo-bad-test",
		Up:    func(f simnet.Frame) { env.got = append(env.got, delivery{at: env.s.Now(), data: f.Data}) },
		Costs: fifoCosts(0, 1),
	})

	env.inject(0, tcpFrame(1000, 1, wire.TCPAck, nil)) // fills the single slot
	bad := tcpFrame(2000, 1, wire.TCPAck, pattern(0, 100))
	bad[len(bad)-1] ^= 0xff
	env.inject(10*time.Microsecond, bad) // overflow path
	env.run(t)

	if len(env.got) != 1 {
		t.Fatalf("deliveries = %d, want 1 (the corrupt overflow frame must die)", len(env.got))
	}
	if v := env.e.Stats.RxOverflow.Value(); v != 1 {
		t.Fatalf("rx_overflow = %d, want 1", v)
	}
	if v := env.e.Stats.RxCsumBad.Value(); v != 1 {
		t.Fatalf("rx_csum_bad = %d, want 1", v)
	}
}

// TestRxFIFOOverflowFlushesOpenMerge: when an overflow frame belongs to
// a flow with an open LRO merge, the merge must flush first so the
// stream reaches the stack in order.
func TestRxFIFOOverflowFlushesOpenMerge(t *testing.T) {
	env := &rxEnv{s: sim.New(3)}
	env.e = New(Config{
		Sim:   env.s,
		Name:  "rx-fifo-merge-test",
		Up:    func(f simnet.Frame) { env.got = append(env.got, delivery{at: env.s.Now(), data: f.Data}) },
		Costs: fifoCosts(0, 1),
	})

	// The opened merge itself occupies the single FIFO slot (open merges
	// count as occupancy), so the second data frame overflows.
	env.inject(0, tcpFrame(1000, 1, wire.TCPAck, pattern(0, 600)))
	env.inject(10*time.Microsecond, tcpFrame(1600, 1, wire.TCPAck, pattern(6, 600)))
	env.run(t)

	if len(env.got) != 2 {
		t.Fatalf("deliveries = %d, want 2 (flushed merge, then the overflow frame)", len(env.got))
	}
	_, th0, got0 := parseDelivery(t, env.got[0])
	if th0.Seq != 1000 || len(got0) != 600 {
		t.Fatalf("first delivery seq=%d len=%d, want the flushed merge 1000/600", th0.Seq, len(got0))
	}
	_, th1, got1 := parseDelivery(t, env.got[1])
	if th1.Seq != 1600 || len(got1) != 600 {
		t.Fatalf("second delivery seq=%d len=%d, want the overflow frame 1600/600", th1.Seq, len(got1))
	}
	if v := env.e.Stats.RxOverflow.Value(); v != 1 {
		t.Fatalf("rx_overflow = %d, want 1", v)
	}
	if n := env.e.PendingMerges(); n != 0 {
		t.Fatalf("pending merges = %d after overflow flush, want 0", n)
	}
}

// txFifoEnv builds a transmit-side harness: an engine in front of a NIC
// whose peer records every wire frame.
type txFifoEnv struct {
	s   *sim.Sim
	e   *Engine
	got []simnet.Frame
	sw  []time.Duration
}

func newTxFifoEnv(t *testing.T, seed int64, oc costs.OffloadCosts) *txFifoEnv {
	t.Helper()
	env := &txFifoEnv{s: sim.New(seed)}
	seg := simnet.NewSegment(env.s)
	nicA := seg.AttachNamed("A", wire.MAC{1})
	nicB := seg.AttachNamed("B", wire.MAC{2})
	nicB.Rx = func(f simnet.Frame) { env.got = append(env.got, f) }
	nicA.Rx = func(f simnet.Frame) {}
	env.e = New(Config{
		Sim:  env.s,
		Name: "tx-fifo-test",
		NIC:  nicA,
		Up:   func(f simnet.Frame) {},
		SW: func(d time.Duration, then func()) {
			env.sw = append(env.sw, d)
			then()
		},
		Costs: oc,
	})
	return env
}

// TestTxFIFOOverflowFallsBackToSoftware: plain frames hitting a full
// transmit FIFO still reach the wire with a valid checksum; the
// checksum work moves to the host.
func TestTxFIFOOverflowFallsBackToSoftware(t *testing.T) {
	env := newTxFifoEnv(t, 4, fifoCosts(1, 0))

	const n = 3
	env.s.After(0, func() {
		for i := 0; i < n; i++ {
			f := tcpFrame(uint32(100+i*10), 1, wire.TCPAck, pattern(i, 200))
			// The stack under offload hands frames down unchecksummed.
			tp := f[wire.EthHeaderLen+wire.IPv4HeaderLen:]
			tp[wire.TCPChecksumOffset], tp[wire.TCPChecksumOffset+1] = 0, 0
			if err := env.e.Transmit(f); err != nil {
				t.Errorf("transmit %d: %v", i, err)
			}
		}
	})
	if err := env.s.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}

	if len(env.got) != n {
		t.Fatalf("wire frames = %d, want %d (overflow must never drop)", len(env.got), n)
	}
	for i, f := range env.got {
		p, ok := parse(f.Data)
		if !ok {
			t.Fatalf("wire frame %d does not parse", i)
		}
		seg := f.Data[p.tpAt : wire.EthHeaderLen+int(p.ip.TotalLen)]
		if !wire.VerifyTCPChecksum(p.ip.Src, p.ip.Dst, seg) {
			t.Fatalf("wire frame %d left without a valid checksum", i)
		}
	}
	if v := env.e.Stats.TxOverflow.Value(); v != n-1 {
		t.Fatalf("tx_overflow = %d, want %d", v, n-1)
	}
	if v := env.e.Stats.SwCsumFrames.Value(); v != n-1 {
		t.Fatalf("sw_csum_frames = %d, want %d", v, n-1)
	}
	if len(env.sw) != n-1 {
		t.Fatalf("SW hook called %d times, want %d", len(env.sw), n-1)
	}
}

// TestTxFIFOOverflowSoftwareGSO: a TSO super-segment hitting a full
// FIFO degrades to software GSO — the host slices and checksums, and
// the wire sees the same MSS-sized frames it would have either way.
func TestTxFIFOOverflowSoftwareGSO(t *testing.T) {
	env := newTxFifoEnv(t, 5, fifoCosts(1, 0))

	payload := pattern(0, 3*DefaultMSS+500)
	super := tcpFrame(70000, 42, wire.TCPAck|wire.TCPPsh|wire.TCPFin, payload)
	env.s.After(0, func() {
		// A plain frame occupies the single FIFO slot...
		if err := env.e.Transmit(tcpFrame(10, 1, wire.TCPAck, pattern(9, 100))); err != nil {
			t.Errorf("plain transmit: %v", err)
		}
		// ...so the super-segment takes the software GSO path.
		if err := env.e.Transmit(super); err != nil {
			t.Errorf("super transmit: %v", err)
		}
	})
	if err := env.s.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}

	if v := env.e.Stats.TxOverflow.Value(); v != 1 {
		t.Fatalf("tx_overflow = %d, want 1", v)
	}
	if v := env.e.Stats.SwSlices.Value(); v != 4 {
		t.Fatalf("sw_slices = %d, want 4", v)
	}
	if v := env.e.Stats.TSOSlices.Value(); v != 0 {
		t.Fatalf("tso_slices = %d, want 0 (the engine sliced nothing)", v)
	}

	// Collect the GSO slices off the wire (the plain frame is seq 10)
	// and check they are ordered, checksummed, and reassemble exactly.
	var rebuilt []byte
	var seqs []uint32
	for i, f := range env.got {
		p, ok := parse(f.Data)
		if !ok {
			t.Fatalf("wire frame %d does not parse", i)
		}
		seg := f.Data[p.tpAt : wire.EthHeaderLen+int(p.ip.TotalLen)]
		if !wire.VerifyTCPChecksum(p.ip.Src, p.ip.Dst, seg) {
			t.Fatalf("wire frame %d fails checksum verification", i)
		}
		if p.tcp.Seq == 10 {
			continue
		}
		seqs = append(seqs, p.tcp.Seq)
		rebuilt = append(rebuilt, f.Data[p.payAt:wire.EthHeaderLen+int(p.ip.TotalLen)]...)
	}
	if len(seqs) != 4 {
		t.Fatalf("GSO slices on the wire = %d, want 4", len(seqs))
	}
	for i, s := range seqs {
		if want := uint32(70000 + i*DefaultMSS); s != want {
			t.Fatalf("slice %d seq = %d, want %d (slices must leave in order)", i, s, want)
		}
	}
	if !bytes.Equal(rebuilt, payload) {
		t.Fatalf("reassembled GSO payload differs from the super-segment payload")
	}
	if len(env.sw) != 1 {
		t.Fatalf("SW hook called %d times, want 1 (one charge for the whole GSO pass)", len(env.sw))
	}
}

// TestFIFOOverflowDeterminism: the overflow machinery must not disturb
// the engine's determinism contract.
func TestFIFOOverflowDeterminism(t *testing.T) {
	run := func() []delivery {
		env := &rxEnv{s: sim.New(6)}
		env.e = New(Config{
			Sim:   env.s,
			Name:  "fifo-det-test",
			Up:    func(f simnet.Frame) { env.got = append(env.got, delivery{at: env.s.Now(), data: f.Data}) },
			Costs: fifoCosts(0, 2),
		})
		for i := 0; i < 10; i++ {
			env.inject(time.Duration(i)*15*time.Microsecond,
				tcpFrame(uint32(3000+i*200), uint32(i), wire.TCPAck, pattern(i, 200)))
		}
		env.run(t)
		return env.got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("delivery counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].at != b[i].at || !bytes.Equal(a[i].data, b[i].data) {
			t.Fatalf("delivery %d diverged between runs", i)
		}
	}
}
