package offload

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/costs"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/wire"
)

var (
	testSrc = wire.IP(10, 0, 0, 1)
	testDst = wire.IP(10, 0, 0, 2)
)

// tcpFrame builds a complete, checksummed Ethernet+IPv4+TCP frame for
// one direction of the test flow.
func tcpFrame(seq, ack uint32, flags uint8, payload []byte) []byte {
	th := wire.TCPHeader{SrcPort: 1000, DstPort: 2000, Seq: seq, Ack: ack, Flags: flags, Window: 8192}
	hl := th.HeaderLen()
	b := make([]byte, wire.EthHeaderLen+wire.IPv4HeaderLen+hl+len(payload))
	eh := wire.EthHeader{Dst: wire.MAC{2}, Src: wire.MAC{1}, Type: wire.EtherTypeIPv4}
	eh.Marshal(b)
	ih := wire.IPv4Header{
		TotalLen: uint16(wire.IPv4HeaderLen + hl + len(payload)),
		ID:       uint16(seq >> 4),
		TTL:      wire.DefaultTTL,
		Proto:    wire.ProtoTCP,
		Src:      testSrc,
		Dst:      testDst,
	}
	ih.Marshal(b[wire.EthHeaderLen:])
	tp := b[wire.EthHeaderLen+wire.IPv4HeaderLen:]
	th.Marshal(tp)
	copy(tp[hl:], payload)
	ck := wire.TCPChecksum(testSrc, testDst, tp[:hl], tp[hl:])
	tp[wire.TCPChecksumOffset] = byte(ck >> 8)
	tp[wire.TCPChecksumOffset+1] = byte(ck)
	return b
}

// pattern fills n bytes with a position-dependent pattern offset by
// base, so merged payloads can be checked byte for byte.
func pattern(base, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(base + i)
	}
	return p
}

// delivery is one frame handed up by the engine, with its virtual time.
type delivery struct {
	at   sim.Time
	data []byte
}

// rxEnv is a receive-side test harness: an engine whose Up callback
// records deliveries.
type rxEnv struct {
	s   *sim.Sim
	e   *Engine
	got []delivery
}

func newRxEnv(t *testing.T) *rxEnv {
	t.Helper()
	env := &rxEnv{s: sim.New(1)}
	env.e = New(Config{
		Sim:   env.s,
		Name:  "rx-test",
		Up:    func(f simnet.Frame) { env.got = append(env.got, delivery{at: env.s.Now(), data: f.Data}) },
		Costs: costs.DECLibrarySHMIPFOffload().Offload,
	})
	return env
}

// inject schedules a frame into the engine at virtual time d.
func (env *rxEnv) inject(d time.Duration, frame []byte) {
	env.s.After(d, func() { env.e.Rx(simnet.Frame{Data: frame}) })
}

func (env *rxEnv) run(t *testing.T) {
	t.Helper()
	if err := env.s.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

// parseDelivery re-parses a delivered frame.
func parseDelivery(t *testing.T, d delivery) (wire.IPv4Header, wire.TCPHeader, []byte) {
	t.Helper()
	p, ok := parse(d.data)
	if !ok {
		t.Fatalf("delivered frame does not parse")
	}
	if !wire.VerifyTCPChecksum(p.ip.Src, p.ip.Dst, d.data[p.tpAt:wire.EthHeaderLen+int(p.ip.TotalLen)]) {
		t.Fatalf("delivered frame fails TCP checksum verification")
	}
	return p.ip, p.tcp, d.data[p.payAt : wire.EthHeaderLen+int(p.ip.TotalLen)]
}

// TestLROPshIdleDeliversImmediately: a pushed request on an idle flow
// must not wait out the hold window — that is the moderation contract
// that keeps ping-pong latency intact.
func TestLROPshIdleDeliversImmediately(t *testing.T) {
	env := newRxEnv(t)
	pay := pattern(0, 300)
	env.inject(0, tcpFrame(5000, 77, wire.TCPAck|wire.TCPPsh, pay))
	env.run(t)

	if len(env.got) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(env.got))
	}
	if env.got[0].at > sim.Time(0).Add(time.Millisecond) {
		t.Fatalf("pushed idle frame held until %v, want immediate (engine charges only)", env.got[0].at)
	}
	_, th, got := parseDelivery(t, env.got[0])
	if th.Flags&wire.TCPPsh == 0 {
		t.Fatalf("PSH flag lost in delivery")
	}
	if !bytes.Equal(got, pay) {
		t.Fatalf("payload mutated in delivery")
	}
	if n := env.e.PendingMerges(); n != 0 {
		t.Fatalf("pending merges = %d after flush, want 0", n)
	}
}

// TestLROMergesAndHoldFlushes: in-order segments without PSH coalesce
// into one super-segment that flushes once the flow goes quiet for the
// hold window, carrying the latest cumulative ACK and window.
func TestLROMergesAndHoldFlushes(t *testing.T) {
	env := newRxEnv(t)
	const n = 5
	gap := 200 * time.Microsecond
	var want []byte
	for i := 0; i < n; i++ {
		pay := pattern(i*7, 1000)
		want = append(want, pay...)
		env.inject(time.Duration(i)*gap, tcpFrame(uint32(9000+i*1000), uint32(100+i), wire.TCPAck, pay))
	}
	env.run(t)

	if len(env.got) != 1 {
		t.Fatalf("deliveries = %d, want 1 merged super-segment", len(env.got))
	}
	lastArrival := sim.Time(0).Add(time.Duration(n-1) * gap)
	at := env.got[0].at
	if at < lastArrival.Add(env.e.cfg.Hold) {
		t.Fatalf("flush at %v, before hold window after last arrival (%v + %v)", at, lastArrival, env.e.cfg.Hold)
	}
	if at > lastArrival.Add(2*env.e.cfg.Hold) {
		t.Fatalf("flush at %v, far past the hold window", at)
	}
	_, th, got := parseDelivery(t, env.got[0])
	if th.Seq != 9000 {
		t.Fatalf("super-segment seq = %d, want 9000 (first frame)", th.Seq)
	}
	if th.Ack != uint32(100+n-1) {
		t.Fatalf("super-segment ack = %d, want latest %d", th.Ack, 100+n-1)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("merged payload differs: %d bytes vs %d wanted", len(got), len(want))
	}
	if v := env.e.Stats.LROMerged.Value(); v != n {
		t.Fatalf("lro_merged = %d, want %d", v, n)
	}
	if v := env.e.Stats.LROFlushes.Value(); v != 1 {
		t.Fatalf("lro_flushes = %d, want 1", v)
	}
}

// TestLROPshUnderLoadKeepsMerging: once the inter-arrival EWMA says the
// flow is busy, a PSH segment merges like any other byte (the
// moderation trade) and the PSH flag rides on the super-segment.
func TestLROPshUnderLoadKeepsMerging(t *testing.T) {
	env := newRxEnv(t)
	gap := 100 * time.Microsecond
	const n = 6
	for i := 0; i < n; i++ {
		flags := uint8(wire.TCPAck)
		if i == 3 {
			flags |= wire.TCPPsh // mid-stream push while busy: keeps merging
		}
		env.inject(time.Duration(i)*gap, tcpFrame(uint32(4000+i*500), 1, flags, pattern(i, 500)))
	}
	// Just after the pushed segment the merge must still be open.
	env.s.After(3*gap+10*time.Microsecond, func() {
		if n := env.e.PendingMerges(); n != 1 {
			t.Errorf("pending merges = %d right after busy PSH, want 1 (no immediate flush)", n)
		}
	})
	env.run(t)

	if len(env.got) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(env.got))
	}
	_, th, got := parseDelivery(t, env.got[0])
	if th.Flags&wire.TCPPsh == 0 {
		t.Fatalf("super-segment lost the merged PSH flag")
	}
	if len(got) != n*500 {
		t.Fatalf("merged payload = %d bytes, want %d", len(got), n*500)
	}
}

// TestLROFinFlushesPending: a FIN is a stream boundary — it must flush
// the open merge first and then be delivered itself, promptly, in
// order.
func TestLROFinFlushesPending(t *testing.T) {
	env := newRxEnv(t)
	env.inject(0, tcpFrame(1000, 1, wire.TCPAck, pattern(0, 800)))
	env.inject(200*time.Microsecond, tcpFrame(1800, 1, wire.TCPAck, pattern(8, 800)))
	finAt := 400 * time.Microsecond
	env.inject(finAt, tcpFrame(2600, 1, wire.TCPAck|wire.TCPFin, nil))
	env.run(t)

	if len(env.got) != 2 {
		t.Fatalf("deliveries = %d, want 2 (merged data, then FIN)", len(env.got))
	}
	_, th0, got := parseDelivery(t, env.got[0])
	if th0.Seq != 1000 || len(got) != 1600 {
		t.Fatalf("first delivery seq=%d len=%d, want merged 1000/1600", th0.Seq, len(got))
	}
	_, th1, _ := parseDelivery(t, env.got[1])
	if th1.Flags&wire.TCPFin == 0 {
		t.Fatalf("second delivery is not the FIN")
	}
	if env.got[1].at > sim.Time(0).Add(finAt+time.Millisecond) {
		t.Fatalf("FIN held until %v, want prompt delivery", env.got[1].at)
	}
}

// TestLROSeqGapFlushes: an out-of-order arrival must flush the merge
// and go up immediately so the stack sees the gap and dup-ACKs without
// a moderation delay.
func TestLROSeqGapFlushes(t *testing.T) {
	env := newRxEnv(t)
	env.inject(0, tcpFrame(1000, 1, wire.TCPAck, pattern(0, 600)))
	env.inject(150*time.Microsecond, tcpFrame(1600, 1, wire.TCPAck, pattern(6, 600)))
	gapAt := 300 * time.Microsecond
	env.inject(gapAt, tcpFrame(9999, 1, wire.TCPAck, pattern(9, 600))) // hole before this
	env.run(t)

	if len(env.got) != 2 {
		t.Fatalf("deliveries = %d, want 2 (merged prefix, then the gap frame)", len(env.got))
	}
	_, th0, got0 := parseDelivery(t, env.got[0])
	if th0.Seq != 1000 || len(got0) != 1200 {
		t.Fatalf("first delivery seq=%d len=%d, want merged 1000/1200", th0.Seq, len(got0))
	}
	_, th1, _ := parseDelivery(t, env.got[1])
	if th1.Seq != 9999 {
		t.Fatalf("second delivery seq = %d, want the gap frame 9999", th1.Seq)
	}
	if env.got[1].at > sim.Time(0).Add(gapAt+time.Millisecond) {
		t.Fatalf("gap frame held until %v, want immediate delivery", env.got[1].at)
	}
}

// TestRxBadChecksumDropped: corruption must die at the engine with a
// counter, never reaching the host path.
func TestRxBadChecksumDropped(t *testing.T) {
	env := newRxEnv(t)
	f := tcpFrame(1000, 1, wire.TCPAck|wire.TCPPsh, pattern(0, 400))
	f[len(f)-1] ^= 0xff
	env.inject(0, f)
	env.run(t)

	if len(env.got) != 0 {
		t.Fatalf("corrupt frame delivered")
	}
	if v := env.e.Stats.RxCsumBad.Value(); v != 1 {
		t.Fatalf("rx_csum_bad = %d, want 1", v)
	}
}

// TestRxDeterminism: the same injection schedule must produce
// byte-identical deliveries at identical virtual times across runs —
// the property CI re-checks with -count=2.
func TestRxDeterminism(t *testing.T) {
	run := func() []delivery {
		env := newRxEnv(t)
		for i := 0; i < 12; i++ {
			flags := uint8(wire.TCPAck)
			if i%5 == 4 {
				flags |= wire.TCPPsh
			}
			env.inject(time.Duration(i)*130*time.Microsecond,
				tcpFrame(uint32(2000+i*700), uint32(i), flags, pattern(i, 700)))
		}
		env.run(t)
		return env.got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("delivery counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].at != b[i].at {
			t.Fatalf("delivery %d at %v vs %v", i, a[i].at, b[i].at)
		}
		if !bytes.Equal(a[i].data, b[i].data) {
			t.Fatalf("delivery %d bytes differ", i)
		}
	}
}

// TestTSOSlicing: an oversized transmit frame is sliced into MSS-sized
// wire frames with advancing sequence numbers and IP IDs, FIN/PSH only
// on the last slice, and a valid checksum on every slice.
func TestTSOSlicing(t *testing.T) {
	s := sim.New(3)
	seg := simnet.NewSegment(s)
	nicA := seg.AttachNamed("A", wire.MAC{1})
	nicB := seg.AttachNamed("B", wire.MAC{2})
	var got []simnet.Frame
	nicB.Rx = func(f simnet.Frame) { got = append(got, f) }
	nicA.Rx = func(f simnet.Frame) {}

	e := New(Config{
		Sim:   s,
		Name:  "tso-test",
		NIC:   nicA,
		Up:    func(f simnet.Frame) {},
		Costs: costs.DECLibrarySHMIPFOffload().Offload,
	})

	payload := pattern(0, 3*DefaultMSS+500)
	super := tcpFrame(70000, 42, wire.TCPAck|wire.TCPPsh|wire.TCPFin, payload)
	s.After(0, func() {
		if err := e.Transmit(super); err != nil {
			t.Errorf("transmit: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}

	if len(got) != 4 {
		t.Fatalf("wire frames = %d, want 4", len(got))
	}
	var rebuilt []byte
	var firstID uint16
	for i, f := range got {
		p, ok := parse(f.Data)
		if !ok {
			t.Fatalf("slice %d does not parse", i)
		}
		seg := f.Data[p.tpAt : wire.EthHeaderLen+int(p.ip.TotalLen)]
		if !wire.VerifyTCPChecksum(p.ip.Src, p.ip.Dst, seg) {
			t.Fatalf("slice %d fails checksum verification", i)
		}
		if want := uint32(70000 + i*DefaultMSS); p.tcp.Seq != want {
			t.Fatalf("slice %d seq = %d, want %d", i, p.tcp.Seq, want)
		}
		if i == 0 {
			firstID = p.ip.ID
		} else if p.ip.ID != firstID+uint16(i) {
			t.Fatalf("slice %d IP ID = %d, want %d", i, p.ip.ID, firstID+uint16(i))
		}
		last := i == len(got)-1
		if gotFin := p.tcp.Flags&wire.TCPFin != 0; gotFin != last {
			t.Fatalf("slice %d FIN = %v, want %v (FIN rides the last slice only)", i, gotFin, last)
		}
		if gotPsh := p.tcp.Flags&wire.TCPPsh != 0; gotPsh != last {
			t.Fatalf("slice %d PSH = %v, want %v", i, gotPsh, last)
		}
		wantLen := DefaultMSS
		if last {
			wantLen = 500
		}
		pay := f.Data[p.payAt : wire.EthHeaderLen+int(p.ip.TotalLen)]
		if len(pay) != wantLen {
			t.Fatalf("slice %d payload = %d bytes, want %d", i, len(pay), wantLen)
		}
		rebuilt = append(rebuilt, pay...)
	}
	if !bytes.Equal(rebuilt, payload) {
		t.Fatalf("concatenated slice payloads differ from the super-segment payload")
	}
	if v := e.Stats.TSOSuper.Value(); v != 1 {
		t.Fatalf("tso_super = %d, want 1", v)
	}
	if v := e.Stats.TSOSlices.Value(); v != 4 {
		t.Fatalf("tso_slices = %d, want 4", v)
	}
}

// TestTransmitChecksumsPlainFrame: an MTU-sized frame passes through
// unsliced but leaves with a freshly computed transport checksum (the
// stack skipped its software pass).
func TestTransmitChecksumsPlainFrame(t *testing.T) {
	s := sim.New(4)
	seg := simnet.NewSegment(s)
	nicA := seg.AttachNamed("A", wire.MAC{1})
	nicB := seg.AttachNamed("B", wire.MAC{2})
	var got []simnet.Frame
	nicB.Rx = func(f simnet.Frame) { got = append(got, f) }
	nicA.Rx = func(f simnet.Frame) {}
	e := New(Config{
		Sim:   s,
		Name:  "csum-test",
		NIC:   nicA,
		Up:    func(f simnet.Frame) {},
		Costs: costs.DECLibrarySHMIPFOffload().Offload,
	})

	f := tcpFrame(500, 9, wire.TCPAck, pattern(3, 256))
	// Zero the checksum the builder computed: the stack under offload
	// hands frames down unchecksummed.
	tp := f[wire.EthHeaderLen+wire.IPv4HeaderLen:]
	tp[wire.TCPChecksumOffset], tp[wire.TCPChecksumOffset+1] = 0, 0
	s.After(0, func() {
		if err := e.Transmit(f); err != nil {
			t.Errorf("transmit: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}

	if len(got) != 1 {
		t.Fatalf("wire frames = %d, want 1", len(got))
	}
	p, ok := parse(got[0].Data)
	if !ok {
		t.Fatalf("frame does not parse")
	}
	seg2 := got[0].Data[p.tpAt : wire.EthHeaderLen+int(p.ip.TotalLen)]
	if !wire.VerifyTCPChecksum(p.ip.Src, p.ip.Dst, seg2) {
		t.Fatalf("engine did not fill in the transport checksum")
	}
	if v := e.Stats.TxCsumFrames.Value(); v != 1 {
		t.Fatalf("tx_csum_frames = %d, want 1", v)
	}
}
