package filter

import (
	"fmt"

	"repro/internal/wire"
)

// Frame offsets assumed by compiled session filters (Ethernet II, IPv4
// with no options — the compiled program verifies IHL=5 before trusting
// the transport offsets).
const (
	offEtherType = 12
	offIPVerIHL  = 14
	offIPFrag    = 20
	offIPProto   = 23
	offIPSrc     = 26
	offIPDst     = 30
	offSrcPort   = 34
	offDstPort   = 36
)

// MatchSpec describes the incoming packets a network session should
// receive. Zero-valued fields are wildcards. The spec is written from the
// session's point of view: Local* describe this host's endpoint (the
// packet's destination), Remote* describe the peer (the packet's source).
type MatchSpec struct {
	Proto      uint8 // IP protocol; 0 matches any
	LocalIP    wire.IPAddr
	LocalPort  uint16
	RemoteIP   wire.IPAddr
	RemotePort uint16
}

func (m MatchSpec) String() string {
	return fmt.Sprintf("%s %v:%d <- %v:%d", wire.ProtoName(m.Proto),
		m.LocalIP, m.LocalPort, m.RemoteIP, m.RemotePort)
}

// Compile translates a match specification into a filter program. The
// program accepts exactly the IPv4 frames matching the spec; frames with
// IP options are left to the fallback (operating-system server) filter,
// and non-first fragments never match a port-qualified spec (the server
// reassembles those and forwards them, since ports are only present in
// the first fragment).
func Compile(m MatchSpec) Program {
	var p Program
	test16 := func(off uint32, want uint16) {
		p = append(p,
			Instr{OpLoad16, off},
			Instr{OpPushLit, uint32(want)},
			Instr{OpEq, 0},
			Instr{OpAssert, 0})
	}
	test8 := func(off uint32, want uint8) {
		p = append(p,
			Instr{OpLoad8, off},
			Instr{OpPushLit, uint32(want)},
			Instr{OpEq, 0},
			Instr{OpAssert, 0})
	}
	test32 := func(off uint32, want uint32) {
		p = append(p,
			Instr{OpLoad32, off},
			Instr{OpPushLit, want},
			Instr{OpEq, 0},
			Instr{OpAssert, 0})
	}

	test16(offEtherType, wire.EtherTypeIPv4)
	test8(offIPVerIHL, 0x45)
	if m.Proto != 0 {
		test8(offIPProto, m.Proto)
	}
	if !m.RemoteIP.IsZero() {
		test32(offIPSrc, m.RemoteIP.Uint32())
	}
	if !m.LocalIP.IsZero() {
		test32(offIPDst, m.LocalIP.Uint32())
	}
	if m.LocalPort != 0 || m.RemotePort != 0 {
		// A port-qualified filter rejects every fragment — including the
		// first, which does carry ports — so that a fragmented datagram
		// reaches the operating-system server whole; the server
		// reassembles it and re-injects an unfragmented packet that this
		// filter can claim (paper §3.1, exceptional packets).
		p = append(p,
			Instr{OpLoad16, offIPFrag},
			Instr{OpPushLit, wire.IPFlagMF | wire.IPOffMask},
			Instr{OpAnd, 0},
			Instr{OpPushLit, 0},
			Instr{OpEq, 0},
			Instr{OpAssert, 0})
		if m.RemotePort != 0 {
			test16(offSrcPort, m.RemotePort)
		}
		if m.LocalPort != 0 {
			test16(offDstPort, m.LocalPort)
		}
	}
	p = append(p, Instr{OpPushLit, 1}, Instr{OpRet, 0})
	return p
}

// Matches is a direct (non-VM) evaluation of the spec against a frame,
// used as a reference implementation in tests and by the in-kernel and
// server baselines, which demultiplex without a filter VM.
func (m MatchSpec) Matches(frame []byte) bool {
	eh, err := wire.UnmarshalEth(frame)
	if err != nil || eh.Type != wire.EtherTypeIPv4 {
		return false
	}
	b := frame[wire.EthHeaderLen:]
	if len(b) < wire.IPv4HeaderLen || b[0] != 0x45 {
		return false
	}
	var src, dst wire.IPAddr
	copy(src[:], b[12:16])
	copy(dst[:], b[16:20])
	if m.Proto != 0 && b[9] != m.Proto {
		return false
	}
	if !m.RemoteIP.IsZero() && src != m.RemoteIP {
		return false
	}
	if !m.LocalIP.IsZero() && dst != m.LocalIP {
		return false
	}
	if m.LocalPort != 0 || m.RemotePort != 0 {
		if fragWord := uint16(b[6])<<8 | uint16(b[7]); fragWord&(wire.IPFlagMF|wire.IPOffMask) != 0 {
			return false
		}
		if len(b) < wire.IPv4HeaderLen+4 {
			return false
		}
		sp := uint16(b[20])<<8 | uint16(b[21])
		dp := uint16(b[22])<<8 | uint16(b[23])
		if m.RemotePort != 0 && sp != m.RemotePort {
			return false
		}
		if m.LocalPort != 0 && dp != m.LocalPort {
			return false
		}
	}
	return true
}
