package filter

import (
	"fmt"
	"sort"
)

// Filter is an installed packet filter: a validated program plus delivery
// metadata. Owner is opaque to this package; the kernel stores the
// delivery endpoint there.
type Filter struct {
	ID       int
	Prog     Program
	Spec     MatchSpec // informational
	Priority int       // higher priority filters are consulted first
	Owner    any
}

// Set is an ordered collection of installed filters, as maintained by the
// simulated kernel for one network interface.
type Set struct {
	filters []*Filter
	nextID  int
	// Runs counts filter-set evaluations; Steps counts total programs run,
	// exposing demultiplexing cost to the benchmarks.
	Runs  int
	Steps int
}

// NewSet returns an empty filter set.
func NewSet() *Set { return &Set{nextID: 1} }

// Install validates prog and adds it to the set. Higher-priority filters
// match first; ties break by installation order.
func (s *Set) Install(prog Program, spec MatchSpec, priority int, owner any) (*Filter, error) {
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("filter: install rejected: %w", err)
	}
	f := &Filter{ID: s.nextID, Prog: prog, Spec: spec, Priority: priority, Owner: owner}
	s.nextID++
	s.filters = append(s.filters, f)
	// Stable sort keeps installation order within a priority class.
	sort.SliceStable(s.filters, func(i, j int) bool {
		return s.filters[i].Priority > s.filters[j].Priority
	})
	return f, nil
}

// Remove uninstalls the filter with the given ID, reporting whether it was
// present.
func (s *Set) Remove(id int) bool {
	for i, f := range s.filters {
		if f.ID == id {
			s.filters = append(s.filters[:i], s.filters[i+1:]...)
			return true
		}
	}
	return false
}

// Len returns the number of installed filters.
func (s *Set) Len() int { return len(s.filters) }

// Match runs the installed programs in priority order over pkt and returns
// the first accepting filter (or nil) along with the high-water mark of
// bytes examined across all programs run. The examined count is what the
// integrated packet filter uses to size its deferred header copy.
func (s *Set) Match(pkt []byte) (match *Filter, examined int) {
	s.Runs++
	for _, f := range s.filters {
		s.Steps++
		ok, ex := f.Prog.Run(pkt)
		if ex > examined {
			examined = ex
		}
		if ok {
			return f, examined
		}
	}
	return nil, examined
}
