package filter

import "time"

// Verdict is a data-plane hook's decision about a frame.
type Verdict int

const (
	// VerdictPass continues normal processing (possibly with a rewritten
	// frame).
	VerdictPass Verdict = iota
	// VerdictDrop discards the frame.
	VerdictDrop
	// VerdictAbsorb consumes the frame: the hook handled it itself
	// (answered it, forwarded it out another path), so the host stack
	// never sees it. Distinct from Drop only in accounting.
	VerdictAbsorb
)

func (v Verdict) String() string {
	switch v {
	case VerdictPass:
		return "pass"
	case VerdictDrop:
		return "drop"
	case VerdictAbsorb:
		return "absorb"
	}
	return "verdict(?)"
}

// Hook is the kernel's stateful data-plane extension point. Where an
// installed filter Program is a pure predicate that picks a delivery
// endpoint, a Hook may keep state across frames (connection tracking),
// rewrite frames (NAT), and originate frames of its own (load-balancer
// hairpins) — the position netfilter/eBPF occupy in a modern kernel.
//
// The cost/act split exists because the kernel charges virtual CPU
// before effects occur: IngressCost is evaluated first and charged at
// interrupt priority, then Ingress runs when the charge completes.
// IngressCost must be cheap and must not mutate hook state.
//
// Ingress receives the frame by reference under the network's
// immutability contract: the hook must not write to it. A rewriting
// hook returns a fresh frame (and the original is forgotten); returning
// nil keeps the original. Egress runs synchronously on the transmit
// path and owns the frame it is given, so it may rewrite in place.
type Hook interface {
	IngressCost(frame []byte) time.Duration
	Ingress(frame []byte) ([]byte, Verdict)
	Egress(frame []byte) ([]byte, Verdict)
}

// Rule is one entry of a hook's rule chain: a validated filter program
// plus the verdict applied when the program accepts.
type Rule struct {
	ID      int
	Prog    Program
	Verdict Verdict
}

// Chain is an ordered rule chain evaluated by a data-plane hook — the
// VM glue between the stateless filter machine and the stateful plane.
// Evaluation runs every program until one accepts, netfilter-style, so
// the traversal cost is linear in the total instruction count; Cost
// prices exactly that upper bound (a frame matching no rule walks the
// whole chain), which is what the chain-length benchmarks measure.
type Chain struct {
	rules  []Rule
	instrs int // total instructions across the chain
	nextID int

	// Evals counts chain evaluations; Steps counts programs run.
	Evals int
	Steps int
}

// NewChain returns an empty rule chain.
func NewChain() *Chain { return &Chain{nextID: 1} }

// Append validates prog and adds it to the end of the chain, returning
// the rule's ID.
func (c *Chain) Append(prog Program, v Verdict) (int, error) {
	if err := prog.Validate(); err != nil {
		return 0, err
	}
	id := c.nextID
	c.nextID++
	c.rules = append(c.rules, Rule{ID: id, Prog: prog, Verdict: v})
	c.instrs += len(prog)
	return id, nil
}

// Remove deletes the rule with the given ID, reporting whether it was
// present.
func (c *Chain) Remove(id int) bool {
	for i, r := range c.rules {
		if r.ID == id {
			c.instrs -= len(r.Prog)
			c.rules = append(c.rules[:i], c.rules[i+1:]...)
			return true
		}
	}
	return false
}

// Len returns the number of installed rules.
func (c *Chain) Len() int { return len(c.rules) }

// Instructions returns the total instruction count across the chain —
// the unit the per-instruction cost model multiplies.
func (c *Chain) Instructions() int { return c.instrs }

// Eval runs the chain over pkt and returns the verdict of the first
// accepting rule. matched is false when no rule accepted (the caller
// applies its chain policy, typically pass).
func (c *Chain) Eval(pkt []byte) (v Verdict, matched bool) {
	c.Evals++
	for i := range c.rules {
		c.Steps++
		if ok, _ := c.rules[i].Prog.Run(pkt); ok {
			return c.rules[i].Verdict, true
		}
	}
	return VerdictPass, false
}
