package filter

import "testing"

// prog builds a trivial program accepting iff the first packet byte
// equals want.
func progByte0(want uint32) Program {
	return Program{
		{OpLoad8, 0},
		{OpPushLit, want},
		{OpEq, 0},
		{OpRet, 0},
	}
}

func TestChainFirstMatchVerdict(t *testing.T) {
	c := NewChain()
	if _, err := c.Append(progByte0(1), VerdictDrop); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append(progByte0(2), VerdictAbsorb); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append(progByte0(2), VerdictDrop); err != nil { // shadowed
		t.Fatal(err)
	}

	cases := []struct {
		pkt     []byte
		want    Verdict
		matched bool
	}{
		{[]byte{1}, VerdictDrop, true},
		{[]byte{2}, VerdictAbsorb, true}, // first match wins over the shadowing rule
		{[]byte{9}, VerdictPass, false},
	}
	for _, tc := range cases {
		v, m := c.Eval(tc.pkt)
		if v != tc.want || m != tc.matched {
			t.Errorf("Eval(%v) = (%v, %v), want (%v, %v)", tc.pkt, v, m, tc.want, tc.matched)
		}
	}
	if c.Evals != 3 {
		t.Errorf("Evals = %d, want 3", c.Evals)
	}
	// 1 program for pkt[0]=1, 2 for pkt[0]=2, 3 for the miss.
	if c.Steps != 6 {
		t.Errorf("Steps = %d, want 6", c.Steps)
	}
}

func TestChainInstructionsAndRemove(t *testing.T) {
	c := NewChain()
	id1, _ := c.Append(progByte0(1), VerdictDrop)
	id2, _ := c.Append(progByte0(2), VerdictDrop)
	if c.Len() != 2 || c.Instructions() != 8 {
		t.Fatalf("Len=%d Instructions=%d, want 2/8", c.Len(), c.Instructions())
	}
	if !c.Remove(id1) {
		t.Fatal("Remove(id1) = false")
	}
	if c.Remove(id1) {
		t.Fatal("double Remove(id1) = true")
	}
	if c.Len() != 1 || c.Instructions() != 4 {
		t.Fatalf("after remove: Len=%d Instructions=%d, want 1/4", c.Len(), c.Instructions())
	}
	if v, m := c.Eval([]byte{2}); v != VerdictDrop || !m {
		t.Fatalf("surviving rule %d did not match", id2)
	}
}

func TestChainRejectsInvalidProgram(t *testing.T) {
	c := NewChain()
	if _, err := c.Append(Program{{OpEq, 0}}, VerdictDrop); err == nil {
		t.Fatal("Append accepted a program with stack underflow")
	}
	if c.Len() != 0 || c.Instructions() != 0 {
		t.Fatal("rejected program altered the chain")
	}
}
