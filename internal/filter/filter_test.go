package filter

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/wire"
)

// buildFrame constructs an Ethernet+IPv4+transport frame for tests.
func buildFrame(proto uint8, src, dst wire.IPAddr, sport, dport uint16, fragOff uint16, mf bool, payload int) []byte {
	b := make([]byte, wire.EthHeaderLen+wire.IPv4HeaderLen+8+payload)
	eh := wire.EthHeader{Dst: wire.MAC{2}, Src: wire.MAC{1}, Type: wire.EtherTypeIPv4}
	eh.Marshal(b)
	ih := wire.IPv4Header{
		TotalLen: uint16(wire.IPv4HeaderLen + 8 + payload),
		TTL:      64, Proto: proto, Src: src, Dst: dst, FragOff: fragOff,
	}
	if mf {
		ih.Flags = wire.IPFlagMF
	}
	ih.Marshal(b[wire.EthHeaderLen:])
	tp := b[wire.EthHeaderLen+wire.IPv4HeaderLen:]
	binary.BigEndian.PutUint16(tp[0:2], sport)
	binary.BigEndian.PutUint16(tp[2:4], dport)
	return b
}

func TestVMBasics(t *testing.T) {
	p := Program{
		{OpPushLit, 5},
		{OpPushLit, 3},
		{OpAdd, 0},
		{OpPushLit, 8},
		{OpEq, 0},
		{OpRet, 0},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	ok, _ := p.Run(nil)
	if !ok {
		t.Fatal("5+3==8 evaluated false")
	}
}

func TestVMComparisons(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint32
		want bool
	}{
		{OpEq, 4, 4, true}, {OpEq, 4, 5, false},
		{OpNe, 4, 5, true}, {OpNe, 4, 4, false},
		{OpLt, 3, 4, true}, {OpLt, 4, 4, false},
		{OpLe, 4, 4, true}, {OpLe, 5, 4, false},
		{OpGt, 5, 4, true}, {OpGt, 4, 4, false},
		{OpGe, 4, 4, true}, {OpGe, 3, 4, false},
		{OpXor, 5, 5, false}, {OpXor, 5, 4, true},
		{OpOr, 0, 0, false}, {OpOr, 0, 2, true},
		{OpAnd, 1, 3, true}, {OpAnd, 1, 2, false},
	}
	for _, c := range cases {
		p := Program{{OpPushLit, c.a}, {OpPushLit, c.b}, {c.op, 0}, {OpRet, 0}}
		if ok, _ := p.Run(nil); ok != c.want {
			t.Errorf("%v %s %v = %v, want %v", c.a, c.op, c.b, ok, c.want)
		}
	}
}

func TestVMLoadsAndExamined(t *testing.T) {
	pkt := []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}
	p := Program{
		{OpLoad16, 0},
		{OpPushLit, 0xdead},
		{OpEq, 0},
		{OpAssert, 0},
		{OpLoad32, 2},
		{OpPushLit, 0xbeef0102},
		{OpEq, 0},
		{OpRet, 0},
	}
	ok, ex := p.Run(pkt)
	if !ok {
		t.Fatal("loads mismatched")
	}
	if ex != 6 {
		t.Fatalf("examined = %d, want 6", ex)
	}
}

func TestVMOutOfRangeLoadRejects(t *testing.T) {
	p := Program{{OpLoad32, 10}, {OpRet, 0}}
	pkt := make([]byte, 14)
	pkt[13] = 1 // loaded word is nonzero, so an in-range load accepts
	if ok, _ := p.Run(pkt); !ok {
		t.Fatal("in-range load rejected")
	}
	if ok, _ := p.Run(pkt[:13]); ok {
		t.Fatal("out-of-range load accepted")
	}
}

func TestVMAssertShortCircuits(t *testing.T) {
	pkt := []byte{0, 0}
	p := Program{
		{OpLoad8, 0},
		{OpAssert, 0},   // always fails: byte is 0
		{OpLoad32, 100}, // would reject if reached, but also: examined must not grow
		{OpRet, 0},
	}
	ok, ex := p.Run(pkt)
	if ok {
		t.Fatal("assert did not reject")
	}
	if ex != 1 {
		t.Fatalf("examined = %d after short-circuit, want 1", ex)
	}
}

func TestValidateCatchesUnderflow(t *testing.T) {
	bad := []Program{
		{{OpEq, 0}, {OpRet, 0}},                      // binop on empty stack
		{{OpPushLit, 1}, {OpEq, 0}, {OpRet, 0}},      // binop on 1-deep stack
		{{OpRet, 0}},                                 // ret on empty stack
		{{OpAssert, 0}, {OpRet, 0}},                  // assert on empty stack
		{{OpPushLit, 1}},                             // missing ret
		{{OpPushLit, 1}, {OpRet, 0}, {OpPushLit, 1}}, // code after ret
		{{Instr{Op: 99}.Op, 0}},                      // unknown opcode
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("program %d validated but should not have", i)
		}
	}
}

func TestValidateDepthLimit(t *testing.T) {
	var p Program
	for i := 0; i < maxStack+1; i++ {
		p = append(p, Instr{OpPushLit, 0})
	}
	p = append(p, Instr{OpRet, 0})
	if err := p.Validate(); err == nil {
		t.Fatal("over-deep program validated")
	}
}

func TestCompileTCPSessionFilter(t *testing.T) {
	local, remote := wire.IP(10, 0, 0, 1), wire.IP(10, 0, 0, 2)
	spec := MatchSpec{Proto: wire.ProtoTCP, LocalIP: local, LocalPort: 80, RemoteIP: remote, RemotePort: 1234}
	p := Compile(spec)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	match := buildFrame(wire.ProtoTCP, remote, local, 1234, 80, 0, false, 10)
	if ok, ex := p.Run(match); !ok {
		t.Fatal("matching frame rejected")
	} else if ex > 38 {
		t.Fatalf("filter examined %d bytes; must be header-only", ex)
	}

	cases := []struct {
		name  string
		frame []byte
	}{
		{"wrong proto", buildFrame(wire.ProtoUDP, remote, local, 1234, 80, 0, false, 10)},
		{"wrong src ip", buildFrame(wire.ProtoTCP, wire.IP(10, 0, 0, 9), local, 1234, 80, 0, false, 10)},
		{"wrong dst ip", buildFrame(wire.ProtoTCP, remote, wire.IP(10, 0, 0, 9), 1234, 80, 0, false, 10)},
		{"wrong sport", buildFrame(wire.ProtoTCP, remote, local, 99, 80, 0, false, 10)},
		{"wrong dport", buildFrame(wire.ProtoTCP, remote, local, 1234, 81, 0, false, 10)},
		{"non-first fragment", buildFrame(wire.ProtoTCP, remote, local, 1234, 80, 100, false, 10)},
	}
	for _, c := range cases {
		if ok, _ := p.Run(c.frame); ok {
			t.Errorf("%s accepted", c.name)
		}
	}

	// Even the first fragment (which carries ports) must be rejected:
	// fragmented datagrams are the OS server's to reassemble.
	first := buildFrame(wire.ProtoTCP, remote, local, 1234, 80, 0, true, 10)
	if ok, _ := p.Run(first); ok {
		t.Error("first fragment accepted; fragments belong to the server")
	}
}

func TestCompileWildcards(t *testing.T) {
	// Unconnected UDP socket: local endpoint fixed, remote wildcarded.
	local := wire.IP(10, 0, 0, 1)
	spec := MatchSpec{Proto: wire.ProtoUDP, LocalIP: local, LocalPort: 53}
	p := Compile(spec)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, remote := range []wire.IPAddr{wire.IP(10, 0, 0, 2), wire.IP(192, 168, 7, 8)} {
		f := buildFrame(wire.ProtoUDP, remote, local, 40000, 53, 0, false, 64)
		if ok, _ := p.Run(f); !ok {
			t.Errorf("wildcard remote %v rejected", remote)
		}
	}
	if ok, _ := p.Run(buildFrame(wire.ProtoUDP, wire.IP(1, 2, 3, 4), local, 40000, 54, 0, false, 0)); ok {
		t.Error("wrong local port accepted")
	}
}

// TestQuickCompiledMatchesReference: the compiled VM program and the
// direct MatchSpec.Matches predicate must agree on random frames.
func TestQuickCompiledMatchesReference(t *testing.T) {
	specs := []MatchSpec{
		{Proto: wire.ProtoTCP, LocalIP: wire.IP(10, 0, 0, 1), LocalPort: 80, RemoteIP: wire.IP(10, 0, 0, 2), RemotePort: 1234},
		{Proto: wire.ProtoUDP, LocalIP: wire.IP(10, 0, 0, 1), LocalPort: 53},
		{Proto: wire.ProtoUDP, LocalIP: wire.IP(10, 0, 0, 1)},
		{},
	}
	progs := make([]Program, len(specs))
	for i, s := range specs {
		progs[i] = Compile(s)
		if err := progs[i].Validate(); err != nil {
			t.Fatal(err)
		}
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		proto := []uint8{wire.ProtoTCP, wire.ProtoUDP, wire.ProtoICMP}[rng.Intn(3)]
		ips := []wire.IPAddr{wire.IP(10, 0, 0, 1), wire.IP(10, 0, 0, 2), wire.IP(10, 0, 0, 3)}
		src, dst := ips[rng.Intn(3)], ips[rng.Intn(3)]
		ports := []uint16{53, 80, 1234, 40000}
		sp, dp := ports[rng.Intn(4)], ports[rng.Intn(4)]
		fragOff := uint16(0)
		if rng.Intn(4) == 0 {
			fragOff = uint16(rng.Intn(100))
		}
		frame := buildFrame(proto, src, dst, sp, dp, fragOff, rng.Intn(2) == 0, rng.Intn(100))
		for i := range specs {
			vmOK, _ := progs[i].Run(frame)
			if vmOK != specs[i].Matches(frame) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSetPriorityAndOrder(t *testing.T) {
	s := NewSet()
	local := wire.IP(10, 0, 0, 1)
	// Session filter at high priority, catch-all at low priority (the OS
	// server's fallback).
	sess, err := s.Install(Compile(MatchSpec{Proto: wire.ProtoUDP, LocalIP: local, LocalPort: 53}), MatchSpec{}, 10, "session")
	if err != nil {
		t.Fatal(err)
	}
	catch, err := s.Install(Program{{OpPushLit, 1}, {OpRet, 0}}, MatchSpec{}, 0, "server")
	if err != nil {
		t.Fatal(err)
	}
	f := buildFrame(wire.ProtoUDP, wire.IP(10, 0, 0, 2), local, 9, 53, 0, false, 4)
	if m, _ := s.Match(f); m == nil || m.Owner != "session" {
		t.Fatalf("expected session filter, got %+v", m)
	}
	other := buildFrame(wire.ProtoUDP, wire.IP(10, 0, 0, 2), local, 9, 99, 0, false, 4)
	if m, _ := s.Match(other); m == nil || m.Owner != "server" {
		t.Fatalf("expected fallback, got %+v", m)
	}
	if !s.Remove(sess.ID) {
		t.Fatal("remove failed")
	}
	if m, _ := s.Match(f); m == nil || m.Owner != "server" {
		t.Fatal("after removal, fallback should match")
	}
	s.Remove(catch.ID)
	if m, _ := s.Match(f); m != nil {
		t.Fatal("empty set matched")
	}
	if s.Len() != 0 {
		t.Fatal("set not empty")
	}
}

func TestSetRejectsInvalidProgram(t *testing.T) {
	s := NewSet()
	if _, err := s.Install(Program{{OpRet, 0}}, MatchSpec{}, 0, nil); err == nil {
		t.Fatal("invalid program installed")
	}
}

func BenchmarkFilterRun(b *testing.B) {
	spec := MatchSpec{Proto: wire.ProtoTCP, LocalIP: wire.IP(10, 0, 0, 1), LocalPort: 80,
		RemoteIP: wire.IP(10, 0, 0, 2), RemotePort: 1234}
	p := Compile(spec)
	f := buildFrame(wire.ProtoTCP, spec.RemoteIP, spec.LocalIP, 1234, 80, 0, false, 1460)
	for i := 0; i < b.N; i++ {
		p.Run(f)
	}
}
