// Package filter implements the kernel packet filter: a small stack-based
// virtual machine in the style of the CMU/Stanford packet filter used by
// Mach (Mogul, Rashid & Accetta, SOSP '87), together with a compiler from
// session match specifications and an installable filter set.
//
// The operating-system server compiles and installs one filter per network
// session; the kernel runs the filter set over each incoming frame to pick
// the destination endpoint. Run reports how many packet bytes the program
// examined, which is what makes the paper's "integrated packet filter"
// (SHM-IPF) possible: for Internet protocols the filter only reads
// headers, so the kernel can defer copying the payload until the
// destination address space is known and then copy it there directly.
package filter

import (
	"fmt"
)

// Op is a filter VM opcode.
type Op uint8

// VM opcodes. The machine is a pure stack machine over uint32 words with
// no backward jumps, so every program trivially terminates.
const (
	OpRet     Op = iota // pop v; accept iff v != 0
	OpPushLit           // push Arg
	OpLoad8             // push packet[Arg] (1 byte)
	OpLoad16            // push big-endian uint16 at packet[Arg]
	OpLoad32            // push big-endian uint32 at packet[Arg]
	OpEq                // pop b, a; push a == b
	OpNe                // pop b, a; push a != b
	OpLt                // pop b, a; push a < b
	OpLe                // pop b, a; push a <= b
	OpGt                // pop b, a; push a > b
	OpGe                // pop b, a; push a >= b
	OpAnd               // pop b, a; push a & b
	OpOr                // pop b, a; push a | b
	OpXor               // pop b, a; push a ^ b
	OpAdd               // pop b, a; push a + b
	OpAssert            // pop v; if v == 0, reject immediately
)

var opNames = map[Op]string{
	OpRet: "ret", OpPushLit: "pushlit", OpLoad8: "load8", OpLoad16: "load16",
	OpLoad32: "load32", OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le",
	OpGt: "gt", OpGe: "ge", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpAdd: "add", OpAssert: "assert",
}

func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is one VM instruction.
type Instr struct {
	Op  Op
	Arg uint32
}

// Program is a filter program.
type Program []Instr

const maxStack = 32

// Validate statically checks stack discipline: no underflow, bounded
// depth, and a final value on every path (the machine has no jumps, so
// there is exactly one path).
func (p Program) Validate() error {
	depth := 0
	terminated := false
	for i, in := range p {
		if terminated {
			return fmt.Errorf("filter: instruction %d after ret", i)
		}
		switch in.Op {
		case OpPushLit, OpLoad8, OpLoad16, OpLoad32:
			depth++
		case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpAnd, OpOr, OpXor, OpAdd:
			if depth < 2 {
				return fmt.Errorf("filter: stack underflow at instruction %d (%s)", i, in.Op)
			}
			depth--
		case OpAssert:
			if depth < 1 {
				return fmt.Errorf("filter: stack underflow at instruction %d (assert)", i)
			}
			depth--
		case OpRet:
			if depth < 1 {
				return fmt.Errorf("filter: ret with empty stack at instruction %d", i)
			}
			terminated = true
		default:
			return fmt.Errorf("filter: unknown opcode %d at instruction %d", in.Op, i)
		}
		if depth > maxStack {
			return fmt.Errorf("filter: stack depth exceeds %d at instruction %d", maxStack, i)
		}
	}
	if !terminated {
		return fmt.Errorf("filter: program does not end with ret")
	}
	return nil
}

// Run executes the program over pkt. It returns whether the packet is
// accepted and the number of leading packet bytes the program examined
// (the high-water mark of loads). A load past the end of the packet
// rejects, as in BPF. Run assumes the program has been Validated.
func (p Program) Run(pkt []byte) (accept bool, examined int) {
	var stack [maxStack]uint32
	sp := 0
	for _, in := range p {
		switch in.Op {
		case OpPushLit:
			stack[sp] = in.Arg
			sp++
		case OpLoad8:
			off := int(in.Arg)
			if off+1 > len(pkt) {
				return false, examined
			}
			if off+1 > examined {
				examined = off + 1
			}
			stack[sp] = uint32(pkt[off])
			sp++
		case OpLoad16:
			off := int(in.Arg)
			if off+2 > len(pkt) {
				return false, examined
			}
			if off+2 > examined {
				examined = off + 2
			}
			stack[sp] = uint32(pkt[off])<<8 | uint32(pkt[off+1])
			sp++
		case OpLoad32:
			off := int(in.Arg)
			if off+4 > len(pkt) {
				return false, examined
			}
			if off+4 > examined {
				examined = off + 4
			}
			stack[sp] = uint32(pkt[off])<<24 | uint32(pkt[off+1])<<16 |
				uint32(pkt[off+2])<<8 | uint32(pkt[off+3])
			sp++
		case OpAssert:
			sp--
			if stack[sp] == 0 {
				return false, examined
			}
		case OpRet:
			return stack[sp-1] != 0, examined
		default:
			b, a := stack[sp-1], stack[sp-2]
			sp -= 2
			var v uint32
			switch in.Op {
			case OpEq:
				v = b2u(a == b)
			case OpNe:
				v = b2u(a != b)
			case OpLt:
				v = b2u(a < b)
			case OpLe:
				v = b2u(a <= b)
			case OpGt:
				v = b2u(a > b)
			case OpGe:
				v = b2u(a >= b)
			case OpAnd:
				v = a & b
			case OpOr:
				v = a | b
			case OpXor:
				v = a ^ b
			case OpAdd:
				v = a + b
			}
			stack[sp] = v
			sp++
		}
	}
	return false, examined
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
