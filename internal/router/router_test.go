package router

import (
	"encoding/binary"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// testHost is a bare station that answers ARP for its address and
// captures every IP packet delivered to it.
type testHost struct {
	nic *simnet.NIC
	mac wire.MAC
	ip  wire.IPAddr
	got []ipPacket
}

type ipPacket struct {
	h    wire.IPv4Header
	body []byte
}

func newTestHost(seg *simnet.Segment, name string, mac wire.MAC, ip wire.IPAddr) *testHost {
	h := &testHost{mac: mac, ip: ip}
	h.nic = seg.AttachNamed(name, mac)
	h.nic.Rx = func(f simnet.Frame) {
		eh, err := wire.UnmarshalEth(f.Data)
		if err != nil {
			return
		}
		switch eh.Type {
		case wire.EtherTypeARP:
			ap, err := wire.UnmarshalARP(f.Data[wire.EthHeaderLen:])
			if err != nil || ap.Op != wire.ARPRequest || ap.TargetIP != h.ip {
				return
			}
			reply := wire.ARPPacket{
				Op:        wire.ARPReply,
				SenderMAC: h.mac,
				SenderIP:  h.ip,
				TargetMAC: ap.SenderMAC,
				TargetIP:  ap.SenderIP,
			}
			frame := make([]byte, wire.EthHeaderLen+wire.ARPLen)
			(&wire.EthHeader{Dst: ap.SenderMAC, Src: h.mac, Type: wire.EtherTypeARP}).Marshal(frame)
			copy(frame[wire.EthHeaderLen:], reply.Marshal())
			h.nic.Transmit(frame)
		case wire.EtherTypeIPv4:
			ih, hlen, err := wire.UnmarshalIPv4(f.Data[wire.EthHeaderLen:])
			if err != nil {
				return
			}
			body := f.Data[wire.EthHeaderLen+hlen : wire.EthHeaderLen+int(ih.TotalLen)]
			h.got = append(h.got, ipPacket{h: ih, body: append([]byte(nil), body...)})
		}
	}
	return h
}

// sendIP builds a UDP/IP frame addressed (at the link layer) to dstMAC
// and transmits it.
func (h *testHost) sendIP(dstMAC wire.MAC, dst wire.IPAddr, ttl uint8, payload []byte) {
	udp := make([]byte, wire.UDPHeaderLen+len(payload))
	binary.BigEndian.PutUint16(udp[0:2], 1111)
	binary.BigEndian.PutUint16(udp[2:4], 2222)
	binary.BigEndian.PutUint16(udp[4:6], uint16(len(udp)))
	copy(udp[wire.UDPHeaderLen:], payload)
	iph := wire.IPv4Header{
		TotalLen: uint16(wire.IPv4HeaderLen + len(udp)),
		TTL:      ttl,
		Proto:    wire.ProtoUDP,
		Src:      h.ip,
		Dst:      dst,
	}
	frame := make([]byte, wire.EthHeaderLen+wire.IPv4HeaderLen+len(udp))
	(&wire.EthHeader{Dst: dstMAC, Src: h.mac, Type: wire.EtherTypeIPv4}).Marshal(frame)
	iph.Marshal(frame[wire.EthHeaderLen : wire.EthHeaderLen+wire.IPv4HeaderLen])
	copy(frame[wire.EthHeaderLen+wire.IPv4HeaderLen:], udp)
	h.nic.Transmit(frame)
}

func mac(b byte) wire.MAC { return wire.MAC{0x02, 0, 0, 0, 0, b} }

// topo2 builds two subnets joined by one router and a host on each.
func topo2(s *sim.Sim, q QueueConfig) (*Router, *testHost, *testHost) {
	segA, segB := simnet.NewSegment(s), simnet.NewSegment(s)
	r := New(s, "core")
	r.Attach(segA, "a", mac(0xa0), wire.IP(10, 1, 0, 254), 24, q)
	r.Attach(segB, "b", mac(0xb0), wire.IP(10, 2, 0, 254), 24, q)
	ha := newTestHost(segA, "ha", mac(0x01), wire.IP(10, 1, 0, 1))
	hb := newTestHost(segB, "hb", mac(0x02), wire.IP(10, 2, 0, 1))
	return r, ha, hb
}

func TestForwardDecrementsTTL(t *testing.T) {
	s := sim.New(1)
	r, ha, hb := topo2(s, QueueConfig{})

	ha.sendIP(mac(0xa0), hb.ip, 64, []byte("hello"))
	if err := s.RunFor(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(hb.got) != 1 {
		t.Fatalf("hostB received %d packets, want 1", len(hb.got))
	}
	pkt := hb.got[0]
	if pkt.h.TTL != 63 {
		t.Errorf("forwarded TTL = %d, want 63", pkt.h.TTL)
	}
	if pkt.h.Src != ha.ip || pkt.h.Dst != hb.ip {
		t.Errorf("forwarded addresses %v -> %v", pkt.h.Src, pkt.h.Dst)
	}
	if string(pkt.body[wire.UDPHeaderLen:]) != "hello" {
		t.Errorf("payload corrupted in flight: %q", pkt.body)
	}
	if got := r.Stats.Forwarded.Value(); got != 1 {
		t.Errorf("Forwarded = %d, want 1", got)
	}
}

func TestTTLExpiryEmitsTimeExceeded(t *testing.T) {
	s := sim.New(2)
	r, ha, hb := topo2(s, QueueConfig{})

	ha.sendIP(mac(0xa0), hb.ip, 1, []byte("doomed"))
	if err := s.RunFor(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(hb.got) != 0 {
		t.Fatalf("hostB received %d packets, want 0", len(hb.got))
	}
	if len(ha.got) != 1 {
		t.Fatalf("hostA received %d packets, want 1 ICMP error", len(ha.got))
	}
	pkt := ha.got[0]
	if pkt.h.Proto != wire.ProtoICMP || pkt.h.Src != wire.IP(10, 1, 0, 254) {
		t.Fatalf("error packet proto=%d src=%v", pkt.h.Proto, pkt.h.Src)
	}
	ih, quote, err := wire.UnmarshalICMP(pkt.body)
	if err != nil {
		t.Fatal(err)
	}
	if ih.Type != wire.ICMPTimeExceeded || ih.Code != wire.ICMPCodeTTLExceeded {
		t.Errorf("ICMP type/code = %d/%d, want %d/%d", ih.Type, ih.Code, wire.ICMPTimeExceeded, wire.ICMPCodeTTLExceeded)
	}
	// The quote holds the offending IP header + 8 transport bytes.
	oh, _, err := wire.UnmarshalIPv4(quote)
	if err != nil {
		t.Fatalf("bad quoted header: %v", err)
	}
	if oh.Src != ha.ip || oh.Dst != hb.ip {
		t.Errorf("quoted flow %v -> %v", oh.Src, oh.Dst)
	}
	if got := r.Stats.TTLExpired.Value(); got != 1 {
		t.Errorf("TTLExpired = %d, want 1", got)
	}
}

func TestNoRouteEmitsUnreachable(t *testing.T) {
	s := sim.New(3)
	r, ha, _ := topo2(s, QueueConfig{})

	ha.sendIP(mac(0xa0), wire.IP(172, 16, 9, 9), 64, []byte("lost"))
	if err := s.RunFor(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(ha.got) != 1 {
		t.Fatalf("hostA received %d packets, want 1 ICMP error", len(ha.got))
	}
	ih, _, err := wire.UnmarshalICMP(ha.got[0].body)
	if err != nil {
		t.Fatal(err)
	}
	if ih.Type != wire.ICMPDestUnreachable || ih.Code != wire.ICMPCodeNetUnreachable {
		t.Errorf("ICMP type/code = %d/%d, want %d/%d", ih.Type, ih.Code, wire.ICMPDestUnreachable, wire.ICMPCodeNetUnreachable)
	}
	if got := r.Stats.NoRoute.Value(); got != 1 {
		t.Errorf("NoRoute = %d, want 1", got)
	}
}

func TestNoErrorAboutICMPError(t *testing.T) {
	s := sim.New(4)
	r, ha, _ := topo2(s, QueueConfig{})

	// An ICMP time-exceeded with an unroutable destination must be
	// dropped silently, not answered with unreachable.
	msg := wire.ICMPHeader{Type: wire.ICMPTimeExceeded}
	body := msg.Marshal(make([]byte, wire.IPv4HeaderLen+8))
	iph := wire.IPv4Header{
		TotalLen: uint16(wire.IPv4HeaderLen + len(body)),
		TTL:      64,
		Proto:    wire.ProtoICMP,
		Src:      ha.ip,
		Dst:      wire.IP(172, 16, 9, 9),
	}
	frame := make([]byte, wire.EthHeaderLen+int(iph.TotalLen))
	(&wire.EthHeader{Dst: mac(0xa0), Src: ha.mac, Type: wire.EtherTypeIPv4}).Marshal(frame)
	iph.Marshal(frame[wire.EthHeaderLen : wire.EthHeaderLen+wire.IPv4HeaderLen])
	copy(frame[wire.EthHeaderLen+wire.IPv4HeaderLen:], body)
	ha.nic.Transmit(frame)

	if err := s.RunFor(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(ha.got) != 0 {
		t.Fatalf("hostA received %d packets, want 0 (no error about an error)", len(ha.got))
	}
	if got := r.Stats.ICMPSent.Value(); got != 0 {
		t.Errorf("ICMPSent = %d, want 0", got)
	}
}

func TestPingRouterPort(t *testing.T) {
	s := sim.New(5)
	_, ha, _ := topo2(s, QueueConfig{})

	req := wire.ICMPHeader{Type: wire.ICMPEchoRequest, ID: 7, Seq: 1}
	body := req.Marshal([]byte("probe"))
	iph := wire.IPv4Header{
		TotalLen: uint16(wire.IPv4HeaderLen + len(body)),
		TTL:      64,
		Proto:    wire.ProtoICMP,
		Src:      ha.ip,
		Dst:      wire.IP(10, 1, 0, 254),
	}
	frame := make([]byte, wire.EthHeaderLen+int(iph.TotalLen))
	(&wire.EthHeader{Dst: mac(0xa0), Src: ha.mac, Type: wire.EtherTypeIPv4}).Marshal(frame)
	iph.Marshal(frame[wire.EthHeaderLen : wire.EthHeaderLen+wire.IPv4HeaderLen])
	copy(frame[wire.EthHeaderLen+wire.IPv4HeaderLen:], body)
	ha.nic.Transmit(frame)

	if err := s.RunFor(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(ha.got) != 1 {
		t.Fatalf("hostA received %d packets, want 1 echo reply", len(ha.got))
	}
	ih, payload, err := wire.UnmarshalICMP(ha.got[0].body)
	if err != nil {
		t.Fatal(err)
	}
	if ih.Type != wire.ICMPEchoReply || ih.ID != 7 || string(payload) != "probe" {
		t.Errorf("echo reply type=%d id=%d payload=%q", ih.Type, ih.ID, payload)
	}
}

// burst floods frames through the router faster than its egress link —
// deliberately slower than the ingress, as when a fast LAN funnels into
// a thin uplink — can drain, forcing the finite queue to drop.
func burst(t *testing.T, seed int64, frames int) (forwarded, red, tail uint64, maxQ int) {
	t.Helper()
	s := sim.New(seed)
	segA, segB := simnet.NewSegment(s), simnet.NewSegment(s)
	segB.SetBitRate(1_000_000) // 1 Mb/s uplink behind a 10 Mb/s LAN
	r := New(s, "core")
	r.Attach(segA, "a", mac(0xa0), wire.IP(10, 1, 0, 254), 24, QueueConfig{Capacity: 8})
	r.Attach(segB, "b", mac(0xb0), wire.IP(10, 2, 0, 254), 24, QueueConfig{Capacity: 8})
	ha := newTestHost(segA, "ha", mac(0x01), wire.IP(10, 1, 0, 1))
	hb := newTestHost(segB, "hb", mac(0x02), wire.IP(10, 2, 0, 1))
	_ = hb

	// Resolve ARP with one packet, then flood back-to-back.
	ha.sendIP(mac(0xa0), hb.ip, 64, []byte("warm"))
	if err := s.RunFor(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1024)
	for i := 0; i < frames; i++ {
		i := i
		s.After(time.Duration(i)*50*time.Microsecond, func() {
			ha.sendIP(mac(0xa0), hb.ip, 64, payload)
		})
	}
	if err := s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	return r.Stats.Forwarded.Value(), r.Stats.REDDrops.Value(), r.Stats.TailDrops.Value(), r.Ports()[1].MaxQLen
}

func TestREDDropsUnderOverload(t *testing.T) {
	const frames = 200
	forwarded, red, tail, maxQ := burst(t, 42, frames)
	if red == 0 {
		t.Errorf("RED dropped nothing under a %d-frame burst", frames)
	}
	// Conservation: every offered frame (flood + warmup) was either
	// forwarded or dropped at the queue.
	if forwarded+red+tail != frames+1 {
		t.Errorf("forwarded %d + red %d + tail %d != offered %d", forwarded, red, tail, frames+1)
	}
	if maxQ > 8+1 { // +1: the frame serializing on the wire
		t.Errorf("queue reached %d frames, capacity 8", maxQ)
	}
	if forwarded < 10 {
		t.Errorf("only %d frames survived the burst", forwarded)
	}

	f2, r2, t2, q2 := burst(t, 42, frames)
	if f2 != forwarded || r2 != red || t2 != tail || q2 != maxQ {
		t.Errorf("burst not deterministic: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			forwarded, red, tail, maxQ, f2, r2, t2, q2)
	}
}
