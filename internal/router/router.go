// Package router implements IP routers for multi-subnet simulated
// networks: a router host attaches one port to each Ethernet segment it
// joins, forwards IPv4 packets between them via the same longest-prefix
// routing table the protocol stacks use (stack.RouteTable with per-route
// egress interfaces), decrements TTL, answers and originates ARP, and
// emits the ICMP errors internet routers owe their sources — time
// exceeded when a TTL dies, destination unreachable when no route
// matches.
//
// Each egress port has a finite queue with RED-style early drop: the
// queue occupancy (frames handed to the segment that have not yet
// cleared the wire) is averaged with an EWMA, packets are admitted below
// the low threshold, dropped probabilistically between the thresholds,
// and dropped always above the high one. The drop stream is seeded from
// the simulation, so routed topologies stay deterministic.
package router

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/stack"
	"repro/internal/wire"
)

// QueueConfig sets a port's egress-queue behaviour.
type QueueConfig struct {
	// Capacity is the hard queue limit in frames (tail drop). 0 means
	// the default of 32.
	Capacity int
	// REDMin and REDMax are the RED thresholds on the EWMA queue length,
	// in frames. Defaults: Capacity/4 and 3*Capacity/4.
	REDMin, REDMax int
	// REDMaxP is the drop probability as the average reaches REDMax
	// (default 0.1). Set REDMax = 0 along with Capacity to keep defaults.
	REDMaxP float64
	// Weight is the EWMA weight for the average queue length
	// (default 0.25).
	Weight float64
}

func (q QueueConfig) withDefaults() QueueConfig {
	if q.Capacity == 0 {
		q.Capacity = 32
	}
	if q.REDMin == 0 {
		q.REDMin = q.Capacity / 4
	}
	if q.REDMax == 0 {
		q.REDMax = 3 * q.Capacity / 4
	}
	if q.REDMaxP == 0 {
		q.REDMaxP = 0.1
	}
	if q.Weight == 0 {
		q.Weight = 0.25
	}
	return q
}

// Stats counts router activity. The fields are metrics counters so a
// registry can bind to the same storage tests read.
type Stats struct {
	Forwarded    metrics.Counter // packets forwarded between ports
	Delivered    metrics.Counter // packets addressed to the router itself (ping)
	TTLExpired   metrics.Counter // dropped for TTL, ICMP time-exceeded sent
	NoRoute      metrics.Counter // dropped for no route, ICMP unreachable sent
	REDDrops     metrics.Counter // early-dropped by RED
	TailDrops    metrics.Counter // dropped at full queue
	ARPDrops     metrics.Counter // dropped waiting for ARP resolution
	ICMPSent     metrics.Counter // ICMP errors + echo replies originated
	HeaderErrors metrics.Counter // unparseable / bad-checksum IP headers
}

// Router forwards IP packets between the segments its ports join.
type Router struct {
	sim   *sim.Sim
	name  string
	rt    *stack.RouteTable
	ports []*Port
	rng   *rand.Rand

	Stats Stats
}

// New creates a router with no ports. The drop stream is derived from
// the simulation seed and the router's name, so routers never perturb
// the shared random stream other layers draw from.
func New(s *sim.Sim, name string) *Router {
	var h int64
	for _, c := range name {
		h = h*131 + int64(c)
	}
	r := &Router{
		sim:  s,
		name: name,
		rt:   stack.NewRouteTable(),
		rng:  rand.New(rand.NewSource(s.Seed() ^ h)),
	}
	// Expire stale unresolved ARP state once a virtual second.
	s.Every(arpSweepInterval, r.arpSweep)
	return r
}

// Name returns the router's name.
func (r *Router) Name() string { return r.name }

// Routes exposes the router's longest-prefix routing table. Attach adds
// the on-link route for each port's subnet; AddRoute installs static
// routes through neighbouring routers.
func (r *Router) Routes() *stack.RouteTable { return r.rt }

// Port is one router interface on a segment.
type Port struct {
	r         *Router
	index     int
	nic       *simnet.NIC
	ip        wire.IPAddr
	prefixLen int
	q         QueueConfig

	qlen int     // frames transmitted but not yet clear of the wire
	avg  float64 // RED EWMA of qlen, updated per enqueue

	arp     map[wire.IPAddr]*arpState
	MaxQLen int // high-water mark, for tests and reports
}

type arpState struct {
	mac      wire.MAC
	resolved bool
	ageTicks int      // sweeps since creation, for unresolved expiry
	pending  [][]byte // frames awaiting resolution (bounded)
}

const (
	arpSweepInterval  = time.Second
	arpMaxPending     = 8
	arpUnresolvedTTL  = 5 // sweeps before an unresolved entry is dropped
	icmpErrorHopLimit = wire.DefaultTTL
)

// Attach joins the router to a segment with the given port IP and subnet
// prefix length, installing the subnet's on-link route. The port's link
// name — visible to the fault injector — is "<router>.<name>".
func (r *Router) Attach(seg *simnet.Segment, name string, mac wire.MAC, ip wire.IPAddr, prefixLen int, q QueueConfig) *Port {
	p := &Port{
		r:         r,
		index:     len(r.ports),
		ip:        ip,
		prefixLen: prefixLen,
		q:         q.withDefaults(),
		arp:       make(map[wire.IPAddr]*arpState),
	}
	p.nic = seg.AttachOn(r.sim, r.name+"."+name, mac)
	p.nic.Rx = func(f simnet.Frame) { r.rx(p, f) }
	p.nic.TxDone = func(simnet.Frame) {
		if p.qlen > 0 {
			p.qlen--
		}
	}
	r.ports = append(r.ports, p)
	r.rt.AddIf(ip.Mask(prefixLen), prefixLen, wire.IPAddr{}, true, p.index)
	return p
}

// AddRoute installs a static route through gw, which must be on-link for
// one of the router's ports.
func (r *Router) AddRoute(dest wire.IPAddr, prefixLen int, gw wire.IPAddr) error {
	for _, p := range r.ports {
		if gw.Mask(p.prefixLen) == p.ip.Mask(p.prefixLen) {
			r.rt.AddIf(dest, prefixLen, gw, false, p.index)
			return nil
		}
	}
	return fmt.Errorf("router %s: gateway %v is not on any attached subnet", r.name, gw)
}

// Ports returns the router's ports in attach order.
func (r *Router) Ports() []*Port { return r.ports }

// IP returns the port's address.
func (p *Port) IP() wire.IPAddr { return p.ip }

// NIC exposes the port's station, so topology code can bind trunk
// per-direction stats and trace lanes.
func (p *Port) NIC() *simnet.NIC { return p.nic }

// Sim returns the event queue (shard) the router runs on.
func (r *Router) Sim() *sim.Sim { return r.sim }

// QueueLen returns the port's instantaneous egress-queue length.
func (p *Port) QueueLen() int { return p.qlen }

// LinkName returns the port's fault-injector link name.
func (p *Port) LinkName() string { return p.nic.Name() }

// BindMetrics registers the router's counters under a scope, typically
// "router.<name>". Ports bind separately (Port.BindMetrics) so a
// topology builder can attach them after the router-level binding.
func (r *Router) BindMetrics(sc *metrics.Scope) {
	if sc == nil {
		return
	}
	sc.Counter("forwarded", &r.Stats.Forwarded)
	sc.Counter("delivered", &r.Stats.Delivered)
	sc.Counter("ttl_expired", &r.Stats.TTLExpired)
	sc.Counter("no_route", &r.Stats.NoRoute)
	sc.Counter("red_drops", &r.Stats.REDDrops)
	sc.Counter("tail_drops", &r.Stats.TailDrops)
	sc.Counter("arp_drops", &r.Stats.ARPDrops)
	sc.Counter("icmp_sent", &r.Stats.ICMPSent)
	sc.Counter("header_errors", &r.Stats.HeaderErrors)
}

// BindMetrics registers the port's NIC counters and queue gauges under a
// scope, typically "router.<name>.port.<link>".
func (p *Port) BindMetrics(ps *metrics.Scope) {
	if ps == nil {
		return
	}
	p.nic.BindMetrics(ps)
	ps.GaugeFunc("queue", func() int64 { return int64(p.qlen) })
	ps.GaugeFunc("queue_max", func() int64 { return int64(p.MaxQLen) })
}

// Drops is the total number of packets the router dropped at egress
// queues (RED early drops plus tail drops).
func (r *Router) Drops() uint64 {
	return r.Stats.REDDrops.Value() + r.Stats.TailDrops.Value()
}

// rx handles one frame arriving on a port; it runs in event context and
// must not block (forwarding never waits — at worst it queues on ARP).
func (r *Router) rx(p *Port, f simnet.Frame) {
	eh, err := wire.UnmarshalEth(f.Data)
	if err != nil {
		r.Stats.HeaderErrors.Inc()
		return
	}
	switch eh.Type {
	case wire.EtherTypeARP:
		r.arpInput(p, f.Data[wire.EthHeaderLen:])
	case wire.EtherTypeIPv4:
		r.ipInput(p, f.Data[wire.EthHeaderLen:])
	}
}

// ipInput validates, delivers-or-forwards one IP packet.
func (r *Router) ipInput(p *Port, pkt []byte) {
	h, hlen, err := wire.UnmarshalIPv4(pkt)
	if err != nil {
		r.Stats.HeaderErrors.Inc()
		return
	}
	if int(h.TotalLen) > len(pkt) {
		r.Stats.HeaderErrors.Inc()
		return
	}
	pkt = pkt[:h.TotalLen]
	body := pkt[hlen:]

	// Addressed to the router itself: answer pings, swallow the rest.
	for _, lp := range r.ports {
		if h.Dst == lp.ip {
			r.Stats.Delivered.Inc()
			r.localInput(lp, h, body)
			return
		}
	}

	// TTL check happens before routing: a packet that arrives with one
	// hop left dies here, and its source learns why.
	if h.TTL <= 1 {
		r.Stats.TTLExpired.Inc()
		r.icmpError(p, wire.ICMPTimeExceeded, wire.ICMPCodeTTLExceeded, h, body)
		return
	}

	nextHop, ifidx, ok := r.rt.LookupIf(h.Dst)
	if !ok || ifidx >= len(r.ports) {
		r.Stats.NoRoute.Inc()
		r.icmpError(p, wire.ICMPDestUnreachable, wire.ICMPCodeNetUnreachable, h, body)
		return
	}
	out := r.ports[ifidx]

	if !r.admit(out) {
		return // counted inside admit
	}

	// Rewrite into a fresh frame: received frame data is immutable
	// (shared with other receivers and the flight recorder).
	frame := make([]byte, wire.EthHeaderLen+len(pkt))
	copy(frame[wire.EthHeaderLen:], pkt)
	ip := frame[wire.EthHeaderLen:]
	ip[8] = h.TTL - 1
	ip[10], ip[11] = 0, 0
	ck := wire.Checksum(ip[:hlen])
	ip[10], ip[11] = byte(ck>>8), byte(ck)

	r.Stats.Forwarded.Inc()
	r.transmit(out, nextHop, frame)
}

// admit runs the egress queue's RED/tail admission test, counting any
// drop it decides on.
func (r *Router) admit(out *Port) bool {
	q := out.q
	out.avg += q.Weight * (float64(out.qlen) - out.avg)
	switch {
	case out.qlen >= q.Capacity:
		r.Stats.TailDrops.Inc()
		return false
	case out.avg < float64(q.REDMin):
		return true
	case out.avg >= float64(q.REDMax):
		r.Stats.REDDrops.Inc()
		return false
	default:
		pb := q.REDMaxP * (out.avg - float64(q.REDMin)) / float64(q.REDMax-q.REDMin)
		if r.rng.Float64() < pb {
			r.Stats.REDDrops.Inc()
			return false
		}
		return true
	}
}

// transmit fills in link addresses and puts the frame on the port's
// wire, queueing on ARP when the next hop is unresolved.
func (r *Router) transmit(out *Port, nextHop wire.IPAddr, frame []byte) {
	eh := wire.EthHeader{Src: out.nic.MAC(), Type: wire.EtherTypeIPv4}
	if nextHop.IsBroadcast() {
		eh.Dst = wire.BroadcastMAC
		eh.Marshal(frame[:wire.EthHeaderLen])
		r.send(out, frame)
		return
	}
	st, ok := out.arp[nextHop]
	if ok && st.resolved {
		eh.Dst = st.mac
		eh.Marshal(frame[:wire.EthHeaderLen])
		r.send(out, frame)
		return
	}
	if st == nil {
		st = &arpState{}
		out.arp[nextHop] = st
		r.arpRequest(out, nextHop)
	}
	if len(st.pending) >= arpMaxPending {
		r.Stats.ARPDrops.Inc()
		return
	}
	eh.Marshal(frame[:wire.EthHeaderLen]) // dst filled on resolution
	st.pending = append(st.pending, frame)
}

func (r *Router) send(out *Port, frame []byte) {
	out.qlen++
	if out.qlen > out.MaxQLen {
		out.MaxQLen = out.qlen
	}
	_ = out.nic.Transmit(frame)
}

// localInput handles packets addressed to a port IP: ICMP echo requests
// get replies; everything else is silently absorbed (the router runs no
// transports).
func (r *Router) localInput(p *Port, h wire.IPv4Header, body []byte) {
	if h.Proto != wire.ProtoICMP {
		return
	}
	ih, payload, err := wire.UnmarshalICMP(body)
	if err != nil || ih.Type != wire.ICMPEchoRequest {
		return
	}
	reply := wire.ICMPHeader{Type: wire.ICMPEchoReply, ID: ih.ID, Seq: ih.Seq}
	r.Stats.ICMPSent.Inc()
	r.output(p.ip, h.Src, reply.Marshal(payload))
}

// icmpError reports a forwarding failure back to the packet's source,
// from the address of the port it arrived on. Errors are never sent
// about ICMP errors (RFC 1122).
func (r *Router) icmpError(in *Port, typ, code uint8, orig wire.IPv4Header, origBody []byte) {
	if orig.Proto == wire.ProtoICMP && len(origBody) > 0 && wire.ICMPIsError(origBody[0]) {
		return
	}
	if orig.IsFragment() && orig.FragOff != 0 {
		return // only the first fragment earns an error
	}
	msg := wire.ICMPHeader{Type: typ, Code: code}
	r.Stats.ICMPSent.Inc()
	r.output(in.ip, orig.Src, msg.Marshal(wire.ICMPErrorPayload(orig, origBody)))
}

// output originates an IP packet from the router (ICMP only) and routes
// it like any other traffic.
func (r *Router) output(src, dst wire.IPAddr, body []byte) {
	nextHop, ifidx, ok := r.rt.LookupIf(dst)
	if !ok || ifidx >= len(r.ports) {
		return // nowhere to send the error; drop silently
	}
	out := r.ports[ifidx]
	if !r.admit(out) {
		return
	}
	h := wire.IPv4Header{
		TotalLen: uint16(wire.IPv4HeaderLen + len(body)),
		TTL:      icmpErrorHopLimit,
		Proto:    wire.ProtoICMP,
		Src:      src,
		Dst:      dst,
	}
	frame := make([]byte, wire.EthHeaderLen+wire.IPv4HeaderLen+len(body))
	h.Marshal(frame[wire.EthHeaderLen : wire.EthHeaderLen+wire.IPv4HeaderLen])
	copy(frame[wire.EthHeaderLen+wire.IPv4HeaderLen:], body)
	r.transmit(out, nextHop, frame)
}

// --- ARP ---

func (r *Router) arpRequest(out *Port, ip wire.IPAddr) {
	pkt := wire.ARPPacket{
		Op:        wire.ARPRequest,
		SenderMAC: out.nic.MAC(),
		SenderIP:  out.ip,
		TargetIP:  ip,
	}
	r.arpTransmit(out, wire.BroadcastMAC, pkt)
}

func (r *Router) arpTransmit(out *Port, dst wire.MAC, pkt wire.ARPPacket) {
	frame := make([]byte, wire.EthHeaderLen+wire.ARPLen)
	eh := wire.EthHeader{Dst: dst, Src: out.nic.MAC(), Type: wire.EtherTypeARP}
	eh.Marshal(frame[:wire.EthHeaderLen])
	copy(frame[wire.EthHeaderLen:], pkt.Marshal())
	// ARP control traffic bypasses the data queue's RED test but still
	// occupies the wire.
	r.send(out, frame)
}

func (r *Router) arpInput(p *Port, pkt []byte) {
	ap, err := wire.UnmarshalARP(pkt)
	if err != nil {
		return
	}
	// Learn the sender either way; flush anything waiting on it.
	r.arpLearn(p, ap.SenderIP, ap.SenderMAC)
	if ap.Op == wire.ARPRequest && ap.TargetIP == p.ip {
		reply := wire.ARPPacket{
			Op:        wire.ARPReply,
			SenderMAC: p.nic.MAC(),
			SenderIP:  p.ip,
			TargetMAC: ap.SenderMAC,
			TargetIP:  ap.SenderIP,
		}
		r.arpTransmit(p, ap.SenderMAC, reply)
	}
}

func (r *Router) arpLearn(p *Port, ip wire.IPAddr, mac wire.MAC) {
	st, ok := p.arp[ip]
	if !ok {
		st = &arpState{}
		p.arp[ip] = st
	}
	st.mac = mac
	st.resolved = true
	st.ageTicks = 0
	if len(st.pending) > 0 {
		pending := st.pending
		st.pending = nil
		for _, frame := range pending {
			eh := wire.EthHeader{Dst: mac, Src: p.nic.MAC(), Type: wire.EtherTypeIPv4}
			eh.Marshal(frame[:wire.EthHeaderLen])
			r.send(p, frame)
		}
	}
}

// arpSweep expires unresolved entries (dropping their pending frames) in
// sorted address order so expiry is deterministic.
func (r *Router) arpSweep() {
	for _, p := range r.ports {
		var stale []wire.IPAddr
		for ip, st := range p.arp {
			if !st.resolved {
				st.ageTicks++
				if st.ageTicks >= arpUnresolvedTTL {
					stale = append(stale, ip)
				}
			}
		}
		sort.Slice(stale, func(i, j int) bool { return stale[i].Uint32() < stale[j].Uint32() })
		for _, ip := range stale {
			st := p.arp[ip]
			for range st.pending {
				r.Stats.ARPDrops.Inc()
			}
			delete(p.arp, ip)
		}
	}
}
