//go:build !race

package mbuf

const raceEnabled = false
