//go:build race

package mbuf

// raceEnabled reports that the race detector is active, under which
// sync.Pool deliberately drops items so allocation counts are not
// meaningful.
const raceEnabled = true
