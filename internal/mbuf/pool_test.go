package mbuf

import (
	"bytes"
	"testing"
)

// TestAllocReleaseReusesStorage pins pool behaviour: releasing the only
// reference to a pooled chain returns its backing buffer to the free list,
// and the next same-class Alloc gets that storage back instead of growing
// the heap. sync.Pool may shed items across GC cycles, so the test accepts
// any reuse within a few tries rather than demanding identity on the
// first.
func TestAllocReleaseReusesStorage(t *testing.T) {
	reused := false
	for try := 0; try < 10 && !reused; try++ {
		c := Alloc(512)
		p := &c.Writer(1)[0]
		c.Release()
		d := Alloc(512)
		if w := d.Writer(1); &w[0] == p {
			reused = true
		}
		d.Release()
	}
	if !reused {
		t.Fatal("released buffer was never reused by a same-class Alloc")
	}
}

// TestAllocAfterReuseIsZeroed guards against stale bytes leaking out of the
// pool: Alloc's window must read as zero even when the backing buffer was
// previously dirtied and recycled.
func TestAllocAfterReuseIsZeroed(t *testing.T) {
	for try := 0; try < 10; try++ {
		c := Alloc(256)
		w := c.Writer(256)
		for i := range w {
			w[i] = 0xAA
		}
		c.Release()
		d := Alloc(256)
		if !bytes.Equal(d.Bytes(), make([]byte, 256)) {
			t.Fatal("Alloc returned a dirty recycled buffer")
		}
		d.Release()
	}
}

// TestReleaseRespectsRefcount checks that a shared buffer is not recycled
// while a storage-sharing copy is still alive: after releasing the
// original, churning the pool hard must not scribble on the survivor.
func TestReleaseRespectsRefcount(t *testing.T) {
	c := Alloc(512)
	w := c.Writer(512)
	for i := range w {
		w[i] = byte(i)
	}
	want := append([]byte(nil), c.Bytes()...)

	cp := c.CopyRegion(0, 512) // shares storage, bumps the refcount
	c.Release()

	// Churn: if the shared buffer went back to the pool, one of these
	// allocations would claim and zero it.
	for i := 0; i < 64; i++ {
		d := Alloc(512)
		dw := d.Writer(512)
		for j := range dw {
			dw[j] = 0xFF
		}
		d.Release()
	}
	if !bytes.Equal(cp.Bytes(), want) {
		t.Fatal("buffer was recycled while a copy still referenced it")
	}
	cp.Release()
}

// TestWriterDeniedWhenShared pins the copy-on-write guard: a chain whose
// head buffer is shared must refuse an in-place writable view.
func TestWriterDeniedWhenShared(t *testing.T) {
	c := Alloc(64)
	if c.Writer(8) == nil {
		t.Fatal("unshared pooled chain should be writable")
	}
	cp := c.Clone()
	if c.Writer(8) != nil {
		t.Fatal("Writer must return nil while storage is shared")
	}
	cp.Release()
	if c.Writer(8) == nil {
		t.Fatal("dropping the last copy should restore writability")
	}
	c.Release()
}

// TestSteadyStateChainAllocs verifies the pooled fast path is allocation-
// free once warm. It models the shape of one transmit the way the stack
// does it — a scratch chain reused across sends (fill, prepend a header,
// release back to empty) — which must not allocate per iteration.
func TestSteadyStateChainAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; alloc counts are not meaningful")
	}
	payload := bytes.Repeat([]byte{0x5A}, 1024)
	c := New()
	send := func() {
		c.AppendBytes(payload)
		c.Prepend(20)
		c.Release()
	}
	for i := 0; i < 8; i++ {
		send() // warm the pools
	}
	if avg := testing.AllocsPerRun(200, send); avg > 0.5 {
		t.Fatalf("steady-state fill/prepend/release allocates %.2f objects/op, want ~0", avg)
	}
}
