package mbuf

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocAndBytes(t *testing.T) {
	c := Alloc(10)
	if c.Len() != 10 {
		t.Fatalf("Len = %d", c.Len())
	}
	if !bytes.Equal(c.Bytes(), make([]byte, 10)) {
		t.Fatal("Alloc not zeroed")
	}
}

func TestPrependUsesLeadingSpace(t *testing.T) {
	c := FromBytesCopy([]byte("payload"))
	hdr := c.Prepend(4)
	copy(hdr, "HDR:")
	if c.Segments() != 1 {
		t.Fatalf("prepend into leading space should not add a segment, got %d", c.Segments())
	}
	if got := string(c.Bytes()); got != "HDR:payload" {
		t.Fatalf("got %q", got)
	}
}

func TestPrependAllocatesWhenShared(t *testing.T) {
	c := FromBytes([]byte("payload"))
	orig := append([]byte(nil), "payload"...)
	hdr := c.Prepend(4)
	copy(hdr, "HDR:")
	if got := string(c.Bytes()); got != "HDR:payload" {
		t.Fatalf("got %q", got)
	}
	// The original backing array must be untouched.
	if !bytes.Equal(orig, []byte("payload")) {
		t.Fatal("prepend scribbled on shared storage")
	}
}

func TestPrependBeyondLeadingSpace(t *testing.T) {
	c := FromBytesCopy([]byte("x"))
	big := c.Prepend(LeadingSpace + 10)
	for i := range big {
		big[i] = 'A'
	}
	want := append(bytes.Repeat([]byte("A"), LeadingSpace+10), 'x')
	if !bytes.Equal(c.Bytes(), want) {
		t.Fatal("large prepend wrong")
	}
}

func TestTrimFrontAcrossSegments(t *testing.T) {
	c := New()
	c.AppendBytes([]byte("abc"))
	c.AppendBytes([]byte("defg"))
	c.AppendBytes([]byte("hi"))
	c.TrimFront(4)
	if got := string(c.Bytes()); got != "efghi" {
		t.Fatalf("got %q", got)
	}
	c.TrimFront(100)
	if c.Len() != 0 || c.Segments() != 0 {
		t.Fatal("over-trim should empty the chain")
	}
}

func TestTrimBackAcrossSegments(t *testing.T) {
	c := New()
	c.AppendBytes([]byte("abc"))
	c.AppendBytes([]byte("defg"))
	c.AppendBytes([]byte("hi"))
	c.TrimBack(3)
	if got := string(c.Bytes()); got != "abcdef" {
		t.Fatalf("got %q", got)
	}
	c.TrimBack(6)
	if c.Len() != 0 {
		t.Fatal("full trim should empty")
	}
}

func TestSplitAtSegmentBoundary(t *testing.T) {
	c := New()
	c.AppendBytes([]byte("abc"))
	c.AppendBytes([]byte("def"))
	rest := c.Split(3)
	if string(c.Bytes()) != "abc" || string(rest.Bytes()) != "def" {
		t.Fatalf("split got %q / %q", c.Bytes(), rest.Bytes())
	}
}

func TestSplitMidSegment(t *testing.T) {
	c := FromBytesCopy([]byte("abcdef"))
	rest := c.Split(2)
	if string(c.Bytes()) != "ab" || string(rest.Bytes()) != "cdef" {
		t.Fatalf("split got %q / %q", c.Bytes(), rest.Bytes())
	}
}

func TestCopyRegionSharesStorage(t *testing.T) {
	c := New()
	c.AppendBytes([]byte("hello "))
	c.AppendBytes([]byte("world"))
	r := c.CopyRegion(3, 6)
	if string(r.Bytes()) != "lo wor" {
		t.Fatalf("got %q", r.Bytes())
	}
	// Prepending to the copy must not corrupt the original.
	copy(r.Prepend(2), "XX")
	if string(c.Bytes()) != "hello world" {
		t.Fatal("CopyRegion prepend corrupted source")
	}
}

func TestPullup(t *testing.T) {
	c := New()
	c.AppendBytes([]byte("ab"))
	c.AppendBytes([]byte("cd"))
	c.AppendBytes([]byte("ef"))
	p := c.Pullup(5)
	if string(p) != "abcde" {
		t.Fatalf("Pullup = %q", p)
	}
	if c.Len() != 6 {
		t.Fatalf("Pullup changed length to %d", c.Len())
	}
	if string(c.Bytes()) != "abcdef" {
		t.Fatalf("chain after pullup = %q", c.Bytes())
	}
}

func TestPullupAlreadyContiguous(t *testing.T) {
	c := FromBytesCopy([]byte("abcdef"))
	before := c.Segments()
	_ = c.Pullup(3)
	if c.Segments() != before {
		t.Fatal("needless pullup copy")
	}
}

func TestReadAtOffsets(t *testing.T) {
	c := New()
	c.AppendBytes([]byte("0123"))
	c.AppendBytes([]byte("4567"))
	buf := make([]byte, 3)
	if n := c.ReadAt(buf, 3); n != 3 || string(buf) != "345" {
		t.Fatalf("ReadAt = %d %q", n, buf)
	}
	if n := c.ReadAt(buf, 7); n != 1 || buf[0] != '7' {
		t.Fatalf("tail ReadAt = %d %q", n, buf[:n])
	}
	if n := c.ReadAt(buf, 8); n != 0 {
		t.Fatalf("past-end ReadAt = %d", n)
	}
}

func TestAppendChainMoves(t *testing.T) {
	a := FromBytesCopy([]byte("aa"))
	b := FromBytesCopy([]byte("bb"))
	a.AppendChain(b)
	if string(a.Bytes()) != "aabb" || b.Len() != 0 {
		t.Fatalf("AppendChain: a=%q bLen=%d", a.Bytes(), b.Len())
	}
}

func TestWriter(t *testing.T) {
	c := FromBytesCopy([]byte("abcdef"))
	w := c.Writer(3)
	if w == nil {
		t.Fatal("Writer returned nil on private contiguous chain")
	}
	copy(w, "XYZ")
	if string(c.Bytes()) != "XYZdef" {
		t.Fatal("Writer not visible")
	}
	shared := c.Clone()
	if shared.Writer(3) != nil {
		t.Fatal("Writer must refuse shared segments")
	}
}

// model is a reference implementation over a flat []byte.
type model struct{ b []byte }

func (m *model) trimFront(n int) {
	if n > len(m.b) {
		n = len(m.b)
	}
	m.b = m.b[n:]
}
func (m *model) trimBack(n int) {
	if n > len(m.b) {
		n = len(m.b)
	}
	m.b = m.b[:len(m.b)-n]
}

// TestQuickChainMatchesModel drives random operation sequences against both
// the chain and a flat-slice model and requires identical observable state.
func TestQuickChainMatchesModel(t *testing.T) {
	f := func(seed int64, ops []byte) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New()
		m := &model{}
		for _, op := range ops {
			switch op % 6 {
			case 0: // append
				n := rng.Intn(20)
				data := make([]byte, n)
				rng.Read(data)
				c.AppendBytes(data)
				m.b = append(m.b, data...)
			case 1: // prepend
				n := rng.Intn(10)
				data := make([]byte, n)
				rng.Read(data)
				copy(c.Prepend(n), data)
				m.b = append(append([]byte{}, data...), m.b...)
			case 2: // trim front
				n := rng.Intn(15)
				c.TrimFront(n)
				m.trimFront(n)
			case 3: // trim back
				n := rng.Intn(15)
				c.TrimBack(n)
				m.trimBack(n)
			case 4: // split and re-append (round trip)
				if c.Len() > 0 {
					n := rng.Intn(c.Len() + 1)
					rest := c.Split(n)
					if c.Len() != n {
						return false
					}
					c.AppendChain(rest)
				}
			case 5: // pullup a random prefix
				if c.Len() > 0 {
					n := rng.Intn(c.Len()) + 1
					got := c.Pullup(n)
					if !bytes.Equal(got, m.b[:n]) {
						return false
					}
				}
			}
			if c.Len() != len(m.b) {
				return false
			}
			if !bytes.Equal(c.Bytes(), m.b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCopyRegionMatchesSlice checks CopyRegion against slicing.
func TestQuickCopyRegionMatchesSlice(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New()
		var flat []byte
		for i := 0; i < 1+rng.Intn(5); i++ {
			n := rng.Intn(30)
			data := make([]byte, n)
			rng.Read(data)
			c.AppendBytes(data)
			flat = append(flat, data...)
		}
		if len(flat) == 0 {
			return c.Len() == 0
		}
		off := rng.Intn(len(flat))
		n := rng.Intn(len(flat) - off)
		r := c.CopyRegion(off, n)
		return bytes.Equal(r.Bytes(), flat[off:off+n])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCopyRegionOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromBytesCopy([]byte("abc")).CopyRegion(1, 5)
}

func BenchmarkPrependHeader(b *testing.B) {
	payload := make([]byte, 1460)
	for i := 0; i < b.N; i++ {
		c := FromBytesCopy(payload)
		copy(c.Prepend(20), payload[:20])
		copy(c.Prepend(20), payload[:20])
		copy(c.Prepend(14), payload[:14])
	}
}

func BenchmarkCopyRegion(b *testing.B) {
	c := New()
	for i := 0; i < 16; i++ {
		c.AppendBytes(make([]byte, 8192))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.CopyRegion(37*1000%c.Len(), 1460)
	}
}
