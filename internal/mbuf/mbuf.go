// Package mbuf implements BSD-style message buffer chains.
//
// A Chain is a sequence of segments, each viewing a window into a backing
// array. The operations mirror the classic 4.3BSD mbuf routines that the
// protocol stack in this repository is structured around: prepending
// header space (m_prepend), trimming (m_adj), splitting (m_split),
// region copies that share storage (m_copym), pullup (m_pullup), and
// flattening (m_copydata).
//
// Storage discipline: backing arrays come from per-size-class free lists
// (the analogue of BSD's mbuf and cluster pools) and carry a reference
// count, exactly like cluster reference counts. CopyRegion and Split
// share backing storage between chains by taking a reference; a window is
// writable only while its backing array has a single reference, so shared
// bytes are never mutated in place (copy-on-write: Prepend and AppendBytes
// allocate fresh segments instead of growing into shared storage).
//
// Release returns a chain's segments — and, when the last reference
// drops, their backing arrays — to the free lists. Releasing is optional
// for correctness (an abandoned chain is simply garbage collected) but is
// what makes the steady-state data path allocation-free. After Release
// the chain is empty and may be reused; any byte slices previously
// obtained from the chain (Prepend, Pullup, Writer, Iter) are invalid.
package mbuf

import (
	"fmt"
	"math/bits"
	"sync"
)

// LeadingSpace is the header room reserved at the front of each allocated
// chain: enough for Ethernet + IPv4 + TCP with options.
const LeadingSpace = 64

// Backing arrays are pooled in power-of-two size classes from 128 bytes
// to 64 KB; larger (or externally supplied) storage bypasses the pools.
const (
	minClassBits = 7
	maxClassBits = 16
	numClasses   = maxClassBits - minClassBits + 1
)

// buf is a reference-counted backing array. refs counts the segments
// (across all chains) whose windows view it; it is manipulated without
// atomics because the simulator is logically single-threaded.
type buf struct {
	b     []byte
	refs  int32
	class int8 // pool index; -1 for unpooled storage
}

var bufPools [numClasses]sync.Pool

var segPool = sync.Pool{New: func() any { return new(seg) }}

// classFor returns the pool class whose arrays hold at least n bytes, or
// -1 when n exceeds the largest class.
func classFor(n int) int {
	if n <= 1<<minClassBits {
		return 0
	}
	if n > 1<<maxClassBits {
		return -1
	}
	return bits.Len(uint(n-1)) - minClassBits
}

// getBuf returns a backing array with capacity for at least n bytes and
// one reference. Pooled arrays are returned with whatever bytes they last
// held; callers must write every byte they expose.
func getBuf(n int) *buf {
	cl := classFor(n)
	if cl < 0 {
		return &buf{b: make([]byte, n), refs: 1, class: -1}
	}
	if v := bufPools[cl].Get(); v != nil {
		b := v.(*buf)
		b.refs = 1
		return b
	}
	return &buf{b: make([]byte, 1<<(uint(cl)+minClassBits)), refs: 1, class: int8(cl)}
}

func (b *buf) retain() { b.refs++ }

func (b *buf) release() {
	b.refs--
	if b.refs == 0 && b.class >= 0 {
		bufPools[b.class].Put(b)
	}
}

// seg is one window into a backing array. owner is nil for external
// storage (FromBytes / AppendAlias), which is treated as immutable and is
// never pooled.
type seg struct {
	b     []byte // owner.b, or the external slice
	owner *buf
	off   int // start of the data window within b
	n     int // window length
	next  *seg
}

// writable reports whether the window's storage may be mutated or grown:
// the segment must own its backing array and be its sole reference.
func (s *seg) writable() bool { return s.owner != nil && s.owner.refs == 1 }

// newSeg takes a pooled segment viewing [off, off+n) of b.
func newSeg(b *buf, off, n int) *seg {
	s := segPool.Get().(*seg)
	s.b, s.owner, s.off, s.n, s.next = b.b, b, off, n, nil
	return s
}

// newAliasSeg takes a pooled segment viewing external storage.
func newAliasSeg(b []byte) *seg {
	s := segPool.Get().(*seg)
	s.b, s.owner, s.off, s.n, s.next = b, nil, 0, len(b), nil
	return s
}

// recycle drops the segment's buffer reference and returns it to the
// segment pool.
func (s *seg) recycle() {
	if s.owner != nil {
		s.owner.release()
	}
	*s = seg{}
	segPool.Put(s)
}

// Chain is a list of buffer segments holding a packet or a byte stream
// region. The zero value is an empty chain ready for use.
type Chain struct {
	head   *seg
	tail   *seg
	length int
}

// New returns an empty chain.
func New() *Chain { return &Chain{} }

// Alloc returns a chain of n zero bytes with LeadingSpace of header room.
func Alloc(n int) *Chain {
	if n < 0 {
		panic("mbuf: negative length")
	}
	b := getBuf(LeadingSpace + n)
	off := len(b.b) - n
	s := newSeg(b, off, n)
	clear(s.b[off:])
	return &Chain{head: s, tail: s, length: n}
}

// FromBytes returns a chain viewing b directly (no copy, no header room).
// The caller must not mutate b afterwards.
func FromBytes(b []byte) *Chain {
	if len(b) == 0 {
		return New()
	}
	s := newAliasSeg(b)
	return &Chain{head: s, tail: s, length: len(b)}
}

// FromBytesCopy returns a chain holding a copy of b, with header room.
func FromBytesCopy(b []byte) *Chain {
	if len(b) == 0 {
		return Alloc(0)
	}
	nb := getBuf(LeadingSpace + len(b))
	off := len(nb.b) - len(b)
	s := newSeg(nb, off, len(b))
	copy(s.b[off:], b)
	return &Chain{head: s, tail: s, length: len(b)}
}

// Len returns the number of bytes in the chain.
func (c *Chain) Len() int { return c.length }

// Segments returns the number of segments in the chain.
func (c *Chain) Segments() int {
	n := 0
	for s := c.head; s != nil; s = s.next {
		n++
	}
	return n
}

// Release returns every segment — and each backing array whose last
// reference drops — to the free lists, leaving the chain empty and
// reusable. Byte slices previously obtained from the chain are invalid
// after Release.
func (c *Chain) Release() {
	for s := c.head; s != nil; {
		next := s.next
		s.recycle()
		s = next
	}
	c.head, c.tail, c.length = nil, nil, 0
}

// Iter is a zero-allocation iterator over a chain's segment windows.
type Iter struct{ s *seg }

// Iter returns an iterator positioned at the first segment.
func (c *Chain) Iter() Iter { return Iter{c.head} }

// Next returns the next segment's bytes, or false when exhausted. The
// returned slice must be treated as read-only.
func (it *Iter) Next() ([]byte, bool) {
	s := it.s
	if s == nil {
		return nil, false
	}
	it.s = s.next
	return s.b[s.off : s.off+s.n], true
}

// Prepend grows the chain by n bytes at the front and returns a writable
// slice covering exactly those bytes (contents undefined; the caller must
// write all of them). It uses leading space in the first segment when
// available and unshared; otherwise it takes a fresh pooled segment.
func (c *Chain) Prepend(n int) []byte {
	if n < 0 {
		panic("mbuf: negative prepend")
	}
	if n == 0 {
		return nil
	}
	if s := c.head; s != nil && s.writable() && s.off >= n {
		s.off -= n
		s.n += n
		c.length += n
		return s.b[s.off : s.off+n]
	}
	b := getBuf(LeadingSpace + n)
	off := len(b.b) - n
	s := newSeg(b, off, n)
	s.next = c.head
	if c.head == nil {
		c.tail = s
	}
	c.head = s
	c.length += n
	return s.b[off:]
}

// AppendBytes copies b onto the end of the chain, growing into the tail
// segment's spare capacity when it is unshared.
func (c *Chain) AppendBytes(b []byte) {
	for len(b) > 0 {
		if s := c.tail; s != nil && s.writable() {
			if room := len(s.b) - (s.off + s.n); room > 0 {
				take := copy(s.b[s.off+s.n:], b)
				s.n += take
				c.length += take
				b = b[take:]
				continue
			}
		}
		nb := getBuf(len(b))
		s := newSeg(nb, 0, 0)
		c.appendSeg(s)
		// Loop fills it via the tail-extension path above.
	}
}

// AppendAlias appends a segment viewing b directly (no copy). The caller
// must not mutate b afterwards; the chain treats it as immutable.
func (c *Chain) AppendAlias(b []byte) {
	if len(b) == 0 {
		return
	}
	c.appendSeg(newAliasSeg(b))
}

// AppendChain moves all of d's segments onto the end of c. d is emptied.
func (c *Chain) AppendChain(d *Chain) {
	if d == nil || d.head == nil {
		return
	}
	if c.head == nil {
		c.head, c.tail = d.head, d.tail
	} else {
		c.tail.next = d.head
		c.tail = d.tail
	}
	c.length += d.length
	d.head, d.tail, d.length = nil, nil, 0
}

func (c *Chain) appendSeg(s *seg) {
	if c.head == nil {
		c.head, c.tail = s, s
	} else {
		c.tail.next = s
		c.tail = s
	}
	c.length += s.n
}

// TrimFront removes n bytes from the front of the chain (m_adj with a
// positive count), recycling fully-consumed segments. Trimming more than
// the length empties the chain.
func (c *Chain) TrimFront(n int) {
	if n < 0 {
		panic("mbuf: negative trim")
	}
	for n > 0 && c.head != nil {
		s := c.head
		if n < s.n {
			s.off += n
			s.n -= n
			c.length -= n
			return
		}
		n -= s.n
		c.length -= s.n
		c.head = s.next
		s.recycle()
	}
	if c.head == nil {
		c.tail = nil
	}
}

// TrimBack removes n bytes from the end of the chain (m_adj with a
// negative count), recycling dropped segments.
func (c *Chain) TrimBack(n int) {
	if n < 0 {
		panic("mbuf: negative trim")
	}
	if n >= c.length {
		c.Release()
		return
	}
	keep := c.length - n
	s := c.head
	seen := 0
	for ; s != nil; s = s.next {
		if seen+s.n >= keep {
			break
		}
		seen += s.n
	}
	s.n = keep - seen
	for d := s.next; d != nil; {
		next := d.next
		d.recycle()
		d = next
	}
	s.next = nil
	c.tail = s
	c.length = keep
}

// Split truncates c to its first n bytes and returns a new chain holding
// the remainder. If n >= Len, the remainder is empty. A split inside a
// segment shares its backing array between the halves (both become
// read-only until one side is released).
func (c *Chain) Split(n int) *Chain {
	if n < 0 {
		panic("mbuf: negative split")
	}
	if n >= c.length {
		return New()
	}
	rest := New()
	s := c.head
	seen := 0
	var prev *seg
	for s != nil && seen+s.n <= n {
		seen += s.n
		prev = s
		s = s.next
	}
	// s is the segment containing the split point (seen <= n < seen+s.n).
	within := n - seen
	if within == 0 {
		// Clean segment boundary: move s..tail to rest.
		rest.head, rest.tail = s, c.tail
		rest.length = c.length - n
		if prev == nil {
			c.head, c.tail = nil, nil
		} else {
			prev.next = nil
			c.tail = prev
		}
		c.length = n
		return rest
	}
	// Split inside s: the two halves share the backing array.
	var right *seg
	if s.owner != nil {
		s.owner.retain()
		right = newSeg(s.owner, s.off+within, s.n-within)
	} else {
		right = newAliasSeg(s.b[s.off+within : s.off+s.n])
	}
	right.next = s.next
	s.n = within
	s.next = nil
	rest.head = right
	if right.next == nil {
		rest.tail = right
	} else {
		rest.tail = c.tail
	}
	rest.length = c.length - n
	c.tail = s
	c.length = n
	return rest
}

// CopyRegion returns a new chain viewing bytes [off, off+n) of c. The new
// chain shares backing storage with c (reference-counted, so neither side
// mutates the shared windows), making retransmission copies cheap as in
// m_copym.
func (c *Chain) CopyRegion(off, n int) *Chain {
	out := New()
	c.CopyRegionInto(out, off, n)
	return out
}

// CopyRegionInto appends a storage-sharing view of bytes [off, off+n) of
// c onto out. With a reused (Released) chain as out, steady-state segment
// construction allocates nothing.
func (c *Chain) CopyRegionInto(out *Chain, off, n int) {
	if off < 0 || n < 0 || off+n > c.length {
		panic(fmt.Sprintf("mbuf: CopyRegion(%d, %d) out of range (len %d)", off, n, c.length))
	}
	if n == 0 {
		return
	}
	s := c.head
	// Skip to the segment containing off.
	for off >= s.n {
		off -= s.n
		s = s.next
	}
	for n > 0 {
		take := s.n - off
		if take > n {
			take = n
		}
		var ns *seg
		if s.owner != nil {
			s.owner.retain()
			ns = newSeg(s.owner, s.off+off, take)
		} else {
			ns = newAliasSeg(s.b[s.off+off : s.off+off+take])
		}
		out.appendSeg(ns)
		n -= take
		off = 0
		s = s.next
	}
}

// ReadAt copies min(len(p), Len-off) bytes starting at offset off into p
// and returns the count (m_copydata).
func (c *Chain) ReadAt(p []byte, off int) int {
	if off < 0 {
		panic("mbuf: negative offset")
	}
	if off >= c.length {
		return 0
	}
	s := c.head
	for off >= s.n {
		off -= s.n
		s = s.next
	}
	total := 0
	for s != nil && total < len(p) {
		n := copy(p[total:], s.b[s.off+off:s.off+s.n])
		total += n
		off = 0
		s = s.next
	}
	return total
}

// Bytes returns a flattened copy of the chain's contents.
func (c *Chain) Bytes() []byte {
	out := make([]byte, c.length)
	c.ReadAt(out, 0)
	return out
}

// Pullup ensures the first n bytes of the chain are contiguous and returns
// a slice viewing them. It panics if the chain is shorter than n. The
// returned slice must be treated as read-only if the chain has been
// shared.
func (c *Chain) Pullup(n int) []byte {
	if n > c.length {
		panic(fmt.Sprintf("mbuf: Pullup(%d) on chain of %d bytes", n, c.length))
	}
	if n == 0 {
		return nil
	}
	if c.head.n >= n {
		s := c.head
		return s.b[s.off : s.off+n]
	}
	// Coalesce the prefix into one fresh segment.
	b := getBuf(LeadingSpace + n)
	off := len(b.b) - n
	ns := newSeg(b, off, n)
	c.ReadAt(ns.b[off:], 0)
	c.TrimFront(n)
	ns.next = c.head
	c.head = ns
	if ns.next == nil {
		c.tail = ns
	}
	c.length += n
	return ns.b[off:]
}

// unshare replaces the segment's window with a private copy in a fresh
// pooled backing array, dropping the reference to the shared (or
// external) storage. Afterwards the segment is writable.
func (s *seg) unshare() {
	b := getBuf(s.n)
	copy(b.b, s.b[s.off:s.off+s.n])
	if s.owner != nil {
		s.owner.release()
	}
	s.b, s.owner, s.off = b.b, b, 0
}

// WriteAt copies p into the chain at offset off with copy-on-write
// semantics: any segment in the target range whose storage is shared
// (refcount > 1) or external (FromBytes/AppendAlias) is first replaced
// by a private copy, so other chains viewing the same storage — a
// retransmission queue, a spliced peer, the socket receive buffer a
// RecvPeek view aliases — never observe the write. It panics if the
// range [off, off+len(p)) is not inside the chain.
func (c *Chain) WriteAt(p []byte, off int) {
	if off < 0 || off+len(p) > c.length {
		panic(fmt.Sprintf("mbuf: WriteAt(%d bytes, off %d) out of range (len %d)", len(p), off, c.length))
	}
	if len(p) == 0 {
		return
	}
	s := c.head
	for off >= s.n {
		off -= s.n
		s = s.next
	}
	for len(p) > 0 {
		if !s.writable() {
			s.unshare()
		}
		n := copy(s.b[s.off+off:s.off+s.n], p)
		p = p[n:]
		off = 0
		s = s.next
	}
}

// Clone returns a storage-sharing copy of the entire chain.
func (c *Chain) Clone() *Chain {
	if c.length == 0 {
		return New()
	}
	return c.CopyRegion(0, c.length)
}

// Writer returns a writable flat view of the first n bytes if they are
// contiguous and unshared; otherwise it returns nil. Header fixups
// (for example checksum patching) use this to avoid copies.
func (c *Chain) Writer(n int) []byte {
	s := c.head
	if s == nil || !s.writable() || s.n < n {
		return nil
	}
	return s.b[s.off : s.off+n]
}
