// Package mbuf implements BSD-style message buffer chains.
//
// A Chain is a sequence of segments, each viewing a window into a backing
// array. The operations mirror the classic 4.3BSD mbuf routines that the
// protocol stack in this repository is structured around: prepending
// header space (m_prepend), trimming (m_adj), splitting (m_split),
// region copies that share storage (m_copym), pullup (m_pullup), and
// flattening (m_copydata).
//
// Sharing discipline: CopyRegion shares backing storage between chains and
// marks the shared segments read-only. Prepend never writes into a
// read-only segment; it allocates a fresh front segment instead. Payload
// bytes handed to the stack are therefore never mutated once queued, which
// is the same discipline BSD enforces with cluster reference counts.
package mbuf

import "fmt"

// LeadingSpace is the header room reserved at the front of each allocated
// chain: enough for Ethernet + IPv4 + TCP with options.
const LeadingSpace = 64

type seg struct {
	buf  []byte // backing storage
	off  int    // start of the data window within buf
	n    int    // window length
	ro   bool   // window is shared with another chain; do not grow into buf
	next *seg
}

// Chain is a list of buffer segments holding a packet or a byte stream
// region.
type Chain struct {
	head   *seg
	tail   *seg
	length int
}

// New returns an empty chain.
func New() *Chain { return &Chain{} }

// Alloc returns a chain of n zero bytes with LeadingSpace of header room.
func Alloc(n int) *Chain {
	if n < 0 {
		panic("mbuf: negative length")
	}
	buf := make([]byte, LeadingSpace+n)
	s := &seg{buf: buf, off: LeadingSpace, n: n}
	return &Chain{head: s, tail: s, length: n}
}

// FromBytes returns a chain viewing b directly (no copy, no header room).
// The caller must not mutate b afterwards.
func FromBytes(b []byte) *Chain {
	if len(b) == 0 {
		return New()
	}
	s := &seg{buf: b, off: 0, n: len(b), ro: true}
	return &Chain{head: s, tail: s, length: len(b)}
}

// FromBytesCopy returns a chain holding a copy of b, with header room.
func FromBytesCopy(b []byte) *Chain {
	c := Alloc(len(b))
	if len(b) > 0 {
		copy(c.head.buf[c.head.off:], b)
	}
	return c
}

// Len returns the number of bytes in the chain.
func (c *Chain) Len() int { return c.length }

// Segments returns the number of segments in the chain.
func (c *Chain) Segments() int {
	n := 0
	for s := c.head; s != nil; s = s.next {
		n++
	}
	return n
}

// Prepend grows the chain by n bytes at the front and returns a writable
// slice covering exactly those bytes. It uses leading space in the first
// segment when available and not shared; otherwise it allocates a new
// front segment.
func (c *Chain) Prepend(n int) []byte {
	if n < 0 {
		panic("mbuf: negative prepend")
	}
	if n == 0 {
		return nil
	}
	if s := c.head; s != nil && !s.ro && s.off >= n {
		s.off -= n
		s.n += n
		c.length += n
		return s.buf[s.off : s.off+n]
	}
	buf := make([]byte, LeadingSpace+n)
	s := &seg{buf: buf, off: LeadingSpace, n: n, next: c.head}
	if c.head == nil {
		c.tail = s
	}
	c.head = s
	c.length += n
	return buf[LeadingSpace : LeadingSpace+n]
}

// AppendBytes copies b onto the end of the chain.
func (c *Chain) AppendBytes(b []byte) {
	if len(b) == 0 {
		return
	}
	nb := make([]byte, len(b))
	copy(nb, b)
	s := &seg{buf: nb, off: 0, n: len(nb)}
	c.appendSeg(s)
}

// AppendChain moves all of d's segments onto the end of c. d is emptied.
func (c *Chain) AppendChain(d *Chain) {
	if d == nil || d.head == nil {
		return
	}
	if c.head == nil {
		c.head, c.tail = d.head, d.tail
	} else {
		c.tail.next = d.head
		c.tail = d.tail
	}
	c.length += d.length
	d.head, d.tail, d.length = nil, nil, 0
}

func (c *Chain) appendSeg(s *seg) {
	if c.head == nil {
		c.head, c.tail = s, s
	} else {
		c.tail.next = s
		c.tail = s
	}
	c.length += s.n
}

// TrimFront removes n bytes from the front of the chain (m_adj with a
// positive count). Trimming more than the length empties the chain.
func (c *Chain) TrimFront(n int) {
	if n < 0 {
		panic("mbuf: negative trim")
	}
	for n > 0 && c.head != nil {
		s := c.head
		if n < s.n {
			s.off += n
			s.n -= n
			c.length -= n
			return
		}
		n -= s.n
		c.length -= s.n
		c.head = s.next
	}
	if c.head == nil {
		c.tail = nil
	}
}

// TrimBack removes n bytes from the end of the chain (m_adj with a
// negative count).
func (c *Chain) TrimBack(n int) {
	if n < 0 {
		panic("mbuf: negative trim")
	}
	if n >= c.length {
		c.head, c.tail, c.length = nil, nil, 0
		return
	}
	keep := c.length - n
	s := c.head
	seen := 0
	for ; s != nil; s = s.next {
		if seen+s.n >= keep {
			break
		}
		seen += s.n
	}
	s.n = keep - seen
	s.next = nil
	c.tail = s
	c.length = keep
}

// Split truncates c to its first n bytes and returns a new chain holding
// the remainder. If n >= Len, the remainder is empty.
func (c *Chain) Split(n int) *Chain {
	if n < 0 {
		panic("mbuf: negative split")
	}
	if n >= c.length {
		return New()
	}
	rest := New()
	s := c.head
	seen := 0
	var prev *seg
	for s != nil && seen+s.n <= n {
		seen += s.n
		prev = s
		s = s.next
	}
	// s is the segment containing the split point (seen <= n < seen+s.n).
	within := n - seen
	if within == 0 {
		// Clean segment boundary: move s..tail to rest.
		rest.head, rest.tail = s, c.tail
		rest.length = c.length - n
		if prev == nil {
			c.head, c.tail = nil, nil
		} else {
			prev.next = nil
			c.tail = prev
		}
		c.length = n
		return rest
	}
	// Split inside s: the two halves share s.buf read-only.
	right := &seg{buf: s.buf, off: s.off + within, n: s.n - within, ro: true, next: s.next}
	s.n = within
	s.ro = true
	s.next = nil
	rest.head = right
	if right.next == nil {
		rest.tail = right
	} else {
		rest.tail = c.tail
	}
	rest.length = c.length - n
	c.tail = s
	c.length = n
	return rest
}

// CopyRegion returns a new chain viewing bytes [off, off+n) of c. The new
// chain shares backing storage with c (both sides become read-only over
// the shared windows), making retransmission copies cheap as in m_copym.
func (c *Chain) CopyRegion(off, n int) *Chain {
	if off < 0 || n < 0 || off+n > c.length {
		panic(fmt.Sprintf("mbuf: CopyRegion(%d, %d) out of range (len %d)", off, n, c.length))
	}
	out := New()
	if n == 0 {
		return out
	}
	s := c.head
	// Skip to the segment containing off.
	for off >= s.n {
		off -= s.n
		s = s.next
	}
	for n > 0 {
		take := s.n - off
		if take > n {
			take = n
		}
		s.ro = true
		out.appendSeg(&seg{buf: s.buf, off: s.off + off, n: take, ro: true})
		n -= take
		off = 0
		s = s.next
	}
	return out
}

// ReadAt copies min(len(p), Len-off) bytes starting at offset off into p
// and returns the count (m_copydata).
func (c *Chain) ReadAt(p []byte, off int) int {
	if off < 0 {
		panic("mbuf: negative offset")
	}
	if off >= c.length {
		return 0
	}
	s := c.head
	for off >= s.n {
		off -= s.n
		s = s.next
	}
	total := 0
	for s != nil && total < len(p) {
		n := copy(p[total:], s.buf[s.off+off:s.off+s.n])
		total += n
		off = 0
		s = s.next
	}
	return total
}

// Bytes returns a flattened copy of the chain's contents.
func (c *Chain) Bytes() []byte {
	out := make([]byte, c.length)
	c.ReadAt(out, 0)
	return out
}

// Pullup ensures the first n bytes of the chain are contiguous and returns
// a slice viewing them. It panics if the chain is shorter than n. The
// returned slice must be treated as read-only if the chain has been
// shared.
func (c *Chain) Pullup(n int) []byte {
	if n > c.length {
		panic(fmt.Sprintf("mbuf: Pullup(%d) on chain of %d bytes", n, c.length))
	}
	if n == 0 {
		return nil
	}
	if c.head.n >= n {
		s := c.head
		return s.buf[s.off : s.off+n]
	}
	// Coalesce the prefix into one fresh segment.
	buf := make([]byte, LeadingSpace+n)
	c.ReadAt(buf[LeadingSpace:], 0)
	ns := &seg{buf: buf, off: LeadingSpace, n: n}
	// Drop the first n bytes from the old chain and attach the remainder.
	rest := *c
	rest.TrimFront(n)
	ns.next = rest.head
	c.head = ns
	if rest.head == nil {
		c.tail = ns
	} else {
		c.tail = rest.tail
	}
	// length unchanged
	return ns.buf[ns.off : ns.off+n]
}

// Clone returns a read-only-sharing copy of the entire chain.
func (c *Chain) Clone() *Chain {
	if c.length == 0 {
		return New()
	}
	return c.CopyRegion(0, c.length)
}

// Writer returns a writable flat view of the first n bytes if they are
// contiguous and not shared; otherwise it returns nil. Header fixups
// (for example checksum patching) use this to avoid copies.
func (c *Chain) Writer(n int) []byte {
	s := c.head
	if s == nil || s.ro || s.n < n {
		return nil
	}
	return s.buf[s.off : s.off+n]
}
