package mbuf

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// The copy-on-write contract: WriteAt on a chain whose storage is
// shared (a RecvPeek view, a retransmit-queue reference, a Clone) must
// unshare the touched segments, mutating only the written chain. Every
// other chain viewing the same storage keeps its original bytes.

func TestWriteAtPrivateMutatesInPlace(t *testing.T) {
	c := FromBytesCopy([]byte("hello world"))
	c.WriteAt([]byte("WORLD"), 6)
	if got := string(c.Bytes()); got != "hello WORLD" {
		t.Fatalf("got %q", got)
	}
	c.Release()
}

func TestWriteAtSharedCopiesOnWrite(t *testing.T) {
	// The retransmit-queue shape: the socket holds the chain, a segment
	// in flight holds a CopyRegion of the same storage.
	c := FromBytesCopy([]byte("in-flight-segment"))
	inflight := c.CopyRegion(0, c.Len())
	c.WriteAt([]byte("OVERWRITTEN"), 0)
	if got := string(c.Bytes()); got != "OVERWRITTENegment" {
		t.Fatalf("written chain = %q", got)
	}
	if got := string(inflight.Bytes()); got != "in-flight-segment" {
		t.Fatalf("in-flight view corrupted: %q", got)
	}
	c.Release()
	inflight.Release()
}

func TestWriteAtAcrossSegmentBoundary(t *testing.T) {
	c := New()
	c.AppendBytes([]byte("aaaa"))
	c.AppendBytes([]byte("bbbb"))
	c.AppendBytes([]byte("cccc"))
	view := c.CopyRegion(0, c.Len())
	c.WriteAt([]byte("XXXX"), 2) // spans segments 1 and 2
	if got := string(c.Bytes()); got != "aaXXXXbbcccc" {
		t.Fatalf("chain = %q", got)
	}
	if got := string(view.Bytes()); got != "aaaabbbbcccc" {
		t.Fatalf("shared view corrupted: %q", got)
	}
	c.Release()
	view.Release()
}

func TestWriteAtAliasSegmentUnshares(t *testing.T) {
	// An aliased segment (FromBytes / AppendAlias) is never writable:
	// WriteAt must copy it into pooled storage, leaving the caller's
	// slice untouched.
	orig := []byte("do-not-touch")
	c := FromBytes(orig)
	c.WriteAt([]byte("MUTATED"), 0)
	if string(orig) != "do-not-touch" {
		t.Fatalf("aliased app memory mutated: %q", orig)
	}
	if got := string(c.Bytes()); got != "MUTATEDtouch" {
		t.Fatalf("chain = %q", got)
	}
	c.Release()
}

func TestWriteAtOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c := FromBytesCopy([]byte("short"))
	defer c.Release()
	c.WriteAt([]byte("too long for this"), 2)
}

// TestQuickWriteAtCopyOnWrite is the randomized regression for the
// RecvPeek-view scenario: random chains, random shared views standing
// in for retransmit-queue references, random WriteAt range specs. The
// shared views must always read back their original bytes, and the
// written chain must match a flat-slice model.
func TestQuickWriteAtCopyOnWrite(t *testing.T) {
	f := func(seed int64, nviews, writes uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		// Build a chain of 1..8 segments with mixed storage.
		c := New()
		for i, nseg := 0, 1+rng.Intn(8); i < nseg; i++ {
			data := make([]byte, 1+rng.Intn(600))
			rng.Read(data)
			if rng.Intn(3) == 0 {
				c.AppendAlias(append([]byte{}, data...))
			} else {
				c.AppendBytes(data)
			}
		}
		model := append([]byte{}, c.Bytes()...)

		// Take shared views over random regions ("segments in flight").
		type view struct {
			ch   *Chain
			want []byte
		}
		views := make([]view, 0, nviews%8)
		for i := 0; i < int(nviews%8); i++ {
			off := rng.Intn(c.Len())
			n := 1 + rng.Intn(c.Len()-off)
			v := c.CopyRegion(off, n)
			views = append(views, view{ch: v, want: append([]byte{}, model[off:off+n]...)})
		}

		// Random writes into the chain (the app scribbling on its view).
		for i := 0; i < int(writes%16); i++ {
			off := rng.Intn(c.Len())
			n := rng.Intn(c.Len() - off)
			p := make([]byte, n)
			rng.Read(p)
			c.WriteAt(p, off)
			copy(model[off:], p)
		}

		if !bytes.Equal(c.Bytes(), model) {
			return false
		}
		for _, v := range views {
			if !bytes.Equal(v.ch.Bytes(), v.want) {
				return false
			}
			v.ch.Release()
		}
		c.Release()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
