// Package core implements the paper's contribution: protocol service
// decomposition. Network protocols are split between
//
//   - a protocol library linked into each application (Library), which
//     owns the critical path — send and receive run entirely in the
//     application's address space against a migrated session, reading
//     packets from a per-session kernel packet-filter endpoint — and
//
//   - an operating-system server (Server), which owns everything else:
//     the port namespace, connection establishment and teardown, shared
//     metastate (ARP, routes) with library-cache invalidation callbacks,
//     session migration, the select cooperation, fork support, orphaned-
//     session abort on process death, and exceptional packets (ARP
//     traffic, IP fragments, anything no session filter claims).
//
// Table 1 of the paper maps the socket interface onto this split; the
// Library and Server types implement that table.
package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/costs"
	"repro/internal/kern"
	"repro/internal/metrics"
	"repro/internal/offload"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/stack"
	"repro/internal/trace"
	"repro/internal/wire"
)

// SessionID names a network session in the server's tables.
type SessionID int64

// sessionLoc records which address space currently manages a session.
type sessionLoc int

const (
	atServer sessionLoc = iota
	atApp
)

// session is the server's record of one network session (the 3-tuple plus
// management state). The server tracks every session for its whole
// lifetime, even while the application manages the protocol.
type session struct {
	id     SessionID
	proto  uint8
	loc    sessionLoc
	local  stack.Addr
	remote stack.Addr

	owner *Library // the application currently managing it (loc == atApp)
	refs  int      // descriptor references across processes

	srvSock  *stack.Socket  // server-side socket (loc == atServer)
	ep       *kern.Endpoint // application delivery endpoint (loc == atApp)
	filterID int            // session packet filter (0 = none)

	listening   bool
	portHeld    bool        // core must release the port when the session dies
	closing     bool        // close handshake running at the server
	pendingOpts map[int]int // socket options set before the socket exists
}

// System is one host running the decomposed architecture: a kernel with
// the packet-filter interface, one OS server, and any number of
// application libraries.
type System struct {
	Host   *kern.Host
	Server *Server

	// LibProf prices the protocol libraries; the host's kernel-side
	// delivery costs come from the same profile.
	LibProf costs.Profile
	// SrvProf prices the OS server's stack (the UX server that backs the
	// decomposed system in the paper).
	SrvProf costs.Profile

	// Observer, when set, receives every protocol-layer charge made by
	// library stacks (Table 4 instrumentation).
	Observer func(comp costs.Component, d time.Duration)

	// Trace, when set, is the flight recorder for this system's core
	// events (sessions, ports, migration) and is propagated to the
	// kernel host, the server stack, and every library stack.
	Trace *trace.Recorder

	// metricsScope, when set by SetMetrics, is the host-level scope new
	// library stacks bind into at creation time.
	metricsScope *metrics.Scope

	// Routes, when set by SetRoutes, is the host's routing table, shared
	// by the OS server's stack and every library stack (the paper keeps
	// the authoritative table in the server; here the subnet's table is
	// shared read-only once topology construction is done).
	Routes *stack.RouteTable
}

// SetRoutes installs the host's routing table on the server stack and
// on every library stack, current and future. Call it before traffic
// flows (topology construction time).
func (sys *System) SetRoutes(rt *stack.RouteTable) {
	if rt == nil {
		return
	}
	sys.Routes = rt
	sys.Server.St.SetRoutes(rt)
	for _, lib := range sys.Server.libs {
		lib.St.SetRoutes(rt)
	}
}

// SetTrace attaches a flight recorder to the whole system: the kernel
// host's filter layer, the OS server's stack, and every library stack —
// both those already created and those created afterwards.
func (sys *System) SetTrace(r *trace.Recorder) {
	sys.Trace = r
	sys.Host.Trace = r
	sys.Server.St.SetTrace(r)
	for _, lib := range sys.Server.libs {
		lib.St.SetTrace(r)
	}
}

// traceOn reports whether core-layer tracing is live for this server.
func (srv *Server) traceOn() bool { return srv.sys.Trace.On(trace.LayerCore) }

// traceEmit records one core-layer event tagged with the host name.
func (srv *Server) traceEmit(e trace.Event, name, aux string, a0, a1 int64) {
	srv.sys.Trace.Emit(trace.LayerCore, e, srv.sys.Host.Name, name, aux, a0, a1, 0)
}

// protoName renders a transport protocol number for trace records.
func protoName(proto uint8) string {
	switch proto {
	case wire.ProtoTCP:
		return "tcp"
	case wire.ProtoUDP:
		return "udp"
	}
	return "proto?"
}

// sessName renders a session's flow for trace records.
func sessName(sess *session) string {
	if sess.remote.IsZero() {
		return fmt.Sprintf("%v:%d", sess.local.IP, sess.local.Port)
	}
	return fmt.Sprintf("%v:%d>%v:%d", sess.local.IP, sess.local.Port, sess.remote.IP, sess.remote.Port)
}

// Server is the operating-system server.
type Server struct {
	sys   *System
	Proc  *kern.Process
	St    *stack.Stack
	Ports *stack.LocalPorts
	svc   *kern.Service

	sessions map[SessionID]*session
	nextSID  SessionID
	libs     []*Library

	frags map[fragKey]*fragEntry

	// Stats.
	Migrations     metrics.Counter
	Returns        metrics.Counter
	OrphansAborted metrics.Counter
	FragForwards   metrics.Counter
	SessionsMade   metrics.Counter // sessions created (socket/accept)
	SessionsReaped metrics.Counter // sessions removed, orphan aborts included
	ConnSetups     metrics.Counter // TCP connections established (accept + connect)
	ConnTeardowns  metrics.Counter // established connections closed normally
}

const serverWorkers = 16

// New assembles a host running the decomposed architecture.
func New(s *sim.Sim, seg *simnet.Segment, name string, mac wire.MAC, ip wire.IPAddr, libProf, srvProf costs.Profile) *System {
	sys := &System{LibProf: libProf, SrvProf: srvProf}
	sys.Host = kern.NewHost(s, seg, name, mac, ip, libProf)

	srv := &Server{
		sys:      sys,
		Proc:     sys.Host.NewProcess("os-server"),
		Ports:    stack.NewLocalPorts(),
		sessions: make(map[SessionID]*session),
		nextSID:  1,
		frags:    make(map[fragKey]*fragEntry),
	}
	sys.Server = srv

	// The server's fallback endpoint: ARP, fragments, and anything no
	// session filter claims.
	ep := sys.Host.NewEndpoint(0)
	if _, err := ep.InstallProgram(kern.CatchAllProgram(), 0); err != nil {
		panic(err)
	}

	srv.St = stack.New(stack.Config{
		Sim:      s,
		Name:     name + ".os-server",
		LocalIP:  ip,
		LocalMAC: sys.Host.NIC.MAC(),
		Costs:    &sys.SrvProf.Costs,
		Charge: func(t *sim.Proc, tcp bool, comp costs.Component, n int) {
			pc := &sys.SrvProf.Costs.UDP
			if tcp {
				pc = &sys.SrvProf.Costs.TCP
			}
			sys.Host.ChargeProc(t, pc[comp].At(n))
		},
		Transmit: sys.Host.Transmit,
		Ports:    srv.Ports,
		// Packets already queued at the server when a session's filter
		// handoff happens must not be answered with RST/ICMP: the server
		// checks its session table first.
		OrphanFilter: func(proto uint8, local, remote stack.Addr) bool {
			return srv.appSessionMatches(proto, local.IP, local.Port, remote.IP, remote.Port)
		},
		// The host NIC's offload engine (when attached) serves every
		// stack on the host, the server's included.
		TSOMaxPayload:   offload.TSOFor(sys.Host.Prof),
		ChecksumOffload: sys.Host.Prof.Offload.Enabled,
	})
	// Library caches are invalidated whenever shared metastate changes.
	srv.St.ARP().OnChange = func(ip wire.IPAddr) {
		for _, lib := range srv.libs {
			lib.cache.Invalidate(ip)
		}
	}

	srv.Proc.GoDaemon("netin", func(t *sim.Proc) {
		for {
			pkt, ok := ep.Recv(t)
			if !ok {
				return
			}
			srv.input(t, pkt.Frame)
		}
	})
	srv.St.StartTimers(srv.Proc.GoDaemon)
	srv.svc = kern.NewService(srv.Proc, name+".proxy", serverWorkers, srv.handle)
	return sys
}

// input handles a frame that fell through to the server's endpoint.
// IP fragments destined for migrated sessions are intercepted and, once a
// datagram completes, re-injected through the kernel filter set so the
// session's filter can claim it (ports are only present in the first
// fragment — the paper's "exceptional packets" case). Everything else
// flows into the server stack.
func (srv *Server) input(t *sim.Proc, frame []byte) {
	eh, err := wire.UnmarshalEth(frame)
	if err == nil && eh.Type == wire.EtherTypeIPv4 {
		h, hl, herr := wire.UnmarshalIPv4(frame[wire.EthHeaderLen:])
		if herr == nil && h.IsFragment() && int(h.TotalLen) <= len(frame)-wire.EthHeaderLen {
			body := frame[wire.EthHeaderLen+hl : wire.EthHeaderLen+int(h.TotalLen)]
			switch srv.fragIntercept(t, eh, h, body) {
			case fragHeld, fragForwarded:
				return
			case fragPassthrough:
				// fall through to the server stack's own reassembly
			}
		}
	}
	srv.St.Input(t, frame)
}

type fragAction int

const (
	fragPassthrough fragAction = iota
	fragHeld
	fragForwarded
)

type fragKey struct {
	src, dst wire.IPAddr
	proto    uint8
	id       uint16
}

type fragEntry struct {
	frags   []fragPiece
	gotLast bool
	total   int
	ttl     int
}

type fragPiece struct {
	off  int
	data []byte
}

// fragIntercept collects fragments of datagrams destined for migrated
// sessions. A first fragment (which carries the ports) decides whether
// the datagram belongs to an application session; non-first fragments
// follow the decision made for their datagram.
func (srv *Server) fragIntercept(t *sim.Proc, eh wire.EthHeader, h wire.IPv4Header, body []byte) fragAction {
	key := fragKey{src: h.Src, dst: h.Dst, proto: h.Proto, id: h.ID}
	e, tracking := srv.frags[key]
	if !tracking {
		if h.FragOff != 0 {
			// Non-first fragment of a datagram we are not tracking: it is
			// the server stack's problem (either its own session, or an
			// ordering we do not handle — the stack's reassembly copes).
			return fragPassthrough
		}
		if len(body) < 4 {
			return fragPassthrough
		}
		dport := uint16(body[2])<<8 | uint16(body[3])
		if !srv.appSessionMatches(h.Proto, h.Dst, dport, h.Src, uint16(body[0])<<8|uint16(body[1])) {
			return fragPassthrough
		}
		e = &fragEntry{ttl: 30}
		srv.frags[key] = e
	}
	off := int(h.FragOff) * 8
	e.frags = append(e.frags, fragPiece{off: off, data: append([]byte(nil), body...)})
	if !h.MoreFragments() {
		e.gotLast = true
		e.total = off + len(body)
	}
	if !e.gotLast {
		return fragHeld
	}
	sort.Slice(e.frags, func(i, j int) bool { return e.frags[i].off < e.frags[j].off })
	full := make([]byte, e.total)
	covered := 0
	for _, f := range e.frags {
		if f.off > covered {
			return fragHeld // hole remains
		}
		if end := f.off + len(f.data); end > covered {
			copy(full[f.off:end], f.data)
			covered = end
		}
	}
	if covered < e.total {
		return fragHeld
	}
	delete(srv.frags, key)
	srv.FragForwards.Inc()

	// Rebuild an unfragmented frame and push it back through the kernel
	// filter set; the session's own filter matches it now.
	rebuilt := make([]byte, wire.EthHeaderLen+wire.IPv4HeaderLen+len(full))
	eh.Marshal(rebuilt)
	h.TotalLen = uint16(wire.IPv4HeaderLen + len(full))
	h.Flags, h.FragOff = 0, 0
	h.Marshal(rebuilt[wire.EthHeaderLen:])
	copy(rebuilt[wire.EthHeaderLen+wire.IPv4HeaderLen:], full)
	srv.sys.Host.Inject(rebuilt)
	return fragForwarded
}

// appSessionMatches reports whether a migrated session would claim the
// given flow.
func (srv *Server) appSessionMatches(proto uint8, localIP wire.IPAddr, localPort uint16, remoteIP wire.IPAddr, remotePort uint16) bool {
	for _, sess := range srv.sessions {
		if sess.proto != proto {
			continue
		}
		// Quiet while the application owns the session, and also during
		// a return migration: loc has flipped to atServer but the state
		// import has not landed yet (srvSock == nil), so segments racing
		// the hand-back must not be answered with RST.
		if sess.loc != atApp && !(sess.loc == atServer && sess.srvSock == nil) {
			continue
		}
		if sess.local.Port != localPort {
			continue
		}
		if !sess.remote.IsZero() && (sess.remote.IP != remoteIP || sess.remote.Port != remotePort) {
			continue
		}
		return true
	}
	return false
}

// newSession allocates a session record.
func (srv *Server) newSession(proto uint8) *session {
	sess := &session{id: srv.nextSID, proto: proto, refs: 1, loc: atServer}
	srv.nextSID++
	srv.sessions[sess.id] = sess
	srv.SessionsMade.Inc()
	if srv.traceOn() {
		srv.traceEmit(trace.EvSession, protoName(proto), "new", int64(sess.id), 0)
	}
	return sess
}

// pokeSelectors wakes every library's select machinery; sockets recheck
// readiness themselves (the proxy_status notification of Table 1).
func (srv *Server) pokeSelectors() {
	for _, lib := range srv.libs {
		lib.selCond.Broadcast()
	}
}

// watchServerSocket wires a server-located socket's status changes into
// session lifecycle management and the select cooperation.
func (srv *Server) watchServerSocket(sess *session) {
	sock := sess.srvSock
	sock.Notify = func() {
		srv.pokeSelectors()
		if sess.closing && stack.TCPStateOf(sock) == "CLOSED" {
			srv.reapSession(sess)
		}
	}
}

// reapSession releases everything a dead session held.
func (srv *Server) reapSession(sess *session) {
	if _, live := srv.sessions[sess.id]; !live {
		return
	}
	delete(srv.sessions, sess.id)
	srv.SessionsReaped.Inc()
	if sess.proto == wire.ProtoTCP && !sess.remote.IsZero() {
		srv.ConnTeardowns.Inc()
	}
	srv.dropAppSide(sess)
	if srv.traceOn() {
		srv.traceEmit(trace.EvConnTeardown, sessName(sess), "", int64(sess.id), 0)
	}
	if sess.portHeld && sess.local.Port != 0 {
		srv.Ports.Release(sess.proto, sess.local.Port)
		sess.portHeld = false
		if srv.traceOn() {
			srv.traceEmit(trace.EvPortOp, protoName(sess.proto), "release", int64(sess.local.Port), 0)
		}
	}
}

// dropAppSide removes the session's packet filter and application
// endpoint, so traffic falls back to the server's catch-all.
func (srv *Server) dropAppSide(sess *session) {
	if sess.ep != nil {
		sess.ep.Close() // also uninstalls the session filter
		sess.ep = nil
		sess.filterID = 0
	}
}

// Sessions returns the number of live sessions (tests and diagnostics).
func (srv *Server) Sessions() int { return len(srv.sessions) }
