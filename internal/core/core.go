package core
