package core_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/costs"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/socketapi"
	"repro/internal/wire"
)

// world is a two-host decomposed-architecture test rig.
type world struct {
	s    *sim.Sim
	seg  *simnet.Segment
	a, b *core.System
}

func newWorld(seed int64) *world {
	s := sim.New(seed)
	s.Deadline = sim.Time(30 * time.Minute)
	seg := simnet.NewSegment(s)
	return &world{
		s:   s,
		seg: seg,
		a:   core.New(s, seg, "A", wire.MAC{1}, wire.IP(10, 0, 0, 1), costs.DECLibrarySHMIPF(), costs.DECServerUX()),
		b:   core.New(s, seg, "B", wire.MAC{2}, wire.IP(10, 0, 0, 2), costs.DECLibrarySHMIPF(), costs.DECServerUX()),
	}
}

// TestTable1SessionMigration checks the paper's central claims about who
// manages a session when: UDP migrates at bind, TCP at connect/accept;
// close returns it to the server; data transfer never involves the
// server.
func TestTable1SessionMigration(t *testing.T) {
	w := newWorld(1)
	srvA, srvB := w.a.Server, w.b.Server

	done := false
	libB := w.b.NewLibrary("sink")
	libA := w.a.NewLibrary("source")
	w.s.Spawn("sink", func(p *sim.Proc) {
		ls, _ := libB.Socket(p, socketapi.SockStream)
		libB.Bind(p, ls, socketapi.SockAddr{Port: 5001})
		libB.Listen(p, ls, 1)
		// Listeners are server-managed: no migration yet.
		if srvB.Migrations.Value() != 0 {
			t.Errorf("B migrations before accept = %d", srvB.Migrations.Value())
		}
		fd, _, err := libB.Accept(p, ls)
		if err != nil {
			t.Error(err)
			return
		}
		// accept migrated the passively-opened session to the app.
		if srvB.Migrations.Value() != 1 {
			t.Errorf("B migrations after accept = %d", srvB.Migrations.Value())
		}
		buf := make([]byte, 4096)
		for {
			n, err := libB.Recv(p, fd, buf, 0)
			if err != nil || n == 0 {
				break
			}
		}
		libB.Close(p, fd)
		if srvB.Returns.Value() != 1 {
			t.Errorf("B returns after close = %d", srvB.Returns.Value())
		}
		libB.Close(p, ls)
		done = true
	})
	w.s.Spawn("source", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		fd, _ := libA.Socket(p, socketapi.SockStream)
		if err := libA.Connect(p, fd, socketapi.SockAddr{Addr: wire.IP(10, 0, 0, 2), Port: 5001}); err != nil {
			t.Error(err)
			return
		}
		if srvA.Migrations.Value() != 1 {
			t.Errorf("A migrations after connect = %d", srvA.Migrations.Value())
		}
		data := make([]byte, 32*1024)
		off := 0
		for off < len(data) {
			n, err := libA.Send(p, fd, data[off:], 0)
			if err != nil {
				t.Error(err)
				return
			}
			off += n
		}
		libA.Close(p, fd)
	})
	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("transfer incomplete")
	}
	// Close returned the sessions to the servers, which run the shutdown
	// handshake and TIME_WAIT there. Eventually every session record is
	// reaped (2MSL = 60 s).
	if err := w.s.RunFor(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	if n := srvA.Sessions(); n != 0 {
		t.Errorf("A server still tracks %d sessions after 2MSL", n)
	}
	if n := srvB.Sessions(); n != 0 {
		t.Errorf("B server still tracks %d sessions after 2MSL", n)
	}
}

// TestUDPMigratesAtBind checks Table 1's bind row.
func TestUDPMigratesAtBind(t *testing.T) {
	w := newWorld(2)
	lib := w.b.NewLibrary("app")
	w.s.Spawn("app", func(p *sim.Proc) {
		fd, _ := lib.Socket(p, socketapi.SockDgram)
		if w.b.Server.Migrations.Value() != 0 {
			t.Error("migrated before bind")
		}
		lib.Bind(p, fd, socketapi.SockAddr{Port: 9999})
		if w.b.Server.Migrations.Value() != 1 {
			t.Error("UDP session did not migrate at bind")
		}
		lib.Close(p, fd)
	})
	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
	if w.b.Server.Sessions() != 0 {
		t.Error("session not reaped after close")
	}
}

// TestPacketFilterIsolation is the paper's §3.4 security property: an
// application can only receive packets destined for its own sessions.
// Two applications on one host each bind a UDP port; traffic for one must
// never reach the other's protocol library.
func TestPacketFilterIsolation(t *testing.T) {
	w := newWorld(3)
	victim := w.b.NewLibrary("victim")
	snoop := w.b.NewLibrary("snoop")
	cli := w.a.NewLibrary("cli")
	gotVictim := 0

	w.s.Spawn("victim", func(p *sim.Proc) {
		fd, _ := victim.Socket(p, socketapi.SockDgram)
		victim.Bind(p, fd, socketapi.SockAddr{Port: 1000})
		buf := make([]byte, 100)
		for i := 0; i < 3; i++ {
			n, _, err := victim.RecvFrom(p, fd, buf, 0)
			if err != nil || n == 0 {
				t.Error("victim recv failed")
				return
			}
			gotVictim++
		}
	})
	w.s.Spawn("snoop", func(p *sim.Proc) {
		fd, _ := snoop.Socket(p, socketapi.SockDgram)
		snoop.Bind(p, fd, socketapi.SockAddr{Port: 1001})
		buf := make([]byte, 100)
		// Must time out: nothing is sent to port 1001.
		r, _, _ := snoop.Select(p, socketapi.NewFDSet(fd), nil, 5*time.Second)
		if len(r) != 0 {
			n, _, _ := snoop.RecvFrom(p, fd, buf, 0)
			t.Errorf("snoop received %d bytes of someone else's traffic", n)
		}
	})
	w.s.Spawn("cli", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		fd, _ := cli.Socket(p, socketapi.SockDgram)
		for i := 0; i < 3; i++ {
			cli.SendTo(p, fd, []byte("secret"), 0, socketapi.SockAddr{Addr: wire.IP(10, 0, 0, 2), Port: 1000})
			p.Sleep(time.Millisecond)
		}
	})
	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
	if gotVictim != 3 {
		t.Errorf("victim got %d datagrams, want 3", gotVictim)
	}
	// The snoop's library stack must have processed zero packets.
	if n := snoop.St.Stats.IPIn.Value(); n != 0 {
		t.Errorf("snoop's library stack saw %d packets", n)
	}
}

// TestProcessDeathAbortsSessions is the paper's unexpected-shutdown case:
// the server detects the death, aborts the connection with a RST, and
// quarantines the port against immediate rebinding.
func TestProcessDeathAbortsSessions(t *testing.T) {
	w := newWorld(4)
	libA := w.a.NewLibrary("dying")
	libB := w.b.NewLibrary("peer")
	var peerErr error
	var localPort uint16

	w.s.Spawn("peer", func(p *sim.Proc) {
		ls, _ := libB.Socket(p, socketapi.SockStream)
		libB.Bind(p, ls, socketapi.SockAddr{Port: 5001})
		libB.Listen(p, ls, 1)
		fd, _, err := libB.Accept(p, ls)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 100)
		for {
			n, err := libB.Recv(p, fd, buf, 0)
			if err != nil {
				peerErr = err
				return
			}
			if n == 0 {
				return
			}
		}
	})
	w.s.Spawn("dying", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		fd, _ := libA.Socket(p, socketapi.SockStream)
		if err := libA.Connect(p, fd, socketapi.SockAddr{Addr: wire.IP(10, 0, 0, 2), Port: 5001}); err != nil {
			t.Error(err)
			return
		}
		la, _ := libA.GetSockName(p, fd)
		localPort = la.Port
		libA.Send(p, fd, []byte("last words"), 0)
		p.Sleep(100 * time.Millisecond)
		// Die without closing anything.
		libA.ExitProcess(p)
	})
	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
	if err := w.s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(peerErr, socketapi.ErrConnReset) {
		t.Errorf("peer error = %v, want ECONNRESET from the server's abort", peerErr)
	}
	if w.a.Server.OrphansAborted.Value() != 1 {
		t.Errorf("orphans aborted = %d", w.a.Server.OrphansAborted.Value())
	}
	// The port is quarantined: rebinding must fail until 2MSL passes.
	lib2 := w.a.NewLibrary("rebinder")
	var early, late error
	w.s.Spawn("rebinder", func(p *sim.Proc) {
		fd, _ := lib2.Socket(p, socketapi.SockStream)
		early = lib2.Bind(p, fd, socketapi.SockAddr{Port: localPort})
		p.Sleep(70 * time.Second)
		fd2, _ := lib2.Socket(p, socketapi.SockStream)
		late = lib2.Bind(p, fd2, socketapi.SockAddr{Port: localPort})
	})
	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(early, socketapi.ErrAddrInUse) {
		t.Errorf("bind during quarantine = %v, want EADDRINUSE", early)
	}
	if late != nil {
		t.Errorf("bind after quarantine = %v, want success", late)
	}
}

// TestMetastateCaching checks §3.3: the library caches ARP entries from
// the server and the server invalidates them when they change or expire.
func TestMetastateCaching(t *testing.T) {
	w := newWorld(5)
	lib := w.a.NewLibrary("app")
	srvLib := w.b.NewLibrary("srvapp")
	w.s.Spawn("sink", func(p *sim.Proc) {
		fd, _ := srvLib.Socket(p, socketapi.SockDgram)
		srvLib.Bind(p, fd, socketapi.SockAddr{Port: 7})
		buf := make([]byte, 100)
		for i := 0; i < 4; i++ {
			srvLib.RecvFrom(p, fd, buf, 0)
		}
	})
	w.s.Spawn("app", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		fd, _ := lib.Socket(p, socketapi.SockDgram)
		dst := socketapi.SockAddr{Addr: wire.IP(10, 0, 0, 2), Port: 7}
		for i := 0; i < 4; i++ {
			if _, err := lib.SendTo(p, fd, []byte("x"), 0, dst); err != nil {
				t.Error(err)
				return
			}
			p.Sleep(time.Millisecond)
		}
	})
	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
	c := lib.Cache()
	if c.Misses != 1 {
		t.Errorf("cache misses = %d, want exactly 1 (first send)", c.Misses)
	}
	if c.Hits < 3 {
		t.Errorf("cache hits = %d, want >= 3", c.Hits)
	}
	// Let the server's ARP entry expire; the invalidation callback must
	// clear the library's cached copy.
	if err := w.s.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if c.Invalidated == 0 {
		t.Error("no cache invalidation after server ARP expiry")
	}
}

// TestFragmentForwarding: fragments of a large datagram for a migrated
// UDP session land at the server (ports are only in the first fragment);
// the server reassembles and re-injects so the session filter claims the
// whole datagram.
func TestFragmentForwarding(t *testing.T) {
	w := newWorld(6)
	libB := w.b.NewLibrary("bigsink")
	libA := w.a.NewLibrary("bigsource")
	const size = 5000
	payload := make([]byte, size)
	w.s.Rand().Read(payload)
	var got []byte
	w.s.Spawn("bigsink", func(p *sim.Proc) {
		fd, _ := libB.Socket(p, socketapi.SockDgram)
		libB.SetSockOpt(p, fd, socketapi.SoRcvBuf, 16384)
		libB.Bind(p, fd, socketapi.SockAddr{Port: 2000})
		buf := make([]byte, 9000)
		n, _, err := libB.RecvFrom(p, fd, buf, 0)
		if err != nil {
			t.Error(err)
			return
		}
		got = buf[:n]
	})
	w.s.Spawn("bigsource", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		fd, _ := libA.Socket(p, socketapi.SockDgram)
		if _, err := libA.SendTo(p, fd, payload, 0, socketapi.SockAddr{Addr: wire.IP(10, 0, 0, 2), Port: 2000}); err != nil {
			t.Error(err)
		}
	})
	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("fragmented datagram corrupted: %d bytes", len(got))
	}
	if w.b.Server.FragForwards.Value() != 1 {
		t.Errorf("server forwarded %d reassembled datagrams, want 1", w.b.Server.FragForwards.Value())
	}
}

// TestZeroCopyAPI exercises the paper's §4.2 NEWAPI on the library
// implementation.
func TestZeroCopyAPI(t *testing.T) {
	w := newWorld(7)
	libB := w.b.NewLibrary("zsink")
	libA := w.a.NewLibrary("zsource")
	const total = 64 * 1024
	payload := make([]byte, total)
	w.s.Rand().Read(payload)
	var got bytes.Buffer
	w.s.Spawn("zsink", func(p *sim.Proc) {
		ls, _ := libB.Socket(p, socketapi.SockStream)
		libB.Bind(p, ls, socketapi.SockAddr{Port: 5001})
		libB.Listen(p, ls, 1)
		fd, _, err := libB.Accept(p, ls)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			view, _, err := libB.RecvZC(p, fd, 16384, 0)
			if err != nil {
				t.Error(err)
				return
			}
			if len(view) == 0 {
				break
			}
			got.Write(view)
		}
		libB.Close(p, fd)
	})
	w.s.Spawn("zsource", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		fd, _ := libA.Socket(p, socketapi.SockStream)
		if err := libA.Connect(p, fd, socketapi.SockAddr{Addr: wire.IP(10, 0, 0, 2), Port: 5001}); err != nil {
			t.Error(err)
			return
		}
		off := 0
		for off < total {
			end := off + 8192
			if end > total {
				end = total
			}
			n, err := libA.SendZC(p, fd, payload[off:end], 0)
			if err != nil {
				t.Error(err)
				return
			}
			off += n
		}
		libA.Close(p, fd)
	})
	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatalf("zero-copy stream corrupted: %d bytes", got.Len())
	}
}

// TestDataPathBypassesServer verifies the headline property: once a
// session has migrated, send/receive generate no proxy calls.
func TestDataPathBypassesServer(t *testing.T) {
	w := newWorld(8)
	libB := w.b.NewLibrary("sink")
	libA := w.a.NewLibrary("source")
	var rpcsAtTransferStart, rpcsAtTransferEnd int
	w.s.Spawn("sink", func(p *sim.Proc) {
		fd, _ := libB.Socket(p, socketapi.SockDgram)
		libB.Bind(p, fd, socketapi.SockAddr{Port: 7})
		buf := make([]byte, 1500)
		for i := 0; i < 50; i++ {
			libB.RecvFrom(p, fd, buf, 0)
		}
	})
	w.s.Spawn("source", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		fd, _ := libA.Socket(p, socketapi.SockDgram)
		dst := socketapi.SockAddr{Addr: wire.IP(10, 0, 0, 2), Port: 7}
		// First send triggers implicit bind + ARP; let those settle.
		libA.SendTo(p, fd, []byte("warmup"), 0, dst)
		p.Sleep(10 * time.Millisecond)
		rpcsAtTransferStart = libA.ProxyCalls()
		for i := 0; i < 49; i++ {
			if _, err := libA.SendTo(p, fd, make([]byte, 1024), 0, dst); err != nil {
				t.Error(err)
				return
			}
			// Pace below the receiver's drain rate; UDP has no flow
			// control and an overrun would (correctly) drop datagrams.
			p.Sleep(2 * time.Millisecond)
		}
		rpcsAtTransferEnd = libA.ProxyCalls()
	})
	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
	if rpcsAtTransferEnd != rpcsAtTransferStart {
		t.Errorf("data transfer made %d proxy calls; the server must not be on the data path",
			rpcsAtTransferEnd-rpcsAtTransferStart)
	}
}
