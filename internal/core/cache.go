package core

import (
	"repro/internal/sim"
	"repro/internal/wire"
)

// MetaCache is the library's cache of shared protocol metastate (§3.3):
// ARP mappings (and, by extension, route decisions) owned by the
// operating-system server. Entries are warmed by session migration and by
// proxy_arp lookups; the server invalidates them through callbacks as
// they expire or change.
//
// MetaCache implements stack.Resolver. A hit costs nothing; a miss makes
// a blocking proxy call to the server. Misses only ever happen on
// application threads (a sendto to a brand-new peer) because migration
// warms the cache with the session peer's mapping before the library's
// receive path can need it.
type MetaCache struct {
	lib     *Library
	entries map[wire.IPAddr]wire.MAC

	Hits        int
	Misses      int
	Invalidated int
}

// NewMetaCache creates an empty cache bound to a library.
func NewMetaCache(lib *Library) *MetaCache {
	return &MetaCache{lib: lib, entries: make(map[wire.IPAddr]wire.MAC)}
}

// Insert warms the cache (session migration includes the peer's mapping).
func (c *MetaCache) Insert(ip wire.IPAddr, mac wire.MAC) {
	if mac == (wire.MAC{}) {
		return
	}
	c.entries[ip] = mac
}

// Invalidate drops an entry; the server calls this back when its
// authoritative table changes.
func (c *MetaCache) Invalidate(ip wire.IPAddr) {
	if _, ok := c.entries[ip]; ok {
		delete(c.entries, ip)
		c.Invalidated++
	}
}

// Len returns the number of cached entries.
func (c *MetaCache) Len() int { return len(c.entries) }

// ResolveOrQueue implements stack.Resolver.
func (c *MetaCache) ResolveOrQueue(t *sim.Proc, ip wire.IPAddr, emit func(mac wire.MAC)) (wire.MAC, bool) {
	if ip.IsBroadcast() {
		return wire.BroadcastMAC, true
	}
	if ip == c.lib.sys.Host.IP {
		return c.lib.sys.Host.NIC.MAC(), true
	}
	if mac, ok := c.entries[ip]; ok {
		c.Hits++
		return mac, true
	}
	c.Misses++
	rep, err := c.lib.proxy(t, "arp", pxARP{ip: ip}, 16)
	if err != nil {
		return wire.MAC{}, false // emit is never called; upper layers recover
	}
	mac := rep.(wire.MAC)
	c.entries[ip] = mac
	return mac, true
}
