package core

import (
	"repro/internal/metrics"
	"repro/internal/stack"
)

// SetMetrics attaches a registry scope (e.g. "host.alpha") to the whole
// decomposed system: kernel host counters, the OS server's core-layer
// counters and population gauges, the server stack, and every library
// stack — both those already created and those created afterwards.
func (sys *System) SetMetrics(hs *metrics.Scope) {
	sys.metricsScope = hs
	if hs == nil {
		return
	}
	sys.Host.SetMetrics(hs)

	srv := sys.Server
	cs := hs.Sub("core")
	cs.Counter("migrations", &srv.Migrations)
	cs.Counter("returns", &srv.Returns)
	cs.Counter("orphans_aborted", &srv.OrphansAborted)
	cs.Counter("frag_forwards", &srv.FragForwards)
	cs.Counter("sessions_made", &srv.SessionsMade)
	cs.Counter("sessions_reaped", &srv.SessionsReaped)
	cs.Counter("conn_setup", &srv.ConnSetups)
	cs.Counter("conn_teardown", &srv.ConnTeardowns)
	cs.Counter("port_reserves", &srv.Ports.Reserves)
	cs.Counter("port_releases", &srv.Ports.Releases)
	cs.GaugeFunc("sessions", func() int64 { return int64(len(srv.sessions)) })
	cs.GaugeFunc("ports_in_use", func() int64 { return int64(srv.Ports.Active()) })

	ss := hs.Sub("stack")
	srv.St.SetMetrics(ss.Sub("os-server"))
	for _, lib := range srv.libs {
		lib.St.SetMetrics(ss.Sub(lib.name + ".lib"))
	}
}

// Stacks returns every stack instance in the system — the OS server's
// first, then each library's in creation order — for netstat-style
// socket-table walks (each stack's rows carry its own name).
func (sys *System) Stacks() []*stack.Stack {
	out := []*stack.Stack{sys.Server.St}
	for _, lib := range sys.Server.libs {
		out = append(out, lib.St)
	}
	return out
}
