package core_test

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/socketapi"
	"repro/internal/wire"
)

// TestCooperativeSelectMixedSet is the exact scenario §3.2's cooperative
// interface exists for: one select covers a library-managed UDP socket
// AND a server-managed TCP listener. Readiness of either must wake the
// selector.
func TestCooperativeSelectMixedSet(t *testing.T) {
	w := newWorld(31)
	app := w.b.NewLibrary("mixed")
	cliTCP := w.a.NewLibrary("tcpclient")
	cliUDP := w.a.NewLibrary("udpclient")

	var firstReady, secondReady string

	w.s.Spawn("mixed", func(p *sim.Proc) {
		ufd, _ := app.Socket(p, socketapi.SockDgram)
		if err := app.Bind(p, ufd, socketapi.SockAddr{Port: 4000}); err != nil {
			t.Error(err)
			return
		}
		lfd, _ := app.Socket(p, socketapi.SockStream)
		if err := app.Bind(p, lfd, socketapi.SockAddr{Port: 4001}); err != nil {
			t.Error(err)
			return
		}
		app.Listen(p, lfd, 1)

		wait := func() string {
			r, _, err := app.Select(p, socketapi.NewFDSet(ufd, lfd), nil, 10*time.Second)
			if err != nil {
				t.Error(err)
				return "err"
			}
			switch {
			case r[ufd]:
				buf := make([]byte, 64)
				app.RecvFrom(p, ufd, buf, 0)
				return "udp"
			case r[lfd]:
				fd, _, err := app.Accept(p, lfd)
				if err != nil {
					t.Error(err)
					return "err"
				}
				app.Close(p, fd)
				return "tcp"
			}
			return "timeout"
		}
		// The UDP datagram arrives first (library-managed readiness),
		// then a TCP connection (server-managed readiness).
		firstReady = wait()
		secondReady = wait()
	})

	w.s.Spawn("udpclient", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond)
		fd, _ := cliUDP.Socket(p, socketapi.SockDgram)
		cliUDP.SendTo(p, fd, []byte("wake"), 0, socketapi.SockAddr{Addr: wire.IP(10, 0, 0, 2), Port: 4000})
	})
	w.s.Spawn("tcpclient", func(p *sim.Proc) {
		p.Sleep(200 * time.Millisecond)
		fd, _ := cliTCP.Socket(p, socketapi.SockStream)
		if err := cliTCP.Connect(p, fd, socketapi.SockAddr{Addr: wire.IP(10, 0, 0, 2), Port: 4001}); err != nil {
			t.Error(err)
			return
		}
		cliTCP.Close(p, fd)
	})

	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
	if firstReady != "udp" || secondReady != "tcp" {
		t.Fatalf("readiness order = %s, %s; want udp then tcp", firstReady, secondReady)
	}
}

// TestPostForkDataViaServer: after fork both processes reach the shared
// session through the OS server (Table 1's fork row), and data still
// flows correctly in both directions.
func TestPostForkDataViaServer(t *testing.T) {
	w := newWorld(32)
	parent := w.a.NewLibrary("parent")
	peer := w.b.NewLibrary("peer")

	var echoed []byte
	w.s.Spawn("peer", func(p *sim.Proc) {
		ls, _ := peer.Socket(p, socketapi.SockStream)
		peer.Bind(p, ls, socketapi.SockAddr{Port: 5001})
		peer.Listen(p, ls, 1)
		fd, _, err := peer.Accept(p, ls)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 64)
		for len(echoed) < 12 {
			n, err := peer.Recv(p, fd, buf, 0)
			if err != nil || n == 0 {
				t.Errorf("peer recv: n=%d err=%v", n, err)
				return
			}
			echoed = append(echoed, buf[:n]...)
		}
		// Send a reply that the forked CHILD will read via the server.
		peer.Send(p, fd, []byte("reply"), 0)
	})

	w.s.Spawn("parent", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		fd, _ := parent.Socket(p, socketapi.SockStream)
		if err := parent.Connect(p, fd, socketapi.SockAddr{Addr: wire.IP(10, 0, 0, 2), Port: 5001}); err != nil {
			t.Error(err)
			return
		}
		child, err := parent.Fork(p, "child")
		if err != nil {
			t.Error(err)
			return
		}
		// Both processes write on the shared session, through the server.
		if _, err := parent.Send(p, fd, []byte("parent"), 0); err != nil {
			t.Errorf("parent send: %v", err)
		}
		w.s.Spawn("child", func(cp *sim.Proc) {
			if _, err := child.Send(cp, fd, []byte("child!"), 0); err != nil {
				t.Errorf("child send: %v", err)
				return
			}
			buf := make([]byte, 64)
			n, err := child.Recv(cp, fd, buf, 0)
			if err != nil || string(buf[:n]) != "reply" {
				t.Errorf("child recv: %q %v", buf[:n], err)
			}
			child.Close(cp, fd)
			child.ExitProcess(cp)
		})
		p.Sleep(500 * time.Millisecond)
		parent.Close(p, fd)
	})

	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(echoed) != 12 {
		t.Fatalf("peer saw %d bytes, want 12 (parent+child writes)", len(echoed))
	}
	if w.a.Server.Returns.Value() != 1 {
		t.Fatalf("fork returns = %d, want 1", w.a.Server.Returns.Value())
	}
}

// TestSessionRefcountAcrossFork: the session record must survive until
// BOTH processes close their descriptors.
func TestSessionRefcountAcrossFork(t *testing.T) {
	w := newWorld(33)
	app := w.a.NewLibrary("app")
	peer := w.b.NewLibrary("peer")

	w.s.Spawn("peer", func(p *sim.Proc) {
		ls, _ := peer.Socket(p, socketapi.SockStream)
		peer.Bind(p, ls, socketapi.SockAddr{Port: 5001})
		peer.Listen(p, ls, 1)
		fd, _, err := peer.Accept(p, ls)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 16)
		for {
			n, err := peer.Recv(p, fd, buf, 0)
			if err != nil || n == 0 {
				break
			}
		}
		peer.Close(p, fd)
		peer.Close(p, ls)
	})
	w.s.Spawn("app", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		fd, _ := app.Socket(p, socketapi.SockStream)
		if err := app.Connect(p, fd, socketapi.SockAddr{Addr: wire.IP(10, 0, 0, 2), Port: 5001}); err != nil {
			t.Error(err)
			return
		}
		child, err := app.Fork(p, "child")
		if err != nil {
			t.Error(err)
			return
		}
		// Parent closes first: the session must stay usable by the child.
		if err := app.Close(p, fd); err != nil {
			t.Errorf("parent close: %v", err)
		}
		if _, err := child.Send(p, fd, []byte("still alive"), 0); err != nil {
			t.Errorf("child send after parent close: %v", err)
		}
		if err := child.Close(p, fd); err != nil {
			t.Errorf("child close: %v", err)
		}
	})
	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
	if err := w.s.RunFor(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	if n := w.a.Server.Sessions(); n != 0 {
		t.Fatalf("sessions after both closes + 2MSL = %d", n)
	}
}
