package core

import (
	"time"

	"repro/internal/filter"
	"repro/internal/kern"
	"repro/internal/sim"
	"repro/internal/socketapi"
	"repro/internal/stack"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Proxy RPC argument and reply types. These model the typed messages of
// the proxy interface in Table 1 of the paper.

type pxSocket struct{ typ int }

type pxBind struct {
	sid  SessionID
	addr stack.Addr
	lib  *Library
}

type pxBindReply struct {
	local stack.Addr
	ep    *kern.Endpoint // non-nil when the session migrated (UDP)
}

type pxConnect struct {
	sid   SessionID
	raddr stack.Addr
	lib   *Library
}

type pxConnectReply struct {
	local, remote stack.Addr
	state         *stack.TCPSessionState // TCP only
	ep            *kern.Endpoint
	remoteMAC     wire.MAC
}

type pxListen struct {
	sid     SessionID
	backlog int
}

type pxAccept struct {
	sid SessionID
	lib *Library
}

type pxAcceptReply struct {
	sid           SessionID
	local, remote stack.Addr
	state         *stack.TCPSessionState
	ep            *kern.Endpoint
	remoteMAC     wire.MAC
}

type pxReturn struct {
	sid   SessionID
	state *stack.TCPSessionState // nil for UDP
	close bool
}

type pxSession struct{ sid SessionID }

type pxStatus struct{ sids []SessionID }

type pxStatusReply struct{ readable, writable []bool }

type pxSend struct {
	sid SessionID
	iov [][]byte
	oob bool
	to  *stack.Addr
}

type pxRecv struct {
	sid       SessionID
	max       int
	oob, peek bool
}

type pxRecvReply struct {
	data []byte
	from stack.Addr
}

type pxDiscard struct {
	sid SessionID
	n   int
}

type pxSplice struct {
	dst, src SessionID
	n        int
}

type pxShutdown struct {
	sid SessionID
	how int
}

type pxOpt struct {
	sid        SessionID
	opt, value int
}

type pxARP struct{ ip wire.IPAddr }

type pxDeath struct {
	lib *Library
	tcp map[SessionID]*stack.TCPSessionState
	udp []SessionID
}

// handle dispatches one proxy call inside a server worker thread.
func (srv *Server) handle(t *sim.Proc, method string, args any) (any, error) {
	switch method {
	case "socket":
		a := args.(pxSocket)
		var proto uint8
		switch a.typ {
		case socketapi.SockStream:
			proto = wire.ProtoTCP
		case socketapi.SockDgram:
			proto = wire.ProtoUDP
		default:
			return nil, socketapi.ErrInvalid
		}
		return srv.newSession(proto).id, nil

	case "bind":
		a := args.(pxBind)
		sess, err := srv.get(a.sid)
		if err != nil {
			return nil, err
		}
		if sess.local.Port != 0 {
			return nil, socketapi.ErrInvalid
		}
		sock := srv.St.NewSocket(sess.proto)
		srv.applyPendingOpts(sess, sock)
		if err := srv.St.Bind(sock, a.addr); err != nil {
			return nil, err
		}
		sess.srvSock = sock
		sess.local = sock.LocalAddr()
		sess.local.IP = srv.St.LocalIP()
		if srv.traceOn() {
			srv.traceEmit(trace.EvPortOp, protoName(sess.proto), "bind", int64(sess.local.Port), int64(sess.id))
		}
		if sess.proto == wire.ProtoUDP {
			// UDP sessions migrate to the application at bind (Table 1).
			ep, err := srv.migrateUDP(sess, a.lib)
			if err != nil {
				return nil, err
			}
			return pxBindReply{local: sess.local, ep: ep}, nil
		}
		return pxBindReply{local: sess.local}, nil

	case "connect":
		a := args.(pxConnect)
		sess, err := srv.get(a.sid)
		if err != nil {
			return nil, err
		}
		return srv.connect(t, sess, a.raddr, a.lib)

	case "listen":
		a := args.(pxListen)
		sess, err := srv.get(a.sid)
		if err != nil {
			return nil, err
		}
		if sess.srvSock == nil || sess.proto != wire.ProtoTCP {
			return nil, socketapi.ErrInvalid
		}
		if err := srv.St.Listen(sess.srvSock, a.backlog); err != nil {
			return nil, err
		}
		sess.listening = true
		srv.watchServerSocket(sess)
		return nil, nil

	case "accept":
		a := args.(pxAccept)
		sess, err := srv.get(a.sid)
		if err != nil {
			return nil, err
		}
		if !sess.listening {
			return nil, socketapi.ErrInvalid
		}
		ns, err := srv.St.Accept(t, sess.srvSock)
		if err != nil {
			return nil, err
		}
		newSess := srv.newSession(wire.ProtoTCP)
		newSess.local = ns.LocalAddr()
		newSess.remote = ns.RemoteAddr()
		newSess.srvSock = ns
		srv.ConnSetups.Inc()
		if srv.traceOn() {
			srv.traceEmit(trace.EvConnSetup, sessName(newSess), "accept", int64(newSess.id), 0)
		}
		mac, _ := srv.St.ARP().WaitResolve(t, srv.St.NextHop(newSess.remote.IP), 10*time.Second)
		ep, state, err := srv.migrateTCP(t, newSess, a.lib)
		if err != nil {
			return nil, err
		}
		return pxAcceptReply{
			sid: newSess.id, local: newSess.local, remote: newSess.remote,
			state: state, ep: ep, remoteMAC: mac,
		}, nil

	case "return":
		a := args.(pxReturn)
		sess, err := srv.get(a.sid)
		if err != nil {
			return nil, err
		}
		return nil, srv.returnSession(t, sess, a.state, a.close)

	case "dup":
		a := args.(pxSession)
		sess, err := srv.get(a.sid)
		if err != nil {
			return nil, err
		}
		sess.refs++
		return nil, nil

	case "release":
		a := args.(pxSession)
		sess, err := srv.get(a.sid)
		if err != nil {
			return nil, err
		}
		sess.refs--
		if sess.refs > 0 {
			return nil, nil
		}
		return nil, srv.closeServerSession(t, sess)

	case "status":
		a := args.(pxStatus)
		rep := pxStatusReply{
			readable: make([]bool, len(a.sids)),
			writable: make([]bool, len(a.sids)),
		}
		for i, sid := range a.sids {
			sess, ok := srv.sessions[sid]
			if !ok {
				rep.readable[i], rep.writable[i] = true, true // error state: select returns ready
				continue
			}
			if sess.srvSock != nil {
				rep.readable[i] = sess.srvSock.Readable()
				rep.writable[i] = sess.srvSock.Writable()
			}
		}
		return rep, nil

	case "sessionSend":
		a := args.(pxSend)
		sess, err := srv.getServerLocated(a.sid)
		if err != nil {
			return nil, err
		}
		return srv.St.Send(t, sess.srvSock, a.iov, stack.SendOpts{OOB: a.oob, To: a.to})

	case "sessionRecv":
		a := args.(pxRecv)
		sess, err := srv.getServerLocated(a.sid)
		if err != nil {
			return nil, err
		}
		buf := make([]byte, a.max)
		n, from, _, err := srv.St.Recv(t, sess.srvSock, buf, stack.RecvOpts{OOB: a.oob, Peek: a.peek})
		if err != nil {
			return nil, err
		}
		return pxRecvReply{data: buf[:n], from: from}, nil

	case "sessionDiscard":
		a := args.(pxDiscard)
		sess, err := srv.getServerLocated(a.sid)
		if err != nil {
			return nil, err
		}
		return nil, srv.St.RecvRelease(t, sess.srvSock, a.n)

	case "sessionSplice":
		// Both sessions live in the server after their "return": the
		// pump runs entirely server-side, so forwarded payload bytes
		// move by reference and are never mapped into the application.
		a := args.(pxSplice)
		dstSess, err := srv.getServerLocated(a.dst)
		if err != nil {
			return nil, err
		}
		srcSess, err := srv.getServerLocated(a.src)
		if err != nil {
			return nil, err
		}
		return srv.St.Splice(t, dstSess.srvSock, srcSess.srvSock, a.n)

	case "sessionShutdown":
		a := args.(pxShutdown)
		sess, err := srv.getServerLocated(a.sid)
		if err != nil {
			return nil, err
		}
		return nil, srv.St.Shutdown(t, sess.srvSock, a.how)

	case "sessionSetOpt":
		a := args.(pxOpt)
		sess, err := srv.get(a.sid)
		if err != nil {
			return nil, err
		}
		if sess.srvSock != nil {
			return nil, srv.St.SetOption(sess.srvSock, a.opt, a.value)
		}
		switch a.opt {
		case socketapi.SoRcvBuf, socketapi.SoSndBuf:
			if a.value <= 0 {
				return nil, socketapi.ErrInvalid
			}
		case socketapi.SoReuseAddr, socketapi.TCPNoDelay, socketapi.SoKeepAlive:
		default:
			return nil, socketapi.ErrInvalid
		}
		if sess.pendingOpts == nil {
			sess.pendingOpts = make(map[int]int)
		}
		sess.pendingOpts[a.opt] = a.value
		return nil, nil

	case "sessionGetOpt":
		a := args.(pxOpt)
		sess, err := srv.get(a.sid)
		if err != nil {
			return nil, err
		}
		if sess.srvSock != nil {
			return srv.St.GetOption(sess.srvSock, a.opt)
		}
		if v, ok := sess.pendingOpts[a.opt]; ok {
			return v, nil
		}
		return defaultOpt(a.opt)

	case "arp":
		a := args.(pxARP)
		mac, ok := srv.St.ARP().WaitResolve(t, a.ip, 10*time.Second)
		if !ok {
			return nil, socketapi.ErrHostUnreach
		}
		return mac, nil

	case "deathNotice":
		a := args.(pxDeath)
		srv.deathNotice(t, a)
		return nil, nil
	}
	return nil, socketapi.ErrNotSupported
}

func (srv *Server) get(sid SessionID) (*session, error) {
	sess, ok := srv.sessions[sid]
	if !ok {
		return nil, socketapi.ErrBadFD
	}
	return sess, nil
}

func (srv *Server) getServerLocated(sid SessionID) (*session, error) {
	sess, err := srv.get(sid)
	if err != nil {
		return nil, err
	}
	if sess.loc != atServer || sess.srvSock == nil {
		return nil, socketapi.ErrInvalid
	}
	return sess, nil
}

func (srv *Server) applyPendingOpts(sess *session, sock *stack.Socket) {
	for opt, v := range sess.pendingOpts {
		srv.St.SetOption(sock, opt, v)
	}
}

func defaultOpt(opt int) (int, error) {
	switch opt {
	case socketapi.SoRcvBuf, socketapi.SoSndBuf:
		return 8 * 1024, nil
	case socketapi.SoReuseAddr, socketapi.TCPNoDelay, socketapi.SoKeepAlive:
		return 0, nil
	}
	return 0, socketapi.ErrInvalid
}

// connect performs the server side of an active open: name the endpoints,
// run the handshake in the server, then migrate the established session
// into the application.
func (srv *Server) connect(t *sim.Proc, sess *session, raddr stack.Addr, lib *Library) (any, error) {
	switch sess.proto {
	case wire.ProtoUDP:
		// Connect narrows a (possibly already migrated) UDP session to
		// one peer.
		if sess.local.Port == 0 {
			sock := srv.St.NewSocket(wire.ProtoUDP)
			srv.applyPendingOpts(sess, sock)
			if err := srv.St.Bind(sock, stack.Addr{}); err != nil {
				return nil, err
			}
			sess.srvSock = sock
			sess.local = sock.LocalAddr()
			sess.local.IP = srv.St.LocalIP()
			if _, err := srv.migrateUDP(sess, lib); err != nil {
				return nil, err
			}
		}
		sess.remote = raddr
		// Replace the session filter with one narrowed to the peer.
		if sess.ep != nil && sess.filterID != 0 {
			sess.ep.RemoveFilter(sess.filterID)
			fid, err := sess.ep.InstallFilter(filter.MatchSpec{
				Proto: wire.ProtoUDP, LocalIP: sess.local.IP, LocalPort: sess.local.Port,
				RemoteIP: raddr.IP, RemotePort: raddr.Port,
			}, sessionFilterPriority)
			if err != nil {
				return nil, err
			}
			sess.filterID = fid
		}
		mac, _ := srv.St.ARP().WaitResolve(t, srv.St.NextHop(raddr.IP), 10*time.Second)
		return pxConnectReply{local: sess.local, remote: sess.remote, ep: sess.ep, remoteMAC: mac}, nil

	case wire.ProtoTCP:
		if sess.loc != atServer {
			return nil, socketapi.ErrIsConn
		}
		if sess.srvSock == nil {
			sock := srv.St.NewSocket(wire.ProtoTCP)
			srv.applyPendingOpts(sess, sock)
			sess.srvSock = sock
		}
		if err := srv.St.Connect(t, sess.srvSock, raddr); err != nil {
			sess.srvSock = nil
			sess.local = stack.Addr{}
			return nil, err
		}
		sess.local = sess.srvSock.LocalAddr()
		sess.remote = sess.srvSock.RemoteAddr()
		srv.ConnSetups.Inc()
		if srv.traceOn() {
			srv.traceEmit(trace.EvConnSetup, sessName(sess), "connect", int64(sess.id), 0)
		}
		mac, _ := srv.St.ARP().WaitResolve(t, srv.St.NextHop(raddr.IP), 10*time.Second)
		ep, state, err := srv.migrateTCP(t, sess, lib)
		if err != nil {
			return nil, err
		}
		return pxConnectReply{local: sess.local, remote: sess.remote, state: state, ep: ep, remoteMAC: mac}, nil
	}
	return nil, socketapi.ErrNotSupported
}

const sessionFilterPriority = 10

// migrateUDP moves a bound UDP session into the application: install the
// session's packet filter, detach the server socket (keeping the port
// reservation alive in the namespace), and hand the endpoint over.
func (srv *Server) migrateUDP(sess *session, lib *Library) (*kern.Endpoint, error) {
	ep := srv.sys.Host.NewEndpoint(0)
	spec := filter.MatchSpec{Proto: wire.ProtoUDP, LocalIP: sess.local.IP, LocalPort: sess.local.Port}
	if !sess.remote.IsZero() {
		spec.RemoteIP, spec.RemotePort = sess.remote.IP, sess.remote.Port
	}
	fid, err := ep.InstallFilter(spec, sessionFilterPriority)
	if err != nil {
		ep.Close()
		return nil, err
	}
	srv.St.DropUDPSession(sess.srvSock)
	sess.srvSock = nil
	sess.ep = ep
	sess.filterID = fid
	sess.portHeld = true
	sess.loc = atApp
	sess.owner = lib
	srv.Migrations.Inc()
	if srv.traceOn() {
		srv.traceEmit(trace.EvMigrate, sessName(sess), "to-app", int64(sess.id), 0)
	}
	return ep, nil
}

// migrateTCP moves an established TCP session into the application. The
// packet filter is installed before the state is exported so no segment
// can fall between the two stacks.
func (srv *Server) migrateTCP(t *sim.Proc, sess *session, lib *Library) (*kern.Endpoint, *stack.TCPSessionState, error) {
	ep := srv.sys.Host.NewEndpoint(0)
	fid, err := ep.InstallFilter(filter.MatchSpec{
		Proto: wire.ProtoTCP, LocalIP: sess.local.IP, LocalPort: sess.local.Port,
		RemoteIP: sess.remote.IP, RemotePort: sess.remote.Port,
	}, sessionFilterPriority)
	if err != nil {
		ep.Close()
		return nil, nil, err
	}
	hadPort := sess.srvSock != nil && !sess.listening
	state, err := srv.St.ExportTCPSession(t, sess.srvSock)
	if err != nil {
		ep.Close()
		return nil, nil, err
	}
	// An actively-opened session reserved its own (possibly ephemeral)
	// port; an accepted session shares its listener's. Either way the
	// namespace entry survives migration, held by the server.
	if hadPort && sess.local.Port != 0 && srv.Ports.InUse(wire.ProtoTCP, sess.local.Port) {
		sess.portHeld = true
	}
	sess.srvSock = nil
	sess.ep = ep
	sess.filterID = fid
	sess.loc = atApp
	sess.owner = lib
	srv.Migrations.Inc()
	if srv.traceOn() {
		srv.traceEmit(trace.EvMigrate, sessName(sess), "to-app", int64(sess.id), 0)
	}
	return ep, state, nil
}

// returnSession migrates a session back from the application (Table 1's
// proxy_return): for close, the server runs the shutdown handshake and
// 2MSL wait; for fork, the server simply manages the session from now on.
func (srv *Server) returnSession(t *sim.Proc, sess *session, state *stack.TCPSessionState, closing bool) error {
	if sess.loc != atApp {
		return socketapi.ErrInvalid
	}
	srv.Returns.Inc()
	srv.dropAppSide(sess)
	sess.loc = atServer
	sess.owner = nil
	if srv.traceOn() {
		srv.traceEmit(trace.EvMigrate, sessName(sess), "to-server", int64(sess.id), 0)
	}
	switch sess.proto {
	case wire.ProtoUDP:
		if closing {
			srv.reapSession(sess)
			return nil
		}
		sess.srvSock = srv.St.AdoptUDPSession(sess.local, sess.remote)
		srv.watchServerSocket(sess)
		return nil
	case wire.ProtoTCP:
		if state == nil {
			return socketapi.ErrInvalid
		}
		sess.srvSock = srv.St.ImportTCPSession(t, state)
		srv.watchServerSocket(sess)
		if closing {
			sess.closing = true
			srv.St.Close(t, sess.srvSock)
			if stack.TCPStateOf(sess.srvSock) == "CLOSED" {
				srv.reapSession(sess)
			}
		}
		return nil
	}
	return socketapi.ErrNotSupported
}

// closeServerSession closes a server-located session once its last
// descriptor reference is gone.
func (srv *Server) closeServerSession(t *sim.Proc, sess *session) error {
	if sess.srvSock == nil {
		srv.reapSession(sess)
		return nil
	}
	sess.closing = true
	err := srv.St.Close(t, sess.srvSock)
	if sess.proto == wire.ProtoUDP || sess.listening || stack.TCPStateOf(sess.srvSock) == "CLOSED" {
		srv.reapSession(sess)
	}
	return err
}

// deathNotice handles the kernel's notification that a process died with
// live sessions (paper §3.2 "unexpected shutdown"): the server aborts the
// connections with resets and quarantines their ports so they cannot be
// rebound while stale segments may still arrive.
func (srv *Server) deathNotice(t *sim.Proc, a pxDeath) {
	for sid, state := range a.tcp {
		sess, ok := srv.sessions[sid]
		if !ok || sess.owner != a.lib {
			continue
		}
		srv.OrphansAborted.Inc()
		if srv.traceOn() {
			srv.traceEmit(trace.EvOrphanAbort, sessName(sess), "", int64(sid), 0)
		}
		srv.dropAppSide(sess)
		sock := srv.St.ImportTCPSession(t, state)
		srv.St.Abort(t, sock) // RST to the remote peer
		port := sess.local.Port
		held := sess.portHeld
		sess.portHeld = false // quarantine supersedes the plain release
		delete(srv.sessions, sid)
		srv.SessionsReaped.Inc()
		if held && port != 0 {
			srv.Ports.Release(wire.ProtoTCP, port)
			srv.Ports.Quarantine(wire.ProtoTCP, port)
			if srv.traceOn() {
				srv.traceEmit(trace.EvPortOp, "tcp", "quarantine", int64(port), 0)
			}
			srv.sys.Host.Sim.After(2*30*time.Second, func() {
				srv.Ports.Unquarantine(wire.ProtoTCP, port)
			})
		}
	}
	for _, sid := range a.udp {
		sess, ok := srv.sessions[sid]
		if !ok || sess.owner != a.lib {
			continue
		}
		srv.reapSession(sess)
	}
	// Unregister the dead library from metastate callbacks.
	for i, lib := range srv.libs {
		if lib == a.lib {
			srv.libs = append(srv.libs[:i], srv.libs[i+1:]...)
			break
		}
	}
}
