package core_test

import (
	"testing"

	"repro/internal/apitest"
	"repro/internal/core"
	"repro/internal/costs"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/socketapi"
	"repro/internal/wire"
)

func build(t *testing.T, seed int64) *apitest.Env {
	s := sim.New(seed)
	seg := simnet.NewSegment(s)
	ipA, ipB := wire.IP(10, 0, 0, 1), wire.IP(10, 0, 0, 2)
	sysA := core.New(s, seg, "A", wire.MAC{1}, ipA, costs.DECLibrarySHMIPF(), costs.DECServerUX())
	sysB := core.New(s, seg, "B", wire.MAC{2}, ipB, costs.DECLibrarySHMIPF(), costs.DECServerUX())
	return &apitest.Env{
		Sim:  s,
		NewA: func(name string) socketapi.API { return sysA.NewLibrary(name) },
		NewB: func(name string) socketapi.API { return sysB.NewLibrary(name) },
		IPA:  ipA,
		IPB:  ipB,
	}
}

func TestConformance(t *testing.T) {
	apitest.RunAll(t, build)
}

// buildOffload is the fourth receive architecture: the library profile
// with the simulated NIC offload engine (TSO/LRO/checksum/moderation)
// attached. The whole socket and chain conformance suite must behave
// identically behind the engine.
func buildOffload(t *testing.T, seed int64) *apitest.Env {
	s := sim.New(seed)
	seg := simnet.NewSegment(s)
	ipA, ipB := wire.IP(10, 0, 0, 1), wire.IP(10, 0, 0, 2)
	prof := costs.DECLibrarySHMIPFOffload()
	sysA := core.New(s, seg, "A", wire.MAC{1}, ipA, prof, costs.DECServerUX())
	sysB := core.New(s, seg, "B", wire.MAC{2}, ipB, prof, costs.DECServerUX())
	return &apitest.Env{
		Sim:  s,
		NewA: func(name string) socketapi.API { return sysA.NewLibrary(name) },
		NewB: func(name string) socketapi.API { return sysB.NewLibrary(name) },
		IPA:  ipA,
		IPB:  ipB,
	}
}

func TestConformanceOffload(t *testing.T) {
	apitest.RunAll(t, buildOffload)
}
