package core_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/socketapi"
	"repro/internal/wire"
)

// TestForkWhileNetworkPartitioned migrates a session back to the OS
// server while the network is down. Migration is a local hand-off
// between the library and the server on the same host, so it must
// succeed with the wire dead — and the in-flight data it carries must
// survive until the partition heals and the child's retransmissions can
// finally land. This is the worst ordering for migrate.go: the imported
// session's first tcpOutput transmits straight into the partition.
func TestForkWhileNetworkPartitioned(t *testing.T) {
	w := newWorld(53)
	w.s.Deadline = sim.Time(2 * time.Hour)
	inj := w.seg.Faults()

	const phase1, phase2 = 24 * 1024, 24 * 1024
	payload := make([]byte, phase1+phase2)
	w.s.Rand().Read(payload)
	var got bytes.Buffer

	sink := w.b.NewLibrary("sink")
	w.s.Spawn("sink", func(p *sim.Proc) {
		ls, _ := sink.Socket(p, socketapi.SockStream)
		sink.Bind(p, ls, socketapi.SockAddr{Port: 5001})
		sink.Listen(p, ls, 1)
		fd, _, err := sink.Accept(p, ls)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 4096)
		for {
			n, err := sink.Recv(p, fd, buf, 0)
			if err != nil {
				t.Errorf("sink recv: %v", err)
				return
			}
			if n == 0 {
				break
			}
			got.Write(buf[:n])
		}
		sink.Close(p, fd)
		sink.Close(p, ls)
	})

	healed := false
	src := w.a.NewLibrary("src")
	w.s.Spawn("src", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		fd, _ := src.Socket(p, socketapi.SockStream)
		if err := src.Connect(p, fd, socketapi.SockAddr{Addr: wire.IP(10, 0, 0, 2), Port: 5001}); err != nil {
			t.Error(err)
			return
		}
		send := func(api socketapi.API, data []byte) bool {
			for off := 0; off < len(data); {
				n, err := api.Send(p, fd, data[off:min(off+4096, len(data))], 0)
				if err != nil {
					t.Errorf("send: %v", err)
					return false
				}
				off += n
			}
			return true
		}
		if !send(src, payload[:phase1]) {
			return
		}
		// Cut the wire, then fork. The send buffer still holds
		// unacknowledged data that now cannot drain; all of it rides the
		// migration back to the server.
		part := inj.Partition([]string{"A"}, []string{"B"})
		child, err := src.Fork(p, "src-child")
		if err != nil {
			t.Errorf("fork under partition: %v", err)
			part.Heal()
			return
		}
		if w.a.Server.Returns.Value() != 1 {
			t.Errorf("returns after fork = %d, want 1", w.a.Server.Returns.Value())
		}
		// Heal while the child is retransmitting into the void; the
		// stream must then complete from the migrated state.
		w.s.After(300*time.Millisecond, func() {
			part.Heal()
			healed = true
		})
		if !send(child, payload[phase1:]) {
			return
		}
		child.Close(p, fd)
		src.Close(p, fd)
		child.ExitProcess(p)
	})

	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
	if !healed {
		t.Fatal("run finished before the partition healed")
	}
	if c := inj.TotalCounters(); c.PartDrops == 0 {
		t.Fatalf("partition never cut a frame: %+v", c)
	}
	if !bytes.Equal(got.Bytes(), payload) {
		i := 0
		for i < got.Len() && i < len(payload) && got.Bytes()[i] == payload[i] {
			i++
		}
		t.Fatalf("stream corrupted across partitioned fork: %d/%d bytes, first divergence at %d",
			got.Len(), len(payload), i)
	}
	if w.a.Server.Returns.Value() != 1 {
		t.Fatalf("returns = %d, want 1 (the fork)", w.a.Server.Returns.Value())
	}
}
