package core

import (
	"time"

	"repro/internal/costs"
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/offload"
	"repro/internal/sim"
	"repro/internal/socketapi"
	"repro/internal/stack"
	"repro/internal/wire"
)

// Library is the application-linked protocol library: the proxy of §3.2.
// It exports the standard socket interface; calls are handled locally
// (all send and receive variants, on migrated sessions), forwarded to
// the operating-system server (naming, establishment, teardown), or
// jointly implemented (select). One Library instance corresponds to one
// application address space.
type Library struct {
	sys  *System
	srv  *Server
	name string
	Proc *kern.Process
	St   *stack.Stack

	fds   map[int]*appSession
	next  int
	cache *MetaCache

	// selCond implements the library's half of the cooperative select:
	// local socket status changes and server proxy_status pokes both land
	// here.
	selCond sim.Cond

	// rxBusy gates migrations against in-flight input processing so a
	// session's state is never exported mid-update.
	rxBusy  int
	rxQuiet sim.Cond

	proxyCalls int
	exited     bool
}

// appSession is the library's view of one session.
type appSession struct {
	id       SessionID
	proto    uint8
	local    bool // managed locally (migrated in)
	returned bool // handed back to the server (post-fork): ops go via RPC
	sock     *stack.Socket
	ep       *kern.Endpoint
	laddr    stack.Addr
	raddr    stack.Addr
	listen   bool
}

var _ socketapi.API = (*Library)(nil)
var _ socketapi.ZeroCopyAPI = (*Library)(nil)
var _ socketapi.ChainAPI = (*Library)(nil)

// NewLibrary creates an application process with its protocol library.
func (sys *System) NewLibrary(name string) *Library {
	lib := &Library{
		sys:  sys,
		srv:  sys.Server,
		name: name,
		Proc: sys.Host.NewProcess(name),
		fds:  make(map[int]*appSession),
		next: 3,
	}
	lib.cache = NewMetaCache(lib)
	lib.St = stack.New(stack.Config{
		Sim:      sys.Host.Sim,
		Name:     sys.Host.Name + "." + name + ".lib",
		Trace:    sys.Trace,
		LocalIP:  sys.Host.IP,
		LocalMAC: sys.Host.NIC.MAC(),
		Costs:    &sys.LibProf.Costs,
		Charge: func(t *sim.Proc, tcp bool, comp costs.Component, n int) {
			pc := &sys.LibProf.Costs.UDP
			if tcp {
				pc = &sys.LibProf.Costs.TCP
			}
			d := pc[comp].At(n)
			if sys.Observer != nil && d > 0 {
				sys.Observer(comp, d)
			}
			sys.Host.ChargeProc(t, d)
		},
		Transmit: sys.Host.Transmit,
		Ports:    grantedPorts{}, // naming is always done by the server
		Routes:   sys.Routes,     // nil = default on-link table
		Resolver: lib.cache,
		// A library only sees its own sessions' packets; strays are
		// migration races, never protocol errors.
		QuietOrphans: true,
		// With an offload engine on the host NIC, libraries hand it
		// super-segments and skip software checksumming.
		TSOMaxPayload:   offload.TSOFor(sys.Host.Prof),
		ChecksumOffload: sys.Host.Prof.Offload.Enabled,
	})
	lib.St.StartTimers(lib.Proc.GoDaemon)
	sys.Server.libs = append(sys.Server.libs, lib)
	if sys.metricsScope != nil {
		lib.St.SetMetrics(sys.metricsScope.Sub("stack").Sub(name + ".lib"))
	}
	return lib
}

// grantedPorts satisfies the stack's PortAllocator interface for library
// stacks, which never allocate ports themselves: every local endpoint is
// named by the operating-system server before the library sees it.
type grantedPorts struct{}

func (grantedPorts) AllocEphemeral(uint8) (uint16, error) { return 0, socketapi.ErrAddrNotAvail }
func (grantedPorts) Reserve(uint8, uint16, bool) error    { return nil }
func (grantedPorts) Release(uint8, uint16)                {}

// proxy performs one RPC on the operating-system server, charging the
// round-trip IPC cost.
func (lib *Library) proxy(t *sim.Proc, method string, args any, approxBytes int) (any, error) {
	lib.proxyCalls++
	lib.sys.Host.ChargeProxyRPC(t, approxBytes)
	return lib.srv.svc.Call(t, method, args)
}

func (lib *Library) get(fd int) (*appSession, error) {
	s, ok := lib.fds[fd]
	if !ok {
		return nil, socketapi.ErrBadFD
	}
	return s, nil
}

func (lib *Library) installFD(s *appSession) int {
	fd := lib.next
	lib.next++
	lib.fds[fd] = s
	return fd
}

// startRx spawns the session's receive thread: it drains the session's
// packet filter endpoint into the library's protocol stack. This is the
// fast path of the paper — no operating-system involvement per packet.
func (lib *Library) startRx(s *appSession) {
	ep := s.ep
	lib.Proc.GoDaemon("rx", func(t *sim.Proc) {
		for {
			pkt, ok := ep.Recv(t)
			if !ok {
				return
			}
			lib.rxBusy++
			lib.St.Input(t, pkt.Frame)
			lib.rxBusy--
			if lib.rxBusy == 0 {
				lib.rxQuiet.Broadcast()
			}
		}
	})
}

// quiesce waits until no receive thread is mid-packet, so a migration
// captures consistent protocol state.
func (lib *Library) quiesce(t *sim.Proc) {
	for lib.rxBusy > 0 {
		lib.rxQuiet.Wait(t)
	}
}

// adoptTCP installs a migrated TCP session into the library stack.
func (lib *Library) adoptTCP(t *sim.Proc, s *appSession, state *stack.TCPSessionState, mac wire.MAC) {
	lib.cache.Insert(lib.St.NextHop(s.raddr.IP), mac)
	s.sock = lib.St.ImportTCPSession(t, state)
	s.sock.Notify = func() { lib.selCond.Broadcast() }
	s.local = true
	lib.startRx(s)
}

// Socket implements socketapi.API (Table 1: socket -> proxy_socket).
func (lib *Library) Socket(t *sim.Proc, typ int) (int, error) {
	rep, err := lib.proxy(t, "socket", pxSocket{typ: typ}, 16)
	if err != nil {
		return -1, err
	}
	var proto uint8 = wire.ProtoTCP
	if typ == socketapi.SockDgram {
		proto = wire.ProtoUDP
	}
	return lib.installFD(&appSession{id: rep.(SessionID), proto: proto}), nil
}

// Bind implements socketapi.API (Table 1: bind -> proxy_bind; UDP
// sessions migrate to the application).
func (lib *Library) Bind(t *sim.Proc, fd int, addr socketapi.SockAddr) error {
	s, err := lib.get(fd)
	if err != nil {
		return err
	}
	rep, err := lib.proxy(t, "bind", pxBind{sid: s.id, addr: stack.Addr{IP: addr.Addr, Port: addr.Port}, lib: lib}, 32)
	if err != nil {
		return err
	}
	r := rep.(pxBindReply)
	s.laddr = r.local
	if r.ep != nil {
		// The (null) UDP session state plus a packet filter port migrated
		// to us; manage the session locally from here on.
		s.ep = r.ep
		s.sock = lib.St.AdoptUDPSession(s.laddr, stack.Addr{})
		s.sock.Notify = func() { lib.selCond.Broadcast() }
		s.local = true
		lib.startRx(s)
	}
	return nil
}

// ensureBound gives an unbound UDP socket a server-named ephemeral port
// (the implicit bind of sendto on an unbound socket).
func (lib *Library) ensureBound(t *sim.Proc, s *appSession) error {
	if s.proto != wire.ProtoUDP || s.local || s.laddr.Port != 0 {
		return nil
	}
	rep, err := lib.proxy(t, "bind", pxBind{sid: s.id, addr: stack.Addr{}, lib: lib}, 32)
	if err != nil {
		return err
	}
	r := rep.(pxBindReply)
	s.laddr = r.local
	s.ep = r.ep
	s.sock = lib.St.AdoptUDPSession(s.laddr, stack.Addr{})
	s.sock.Notify = func() { lib.selCond.Broadcast() }
	s.local = true
	lib.startRx(s)
	return nil
}

// Connect implements socketapi.API (Table 1: connect -> proxy_connect;
// UDP and TCP sessions migrate to the application).
func (lib *Library) Connect(t *sim.Proc, fd int, addr socketapi.SockAddr) error {
	s, err := lib.get(fd)
	if err != nil {
		return err
	}
	raddr := stack.Addr{IP: addr.Addr, Port: addr.Port}
	rep, err := lib.proxy(t, "connect", pxConnect{sid: s.id, raddr: raddr, lib: lib}, 64)
	if err != nil {
		return err
	}
	r := rep.(pxConnectReply)
	s.laddr, s.raddr = r.local, r.remote
	switch s.proto {
	case wire.ProtoUDP:
		lib.cache.Insert(lib.St.NextHop(raddr.IP), r.remoteMAC)
		if s.sock != nil {
			// Rebind the local socket with the narrowed remote.
			lib.St.DropUDPSession(s.sock)
		}
		s.raddr = raddr
		s.ep = r.ep
		s.sock = lib.St.AdoptUDPSession(s.laddr, raddr)
		s.sock.Notify = func() { lib.selCond.Broadcast() }
		if !s.local {
			s.local = true
			lib.startRx(s)
		}
	case wire.ProtoTCP:
		s.ep = r.ep
		lib.adoptTCP(t, s, r.state, r.remoteMAC)
	}
	return nil
}

// Listen implements socketapi.API (Table 1: listen -> proxy_listen; the
// operating system awaits new connections).
func (lib *Library) Listen(t *sim.Proc, fd int, backlog int) error {
	s, err := lib.get(fd)
	if err != nil {
		return err
	}
	if _, err := lib.proxy(t, "listen", pxListen{sid: s.id, backlog: backlog}, 16); err != nil {
		return err
	}
	s.listen = true
	return nil
}

// Accept implements socketapi.API (Table 1: accept -> proxy_accept;
// the passively opened session migrates to the application once
// established).
func (lib *Library) Accept(t *sim.Proc, fd int) (int, socketapi.SockAddr, error) {
	s, err := lib.get(fd)
	if err != nil {
		return -1, socketapi.SockAddr{}, err
	}
	if !s.listen {
		return -1, socketapi.SockAddr{}, socketapi.ErrInvalid
	}
	rep, err := lib.proxy(t, "accept", pxAccept{sid: s.id, lib: lib}, 64)
	if err != nil {
		return -1, socketapi.SockAddr{}, err
	}
	r := rep.(pxAcceptReply)
	ns := &appSession{id: r.sid, proto: wire.ProtoTCP, laddr: r.local, raddr: r.remote, ep: r.ep}
	lib.adoptTCP(t, ns, r.state, r.remoteMAC)
	return lib.installFD(ns), socketapi.SockAddr{Addr: r.remote.IP, Port: r.remote.Port}, nil
}

// Send implements socketapi.API. All data movement on migrated sessions
// happens in this address space; the operating system is not involved.
func (lib *Library) Send(t *sim.Proc, fd int, b []byte, flags int) (int, error) {
	return lib.sendImpl(t, fd, [][]byte{b}, flags, nil, false)
}

// SendTo implements socketapi.API.
func (lib *Library) SendTo(t *sim.Proc, fd int, b []byte, flags int, to socketapi.SockAddr) (int, error) {
	return lib.sendImpl(t, fd, [][]byte{b}, flags, &to, false)
}

// SendMsg implements socketapi.API.
func (lib *Library) SendMsg(t *sim.Proc, fd int, iov [][]byte, flags int, to *socketapi.SockAddr) (int, error) {
	return lib.sendImpl(t, fd, iov, flags, to, false)
}

func (lib *Library) sendImpl(t *sim.Proc, fd int, iov [][]byte, flags int, to *socketapi.SockAddr, zerocpy bool) (int, error) {
	s, err := lib.get(fd)
	if err != nil {
		return 0, err
	}
	var dst *stack.Addr
	if to != nil {
		dst = &stack.Addr{IP: to.Addr, Port: to.Port}
	}
	if !s.local && s.proto == wire.ProtoUDP && !s.returned {
		// Fresh, unbound UDP socket: sendto binds it implicitly; the
		// server names the port and the (null) session migrates here.
		if err := lib.ensureBound(t, s); err != nil {
			return 0, err
		}
	}
	if !s.local {
		// Server-managed (listener, or returned after fork): route the
		// operation through the operating system.
		rep, err := lib.proxy(t, "sessionSend", pxSend{sid: s.id, iov: iov, oob: flags&socketapi.MsgOOB != 0, to: dst}, iovLen(iov))
		if err != nil {
			return 0, err
		}
		return rep.(int), nil
	}
	if err := lib.ensureBound(t, s); err != nil {
		return 0, err
	}
	return lib.St.Send(t, s.sock, iov, stack.SendOpts{
		OOB:      flags&socketapi.MsgOOB != 0,
		To:       dst,
		ZeroCopy: zerocpy,
	})
}

// Recv implements socketapi.API.
func (lib *Library) Recv(t *sim.Proc, fd int, b []byte, flags int) (int, error) {
	n, _, err := lib.RecvFrom(t, fd, b, flags)
	return n, err
}

// RecvFrom implements socketapi.API.
func (lib *Library) RecvFrom(t *sim.Proc, fd int, b []byte, flags int) (int, socketapi.SockAddr, error) {
	s, err := lib.get(fd)
	if err != nil {
		return 0, socketapi.SockAddr{}, err
	}
	if !s.local && s.proto == wire.ProtoUDP && !s.returned {
		if err := lib.ensureBound(t, s); err != nil {
			return 0, socketapi.SockAddr{}, err
		}
	}
	if !s.local {
		rep, err := lib.proxy(t, "sessionRecv", pxRecv{
			sid: s.id, max: len(b),
			oob: flags&socketapi.MsgOOB != 0, peek: flags&socketapi.MsgPeek != 0,
		}, 32)
		if err != nil {
			return 0, socketapi.SockAddr{}, err
		}
		r := rep.(pxRecvReply)
		n := copy(b, r.data)
		return n, socketapi.SockAddr{Addr: r.from.IP, Port: r.from.Port}, nil
	}
	n, from, _, err := lib.St.Recv(t, s.sock, b, stack.RecvOpts{
		OOB:  flags&socketapi.MsgOOB != 0,
		Peek: flags&socketapi.MsgPeek != 0,
	})
	return n, socketapi.SockAddr{Addr: from.IP, Port: from.Port}, err
}

// RecvMsg implements socketapi.API.
func (lib *Library) RecvMsg(t *sim.Proc, fd int, iov [][]byte, flags int) (int, socketapi.SockAddr, error) {
	total := 0
	var from socketapi.SockAddr
	for i, b := range iov {
		n, f, err := lib.RecvFrom(t, fd, b, flags)
		if i == 0 {
			from = f
		}
		total += n
		if err != nil {
			return total, from, err
		}
		if n < len(b) {
			break
		}
	}
	return total, from, nil
}

// Close implements socketapi.API: a clean shutdown migrates the session
// state back to the operating system, which follows the shutdown protocol
// there (FIN handshake, 2MSL wait).
func (lib *Library) Close(t *sim.Proc, fd int) error {
	s, err := lib.get(fd)
	if err != nil {
		return err
	}
	delete(lib.fds, fd)
	return lib.closeSession(t, s)
}

func (lib *Library) closeSession(t *sim.Proc, s *appSession) error {
	if !s.local {
		_, err := lib.proxy(t, "release", pxSession{sid: s.id}, 16)
		return err
	}
	lib.quiesce(t)
	switch s.proto {
	case wire.ProtoUDP:
		lib.St.DropUDPSession(s.sock)
		s.local = false
		_, err := lib.proxy(t, "return", pxReturn{sid: s.id, close: true}, 32)
		return err
	case wire.ProtoTCP:
		state, err := lib.St.ExportTCPSession(t, s.sock)
		if err != nil {
			// Connection already dead locally (reset or fully closed):
			// nothing to hand back but the record.
			s.local = false
			_, rerr := lib.proxy(t, "release", pxSession{sid: s.id}, 16)
			return rerr
		}
		s.local = false
		_, err = lib.proxy(t, "return", pxReturn{sid: s.id, state: state, close: true}, state.WireSize())
		return err
	}
	return socketapi.ErrNotSupported
}

// Shutdown implements socketapi.API.
func (lib *Library) Shutdown(t *sim.Proc, fd int, how int) error {
	s, err := lib.get(fd)
	if err != nil {
		return err
	}
	if !s.local {
		_, err := lib.proxy(t, "sessionShutdown", pxShutdown{sid: s.id, how: how}, 16)
		return err
	}
	return lib.St.Shutdown(t, s.sock, how)
}

// SetSockOpt implements socketapi.API.
func (lib *Library) SetSockOpt(t *sim.Proc, fd int, opt, value int) error {
	s, err := lib.get(fd)
	if err != nil {
		return err
	}
	if s.local {
		return lib.St.SetOption(s.sock, opt, value)
	}
	_, err = lib.proxy(t, "sessionSetOpt", pxOpt{sid: s.id, opt: opt, value: value}, 16)
	return err
}

// GetSockOpt implements socketapi.API.
func (lib *Library) GetSockOpt(t *sim.Proc, fd int, opt int) (int, error) {
	s, err := lib.get(fd)
	if err != nil {
		return 0, err
	}
	if s.local {
		return lib.St.GetOption(s.sock, opt)
	}
	rep, err := lib.proxy(t, "sessionGetOpt", pxOpt{sid: s.id, opt: opt}, 16)
	if err != nil {
		return 0, err
	}
	return rep.(int), nil
}

// GetSockName implements socketapi.API.
func (lib *Library) GetSockName(t *sim.Proc, fd int) (socketapi.SockAddr, error) {
	s, err := lib.get(fd)
	if err != nil {
		return socketapi.SockAddr{}, err
	}
	la := s.laddr
	if la.IP.IsZero() {
		la.IP = lib.sys.Host.IP
	}
	return socketapi.SockAddr{Addr: la.IP, Port: la.Port}, nil
}

// GetPeerName implements socketapi.API.
func (lib *Library) GetPeerName(t *sim.Proc, fd int) (socketapi.SockAddr, error) {
	s, err := lib.get(fd)
	if err != nil {
		return socketapi.SockAddr{}, err
	}
	if s.raddr.IsZero() {
		return socketapi.SockAddr{}, socketapi.ErrNotConn
	}
	return socketapi.SockAddr{Addr: s.raddr.IP, Port: s.raddr.Port}, nil
}

// Select implements socketapi.API through the cooperative interface of
// §3.2: locally managed sockets are checked in the library; sessions
// managed by the operating system are checked there through proxy_status;
// and when every descriptor is local, the operating system is never
// involved.
func (lib *Library) Select(t *sim.Proc, read, write socketapi.FDSet, timeout time.Duration) (socketapi.FDSet, socketapi.FDSet, error) {
	deadline := t.Now().Add(timeout)
	for {
		r, w := socketapi.FDSet{}, socketapi.FDSet{}
		var remoteSIDs []SessionID
		var remoteFDs []int
		var remoteWrite []bool
		check := func(fd int, wantWrite bool) {
			s, ok := lib.fds[fd]
			if !ok {
				return
			}
			if s.local {
				if !wantWrite && s.sock.Readable() {
					r[fd] = true
				}
				if wantWrite && s.sock.Writable() {
					w[fd] = true
				}
				return
			}
			remoteSIDs = append(remoteSIDs, s.id)
			remoteFDs = append(remoteFDs, fd)
			remoteWrite = append(remoteWrite, wantWrite)
		}
		for fd := range read {
			check(fd, false)
		}
		for fd := range write {
			check(fd, true)
		}
		if len(remoteSIDs) > 0 {
			rep, err := lib.proxy(t, "status", pxStatus{sids: remoteSIDs}, 16*len(remoteSIDs))
			if err != nil {
				return nil, nil, err
			}
			st := rep.(pxStatusReply)
			for i := range remoteSIDs {
				if remoteWrite[i] && st.writable[i] {
					w[remoteFDs[i]] = true
				}
				if !remoteWrite[i] && st.readable[i] {
					r[remoteFDs[i]] = true
				}
			}
		}
		if len(r) > 0 || len(w) > 0 || timeout == 0 {
			return r, w, nil
		}
		if timeout < 0 {
			lib.selCond.Wait(t)
			continue
		}
		remain := deadline.Sub(t.Now())
		if remain <= 0 {
			return r, w, nil
		}
		lib.selCond.WaitTimeout(t, remain)
	}
}

// Fork implements socketapi.API. Per Table 1, every migrated session is
// returned to the operating system before the fork; afterwards both
// processes reach their shared sessions through the server.
func (lib *Library) Fork(t *sim.Proc, childName string) (socketapi.API, error) {
	lib.quiesce(t)
	for _, s := range lib.fds {
		if !s.local {
			continue
		}
		switch s.proto {
		case wire.ProtoUDP:
			lib.St.DropUDPSession(s.sock)
			s.local = false
			s.returned = true
			s.sock = nil
			if _, err := lib.proxy(t, "return", pxReturn{sid: s.id}, 32); err != nil {
				return nil, err
			}
		case wire.ProtoTCP:
			state, err := lib.St.ExportTCPSession(t, s.sock)
			if err != nil {
				return nil, err
			}
			s.local = false
			s.returned = true
			s.sock = nil
			if _, err := lib.proxy(t, "return", pxReturn{sid: s.id, state: state}, state.WireSize()); err != nil {
				return nil, err
			}
		}
	}
	child := lib.sys.NewLibrary(childName)
	child.next = lib.next
	for fd, s := range lib.fds {
		if _, err := lib.proxy(t, "dup", pxSession{sid: s.id}, 16); err != nil {
			return nil, err
		}
		child.fds[fd] = &appSession{
			id: s.id, proto: s.proto, laddr: s.laddr, raddr: s.raddr,
			listen: s.listen, returned: s.returned,
		}
	}
	return child, nil
}

// ExitProcess implements socketapi.API: the unexpected-shutdown path. The
// kernel notifies the operating-system server of the death; the server
// scavenges the dead address space's session state, aborts the
// connections with resets, and quarantines their ports.
func (lib *Library) ExitProcess(t *sim.Proc) {
	if lib.exited {
		return
	}
	lib.exited = true
	lib.quiesce(t)
	notice := pxDeath{lib: lib, tcp: make(map[SessionID]*stack.TCPSessionState)}
	for _, s := range lib.fds {
		if !s.local {
			continue
		}
		switch s.proto {
		case wire.ProtoTCP:
			if state, err := lib.St.ExportTCPSession(t, s.sock); err == nil {
				notice.tcp[s.id] = state
			}
		case wire.ProtoUDP:
			lib.St.DropUDPSession(s.sock)
			notice.udp = append(notice.udp, s.id)
		}
	}
	lib.fds = make(map[int]*appSession)
	lib.St.StopTimers()
	lib.srv.svc.Call(t, "deathNotice", notice)
	lib.Proc.Exit()
}

// SendZC implements socketapi.ZeroCopyAPI: the paper's §4.2 modified
// interface. The protocol references the caller's buffer instead of
// copying it into the socket queue.
func (lib *Library) SendZC(t *sim.Proc, fd int, b []byte, flags int) (int, error) {
	return lib.sendImpl(t, fd, [][]byte{b}, flags, nil, true)
}

// RecvZC implements socketapi.ZeroCopyAPI: received data is returned as a
// protocol-owned view shared with the application.
func (lib *Library) RecvZC(t *sim.Proc, fd int, max int, flags int) ([]byte, socketapi.SockAddr, error) {
	s, err := lib.get(fd)
	if err != nil {
		return nil, socketapi.SockAddr{}, err
	}
	if !s.local {
		buf := make([]byte, max)
		n, from, err := lib.RecvFrom(t, fd, buf, flags)
		return buf[:n], from, err
	}
	n, from, view, err := lib.St.Recv(t, s.sock, make([]byte, 0, max), stack.RecvOpts{
		ZeroCopy: true,
		OOB:      flags&socketapi.MsgOOB != 0,
	})
	_ = n
	return view, socketapi.SockAddr{Addr: from.IP, Port: from.Port}, err
}

// SendChain implements socketapi.ChainAPI. On a migrated session the
// chain is surrendered to the library stack by reference — the true
// zero-copy path. On a server-managed session the chain must cross the
// RPC boundary, which is a copy; the gather list preserves the
// scatter-gather shape.
func (lib *Library) SendChain(t *sim.Proc, fd int, c *mbuf.Chain, flags int) (int, error) {
	if c == nil {
		c = mbuf.New()
	}
	s, err := lib.get(fd)
	if err != nil {
		c.Release()
		return 0, err
	}
	if !s.local && s.proto == wire.ProtoUDP && !s.returned {
		if err := lib.ensureBound(t, s); err != nil {
			c.Release()
			return 0, err
		}
	}
	if !s.local {
		var iov [][]byte
		for it := c.Iter(); ; {
			b, ok := it.Next()
			if !ok {
				break
			}
			iov = append(iov, b)
		}
		n := c.Len()
		rep, err := lib.proxy(t, "sessionSend", pxSend{sid: s.id, iov: iov, oob: flags&socketapi.MsgOOB != 0}, n)
		c.Release()
		if err != nil {
			return 0, err
		}
		return rep.(int), nil
	}
	if err := lib.ensureBound(t, s); err != nil {
		c.Release()
		return 0, err
	}
	return lib.St.SendChain(t, s.sock, c, stack.SendOpts{OOB: flags&socketapi.MsgOOB != 0})
}

// RecvPeek implements socketapi.ChainAPI. On a migrated session the
// view aliases the library stack's receive queue; only the declared
// ranges are materialized. On a server-managed session the data crosses
// the RPC boundary as a copy with identical semantics.
func (lib *Library) RecvPeek(t *sim.Proc, fd int, max int, ranges []socketapi.Range) (socketapi.RecvView, error) {
	s, err := lib.get(fd)
	if err != nil {
		return socketapi.RecvView{}, err
	}
	if !s.local && s.proto == wire.ProtoUDP && !s.returned {
		if err := lib.ensureBound(t, s); err != nil {
			return socketapi.RecvView{}, err
		}
	}
	if !s.local {
		m := max
		if m <= 0 {
			if m, err = lib.GetSockOpt(t, fd, socketapi.SoRcvBuf); err != nil {
				return socketapi.RecvView{}, err
			}
		}
		rep, err := lib.proxy(t, "sessionRecv", pxRecv{sid: s.id, max: m, peek: true}, 32)
		if err != nil {
			return socketapi.RecvView{}, err
		}
		r := rep.(pxRecvReply)
		view := mbuf.FromBytes(r.data)
		return socketapi.RecvView{
			Chain:  view,
			Copied: socketapi.MaterializeRanges(view, ranges),
			From:   socketapi.SockAddr{Addr: r.from.IP, Port: r.from.Port},
		}, nil
	}
	view, copied, from, err := lib.St.RecvPeek(t, s.sock, max, ranges)
	if err != nil {
		return socketapi.RecvView{}, err
	}
	return socketapi.RecvView{
		Chain:  view,
		Copied: copied,
		From:   socketapi.SockAddr{Addr: from.IP, Port: from.Port},
	}, nil
}

// RecvRelease implements socketapi.ChainAPI.
func (lib *Library) RecvRelease(t *sim.Proc, fd int, n int) error {
	s, err := lib.get(fd)
	if err != nil {
		return err
	}
	if !s.local {
		_, err := lib.proxy(t, "sessionDiscard", pxDiscard{sid: s.id, n: n}, 16)
		return err
	}
	return lib.St.RecvRelease(t, s.sock, n)
}

// Splice implements socketapi.ChainAPI — the decomposed architecture's
// headline forwarding path. Both sessions are returned to the
// operating-system server (a "return" without close, exactly the fork
// migration), and the server splices its two sockets directly: from
// then on forwarded payload bytes flow server-side by reference and
// are never copied out to — or even mapped into — the application.
// After the call the sessions remain server-managed; subsequent
// operations go via RPC and close via release.
func (lib *Library) Splice(t *sim.Proc, dstFD, srcFD int, n int) (int, error) {
	dst, err := lib.get(dstFD)
	if err != nil {
		return 0, err
	}
	src, err := lib.get(srcFD)
	if err != nil {
		return 0, err
	}
	if dst.proto != wire.ProtoTCP || src.proto != wire.ProtoTCP {
		return 0, socketapi.ErrNotSupported
	}
	lib.quiesce(t)
	for _, s := range []*appSession{dst, src} {
		if !s.local {
			continue
		}
		state, err := lib.St.ExportTCPSession(t, s.sock)
		if err != nil {
			return 0, err
		}
		s.local = false
		s.returned = true
		s.sock = nil
		if _, err := lib.proxy(t, "return", pxReturn{sid: s.id, state: state}, state.WireSize()); err != nil {
			return 0, err
		}
	}
	rep, err := lib.proxy(t, "sessionSplice", pxSplice{dst: dst.id, src: src.id, n: n}, 32)
	if err != nil {
		return 0, err
	}
	return rep.(int), nil
}

func iovLen(iov [][]byte) int {
	n := 0
	for _, b := range iov {
		n += len(b)
	}
	return n
}

// Cache exposes the library's metastate cache (tests and diagnostics).
func (lib *Library) Cache() *MetaCache { return lib.cache }

// ProxyCalls returns the number of proxy RPCs this library has made.
func (lib *Library) ProxyCalls() int { return lib.proxyCalls }
