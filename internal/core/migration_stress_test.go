package core_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/socketapi"
	"repro/internal/wire"
)

// TestForkMidTransferUnderLoss is the hardest migration interaction: a
// bulk transfer is interrupted by fork — which returns the session to the
// OS server with unacknowledged data still in flight — on a lossy
// network, and then continues through the server. The byte stream must
// arrive intact: the migrated state (send queue, sequence numbers,
// retransmission obligations) has to survive the round trip between
// address spaces while segments are being lost and retransmitted.
func TestForkMidTransferUnderLoss(t *testing.T) {
	for _, loss := range []float64{0, 0.03} {
		loss := loss
		name := "clean"
		if loss > 0 {
			name = "lossy"
		}
		t.Run(name, func(t *testing.T) {
			w := newWorld(51)
			w.s.Deadline = sim.Time(2 * time.Hour)
			w.seg.Faults().SetDefaultRates(fault.Rates{Drop: loss})

			const phase1, phase2 = 32 * 1024, 16 * 1024
			payload := make([]byte, phase1+phase2)
			w.s.Rand().Read(payload)
			var got bytes.Buffer

			sink := w.b.NewLibrary("sink")
			w.s.Spawn("sink", func(p *sim.Proc) {
				ls, _ := sink.Socket(p, socketapi.SockStream)
				sink.Bind(p, ls, socketapi.SockAddr{Port: 5001})
				sink.Listen(p, ls, 1)
				fd, _, err := sink.Accept(p, ls)
				if err != nil {
					t.Error(err)
					return
				}
				buf := make([]byte, 4096)
				for {
					n, err := sink.Recv(p, fd, buf, 0)
					if err != nil {
						t.Errorf("sink recv: %v", err)
						return
					}
					if n == 0 {
						break
					}
					got.Write(buf[:n])
				}
				sink.Close(p, fd)
				sink.Close(p, ls)
			})

			src := w.a.NewLibrary("src")
			w.s.Spawn("src", func(p *sim.Proc) {
				p.Sleep(time.Millisecond)
				fd, _ := src.Socket(p, socketapi.SockStream)
				if err := src.Connect(p, fd, socketapi.SockAddr{Addr: wire.IP(10, 0, 0, 2), Port: 5001}); err != nil {
					t.Error(err)
					return
				}
				send := func(api socketapi.API, tp *sim.Proc, data []byte) bool {
					for off := 0; off < len(data); {
						n, err := api.Send(tp, fd, data[off:min(off+4096, len(data))], 0)
						if err != nil {
							t.Errorf("send: %v", err)
							return false
						}
						off += n
					}
					return true
				}
				// Phase 1 in the parent's protocol library.
				if !send(src, p, payload[:phase1]) {
					return
				}
				// Fork immediately: the send buffer very likely still holds
				// unacknowledged (and possibly unsent) data, all of which
				// must migrate back to the OS server intact.
				child, err := src.Fork(p, "src-child")
				if err != nil {
					t.Errorf("fork: %v", err)
					return
				}
				// Phase 2 from the child, routed through the server.
				if !send(child, p, payload[phase1:]) {
					return
				}
				child.Close(p, fd)
				src.Close(p, fd)
				child.ExitProcess(p)
			})

			if err := w.s.Run(); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), payload) {
				// Find the first divergence for a useful message.
				i := 0
				for i < got.Len() && i < len(payload) && got.Bytes()[i] == payload[i] {
					i++
				}
				t.Fatalf("stream corrupted across fork migration: %d/%d bytes, first divergence at %d",
					got.Len(), len(payload), i)
			}
			if w.a.Server.Returns.Value() != 1 {
				t.Fatalf("returns = %d, want 1 (the fork)", w.a.Server.Returns.Value())
			}
		})
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
