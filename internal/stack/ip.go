package stack

import (
	"bytes"
	"errors"
	"sort"
	"time"

	"repro/internal/costs"
	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/socketapi"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Route is one routing table entry.
type Route struct {
	Dest      wire.IPAddr
	PrefixLen int
	Gateway   wire.IPAddr // next hop; ignored when OnLink
	OnLink    bool        // destination is directly reachable
	Ifindex   int         // egress interface for multi-homed owners (routers)
}

// RouteTable is a longest-prefix-match IPv4 routing table. In the
// decomposed architecture the authoritative table lives in the
// operating-system server and libraries cache entries from it (§3.3).
// Router hosts reuse the same table, distinguishing egress interfaces
// through Ifindex.
type RouteTable struct {
	routes  []Route
	version int
}

// NewRouteTable returns an empty table.
func NewRouteTable() *RouteTable { return &RouteTable{} }

// Add installs a route and bumps the table version (which invalidates
// library caches). Hosts have a single interface, so the ifindex is 0.
func (rt *RouteTable) Add(dest wire.IPAddr, prefixLen int, gw wire.IPAddr, onLink bool) {
	rt.AddIf(dest, prefixLen, gw, onLink, 0)
}

// AddIf is Add with an explicit egress interface index (routers).
func (rt *RouteTable) AddIf(dest wire.IPAddr, prefixLen int, gw wire.IPAddr, onLink bool, ifindex int) {
	rt.routes = append(rt.routes, Route{Dest: dest.Mask(prefixLen), PrefixLen: prefixLen, Gateway: gw, OnLink: onLink, Ifindex: ifindex})
	sort.SliceStable(rt.routes, func(i, j int) bool {
		return rt.routes[i].PrefixLen > rt.routes[j].PrefixLen
	})
	rt.version++
}

// Version returns the table's modification counter.
func (rt *RouteTable) Version() int { return rt.version }

// Lookup returns the next hop for dst: dst itself for on-link routes, the
// gateway otherwise.
func (rt *RouteTable) Lookup(dst wire.IPAddr) (nextHop wire.IPAddr, ok bool) {
	nextHop, _, ok = rt.LookupIf(dst)
	return nextHop, ok
}

// LookupIf is Lookup plus the matched route's egress interface index.
// Ties between equal-length prefixes go to the earlier Add (stable sort).
func (rt *RouteTable) LookupIf(dst wire.IPAddr) (nextHop wire.IPAddr, ifindex int, ok bool) {
	for _, r := range rt.routes {
		if dst.Mask(r.PrefixLen) == r.Dest {
			if r.OnLink {
				return dst, r.Ifindex, true
			}
			return r.Gateway, r.Ifindex, true
		}
	}
	return wire.IPAddr{}, 0, false
}

// Routes returns a copy of the table's entries in match-preference order
// (longest prefix first), for diagnostics and tests.
func (rt *RouteTable) Entries() []Route {
	out := make([]Route, len(rt.routes))
	copy(out, rt.routes)
	return out
}

// ipOutput encapsulates a transport segment and transmits it, fragmenting
// when it exceeds the MTU (ip_output). n is the transport payload size
// for cost accounting.
//
// The call owns seg: its segments are recycled before ipOutput returns,
// so callers may immediately reuse a scratch chain. ckOff is the offset
// of the transport checksum field within seg (wire.TCPChecksumOffset or
// wire.UDPChecksumOffset); the field must be marshaled as zero, and the
// checksum — pseudo-header included — is computed during the fused copy
// into the link frame. ckOff < 0 means seg is already internally
// checksummed (ICMP, raw).
func (st *Stack) ipOutput(t *sim.Proc, tcp bool, proto uint8, dst wire.IPAddr, seg *mbuf.Chain, n, ckOff int) error {
	st.charge(t, tcp, costs.CompIPOutput, n)
	st.Stats.IPOut.Inc()

	nextHop, ok := st.cfg.Routes.Lookup(dst)
	if !ok {
		seg.Release()
		return socketapi.ErrHostUnreach
	}

	total := wire.IPv4HeaderLen + seg.Len()
	// A TSO super-segment exceeds the MTU on purpose: it leaves as one
	// oversized frame for the NIC engine to slice, bypassing IP
	// fragmentation entirely.
	if total <= wire.EthMTU || (tcp && st.cfg.TSOMaxPayload > 0) {
		return st.emitIP(t, tcp, wire.IPv4Header{
			TotalLen: uint16(total),
			ID:       st.nextIPID(),
			TTL:      wire.DefaultTTL,
			Proto:    proto,
			Src:      st.cfg.LocalIP,
			Dst:      dst,
		}, nextHop, seg, n, ckOff)
	}

	// Fragment (slow path). The transport checksum covers the whole
	// datagram but only fragment zero carries the field, so it is
	// computed over the full chain and patched in before slicing.
	if ckOff >= 0 {
		st.patchTransportChecksum(&seg, proto, dst, ckOff)
	}

	// Fragment data lengths must be multiples of 8 bytes.
	id := st.nextIPID()
	maxData := (wire.EthMTU - wire.IPv4HeaderLen) &^ 7
	off := 0
	remaining := seg.Len()
	for remaining > 0 {
		take := maxData
		more := true
		if take >= remaining {
			take = remaining
			more = false
		}
		frag := seg.CopyRegion(off, take)
		h := wire.IPv4Header{
			TotalLen: uint16(wire.IPv4HeaderLen + take),
			ID:       id,
			TTL:      wire.DefaultTTL,
			Proto:    proto,
			Src:      st.cfg.LocalIP,
			Dst:      dst,
			FragOff:  uint16(off / 8),
		}
		if more {
			h.Flags = wire.IPFlagMF
		}
		st.Stats.IPFragsOut.Inc()
		if err := st.emitIP(t, tcp, h, nextHop, frag, take, -1); err != nil {
			seg.Release()
			return err
		}
		off += take
		remaining -= take
	}
	seg.Release()
	return nil
}

// patchTransportChecksum computes the transport checksum (pseudo-header
// plus the full segment) and writes it at ckOff within the chain,
// replacing *seg with a flat copy if the header bytes are shared.
func (st *Stack) patchTransportChecksum(seg **mbuf.Chain, proto uint8, dst wire.IPAddr, ckOff int) {
	st.Stats.SwChecksumBytes.Add(uint64((*seg).Len()))
	var ck wire.Checksummer
	ck.PseudoHeader(st.cfg.LocalIP, dst, proto, uint16((*seg).Len()))
	ck.AddChain(*seg)
	sum := ck.Sum()
	if proto == wire.ProtoUDP && sum == 0 {
		sum = 0xffff
	}
	hb := (*seg).Writer(ckOff + 2)
	if hb == nil {
		// Header bytes shared or fragmented across segments: take a
		// private flat copy (cold path; transport headers are normally
		// a single freshly prepended segment).
		flat := mbuf.FromBytesCopy((*seg).Bytes())
		(*seg).Release()
		*seg = flat
		hb = (*seg).Writer(ckOff + 2)
	}
	hb[ckOff] = byte(sum >> 8)
	hb[ckOff+1] = byte(sum)
}

// emitIP builds the link frame — Ethernet header, IP header, and a fused
// copy+checksum pass over the transport chain — charges the device-output
// cost, and transmits: immediately when the next hop's hardware address
// is known, otherwise when ARP resolution completes (the frame waits on
// the ARP entry; this path never blocks). The payload chain is consumed.
//
// Frame buffers are deliberately GC-allocated rather than pooled: a
// transmitted frame may be shared by several receivers, the flight
// recorder, and kernel delivery queues, so its lifetime has no single
// release point — and fresh storage guarantees no stale pooled bytes can
// leak into frames or pcap exports.
func (st *Stack) emitIP(t *sim.Proc, tcp bool, h wire.IPv4Header, nextHop wire.IPAddr, payload *mbuf.Chain, n, ckOff int) error {
	st.charge(t, tcp, costs.CompEtherOutput, n)
	frame := make([]byte, wire.EthHeaderLen+wire.IPv4HeaderLen+payload.Len())
	eh := wire.EthHeader{Src: st.cfg.LocalMAC, Type: wire.EtherTypeIPv4}
	eh.Marshal(frame[:wire.EthHeaderLen])
	h.Marshal(frame[wire.EthHeaderLen : wire.EthHeaderLen+wire.IPv4HeaderLen])

	// One pass copies the transport segment into the frame and folds it
	// into the checksum (the paper's integrated copy/checksum). With
	// checksum offload the copy still happens but the field is left
	// zero for the NIC engine to fill, and no software-checksum bytes
	// are accounted.
	sw := ckOff >= 0 && !st.cfg.ChecksumOffload
	var ck wire.Checksummer
	if sw {
		ck.PseudoHeader(h.Src, h.Dst, h.Proto, uint16(payload.Len()))
	}
	ck.CopyAndSum(frame[wire.EthHeaderLen+wire.IPv4HeaderLen:], payload)
	if sw {
		st.Stats.SwChecksumBytes.Add(uint64(int(h.TotalLen) - wire.IPv4HeaderLen))
		sum := ck.Sum()
		if h.Proto == wire.ProtoUDP && sum == 0 {
			sum = 0xffff
		}
		at := wire.EthHeaderLen + wire.IPv4HeaderLen + ckOff
		frame[at] = byte(sum >> 8)
		frame[at+1] = byte(sum)
	}
	payload.Release()

	if mac, ok := st.cfg.Resolver.ResolveOrQueue(t, nextHop, func(mac wire.MAC) {
		copy(frame[0:6], mac[:])
		st.cfg.Transmit(frame)
	}); ok {
		copy(frame[0:6], mac[:])
		return st.cfg.Transmit(frame)
	}
	return nil // queued pending resolution (or dropped; upper layers recover)
}

// ipInput validates an incoming IP packet and dispatches it to the
// transport protocols (ip_input).
func (st *Stack) ipInput(t *sim.Proc, eh wire.EthHeader, pkt []byte) {
	h, hlen, err := wire.UnmarshalIPv4(pkt)
	if err != nil {
		if errors.Is(err, wire.ErrChecksum) {
			st.Stats.IPChecksumErrors.Inc()
			if st.traceOn() {
				st.traceEmit(trace.EvChecksumDrop, "", "ip", int64(len(pkt)), 0, 0)
			}
		}
		st.Stats.Drops.Inc()
		return
	}
	if int(h.TotalLen) > len(pkt) {
		st.Stats.Drops.Inc()
		return
	}
	pkt = pkt[:h.TotalLen]
	if h.Dst != st.cfg.LocalIP && !h.Dst.IsBroadcast() {
		st.Stats.Drops.Inc() // not for us (no forwarding in this stack)
		return
	}
	st.Stats.IPIn.Inc()
	body := pkt[hlen:]

	tcp := h.Proto == wire.ProtoTCP
	st.charge(t, tcp, costs.CompIPIntr, len(body))

	// With checksum offload the NIC engine has already verified (and
	// dropped bad) unfragmented TCP/UDP segments — but the engine passes
	// fragments through untouched, so reassembled datagrams still get
	// the software pass.
	st.rxVerified = st.cfg.ChecksumOffload

	if h.IsFragment() {
		st.rxVerified = false
		full, ok := st.ipReassemble(t, h, body)
		if !ok {
			return
		}
		body = full
		h.FragOff = 0
		h.Flags = 0
	}

	switch h.Proto {
	case wire.ProtoTCP:
		st.tcpInput(t, h, body)
	case wire.ProtoUDP:
		st.udpInput(t, h, body)
	case wire.ProtoICMP:
		st.icmpInput(t, h, body)
	default:
		st.Stats.Drops.Inc()
	}
}

// --- Reassembly ---

type reasmKey struct {
	src, dst wire.IPAddr
	proto    uint8
	id       uint16
}

type reasmEntry struct {
	frags   []ipFrag
	gotLast bool
	total   int
	ttlTick int // slow-timer ticks until the entry expires
}

type ipFrag struct {
	off  int
	data []byte
}

const reasmTTLTicks = 30 // 15 s, BSD's IPFRAGTTL

// ipReassemble collects fragments; when a datagram completes it returns
// the full transport payload.
func (st *Stack) ipReassemble(t *sim.Proc, h wire.IPv4Header, body []byte) ([]byte, bool) {
	key := reasmKey{src: h.Src, dst: h.Dst, proto: h.Proto, id: h.ID}
	e := st.reasm[key]
	if e == nil {
		e = &reasmEntry{ttlTick: reasmTTLTicks}
		st.reasm[key] = e
	}
	off := int(h.FragOff) * 8
	data := append([]byte(nil), body...)
	e.frags = append(e.frags, ipFrag{off: off, data: data})
	if !h.MoreFragments() {
		e.gotLast = true
		e.total = off + len(data)
	}
	if !e.gotLast {
		return nil, false
	}
	// Check completeness.
	sort.Slice(e.frags, func(i, j int) bool { return e.frags[i].off < e.frags[j].off })
	full := make([]byte, e.total)
	covered := 0
	for _, f := range e.frags {
		if f.off > covered {
			return nil, false // hole remains
		}
		end := f.off + len(f.data)
		if end > covered {
			copy(full[f.off:end], f.data)
			covered = end
		}
	}
	if covered < e.total {
		return nil, false
	}
	delete(st.reasm, key)
	st.Stats.IPReasmOK.Inc()
	return full, true
}

// ipReasmTimo expires stale reassembly state (driven by the slow timer).
// Keys are walked in sorted order so that expiry — and any traffic it
// ever triggers — happens in the same order on every run.
func (st *Stack) ipReasmTimo(t *sim.Proc) {
	if len(st.reasm) == 0 {
		return // the steady-state case; keep the periodic tick free
	}
	keys := st.timoKeys[:0]
	for k := range st.reasm {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ { // allocation-free, entries are few
		for j := i; j > 0 && keys[j].less(keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	st.timoKeys = keys
	for _, k := range keys {
		e := st.reasm[k]
		e.ttlTick--
		if e.ttlTick <= 0 {
			delete(st.reasm, k)
			st.Stats.IPReasmTimeout.Inc()
		}
	}
}

func (k reasmKey) less(o reasmKey) bool {
	if c := bytes.Compare(k.src[:], o.src[:]); c != 0 {
		return c < 0
	}
	if c := bytes.Compare(k.dst[:], o.dst[:]); c != 0 {
		return c < 0
	}
	if k.proto != o.proto {
		return k.proto < o.proto
	}
	return k.id < o.id
}

// --- ICMP ---

// icmpInput handles ICMP messages: echo requests are answered; errors are
// mapped onto the sockets they concern (icmp_input + PRC_* upcalls).
func (st *Stack) icmpInput(t *sim.Proc, h wire.IPv4Header, body []byte) {
	st.Stats.ICMPIn.Inc()
	ih, payload, err := wire.UnmarshalICMP(body)
	if err != nil {
		if errors.Is(err, wire.ErrChecksum) {
			st.Stats.ICMPChecksumErrors.Inc()
			if st.traceOn() {
				st.traceEmit(trace.EvChecksumDrop, "", "icmp", int64(len(body)), 0, 0)
			}
		}
		st.Stats.Drops.Inc()
		return
	}
	switch ih.Type {
	case wire.ICMPEchoRequest:
		reply := wire.ICMPHeader{Type: wire.ICMPEchoReply, ID: ih.ID, Seq: ih.Seq}
		st.Stats.ICMPOut.Inc()
		st.ipOutput(t, false, wire.ProtoICMP, h.Src, mbuf.FromBytesCopy(reply.Marshal(payload)), len(payload), -1)
	case wire.ICMPEchoReply:
		if cv, ok := st.icmpEcho[ih.ID]; ok {
			cv.Broadcast()
		}
	case wire.ICMPDestUnreachable:
		// The payload holds the offending datagram's IP header + 8 bytes:
		// enough to find the socket and deliver ECONNREFUSED, which is
		// how BSD surfaces UDP port unreachables.
		oh, ohl, err := wire.UnmarshalIPv4(payload)
		if err != nil || len(payload) < ohl+8 {
			return
		}
		tp := payload[ohl:]
		sport := uint16(tp[0])<<8 | uint16(tp[1])
		dport := uint16(tp[2])<<8 | uint16(tp[3])
		local := Addr{IP: oh.Src, Port: sport}
		remote := Addr{IP: oh.Dst, Port: dport}
		if s := st.lookup(oh.Proto, local, remote); s != nil && !s.remote.IsZero() {
			s.err = socketapi.ErrConnRefused
			s.sorwakeup(t, 0)
			s.sowwakeup(t, 0)
		}
	}
}

// icmpSendUnreachable reports an undeliverable datagram back to its
// sender (icmp_error).
func (st *Stack) icmpSendUnreachable(t *sim.Proc, code uint8, orig wire.IPv4Header, origBody []byte) {
	// Quote the original IP header plus the first 8 payload bytes.
	quote := wire.ICMPErrorPayload(orig, origBody)
	msg := wire.ICMPHeader{Type: wire.ICMPDestUnreachable, Code: code}
	st.Stats.ICMPOut.Inc()
	st.ipOutput(t, false, wire.ProtoICMP, orig.Src, mbuf.FromBytesCopy(msg.Marshal(quote)), 0, -1)
}

// Ping sends an ICMP echo request and waits up to timeout for the reply,
// reporting success. It exists for diagnostics and tests of the ICMP
// machinery.
func (st *Stack) Ping(t *sim.Proc, dst wire.IPAddr, id uint16, timeoutTicks int) bool {
	st.lock(t)
	cv := &sim.Cond{}
	st.icmpEcho[id] = cv
	defer delete(st.icmpEcho, id)
	req := wire.ICMPHeader{Type: wire.ICMPEchoRequest, ID: id, Seq: 1}
	st.Stats.ICMPOut.Inc()
	if err := st.ipOutput(t, false, wire.ProtoICMP, dst, mbuf.FromBytesCopy(req.Marshal(nil)), 0, -1); err != nil {
		st.unlock()
		return false
	}
	ok := st.condWaitTimeout(t, cv, time.Duration(timeoutTicks)*tcpSlowInterval)
	st.unlock()
	return ok
}
