// Package stack implements a complete 4.3BSD-structured TCP/IP and UDP/IP
// protocol stack over the simulated Ethernet.
//
// The stack is deployment-agnostic, which is the paper's "reuse of
// existing protocol code" goal: the same code runs
//
//   - inside the simulated kernel (internal/inkernel),
//   - inside a user-level protocol server (internal/uxserver), and
//   - inside each application as a protocol library (internal/core),
//
// differing only in the cost profile charged for each layer, the thread
// priorities the deployment chooses, and which responsibilities are
// delegated (a library stack never performs connection establishment or
// teardown itself — sessions migrate in from, and back to, the
// operating-system server).
//
// Structure mirrors the BSD original: a socket layer with send/receive
// buffers, tcp_input/tcp_output/tcp_timers over a tcpcb, udp_input/
// udp_output, ip_input/ip_output with fragmentation and reassembly, ARP,
// and ICMP errors. Data is carried in mbuf chains.
package stack

import (
	"math/rand"
	"time"

	"repro/internal/costs"
	"repro/internal/mbuf"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Addr is a transport endpoint.
type Addr struct {
	IP   wire.IPAddr
	Port uint16
}

// IsZero reports whether the endpoint is fully wildcarded.
func (a Addr) IsZero() bool { return a.IP.IsZero() && a.Port == 0 }

// tuple identifies a connection.
type tuple struct {
	proto  uint8
	local  Addr
	remote Addr
}

// ChargeFunc prices one protocol layer's work on the calling thread. The
// deployment supplies it, choosing CPU priority and metering. n is the
// transport payload size involved (0 for pure control segments).
type ChargeFunc func(t *sim.Proc, tcp bool, comp costs.Component, n int)

// PortAllocator manages the local transport port namespace. In the
// decomposed architecture it lives in the operating-system server so the
// namespace is shared among all processes; the baselines use a local
// allocator.
type PortAllocator interface {
	// AllocEphemeral reserves a free ephemeral port for proto.
	AllocEphemeral(proto uint8) (uint16, error)
	// Reserve claims a specific port; it fails if the port is taken
	// (unless reuse is permitted by the owner).
	Reserve(proto uint8, port uint16, reuse bool) error
	// Release returns a port to the namespace.
	Release(proto uint8, port uint16)
}

// Resolver maps next-hop IP addresses to hardware addresses. The kernel
// and server stacks own an ARP engine; library stacks consult the
// operating-system server's tables through a caching proxy (§3.3).
type Resolver interface {
	// ResolveOrQueue returns (mac, true) when the next hop's address is
	// known. Otherwise it takes ownership of emit — which it must call
	// with the address if resolution later succeeds, or never — and
	// returns false. Implementations must not block protocol input
	// threads: output triggered by packet processing (ACKs, RSTs, ICMP
	// errors) flows through here.
	ResolveOrQueue(t *sim.Proc, ip wire.IPAddr, emit func(mac wire.MAC)) (wire.MAC, bool)
}

// Config assembles a stack.
type Config struct {
	Sim      *sim.Sim
	Name     string
	LocalIP  wire.IPAddr
	LocalMAC wire.MAC

	Costs  *costs.ProtoCosts
	Charge ChargeFunc
	// Transmit puts a fully-formed frame on the wire. The EtherOutput
	// charge has already been applied when it is called.
	Transmit func(frame []byte) error

	Ports    PortAllocator
	Resolver Resolver
	Routes   *RouteTable
	Rand     *rand.Rand

	// Buffer defaults; SetSockOpt can override per socket.
	SndBuf int
	RcvBuf int

	// MaxTCPPayload, when nonzero, models the 386BSD/BNR2SS bug that
	// prevents sending large TCP packets: segments are clamped to this
	// size and sosend rejects messages needing larger ones.
	MaxTCPPayload int

	// DisableNagle turns off sender-side small-segment coalescing for all
	// sockets (per-socket TCPNoDelay also exists).
	DisableNagle bool

	// TSOMaxPayload, when nonzero, enables TSO/GSO-style segmentation
	// offload: tcp_output may emit one oversized frame carrying up to
	// this many payload bytes, and the NIC offload engine — not the
	// stack — slices it into MSS-sized wire frames. The send queue keeps
	// holding the unsegmented byte stream, so retransmission after a
	// dropped slice works unchanged.
	TSOMaxPayload int

	// ChecksumOffload, when true, moves transport checksumming to the
	// NIC engine: outbound TCP/UDP frames leave the stack with a zero
	// checksum field for the engine to fill, and inbound verification is
	// skipped (the engine already verified and dropped bad frames).
	ChecksumOffload bool

	// QuietOrphans suppresses RST and ICMP-unreachable responses to
	// segments that match no local socket. Library stacks set it: they
	// only ever see their own sessions' traffic, and a stray segment
	// means a migration race, not a protocol violation — the session's
	// new owner will handle the retransmission.
	QuietOrphans bool

	// OrphanFilter, when set, is consulted before responding to a segment
	// that matches no connection (or that would be rejected by a
	// listener): returning true suppresses the RST/ICMP. The OS server of
	// the decomposed architecture uses it to stay quiet about sessions
	// that have migrated to an application — packets already queued at
	// the server when the filter handoff happened must not reset a live
	// connection; the peer's retransmission will reach the right address
	// space.
	OrphanFilter func(proto uint8, local, remote Addr) bool

	// Trace, when set, is the flight recorder stack-layer events are
	// emitted on: TCP state transitions, retransmissions, cwnd and RTT
	// samples, and checksum discards. Tracing is passive — it charges no
	// virtual CPU — and free when unset.
	Trace *trace.Recorder
}

// Stack is one instance of the protocol stack.
type Stack struct {
	cfg Config

	conns   map[tuple]*Socket // fully-specified connections (TCP and connected UDP)
	binds   map[tuple]*Socket // wildcard-remote sockets (listeners, unconnected UDP)
	ipID    uint16
	issSeed uint32
	sockSeq uint64 // socket creation counter (deterministic iteration order)

	reasm     map[reasmKey]*reasmEntry
	arp       *arpEngine // nil for library stacks (server resolves)
	icmpEcho  map[uint16]*sim.Cond
	timerStop func()

	// Timer-tick scratch, reused across ticks so the periodic walks
	// (tcp_fasttimo, tcp_slowtimo, reassembly expiry) allocate nothing
	// in steady state. The timers fire on every host several times per
	// virtual second, so at city scale these were the simulator's
	// dominant allocation site.
	timoSocks []*Socket
	timoKeys  []reasmKey

	// rxVerified is set by ipInput before dispatching to a transport:
	// true when the NIC engine already verified this segment's checksum
	// (checksum offload, unfragmented), so the software pass is skipped.
	// Guarded by mu like all input-path state.
	rxVerified bool

	// mu serializes protocol processing, playing the role of BSD's
	// splnet/priority-level machinery: application calls, input
	// processing, and timers all run under it. Threads in this simulation
	// interleave at every CPU charge, so without it two threads could
	// both decide to transmit the same sequence range.
	mu sim.Mutex

	// Stats, exported for tests and the benchmark harness.
	Stats Stats

	// Latency histograms on the virtual clock; nil (free) unless
	// SetMetrics is called.
	mRTT     *metrics.Histogram // smoothed-RTT input samples (send-to-ACK), ns
	mConnect *metrics.Histogram // active-open SYN-sent to ESTABLISHED, ns
	mCwnd    *metrics.Histogram // congestion-window samples at change points, bytes
}

// Stats counts stack activity. The fields are metrics counters so the
// registry binds to the same storage the tests read: the two can never
// disagree, and counting stays a plain increment whether or not a
// registry is attached.
type Stats struct {
	IPIn, IPOut           metrics.Counter
	IPFragsOut, IPReasmOK metrics.Counter
	IPReasmTimeout        metrics.Counter
	TCPIn, TCPOut         metrics.Counter
	TCPPureAcks           metrics.Counter
	TCPRexmit             metrics.Counter
	TCPFastRexmit         metrics.Counter
	TCPDupAcks            metrics.Counter
	TCPDelayedAcks        metrics.Counter
	UDPIn, UDPOut         metrics.Counter
	UDPNoPort             metrics.Counter
	ICMPIn, ICMPOut       metrics.Counter
	// Per-protocol checksum discard counters (IP header, TCP segment,
	// UDP datagram, ICMP message). The total is the ChecksumErrors
	// method — a derived sum, not a second field that could drift.
	IPChecksumErrors   metrics.Counter
	TCPChecksumErrors  metrics.Counter
	UDPChecksumErrors  metrics.Counter
	ICMPChecksumErrors metrics.Counter
	Drops              metrics.Counter

	// Socket-layer data-movement accounting for the chain API. Copied
	// counts payload bytes physically copied crossing the socket layer
	// (BSD copyin/copyout, fallback paths); Aliased counts bytes moved
	// by reference only (SendChain, zero-copy sends, RecvPeek views,
	// splice). copies/byte for a workload is SockCopiedBytes over total
	// payload.
	SockCopiedBytes  metrics.Counter
	SockAliasedBytes metrics.Counter
	// Splice/selective-copy activity (sendfile-style forwarding).
	SpliceOps          metrics.Counter
	SpliceBytes        metrics.Counter
	ZeroCopyRxBytes    metrics.Counter // bytes returned as RecvPeek aliased views
	SelectiveCopyBytes metrics.Counter // bytes materialized by CopyRanges specs

	// SwChecksumBytes counts transport-segment bytes the stack ran its
	// software checksum over — computed on output or verified on input.
	// With checksum offload the NIC engine does this work instead, so
	// the counter is the direct measure of what offloading removed.
	SwChecksumBytes metrics.Counter

	// TSOSends counts oversized (> MSS) segments handed to the NIC
	// engine for segmentation.
	TSOSends metrics.Counter
}

// ChecksumErrors is the total number of inbound packets discarded for a
// bad checksum, across all protocols.
func (s *Stats) ChecksumErrors() uint64 {
	return s.IPChecksumErrors.Value() + s.TCPChecksumErrors.Value() +
		s.UDPChecksumErrors.Value() + s.ICMPChecksumErrors.Value()
}

// New builds a stack. The caller must arrange for Input to be fed frames
// and should call StartTimers once a timer thread context exists.
func New(cfg Config) *Stack {
	if cfg.SndBuf == 0 {
		cfg.SndBuf = 8 * 1024
	}
	if cfg.RcvBuf == 0 {
		cfg.RcvBuf = 8 * 1024
	}
	if cfg.Rand == nil {
		// A per-stack stream keyed by the stack's name: draws (ISS
		// generation, ephemeral-port perturbation) stay identical no
		// matter what else runs concurrently or which shard the stack
		// lands on. The shared cfg.Sim.Rand() would make every draw
		// depend on global event order.
		cfg.Rand = cfg.Sim.Stream("stack." + cfg.Name)
	}
	if cfg.Routes == nil {
		cfg.Routes = NewRouteTable()
		// Single-segment default: everything is on-link.
		cfg.Routes.Add(wire.IPAddr{}, 0, wire.IPAddr{}, true)
	}
	st := &Stack{
		cfg:      cfg,
		conns:    make(map[tuple]*Socket),
		binds:    make(map[tuple]*Socket),
		reasm:    make(map[reasmKey]*reasmEntry),
		icmpEcho: make(map[uint16]*sim.Cond),
		issSeed:  cfg.Rand.Uint32(),
	}
	if cfg.Resolver == nil {
		st.arp = newARPEngine(st)
		st.cfg.Resolver = st.arp
	}
	return st
}

// SetRoutes replaces the stack's routing table (multi-subnet
// deployments share one table per subnet, built before any traffic
// flows). A nil table is ignored.
func (st *Stack) SetRoutes(rt *RouteTable) {
	if rt != nil {
		st.cfg.Routes = rt
	}
}

// LocalIP returns the stack's IP address.
func (st *Stack) LocalIP() wire.IPAddr { return st.cfg.LocalIP }

// Name returns the stack's diagnostic name.
func (st *Stack) Name() string { return st.cfg.Name }

// Sim returns the simulator the stack runs on.
func (st *Stack) Sim() *sim.Sim { return st.cfg.Sim }

func (st *Stack) now() sim.Time { return st.cfg.Sim.Now() }

func (st *Stack) charge(t *sim.Proc, tcp bool, comp costs.Component, n int) {
	if st.cfg.Charge != nil {
		st.cfg.Charge(t, tcp, comp, n)
	}
}

// SetTrace attaches (or, with nil, detaches) a flight recorder after
// construction. Deployments call it when the harness enables tracing.
func (st *Stack) SetTrace(r *trace.Recorder) { st.cfg.Trace = r }

// traceOn reports whether stack-layer tracing is live; every
// instrumentation site guards on it so disabled tracing allocates
// nothing.
func (st *Stack) traceOn() bool { return st.cfg.Trace.On(trace.LayerStack) }

// traceEmit records one stack-layer event tagged with the stack's name.
func (st *Stack) traceEmit(e trace.Event, name, aux string, a0, a1, a2 int64) {
	st.cfg.Trace.Emit(trace.LayerStack, e, st.cfg.Name, name, aux, a0, a1, a2)
}

func (st *Stack) lock(t *sim.Proc) { st.mu.Lock(t) }
func (st *Stack) unlock()          { st.mu.Unlock() }

// condWait releases the protocol lock around a condition wait, like
// tsleep dropping to spl0.
func (st *Stack) condWait(t *sim.Proc, c *sim.Cond) {
	st.mu.Unlock()
	c.Wait(t)
	st.mu.Lock(t)
}

// condWaitTimeout is condWait with a deadline; it reports whether the
// condition was signalled.
func (st *Stack) condWaitTimeout(t *sim.Proc, c *sim.Cond, d time.Duration) bool {
	st.mu.Unlock()
	ok := c.WaitTimeout(t, d)
	st.mu.Lock(t)
	return ok
}

// StartTimers launches the TCP fast (200 ms) and slow (500 ms) timers on
// the given spawner. The deployment passes a function that creates a
// daemon thread in the right process; returns a stop function.
func (st *Stack) StartTimers(spawn func(name string, body func(t *sim.Proc)) *sim.Proc) {
	stopped := false
	st.timerStop = func() { stopped = true }
	spawn(st.cfg.Name+".tcp-fast", func(t *sim.Proc) {
		for !stopped {
			t.Sleep(tcpFastInterval)
			if stopped {
				return
			}
			st.lock(t)
			st.tcpFastTimo(t)
			st.unlock()
		}
	})
	spawn(st.cfg.Name+".tcp-slow", func(t *sim.Proc) {
		for !stopped {
			t.Sleep(tcpSlowInterval)
			if stopped {
				return
			}
			st.lock(t)
			st.tcpSlowTimo(t)
			st.ipReasmTimo(t)
			if st.arp != nil {
				st.arp.timo(t)
			}
			st.unlock()
		}
	})
}

// StopTimers halts the timer threads (used when a process exits).
func (st *Stack) StopTimers() {
	if st.timerStop != nil {
		st.timerStop()
	}
}

// Input processes one received frame on the calling thread. Deployments
// call it from their receive loop (library receive thread, server network
// thread, or the kernel's software-interrupt thread).
func (st *Stack) Input(t *sim.Proc, frame []byte) {
	st.lock(t)
	defer st.unlock()
	st.input(t, frame)
}

func (st *Stack) input(t *sim.Proc, frame []byte) {
	eh, err := wire.UnmarshalEth(frame)
	if err != nil {
		st.Stats.Drops.Inc()
		return
	}
	switch eh.Type {
	case wire.EtherTypeIPv4:
		st.ipInput(t, eh, frame[wire.EthHeaderLen:])
	case wire.EtherTypeARP:
		if st.arp != nil {
			st.arp.input(t, frame[wire.EthHeaderLen:])
		}
	default:
		st.Stats.Drops.Inc()
	}
}

// iss generates an initial send sequence number.
func (st *Stack) iss() uint32 {
	st.issSeed += 64000 + uint32(st.cfg.Rand.Intn(64000))
	return st.issSeed
}

func (st *Stack) nextIPID() uint16 {
	st.ipID++
	return st.ipID
}

// lookup finds the socket for an incoming segment: exact 4-tuple first,
// then wildcard remote (listeners / unconnected UDP), then wildcard
// local IP as well.
func (st *Stack) lookup(proto uint8, local, remote Addr) *Socket {
	if s, ok := st.conns[tuple{proto, local, remote}]; ok {
		return s
	}
	if s, ok := st.binds[tuple{proto, local, Addr{}}]; ok {
		return s
	}
	if s, ok := st.binds[tuple{proto, Addr{IP: wire.IPAddr{}, Port: local.Port}, Addr{}}]; ok {
		return s
	}
	return nil
}

// orphanQuiet reports whether responses to an unmatched flow should be
// suppressed.
func (st *Stack) orphanQuiet(proto uint8, local, remote Addr) bool {
	if st.cfg.QuietOrphans {
		return true
	}
	return st.cfg.OrphanFilter != nil && st.cfg.OrphanFilter(proto, local, remote)
}

const (
	tcpFastInterval = 200 * time.Millisecond
	tcpSlowInterval = 500 * time.Millisecond
)

// chainFromBytes adapts a byte slice into an mbuf chain without copying.
func chainFromBytes(b []byte) *mbuf.Chain { return mbuf.FromBytes(b) }
