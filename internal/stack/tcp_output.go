package stack

import (
	"fmt"

	"repro/internal/costs"
	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/wire"
)

// debugRST enables temporary RST tracing.
var debugRST = false

// DebugSegLens, when non-nil, histograms outgoing data segment lengths
// (diagnostics).
var DebugSegLens map[int]int

// DebugSendReasons, when non-nil, histograms the send-decision reason for
// segments that re-cover previously sent sequence space (diagnostics).
var DebugSendReasons map[string]int

// DebugSegTrace prints every outgoing data segment (diagnostics).
var DebugSegTrace bool

// outputFlags gives the TCP flags appropriate to each state (tcp_outflags).
var outputFlags = map[tcpState]uint8{
	tcpClosed:      flagRST | flagACK,
	tcpListen:      0,
	tcpSynSent:     flagSYN,
	tcpSynRcvd:     flagSYN | flagACK,
	tcpEstablished: flagACK,
	tcpCloseWait:   flagACK,
	tcpFinWait1:    flagFIN | flagACK,
	tcpClosing:     flagFIN | flagACK,
	tcpLastAck:     flagFIN | flagACK,
	tcpFinWait2:    flagACK,
	tcpTimeWait:    flagACK,
}

// tcpOutput is the TCP output routine (tcp_output): it decides whether a
// segment should be sent and emits as many as the windows allow.
func (st *Stack) tcpOutput(t *sim.Proc, tp *tcpcb) {
	s := tp.sock
	idle := tp.sndMax == tp.sndUna

	for {
		off := int(tp.sndNxt - tp.sndUna)
		win := tp.sndWnd
		if tp.cwnd < win {
			win = tp.cwnd
		}
		flags := outputFlags[tp.state]

		if tp.force && win == 0 {
			// Persist probe: force one byte past the closed window.
			win = 1
		}

		sendable := s.snd.len() - off
		if sendable < 0 {
			sendable = 0
		}
		length := sendable
		if int(win) < off+length {
			length = int(win) - off
			if length < 0 {
				length = 0
			}
		}
		mss := tp.effMSS()
		segMax := mss
		if st.cfg.TSOMaxPayload > mss && !seqGT(tp.sndUp, tp.sndUna) {
			// TSO: emit one super-segment and let the NIC engine slice it
			// to MSS frames. Urgent data opts out — the urgent pointer is
			// relative to one segment's sequence number and would not
			// survive slicing.
			segMax = st.cfg.TSOMaxPayload
		}
		sendalot := false
		if length > segMax {
			length = segMax
			sendalot = true
		}

		// A FIN only goes out once all data has been sent, and again only
		// when positioned for its retransmission.
		if flags&flagFIN != 0 {
			if off+length < s.snd.len() || sendalot {
				flags &^= flagFIN
			} else if tp.finSent && tp.sndNxt != tp.finSeq {
				flags &^= flagFIN
			}
		}
		if tp.state == tcpSynSent || tp.state == tcpSynRcvd {
			// Data never accompanies our SYN in this stack.
			length = 0
		}

		// Receiver's advertised window for this segment.
		rwin := st.tcpRcvWindow(tp)

		// Decide whether to transmit.
		send := false
		reason := ""
		switch {
		case flags&(flagSYN|flagRST) != 0:
			send = true
			reason = "syn/rst"
		case flags&flagFIN != 0 && (!tp.finSent || tp.sndNxt == tp.finSeq):
			send = true
			reason = "fin"
		case tp.force && length > 0:
			send = true
			reason = "force"
		case length >= mss:
			send = true
			reason = "mss"
		case length > 0 && seqLT(tp.sndNxt, tp.sndMax):
			send = true // retransmission
			reason = "rexmit"
		case length > 0 && (s.noDelay || st.cfg.DisableNagle || idle):
			send = true // Nagle: small segments only when no data is in flight
			reason = "nagle-idle"
		case tp.ackNow:
			send = true
			reason = "acknow"
		case seqGT(tp.sndUp, tp.sndUna):
			send = true // urgent data pending
			reason = "urgent"
		case st.tcpWindowUpdateWorthwhile(tp, rwin):
			send = true
			reason = "winupdate"
		}
		if send && DebugSendReasons != nil && length > 0 && seqLT(tp.sndNxt, tp.sndMax) {
			DebugSendReasons[reason]++
		}

		if !send {
			// If data is waiting but the window is closed, arm the persist
			// timer so we eventually probe.
			if s.snd.len() > off && tp.timers[timerRexmt] == 0 && tp.timers[timerPersist] == 0 {
				tp.rexmtShift = 0
				tp.setPersist()
			}
			return
		}

		st.tcpSendSegment(t, tp, flags, length, rwin)

		if sendalot {
			idle = false
			continue
		}
		return
	}
}

// tcpRcvWindow computes the receive window to advertise, applying
// receiver-side silly-window avoidance and never shrinking a window
// already advertised.
func (st *Stack) tcpRcvWindow(tp *tcpcb) uint32 {
	s := tp.sock
	win := s.rcv.space()
	if win < 0 {
		win = 0
	}
	// Silly window avoidance: don't advertise tiny increases.
	if win < s.rcvbufSize/4 && win < tp.effMSS() {
		win = 0
	}
	if win > 65535 {
		win = 65535
	}
	// Never retract an advertisement.
	if adv := int(int32(tp.rcvAdv - tp.rcvNxt)); win < adv {
		win = adv
	}
	return uint32(win)
}

// tcpWindowUpdateWorthwhile implements the sender-side of receiver window
// updates: send one if the window has opened by two segments or half the
// receive buffer.
func (st *Stack) tcpWindowUpdateWorthwhile(tp *tcpcb, rwin uint32) bool {
	if rwin == 0 {
		return false
	}
	adv := int(int32(tp.rcvNxt + rwin - tp.rcvAdv))
	if adv <= 0 {
		return false
	}
	return adv >= 2*tp.effMSS() || 2*adv >= tp.sock.rcvbufSize
}

// tcpSendSegment builds and transmits one segment with the given flags
// carrying length bytes from the send queue at sndNxt.
func (st *Stack) tcpSendSegment(t *sim.Proc, tp *tcpcb, flags uint8, length int, rwin uint32) {
	s := tp.sock
	seq := tp.sndNxt
	if tp.force && length == 0 && tp.timers[timerPersist] != 0 {
		// Window probe with no data: use sndUna so the segment is
		// acceptable even when the peer has no window.
		seq = tp.sndUna
	}

	// The segment is assembled in the control block's scratch chain:
	// ipOutput consumes and recycles it, so steady-state sends reuse the
	// same chain and pooled segments run after run.
	if tp.txc == nil {
		tp.txc = mbuf.New()
	}
	seg := tp.txc
	if length > 0 {
		off := int(tp.sndNxt - tp.sndUna)
		s.snd.regionInto(seg, off, length)
	}

	hdr := wire.TCPHeader{
		SrcPort: s.local.Port,
		DstPort: s.remote.Port,
		Seq:     seq,
		Ack:     tp.rcvNxt,
		Flags:   flags,
		Window:  uint16(rwin),
	}
	if flags&flagSYN != 0 {
		hdr.MSS = uint16(tcpDefaultMSS)
	}
	if flags&flagACK == 0 {
		hdr.Ack = 0
	}
	// Urgent pointer.
	if seqGT(tp.sndUp, seq) && seqLEQ(tp.sndUp, seq+uint32(length)) || tp.forceUrgent {
		if seqGT(tp.sndUp, seq) {
			hdr.Flags |= flagURG
			hdr.Urgent = uint16(tp.sndUp - seq)
		}
		tp.forceUrgent = false
	}
	if length > 0 && int(tp.sndNxt-tp.sndUna)+length >= s.snd.len() {
		hdr.Flags |= flagPSH
	}

	st.charge(t, true, costs.CompTransportOutput, length)
	st.Stats.TCPOut.Inc()
	if length > tp.effMSS() {
		st.Stats.TSOSends.Inc()
	}
	if DebugSegLens != nil && length > 0 {
		DebugSegLens[length]++
		if DebugSegTrace {
			fmt.Printf("%s t=%v DATA seq %d len %d sndbuf %d una %d nxt %d max %d sock %p\n", st.cfg.Name, st.now(), seq-tp.iss, length, s.snd.len(), tp.sndUna-tp.iss, tp.sndNxt-tp.iss, tp.sndMax-tp.iss, s)
		}
	}
	if length == 0 && flags&(flagSYN|flagFIN|flagRST) == 0 {
		st.Stats.TCPPureAcks.Inc()
		if debugRST {
			println(st.cfg.Name, "pure ACK: ackNow?", tp.ackNow, "delAck?", tp.delAck, "force?", tp.force, "state", int(tp.state))
		}
	}

	// Serialize the header (checksum zero) in front of the payload; the
	// IP layer computes the checksum during its fused copy into the frame.
	hdr.Marshal(seg.Prepend(hdr.HeaderLen()))

	// Advance send state.
	if flags&flagSYN != 0 && tp.sndNxt == tp.iss {
		tp.sndNxt++
	}
	if length > 0 && seq == tp.sndNxt {
		tp.sndNxt += uint32(length)
	}
	if flags&flagFIN != 0 {
		if !tp.finSent {
			tp.finSent = true
			tp.finSeq = tp.sndNxt
			tp.sndNxt++
		} else if tp.sndNxt == tp.finSeq {
			tp.sndNxt++ // retransmitted FIN advances past its slot again
		}
	}
	if seqGT(tp.sndNxt, tp.sndMax) {
		tp.sndMax = tp.sndNxt
		// Time this transmission for RTT if nothing is being timed.
		if !tp.rttTiming && length > 0 {
			tp.rttTiming = true
			tp.rttStart = st.now()
			tp.rttSeq = tp.sndNxt
		}
	}

	// Arm the retransmit timer for anything that needs acknowledgement.
	if (length > 0 || flags&(flagSYN|flagFIN) != 0) && !tp.force {
		if tp.timers[timerRexmt] == 0 {
			tp.timers[timerRexmt] = tp.rexmtTicks()
			tp.timers[timerPersist] = 0
		}
	}

	// Record the advertised window edge and clear pending-ACK state.
	if rwin > 0 && seqGT(tp.rcvNxt+rwin, tp.rcvAdv) {
		tp.rcvAdv = tp.rcvNxt + rwin
	}
	tp.ackNow = false
	tp.delAck = false

	st.ipOutput(t, true, wire.ProtoTCP, s.remote.IP, seg, length, wire.TCPChecksumOffset)
}

// tcpRespond emits a bare control segment (ACK or RST) that is not
// associated with queued data (tcp_respond).
func (st *Stack) tcpRespond(t *sim.Proc, local, remote Addr, seq, ack uint32, flags uint8) {
	if flags&flagRST != 0 && debugRST {
		println("RST from", st.cfg.Name, "local", local.Port, "remote", remote.Port, "seq", seq, "ack", ack)
	}
	hdr := wire.TCPHeader{
		SrcPort: local.Port,
		DstPort: remote.Port,
		Seq:     seq,
		Ack:     ack,
		Flags:   flags,
	}
	if flags&flagACK == 0 {
		hdr.Ack = 0
	}
	st.charge(t, true, costs.CompTransportOutput, 0)
	st.Stats.TCPOut.Inc()
	seg := mbuf.New()
	hdr.Marshal(seg.Prepend(hdr.HeaderLen()))
	st.ipOutput(t, true, wire.ProtoTCP, remote.IP, seg, 0, wire.TCPChecksumOffset)
}

// SetDebugRST toggles RST tracing (diagnostics).
func SetDebugRST(v bool) { debugRST = v }
