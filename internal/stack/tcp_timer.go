package stack

import (
	"repro/internal/sim"
	"repro/internal/socketapi"
	"repro/internal/trace"
)

// tcpFastTimo runs every 200 ms and flushes delayed ACKs
// (tcp_fasttimo).
func (st *Stack) tcpFastTimo(t *sim.Proc) {
	for _, s := range st.allTCP() {
		tp := s.tcb
		if tp != nil && tp.delAck {
			tp.delAck = false
			tp.ackNow = true
			st.tcpOutput(t, tp)
		}
	}
}

// tcpSlowTimo runs every 500 ms, decrementing the per-connection timer
// counters and firing expirations (tcp_slowtimo).
func (st *Stack) tcpSlowTimo(t *sim.Proc) {
	for _, s := range st.allTCP() {
		tp := s.tcb
		if tp == nil || tp.state == tcpClosed || tp.state == tcpListen {
			continue
		}
		// Keepalive idle tracking.
		if s.keepAlive && tp.state == tcpEstablished {
			tp.idleTicks++
			if tp.timers[timerKeep] == 0 && tp.idleTicks >= tcpKeepIdleTicks {
				tp.timers[timerKeep] = 1 // fire on the next tick below
			}
		}
		for i := 0; i < numTimers; i++ {
			if tp.timers[i] > 0 {
				tp.timers[i]--
				if tp.timers[i] == 0 {
					st.tcpTimerFired(t, tp, i)
					if tp.state == tcpClosed {
						break
					}
				}
			}
		}
	}
}

// allTCP snapshots the TCP sockets under management (the timer callbacks
// can mutate the maps), in socket-creation order. The ordering matters:
// Go map iteration is randomized, and timer actions (retransmissions,
// delayed ACKs) race for the shared medium, so an unordered walk makes
// runs with the same seed diverge.
func (st *Stack) allTCP() []*Socket {
	out := st.timoSocks[:0]
	for _, s := range st.conns {
		if s.Proto == 6 && s.tcb != nil {
			out = append(out, s)
		}
	}
	for _, s := range st.binds {
		if s.Proto == 6 && s.tcb != nil {
			out = append(out, s)
		}
	}
	// Insertion sort: a host holds few sockets, and unlike sort.Slice
	// this allocates no per-call swapper — the walk runs twice per
	// second on every host, so it must be allocation-free.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].uid < out[j-1].uid; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	st.timoSocks = out
	return out
}

func (st *Stack) tcpTimerFired(t *sim.Proc, tp *tcpcb, which int) {
	switch which {
	case timerRexmt:
		st.tcpRexmtTimo(t, tp)
	case timerPersist:
		// Probe the zero window, then re-arm with backoff.
		st.Stats.TCPRexmit.Inc()
		if st.traceOn() {
			st.traceEmit(trace.EvTCPRexmit, tp.connName(), "persist", int64(tp.rexmtShift), 0, 0)
		}
		tp.force = true
		st.tcpOutput(t, tp)
		tp.force = false
		tp.setPersist()
	case timerKeep:
		if tp.state < tcpEstablished {
			// Connection-establishment timeout: a handshake that never
			// completes gives up.
			tp.drop(t, socketapi.ErrTimedOut)
			return
		}
		// SO_KEEPALIVE probing on an established, idle connection.
		if tp.sock.keepAlive && tp.state == tcpEstablished {
			if tp.idleTicks < tcpKeepIdleTicks {
				return // traffic resumed; slowTimo re-arms when idle again
			}
			if tp.keepProbes >= tcpKeepMaxProbes {
				tp.drop(t, socketapi.ErrTimedOut)
				return
			}
			tp.keepProbes++
			// A keepalive probe is an ACK for one byte below the window,
			// which forces the peer to re-ACK (tcp_timers TCPT_KEEP).
			st.tcpRespond(t, tp.sock.local, tp.sock.remote, tp.sndUna-1, tp.rcvNxt, flagACK)
			tp.timers[timerKeep] = tcpKeepIntvlTicks
		}
	case timer2MSL:
		if tp.state == tcpTimeWait {
			tp.close(t)
		}
	}
}

// tcpRexmtTimo retransmits the oldest unacknowledged segment with
// exponential backoff (tcp_timers TCPT_REXMT case).
func (st *Stack) tcpRexmtTimo(t *sim.Proc, tp *tcpcb) {
	tp.rexmtShift++
	if tp.rexmtShift > tcpMaxRexmits {
		tp.drop(t, socketapi.ErrTimedOut)
		return
	}
	st.Stats.TCPRexmit.Inc()
	if st.traceOn() {
		st.traceEmit(trace.EvTCPRexmit, tp.connName(), "rto", int64(tp.rexmtShift), 0, 0)
	}
	tp.timers[timerRexmt] = tp.rexmtTicks()

	// Karn: do not sample RTT across a retransmission.
	tp.rttTiming = false

	// Congestion response: close to one segment, remember half the pipe.
	win := tp.sndWnd
	if tp.cwnd < win {
		win = tp.cwnd
	}
	half := win / 2
	if half < 2*uint32(tp.effMSS()) {
		half = 2 * uint32(tp.effMSS())
	}
	tp.ssthresh = half
	tp.cwnd = uint32(tp.effMSS())
	tp.cwndAcked = 0
	tp.dupAcks = 0
	tp.traceCwnd()

	tp.sndNxt = tp.sndUna
	st.tcpOutput(t, tp)
}

// setPersist arms the persist timer with backoff (tcp_setpersist).
func (tp *tcpcb) setPersist() {
	base := int(tp.srtt/float64(500_000_000)) + 2 // srtt in slow ticks, min 1s
	shift := tp.rexmtShift
	if shift > tcpMaxPersistIdx {
		shift = tcpMaxPersistIdx
	}
	ticks := base * tcpBackoff[shift]
	if ticks < tcpMinRexmtTicks {
		ticks = tcpMinRexmtTicks
	}
	if ticks > tcpMaxRexmtTicks {
		ticks = tcpMaxRexmtTicks
	}
	tp.timers[timerPersist] = ticks
	if tp.rexmtShift < tcpMaxRexmits {
		tp.rexmtShift++
	}
}
