package stack

import (
	"fmt"
	"time"

	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/trace"
)

// tcpState follows the BSD ordering so that `state >= tcpEstablished`
// means "connection exists" and `state > tcpCloseWait` means "our FIN has
// been queued or sent".
type tcpState int

const (
	tcpClosed tcpState = iota
	tcpListen
	tcpSynSent
	tcpSynRcvd
	tcpEstablished
	tcpCloseWait
	tcpFinWait1
	tcpClosing
	tcpLastAck
	tcpFinWait2
	tcpTimeWait
)

var tcpStateNames = [...]string{
	"CLOSED", "LISTEN", "SYN_SENT", "SYN_RCVD", "ESTABLISHED",
	"CLOSE_WAIT", "FIN_WAIT_1", "CLOSING", "LAST_ACK", "FIN_WAIT_2", "TIME_WAIT",
}

func (s tcpState) String() string {
	if int(s) < len(tcpStateNames) {
		return tcpStateNames[s]
	}
	return fmt.Sprintf("tcpState(%d)", int(s))
}

// Sequence-space arithmetic (RFC 793 modular comparisons).
func seqLT(a, b uint32) bool  { return int32(a-b) < 0 }
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }
func seqGT(a, b uint32) bool  { return int32(a-b) > 0 }
func seqGEQ(a, b uint32) bool { return int32(a-b) >= 0 }

// Timer slots, BSD-style tick counters decremented by the 500 ms slow
// timeout.
const (
	timerRexmt = iota
	timerPersist
	timerKeep
	timer2MSL
	numTimers
)

const (
	slowHz = 2 // slow timer ticks per second

	tcpDefaultMSS = 1460 // Ethernet MTU - IP - TCP headers

	// BSD Net/2 timer values, in slow ticks.
	tcpMinRexmtTicks = 2   // 1 s
	tcpMaxRexmtTicks = 128 // 64 s
	tcpMaxRexmits    = 12  // then ETIMEDOUT
	tcpMSLTicks      = 60  // 30 s MSL
	tcpKeepInitTicks = 150 // 75 s connection-establishment timeout
	tcpMaxPersistIdx = 10  // persist backoff cap

	// Keepalive values, compressed from BSD's two hours the way the
	// simulation compresses other idle-state lifetimes: probe after 60 s
	// of idleness, every 10 s, giving up after 8 unanswered probes.
	tcpKeepIdleTicks  = 120
	tcpKeepIntvlTicks = 20
	tcpKeepMaxProbes  = 8
)

var tcpBackoff = [tcpMaxRexmits + 1]int{1, 2, 4, 8, 16, 32, 64, 64, 64, 64, 64, 64, 64}

// reasmSeg is one out-of-order segment held for reassembly.
type reasmSeg struct {
	seq  uint32
	data *mbuf.Chain
	fin  bool
}

// tcpcb is the TCP control block (struct tcpcb).
type tcpcb struct {
	st   *Stack
	sock *Socket

	state tcpState

	// Send sequence space.
	sndUna uint32 // oldest unacknowledged
	sndNxt uint32 // next to send
	sndMax uint32 // highest sent
	sndWnd uint32 // peer's advertised window
	sndUp  uint32 // urgent pointer
	sndWl1 uint32 // seq of last window update segment
	sndWl2 uint32 // ack of last window update segment
	iss    uint32

	// Receive sequence space.
	rcvNxt uint32
	rcvWnd uint32
	rcvUp  uint32
	irs    uint32
	rcvAdv uint32 // highest advertised window edge

	// Congestion control.
	cwnd      uint32
	ssthresh  uint32
	cwndAcked uint32 // bytes ACKed toward the next avoidance increment (RFC 3465)
	dupAcks   int

	// Round-trip timing (Jacobson/Karn).
	srtt      float64 // smoothed RTT, ns
	rttvar    float64 // smoothed mean deviation, ns
	rttTiming bool
	rttStart  sim.Time
	rttSeq    uint32

	// Timers (slow ticks; 0 = off).
	timers     [numTimers]int
	rexmtShift int

	mss int

	// Keepalive bookkeeping (SO_KEEPALIVE).
	idleTicks  int // slow ticks since the last segment from the peer
	keepProbes int

	// Flags.
	ackNow      bool // send an ACK immediately
	delAck      bool // an ACK is owed (fast timer will flush)
	force       bool // persist probe / urgent push in progress
	finSent     bool
	finSeq      uint32
	sawFin      bool // peer's FIN has been received (in order)
	forceUrgent bool

	reasm []reasmSeg

	// txc is the scratch chain segments are assembled in; ipOutput
	// consumes and empties it, so every send reuses the same chain and
	// its pooled segments (allocated lazily by tcpSendSegment).
	txc *mbuf.Chain
}

func newTCPCB(st *Stack, s *Socket) *tcpcb {
	return &tcpcb{
		st:       st,
		sock:     s,
		state:    tcpClosed,
		mss:      tcpDefaultMSS,
		cwnd:     tcpDefaultMSS,
		ssthresh: 65535,
	}
}

// connName renders the connection 4-tuple for trace records.
func (tp *tcpcb) connName() string {
	s := tp.sock
	return fmt.Sprintf("%v:%d>%v:%d", s.local.IP, s.local.Port, s.remote.IP, s.remote.Port)
}

// traceOn is the stack guard, safe on a tcb with no stack attached
// (unit tests build bare control blocks).
func (tp *tcpcb) traceOn() bool { return tp.st != nil && tp.st.traceOn() }

// setState moves the TCP state machine to ns, recording the transition
// on the flight recorder. Every transition after tcb creation goes
// through here; keeping the write in one place is what makes the trace
// a complete state-machine oracle.
func (tp *tcpcb) setState(ns tcpState) {
	if tp.state == ns {
		return
	}
	if tp.traceOn() {
		tp.st.traceEmit(trace.EvTCPState, tp.connName(), tp.state.String()+" -> "+ns.String(), 0, 0, 0)
	}
	tp.state = ns
}

// traceCwnd records a congestion-window sample after any cwnd/ssthresh
// change (growth, fast recovery, RTO collapse).
func (tp *tcpcb) traceCwnd() {
	if tp.st != nil {
		tp.st.mCwnd.Observe(int64(tp.cwnd))
	}
	if tp.traceOn() {
		tp.st.traceEmit(trace.EvTCPCwnd, tp.connName(), "", int64(tp.cwnd), int64(tp.ssthresh), 0)
	}
}

// effMSS applies deployment quirks to the MSS.
func (tp *tcpcb) effMSS() int {
	m := tp.mss
	if q := tp.st.cfg.MaxTCPPayload; q > 0 && m > q {
		m = q
	}
	return m
}

// peerClosed reports whether the peer's FIN has been received and all
// preceding data consumed from the protocol (reader will see EOF after
// draining the receive buffer).
func (tp *tcpcb) peerClosed() bool { return tp.sawFin }

// connect begins an active open. The caller blocks on the socket's
// stateChanged condition.
func (tp *tcpcb) connect(t *sim.Proc) error {
	tp.iss = tp.st.iss()
	tp.sndUna, tp.sndNxt, tp.sndMax = tp.iss, tp.iss, tp.iss
	tp.sndUp = tp.iss
	tp.setState(tcpSynSent)
	tp.timers[timerKeep] = tcpKeepInitTicks
	tp.st.tcpOutput(t, tp)
	return nil
}

// usrClosed moves the state machine forward when the user closes or
// shuts down writing; tcp_output will emit the FIN when the send buffer
// drains.
func (tp *tcpcb) usrClosed(t *sim.Proc) {
	switch tp.state {
	case tcpEstablished:
		tp.setState(tcpFinWait1)
	case tcpCloseWait:
		tp.setState(tcpLastAck)
	case tcpSynRcvd:
		tp.setState(tcpFinWait1)
	}
	tp.st.tcpOutput(t, tp)
}

// drop terminates the connection with an error delivered to the user
// (tcp_drop). It does not send anything.
func (tp *tcpcb) drop(t *sim.Proc, err error) {
	s := tp.sock
	if err != nil {
		s.err = err
	}
	tp.close(t)
}

// close releases the tcb and detaches the socket from the stack
// (tcp_close).
func (tp *tcpcb) close(t *sim.Proc) {
	tp.setState(tcpClosed)
	for i := range tp.timers {
		tp.timers[i] = 0
	}
	tp.reasm = nil
	s := tp.sock
	tp.st.deregister(s)
	s.stateChanged.Broadcast()
	s.sorwakeup(t, 0)
	s.sowwakeup(t, 0)
	if s.listener != nil {
		s.listener.notify()
	}
}

// sendRST emits a reset for this connection.
func (tp *tcpcb) sendRST(t *sim.Proc) {
	if tp.state == tcpListen || tp.state == tcpClosed {
		return
	}
	tp.st.tcpRespond(t, tp.sock.local, tp.sock.remote, tp.sndNxt, tp.rcvNxt, flagRST|flagACK)
}

// rttUpdate folds a measured round trip into the smoothed estimators
// (Jacobson's algorithm, in nanoseconds rather than ticks).
func (tp *tcpcb) rttUpdate(rtt time.Duration) {
	m := float64(rtt)
	if tp.srtt != 0 {
		delta := m - tp.srtt
		tp.srtt += delta / 8
		if delta < 0 {
			delta = -delta
		}
		tp.rttvar += (delta - tp.rttvar) / 4
	} else {
		tp.srtt = m
		tp.rttvar = m / 2
	}
	tp.rexmtShift = 0
	if tp.st != nil {
		tp.st.mRTT.Observe(int64(rtt))
	}
	if tp.traceOn() {
		tp.st.traceEmit(trace.EvTCPRTT, tp.connName(), "",
			int64(rtt), int64(tp.srtt), int64(tp.rttvar))
	}
}

// rexmtTicks returns the current retransmission timeout in slow ticks,
// with exponential backoff applied.
func (tp *tcpcb) rexmtTicks() int {
	rtoNS := tp.srtt + 4*tp.rttvar
	ticks := int(rtoNS / float64(time.Second/slowHz))
	if ticks < tcpMinRexmtTicks {
		ticks = tcpMinRexmtTicks
	}
	shift := tp.rexmtShift
	if shift > tcpMaxRexmits {
		shift = tcpMaxRexmits
	}
	ticks *= tcpBackoff[shift]
	if ticks > tcpMaxRexmtTicks {
		ticks = tcpMaxRexmtTicks
	}
	return ticks
}

// State exposes the connection state name for diagnostics and tests.
func (tp *tcpcb) State() tcpState { return tp.state }

// TCPStateOf reports the state name of a TCP socket ("CLOSED" for
// sockets without a control block). Exported for tests and diagnostics.
func TCPStateOf(s *Socket) string {
	if s.tcb == nil {
		return "CLOSED"
	}
	return s.tcb.state.String()
}

// TCP header flag aliases (local names to keep segment-building code
// readable).
const (
	flagFIN = 0x01
	flagSYN = 0x02
	flagRST = 0x04
	flagPSH = 0x08
	flagACK = 0x10
	flagURG = 0x20
)

// DebugTCB renders a TCP socket's control-block state for diagnostics.
func DebugTCB(s *Socket) string {
	if s == nil || s.tcb == nil {
		return "<no tcb>"
	}
	tp := s.tcb
	return fmt.Sprintf(
		"%s una=%d nxt=%d max=%d (rel una=%d nxt=%d) sndWnd=%d cwnd=%d ssthresh=%d dupAcks=%d rcvNxt(rel)=%d rcvAdv(rel)=%d sndQ=%d rcvQ=%d reasm=%d timers=%v shift=%d finSent=%v finSeq=%d sawFin=%v force=%v ackNow=%v delAck=%v",
		tp.state, tp.sndUna, tp.sndNxt, tp.sndMax,
		tp.sndUna-tp.iss, tp.sndNxt-tp.iss,
		tp.sndWnd, tp.cwnd, tp.ssthresh, tp.dupAcks,
		tp.rcvNxt-tp.irs, tp.rcvAdv-tp.irs,
		s.snd.len(), s.rcv.len(), len(tp.reasm), tp.timers, tp.rexmtShift,
		tp.finSent, tp.finSeq, tp.sawFin, tp.force, tp.ackNow, tp.delAck)
}

// DebugWaiters reports how many threads are parked on each socket buffer
// condition (diagnostics).
func DebugWaiters(s *Socket) string {
	if s == nil {
		return "<nil>"
	}
	rw, sw := -1, -1
	if s.rcv != nil {
		rw = s.rcv.cond.Waiters()
	}
	if s.snd != nil {
		sw = s.snd.cond.Waiters()
	}
	return fmt.Sprintf("rcvWaiters=%d sndWaiters=%d closed=%v err=%v rdShut=%v wrShut=%v", rw, sw, s.closed, s.err, s.rdShut, s.wrShut)
}
