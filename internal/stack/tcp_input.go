package stack

import (
	"repro/internal/costs"
	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/socketapi"
	"repro/internal/trace"
	"repro/internal/wire"
)

// tcpInput processes one received TCP segment (tcp_input). ih is the IP
// header; seg holds the TCP header and payload.
func (st *Stack) tcpInput(t *sim.Proc, ih wire.IPv4Header, seg []byte) {
	st.Stats.TCPIn.Inc()
	if !st.rxVerified {
		st.Stats.SwChecksumBytes.Add(uint64(len(seg)))
		if !wire.VerifyTCPChecksum(ih.Src, ih.Dst, seg) {
			st.Stats.TCPChecksumErrors.Inc()
			if st.traceOn() {
				st.traceEmit(trace.EvChecksumDrop, "", "tcp", int64(len(seg)), 0, 0)
			}
			return
		}
	}
	th, hlen, err := wire.UnmarshalTCP(seg)
	if err != nil {
		st.Stats.Drops.Inc()
		return
	}
	payload := seg[hlen:]
	st.charge(t, true, costs.CompTransportInput, len(payload))

	local := Addr{IP: ih.Dst, Port: th.DstPort}
	remote := Addr{IP: ih.Src, Port: th.SrcPort}
	s := st.lookup(wire.ProtoTCP, local, remote)
	if s == nil || s.tcb == nil {
		// No socket: RST unless the segment itself is a RST (or this is a
		// migration race; see QuietOrphans and OrphanFilter).
		if th.Flags&flagRST == 0 && !st.orphanQuiet(wire.ProtoTCP, local, remote) {
			st.respondToOrphan(t, th, local, remote, len(payload))
		}
		return
	}
	tp := s.tcb
	tp.idleTicks = 0
	tp.keepProbes = 0

	// LISTEN: a SYN creates a new connection (sonewconn).
	if tp.state == tcpListen {
		switch {
		case th.Flags&flagRST != 0:
			return
		case th.Flags&flagACK != 0:
			// A bare ACK at a listener is either a half-open remnant (RST
			// it) or a data segment racing a session migration (drop it;
			// the session's new owner handles the retransmission).
			if !st.orphanQuiet(wire.ProtoTCP, local, remote) {
				st.tcpRespond(t, local, remote, th.Ack, 0, flagRST)
			}
			return
		case th.Flags&flagSYN == 0:
			return
		}
		// Enforce the backlog against connections not yet accepted.
		if len(s.listenQ) >= s.listenBacklog {
			st.Stats.Drops.Inc()
			return
		}
		ns := st.NewSocket(wire.ProtoTCP)
		ns.local = Addr{IP: st.cfg.LocalIP, Port: local.Port}
		ns.remote = remote
		ns.listener = s
		ns.sndbufSize, ns.rcvbufSize = s.sndbufSize, s.rcvbufSize
		ns.snd.hiwat, ns.rcv.hiwat = s.sndbufSize, s.rcvbufSize
		ns.noDelay = s.noDelay
		st.conns[tuple{wire.ProtoTCP, ns.local, ns.remote}] = ns
		ntp := newTCPCB(st, ns)
		ns.tcb = ntp
		if th.MSS != 0 {
			ntp.mss = int(th.MSS)
		}
		ntp.irs = th.Seq
		ntp.rcvNxt = th.Seq + 1
		ntp.rcvAdv = ntp.rcvNxt
		ntp.rcvUp = ntp.irs // urgent comparisons are mod-2^32 relative to the peer's ISS
		ntp.iss = st.iss()
		ntp.sndUna, ntp.sndNxt, ntp.sndMax = ntp.iss, ntp.iss, ntp.iss
		ntp.sndUp = ntp.iss
		ntp.sndWnd = uint32(th.Window)
		ntp.sndWl1, ntp.sndWl2 = th.Seq, 0
		ntp.setState(tcpSynRcvd)
		ntp.timers[timerKeep] = tcpKeepInitTicks
		st.tcpOutput(t, ntp) // SYN|ACK
		return
	}

	if th.MSS != 0 && th.Flags&flagSYN != 0 {
		tp.mss = int(th.MSS)
	}

	// SYN_SENT: waiting for our SYN to be answered.
	if tp.state == tcpSynSent {
		if th.Flags&flagACK != 0 && (seqLEQ(th.Ack, tp.iss) || seqGT(th.Ack, tp.sndMax)) {
			st.tcpRespond(t, local, remote, th.Ack, 0, flagRST)
			return
		}
		if th.Flags&flagRST != 0 {
			if th.Flags&flagACK != 0 {
				tp.drop(t, socketapi.ErrConnRefused)
			}
			return
		}
		if th.Flags&flagSYN == 0 {
			return
		}
		tp.irs = th.Seq
		tp.rcvNxt = th.Seq + 1
		tp.rcvAdv = tp.rcvNxt
		tp.rcvUp = tp.irs // urgent comparisons are mod-2^32 relative to the peer's ISS
		tp.sndWnd = uint32(th.Window)
		tp.sndWl1, tp.sndWl2 = th.Seq, th.Ack
		if th.Flags&flagACK != 0 && seqGT(th.Ack, tp.iss) {
			// Our SYN is acknowledged: connection complete.
			tp.sndUna = th.Ack
			tp.setState(tcpEstablished)
			tp.timers[timerRexmt] = 0
			tp.timers[timerKeep] = 0
			tp.ackNow = true
			s.stateChanged.Broadcast()
			s.notify()
			st.tcpOutput(t, tp)
		} else {
			// Simultaneous open.
			tp.setState(tcpSynRcvd)
			tp.ackNow = true
			st.tcpOutput(t, tp)
		}
		return
	}

	// General segment processing (states >= SYN_RCVD).

	// Trim the segment to the receive window.
	seq := th.Seq
	data := payload
	finFlag := th.Flags&flagFIN != 0

	if diff := int(int32(tp.rcvNxt - seq)); diff > 0 {
		// Leading duplicate bytes (or a duplicate SYN).
		if th.Flags&flagSYN != 0 {
			th.Flags &^= flagSYN
			seq++
			diff--
		}
		if diff >= len(data) {
			// Entirely duplicate (including bare keepalive probes, which
			// use seq one below the window). Keep the ACK information but
			// force a re-ACK so the peer resynchronizes (RFC 793: "if an
			// incoming segment is not acceptable, an acknowledgment
			// should be sent").
			tp.ackNow = true
			finFlag = false
			data = nil
			seq = tp.rcvNxt
		} else {
			data = data[diff:]
			seq = tp.rcvNxt
		}
	}
	// Trim anything beyond the window.
	if over := int(int32((seq + uint32(len(data))) - (tp.rcvNxt + tp.rcvWndEdge()))); over > 0 {
		if over >= len(data) {
			// Entirely outside. A zero-window probe still deserves an ACK.
			tp.ackNow = true
			data = nil
			finFlag = false
			if len(payload) == 0 && seqGT(seq, tp.rcvNxt) {
				// Out-of-window with no data: drop after ACK.
				st.tcpOutput(t, tp)
				return
			}
		} else {
			data = data[:len(data)-over]
			finFlag = false
		}
	}

	// RST.
	if th.Flags&flagRST != 0 {
		switch tp.state {
		case tcpSynRcvd:
			tp.drop(t, socketapi.ErrConnRefused)
		case tcpEstablished, tcpFinWait1, tcpFinWait2, tcpCloseWait:
			tp.drop(t, socketapi.ErrConnReset)
		case tcpClosing, tcpLastAck, tcpTimeWait:
			tp.close(t)
		}
		return
	}

	// A SYN inside the window is an error.
	if th.Flags&flagSYN != 0 {
		tp.sendRST(t)
		tp.drop(t, socketapi.ErrConnReset)
		return
	}

	if th.Flags&flagACK == 0 {
		return
	}

	// ACK processing.
	switch tp.state {
	case tcpSynRcvd:
		if seqLT(th.Ack, tp.sndUna) || seqGT(th.Ack, tp.sndMax) {
			st.tcpRespond(t, local, remote, th.Ack, 0, flagRST)
			return
		}
		tp.setState(tcpEstablished)
		tp.timers[timerKeep] = 0
		s.stateChanged.Broadcast()
		if l := s.listener; l != nil && !l.closed {
			waiters := l.accepting.Waiters()
			if waiters > 0 {
				st.charge(t, true, costs.CompWakeupUser, 0)
			}
			l.listenQ = append(l.listenQ, s)
			l.accepting.Signal()
			l.notify()
		}
	case tcpTimeWait:
		// Restart the 2MSL wait on any arriving segment.
		tp.timers[timer2MSL] = 2 * tcpMSLTicks
		tp.ackNow = true
	}

	if seqGT(th.Ack, tp.sndMax) {
		tp.ackNow = true
		st.tcpOutput(t, tp)
		return
	}

	if seqLEQ(th.Ack, tp.sndUna) {
		// Duplicate ACK.
		if len(data) == 0 && uint32(th.Window) == tp.sndWnd && tp.sndUna != tp.sndMax {
			st.Stats.TCPDupAcks.Inc()
			tp.dupAcks++
			if tp.dupAcks == 3 {
				// Fast retransmit (Net/2): halve the pipe, resend the
				// missing segment, inflate for the segments the dupacks
				// acknowledge.
				st.Stats.TCPFastRexmit.Inc()
				if st.traceOn() {
					st.traceEmit(trace.EvTCPRexmit, tp.connName(), "fast", int64(tp.dupAcks), 0, 0)
				}
				onxt := tp.sndNxt
				win := tp.sndWnd
				if tp.cwnd < win {
					win = tp.cwnd
				}
				ssthresh := win / 2
				if ssthresh < 2*uint32(tp.effMSS()) {
					ssthresh = 2 * uint32(tp.effMSS())
				}
				tp.ssthresh = ssthresh
				tp.timers[timerRexmt] = 0
				tp.rttTiming = false
				tp.sndNxt = tp.sndUna
				tp.cwndAcked = 0
				tp.cwnd = uint32(tp.effMSS())
				st.tcpOutput(t, tp)
				tp.cwnd = tp.ssthresh + 3*uint32(tp.effMSS())
				tp.traceCwnd()
				if seqGT(onxt, tp.sndNxt) {
					tp.sndNxt = onxt
				}
			} else if tp.dupAcks > 3 {
				tp.cwnd += uint32(tp.effMSS())
				st.tcpOutput(t, tp)
			}
		} else {
			tp.dupAcks = 0
		}
	} else {
		// New data acknowledged.
		if tp.dupAcks >= 3 && tp.cwnd > tp.ssthresh {
			tp.cwnd = tp.ssthresh // deflate after fast recovery
		}
		tp.dupAcks = 0
		acked := th.Ack - tp.sndUna

		// RTT sample (Karn: only segments acked without retransmission).
		if tp.rttTiming && seqGT(th.Ack, tp.rttSeq) {
			tp.rttTiming = false
			tp.rttUpdate(st.now().Sub(tp.rttStart))
		}

		// Congestion window growth, counted in bytes acknowledged
		// (RFC 3465) rather than ACKs received: a receiver that
		// coalesces segments ACKs rarely, and per-ACK counting would
		// starve the window behind an LRO engine.
		if tp.cwnd <= tp.ssthresh {
			// Slow start: at most double per window of ACKed data.
			incr := acked
			if incr > tp.cwnd {
				incr = tp.cwnd
			}
			tp.cwnd += incr
		} else {
			// Congestion avoidance: one MSS per cwnd's worth of ACKed
			// bytes, accumulated across stretched or delayed ACKs.
			tp.cwndAcked += acked
			if tp.cwndAcked >= tp.cwnd {
				tp.cwndAcked -= tp.cwnd
				tp.cwnd += uint32(tp.effMSS())
			}
		}
		if tp.cwnd > 65535 {
			tp.cwnd = 65535
		}
		tp.traceCwnd()

		// Remove acknowledged bytes from the send buffer, accounting for
		// SYN/FIN sequence numbers.
		dataAcked := int(acked)
		if tp.finSent && seqGT(th.Ack, tp.finSeq) {
			dataAcked--
		}
		synAcked := false
		if seqLEQ(tp.sndUna, tp.iss) && seqGT(th.Ack, tp.iss) {
			synAcked = true
			dataAcked--
		}
		_ = synAcked
		if dataAcked > s.snd.len() {
			dataAcked = s.snd.len()
		}
		if dataAcked > 0 {
			s.snd.drop(dataAcked)
			s.sowwakeup(t, dataAcked)
		}
		tp.sndUna = th.Ack
		if seqGT(tp.sndUna, tp.sndNxt) {
			tp.sndNxt = tp.sndUna
		}

		// Retransmit timer management.
		if th.Ack == tp.sndMax {
			tp.timers[timerRexmt] = 0
		} else if tp.timers[timerPersist] == 0 {
			tp.timers[timerRexmt] = tp.rexmtTicks()
		}

		ourFinAcked := tp.finSent && seqGT(tp.sndUna, tp.finSeq)
		switch tp.state {
		case tcpFinWait1:
			if ourFinAcked {
				tp.setState(tcpFinWait2)
				s.stateChanged.Broadcast()
			}
		case tcpClosing:
			if ourFinAcked {
				tp.setState(tcpTimeWait)
				tp.canonTimeWait()
				s.stateChanged.Broadcast()
			}
		case tcpLastAck:
			if ourFinAcked {
				tp.close(t)
				return
			}
		}
	}

	// Window update (RFC 793 ordering rules).
	if th.Flags&flagACK != 0 &&
		(seqLT(tp.sndWl1, seq) ||
			(tp.sndWl1 == seq && (seqLT(tp.sndWl2, th.Ack) ||
				(tp.sndWl2 == th.Ack && uint32(th.Window) > tp.sndWnd)))) {
		tp.sndWnd = uint32(th.Window)
		tp.sndWl1 = seq
		tp.sndWl2 = th.Ack
	}

	// Urgent data: capture the out-of-band byte when it arrives.
	if th.Flags&flagURG != 0 && th.Urgent > 0 && tp.state >= tcpEstablished {
		up := seq + uint32(th.Urgent)
		if seqGT(up, tp.rcvUp) {
			tp.rcvUp = up
			// The urgent byte is the last byte before the urgent pointer.
			if off := int(int32(up - seq - 1)); off >= 0 && off < len(data) {
				s.oob = append(s.oob, data[off])
			}
		}
	}

	// Payload processing.
	if len(data) > 0 && tp.state >= tcpEstablished && tp.state != tcpTimeWait &&
		tp.state != tcpClosing && tp.state != tcpLastAck {
		st.tcpReassemble(t, tp, seq, data, finFlag)
	} else if finFlag && seq == tp.rcvNxt {
		st.tcpHandleFin(t, tp)
	} else if len(data) > 0 || (finFlag && seqGT(seq, tp.rcvNxt)) {
		tp.ackNow = true
	}

	if tp.state == tcpClosed {
		return
	}
	if tp.ackNow || tp.delAck || s.snd.len() > int(tp.sndNxt-tp.sndUna) || tp.finSent && tp.sndNxt == tp.sndUna {
		st.tcpOutput(t, tp)
	}
}

// rcvWndEdge returns the current receive window extent for trimming.
func (tp *tcpcb) rcvWndEdge() uint32 {
	win := tp.sock.rcv.space()
	if win < 0 {
		win = 0
	}
	// Accept anything within what we last advertised, even if the buffer
	// shrank since.
	if adv := int(int32(tp.rcvAdv - tp.rcvNxt)); win < adv {
		win = adv
	}
	return uint32(win)
}

// tcpReassemble queues segment data, delivering everything that is now
// in order to the socket (tcp_reass).
func (st *Stack) tcpReassemble(t *sim.Proc, tp *tcpcb, seq uint32, data []byte, fin bool) {
	s := tp.sock
	if seq == tp.rcvNxt && len(tp.reasm) == 0 {
		// Common case: in order, nothing queued.
		st.charge(t, true, costs.CompMbufQueue, len(data))
		tp.rcvNxt += uint32(len(data))
		// Frame bytes are immutable once delivered (simnet ownership
		// rules): queue them by reference instead of copying.
		s.rcv.appendAlias(data)
		if tp.delAck {
			tp.ackNow = true // ACK every second segment
		} else {
			tp.delAck = true
			st.Stats.TCPDelayedAcks.Inc()
		}
		s.sorwakeup(t, len(data))
		if fin {
			st.tcpHandleFin(t, tp)
		}
		return
	}

	// Out of order (or filling a hole): insert into the reassembly queue.
	tp.ackNow = true // duplicate ACK tells the peer what we're missing
	st.insertReasm(tp, seq, data, fin)

	// Drain whatever is now contiguous.
	progress := 0
	for len(tp.reasm) > 0 {
		head := tp.reasm[0]
		if seqGT(head.seq, tp.rcvNxt) {
			break
		}
		// Trim any duplicate prefix.
		skip := int(int32(tp.rcvNxt - head.seq))
		if skip < head.data.Len() {
			head.data.TrimFront(skip)
			n := head.data.Len() // appendChain empties head.data; count first
			tp.rcvNxt += uint32(n)
			s.rcv.appendChain(head.data)
			progress += n
		}
		if head.fin {
			tp.reasm = tp.reasm[1:]
			if progress > 0 {
				s.sorwakeup(t, progress)
			}
			st.tcpHandleFin(t, tp)
			return
		}
		tp.reasm = tp.reasm[1:]
	}
	if progress > 0 {
		st.charge(t, true, costs.CompMbufQueue, progress)
		s.sorwakeup(t, progress)
	}
}

// insertReasm places a segment into the sorted reassembly queue, trimming
// overlap against existing segments conservatively.
func (st *Stack) insertReasm(tp *tcpcb, seq uint32, data []byte, fin bool) {
	c := mbuf.FromBytes(data) // frame bytes are immutable: alias, don't copy
	seg := reasmSeg{seq: seq, data: c, fin: fin}
	// Find insertion point.
	i := 0
	for ; i < len(tp.reasm); i++ {
		if seqLT(seq, tp.reasm[i].seq) {
			break
		}
	}
	// Trim against predecessor.
	if i > 0 {
		prev := tp.reasm[i-1]
		prevEnd := prev.seq + uint32(prev.data.Len())
		if seqGEQ(seq, prev.seq) && seqLT(seq, prevEnd) {
			overlap := int(int32(prevEnd - seq))
			if overlap >= c.Len() {
				c.Release()
				return // fully contained
			}
			c.TrimFront(overlap)
			seg.seq = prevEnd
		}
	}
	// Trim successors that this segment covers.
	j := i
	for j < len(tp.reasm) {
		next := tp.reasm[j]
		segEnd := seg.seq + uint32(seg.data.Len())
		if seqGEQ(next.seq, segEnd) {
			break
		}
		nextEnd := next.seq + uint32(next.data.Len())
		if seqLEQ(nextEnd, segEnd) {
			// Fully covered: remove it (keep its FIN if any).
			seg.fin = seg.fin || next.fin
			next.data.Release()
			j++
			continue
		}
		// Partial: trim our tail instead (keep existing queued data).
		seg.data.TrimBack(int(int32(segEnd - next.seq)))
		break
	}
	out := make([]reasmSeg, 0, len(tp.reasm)+1)
	out = append(out, tp.reasm[:i]...)
	if seg.data.Len() > 0 || seg.fin {
		out = append(out, seg)
	} else {
		seg.data.Release()
	}
	out = append(out, tp.reasm[j:]...)
	tp.reasm = out
}

// tcpHandleFin processes an in-sequence FIN from the peer.
func (st *Stack) tcpHandleFin(t *sim.Proc, tp *tcpcb) {
	s := tp.sock
	if tp.sawFin {
		tp.ackNow = true
		return
	}
	tp.sawFin = true
	tp.rcvNxt++
	tp.ackNow = true
	s.sorwakeup(t, 0) // readers see EOF after draining
	switch tp.state {
	case tcpSynRcvd, tcpEstablished:
		tp.setState(tcpCloseWait)
	case tcpFinWait1:
		// Our FIN not yet acked (or this segment acked it; the ACK path
		// already moved us to FIN_WAIT_2 in that case).
		tp.setState(tcpClosing)
	case tcpFinWait2:
		tp.setState(tcpTimeWait)
		tp.canonTimeWait()
	}
	s.stateChanged.Broadcast()
	s.notify()
}

// canonTimeWait arms the 2MSL timer and cancels the others.
func (tp *tcpcb) canonTimeWait() {
	for i := range tp.timers {
		tp.timers[i] = 0
	}
	tp.timers[timer2MSL] = 2 * tcpMSLTicks
}

// respondToOrphan sends the RFC 793 reset for a segment with no socket.
func (st *Stack) respondToOrphan(t *sim.Proc, th wire.TCPHeader, local, remote Addr, payloadLen int) {
	if th.Flags&flagACK != 0 {
		st.tcpRespond(t, local, remote, th.Ack, 0, flagRST)
	} else {
		n := uint32(payloadLen)
		if th.Flags&flagSYN != 0 {
			n++
		}
		if th.Flags&flagFIN != 0 {
			n++
		}
		st.tcpRespond(t, local, remote, 0, th.Seq+n, flagRST|flagACK)
	}
}
