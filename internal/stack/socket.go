package stack

import (
	"repro/internal/costs"
	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/socketapi"
	"repro/internal/wire"
)

// Socket is a protocol endpoint plus its socket-layer state: BSD's
// struct socket. TCP sockets own a tcpcb; UDP sockets own a datagram
// receive queue.
type Socket struct {
	st    *Stack
	uid   uint64 // creation order, for deterministic timer iteration
	Proto uint8

	local, remote Addr
	portReserved  bool

	// TCP.
	tcb           *tcpcb
	snd, rcv      *streamBuf
	oob           []byte // out-of-band byte(s), kept out of line as BSD does without OOBINLINE
	listenQ       []*Socket
	listenBacklog int
	listener      *Socket // set on sockets spawned by a listener

	// UDP.
	drcv *dgramBuf

	sndbufSize, rcvbufSize int
	noDelay                bool
	reuseAddr              bool
	keepAlive              bool

	// Chain-API accounting (psdstat -s surfaces these per socket).
	splicedBytes int64 // bytes moved through Splice, as source or sink
	zcRxBytes    int64 // bytes returned as RecvPeek aliased views
	selCopyBytes int64 // bytes materialized by CopyRanges specs

	err               error // so_error: async errors delivered to the next call
	rdShut, wrShut    bool
	closed            bool
	accepting         sim.Cond
	stateChanged      sim.Cond // connect()/close() progress
	migratedElsewhere bool     // session currently managed by another stack

	// Notify, when set, is invoked (in whatever thread caused the change)
	// whenever the socket becomes readable/writable or its state changes.
	// The decomposed architecture uses it for the cooperative select
	// machinery (proxy_status); it must not block.
	Notify func()
}

// NewSocket creates an unbound socket for proto (wire.ProtoTCP or
// wire.ProtoUDP).
func (st *Stack) NewSocket(proto uint8) *Socket {
	st.sockSeq++
	s := &Socket{
		st:         st,
		uid:        st.sockSeq,
		Proto:      proto,
		sndbufSize: st.cfg.SndBuf,
		rcvbufSize: st.cfg.RcvBuf,
	}
	switch proto {
	case wire.ProtoTCP:
		s.snd = newStreamBuf(s.sndbufSize)
		s.rcv = newStreamBuf(s.rcvbufSize)
	case wire.ProtoUDP:
		s.drcv = newDgramBuf(s.rcvbufSize)
	}
	return s
}

// LocalAddr returns the bound local endpoint.
func (s *Socket) LocalAddr() Addr { return s.local }

// RemoteAddr returns the connected remote endpoint.
func (s *Socket) RemoteAddr() Addr { return s.remote }

// Err returns and clears the pending asynchronous error (so_error).
func (s *Socket) takeErr() error {
	e := s.err
	s.err = nil
	return e
}

func (s *Socket) notify() {
	if s.Notify != nil {
		s.Notify()
	}
}

// sorwakeup wakes readers after data (or EOF/error) arrives. The waker
// pays the wakeup cost only if someone is actually waiting.
func (s *Socket) sorwakeup(t *sim.Proc, n int) {
	var waiters int
	if s.rcv != nil {
		waiters = s.rcv.cond.Waiters()
	}
	if s.drcv != nil {
		waiters += s.drcv.cond.Waiters()
	}
	if waiters > 0 {
		s.st.charge(t, s.Proto == wire.ProtoTCP, costs.CompWakeupUser, n)
	}
	if s.rcv != nil {
		s.rcv.cond.Broadcast()
	}
	if s.drcv != nil {
		s.drcv.cond.Broadcast()
	}
	s.notify()
}

// sowwakeup wakes writers after send-buffer space opens up.
func (s *Socket) sowwakeup(t *sim.Proc, n int) {
	if s.snd != nil && s.snd.cond.Waiters() > 0 {
		s.st.charge(t, s.Proto == wire.ProtoTCP, costs.CompWakeupUser, n)
		s.snd.cond.Broadcast()
	}
	s.notify()
}

// Bind names the socket's local endpoint. A zero port allocates an
// ephemeral port. A zero IP binds to the stack's address (single-homed
// hosts, so INADDR_ANY and the local address are interchangeable on
// output; lookup handles both).
func (st *Stack) Bind(s *Socket, addr Addr) error {
	return st.bindLocked(s, addr)
}

// bindLocked is Bind for callers already inside the protocol lock (and
// for the lock-free public path: Bind performs no yielding operations, so
// it is atomic with respect to other simulated threads either way).
func (st *Stack) bindLocked(s *Socket, addr Addr) error {
	if s.local.Port != 0 {
		return socketapi.ErrInvalid // already bound
	}
	if !addr.IP.IsZero() && addr.IP != st.cfg.LocalIP {
		return socketapi.ErrAddrNotAvail
	}
	port := addr.Port
	var err error
	if port == 0 {
		port, err = st.cfg.Ports.AllocEphemeral(s.Proto)
	} else {
		err = st.cfg.Ports.Reserve(s.Proto, port, s.reuseAddr)
	}
	if err != nil {
		return err
	}
	s.local = Addr{IP: addr.IP, Port: port}
	s.portReserved = true
	st.binds[tuple{s.Proto, s.local, Addr{}}] = s
	return nil
}

// registerConn moves a socket into the full-tuple connection map.
func (st *Stack) registerConn(s *Socket) {
	delete(st.binds, tuple{s.Proto, s.local, Addr{}})
	st.conns[tuple{s.Proto, s.local, s.remote}] = s
}

// deregister removes the socket from all demultiplexing tables and
// releases its port.
func (st *Stack) deregister(s *Socket) {
	delete(st.binds, tuple{s.Proto, s.local, Addr{}})
	if !s.remote.IsZero() {
		delete(st.conns, tuple{s.Proto, s.local, s.remote})
	}
	if s.portReserved {
		// A listener's port may be shared with its spawned connections;
		// only the reserving socket releases it.
		st.cfg.Ports.Release(s.Proto, s.local.Port)
		s.portReserved = false
	}
}

// Listen marks a bound TCP socket passive.
func (st *Stack) Listen(s *Socket, backlog int) error {
	if s.Proto != wire.ProtoTCP {
		return socketapi.ErrNotSupported
	}
	if s.local.Port == 0 {
		return socketapi.ErrInvalid
	}
	if backlog < 1 {
		backlog = 1
	}
	s.listenBacklog = backlog
	if s.tcb == nil {
		s.tcb = newTCPCB(st, s)
		s.tcb.setState(tcpListen)
	}
	return nil
}

// Accept blocks until an established connection is available on the
// listen queue and returns it.
func (st *Stack) Accept(t *sim.Proc, s *Socket) (*Socket, error) {
	if s.listenBacklog == 0 {
		return nil, socketapi.ErrInvalid
	}
	for len(s.listenQ) == 0 && !s.closed && s.err == nil {
		s.accepting.Wait(t)
	}
	if err := s.takeErr(); err != nil {
		return nil, err
	}
	if len(s.listenQ) == 0 {
		return nil, socketapi.ErrBadFD // closed while accepting
	}
	ns := s.listenQ[0]
	s.listenQ = s.listenQ[1:]
	return ns, nil
}

// Connect actively opens a TCP connection (blocking until established or
// failed) or sets a UDP socket's default remote endpoint.
func (st *Stack) Connect(t *sim.Proc, s *Socket, raddr Addr) error {
	if raddr.IP.IsZero() || raddr.Port == 0 {
		return socketapi.ErrInvalid
	}
	st.lock(t)
	defer st.unlock()
	if s.local.Port == 0 {
		if err := st.bindLocked(s, Addr{}); err != nil {
			return err
		}
	}
	// The bind table entry may be keyed under the wildcard IP; remove it
	// under the old key before qualifying the local address.
	delete(st.binds, tuple{s.Proto, s.local, Addr{}})
	s.local.IP = st.cfg.LocalIP
	switch s.Proto {
	case wire.ProtoUDP:
		if !s.remote.IsZero() {
			delete(st.conns, tuple{s.Proto, s.local, s.remote})
		}
		s.remote = raddr
		st.registerConn(s)
		return nil
	case wire.ProtoTCP:
		if s.tcb != nil && s.tcb.state != tcpClosed {
			return socketapi.ErrIsConn
		}
		s.remote = raddr
		st.registerConn(s)
		s.tcb = newTCPCB(st, s)
		connStart := st.now()
		if err := s.tcb.connect(t); err != nil {
			return err
		}
		// Wait for the handshake to finish.
		for s.tcb.state != tcpEstablished && s.tcb.state != tcpClosed && s.err == nil {
			st.condWait(t, &s.stateChanged)
		}
		if err := s.takeErr(); err != nil {
			st.deregister(s)
			return err
		}
		if s.tcb.state != tcpEstablished {
			st.deregister(s)
			return socketapi.ErrConnRefused
		}
		st.mConnect.Observe(int64(st.now().Sub(connStart)))
		return nil
	}
	return socketapi.ErrNotSupported
}

// SendOpts packages send-side options.
type SendOpts struct {
	// OOB marks the data urgent (MSG_OOB).
	OOB bool
	// To overrides the destination (sendto/sendmsg).
	To *Addr
	// ZeroCopy references the caller's buffer instead of copying it (the
	// paper's NEWAPI shared-buffer interface).
	ZeroCopy bool
}

// Send writes data on the socket: the implementation behind all ten BSD
// data-movement calls. iov is a gather list; for UDP it forms a single
// datagram.
func (st *Stack) Send(t *sim.Proc, s *Socket, iov [][]byte, opts SendOpts) (int, error) {
	total := 0
	for _, b := range iov {
		total += len(b)
	}
	isTCP := s.Proto == wire.ProtoTCP
	st.lock(t)
	defer st.unlock()
	if err := s.takeErr(); err != nil {
		return 0, err
	}
	if s.wrShut {
		return 0, socketapi.ErrPipe
	}
	st.charge(t, isTCP, costs.CompEntryCopyin, total)

	switch s.Proto {
	case wire.ProtoUDP:
		dst := s.remote
		if opts.To != nil {
			dst = *opts.To
		}
		if dst.IsZero() {
			return 0, socketapi.ErrNotConn
		}
		if s.local.Port == 0 {
			if err := st.bindLocked(s, Addr{}); err != nil {
				return 0, err
			}
		}
		if total > maxUDPDatagram {
			return 0, socketapi.ErrMsgSize
		}
		var payload *mbuf.Chain
		if opts.ZeroCopy {
			payload = mbuf.New()
			for _, b := range iov {
				payload.AppendChain(mbuf.FromBytes(b))
			}
			st.Stats.SockAliasedBytes.Add(uint64(total))
		} else {
			payload = mbuf.New()
			for _, b := range iov {
				payload.AppendBytes(b)
			}
			st.Stats.SockCopiedBytes.Add(uint64(total))
		}
		src := s.local
		if src.IP.IsZero() {
			src.IP = st.cfg.LocalIP
		}
		if err := st.udpOutput(t, src, dst, payload); err != nil {
			return 0, err
		}
		return total, nil

	case wire.ProtoTCP:
		tcb := s.tcb
		if tcb == nil || tcb.state < tcpEstablished {
			return 0, socketapi.ErrNotConn
		}
		sent := 0
		for _, b := range iov {
			for len(b) > 0 {
				for s.snd.space() <= 0 && s.err == nil && !s.wrShut && tcb.state >= tcpEstablished {
					st.condWait(t, &s.snd.cond)
				}
				if err := s.takeErr(); err != nil {
					return sent, err
				}
				if s.wrShut || tcb.state == tcpClosed {
					return sent, socketapi.ErrPipe
				}
				n := s.snd.space()
				if n > len(b) {
					n = len(b)
				}
				if opts.ZeroCopy {
					s.snd.appendRef(b[:n])
					st.Stats.SockAliasedBytes.Add(uint64(n))
				} else {
					s.snd.appendBytes(b[:n])
					st.Stats.SockCopiedBytes.Add(uint64(n))
				}
				if opts.OOB && n == len(b) {
					// Urgent pointer covers through the last byte written.
					tcb.sndUp = tcb.sndUna + uint32(s.snd.len())
					tcb.forceUrgent = true
				}
				b = b[n:]
				sent += n
				st.tcpOutput(t, tcb)
			}
		}
		return sent, nil
	}
	return 0, socketapi.ErrNotSupported
}

// RecvOpts packages receive-side options.
type RecvOpts struct {
	// OOB reads out-of-band data (MSG_OOB).
	OOB bool
	// Peek reads without consuming (MSG_PEEK).
	Peek bool
	// ZeroCopy returns a protocol-owned view instead of copying into the
	// caller's buffer (NEWAPI).
	ZeroCopy bool
}

// Recv reads data from the socket into p (or, for zero-copy receives,
// returns an owned view). It returns the number of bytes, the source
// address (UDP), and for TCP an n of 0 with nil error at end of stream.
func (st *Stack) Recv(t *sim.Proc, s *Socket, p []byte, opts RecvOpts) (int, Addr, []byte, error) {
	st.lock(t)
	defer st.unlock()
	isTCP := s.Proto == wire.ProtoTCP
	if opts.OOB {
		if !isTCP {
			return 0, Addr{}, nil, socketapi.ErrInvalid
		}
		for len(s.oob) == 0 && s.err == nil && !s.rdShut {
			st.condWait(t, &s.rcv.cond)
		}
		if len(s.oob) == 0 {
			if err := s.takeErr(); err != nil {
				return 0, Addr{}, nil, err
			}
			return 0, Addr{}, nil, socketapi.ErrInvalid
		}
		n := copy(p, s.oob)
		if !opts.Peek {
			s.oob = s.oob[n:]
		}
		st.charge(t, true, costs.CompCopyoutExit, n)
		return n, s.remote, nil, nil
	}

	switch s.Proto {
	case wire.ProtoUDP:
		for s.drcv.len() == 0 && len(s.drcv.q) == 0 && s.err == nil && !s.rdShut {
			st.condWait(t, &s.drcv.cond)
		}
		if err := s.takeErr(); err != nil {
			return 0, Addr{}, nil, err
		}
		var d datagram
		var ok bool
		if opts.Peek {
			d, ok = s.drcv.peek()
		} else {
			d, ok = s.drcv.dequeue()
		}
		if !ok {
			return 0, Addr{}, nil, nil // shutdown with nothing queued
		}
		if opts.ZeroCopy {
			b := d.data.Bytes()
			if !opts.Peek {
				d.data.Release()
			}
			st.Stats.SockCopiedBytes.Add(uint64(len(b))) // flattening the view is a copy
			st.charge(t, false, costs.CompCopyoutExit, len(b))
			return len(b), d.from, b, nil
		}
		n := d.data.ReadAt(p, 0)
		if !opts.Peek {
			d.data.Release() // rest of datagram is discarded, as BSD does
		}
		st.Stats.SockCopiedBytes.Add(uint64(n))
		st.charge(t, false, costs.CompCopyoutExit, n)
		return n, d.from, nil, nil

	case wire.ProtoTCP:
		tcb := s.tcb
		if tcb == nil {
			return 0, Addr{}, nil, socketapi.ErrNotConn
		}
		for s.rcv.len() == 0 && s.err == nil && !s.rdShut && !tcb.peerClosed() {
			st.condWait(t, &s.rcv.cond)
		}
		if s.rcv.len() == 0 {
			if err := s.takeErr(); err != nil {
				return 0, Addr{}, nil, err
			}
			return 0, s.remote, nil, nil // EOF
		}
		var n int
		var view []byte
		if opts.ZeroCopy {
			max := len(p)
			if max == 0 {
				max = s.rcv.len()
			}
			c := s.rcv.readChain(max)
			view = c.Bytes()
			n = len(view)
			c.Release()
			st.Stats.SockCopiedBytes.Add(uint64(n)) // flattening the view is a copy
		} else if opts.Peek {
			n = s.rcv.data.ReadAt(p, 0)
			st.Stats.SockCopiedBytes.Add(uint64(n))
		} else {
			n = s.rcv.readInto(p)
			st.Stats.SockCopiedBytes.Add(uint64(n))
		}
		if !opts.Peek {
			// Receive window opened; let the peer know if it matters.
			st.tcpOutput(t, tcb)
		}
		st.charge(t, true, costs.CompCopyoutExit, n)
		return n, s.remote, view, nil
	}
	return 0, Addr{}, nil, socketapi.ErrNotSupported
}

// Shutdown closes one or both directions.
func (st *Stack) Shutdown(t *sim.Proc, s *Socket, how int) error {
	st.lock(t)
	defer st.unlock()
	return st.shutdownLocked(t, s, how)
}

func (st *Stack) shutdownLocked(t *sim.Proc, s *Socket, how int) error {
	if how == socketapi.ShutRd || how == socketapi.ShutRdWr {
		s.rdShut = true
		s.sorwakeup(t, 0)
	}
	if how == socketapi.ShutWr || how == socketapi.ShutRdWr {
		if !s.wrShut {
			s.wrShut = true
			if s.tcb != nil && s.tcb.state >= tcpEstablished {
				s.tcb.usrClosed(t)
			}
		}
	}
	return nil
}

// Close releases the socket. TCP connections continue the shutdown
// handshake in the background (the deployment may instead migrate the
// session to the OS server first, which is the paper's design).
func (st *Stack) Close(t *sim.Proc, s *Socket) error {
	st.lock(t)
	defer st.unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	// Abort connections still waiting in the accept queue.
	for _, pending := range s.listenQ {
		if pending.tcb != nil {
			pending.tcb.drop(t, socketapi.ErrConnReset)
		}
	}
	s.listenQ = nil
	s.accepting.Broadcast()
	switch {
	case s.tcb != nil && s.tcb.state == tcpListen:
		s.tcb.setState(tcpClosed)
		st.deregister(s)
	case s.tcb != nil:
		if s.tcb.state < tcpEstablished {
			// Connection never completed: abort.
			s.tcb.drop(t, nil)
			st.deregister(s)
		} else if !s.wrShut {
			s.wrShut = true
			s.rdShut = true
			s.tcb.usrClosed(t)
			// deregistration happens when the tcb reaches tcpClosed.
		}
	default:
		st.deregister(s)
	}
	s.sorwakeup(t, 0)
	s.sowwakeup(t, 0)
	return nil
}

// Abort resets the connection immediately (RST), as when a process dies
// holding a session.
func (st *Stack) Abort(t *sim.Proc, s *Socket) {
	st.lock(t)
	defer st.unlock()
	if s.tcb != nil && s.tcb.state != tcpClosed {
		s.tcb.sendRST(t)
		s.tcb.drop(t, socketapi.ErrConnReset)
	}
	s.closed = true
	st.deregister(s)
}

// Readable reports whether a receive-type call would not block.
func (s *Socket) Readable() bool {
	if s.err != nil || s.rdShut || s.closed {
		return true
	}
	if len(s.listenQ) > 0 {
		return true
	}
	if s.rcv != nil && s.rcv.len() > 0 {
		return true
	}
	if s.drcv != nil && len(s.drcv.q) > 0 {
		return true
	}
	if s.tcb != nil && s.tcb.peerClosed() {
		return true
	}
	return false
}

// Writable reports whether a send-type call would not block.
func (s *Socket) Writable() bool {
	if s.err != nil || s.wrShut || s.closed {
		return true
	}
	switch s.Proto {
	case wire.ProtoUDP:
		return true
	case wire.ProtoTCP:
		return s.tcb != nil && s.tcb.state >= tcpEstablished && s.snd.space() > 0
	}
	return false
}

// SetOption applies a socket option.
func (st *Stack) SetOption(s *Socket, opt, value int) error {
	switch opt {
	case socketapi.SoRcvBuf:
		if value <= 0 {
			return socketapi.ErrInvalid
		}
		s.rcvbufSize = value
		if s.rcv != nil {
			s.rcv.hiwat = value
		}
		if s.drcv != nil {
			s.drcv.hiwat = value
		}
	case socketapi.SoSndBuf:
		if value <= 0 {
			return socketapi.ErrInvalid
		}
		s.sndbufSize = value
		if s.snd != nil {
			s.snd.hiwat = value
		}
	case socketapi.SoReuseAddr:
		s.reuseAddr = value != 0
	case socketapi.TCPNoDelay:
		s.noDelay = value != 0
	case socketapi.SoKeepAlive:
		s.keepAlive = value != 0
	default:
		return socketapi.ErrInvalid
	}
	return nil
}

// GetOption reads a socket option.
func (st *Stack) GetOption(s *Socket, opt int) (int, error) {
	b2i := func(b bool) int {
		if b {
			return 1
		}
		return 0
	}
	switch opt {
	case socketapi.SoRcvBuf:
		return s.rcvbufSize, nil
	case socketapi.SoSndBuf:
		return s.sndbufSize, nil
	case socketapi.SoReuseAddr:
		return b2i(s.reuseAddr), nil
	case socketapi.TCPNoDelay:
		return b2i(s.noDelay), nil
	case socketapi.SoKeepAlive:
		return b2i(s.keepAlive), nil
	}
	return 0, socketapi.ErrInvalid
}

// maxUDPDatagram is the largest datagram the stack will emit (BSD's
// default limit; larger payloads fragment at the IP layer).
const maxUDPDatagram = 9216
