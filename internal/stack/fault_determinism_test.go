package stack_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/stack"
	"repro/internal/wire"
)

// faultRunSignature captures everything a fault-injected run produced
// that could reveal nondeterminism: wire-level activity, per-link fault
// decisions, protocol-level recovery work, payload integrity, and the
// exact virtual time the workload finished at.
type faultRunSignature struct {
	Seg        simnet.Stats
	FaultsA    fault.Counters
	FaultsB    fault.Counters
	RexmitA    uint64
	RexmitB    uint64
	ChecksumsA uint64
	ChecksumsB uint64
	BytesAtoB  int
	BytesBtoA  int
	FwdOK      bool
	RevOK      bool
	FinalTime  sim.Time
}

// runFaultWorkload runs two simultaneous TCP transfers (one in each
// direction, on separate connections) under heavy fault injection plus
// a scheduled partition, and returns the run's signature.
func runFaultWorkload(t *testing.T, seed int64) faultRunSignature {
	t.Helper()
	w := newWorld(seed)
	w.s.Deadline = sim.Time(3 * time.Hour)
	inj := w.seg.Faults()
	inj.SetDefaultRates(fault.Rates{
		Drop:      0.05,
		Dup:       0.03,
		Corrupt:   0.06,
		Reorder:   0.08,
		ReorderBy: 2 * time.Millisecond,
		Jitter:    300 * time.Microsecond,
	})
	plan, err := fault.ParsePlan("@120ms partition A|B for=300ms")
	if err != nil {
		t.Fatal(err)
	}
	inj.Schedule(plan)

	const xferBytes = 48 * 1024
	fwd := make([]byte, xferBytes)
	rev := make([]byte, xferBytes)
	w.s.Rand().Read(fwd)
	w.s.Rand().Read(rev)
	var gotFwd, gotRev bytes.Buffer

	serve := func(n *node, port uint16, into *bytes.Buffer) func(*sim.Proc) {
		return func(p *sim.Proc) {
			ls := n.st.NewSocket(wire.ProtoTCP)
			n.st.Bind(ls, stack.Addr{Port: port})
			n.st.Listen(ls, 1)
			cs, err := n.st.Accept(p, ls)
			if err != nil {
				t.Errorf("accept on %d: %v", port, err)
				return
			}
			buf := make([]byte, 4096)
			for {
				rn, _, _, err := n.st.Recv(p, cs, buf, stack.RecvOpts{})
				if err != nil {
					t.Errorf("recv on %d: %v", port, err)
					return
				}
				if rn == 0 {
					return
				}
				into.Write(buf[:rn])
			}
		}
	}
	push := func(n *node, peer *node, port uint16, data []byte) func(*sim.Proc) {
		return func(p *sim.Proc) {
			p.Sleep(time.Millisecond)
			s := n.st.NewSocket(wire.ProtoTCP)
			if err := n.st.Connect(p, s, stack.Addr{IP: peer.st.LocalIP(), Port: port}); err != nil {
				t.Errorf("connect to %d: %v", port, err)
				return
			}
			off := 0
			for off < len(data) {
				wn, err := n.st.Send(p, s, [][]byte{data[off:min(off+2048, len(data))]}, stack.SendOpts{})
				if err != nil {
					t.Errorf("send to %d: %v", port, err)
					return
				}
				off += wn
			}
			n.st.Close(p, s)
		}
	}
	w.s.Spawn("b-serve", serve(w.b, 5001, &gotFwd))
	w.s.Spawn("a-serve", serve(w.a, 5002, &gotRev))
	w.s.Spawn("a-push", push(w.a, w.b, 5001, fwd))
	w.s.Spawn("b-push", push(w.b, w.a, 5002, rev))
	if err := w.s.Run(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return faultRunSignature{
		Seg:        *w.seg.Stats(),
		FaultsA:    inj.Counters("A"),
		FaultsB:    inj.Counters("B"),
		RexmitA:    w.a.st.Stats.TCPRexmit.Value(),
		RexmitB:    w.b.st.Stats.TCPRexmit.Value(),
		ChecksumsA: w.a.st.Stats.ChecksumErrors(),
		ChecksumsB: w.b.st.Stats.ChecksumErrors(),
		BytesAtoB:  gotFwd.Len(),
		BytesBtoA:  gotRev.Len(),
		FwdOK:      bytes.Equal(gotFwd.Bytes(), fwd),
		RevOK:      bytes.Equal(gotRev.Bytes(), rev),
		FinalTime:  w.s.Now(),
	}
}

// TestFaultInjectionIsSeedDeterministic is the regression gate for the
// fault layer's core promise: the same seed replays the same run, bit
// for bit — same wire traffic, same fault decisions, same
// retransmissions, same finish time — and a different seed does not.
func TestFaultInjectionIsSeedDeterministic(t *testing.T) {
	first := runFaultWorkload(t, 11)
	if !first.FwdOK || !first.RevOK {
		t.Fatalf("transfer corrupted under faults: %+v", first)
	}
	if first.Seg.FramesDropped() == 0 || first.Seg.FramesCorrupted.Value() == 0 || first.Seg.PartitionDrops.Value() == 0 {
		t.Fatalf("fault injection not active: %+v", first.Seg)
	}
	if first.RexmitA+first.RexmitB == 0 {
		t.Fatalf("no retransmissions under 5%% loss + partition")
	}
	if first.ChecksumsA+first.ChecksumsB == 0 {
		t.Fatalf("no checksum discards despite corruption injection")
	}

	again := runFaultWorkload(t, 11)
	if first != again {
		t.Fatalf("same seed diverged:\n run 1: %+v\n run 2: %+v", first, again)
	}

	other := runFaultWorkload(t, 12)
	if !other.FwdOK || !other.RevOK {
		t.Fatalf("transfer corrupted under faults (seed 12): %+v", other)
	}
	if first == other {
		t.Fatalf("different seeds produced identical runs: %+v", first)
	}
}
