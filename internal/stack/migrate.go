package stack

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/wire"
)

// This file implements session migration, the heart of the paper's
// protocol decomposition: once the operating-system server establishes a
// connection, its entire protocol state — the TCP state variables plus
// any unacknowledged or undelivered data — is packaged up and moved into
// the application's protocol library, which manages the session until an
// exceptional operation (close, fork, process death) migrates it back.

// ReasmSegState is one out-of-order segment captured by a migration.
type ReasmSegState struct {
	Seq  uint32
	Data []byte
	Fin  bool
}

// TCPSessionState is the serializable protocol state of one TCP session:
// what actually travels between the OS server and a protocol library.
type TCPSessionState struct {
	Local, Remote Addr

	State int // tcpState

	SndUna, SndNxt, SndMax uint32
	SndWnd, SndUp          uint32
	SndWl1, SndWl2, ISS    uint32
	RcvNxt, RcvUp          uint32
	IRS, RcvAdv            uint32
	Cwnd, Ssthresh         uint32
	SRTT, RTTVar           float64
	MSS                    int
	FinSent                bool
	FinSeq                 uint32
	SawFin                 bool
	AckPending             bool // an ACK was owed (delayed or immediate) at export

	SndQ  []byte // bytes in the send buffer (unacked + unsent)
	RcvQ  []byte // bytes received but not yet read by the application
	OOB   []byte
	Reasm []ReasmSegState

	SndBufSize, RcvBufSize int
	NoDelay                bool
	KeepAlive              bool
	RdShut, WrShut         bool
}

// WireSize estimates the bytes moved by the migration RPC, used to charge
// its cost.
func (ss *TCPSessionState) WireSize() int {
	n := 120 + len(ss.SndQ) + len(ss.RcvQ) + len(ss.OOB)
	for _, r := range ss.Reasm {
		n += 8 + len(r.Data)
	}
	return n
}

// StateName returns the TCP state name carried by the snapshot.
func (ss *TCPSessionState) StateName() string { return tcpState(ss.State).String() }

// ExportTCPSession snapshots a connection's state and detaches it from
// this stack: the socket stops demultiplexing here, its timers go dead,
// and the caller is expected to hand the snapshot to another stack. The
// socket's port reservation is NOT released — in the decomposed
// architecture the namespace entry belongs to the OS server for the
// session's whole lifetime.
func (st *Stack) ExportTCPSession(t *sim.Proc, s *Socket) (*TCPSessionState, error) {
	st.lock(t)
	defer st.unlock()
	tp := s.tcb
	if tp == nil || tp.state < tcpEstablished {
		return nil, fmt.Errorf("stack: cannot migrate %s session", TCPStateOf(s))
	}
	ss := &TCPSessionState{
		Local: s.local, Remote: s.remote,
		State:  int(tp.state),
		SndUna: tp.sndUna, SndNxt: tp.sndNxt, SndMax: tp.sndMax,
		SndWnd: tp.sndWnd, SndUp: tp.sndUp,
		SndWl1: tp.sndWl1, SndWl2: tp.sndWl2, ISS: tp.iss,
		RcvNxt: tp.rcvNxt, RcvUp: tp.rcvUp,
		IRS: tp.irs, RcvAdv: tp.rcvAdv,
		Cwnd: tp.cwnd, Ssthresh: tp.ssthresh,
		SRTT: tp.srtt, RTTVar: tp.rttvar,
		MSS:     tp.mss,
		FinSent: tp.finSent, FinSeq: tp.finSeq, SawFin: tp.sawFin,
		AckPending: tp.delAck || tp.ackNow,
		SndQ:       s.snd.data.Bytes(),
		RcvQ:       s.rcv.data.Bytes(),
		OOB:        append([]byte(nil), s.oob...),
		SndBufSize: s.sndbufSize, RcvBufSize: s.rcvbufSize,
		NoDelay: s.noDelay, KeepAlive: s.keepAlive,
		RdShut: s.rdShut, WrShut: s.wrShut,
	}
	for _, r := range tp.reasm {
		ss.Reasm = append(ss.Reasm, ReasmSegState{Seq: r.seq, Data: r.data.Bytes(), Fin: r.fin})
	}
	// Detach without releasing the port.
	s.portReserved = false
	s.migratedElsewhere = true
	tp.setState(tcpClosed)
	for i := range tp.timers {
		tp.timers[i] = 0
	}
	st.deregister(s)
	return ss, nil
}

// ImportTCPSession installs a migrated session into this stack, returning
// the socket that now manages it. Packet-filter redirection is the
// caller's responsibility.
func (st *Stack) ImportTCPSession(t *sim.Proc, ss *TCPSessionState) *Socket {
	st.lock(t)
	defer st.unlock()
	s := st.NewSocket(wire.ProtoTCP)
	s.local, s.remote = ss.Local, ss.Remote
	s.sndbufSize, s.rcvbufSize = ss.SndBufSize, ss.RcvBufSize
	s.snd.hiwat, s.rcv.hiwat = ss.SndBufSize, ss.RcvBufSize
	s.noDelay = ss.NoDelay
	s.keepAlive = ss.KeepAlive
	s.rdShut, s.wrShut = ss.RdShut, ss.WrShut
	s.oob = append([]byte(nil), ss.OOB...)
	if len(ss.SndQ) > 0 {
		s.snd.appendBytes(ss.SndQ)
	}
	if len(ss.RcvQ) > 0 {
		s.rcv.appendBytes(ss.RcvQ)
	}

	tp := newTCPCB(st, s)
	s.tcb = tp
	tp.setState(tcpState(ss.State))
	tp.sndUna, tp.sndNxt, tp.sndMax = ss.SndUna, ss.SndNxt, ss.SndMax
	tp.sndWnd, tp.sndUp = ss.SndWnd, ss.SndUp
	tp.sndWl1, tp.sndWl2, tp.iss = ss.SndWl1, ss.SndWl2, ss.ISS
	tp.rcvNxt, tp.rcvUp = ss.RcvNxt, ss.RcvUp
	tp.irs, tp.rcvAdv = ss.IRS, ss.RcvAdv
	tp.cwnd, tp.ssthresh = ss.Cwnd, ss.Ssthresh
	tp.srtt, tp.rttvar = ss.SRTT, ss.RTTVar
	tp.mss = ss.MSS
	tp.finSent, tp.finSeq, tp.sawFin = ss.FinSent, ss.FinSeq, ss.SawFin
	for _, r := range ss.Reasm {
		st.insertReasm(tp, r.Seq, r.Data, r.Fin)
	}

	st.conns[tuple{wire.ProtoTCP, s.local, s.remote}] = s

	// Re-arm the retransmit timer if data is in flight, and continue the
	// close handshake if one was interrupted mid-migration. An ACK the
	// exporting stack still owed the peer (its delayed-ACK timer died
	// with the export) is sent immediately — otherwise the peer's Nagle
	// algorithm deadlocks against our silence until its RTO fires.
	if tp.sndMax != tp.sndUna {
		tp.timers[timerRexmt] = tp.rexmtTicks()
	}
	tp.ackNow = ss.AckPending
	if tp.state == tcpTimeWait {
		tp.canonTimeWait()
	}
	st.tcpOutput(t, tp)
	return s
}

// AdoptUDPSession creates a UDP socket whose endpoint naming was done by
// the OS server (the library side of a migrated UDP session). No state
// variables exist for UDP; only the binding moves.
func (st *Stack) AdoptUDPSession(local, remote Addr) *Socket {
	s := st.NewSocket(wire.ProtoUDP)
	s.local = local
	if remote.IsZero() {
		st.binds[tuple{wire.ProtoUDP, s.local, Addr{}}] = s
	} else {
		s.remote = remote
		st.conns[tuple{wire.ProtoUDP, s.local, s.remote}] = s
	}
	return s
}

// DropUDPSession detaches a UDP socket without releasing its
// server-owned port.
func (st *Stack) DropUDPSession(s *Socket) {
	s.portReserved = false
	st.deregister(s)
}
