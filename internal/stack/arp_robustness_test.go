package stack_test

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/wire"
)

// arpPendingBudget spells out the accounting this file pins down: an
// unresolved ARP entry queues at most arpMaxPendingPkts (8) outputs;
// resolution tries 1 initial request plus arpMaxRetries (5) retries at
// one per second before giving up and dropping the whole queue.
const (
	arpPendingMax   = 8
	arpTotalReqs    = 6
	arpGiveUpWithin = 10 * time.Second
)

// TestARPResolutionFailureAccounting sends a burst of datagrams to an
// address nobody owns and checks PendingDropped to the packet: the
// overflow beyond the per-entry queue is dropped immediately, the
// queued remainder when resolution gives up — and exactly six request
// broadcasts ever hit the wire.
func TestARPResolutionFailureAccounting(t *testing.T) {
	w := newWorld(17)
	dead := wire.IP(10, 0, 0, 99) // on-link, no such host
	const burst = 10

	w.s.Spawn("burst", func(p *sim.Proc) {
		s := w.a.st.NewSocket(wire.ProtoUDP)
		for i := 0; i < burst; i++ {
			if _, err := w.a.st.Send(p, s, [][]byte{[]byte("x")}, stack.SendOpts{To: &stack.Addr{IP: dead, Port: 7}}); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		}
		if got := w.a.st.ARP().PendingDropped; got != burst-arpPendingMax {
			t.Errorf("PendingDropped after burst = %d, want %d (queue overflow)", got, burst-arpPendingMax)
		}
	})
	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
	if err := w.s.RunFor(arpGiveUpWithin); err != nil {
		t.Fatal(err)
	}

	if got := w.a.st.ARP().PendingDropped; got != burst {
		t.Errorf("PendingDropped after give-up = %d, want %d (2 overflow + 8 abandoned)", got, burst)
	}
	if _, ok := w.a.st.ARP().LookupCached(dead); ok {
		t.Errorf("gave-up entry still cached")
	}
	// The only wire traffic is the request broadcasts: 1 on first use +
	// 5 retries, never one per queued packet.
	if got := w.seg.Stats().FramesSent.Value(); got != arpTotalReqs {
		t.Errorf("frames on the wire = %d, want %d ARP requests", got, arpTotalReqs)
	}
}

// TestARPLateResolutionFlushesQueue verifies the complement: if the
// mapping arrives before give-up, every queued packet goes out and
// nothing is dropped.
func TestARPLateResolutionFlushesQueue(t *testing.T) {
	w := newWorld(18)
	ghost := wire.IP(10, 0, 0, 50)
	ghostMAC := wire.MAC{0xde, 0xad, 0, 0, 0, 50}
	const queued = 5

	w.s.Spawn("sender", func(p *sim.Proc) {
		s := w.a.st.NewSocket(wire.ProtoUDP)
		for i := 0; i < queued; i++ {
			if _, err := w.a.st.Send(p, s, [][]byte{[]byte("y")}, stack.SendOpts{To: &stack.Addr{IP: ghost, Port: 7}}); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		}
		// Resolution completes (say, a reply finally gets through) two
		// seconds in — inside the retry window.
		p.Sleep(2 * time.Second)
		w.a.st.ARP().Insert(ghost, ghostMAC)
	})
	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
	if err := w.s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}

	if got := w.a.st.ARP().PendingDropped; got != 0 {
		t.Errorf("PendingDropped = %d, want 0 (queue flushed on learn)", got)
	}
	if got := w.a.st.Stats.UDPOut.Value(); got != queued {
		t.Errorf("UDPOut = %d, want %d", got, queued)
	}
	// The host's NIC carried the flushed datagrams plus the request
	// broadcasts sent while unresolved (initial + retries at 1/s for 2s).
	if tx := w.a.host.NIC.TxFrames.Value(); tx < queued+1 || tx > queued+4 {
		t.Errorf("sender NIC TxFrames = %d, want %d datagrams + 1-4 ARP requests", tx, queued)
	}
}

// TestARPEntryExpiryForcesReResolution pins cache aging: a resolved
// entry vanishes after its 20 s TTL, and the next output resolves
// afresh instead of using stale state.
func TestARPEntryExpiryForcesReResolution(t *testing.T) {
	w := newWorld(19)
	var first, second int // ARP frames seen on the segment

	countARP := func() int {
		// Count request broadcasts from A by looking at B's deliveries of
		// broadcast ARP traffic; B replies to each, so pairs match.
		return w.a.st.ARP().Version()
	}

	w.s.Spawn("talk", func(p *sim.Proc) {
		s := w.a.st.NewSocket(wire.ProtoUDP)
		w.a.st.Send(p, s, [][]byte{[]byte("one")}, stack.SendOpts{To: &stack.Addr{IP: w.b.st.LocalIP(), Port: 7}})
		p.Sleep(100 * time.Millisecond)
		if _, ok := w.a.st.ARP().LookupCached(w.b.st.LocalIP()); !ok {
			t.Error("peer not cached after first exchange")
		}
		first = countARP()
		// Sit idle past the 20 s TTL.
		p.Sleep(25 * time.Second)
		if _, ok := w.a.st.ARP().LookupCached(w.b.st.LocalIP()); ok {
			t.Error("entry survived past its TTL")
		}
		w.a.st.Send(p, s, [][]byte{[]byte("two")}, stack.SendOpts{To: &stack.Addr{IP: w.b.st.LocalIP(), Port: 7}})
		p.Sleep(100 * time.Millisecond)
		second = countARP()
	})
	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
	if second <= first {
		t.Errorf("no fresh resolution after expiry: version %d -> %d", first, second)
	}
}
