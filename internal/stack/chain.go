package stack

import (
	"repro/internal/costs"
	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/socketapi"
	"repro/internal/wire"
)

// Chain-based data movement: the socket layer without its copies.
//
// SendChain surrenders a refcounted chain to the protocol, RecvPeek
// returns a storage-sharing view of the receive queue with Libra-style
// selective materialization, RecvRelease consumes, and Splice pumps
// bytes socket-to-socket entirely below the API (sendfile for two
// sockets). The send queue doubles as the retransmission queue, so
// segments in flight hold references into the same storage; chain
// mutations by the application go through mbuf.WriteAt, whose
// copy-on-write keeps those segments intact.

// SendChain queues the chain's bytes on the socket, surrendering
// ownership of c: the protocol releases its segments as data is
// acknowledged (TCP) or transmitted (UDP), and releases the remainder
// on error. Blocks until every byte is queued. Returns the byte count.
func (st *Stack) SendChain(t *sim.Proc, s *Socket, c *mbuf.Chain, opts SendOpts) (int, error) {
	if c == nil {
		c = mbuf.New()
	}
	total := c.Len()
	isTCP := s.Proto == wire.ProtoTCP
	st.lock(t)
	defer st.unlock()
	if err := s.takeErr(); err != nil {
		c.Release()
		return 0, err
	}
	if s.wrShut {
		c.Release()
		return 0, socketapi.ErrPipe
	}
	// System entry without the copyin: the chain is handed over by
	// reference, so only the fixed entry cost is paid.
	st.charge(t, isTCP, costs.CompEntryCopyin, 0)

	switch s.Proto {
	case wire.ProtoUDP:
		dst := s.remote
		if opts.To != nil {
			dst = *opts.To
		}
		if dst.IsZero() {
			c.Release()
			return 0, socketapi.ErrNotConn
		}
		if s.local.Port == 0 {
			if err := st.bindLocked(s, Addr{}); err != nil {
				c.Release()
				return 0, err
			}
		}
		if total > maxUDPDatagram {
			c.Release()
			return 0, socketapi.ErrMsgSize
		}
		src := s.local
		if src.IP.IsZero() {
			src.IP = st.cfg.LocalIP
		}
		st.Stats.SockAliasedBytes.Add(uint64(total))
		if err := st.udpOutput(t, src, dst, c); err != nil {
			return 0, err
		}
		return total, nil

	case wire.ProtoTCP:
		tcb := s.tcb
		if tcb == nil || tcb.state < tcpEstablished {
			c.Release()
			return 0, socketapi.ErrNotConn
		}
		sent := 0
		for c.Len() > 0 {
			for s.snd.space() <= 0 && s.err == nil && !s.wrShut && tcb.state >= tcpEstablished {
				st.condWait(t, &s.snd.cond)
			}
			if err := s.takeErr(); err != nil {
				c.Release()
				return sent, err
			}
			if s.wrShut || tcb.state == tcpClosed {
				c.Release()
				return sent, socketapi.ErrPipe
			}
			n := c.Len()
			if sp := s.snd.space(); n > sp {
				n = sp
			}
			if n == c.Len() {
				s.snd.appendChain(c)
			} else {
				rest := c.Split(n)
				s.snd.appendChain(c) // c is emptied by the move
				c.AppendChain(rest)  // remainder becomes the next round's input
			}
			sent += n
			st.Stats.SockAliasedBytes.Add(uint64(n))
			if opts.OOB && c.Len() == 0 {
				tcb.sndUp = tcb.sndUna + uint32(s.snd.len())
				tcb.forceUrgent = true
			}
			st.tcpOutput(t, tcb)
		}
		return sent, nil
	}
	c.Release()
	return 0, socketapi.ErrNotSupported
}

// RecvPeek blocks until data (or EOF/error) and returns a
// storage-sharing view of up to max bytes of the receive queue without
// consuming them, plus a private copy of each requested range
// (clamped to the view). max <= 0 means everything available. For UDP
// the view covers (a prefix of) the front datagram and from is its
// source. At EOF the view is an empty chain and err is nil.
//
// The caller owns the view chain: it must Release it or surrender it
// to SendChain. The viewed bytes stay valid across RecvRelease because
// the view holds its own storage references.
func (st *Stack) RecvPeek(t *sim.Proc, s *Socket, max int, ranges []socketapi.Range) (*mbuf.Chain, [][]byte, Addr, error) {
	st.lock(t)
	defer st.unlock()
	isTCP := s.Proto == wire.ProtoTCP

	var view *mbuf.Chain
	var from Addr
	switch s.Proto {
	case wire.ProtoUDP:
		for s.drcv.len() == 0 && len(s.drcv.q) == 0 && s.err == nil && !s.rdShut {
			st.condWait(t, &s.drcv.cond)
		}
		if err := s.takeErr(); err != nil {
			return nil, nil, Addr{}, err
		}
		d, ok := s.drcv.peek()
		if !ok {
			return mbuf.New(), nil, Addr{}, nil // shutdown with nothing queued
		}
		n := d.data.Len()
		if max > 0 && max < n {
			n = max
		}
		view = d.data.CopyRegion(0, n)
		from = d.from

	case wire.ProtoTCP:
		tcb := s.tcb
		if tcb == nil {
			return nil, nil, Addr{}, socketapi.ErrNotConn
		}
		for s.rcv.len() == 0 && s.err == nil && !s.rdShut && !tcb.peerClosed() {
			st.condWait(t, &s.rcv.cond)
		}
		if s.rcv.len() == 0 {
			if err := s.takeErr(); err != nil {
				return nil, nil, Addr{}, err
			}
			return mbuf.New(), nil, s.remote, nil // EOF
		}
		n := s.rcv.len()
		if max > 0 && max < n {
			n = max
		}
		view = s.rcv.data.CopyRegion(0, n)
		from = s.remote

	default:
		return nil, nil, Addr{}, socketapi.ErrNotSupported
	}

	n := view.Len()
	s.zcRxBytes += int64(n)
	st.Stats.ZeroCopyRxBytes.Add(uint64(n))
	st.Stats.SockAliasedBytes.Add(uint64(n))
	copied, copiedBytes := st.materializeRanges(s, view, ranges)
	// Exit pays copyout only for the selectively materialized bytes.
	st.charge(t, isTCP, costs.CompCopyoutExit, copiedBytes)
	return view, copied, from, nil
}

// materializeRanges builds the private flat copies a RecvPeek caller
// asked for, clamping each range to the view. Returns the copies and
// the total bytes copied.
func (st *Stack) materializeRanges(s *Socket, view *mbuf.Chain, ranges []socketapi.Range) ([][]byte, int) {
	if len(ranges) == 0 {
		return nil, 0
	}
	out := make([][]byte, len(ranges))
	total := 0
	for i, r := range ranges {
		off, ln := r.Off, r.Len
		if off < 0 {
			off = 0
		}
		if off > view.Len() {
			off = view.Len()
		}
		if ln < 0 || off+ln > view.Len() {
			ln = view.Len() - off
		}
		b := make([]byte, ln)
		view.ReadAt(b, off)
		out[i] = b
		total += ln
	}
	s.selCopyBytes += int64(total)
	st.Stats.SelectiveCopyBytes.Add(uint64(total))
	st.Stats.SockCopiedBytes.Add(uint64(total))
	return out, total
}

// RecvRelease consumes n bytes from the receive queue (clamped to what
// is queued) and advertises the opened window. For UDP it consumes the
// front datagram regardless of n (record boundaries). Views returned
// by RecvPeek remain valid: they hold their own references.
func (st *Stack) RecvRelease(t *sim.Proc, s *Socket, n int) error {
	if n < 0 {
		return socketapi.ErrInvalid
	}
	st.lock(t)
	defer st.unlock()
	switch s.Proto {
	case wire.ProtoUDP:
		if d, ok := s.drcv.dequeue(); ok {
			d.data.Release()
		}
	case wire.ProtoTCP:
		if s.tcb == nil {
			return socketapi.ErrNotConn
		}
		if n > s.rcv.len() {
			n = s.rcv.len()
		}
		s.rcv.drop(n)
		// Receive window opened; let the peer know if it matters.
		st.tcpOutput(t, s.tcb)
	default:
		return socketapi.ErrNotSupported
	}
	st.charge(t, s.Proto == wire.ProtoTCP, costs.CompCopyoutExit, 0)
	return nil
}

// Splice moves up to n bytes from src's receive queue to dst's send
// queue by reference — no byte is copied — blocking until n bytes have
// moved or src reaches EOF. Both sockets must be connected TCP streams
// on this stack. Flow control composes naturally: a full dst send
// buffer stalls the pump, src's receive window closes, and the
// upstream sender slows down. Returns the number of bytes moved (0 at
// immediate EOF).
func (st *Stack) Splice(t *sim.Proc, dst, src *Socket, n int) (int, error) {
	if src.Proto != wire.ProtoTCP || dst.Proto != wire.ProtoTCP {
		return 0, socketapi.ErrNotSupported
	}
	st.lock(t)
	defer st.unlock()
	if src.tcb == nil || dst.tcb == nil || dst.tcb.state < tcpEstablished {
		return 0, socketapi.ErrNotConn
	}
	st.charge(t, true, costs.CompEntryCopyin, 0)
	st.Stats.SpliceOps.Inc()
	moved := 0
	for moved < n {
		// Wait for source bytes.
		for src.rcv.len() == 0 && src.err == nil && !src.rdShut && !src.tcb.peerClosed() {
			st.condWait(t, &src.rcv.cond)
		}
		if src.rcv.len() == 0 {
			if err := src.takeErr(); err != nil {
				return moved, err
			}
			break // EOF
		}
		// Wait for sink space.
		for dst.snd.space() <= 0 && dst.err == nil && !dst.wrShut && dst.tcb.state >= tcpEstablished {
			st.condWait(t, &dst.snd.cond)
		}
		if err := dst.takeErr(); err != nil {
			return moved, err
		}
		if dst.wrShut || dst.tcb.state == tcpClosed {
			return moved, socketapi.ErrPipe
		}
		chunk := src.rcv.len()
		if sp := dst.snd.space(); chunk > sp {
			chunk = sp
		}
		if rem := n - moved; chunk > rem {
			chunk = rem
		}
		if chunk <= 0 {
			continue // raced: re-evaluate both wait conditions
		}
		c := src.rcv.readChain(chunk)
		dst.snd.appendChain(c)
		moved += chunk
		src.splicedBytes += int64(chunk)
		dst.splicedBytes += int64(chunk)
		st.Stats.SpliceBytes.Add(uint64(chunk))
		st.Stats.SockAliasedBytes.Add(uint64(chunk))
		st.charge(t, true, costs.CompMbufQueue, chunk)
		st.tcpOutput(t, dst.tcb) // push the forwarded bytes
		st.tcpOutput(t, src.tcb) // advertise src's opened window
	}
	return moved, nil
}
