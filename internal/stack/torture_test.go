package stack_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/wire"
)

// tortureCases is the fault matrix both the stack-level torture test
// and the deployment-level robustness matrix (psd package) run over:
// loss, duplication, reordering, their combination, and a mid-transfer
// partition that heals before TCP gives up. Plans use the fault-plan
// DSL; host/link names in this file's world are "A" and "B".
var tortureCases = []struct {
	Name  string
	Rates fault.Rates
	Plan  string
}{
	{"clean", fault.Rates{}, ""},
	{"loss2", fault.Rates{Drop: 0.02}, ""},
	{"loss10", fault.Rates{Drop: 0.10}, ""},
	{"dup5", fault.Rates{Dup: 0.05}, ""},
	{"reorder10", fault.Rates{Reorder: 0.10, ReorderBy: 3 * time.Millisecond}, ""},
	{"everything", fault.Rates{Drop: 0.05, Dup: 0.05, Reorder: 0.10, ReorderBy: 3 * time.Millisecond}, ""},
	{"partheal", fault.Rates{}, "@150ms partition A|B for=400ms"},
}

// TestTCPTortureMatrix runs bidirectional TCP transfers under combined
// loss, duplication, reordering, and partition-and-heal across many
// seeds, asserting the byte streams arrive intact in both directions.
// This is the stack's main robustness property: whatever the network
// does (short of corruption, which checksums catch), TCP delivers the
// exact stream.
func TestTCPTortureMatrix(t *testing.T) {
	for _, c := range tortureCases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				runTorture(t, seed, c.Rates, c.Plan)
			}
		})
	}
}

func runTorture(t *testing.T, seed int64, rates fault.Rates, planText string) {
	t.Helper()
	w := newWorld(seed)
	w.s.Deadline = sim.Time(3 * time.Hour)
	w.seg.Faults().SetDefaultRates(rates)
	if planText != "" {
		plan, err := fault.ParsePlan(planText)
		if err != nil {
			t.Fatalf("bad fault plan: %v", err)
		}
		w.seg.Faults().Schedule(plan)
	}

	const fwdBytes, revBytes = 48 * 1024, 24 * 1024
	fwd := make([]byte, fwdBytes)
	rev := make([]byte, revBytes)
	w.s.Rand().Read(fwd)
	w.s.Rand().Read(rev)
	var gotFwd, gotRev bytes.Buffer

	// B accepts, reads the forward stream, and simultaneously writes the
	// reverse stream from a second thread.
	w.s.Spawn("b-main", func(p *sim.Proc) {
		ls := w.b.st.NewSocket(wire.ProtoTCP)
		w.b.st.Bind(ls, stack.Addr{Port: 5001})
		w.b.st.Listen(ls, 1)
		cs, err := w.b.st.Accept(p, ls)
		if err != nil {
			t.Errorf("seed %d: accept: %v", seed, err)
			return
		}
		w.s.Spawn("b-writer", func(wp *sim.Proc) {
			off := 0
			for off < revBytes {
				n, err := w.b.st.Send(wp, cs, [][]byte{rev[off:min(off+2048, revBytes)]}, stack.SendOpts{})
				if err != nil {
					t.Errorf("seed %d: b send: %v", seed, err)
					return
				}
				off += n
			}
			w.b.st.Shutdown(wp, cs, 1 /* ShutWr */)
		})
		buf := make([]byte, 4096)
		for {
			n, _, _, err := w.b.st.Recv(p, cs, buf, stack.RecvOpts{})
			if err != nil {
				t.Errorf("seed %d: b recv: %v", seed, err)
				return
			}
			if n == 0 {
				return
			}
			gotFwd.Write(buf[:n])
		}
	})

	w.s.Spawn("a-main", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		s := w.a.st.NewSocket(wire.ProtoTCP)
		if err := w.a.st.Connect(p, s, stack.Addr{IP: w.b.st.LocalIP(), Port: 5001}); err != nil {
			t.Errorf("seed %d: connect: %v", seed, err)
			return
		}
		w.s.Spawn("a-writer", func(wp *sim.Proc) {
			off := 0
			for off < fwdBytes {
				n, err := w.a.st.Send(wp, s, [][]byte{fwd[off:min(off+3000, fwdBytes)]}, stack.SendOpts{})
				if err != nil {
					t.Errorf("seed %d: a send: %v", seed, err)
					return
				}
				off += n
			}
			w.a.st.Shutdown(wp, s, 1)
		})
		buf := make([]byte, 4096)
		for {
			n, _, _, err := w.a.st.Recv(p, s, buf, stack.RecvOpts{})
			if err != nil {
				t.Errorf("seed %d: a recv: %v", seed, err)
				return
			}
			if n == 0 {
				return
			}
			gotRev.Write(buf[:n])
		}
	})

	if err := w.s.Run(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if !bytes.Equal(gotFwd.Bytes(), fwd) {
		t.Fatalf("seed %d: forward stream corrupted (%d/%d bytes)", seed, gotFwd.Len(), fwdBytes)
	}
	if !bytes.Equal(gotRev.Bytes(), rev) {
		t.Fatalf("seed %d: reverse stream corrupted (%d/%d bytes)", seed, gotRev.Len(), revBytes)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestTCPUrgentData exercises MSG_OOB end to end: the urgent byte is
// delivered out of band while the in-band stream stays intact.
func TestTCPUrgentData(t *testing.T) {
	w := newWorld(20)
	var inband bytes.Buffer
	var oob []byte

	w.s.Spawn("server", func(p *sim.Proc) {
		ls := w.b.st.NewSocket(wire.ProtoTCP)
		w.b.st.Bind(ls, stack.Addr{Port: 5001})
		w.b.st.Listen(ls, 1)
		cs, err := w.b.st.Accept(p, ls)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 100)
		for inband.Len() < 10 {
			n, _, _, err := w.b.st.Recv(p, cs, buf, stack.RecvOpts{})
			if err != nil || n == 0 {
				t.Errorf("recv: n=%d err=%v", n, err)
				return
			}
			inband.Write(buf[:n])
		}
		ob := make([]byte, 1)
		n, _, _, err := w.b.st.Recv(p, cs, ob, stack.RecvOpts{OOB: true})
		if err != nil || n != 1 {
			t.Errorf("oob recv: n=%d err=%v", n, err)
			return
		}
		oob = append(oob, ob[0])
	})
	w.s.Spawn("client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		s := w.a.st.NewSocket(wire.ProtoTCP)
		if err := w.a.st.Connect(p, s, stack.Addr{IP: w.b.st.LocalIP(), Port: 5001}); err != nil {
			t.Error(err)
			return
		}
		w.a.st.Send(p, s, [][]byte{[]byte("hello")}, stack.SendOpts{})
		w.a.st.Send(p, s, [][]byte{[]byte("!")}, stack.SendOpts{OOB: true})
		w.a.st.Send(p, s, [][]byte{[]byte("world")}, stack.SendOpts{})
	})
	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := inband.String(); got != "hello!worl" && got != "hello!world"[:inband.Len()] {
		t.Fatalf("inband = %q", got)
	}
	if len(oob) != 1 || oob[0] != '!' {
		t.Fatalf("oob = %q, want '!'", oob)
	}
}

// TestTCPNagleCoalesces verifies sender-side small-write coalescing: many
// small writes with data in flight produce far fewer segments than
// writes, and TCP_NODELAY disables the behaviour.
func TestTCPNagleCoalesces(t *testing.T) {
	run := func(noDelay bool) int {
		w := newWorld(21)
		done := make(chan struct{})
		_ = done
		var segs int
		w.s.Spawn("server", func(p *sim.Proc) {
			ls := w.b.st.NewSocket(wire.ProtoTCP)
			w.b.st.Bind(ls, stack.Addr{Port: 5001})
			w.b.st.Listen(ls, 1)
			cs, err := w.b.st.Accept(p, ls)
			if err != nil {
				t.Error(err)
				return
			}
			buf := make([]byte, 4096)
			total := 0
			for total < 400 {
				n, _, _, err := w.b.st.Recv(p, cs, buf, stack.RecvOpts{})
				if err != nil || n == 0 {
					return
				}
				total += n
			}
		})
		w.s.Spawn("client", func(p *sim.Proc) {
			p.Sleep(time.Millisecond)
			s := w.a.st.NewSocket(wire.ProtoTCP)
			if noDelay {
				w.a.st.SetOption(s, 3 /* TCPNoDelay */, 1)
			}
			if err := w.a.st.Connect(p, s, stack.Addr{IP: w.b.st.LocalIP(), Port: 5001}); err != nil {
				t.Error(err)
				return
			}
			before := w.a.st.Stats.TCPOut.Value()
			for i := 0; i < 100; i++ {
				if _, err := w.a.st.Send(p, s, [][]byte{[]byte("abcd")}, stack.SendOpts{}); err != nil {
					t.Error(err)
					return
				}
			}
			// Wait for everything to drain so all segments are counted.
			p.Sleep(2 * time.Second)
			segs = int(w.a.st.Stats.TCPOut.Value() - before)
		})
		if err := w.s.Run(); err != nil {
			t.Fatal(err)
		}
		return segs
	}
	nagle := run(false)
	nodelay := run(true)
	if nagle >= nodelay {
		t.Fatalf("Nagle (%d segments) should coalesce more than TCP_NODELAY (%d)", nagle, nodelay)
	}
	if nagle > 40 {
		t.Fatalf("Nagle sent %d segments for 100 tiny writes; expected heavy coalescing", nagle)
	}
}

// TestTCPRexmitBackoffGivesUp verifies ETIMEDOUT after repeated
// retransmissions when the peer vanishes mid-connection.
func TestTCPRexmitBackoffGivesUp(t *testing.T) {
	w := newWorld(22)
	w.s.Deadline = sim.Time(3 * time.Hour)
	var sendErr error
	w.s.Spawn("server", func(p *sim.Proc) {
		ls := w.b.st.NewSocket(wire.ProtoTCP)
		w.b.st.Bind(ls, stack.Addr{Port: 5001})
		w.b.st.Listen(ls, 1)
		cs, err := w.b.st.Accept(p, ls)
		if err != nil {
			t.Error(err)
			return
		}
		// Read one byte so the connection is fully established on both
		// sides, then exit; the partition happens after this.
		buf := make([]byte, 1)
		w.b.st.Recv(p, cs, buf, stack.RecvOpts{})
	})
	w.s.Spawn("client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		s := w.a.st.NewSocket(wire.ProtoTCP)
		if err := w.a.st.Connect(p, s, stack.Addr{IP: w.b.st.LocalIP(), Port: 5001}); err != nil {
			t.Error(err)
			return
		}
		if _, err := w.a.st.Send(p, s, [][]byte{[]byte("x")}, stack.SendOpts{}); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(100 * time.Millisecond)
		// Partition the network: everything is lost from here on.
		w.seg.Faults().Partition([]string{"A"}, []string{"B"})
		if _, err := w.a.st.Send(p, s, [][]byte{[]byte("into the void")}, stack.SendOpts{}); err != nil {
			sendErr = err
			return
		}
		// The send was buffered; the failure surfaces on a later call
		// once the retransmission timer gives up.
		buf := make([]byte, 10)
		_, _, _, sendErr = w.a.st.Recv(p, s, buf, stack.RecvOpts{})
	})
	if err := w.s.Run(); err != nil {
		t.Fatalf("%v (parked: %v)", err, w.s.ParkedProcs())
	}
	if sendErr == nil {
		t.Fatal("expected ETIMEDOUT after retransmission backoff")
	}
	if got := fmt.Sprint(sendErr); got != "connection timed out (ETIMEDOUT)" {
		t.Fatalf("err = %v, want ETIMEDOUT", sendErr)
	}
	if w.a.st.Stats.TCPRexmit.Value() < 5 {
		t.Fatalf("rexmits = %d; expected several backoff rounds", w.a.st.Stats.TCPRexmit.Value())
	}
}

// TestSimultaneousClose drives both ends through close at the same time
// (FIN_WAIT_1 -> CLOSING -> TIME_WAIT on both sides).
func TestSimultaneousClose(t *testing.T) {
	w := newWorld(23)
	var sa, sb *stack.Socket
	ready := 0
	w.s.Spawn("b", func(p *sim.Proc) {
		ls := w.b.st.NewSocket(wire.ProtoTCP)
		w.b.st.Bind(ls, stack.Addr{Port: 5001})
		w.b.st.Listen(ls, 1)
		cs, err := w.b.st.Accept(p, ls)
		if err != nil {
			t.Error(err)
			return
		}
		sb = cs
		ready++
		for ready < 2 {
			p.Sleep(time.Millisecond)
		}
		w.b.st.Close(p, cs)
	})
	w.s.Spawn("a", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		s := w.a.st.NewSocket(wire.ProtoTCP)
		if err := w.a.st.Connect(p, s, stack.Addr{IP: w.b.st.LocalIP(), Port: 5001}); err != nil {
			t.Error(err)
			return
		}
		sa = s
		ready++
		for ready < 2 {
			p.Sleep(time.Millisecond)
		}
		w.a.st.Close(p, s)
	})
	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
	if err := w.s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	stA, stB := stack.TCPStateOf(sa), stack.TCPStateOf(sb)
	okState := func(s string) bool { return s == "TIME_WAIT" || s == "CLOSED" }
	if !okState(stA) || !okState(stB) {
		t.Fatalf("states after simultaneous close: %s / %s", stA, stB)
	}
	if err := w.s.RunFor(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	if stack.TCPStateOf(sa) != "CLOSED" || stack.TCPStateOf(sb) != "CLOSED" {
		t.Fatalf("states after 2MSL: %s / %s", stack.TCPStateOf(sa), stack.TCPStateOf(sb))
	}
}

// TestRSTMidTransfer: a peer that aborts mid-stream surfaces ECONNRESET
// to the reader.
func TestRSTMidTransfer(t *testing.T) {
	w := newWorld(24)
	var readErr error
	w.s.Spawn("b", func(p *sim.Proc) {
		ls := w.b.st.NewSocket(wire.ProtoTCP)
		w.b.st.Bind(ls, stack.Addr{Port: 5001})
		w.b.st.Listen(ls, 1)
		cs, err := w.b.st.Accept(p, ls)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 100)
		w.b.st.Recv(p, cs, buf, stack.RecvOpts{})
		w.b.st.Abort(p, cs) // RST instead of FIN
	})
	w.s.Spawn("a", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		s := w.a.st.NewSocket(wire.ProtoTCP)
		if err := w.a.st.Connect(p, s, stack.Addr{IP: w.b.st.LocalIP(), Port: 5001}); err != nil {
			t.Error(err)
			return
		}
		w.a.st.Send(p, s, [][]byte{[]byte("hi")}, stack.SendOpts{})
		buf := make([]byte, 100)
		_, _, _, readErr = w.a.st.Recv(p, s, buf, stack.RecvOpts{})
	})
	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
	if readErr == nil {
		t.Fatal("expected ECONNRESET from peer abort")
	}
}

// TestKeepaliveDetectsDeadPeer: with SO_KEEPALIVE, an idle connection
// whose peer has vanished is torn down with ETIMEDOUT; one whose peer is
// alive survives (the probes are answered).
func TestKeepaliveDetectsDeadPeer(t *testing.T) {
	run := func(partition bool) (err error, probes int) {
		w := newWorld(40)
		w.s.Deadline = sim.Time(6 * time.Hour)
		var clientErr error
		w.s.Spawn("server", func(p *sim.Proc) {
			ls := w.b.st.NewSocket(wire.ProtoTCP)
			w.b.st.Bind(ls, stack.Addr{Port: 5001})
			w.b.st.Listen(ls, 1)
			cs, err := w.b.st.Accept(p, ls)
			if err != nil {
				t.Error(err)
				return
			}
			_ = cs // idle peer: answers probes only through its stack
		})
		w.s.Spawn("client", func(p *sim.Proc) {
			p.Sleep(time.Millisecond)
			s := w.a.st.NewSocket(wire.ProtoTCP)
			w.a.st.SetOption(s, 4 /* SoKeepAlive */, 1)
			if err := w.a.st.Connect(p, s, stack.Addr{IP: w.b.st.LocalIP(), Port: 5001}); err != nil {
				t.Error(err)
				return
			}
			if partition {
				w.seg.Faults().Partition([]string{"A"}, []string{"B"})
			}
			// Sit idle far past the keepalive threshold (60 s idle +
			// 8 probes x 10 s). A live peer keeps the connection up; a
			// partitioned one gets ETIMEDOUT.
			buf := make([]byte, 8)
			_, _, _, clientErr = w.a.st.Recv(p, s, buf, stack.RecvOpts{})
		})
		// Give keepalive time to act, then release the (live-peer) reader.
		w.s.SpawnDaemon("release", func(p *sim.Proc) {
			p.Sleep(5 * time.Minute)
			if !partition {
				// Live peer: nothing will ever arrive; the connection must
				// still be ESTABLISHED. Stop the run.
				w.s.Stop()
			}
		})
		if err := w.s.Run(); err != nil && clientErr == nil {
			t.Fatal(err)
		}
		return clientErr, int(w.a.st.Stats.TCPOut.Value())
	}

	err, _ := run(true)
	if err == nil {
		t.Fatal("partitioned idle connection not torn down by keepalive")
	}
	err, _ = run(false)
	if err != nil {
		t.Fatalf("live idle connection torn down: %v", err)
	}
}
