package stack

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/wire"
)

func testStack(t *testing.T) *Stack {
	t.Helper()
	s := sim.New(1)
	return New(Config{
		Sim:      s,
		Name:     "t",
		LocalIP:  wire.IP(10, 0, 0, 1),
		LocalMAC: wire.MAC{1},
		Transmit: func([]byte) error { return nil },
		Ports:    NewLocalPorts(),
	})
}

func TestSeqArithmetic(t *testing.T) {
	cases := []struct {
		a, b             uint32
		lt, leq, gt, geq bool
	}{
		{1, 2, true, true, false, false},
		{2, 2, false, true, false, true},
		{3, 2, false, false, true, true},
		// Wraparound: 0xffffffff is "before" 1.
		{0xffffffff, 1, true, true, false, false},
		{1, 0xffffffff, false, false, true, true},
	}
	for _, c := range cases {
		if seqLT(c.a, c.b) != c.lt || seqLEQ(c.a, c.b) != c.leq ||
			seqGT(c.a, c.b) != c.gt || seqGEQ(c.a, c.b) != c.geq {
			t.Errorf("seq compare %d vs %d wrong", c.a, c.b)
		}
	}
}

func TestQuickSeqOrderingTotality(t *testing.T) {
	f := func(a, b uint32) bool {
		// Exactly one of <, ==, > must hold under modular comparison
		// (when the distance is not exactly 2^31).
		if a == b {
			return seqLEQ(a, b) && seqGEQ(a, b) && !seqLT(a, b) && !seqGT(a, b)
		}
		if a-b == 1<<31 {
			return true // ambiguous by construction; excluded by TCP windows
		}
		return seqLT(a, b) != seqGT(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// makeEstablishedTCB builds a socket+tcb pair in ESTABLISHED state with
// rcvNxt at the given base, bypassing the handshake.
func makeEstablishedTCB(st *Stack, base uint32) (*Socket, *tcpcb) {
	s := st.NewSocket(wire.ProtoTCP)
	s.local = Addr{IP: st.cfg.LocalIP, Port: 5000}
	s.remote = Addr{IP: wire.IP(10, 0, 0, 2), Port: 6000}
	tp := newTCPCB(st, s)
	s.tcb = tp
	tp.state = tcpEstablished
	tp.rcvNxt = base
	tp.rcvAdv = base + 8192
	return s, tp
}

// TestQuickReassemblyDeliversStream drives random segmentations (with
// duplication and overlap) through the reassembly queue and checks the
// socket sees exactly the original byte stream.
func TestQuickReassemblyDeliversStream(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := testStack(t)
		const base = 1000
		streamLen := 200 + rng.Intn(1800)
		stream := make([]byte, streamLen)
		rng.Read(stream)
		s, tp := makeEstablishedTCB(st, base)

		// Cut the stream into segments.
		type segment struct{ off, n int }
		var segs []segment
		for off := 0; off < streamLen; {
			n := 1 + rng.Intn(300)
			if off+n > streamLen {
				n = streamLen - off
			}
			segs = append(segs, segment{off, n})
			off += n
		}
		// Shuffle, duplicate some, and extend some into overlaps.
		rng.Shuffle(len(segs), func(i, j int) { segs[i], segs[j] = segs[j], segs[i] })
		extra := segs
		for _, sg := range segs {
			if rng.Intn(4) == 0 {
				extra = append(extra, sg) // duplicate
			}
			if rng.Intn(4) == 0 && sg.off+sg.n < streamLen {
				n2 := sg.n + rng.Intn(streamLen-sg.off-sg.n) + 1
				extra = append(extra, segment{sg.off, n2}) // overlapping
			}
		}
		for _, sg := range extra {
			st.tcpReassemble(nil, tp, base+uint32(sg.off), stream[sg.off:sg.off+sg.n], false)
		}
		if tp.rcvNxt != base+uint32(streamLen) {
			return false
		}
		if len(tp.reasm) != 0 {
			return false
		}
		got := make([]byte, streamLen)
		n := s.rcv.readInto(got)
		return n == streamLen && bytes.Equal(got, stream)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestReassemblyHoleThenFill(t *testing.T) {
	st := testStack(t)
	s, tp := makeEstablishedTCB(st, 100)
	st.tcpReassemble(nil, tp, 110, []byte("world"), false)
	if s.rcv.len() != 0 || len(tp.reasm) != 1 {
		t.Fatalf("ooo segment delivered early: rcv=%d reasm=%d", s.rcv.len(), len(tp.reasm))
	}
	if !tp.ackNow {
		t.Fatal("out-of-order data must force an immediate (duplicate) ACK")
	}
	st.tcpReassemble(nil, tp, 100, []byte("hello "), false)
	// 6 bytes delivered, then the hole is only partly filled (104..110
	// still missing after "hello " covers 100..106): check precise edge.
	if tp.rcvNxt != 106 {
		t.Fatalf("rcvNxt = %d, want 106", tp.rcvNxt)
	}
	st.tcpReassemble(nil, tp, 106, []byte("...."), false)
	if tp.rcvNxt != 115 {
		t.Fatalf("rcvNxt = %d, want 115", tp.rcvNxt)
	}
	buf := make([]byte, 64)
	n := s.rcv.readInto(buf)
	if string(buf[:n]) != "hello ....world" {
		t.Fatalf("stream = %q", buf[:n])
	}
}

func TestReassemblyFinOutOfOrder(t *testing.T) {
	st := testStack(t)
	s, tp := makeEstablishedTCB(st, 100)
	// FIN arrives with the second segment first.
	st.tcpReassemble(nil, tp, 105, []byte("tail"), true)
	if tp.sawFin {
		t.Fatal("FIN processed before stream complete")
	}
	st.tcpReassemble(nil, tp, 100, []byte("head:"), false)
	if !tp.sawFin {
		t.Fatal("FIN not processed once stream completed")
	}
	if tp.state != tcpCloseWait {
		t.Fatalf("state = %v, want CLOSE_WAIT", tp.state)
	}
	if tp.rcvNxt != 100+9+1 {
		t.Fatalf("rcvNxt = %d (FIN must consume one sequence number)", tp.rcvNxt)
	}
	_ = s
}

func TestDelayedAckEverySecondSegment(t *testing.T) {
	st := testStack(t)
	_, tp := makeEstablishedTCB(st, 0)
	st.tcpReassemble(nil, tp, 0, []byte("a"), false)
	if tp.ackNow || !tp.delAck {
		t.Fatal("first segment should set delayed ACK only")
	}
	st.tcpReassemble(nil, tp, 1, []byte("b"), false)
	if !tp.ackNow {
		t.Fatal("second segment should force an ACK")
	}
}

// TestTimerWalksAllocationFree pins the steady-state cost of the
// periodic protocol timers. Every host runs them several times per
// virtual second, so at city scale even one allocation per tick
// dominates the simulator's heap churn — the walks reuse per-stack
// scratch and must stay allocation-free once warm.
func TestTimerWalksAllocationFree(t *testing.T) {
	st := testStack(t)
	for i := 0; i < 8; i++ {
		s, _ := makeEstablishedTCB(st, uint32(1000*i))
		s.local.Port = uint16(5000 + i)
		st.registerConn(s)
	}
	st.arp = newARPEngine(st)
	st.arp.Insert(wire.IP(10, 0, 0, 2), wire.MAC{2})
	st.arp.Insert(wire.IP(10, 0, 0, 3), wire.MAC{3})
	// First tick may grow the scratch slices; after that, nothing.
	st.tcpFastTimo(nil)
	st.tcpSlowTimo(nil)
	st.arp.timo(nil)
	if n := testing.AllocsPerRun(20, func() {
		st.tcpFastTimo(nil)
		st.tcpSlowTimo(nil)
		st.ipReasmTimo(nil)
		st.arp.timo(nil)
	}); n != 0 {
		t.Fatalf("timer tick allocates %.1f objects per run, want 0", n)
	}
}

func TestRttUpdateJacobson(t *testing.T) {
	tp := &tcpcb{}
	tp.rttUpdate(100 * 1e6) // 100 ms
	if tp.srtt != 100e6 || tp.rttvar != 50e6 {
		t.Fatalf("initial srtt=%v rttvar=%v", tp.srtt, tp.rttvar)
	}
	tp.rttUpdate(200e6)
	// srtt += (200-100)/8 = 112.5ms; rttvar += (100-50)/4 = 62.5ms
	if tp.srtt != 112.5e6 || tp.rttvar != 62.5e6 {
		t.Fatalf("updated srtt=%v rttvar=%v", tp.srtt, tp.rttvar)
	}
	// Backoff growth and clamping.
	tp.rexmtShift = 0
	base := tp.rexmtTicks()
	tp.rexmtShift = 3
	if tp.rexmtTicks() != min(base*8, tcpMaxRexmtTicks) {
		t.Fatalf("backoff: base=%d shifted=%d", base, tp.rexmtTicks())
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestPortAllocator(t *testing.T) {
	lp := NewLocalPorts()
	p1, err := lp.AllocEphemeral(wire.ProtoTCP)
	if err != nil || p1 < ephemeralFirst {
		t.Fatalf("ephemeral: %d %v", p1, err)
	}
	p2, _ := lp.AllocEphemeral(wire.ProtoTCP)
	if p1 == p2 {
		t.Fatal("duplicate ephemeral port")
	}
	if err := lp.Reserve(wire.ProtoTCP, 80, false); err != nil {
		t.Fatal(err)
	}
	if err := lp.Reserve(wire.ProtoTCP, 80, false); err == nil {
		t.Fatal("double reserve allowed")
	}
	// Same port, different protocol is fine.
	if err := lp.Reserve(wire.ProtoUDP, 80, false); err != nil {
		t.Fatal(err)
	}
	lp.Release(wire.ProtoTCP, 80)
	if err := lp.Reserve(wire.ProtoTCP, 80, false); err != nil {
		t.Fatal("release did not free port")
	}
}

func TestPortReuseAddr(t *testing.T) {
	lp := NewLocalPorts()
	if err := lp.Reserve(wire.ProtoTCP, 7000, true); err != nil {
		t.Fatal(err)
	}
	if err := lp.Reserve(wire.ProtoTCP, 7000, true); err != nil {
		t.Fatal("SO_REUSEADDR pair rejected")
	}
	if err := lp.Reserve(wire.ProtoTCP, 7000, false); err == nil {
		t.Fatal("non-reuse reserve of reuse port allowed")
	}
	lp.Release(wire.ProtoTCP, 7000)
	lp.Release(wire.ProtoTCP, 7000)
	if lp.InUse(wire.ProtoTCP, 7000) {
		t.Fatal("refcount leak")
	}
}

func TestPortQuarantine(t *testing.T) {
	lp := NewLocalPorts()
	lp.Reserve(wire.ProtoTCP, 9000, false)
	lp.Quarantine(wire.ProtoTCP, 9000)
	lp.Release(wire.ProtoTCP, 9000) // original owner goes away
	if err := lp.Reserve(wire.ProtoTCP, 9000, false); err == nil {
		t.Fatal("quarantined port rebindable")
	}
	lp.Unquarantine(wire.ProtoTCP, 9000)
	if err := lp.Reserve(wire.ProtoTCP, 9000, false); err != nil {
		t.Fatal("unquarantined port not rebindable")
	}
}

func TestRouteTableLPM(t *testing.T) {
	rt := NewRouteTable()
	rt.Add(wire.IPAddr{}, 0, wire.IP(10, 0, 0, 254), false) // default via gw
	rt.Add(wire.IP(10, 0, 0, 0), 24, wire.IPAddr{}, true)   // on-link
	rt.Add(wire.IP(10, 0, 1, 0), 24, wire.IP(10, 0, 0, 9), false)

	if nh, ok := rt.Lookup(wire.IP(10, 0, 0, 7)); !ok || nh != wire.IP(10, 0, 0, 7) {
		t.Fatalf("on-link lookup: %v %v", nh, ok)
	}
	if nh, ok := rt.Lookup(wire.IP(10, 0, 1, 7)); !ok || nh != wire.IP(10, 0, 0, 9) {
		t.Fatalf("gateway lookup: %v %v", nh, ok)
	}
	if nh, ok := rt.Lookup(wire.IP(192, 168, 0, 1)); !ok || nh != wire.IP(10, 0, 0, 254) {
		t.Fatalf("default lookup: %v %v", nh, ok)
	}
	v := rt.Version()
	rt.Add(wire.IP(172, 16, 0, 0), 12, wire.IPAddr{}, true)
	if rt.Version() == v {
		t.Fatal("version must bump on change")
	}
}
