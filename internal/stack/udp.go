package stack

import (
	"repro/internal/costs"
	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wire"
)

// udpOutput emits one datagram (udp_output). The payload chain is owned
// by the call.
func (st *Stack) udpOutput(t *sim.Proc, src, dst Addr, payload *mbuf.Chain) error {
	n := payload.Len()
	st.charge(t, false, costs.CompTransportOutput, n)
	st.Stats.UDPOut.Inc()

	h := wire.UDPHeader{
		SrcPort: src.Port,
		DstPort: dst.Port,
		Length:  uint16(wire.UDPHeaderLen + n),
	}
	// Marshal with a zero checksum; the IP layer computes it during the
	// fused copy into the link frame (0 → 0xffff handled there).
	h.Marshal(payload.Prepend(wire.UDPHeaderLen))
	return st.ipOutput(t, false, wire.ProtoUDP, dst.IP, payload, n, wire.UDPChecksumOffset)
}

// udpInput delivers a received datagram to the owning socket (udp_input).
func (st *Stack) udpInput(t *sim.Proc, ih wire.IPv4Header, seg []byte) {
	st.Stats.UDPIn.Inc()
	if !st.rxVerified {
		st.Stats.SwChecksumBytes.Add(uint64(len(seg)))
		if !wire.VerifyUDPChecksum(ih.Src, ih.Dst, seg) {
			st.Stats.UDPChecksumErrors.Inc()
			if st.traceOn() {
				st.traceEmit(trace.EvChecksumDrop, "", "udp", int64(len(seg)), 0, 0)
			}
			return
		}
	}
	h, err := wire.UnmarshalUDP(seg)
	if err != nil || int(h.Length) > len(seg) {
		st.Stats.Drops.Inc()
		return
	}
	payload := seg[wire.UDPHeaderLen:h.Length]
	st.charge(t, false, costs.CompTransportInput, len(payload))

	local := Addr{IP: ih.Dst, Port: h.DstPort}
	remote := Addr{IP: ih.Src, Port: h.SrcPort}
	s := st.lookup(wire.ProtoUDP, local, remote)
	if s == nil {
		st.Stats.UDPNoPort.Inc()
		if !ih.Dst.IsBroadcast() && !st.orphanQuiet(wire.ProtoUDP, local, remote) {
			st.icmpSendUnreachable(t, wire.ICMPCodePortUnreachable, ih, seg)
		}
		return
	}
	st.charge(t, false, costs.CompMbufQueue, len(payload))
	// The frame's bytes are immutable once delivered (simnet ownership
	// rules), so the datagram buffer aliases them instead of copying.
	d := mbuf.FromBytes(payload)
	if !s.drcv.enqueue(remote, d) {
		d.Release()
		st.Stats.Drops.Inc() // receive buffer full: datagram lost
		return
	}
	s.sorwakeup(t, len(payload))
}
