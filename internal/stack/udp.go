package stack

import (
	"repro/internal/costs"
	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wire"
)

// udpOutput emits one datagram (udp_output). The payload chain is owned
// by the call.
func (st *Stack) udpOutput(t *sim.Proc, src, dst Addr, payload *mbuf.Chain) error {
	n := payload.Len()
	st.charge(t, false, costs.CompTransportOutput, n)
	st.Stats.UDPOut++

	h := wire.UDPHeader{
		SrcPort: src.Port,
		DstPort: dst.Port,
		Length:  uint16(wire.UDPHeaderLen + n),
	}
	hb := make([]byte, wire.UDPHeaderLen)
	h.Marshal(hb)
	h.Checksum = wire.UDPChecksum(st.cfg.LocalIP, dst.IP, hb, payload.Bytes())
	h.Marshal(hb)
	seg := mbuf.FromBytesCopy(hb)
	seg.AppendChain(payload)
	return st.ipOutput(t, false, wire.ProtoUDP, dst.IP, seg, n)
}

// udpInput delivers a received datagram to the owning socket (udp_input).
func (st *Stack) udpInput(t *sim.Proc, ih wire.IPv4Header, seg []byte) {
	st.Stats.UDPIn++
	if !wire.VerifyUDPChecksum(ih.Src, ih.Dst, seg) {
		st.Stats.ChecksumErrors++
		st.Stats.UDPChecksumErrors++
		if st.traceOn() {
			st.traceEmit(trace.EvChecksumDrop, "", "udp", int64(len(seg)), 0, 0)
		}
		return
	}
	h, err := wire.UnmarshalUDP(seg)
	if err != nil || int(h.Length) > len(seg) {
		st.Stats.Drops++
		return
	}
	payload := seg[wire.UDPHeaderLen:h.Length]
	st.charge(t, false, costs.CompTransportInput, len(payload))

	local := Addr{IP: ih.Dst, Port: h.DstPort}
	remote := Addr{IP: ih.Src, Port: h.SrcPort}
	s := st.lookup(wire.ProtoUDP, local, remote)
	if s == nil {
		st.Stats.UDPNoPort++
		if !ih.Dst.IsBroadcast() && !st.orphanQuiet(wire.ProtoUDP, local, remote) {
			st.icmpSendUnreachable(t, wire.ICMPCodePortUnreachable, ih, seg)
		}
		return
	}
	st.charge(t, false, costs.CompMbufQueue, len(payload))
	if !s.drcv.enqueue(remote, mbuf.FromBytesCopy(payload)) {
		st.Stats.Drops++ // receive buffer full: datagram lost
		return
	}
	s.sorwakeup(t, len(payload))
}
